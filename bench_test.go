// Benchmarks regenerating the paper's evaluation artifacts: one Benchmark
// per table/figure (via the experiment harness in reduced "quick" form so a
// full -bench=. sweep stays tractable) plus micro-benchmarks of the
// underlying kernels. For full-size runs use cmd/mfbc-bench; EXPERIMENTS.md
// records its output.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

func benchConfig() bench.Config {
	return bench.Config{Procs: []int{1, 4}, Quick: true, Batch: 16, Seed: 42}
}

// runExperiment drives one harness experiment per iteration and reports the
// average modeled MTEPS/node over its points.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var rate float64
	var count int
	for i := 0; i < b.N; i++ {
		pts, err := bench.Run(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Err == "" && p.MTEPSNode > 0 {
				rate += p.MTEPSNode
				count++
			}
		}
	}
	if count > 0 {
		b.ReportMetric(rate/float64(count), "MTEPS/node")
	}
}

// BenchmarkTable2Stats regenerates Table 2 (graph properties).
func BenchmarkTable2Stats(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig1aStrongScalingMFBC regenerates Figure 1(a).
func BenchmarkFig1aStrongScalingMFBC(b *testing.B) { runExperiment(b, "fig1a") }

// BenchmarkFig1bStrongScalingCombBLAS regenerates Figure 1(b).
func BenchmarkFig1bStrongScalingCombBLAS(b *testing.B) { runExperiment(b, "fig1b") }

// BenchmarkFig1cRMAT regenerates Figure 1(c) (weighted + unweighted R-MAT).
func BenchmarkFig1cRMAT(b *testing.B) { runExperiment(b, "fig1c") }

// BenchmarkFig2aEdgeWeakScaling regenerates Figure 2(a).
func BenchmarkFig2aEdgeWeakScaling(b *testing.B) { runExperiment(b, "fig2a") }

// BenchmarkFig2bVertexWeakScaling regenerates Figure 2(b).
func BenchmarkFig2bVertexWeakScaling(b *testing.B) { runExperiment(b, "fig2b") }

// BenchmarkTable3CommCosts regenerates Table 3 (critical-path costs).
func BenchmarkTable3CommCosts(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkAblationDecomposition compares forced 1D/2D/3D decompositions.
func BenchmarkAblationDecomposition(b *testing.B) { runExperiment(b, "ablate-decomp") }

// BenchmarkAblationBatchSize sweeps n_b.
func BenchmarkAblationBatchSize(b *testing.B) { runExperiment(b, "ablate-batch") }

// BenchmarkAblationCannon contrasts Cannon's algorithm with the
// broadcast-based 2D variants and the automatic plan.
func BenchmarkAblationCannon(b *testing.B) { runExperiment(b, "ablate-cannon") }

// --- kernel micro-benchmarks ---

// BenchmarkSpGEMMGustavson measures the local generalized SpGEMM kernel on
// a multpath-T-times-adjacency shape (the Bellman-Ford action over the
// multpath monoid).
func BenchmarkSpGEMMGustavson(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(11, 8, 1))
	a := g.Adjacency()
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i * (g.N / 64))
	}
	t, _, _ := core.MFBF(a, sources)
	mp := algebra.MultPathMonoid()
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		_, o := sparse.Mul(t, a, algebra.BFAction, mp)
		ops += o
	}
	b.ReportMetric(float64(ops)/float64(b.N), "ops/mul")
}

// BenchmarkSpGEMMGustavsonParallel measures the row-blocked parallel
// Gustavson kernel on the same workload as BenchmarkSpGEMMGustavson, one
// sub-benchmark per worker count (compare ns/op across them; on a
// single-core host all counts degenerate to the sequential kernel's time).
func BenchmarkSpGEMMGustavsonParallel(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(11, 8, 1))
	a := g.Adjacency()
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i * (g.N / 64))
	}
	t, _, _ := core.MFBF(a, sources)
	mp := algebra.MultPathMonoid()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparse.MulParallel(t, a, algebra.BFAction, mp, w)
			}
		})
	}
}

// BenchmarkMFBCWorkers measures an end-to-end MFBC batch (MFBF + MFBr +
// accumulation) on an R-MAT graph with ~65k edges (scale 13, edge factor
// 8) at increasing worker counts. On a host with >=4 cores, workers=4
// should run >=2x faster than workers=1: the frontier products dominate
// the batch and parallelize row-wise.
func BenchmarkMFBCWorkers(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(13, 8, 4))
	if g.M() < 50000 {
		b.Fatalf("graph too small: m=%d", g.M())
	}
	a := g.Adjacency()
	at := sparse.Transpose(a)
	sources := make([]int32, 128)
	for i := range sources {
		sources[i] = int32(i * (g.N / 128))
	}
	edges := float64(g.AdjacencyNNZ() * len(sources))
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			bc := make([]float64, g.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MFBCBatchParallel(a, at, sources, bc, w)
			}
			b.ReportMetric(float64(b.N)*edges/b.Elapsed().Seconds()/1e6, "MTEPS")
		})
	}
}

// BenchmarkMFBCEndToEndWorkers runs the same comparison through the public
// API on the simulated machine (one rank), so the distributed plumbing —
// redistribution, entry-list kernels, merges — is included.
func BenchmarkMFBCEndToEndWorkers(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(13, 8, 4))
	sources := make([]int32, 128)
	for i := range sources {
		sources[i] = int32(i * (g.N / 128))
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compute(g, Options{
					Engine: EngineMFBC, Procs: 1, Sources: sources, Workers: w,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMFBCSequentialBatch measures one sequential MFBF+MFBr batch.
func BenchmarkMFBCSequentialBatch(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(11, 8, 2))
	a := g.Adjacency()
	at := sparse.Transpose(a)
	sources := make([]int32, 32)
	for i := range sources {
		sources[i] = int32(i * (g.N / 32))
	}
	bc := make([]float64, g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MFBCBatch(a, at, sources, bc)
	}
	edges := float64(g.AdjacencyNNZ() * len(sources))
	b.ReportMetric(float64(b.N)*edges/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkBrandesBatch measures the traversal-based oracle on the same
// batch for comparison.
func BenchmarkBrandesBatch(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(11, 8, 2))
	sources := make([]int32, 32)
	for i := range sources {
		sources[i] = int32(i * (g.N / 32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.BrandesSources(g, sources)
	}
}

// BenchmarkCombBLASSequentialBatch measures one CombBLAS-style batch.
func BenchmarkCombBLASSequentialBatch(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(11, 8, 2))
	a := g.Adjacency()
	at := sparse.Transpose(a)
	sources := make([]int32, 32)
	for i := range sources {
		sources[i] = int32(i * (g.N / 32))
	}
	bc := make([]float64, g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.CombBLASBatch(a, at, sources, bc)
	}
}

// BenchmarkDistributedMultiply measures one distributed frontier product on
// the simulated machine (p=4, 2D SUMMA).
func BenchmarkDistributedMultiply(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(10, 8, 3))
	sources := make([]int32, 16)
	for i := range sources {
		sources[i] = int32(i * (g.N / 16))
	}
	plan := spgemm.Plan{P1: 1, P2: 2, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarAB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.MFBCDistributed(g, core.DistOptions{Procs: 4, Sources: sources, Plan: &plan})
		if err != nil {
			b.Fatal(err)
		}
	}
}
