package repro

// Differential test harness: every engine and decomposition the library
// offers, pitted against the textbook Brandes oracle on a seeded matrix of
// topologies — power-law (R-MAT), uniform random, and mesh; weighted and
// unweighted; directed and undirected. Since PR 1 made the local kernels
// parallel, this is the main guard that shared-memory parallelism, the
// simulated distributed decompositions, and the batched sweeps all stay
// bit-faithful to the sequential semantics.
//
// The seed matrix is fixed (so tier-1 time stays bounded) but extendable:
// MFBC_DIFFTEST_SEEDS=n runs n seeds per topology, as CI does.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/spgemm"
)

// diffTopology builds one graph of the family for a seed.
type diffTopology struct {
	name  string
	build func(seed int64) *Graph
}

func diffTopologies() []diffTopology {
	weighted := func(g *Graph, seed int64) *Graph {
		g.AddUniformWeights(1, 9, seed)
		return g
	}
	return []diffTopology{
		{"rmat-undirected", func(s int64) *Graph { return RMATGraph(6, 6, s) }},
		{"rmat-undirected-weighted", func(s int64) *Graph { return weighted(RMATGraph(6, 6, s+100), s+101) }},
		{"uniform-undirected", func(s int64) *Graph { return UniformGraph(48, 180, false, s) }},
		{"uniform-directed", func(s int64) *Graph { return UniformGraph(48, 240, true, s) }},
		{"uniform-directed-weighted", func(s int64) *Graph { return weighted(UniformGraph(40, 200, true, s+200), s+201) }},
		{"grid-unweighted", func(s int64) *Graph { return GridGraph(4, 7, 1, s) }},
		{"grid-weighted", func(s int64) *Graph { return GridGraph(5, 6, 9, s) }},
	}
}

// diffConfig is one engine/decomposition point to check against the oracle.
type diffConfig struct {
	name           string
	opt            Options
	unweightedOnly bool // CombBLAS rejects weighted graphs by design
}

func diffConfigs() []diffConfig {
	return []diffConfig{
		{"mfbc-seq", Options{Engine: EngineMFBC}, false},
		{"mfbc-seq-batch8", Options{Engine: EngineMFBC, Batch: 8}, false},
		{"mfbc-p2-batch16", Options{Engine: EngineMFBC, Procs: 2, Batch: 16}, false},
		{"mfbc-p4-only1d", Options{Engine: EngineMFBC, Procs: 4, Constraint: spgemm.Only1D}, false},
		{"mfbc-p4-only2d", Options{Engine: EngineMFBC, Procs: 4, Constraint: spgemm.Only2D}, false},
		{"mfbc-p8-only3d", Options{Engine: EngineMFBC, Procs: 8, Batch: 8, Constraint: spgemm.Only3D}, false},
		{"mfbc-p6-anyplan", Options{Engine: EngineMFBC, Procs: 6}, false},
		{"combblas-seq", Options{Engine: EngineCombBLAS}, true},
		{"combblas-p4-batch16", Options{Engine: EngineCombBLAS, Procs: 4, Batch: 16}, true},
	}
}

// diffSeeds returns the seed matrix: fixed and small by default, widened by
// the MFBC_DIFFTEST_SEEDS environment variable (CI runs 2).
func diffSeeds(t *testing.T) []int64 {
	n := 1
	if v := os.Getenv("MFBC_DIFFTEST_SEEDS"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			t.Fatalf("bad MFBC_DIFFTEST_SEEDS=%q", v)
		}
		n = parsed
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestDifferential enumerates engine × topology × plan-constraint × seed
// and requires agreement with Brandes within 1e-9 relative tolerance.
func TestDifferential(t *testing.T) {
	configs := diffConfigs()
	if testing.Short() {
		configs = configs[:5] // keep one distributed MFBC point in -short runs
	}
	for _, topo := range diffTopologies() {
		t.Run(topo.name, func(t *testing.T) {
			for _, seed := range diffSeeds(t) {
				g := topo.build(seed)
				if err := g.Validate(); err != nil {
					t.Fatalf("seed %d: generator produced an invalid graph: %v", seed, err)
				}
				oracle, err := Compute(g, Options{Engine: EngineBrandes})
				if err != nil {
					t.Fatalf("seed %d: oracle: %v", seed, err)
				}
				for _, cfg := range configs {
					if cfg.unweightedOnly && g.Weighted {
						continue
					}
					t.Run(fmt.Sprintf("%s/seed%d", cfg.name, seed), func(t *testing.T) {
						res, err := Compute(g, cfg.opt)
						if err != nil {
							t.Fatalf("%s on %s (n=%d m=%d): %v", cfg.name, g.Name, g.N, g.M(), err)
						}
						if len(res.BC) != len(oracle.BC) {
							t.Fatalf("score length %d want %d", len(res.BC), len(oracle.BC))
						}
						for v := range oracle.BC {
							if !almostEqual(res.BC[v], oracle.BC[v]) {
								t.Fatalf("BC[%d] = %.17g, oracle %.17g (graph %s n=%d m=%d seed %d)",
									v, res.BC[v], oracle.BC[v], g.Name, g.N, g.M(), seed)
							}
						}
						if cfg.opt.Procs > 1 && res.Plan == "" {
							t.Fatal("distributed run must report its plan")
						}
					})
				}
			}
		})
	}
}

// TestDifferentialApproxExactness: on vertex-transitive sources the sampling
// estimator with a full budget must equal the exact computation, and any
// budget must agree across engines for the same sampled sources.
func TestDifferentialApproxExactness(t *testing.T) {
	g := UniformGraph(36, 140, false, 4)
	exactMFBC, err := ApproximateBC(g, g.N, 1, Options{Engine: EngineMFBC})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Compute(g, Options{Engine: EngineBrandes})
	if err != nil {
		t.Fatal(err)
	}
	for v := range oracle.BC {
		if !almostEqual(exactMFBC.BC[v], oracle.BC[v]) {
			t.Fatalf("full-budget approximation diverged at %d", v)
		}
	}
	// Same samples+seed on different engines → identical estimates.
	a, err := ApproximateBC(g, 9, 5, Options{Engine: EngineMFBC})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApproximateBC(g, 9, 5, Options{Engine: EngineMFBC, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ApproximateBC(g, 9, 5, Options{Engine: EngineCombBLAS, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.BC {
		if !almostEqual(a.BC[v], b.BC[v]) || !almostEqual(a.BC[v], c.BC[v]) {
			t.Fatalf("sampled estimates diverge across engines at %d: %g %g %g", v, a.BC[v], b.BC[v], c.BC[v])
		}
	}
}

// TestForcedPlanEmptyOperandBlocks pins forced decompositions where some
// ranks own zero entries of the stationary B operand — a star adjacency is
// empty outside row/column 0, a path adjacency outside its band. Such ranks
// can legitimately cache a nil B working set in the spgemm Session, so the
// cache must detect hits by presence, not by nil-ness: a nil-as-miss lookup
// re-enters the staging path on those ranks alone, which must never become
// a collective (today it happens to be a no-op; the Session now keys on the
// map's ok flag so it cannot regress into a lone-rank collective).
func TestForcedPlanEmptyOperandBlocks(t *testing.T) {
	graphs := []*Graph{
		starGraph(12),
		GridGraph(1, 12, 1, 0),
	}
	plans := []spgemm.Plan{
		{P1: 2, P2: 2, P3: 1, X: spgemm.RoleB, YZ: spgemm.VarAB},
		{P1: 2, P2: 1, P3: 2, X: spgemm.RoleB, YZ: spgemm.VarAC},
		{P1: 4, P2: 1, P3: 1, X: spgemm.RoleB, YZ: spgemm.VarAB},
		{P1: 2, P2: 2, P3: 2, X: spgemm.RoleB, YZ: spgemm.VarBC},
	}
	for _, g := range graphs {
		oracle, err := Compute(g, Options{Engine: EngineBrandes})
		if err != nil {
			t.Fatal(err)
		}
		for _, plan := range plans {
			plan := plan
			t.Run(fmt.Sprintf("%s/%s", g.Name, plan), func(t *testing.T) {
				res, err := Compute(g, Options{
					Engine: EngineMFBC, Procs: plan.Procs(), Plan: &plan, Batch: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				for v := range oracle.BC {
					if !almostEqual(res.BC[v], oracle.BC[v]) {
						t.Fatalf("BC[%d]=%g want %g", v, res.BC[v], oracle.BC[v])
					}
				}
			})
		}
	}
}

func starGraph(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("star-%d", n), N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, Edge{U: 0, V: int32(i), W: 1})
	}
	return g
}
