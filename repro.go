// Package repro is the public API of this reproduction of
// "Scaling Betweenness Centrality using Communication-Efficient Sparse
// Matrix Multiplication" (Solomonik, Besta, Vella, Hoefler — SC 2017).
//
// It exposes the Maximal Frontier Betweenness Centrality (MFBC) algorithm —
// sequential and distributed over a simulated machine with an α–β–γ
// communication cost model — together with the comparison engines of the
// paper's evaluation (textbook Brandes and a CombBLAS-style batched
// algebraic BC), graph generators, and the experiment harness that
// regenerates every table and figure of the evaluation section.
//
// Quick start:
//
//	g := repro.RMATGraph(10, 8, 42)
//	res, err := repro.Compute(g, repro.Options{Engine: repro.EngineMFBC})
//	// res.BC[v] is the betweenness centrality of vertex v.
//
// Distributed execution with communication accounting:
//
//	res, err := repro.Compute(g, repro.Options{
//		Engine: repro.EngineMFBC,
//		Procs:  16,
//		Batch:  64,
//	})
//	// res.Comm reports critical-path bytes/messages and modeled seconds.
package repro

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/spgemm"
)

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Graph re-exports the graph type used throughout the library.
type Graph = graph.Graph

// Edge re-exports the edge type.
type Edge = graph.Edge

// Engine selects a betweenness-centrality implementation.
type Engine string

const (
	// EngineMFBC is the paper's contribution: Bellman-Ford-based maximal
	// frontier BC over generalized sparse matrix products. Handles weighted
	// and unweighted, directed and undirected graphs.
	EngineMFBC Engine = "mfbc"
	// EngineBrandes is the textbook sequential algorithm (BFS or Dijkstra),
	// the correctness oracle. Ignores Procs.
	EngineBrandes Engine = "brandes"
	// EngineCombBLAS is the CombBLAS-style batched algebraic BC the paper
	// compares against: 2D-only decomposition, unweighted graphs only.
	EngineCombBLAS Engine = "combblas"
)

// Options configures Compute.
type Options struct {
	Engine Engine // default EngineMFBC
	// Procs simulates a distributed machine with this many processors
	// (default 1). With Procs == 1 and no forced plan, MFBC runs the fast
	// sequential path.
	Procs int
	// Batch is n_b, the number of sources per sweep (Algorithm 3's
	// time/memory trade-off). ≤0 selects min(n, 128).
	Batch int
	// Workers is the shared-memory parallelism of the local sparse
	// kernels on each (simulated) processor: 0 selects all host cores —
	// GOMAXPROCS on the sequential path, divided fairly across ranks on
	// distributed runs (they execute concurrently) — and 1 forces the
	// sequential kernels. Scores are identical for every worker count;
	// only wall time changes.
	Workers int
	// Sources restricts the computation to one batch; BC then holds the
	// partial sums Σ_{s∈Sources} δ(s,·) (benchmark mode).
	Sources []int32
	// Plan forces a specific data decomposition (see spgemm.Plan); nil
	// selects automatically by modeled cost.
	Plan *spgemm.Plan
	// Constraint restricts the automatic decomposition search.
	Constraint spgemm.Constraint
	// Model overrides the machine cost constants.
	Model *machine.CostModel
	// Normalize divides scores by (n-1)(n-2), the usual [0,1] scaling.
	Normalize bool
}

// CommReport summarizes the simulated communication of a distributed run.
type CommReport struct {
	Bytes    int64   `json:"bytes"`     // critical-path bytes
	Msgs     int64   `json:"msgs"`      // critical-path messages
	Flops    int64   `json:"flops"`     // critical-path generalized operations
	ModelSec float64 `json:"model_sec"` // modeled execution seconds (α–β–γ)
	CommSec  float64 `json:"comm_sec"`  // modeled communication seconds (α–β only)
	WallSec  float64 `json:"wall_sec"`  // host wall-clock seconds (informational)
}

// Result carries centrality scores and run metadata.
type Result struct {
	BC         []float64
	Engine     Engine
	Procs      int
	Plan       string // decomposition used (distributed runs)
	Iterations int    // frontier relaxation rounds (MFBC) or BFS levels (CombBLAS)
	Comm       CommReport
}

// Compute runs betweenness centrality on g with the selected engine.
func Compute(g *Graph, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("repro: nil graph")
	}
	if opt.Engine == "" {
		opt.Engine = EngineMFBC
	}
	procs := opt.Procs
	if procs < 1 {
		procs = 1
	}
	res := &Result{Engine: opt.Engine, Procs: procs}
	switch opt.Engine {
	case EngineBrandes:
		if opt.Sources != nil {
			res.BC = baseline.BrandesSources(g, opt.Sources)
		} else {
			res.BC = baseline.Brandes(g)
		}
	case EngineMFBC:
		if procs == 1 && opt.Plan == nil && opt.Sources == nil {
			r, err := core.MFBC(g, core.Options{Batch: opt.Batch, Workers: opt.Workers})
			if err != nil {
				return nil, err
			}
			res.BC = r.BC
			res.Iterations = r.Iterations
		} else {
			r, err := core.MFBCDistributed(g, core.DistOptions{
				Procs: procs, Workers: opt.Workers, Batch: opt.Batch, Sources: opt.Sources,
				Plan: opt.Plan, Constraint: opt.Constraint, Model: opt.Model,
			})
			if err != nil {
				return nil, err
			}
			res.BC = r.BC
			res.Plan = r.Plan.String()
			res.Iterations = r.Iterations
			res.Comm = commReport(r.Stats)
		}
	case EngineCombBLAS:
		r, err := baseline.CombBLASStyleDistributed(g, baseline.DistCombBLASOptions{
			Procs: procs, Batch: opt.Batch, Sources: opt.Sources, Model: opt.Model,
		})
		if err != nil {
			return nil, err
		}
		res.BC = r.BC
		res.Plan = r.Plan.String()
		res.Iterations = r.Levels
		res.Comm = commReport(r.Stats)
	default:
		return nil, fmt.Errorf("repro: unknown engine %q", opt.Engine)
	}
	if opt.Normalize && g.N > 2 {
		scale := 1 / (float64(g.N-1) * float64(g.N-2))
		for i := range res.BC {
			res.BC[i] *= scale
		}
	}
	return res, nil
}

func commReport(s machine.RunStats) CommReport {
	return CommReport{
		Bytes:    s.MaxCost.Bytes,
		Msgs:     s.MaxCost.Msgs,
		Flops:    s.MaxCost.Flops,
		ModelSec: s.ModelSec,
		CommSec:  s.CommSec,
		WallSec:  s.Wall.Seconds(),
	}
}

// topkHeap is a min-heap of (vertex, score) pairs ordered by "worse first":
// lower score on top, ties broken by higher vertex index, so the root is
// always the candidate to displace.
type topkHeap struct {
	v  []int
	bc []float64
}

func (h *topkHeap) Len() int { return len(h.v) }
func (h *topkHeap) Less(i, j int) bool {
	// Exact tie detection is the point: ties fall through to the vertex
	// index so the heap order is a deterministic total order.
	if h.bc[i] != h.bc[j] { //lint:allow floateq exact tie-break of a deterministic total order
		return h.bc[i] < h.bc[j]
	}
	return h.v[i] > h.v[j]
}
func (h *topkHeap) Swap(i, j int) {
	h.v[i], h.v[j] = h.v[j], h.v[i]
	h.bc[i], h.bc[j] = h.bc[j], h.bc[i]
}
func (h *topkHeap) Push(x any) { panic("unused") }
func (h *topkHeap) Pop() any {
	n := len(h.v) - 1
	h.v = h.v[:n]
	h.bc = h.bc[:n]
	return nil
}

// TopK returns the indices of the k highest-scoring vertices, descending,
// ties broken by lower vertex index. Heap-based partial selection:
// O(n log k) time and O(k) extra space.
func TopK(bc []float64, k int) []int {
	if k > len(bc) {
		k = len(bc)
	}
	if k <= 0 {
		return []int{}
	}
	h := &topkHeap{v: make([]int, 0, k), bc: make([]float64, 0, k)}
	for i, x := range bc {
		if len(h.v) < k {
			h.v = append(h.v, i)
			h.bc = append(h.bc, x)
			if len(h.v) == k {
				heap.Init(h)
			}
			continue
		}
		// Keep i only if it beats the current worst: higher score, or equal
		// score with lower index.
		//lint:allow floateq exact tie-break of a deterministic total order
		if x > h.bc[0] || (x == h.bc[0] && i < h.v[0]) {
			h.v[0], h.bc[0] = i, x
			heap.Fix(h, 0)
		}
	}
	out := make([]int, len(h.v))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.v[0]
		heap.Pop(h)
	}
	return out
}

// Fingerprint returns a structural hash of the graph (vertex count,
// orientation, weights, and the full edge list). Two graphs with the same
// fingerprint hold the same topology regardless of their Name; any edit to
// the edge set changes it. The server layer uses it as the graph version in
// result-cache keys.
func Fingerprint(g *Graph) uint64 { return graph.Fingerprint(g) }

// SSSPResult re-exports the shortest-path result type.
type SSSPResult = core.SSSPResult

// ShortestPaths computes multi-source shortest path distances and
// shortest-path multiplicities (the MFBF sweep of Algorithm 1 as a
// standalone capability). With opt.Procs > 1 it runs on the simulated
// distributed machine.
func ShortestPaths(g *Graph, sources []int32, opt Options) (*SSSPResult, error) {
	procs := opt.Procs
	if procs <= 1 && opt.Plan == nil {
		return core.SSSP(g, sources)
	}
	res, _, err := core.SSSPDistributed(g, sources, core.DistOptions{
		Procs: procs, Workers: opt.Workers, Plan: opt.Plan, Constraint: opt.Constraint, Model: opt.Model,
	})
	return res, err
}

// ApproximateBC estimates betweenness centrality from a random sample of
// `samples` source vertices, scaling each vertex's accumulated dependency
// by n/samples (the estimator of Bader et al. cited in the paper's
// introduction). It reuses the batch mode of the selected engine, so the
// cost is samples/n of the exact computation.
func ApproximateBC(g *Graph, samples int, seed int64, opt Options) (*Result, error) {
	if samples < 1 {
		return nil, fmt.Errorf("repro: need at least one sample source")
	}
	if samples >= g.N {
		return Compute(g, opt)
	}
	rng := newPerm(g.N, seed)
	sources := make([]int32, samples)
	for i := range sources {
		sources[i] = int32(rng[i])
	}
	opt.Sources = sources
	res, err := Compute(g, opt)
	if err != nil {
		return nil, err
	}
	scale := float64(g.N) / float64(samples)
	for v := range res.BC {
		res.BC[v] *= scale
	}
	return res, nil
}

// newPerm returns a seeded random permutation of 0..n-1.
func newPerm(n int, seed int64) []int {
	rng := randNew(seed)
	return rng.Perm(n)
}

// RMATGraph generates an R-MAT power-law graph with 2^scale vertices and
// about edgeFactor·2^scale edges (Graph500 parameters), disconnected
// vertices removed.
func RMATGraph(scale, edgeFactor int, seed int64) *Graph {
	return graph.RMAT(graph.DefaultRMAT(scale, edgeFactor, seed))
}

// UniformGraph generates an Erdős–Rényi style G(n, m) graph.
func UniformGraph(n, m int, directed bool, seed int64) *Graph {
	return graph.Uniform(n, m, directed, seed)
}

// GridGraph generates an r×c mesh; maxW > 1 adds uniform integer weights in
// [1, maxW].
func GridGraph(r, c, maxW int, seed int64) *Graph {
	return graph.Grid2D(r, c, maxW, seed)
}

// StandinGraph generates one of the SNAP stand-in graphs of the paper's
// Table 2 ("friendster-sim", "orkut-sim", "livejournal-sim", "patents-sim").
func StandinGraph(id string, scale int, seed int64) (*Graph, error) {
	return graph.Standin(id, scale, seed)
}

// LoadGraph reads an edge-list file (see internal/graph.ReadEdgeList for
// the format).
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes an edge-list file.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// RunExperiment executes one of the paper-reproduction experiments by id
// (see ExperimentIDs) with the given configuration.
func RunExperiment(id string, cfg bench.Config) ([]bench.Point, error) {
	return bench.Run(id, cfg)
}

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return append([]string(nil), bench.Experiments...) }
