// Streaming façade: incremental betweenness centrality over an evolving
// graph (see internal/dynamic for the engine and strategy selection).
//
//	dyn, _ := repro.NewDynamicBC(g, repro.DynamicOptions{})
//	dyn.Apply([]repro.Mutation{{Op: repro.MutAddEdge, U: 3, V: 9, W: 1}})
//	snap := dyn.Scores() // consistent (graph version, scores) snapshot
//
// With Procs > 1 the engine runs every exact sweep on the simulated
// distributed machine, keeping the stationary adjacency operands resident
// across applies and delta-patching them with each batch's edge diff; the
// per-apply ApplyReport and the cumulative DynamicSnapshot then carry the
// modeled communication (critical-path words, messages, α–β–γ seconds)
// and the decomposition plan chosen.
package repro

import (
	"context"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/spgemm"
)

// Mutation is one graph edit; Op selects the kind (see the Mut* constants).
type Mutation = graph.Mutation

// Mutation op kinds, re-exported for callers of the streaming API.
const (
	MutAddEdge    = graph.OpAddEdge
	MutRemoveEdge = graph.OpRemoveEdge
	MutSetWeight  = graph.OpSetWeight
	MutAddVertex  = graph.OpAddVertex
)

// CoalesceMutations collapses a concatenated mutation stream into its
// compact equivalent (add+remove cancels, remove+add becomes set_weight,
// chained sets keep the last, add_vertex hoisted). Replaying the result
// yields the same graph as replaying the input one op at a time — this is
// the algebra the server's group-commit ingestion path applies before
// handing a merged batch to the engine.
func CoalesceMutations(directed bool, muts []Mutation) []Mutation {
	return dynamic.Coalesce(directed, muts)
}

// DynamicOptions configures a DynamicBC engine.
type DynamicOptions struct {
	// Batch and Workers mirror Options: sources per MFBC sweep and local
	// kernel parallelism.
	Batch   int
	Workers int
	// DirtyThreshold is the affected-source fraction above which an apply
	// falls back to full recomputation (0 = default 0.25, negative = always
	// incremental).
	DirtyThreshold float64
	// SampleBudget > 0 switches applies to sampled estimation between
	// exact refreshes; RefreshEvery sets the refresh cadence (≤ 0 = 8).
	SampleBudget int
	RefreshEvery int
	// Seed drives sampled-mode source selection.
	Seed int64

	// Procs > 1 runs the engine's sweeps (initial compute, incremental
	// pivot re-runs, full fallbacks, sampled estimates) on the simulated
	// distributed machine with this many processors, with the stationary
	// adjacency operands kept resident and delta-patched across applies.
	Procs int
	// Plan forces one decomposition for every distributed multiplication;
	// Constraint restricts the automatic search (plan ablations on the
	// streaming workload); Model overrides the α–β–γ constants.
	Plan       *spgemm.Plan
	Constraint spgemm.Constraint
	Model      *machine.CostModel
	// DistRebuild disables operand delta-patching (full redistribution per
	// apply): the differential-test/ablation baseline. Scores are
	// identical; only the modeled communication grows. It also keeps
	// incremental applies on the two-region path.
	DistRebuild bool
	// NoFuse keeps incremental distributed applies on the legacy
	// two-region path (old-side region, host patch, new-side region)
	// instead of the fused single-region form — the ablation baseline that
	// makes the latency win of fusion measurable. Scores are identical
	// under a forced Plan (bit-identical; pinned by the differential
	// tests) and within tolerance under automatic planning.
	NoFuse bool
	// CacheSets bounds each simulated rank's stationary-operand cache to
	// this many working sets per matrix with LRU eviction across
	// (plan, dims) keys; ≤ 0 keeps it unbounded. DynamicStats reports the
	// cumulative evictions as OperandEvictions.
	CacheSets int

	// LogCompactAt bounds the mutation log (0 = default 4096, negative =
	// unmanaged); LogTruncate switches over-bound handling from compaction
	// to snapshot+truncate (see DynamicBC.LogBase).
	LogCompactAt int
	LogTruncate  bool

	// Transport pins the engine's machine regions to an external backend
	// (e.g. a tcpnet mesh) instead of the in-process simulated machine;
	// its Size must equal Procs. nil keeps the simulated machine. The
	// field is process-local and never serialized: rank-per-process
	// deployments replicate the remaining options verbatim to every rank
	// (internal/rankrun) and each process supplies its own endpoint here.
	Transport machine.Transport
}

// CommStats re-exports the engine's modeled-communication aggregate.
type CommStats = dynamic.CommStats

// PhaseComm re-exports one named region phase's share of an apply's
// modeled cost (diff / patch / sweep / reduce for a fused apply).
type PhaseComm = dynamic.PhaseComm

// ApplyReport describes one applied mutation batch: the strategy chosen
// (incremental / full / sampled), how many pivots were re-run, the new
// graph version, and — in distributed mode — the modeled communication,
// per-phase attribution, and decomposition plan of this apply's machine
// runs. Fused marks incremental applies that executed as one machine
// region (both sides of the update riding the same supersteps).
type ApplyReport struct {
	Seq      uint64      `json:"seq"`
	Version  uint64      `json:"version"`
	Applied  int         `json:"applied"`
	Affected int         `json:"affected_sources"`
	Strategy string      `json:"strategy"`
	Sampled  bool        `json:"sampled"`
	ErrBound float64     `json:"err_bound,omitempty"`
	N        int         `json:"n"`
	M        int         `json:"m"`
	Procs    int         `json:"procs,omitempty"`
	Plan     string      `json:"plan,omitempty"`
	Fused    bool        `json:"fused,omitempty"`
	Comm     CommReport  `json:"comm"`
	Phases   []PhaseComm `json:"phases,omitempty"`
	WallMS   float64     `json:"wall_ms"`
}

// DynamicSnapshot is a consistent view of the maintained state. Graph is
// the engine's immutable current topology (do not mutate it); BC is a
// private copy of the scores.
type DynamicSnapshot struct {
	Graph   *Graph
	BC      []float64
	Version uint64
	Seq     uint64
	// Sampled reports that BC holds sampled estimates (between exact
	// refreshes in sampled mode) rather than exact scores; ErrBound is
	// then the Hoeffding-style 95% half-width of those estimates (0 when
	// exact) — force an exact refresh when it exceeds your tolerance.
	Sampled  bool
	ErrBound float64
	// Plan is the representative decomposition of the latest distributed
	// run; Comm accumulates the modeled communication of every machine run
	// up to this snapshot; Phases is the per-phase breakdown of the latest
	// apply. All are zero-valued on shared-memory engines.
	Plan   string
	Comm   CommReport
	Phases []PhaseComm
}

// DynamicStats re-exports the engine's cumulative counters.
type DynamicStats = dynamic.Stats

// DynamicBC maintains betweenness-centrality scores over an evolving
// graph. All methods are safe for concurrent use; concurrent readers see
// either the pre- or post-batch snapshot of an Apply, never a torn state.
type DynamicBC struct {
	eng *dynamic.Engine
}

// NewDynamicBC computes initial exact scores for g and returns the
// maintenance engine. g is cloned; the caller's graph stays independent.
func NewDynamicBC(g *Graph, opt DynamicOptions) (*DynamicBC, error) {
	eng, err := dynamic.New(g, dynamic.Config{
		Batch:          opt.Batch,
		Workers:        opt.Workers,
		DirtyThreshold: opt.DirtyThreshold,
		SampleBudget:   opt.SampleBudget,
		RefreshEvery:   opt.RefreshEvery,
		Seed:           opt.Seed,
		Procs:          opt.Procs,
		Plan:           opt.Plan,
		Constraint:     opt.Constraint,
		Model:          opt.Model,
		DistRebuild:    opt.DistRebuild,
		NoFuse:         opt.NoFuse,
		CacheSets:      opt.CacheSets,
		LogCompactAt:   opt.LogCompactAt,
		LogTruncate:    opt.LogTruncate,
		Transport:      opt.Transport,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicBC{eng: eng}, nil
}

// dynCommReport converts the engine's comm aggregate into the public
// CommReport shape (WallSec stays zero: host wall time is reported
// separately per apply).
func dynCommReport(c dynamic.CommStats) CommReport {
	return CommReport{
		Bytes: c.Bytes, Msgs: c.Msgs, Flops: c.Flops,
		ModelSec: c.ModelSec, CommSec: c.CommSec,
	}
}

// Apply atomically applies one mutation batch and refreshes the scores.
// On error (an invalid mutation anywhere in the batch) nothing is applied.
func (d *DynamicBC) Apply(batch []Mutation) (ApplyReport, error) {
	return d.ApplyCtx(context.Background(), batch)
}

// ApplyCtx is Apply with trace propagation: when ctx carries an
// observability span (internal/obs), the engine attaches child spans for
// the apply, its probes, and every machine region it runs.
func (d *DynamicBC) ApplyCtx(ctx context.Context, batch []Mutation) (ApplyReport, error) {
	rep, err := d.eng.ApplyCtx(ctx, batch)
	if err != nil {
		return ApplyReport{}, err
	}
	return ApplyReport{
		Seq: rep.Seq, Version: rep.Version, Applied: rep.Applied,
		Affected: rep.Affected, Strategy: string(rep.Strategy), Sampled: rep.Sampled,
		ErrBound: rep.ErrBound, N: rep.N, M: rep.M, Procs: rep.Procs,
		Plan: rep.Plan, Fused: rep.Fused,
		Comm: dynCommReport(rep.Comm), Phases: rep.Phases,
		WallMS: float64(rep.Wall) / float64(time.Millisecond),
	}, nil
}

// Scores returns the current consistent snapshot of the maintained state.
func (d *DynamicBC) Scores() DynamicSnapshot {
	s := d.eng.Snapshot()
	return DynamicSnapshot{
		Graph: s.Graph, BC: s.BC, Version: s.Version, Seq: s.Seq, Sampled: s.Sampled,
		ErrBound: s.ErrBound, Plan: s.Plan, Comm: dynCommReport(s.Comm), Phases: s.Phases,
	}
}

// Graph returns the current immutable topology snapshot. Callers must not
// mutate it; use Apply.
func (d *DynamicBC) Graph() *Graph { return d.eng.Snapshot().Graph }

// Stats returns cumulative engine counters.
func (d *DynamicBC) Stats() DynamicStats { return d.eng.Stats() }

// Log returns the (possibly compacted or truncated) mutation history:
// replaying it on LogBase reproduces the current topology.
func (d *DynamicBC) Log() []Mutation { return d.eng.Log() }

// LogBase returns the immutable graph snapshot the mutation log replays
// from (the engine's initial graph until the first truncation) and its
// version.
func (d *DynamicBC) LogBase() (*Graph, uint64) { return d.eng.LogBase() }

// CompactLog rewrites the mutation log to its minimal replay-equivalent
// form.
func (d *DynamicBC) CompactLog() { d.eng.CompactLog() }

// TruncateLog snapshots the current graph as the new replay base and
// empties the log, returning the new base version.
func (d *DynamicBC) TruncateLog() uint64 { return d.eng.TruncateLog() }
