// Streaming façade: incremental betweenness centrality over an evolving
// graph (see internal/dynamic for the engine and strategy selection).
//
//	dyn, _ := repro.NewDynamicBC(g, repro.DynamicOptions{})
//	dyn.Apply([]repro.Mutation{{Op: repro.MutAddEdge, U: 3, V: 9, W: 1}})
//	snap := dyn.Scores() // consistent (graph version, scores) snapshot

package repro

import (
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// Mutation is one graph edit; Op selects the kind (see the Mut* constants).
type Mutation = graph.Mutation

// Mutation op kinds, re-exported for callers of the streaming API.
const (
	MutAddEdge    = graph.OpAddEdge
	MutRemoveEdge = graph.OpRemoveEdge
	MutSetWeight  = graph.OpSetWeight
	MutAddVertex  = graph.OpAddVertex
)

// DynamicOptions configures a DynamicBC engine.
type DynamicOptions struct {
	// Batch and Workers mirror Options: sources per MFBC sweep and local
	// kernel parallelism.
	Batch   int
	Workers int
	// DirtyThreshold is the affected-source fraction above which an apply
	// falls back to full recomputation (0 = default 0.25, negative = always
	// incremental).
	DirtyThreshold float64
	// SampleBudget > 0 switches applies to sampled estimation between
	// exact refreshes; RefreshEvery sets the refresh cadence (≤ 0 = 8).
	SampleBudget int
	RefreshEvery int
	// Seed drives sampled-mode source selection.
	Seed int64
}

// ApplyReport describes one applied mutation batch: the strategy chosen
// (incremental / full / sampled), how many pivots were re-run, and the new
// graph version.
type ApplyReport struct {
	Seq      uint64  `json:"seq"`
	Version  uint64  `json:"version"`
	Applied  int     `json:"applied"`
	Affected int     `json:"affected_sources"`
	Strategy string  `json:"strategy"`
	Sampled  bool    `json:"sampled"`
	N        int     `json:"n"`
	M        int     `json:"m"`
	WallMS   float64 `json:"wall_ms"`
}

// DynamicSnapshot is a consistent view of the maintained state. Graph is
// the engine's immutable current topology (do not mutate it); BC is a
// private copy of the scores.
type DynamicSnapshot struct {
	Graph   *Graph
	BC      []float64
	Version uint64
	Seq     uint64
	// Sampled reports that BC holds sampled estimates (between exact
	// refreshes in sampled mode) rather than exact scores.
	Sampled bool
}

// DynamicStats re-exports the engine's cumulative counters.
type DynamicStats = dynamic.Stats

// DynamicBC maintains betweenness-centrality scores over an evolving
// graph. All methods are safe for concurrent use; concurrent readers see
// either the pre- or post-batch snapshot of an Apply, never a torn state.
type DynamicBC struct {
	eng *dynamic.Engine
}

// NewDynamicBC computes initial exact scores for g and returns the
// maintenance engine. g is cloned; the caller's graph stays independent.
func NewDynamicBC(g *Graph, opt DynamicOptions) (*DynamicBC, error) {
	eng, err := dynamic.New(g, dynamic.Config{
		Batch:          opt.Batch,
		Workers:        opt.Workers,
		DirtyThreshold: opt.DirtyThreshold,
		SampleBudget:   opt.SampleBudget,
		RefreshEvery:   opt.RefreshEvery,
		Seed:           opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicBC{eng: eng}, nil
}

// Apply atomically applies one mutation batch and refreshes the scores.
// On error (an invalid mutation anywhere in the batch) nothing is applied.
func (d *DynamicBC) Apply(batch []Mutation) (ApplyReport, error) {
	rep, err := d.eng.Apply(batch)
	if err != nil {
		return ApplyReport{}, err
	}
	return ApplyReport{
		Seq: rep.Seq, Version: rep.Version, Applied: rep.Applied,
		Affected: rep.Affected, Strategy: string(rep.Strategy), Sampled: rep.Sampled,
		N: rep.N, M: rep.M, WallMS: float64(rep.Wall) / float64(time.Millisecond),
	}, nil
}

// Scores returns the current consistent snapshot of the maintained state.
func (d *DynamicBC) Scores() DynamicSnapshot {
	s := d.eng.Snapshot()
	return DynamicSnapshot{Graph: s.Graph, BC: s.BC, Version: s.Version, Seq: s.Seq, Sampled: s.Sampled}
}

// Graph returns the current immutable topology snapshot. Callers must not
// mutate it; use Apply.
func (d *DynamicBC) Graph() *Graph { return d.eng.Snapshot().Graph }

// Stats returns cumulative engine counters.
func (d *DynamicBC) Stats() DynamicStats { return d.eng.Stats() }

// Log returns the (possibly compacted) mutation history: replaying it on
// the graph the engine started from reproduces the current topology.
func (d *DynamicBC) Log() []Mutation { return d.eng.Log() }

// CompactLog rewrites the mutation log to its minimal replay-equivalent
// form.
func (d *DynamicBC) CompactLog() { d.eng.CompactLog() }
