package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
)

// TestEndToEndSession drives the production wiring (buildServer + NewMux)
// through a full client session: load a graph, query exact, query
// approximate, extract top-k, repeat to observe cache-hit metadata, evict.
func TestEndToEndSession(t *testing.T) {
	// A preloaded graph, as -preload would register it.
	dir := t.TempDir()
	path := filepath.Join(dir, "social.txt")
	g := repro.RMATGraph(6, 8, 42)
	if err := repro.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	// -dyn-procs 2: mutation batches run on the simulated 2-processor
	// machine, so the PATCH response must carry modeled communication.
	s, _, err := buildServer(serveConfig{workers: 1, cache: 64, dynProcs: 2}, "social="+path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewMux(s))
	defer ts.Close()

	post := func(path string, body any, wantStatus int, out any) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %s: status %d want %d", path, resp.StatusCode, wantStatus)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}

	// 1. Load a second graph over HTTP.
	var info server.GraphInfo
	post("/graphs/road", server.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, MaxWeight: 5, Seed: 7}, http.StatusCreated, &info)
	if info.N != 36 || !info.Weighted {
		t.Fatalf("loaded graph = %+v", info)
	}

	// 2. Exact query on the preloaded graph, full scores.
	var exact server.QueryResult
	post("/query", server.QueryRequest{Graph: "social", IncludeScores: true, K: 5}, http.StatusOK, &exact)
	if exact.Stats.CacheHit || len(exact.TopK) != 5 || len(exact.Scores) != g.N {
		t.Fatalf("exact query = %+v", exact.Stats)
	}
	oracle, err := repro.Compute(g, repro.Options{Engine: repro.EngineBrandes})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range oracle.BC {
		got := exact.Scores[v]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("served score[%d]=%g want %g", v, got, want)
		}
	}

	// 3. Approximate query: cheap path, distinct cache entry.
	var approx server.QueryResult
	post("/query", server.QueryRequest{Graph: "social", Samples: 8, Seed: 1, K: 3}, http.StatusOK, &approx)
	if approx.Stats.CacheHit || approx.Samples != 8 || len(approx.TopK) != 3 {
		t.Fatalf("approximate query = %+v", approx)
	}

	// 4. Top-k only repeat of the exact query: cache hit, same ranking.
	var repeat server.QueryResult
	post("/query", server.QueryRequest{Graph: "social", K: 5}, http.StatusOK, &repeat)
	if !repeat.Stats.CacheHit {
		t.Fatalf("repeat query must report cache_hit: %+v", repeat.Stats)
	}
	for i := range repeat.TopK {
		if repeat.TopK[i] != exact.TopK[i] {
			t.Fatalf("cached ranking diverged: %+v vs %+v", repeat.TopK, exact.TopK)
		}
	}

	// 5. Streaming update: PATCH the mesh with a mutation batch, then
	// confirm the bumped version answers from the warm-seeded scores.
	var before server.GraphInfo
	doReq := func(method, p string, body any, wantStatus int, out any) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(method, ts.URL+p, bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d want %d", method, p, resp.StatusCode, wantStatus)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}
	doReq(http.MethodGet, "/graphs/road", nil, http.StatusOK, &before)
	var mres server.MutateResult
	doReq(http.MethodPatch, "/graphs/road", server.MutateRequest{Mutations: []repro.Mutation{
		{Op: repro.MutAddEdge, U: 0, V: 35, W: 2},
		{Op: repro.MutSetWeight, U: 0, V: 1, W: 4},
	}}, http.StatusOK, &mres)
	if mres.Version == before.Version || mres.M != before.M+1 {
		t.Fatalf("mutation result %+v (before %+v)", mres, before)
	}
	if mres.Procs != 2 || mres.Plan == "" || mres.Comm.Bytes == 0 {
		t.Fatalf("distributed PATCH reported no machine-model stats: procs=%d plan=%q comm=%+v",
			mres.Procs, mres.Plan, mres.Comm)
	}
	var roadQ server.QueryResult
	post("/query", server.QueryRequest{Graph: "road", K: 3}, http.StatusOK, &roadQ)
	if roadQ.Version != mres.Version {
		t.Fatalf("post-mutation query version %016x, want %016x", roadQ.Version, mres.Version)
	}
	if !roadQ.Stats.CacheHit {
		t.Fatalf("post-mutation query must hit the warm-seeded cache: %+v", roadQ.Stats)
	}

	// 6. Evict and confirm the graph is gone.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/social", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("evict status %d", resp.StatusCode)
	}
	post("/query", server.QueryRequest{Graph: "social"}, http.StatusNotFound, nil)

	// The other graph is untouched.
	post("/query", server.QueryRequest{Graph: "road", K: 1}, http.StatusOK, nil)
}

func TestBuildServerPreloadErrors(t *testing.T) {
	if _, _, err := buildServer(serveConfig{workers: 1}, "badentry"); err == nil {
		t.Fatal("malformed -preload entry must fail")
	}
	if _, _, err := buildServer(serveConfig{workers: 1}, "g="+filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing preload file must fail")
	}
	s, _, err := buildServer(serveConfig{workers: 1}, " ")
	if err != nil || len(s.Graphs()) != 0 {
		t.Fatalf("blank preload must yield an empty registry: %v", err)
	}
}

// TestShutdownUnderLoad drives the production server wiring (listener +
// hardened http.Server + signal-triggered drain) through a shutdown while
// queries are in flight: every accepted request must complete with 200,
// serve must return a clean drain, and the listener must stop accepting.
func TestShutdownUnderLoad(t *testing.T) {
	s, _, err := buildServer(serveConfig{workers: 1, cache: 64}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGraph("g", repro.GridGraph(12, 12, 5, 7)); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(server.NewMux(s), httpTimeouts{
		readHeader: time.Second, read: 5 * time.Second, idle: time.Minute,
	})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, l, 30*time.Second) }()
	base := "http://" + l.Addr().String()

	// In-flight load: distinct sampled queries so each pays a real compute
	// instead of coalescing onto one flight.
	const inflight = 6
	status := make(chan int, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			body := fmt.Sprintf(`{"graph":"g","samples":16,"seed":%d,"k":3}`, i+1)
			resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				status <- -1
				return
			}
			resp.Body.Close()
			status <- resp.StatusCode
		}(i)
	}

	// Let the requests reach the server, then trigger the drain mid-compute
	// (the same path a SIGINT/SIGTERM takes through signal.NotifyContext).
	time.Sleep(20 * time.Millisecond)
	cancel()

	for i := 0; i < inflight; i++ {
		if st := <-status; st != http.StatusOK {
			t.Fatalf("in-flight request %d finished with %d during drain, want 200", i, st)
		}
	}
	if err := <-served; err != nil {
		t.Fatalf("serve returned %v, want clean drain", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeCleanCloseWithoutSignal pins the other serve exit path: closing
// the server directly (no signal) must surface as a clean nil, not
// http.ErrServerClosed.
func TestServeCleanCloseWithoutSignal(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(http.NewServeMux(), httpTimeouts{readHeader: time.Second})
	done := make(chan error, 1)
	go func() { done <- serve(context.Background(), srv, l, time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v on direct close, want nil", err)
	}
}

// TestObservabilitySurface drives the production wiring's observability
// stack: traced requests land in /debug/traces and the -trace-out JSONL
// sink, /metrics carries both the server counters and the runtime gauges
// only the serving binary registers, and the -debug-addr mux exposes
// pprof alongside them.
func TestObservabilitySurface(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traces.jsonl")
	s, _, err := buildServer(serveConfig{workers: 1, cache: 16, traceBuf: 8, traceSample: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s.Tracer().SetSink(f)

	ts := httptest.NewServer(server.NewMux(s))
	defer ts.Close()
	get := func(base, path string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d want %d", path, resp.StatusCode, wantStatus)
		}
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	b, _ := json.Marshal(server.GraphSpec{Kind: "grid", Rows: 4, Cols: 4, Seed: 1})
	resp, err := http.Post(ts.URL+"/graphs/g", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	b, _ = json.Marshal(server.QueryRequest{Graph: "g", K: 3})
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	metrics := get(ts.URL, "/metrics", http.StatusOK)
	for _, want := range []string{"mfbc_queries_total 1", "go_goroutines", "go_heap_alloc_bytes"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Root spans flush to the ring (and sink) just after the response; poll.
	deadline := time.Now().Add(5 * time.Second)
	var traces string
	for {
		traces = get(ts.URL, "/debug/traces", http.StatusOK)
		if strings.Contains(traces, `"name":"http.query"`) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{`"name":"http.query"`, `"name":"server.query"`, `"name":"http.register"`} {
		if !strings.Contains(traces, want) {
			t.Errorf("/debug/traces missing %q in %q", want, traces)
		}
	}
	sunk, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sunk), `"name":"http.query"`) {
		t.Errorf("-trace-out sink missing http.query trace: %q", sunk)
	}

	// The operator-only mux: pprof index plus the same two endpoints.
	dts := httptest.NewServer(debugMux(s))
	defer dts.Close()
	if idx := get(dts.URL, "/debug/pprof/", http.StatusOK); !strings.Contains(idx, "goroutine") {
		t.Error("pprof index missing goroutine profile")
	}
	if m := get(dts.URL, "/metrics", http.StatusOK); !strings.Contains(m, "mfbc_queries_total") {
		t.Error("debug mux /metrics missing server counters")
	}
	get(dts.URL, "/debug/traces", http.StatusOK)
}

// TestBuildServerTracingDisabled: -trace-buf 0 yields a nil tracer and a
// 404 on both trace endpoints.
func TestBuildServerTracingDisabled(t *testing.T) {
	s, _, err := buildServer(serveConfig{workers: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer() != nil {
		t.Fatal("traceBuf 0 must disable tracing")
	}
	dts := httptest.NewServer(debugMux(s))
	defer dts.Close()
	resp, err := http.Get(dts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("debug traces without tracer: %d want 404", resp.StatusCode)
	}
}
