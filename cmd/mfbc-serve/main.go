// Command mfbc-serve runs the betweenness-centrality query service as an
// HTTP/JSON server: a registry of named graphs, a result cache keyed by
// graph version and query parameters, single-flight deduplication of
// concurrent identical queries, and streaming updates — PATCH a graph with
// a mutation batch and the per-graph dynamic engine refreshes scores
// incrementally, re-running only the affected pivots (see internal/server
// and internal/dynamic).
//
// Examples:
//
//	mfbc-serve -addr :8080
//	mfbc-serve -addr :8080 -preload social=graph.txt -cache 512 -workers 0 -dirty 0.25
//	mfbc-serve -addr :8080 -dyn-procs 16 -log-compact 8192 -log-truncate
//	mfbc-serve -addr :8080 -trace-out traces.jsonl -slow-query 500ms -debug-addr 127.0.0.1:6060
//
// Then:
//
//	curl -X POST localhost:8080/graphs/demo -d '{"kind":"rmat","scale":10,"edge_factor":8,"seed":42}'
//	curl -X POST localhost:8080/query -d '{"graph":"demo","k":10}'
//	curl -X PATCH localhost:8080/graphs/demo -d '{"mutations":[{"op":"add_edge","u":3,"v":9,"w":1}]}'
//	curl -X POST localhost:8080/query -d '{"graph":"demo","k":10}'   # warm hit on the new version
//
// With -dyn-procs p, each PATCH re-runs its affected pivots on the
// simulated p-processor machine (stationary operands stay resident and are
// delta-patched between batches) and the response carries the modeled
// communication: {"procs":16,"plan":"4x2x2/X=B/YZ=AB","comm":{"bytes":...}}.
//
// The listener is a hardened http.Server (header/read/idle timeouts guard
// against slow-drip clients; see -read-header-timeout and friends) and
// SIGINT/SIGTERM drain in-flight requests for -shutdown-grace before the
// process exits.
//
// Observability: GET /metrics serves the Prometheus-text metric registry
// and GET /debug/traces the recent request traces as JSONL (bounded ring,
// -trace-buf entries; -trace-buf 0 disables tracing). -trace-sample keeps
// a probabilistic subset of traces under production rates — error and slow
// requests always survive the sampler, and the duration histograms carry
// exemplar trace/span IDs pointing into the retained traces. -trace-out
// streams every kept trace to a JSONL file as it completes. -slow-query
// logs a structured warning for any request slower than the threshold
// (and force-keeps its trace). -debug-addr
// opens a second, operator-only listener carrying net/http/pprof plus
// /metrics and /debug/traces — keep it off the public address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/machine/tcpnet"
	"repro/internal/obs"
	"repro/internal/rankrun"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "local kernel threads per compute (0 = all cores, 1 = sequential)")
	cache := flag.Int("cache", 256, "max cached results (negative disables caching)")
	preload := flag.String("preload", "", "comma-separated name=path edge-list files to register at startup")
	dirty := flag.Float64("dirty", 0, "mutation dirtiness threshold: affected-source fraction above which a PATCH recomputes fully (0 = default 0.25, negative = always incremental)")
	dynProcs := flag.Int("dyn-procs", 0, "run mutation re-computation on the simulated distributed machine with this many processors (≤1 = shared-memory path); PATCH responses then report modeled communication, per-phase stats, and the plan chosen")
	transport := flag.String("transport", "sim", "machine backend for distributed mutation re-computation: 'sim' (in-process simulated machine) or 'tcp' (rank-per-process mesh; this server is rank 0 and every other -peers entry must run cmd/mfbc-rank)")
	peersFlag := flag.String("peers", "", "with -transport tcp: comma-separated host:port of every rank in rank order; entry 0 is this server's machine endpoint (distinct from -addr)")
	rendezvous := flag.Duration("rendezvous", 0, "with -transport tcp: how long to keep retrying the mesh connect while ranks start (0 = 15s default)")
	dynCacheSets := flag.Int("dyn-cache-sets", 0, "bound each simulated rank's stationary-operand cache to this many working sets per matrix (LRU across plans; 0 = unbounded); evictions appear in /stats")
	dynSamples := flag.Int("dyn-samples", 0, "run each graph's dynamic engine in sampled mode with this source budget: PATCHes estimate instead of computing exactly and report a Hoeffding err_bound (0 = exact)")
	dynRefresh := flag.Int("dyn-refresh", 0, "exact-refresh cadence of sampled mode: every Nth PATCH recomputes exactly (0 = library default 8)")
	logCompact := flag.Int("log-compact", 0, "mutation-log bound per graph before automatic compaction/truncation (0 = default 4096, negative = unmanaged)")
	logTruncate := flag.Bool("log-truncate", false, "past the log bound, snapshot the graph as the new replay base and truncate the log instead of compacting it")
	ingestQueue := flag.Bool("ingest-queue", false, "async mutation ingestion: PATCH batches land in a per-graph write-ahead queue and a background applier coalesces the backlog into group-commit applies")
	ingestDurability := flag.String("ingest-durability", "applied", "default PATCH acknowledgment level with -ingest-queue: 'applied' (block until the group commit lands) or 'enqueued' (202 on enqueue; per-request override via the request's durability field)")
	ingestMaxDepth := flag.Int("ingest-max-depth", 256, "pending-batch bound per graph queue; beyond it PATCHes shed with 429 + Retry-After (negative = unbounded)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "max time to read a request's headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max time to read a full request including the body")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	writeTimeout := flag.Duration("write-timeout", 0, "max time to write a response (0 = unlimited; exact queries on large graphs can be slow)")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests to drain before forcing exit")
	traceBuf := flag.Int("trace-buf", 256, "request traces retained for GET /debug/traces (0 disables tracing)")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling probability for request traces in [0,1]: each trace is kept with this probability, except error (status ≥ 400) and slow (-slow-query) requests, which are always kept (1 = keep everything)")
	traceOut := flag.String("trace-out", "", "append every finished request trace to this JSONL file")
	slowQuery := flag.Duration("slow-query", 0, "log a structured warning for requests slower than this (0 = off)")
	debugAddr := flag.String("debug-addr", "", "operator-only listener with net/http/pprof, /metrics, and /debug/traces (empty = off)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	s, cleanup, err := buildServer(serveConfig{
		workers: *workers, cache: *cache, dirty: *dirty,
		dynProcs: *dynProcs, dynCacheSets: *dynCacheSets,
		dynSamples: *dynSamples, dynRefresh: *dynRefresh,
		logCompact: *logCompact, logTruncate: *logTruncate,
		ingestQueue: *ingestQueue, ingestDurability: *ingestDurability, ingestMaxDepth: *ingestMaxDepth,
		transport: *transport, peers: *peersFlag, rendezvous: *rendezvous,
		traceBuf: *traceBuf, traceSample: *traceSample,
		slowQuery: *slowQuery, logger: logger,
	}, *preload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-serve:", err)
		os.Exit(1)
	}
	defer cleanup()
	if *traceOut != "" {
		tr := s.Tracer()
		if tr == nil {
			fmt.Fprintln(os.Stderr, "mfbc-serve: -trace-out needs tracing enabled (-trace-buf > 0)")
			os.Exit(1)
		}
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfbc-serve:", err)
			os.Exit(1)
		}
		defer f.Close()
		tr.SetSink(f)
		logger.Info("streaming traces", "path", *traceOut)
	}
	for _, info := range s.Graphs() {
		logger.Info("preloaded graph", "name", info.Name, "n", info.N, "m", info.M,
			"directed", info.Directed, "weighted", info.Weighted,
			"version", fmt.Sprintf("%016x", info.Version))
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-serve:", err)
		os.Exit(1)
	}
	srv := newHTTPServer(server.NewMux(s), httpTimeouts{
		readHeader: *readHeaderTimeout, read: *readTimeout,
		write: *writeTimeout, idle: *idleTimeout,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfbc-serve:", err)
			os.Exit(1)
		}
		dsrv := &http.Server{Handler: debugMux(s), ReadHeaderTimeout: *readHeaderTimeout}
		go func() {
			if err := dsrv.Serve(dl); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		defer dsrv.Close()
		logger.Info("debug listener on", "addr", dl.Addr().String())
	}

	logger.Info("mfbc-serve listening", "addr", l.Addr().String())
	if err := serve(ctx, srv, l, *shutdownGrace); err != nil {
		logger.Error("mfbc-serve", "err", err)
		os.Exit(1)
	}
	logger.Info("mfbc-serve: drained and shut down")
}

// debugMux is the operator-only surface served on -debug-addr: the pprof
// endpoints plus the same /metrics and /debug/traces the API mux carries,
// so a locked-down deployment can keep all three off the public address.
func debugMux(s *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", s.Registry().Handler())
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if tr := s.Tracer(); tr != nil {
			tr.Handler().ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	})
	return mux
}

// httpTimeouts carries the connection-hardening knobs into newHTTPServer.
type httpTimeouts struct {
	readHeader, read, write, idle time.Duration
}

// newHTTPServer wraps the mux in a production-configured http.Server: a
// bare http.ListenAndServe has no header/read/idle timeouts, so a single
// slow-drip client (slowloris) can pin connections forever.
func newHTTPServer(h http.Handler, t httpTimeouts) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.readHeader,
		ReadTimeout:       t.read,
		WriteTimeout:      t.write,
		IdleTimeout:       t.idle,
	}
}

// serve runs srv on l until ctx is canceled, then drains in-flight
// requests for up to grace before forcing the remaining connections
// closed. A nil error means a clean drain (or a clean server close).
func serve(ctx context.Context, srv *http.Server, l net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		err := srv.Shutdown(sctx)
		// Serve has returned ErrServerClosed by now; surface only the
		// drain outcome (context.DeadlineExceeded if the grace ran out).
		<-errc
		return err
	}
}

// serveConfig carries the flag values into buildServer.
type serveConfig struct {
	workers, cache         int
	dirty                  float64
	dynProcs, dynCacheSets int
	dynSamples, dynRefresh int
	logCompact             int
	logTruncate            bool
	ingestQueue            bool
	ingestDurability       string
	ingestMaxDepth         int
	transport, peers       string
	rendezvous             time.Duration
	traceBuf               int
	// traceSample is the head-sampling keep probability handed to the
	// tracer (clamped to [0,1]). Note the zero value means "keep only
	// error/slow traces" — tests that assert on retained traces must set
	// it to 1 explicitly, matching the flag default.
	traceSample float64
	slowQuery   time.Duration
	logger      *slog.Logger
}

// buildServer wires flags into a ready service; split from main so the
// end-to-end test drives the exact production configuration. The serving
// binary is the one place the Go-runtime gauges are registered: library
// constructors keep the registry deterministic for byte-identical scrape
// tests.
//
// The returned cleanup shuts down whatever backend the transport flags
// brought up (the worker fleet on -transport tcp); call it after the
// HTTP listener drains.
func buildServer(cfg serveConfig, preload string) (*server.Server, func(), error) {
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	var tracer *obs.Tracer
	if cfg.traceBuf > 0 {
		tracer = obs.NewTracer(cfg.traceBuf)
		tracer.SetSampleRate(cfg.traceSample)
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}
	switch cfg.ingestDurability {
	case "", server.DurabilityApplied, server.DurabilityEnqueued:
	default:
		return nil, nil, fmt.Errorf("unknown -ingest-durability %q (want %q or %q)",
			cfg.ingestDurability, server.DurabilityApplied, server.DurabilityEnqueued)
	}
	scfg := server.Config{
		Workers: cfg.workers, CacheSize: cfg.cache, DirtyThreshold: cfg.dirty,
		DynProcs: cfg.dynProcs, DynCacheSets: cfg.dynCacheSets,
		DynSampleBudget: cfg.dynSamples, DynRefreshEvery: cfg.dynRefresh,
		LogCompactAt: cfg.logCompact, LogTruncate: cfg.logTruncate,
		IngestQueue: cfg.ingestQueue, IngestDurability: cfg.ingestDurability, IngestMaxDepth: cfg.ingestMaxDepth,
		Metrics: reg, Tracer: tracer, Logger: cfg.logger, SlowQuery: cfg.slowQuery,
	}
	cleanup := func() {}
	switch cfg.transport {
	case "", "sim":
		// In-process simulated machine: the library default.
	case "tcp":
		peers := splitPeers(cfg.peers)
		if len(peers) < 2 {
			return nil, nil, fmt.Errorf("-transport tcp needs -peers with at least two host:port entries, got %q", cfg.peers)
		}
		if cfg.dynProcs != 0 && cfg.dynProcs != len(peers) {
			return nil, nil, fmt.Errorf("-dyn-procs %d conflicts with %d-rank -peers list (omit -dyn-procs or make them equal)", cfg.dynProcs, len(peers))
		}
		scfg.DynProcs = len(peers)
		tr, err := tcpnet.Coordinate(peers, tcpnet.Options{Rendezvous: cfg.rendezvous})
		if err != nil {
			return nil, nil, fmt.Errorf("-transport tcp: %w", err)
		}
		driver, err := rankrun.NewDriver(tr)
		if err != nil {
			tr.Close()
			return nil, nil, err
		}
		scfg.NewDynamic = tcpDynFactory(driver)
		cleanup = func() {
			if err := driver.Shutdown(); err != nil {
				logger.Warn("worker shutdown", "err", err)
			}
			tr.Close()
		}
		logger.Info("tcp machine mesh up", "ranks", len(peers), "endpoint", peers[0])
	default:
		return nil, nil, fmt.Errorf("unknown -transport %q (want sim or tcp)", cfg.transport)
	}
	s := server.New(scfg)
	for _, pair := range strings.Split(preload, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok || name == "" || path == "" {
			cleanup()
			return nil, nil, fmt.Errorf("bad -preload entry %q (want name=path)", pair)
		}
		if _, err := s.LoadGraph(name, path); err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("preload %q: %w", name, err)
		}
	}
	return s, cleanup, nil
}

// tcpDynFactory builds the server's streaming engines on the replicated
// worker fleet. It keeps the per-name engine registry so a graph replaced
// or evicted on the server also drops its replicas on the workers before
// a same-named engine is rebuilt.
func tcpDynFactory(driver *rankrun.Driver) func(string, *repro.Graph, repro.DynamicOptions) (server.DynEngine, error) {
	var mu sync.Mutex
	engines := make(map[string]*rankrun.Engine)
	return func(name string, g *repro.Graph, opt repro.DynamicOptions) (server.DynEngine, error) {
		mu.Lock()
		defer mu.Unlock()
		if old := engines[name]; old != nil {
			if err := old.Close(); err != nil {
				return nil, fmt.Errorf("dropping stale replicas of %q: %w", name, err)
			}
			delete(engines, name)
		}
		opt.Procs = driver.Size()
		eng, err := driver.NewEngine(name, g, opt)
		if err != nil {
			return nil, err
		}
		engines[name] = eng
		return eng, nil
	}
}

// splitPeers parses the comma-separated peer list, trimming blanks.
func splitPeers(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
