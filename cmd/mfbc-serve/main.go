// Command mfbc-serve runs the betweenness-centrality query service as an
// HTTP/JSON server: a registry of named graphs, a result cache keyed by
// graph version and query parameters, single-flight deduplication of
// concurrent identical queries, and streaming updates — PATCH a graph with
// a mutation batch and the per-graph dynamic engine refreshes scores
// incrementally, re-running only the affected pivots (see internal/server
// and internal/dynamic).
//
// Examples:
//
//	mfbc-serve -addr :8080
//	mfbc-serve -addr :8080 -preload social=graph.txt -cache 512 -workers 0 -dirty 0.25
//	mfbc-serve -addr :8080 -dyn-procs 16 -log-compact 8192 -log-truncate
//
// Then:
//
//	curl -X POST localhost:8080/graphs/demo -d '{"kind":"rmat","scale":10,"edge_factor":8,"seed":42}'
//	curl -X POST localhost:8080/query -d '{"graph":"demo","k":10}'
//	curl -X PATCH localhost:8080/graphs/demo -d '{"mutations":[{"op":"add_edge","u":3,"v":9,"w":1}]}'
//	curl -X POST localhost:8080/query -d '{"graph":"demo","k":10}'   # warm hit on the new version
//
// With -dyn-procs p, each PATCH re-runs its affected pivots on the
// simulated p-processor machine (stationary operands stay resident and are
// delta-patched between batches) and the response carries the modeled
// communication: {"procs":16,"plan":"4x2x2/X=B/YZ=AB","comm":{"bytes":...}}.
//
// The listener is a hardened http.Server (header/read/idle timeouts guard
// against slow-drip clients; see -read-header-timeout and friends) and
// SIGINT/SIGTERM drain in-flight requests for -shutdown-grace before the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "local kernel threads per compute (0 = all cores, 1 = sequential)")
	cache := flag.Int("cache", 256, "max cached results (negative disables caching)")
	preload := flag.String("preload", "", "comma-separated name=path edge-list files to register at startup")
	dirty := flag.Float64("dirty", 0, "mutation dirtiness threshold: affected-source fraction above which a PATCH recomputes fully (0 = default 0.25, negative = always incremental)")
	dynProcs := flag.Int("dyn-procs", 0, "run mutation re-computation on the simulated distributed machine with this many processors (≤1 = shared-memory path); PATCH responses then report modeled communication, per-phase stats, and the plan chosen")
	dynCacheSets := flag.Int("dyn-cache-sets", 0, "bound each simulated rank's stationary-operand cache to this many working sets per matrix (LRU across plans; 0 = unbounded); evictions appear in /stats")
	dynSamples := flag.Int("dyn-samples", 0, "run each graph's dynamic engine in sampled mode with this source budget: PATCHes estimate instead of computing exactly and report a Hoeffding err_bound (0 = exact)")
	dynRefresh := flag.Int("dyn-refresh", 0, "exact-refresh cadence of sampled mode: every Nth PATCH recomputes exactly (0 = library default 8)")
	logCompact := flag.Int("log-compact", 0, "mutation-log bound per graph before automatic compaction/truncation (0 = default 4096, negative = unmanaged)")
	logTruncate := flag.Bool("log-truncate", false, "past the log bound, snapshot the graph as the new replay base and truncate the log instead of compacting it")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "max time to read a request's headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max time to read a full request including the body")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	writeTimeout := flag.Duration("write-timeout", 0, "max time to write a response (0 = unlimited; exact queries on large graphs can be slow)")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests to drain before forcing exit")
	flag.Parse()

	s, err := buildServer(serveConfig{
		workers: *workers, cache: *cache, dirty: *dirty,
		dynProcs: *dynProcs, dynCacheSets: *dynCacheSets,
		dynSamples: *dynSamples, dynRefresh: *dynRefresh,
		logCompact: *logCompact, logTruncate: *logTruncate,
	}, *preload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-serve:", err)
		os.Exit(1)
	}
	for _, info := range s.Graphs() {
		log.Printf("preloaded graph %q: n=%d m=%d directed=%v weighted=%v version=%016x",
			info.Name, info.N, info.M, info.Directed, info.Weighted, info.Version)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-serve:", err)
		os.Exit(1)
	}
	srv := newHTTPServer(server.NewMux(s), httpTimeouts{
		readHeader: *readHeaderTimeout, read: *readTimeout,
		write: *writeTimeout, idle: *idleTimeout,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("mfbc-serve listening on %s", l.Addr())
	if err := serve(ctx, srv, l, *shutdownGrace); err != nil {
		log.Fatalf("mfbc-serve: %v", err)
	}
	log.Printf("mfbc-serve: drained and shut down")
}

// httpTimeouts carries the connection-hardening knobs into newHTTPServer.
type httpTimeouts struct {
	readHeader, read, write, idle time.Duration
}

// newHTTPServer wraps the mux in a production-configured http.Server: a
// bare http.ListenAndServe has no header/read/idle timeouts, so a single
// slow-drip client (slowloris) can pin connections forever.
func newHTTPServer(h http.Handler, t httpTimeouts) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.readHeader,
		ReadTimeout:       t.read,
		WriteTimeout:      t.write,
		IdleTimeout:       t.idle,
	}
}

// serve runs srv on l until ctx is canceled, then drains in-flight
// requests for up to grace before forcing the remaining connections
// closed. A nil error means a clean drain (or a clean server close).
func serve(ctx context.Context, srv *http.Server, l net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		err := srv.Shutdown(sctx)
		// Serve has returned ErrServerClosed by now; surface only the
		// drain outcome (context.DeadlineExceeded if the grace ran out).
		<-errc
		return err
	}
}

// serveConfig carries the flag values into buildServer.
type serveConfig struct {
	workers, cache         int
	dirty                  float64
	dynProcs, dynCacheSets int
	dynSamples, dynRefresh int
	logCompact             int
	logTruncate            bool
}

// buildServer wires flags into a ready service; split from main so the
// end-to-end test drives the exact production configuration.
func buildServer(cfg serveConfig, preload string) (*server.Server, error) {
	s := server.New(server.Config{
		Workers: cfg.workers, CacheSize: cfg.cache, DirtyThreshold: cfg.dirty,
		DynProcs: cfg.dynProcs, DynCacheSets: cfg.dynCacheSets,
		DynSampleBudget: cfg.dynSamples, DynRefreshEvery: cfg.dynRefresh,
		LogCompactAt: cfg.logCompact, LogTruncate: cfg.logTruncate,
	})
	for _, pair := range strings.Split(preload, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("bad -preload entry %q (want name=path)", pair)
		}
		if _, err := s.LoadGraph(name, path); err != nil {
			return nil, fmt.Errorf("preload %q: %w", name, err)
		}
	}
	return s, nil
}
