package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/machine/tcpnet"
	"repro/internal/rankrun"
	"repro/internal/server"
)

// reservePorts grabs n loopback addresses. The listeners are closed
// before the mesh binds them; the rendezvous retry window absorbs the
// tiny race.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestTCPTransportEndToEnd drives the full production deployment shape in
// one process: buildServer in -transport tcp mode as rank 0, three
// worker ranks running the cmd/mfbc-rank loop, a PATCH over HTTP — whose
// machine regions now run over real TCP — and the differential against
// an identical -transport sim server. It also pins the observability
// acceptance criterion: after the PATCH, /metrics reports nonzero
// measured wall seconds alongside the modeled seconds for every machine
// phase of the apply.
func TestTCPTransportEndToEnd(t *testing.T) {
	const ranks = 4
	peers := reservePorts(t, ranks)

	var wg sync.WaitGroup
	workerErrs := make([]error, ranks)
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := tcpnet.Join(r, peers, tcpnet.Options{})
			if err != nil {
				workerErrs[r] = err
				return
			}
			defer tr.Close()
			workerErrs[r] = rankrun.ServeWorker(tr)
		}(r)
	}

	tcpSrv, cleanup, err := buildServer(serveConfig{
		workers: 1, cache: 64,
		transport: "tcp", peers: strings.Join(peers, ","),
	}, "")
	if err != nil {
		t.Fatalf("tcp buildServer: %v", err)
	}
	simSrv, _, err := buildServer(serveConfig{workers: 1, cache: 64, dynProcs: ranks}, "")
	if err != nil {
		t.Fatalf("sim buildServer: %v", err)
	}

	tcpTS := httptest.NewServer(server.NewMux(tcpSrv))
	defer tcpTS.Close()
	simTS := httptest.NewServer(server.NewMux(simSrv))
	defer simTS.Close()

	do := func(ts *httptest.Server, method, path string, body any, out any) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s %s: status %d: %s", method, path, resp.StatusCode, raw)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}

	spec := server.GraphSpec{Kind: "grid", Rows: 6, Cols: 6, MaxWeight: 5, Seed: 7}
	batch := server.MutateRequest{Mutations: []repro.Mutation{
		{Op: repro.MutAddEdge, U: 0, V: 35, W: 2},
		{Op: repro.MutSetWeight, U: 0, V: 1, W: 4},
	}}
	results := make(map[string]server.QueryResult)
	for name, ts := range map[string]*httptest.Server{"tcp": tcpTS, "sim": simTS} {
		do(ts, http.MethodPost, "/graphs/road", spec, nil)
		var mres server.MutateResult
		do(ts, http.MethodPatch, "/graphs/road", batch, &mres)
		if mres.Procs != ranks {
			t.Fatalf("%s PATCH ran with procs=%d, want %d", name, mres.Procs, ranks)
		}
		var qres server.QueryResult
		do(ts, http.MethodPost, "/query", server.QueryRequest{Graph: "road", IncludeScores: true}, &qres)
		results[name] = qres
	}

	tcpBC, simBC := results["tcp"].Scores, results["sim"].Scores
	if len(tcpBC) == 0 || len(tcpBC) != len(simBC) {
		t.Fatalf("score shapes: tcp %d, sim %d", len(tcpBC), len(simBC))
	}
	for v := range tcpBC {
		if tcpBC[v] != simBC[v] {
			t.Fatalf("score[%d]: tcp %v != sim %v", v, tcpBC[v], simBC[v])
		}
	}

	// Acceptance: after the tcpnet PATCH, /metrics carries the
	// modeled-vs-measured pair for every machine phase of the apply. The
	// modeled totals are part of the deterministic program, so they must
	// equal the sim server's to the bit; measured wall is real TCP time,
	// so it only has to be present per phase and nonzero in aggregate.
	scrape := func(ts *httptest.Server) (modeled, measured map[string]float64) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return phaseTotals(t, string(raw), "mfbc_phase_model_seconds_total"),
			phaseTotals(t, string(raw), "mfbc_phase_wall_seconds_total")
	}
	tcpModeled, tcpMeasured := scrape(tcpTS)
	simModeled, _ := scrape(simTS)
	if len(tcpModeled) == 0 {
		t.Fatal("no mfbc_phase_model_seconds_total series after a distributed PATCH")
	}
	if len(tcpModeled) != len(simModeled) {
		t.Fatalf("phase sets diverged: tcp %v, sim %v", tcpModeled, simModeled)
	}
	var wallSum float64
	for phase, m := range tcpModeled {
		if sm, ok := simModeled[phase]; !ok || sm != m {
			t.Errorf("phase %q: tcp modeled total %v, sim %v", phase, m, simModeled[phase])
		}
		w, ok := tcpMeasured[phase]
		if !ok {
			t.Errorf("phase %q: no measured wall series", phase)
		}
		wallSum += w
	}
	if wallSum <= 0 {
		t.Fatalf("measured wall totals sum to %v, want > 0: %v", wallSum, tcpMeasured)
	}

	cleanup() // shuts the worker fleet down
	wg.Wait()
	for r := 1; r < ranks; r++ {
		if workerErrs[r] != nil {
			t.Errorf("worker rank %d: %v", r, workerErrs[r])
		}
	}
}

// phaseTotals extracts {phase label → value} for one metric family from a
// Prometheus text exposition.
func phaseTotals(t *testing.T, exposition, family string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		rest := line[len(family)+1:]
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("unparseable metric line %q", line)
		}
		label := rest[:end]
		label = strings.TrimPrefix(label, `phase="`)
		label = strings.TrimSuffix(label, `"`)
		val, err := strconv.ParseFloat(strings.TrimSpace(rest[end+1:]), 64)
		if err != nil {
			t.Fatalf("metric line %q: %v", line, err)
		}
		out[label] = val
	}
	return out
}
