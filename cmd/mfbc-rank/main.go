// Command mfbc-rank is one worker process of a rank-per-process TCP
// machine. It joins the mesh at its assigned rank, adopts the
// coordinator's cost model and watchdog timeout through the rendezvous
// handshake, and then mirrors the coordinator's streaming engines: every
// engine build and mutation batch the coordinator (mfbc-serve
// -transport tcp, always rank 0) broadcasts is replayed on a local
// replica, with this process contributing its rank's shard of every
// machine region (see internal/rankrun).
//
// Start one process per peer-list entry, every process with the same
// -peers value:
//
//	mfbc-serve -transport tcp -peers 10.0.0.1:7000,10.0.0.2:7000,10.0.0.3:7000 &
//	mfbc-rank  -rank 1 -peers 10.0.0.1:7000,10.0.0.2:7000,10.0.0.3:7000 &
//	mfbc-rank  -rank 2 -peers 10.0.0.1:7000,10.0.0.2:7000,10.0.0.3:7000 &
//
// The process exits 0 on the coordinator's orderly shutdown and nonzero
// when the mesh fails (a lost peer poisons the whole machine; restart
// the fleet to recover).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/machine/tcpnet"
	"repro/internal/rankrun"
)

func main() {
	rank := flag.Int("rank", 0, "this process's rank (1..p-1; rank 0 is the mfbc-serve coordinator)")
	peers := flag.String("peers", "", "comma-separated host:port of every rank, in rank order (identical on all processes)")
	rendezvous := flag.Duration("rendezvous", 0, "how long to keep retrying the mesh connect while peers start (0 = 15s default)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	list := splitPeers(*peers)
	if len(list) < 2 {
		fmt.Fprintln(os.Stderr, "mfbc-rank: -peers needs at least two host:port entries")
		os.Exit(2)
	}
	if *rank < 1 || *rank >= len(list) {
		fmt.Fprintf(os.Stderr, "mfbc-rank: -rank must be in 1..%d\n", len(list)-1)
		os.Exit(2)
	}

	start := time.Now()
	tr, err := tcpnet.Join(*rank, list, tcpnet.Options{Rendezvous: *rendezvous})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-rank:", err)
		os.Exit(1)
	}
	defer tr.Close()
	logger.Info("joined mesh", "rank", *rank, "ranks", len(list),
		"rendezvous", time.Since(start).Round(time.Millisecond), "addr", list[*rank])

	if err := rankrun.ServeWorker(tr); err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-rank:", err)
		os.Exit(1)
	}
	logger.Info("coordinator shut down; exiting", "rank", *rank)
}

// splitPeers parses the comma-separated peer list, trimming blanks.
func splitPeers(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
