// Command mfbc-load is the production load harness for the BC query
// service: a deterministic workload generator and load driver with
// saturation analysis (see internal/load).
//
// Workloads mix cohorts — read-heavy top-k users, exact-query users,
// sampled-approximation dashboard pollers, and mutation-heavy PATCH
// streamers — each with its own key-popularity distribution over a set of
// seeded graphs. Traces are deterministic in -seed and can be recorded to
// and replayed from JSONL.
//
// Two modes:
//
//	-mode run     one measured run: open loop (-loop open, Poisson
//	              arrivals at -rate shaped by -schedule) or closed loop
//	              (-loop closed, per-cohort client populations)
//	-mode sweep   saturation sweep: step offered load through -rates,
//	              stop past the knee, report it
//
// The target is a live server (-addr http://host:8080) or, with -addr
// empty, an in-process server — no sockets — suitable for CI.
//
// Examples:
//
//	mfbc-load -mode run -loop closed -duration 5s
//	mfbc-load -addr http://localhost:8080 -mode run -rate 200 -schedule diurnal:0.5@30s
//	mfbc-load -mode sweep -rates 50,100,200,400,800 -step-duration 5s -json BENCH_load.json
//	mfbc-load -quick -json BENCH_load.json
//	mfbc-load -quick -ingest -cohorts ingest -json BENCH_load_async.json -baseline BENCH_load.json
//
// -json emits the same point schema as mfbc-bench -json (BENCH_*.json),
// so load results live next to the modeled-performance baselines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-load:", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mfbc-load:", err)
		os.Exit(1)
	}
}

// cliConfig is the parsed flag set.
type cliConfig struct {
	addr     string
	mode     string
	loop     string
	rate     float64
	schedule string
	duration time.Duration
	window   time.Duration
	inflight int
	rates    string
	stepDur  time.Duration
	cohorts  string
	zipf     float64
	graphs   string
	seed     int64
	workers  int
	cache    int
	jsonPath string
	record   string
	replay   string
	traceOut string
	quick    bool

	ingest           bool
	ingestDurability string
	ingestMaxDepth   int
	baseline         string
}

func parseFlags(args []string) (cliConfig, error) {
	var c cliConfig
	fs := flag.NewFlagSet("mfbc-load", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", "", "base URL of a live server (empty = in-process server)")
	fs.StringVar(&c.mode, "mode", "run", "run | sweep")
	fs.StringVar(&c.loop, "loop", "open", "run-mode driver discipline: open | closed")
	fs.Float64Var(&c.rate, "rate", 50, "open-loop offered rate, requests/second")
	fs.StringVar(&c.schedule, "schedule", "constant", "open-loop rate schedule: constant | step:F@D | diurnal:A@D")
	fs.DurationVar(&c.duration, "duration", 10*time.Second, "run-mode duration")
	fs.DurationVar(&c.window, "window", time.Second, "latency/stats window width")
	fs.IntVar(&c.inflight, "inflight", 64, "open-loop bound on outstanding requests")
	fs.StringVar(&c.rates, "rates", "25,50,100,200,400", "sweep-mode offered rates, ascending")
	fs.DurationVar(&c.stepDur, "step-duration", 5*time.Second, "sweep-mode duration per rate step")
	fs.StringVar(&c.cohorts, "cohorts", "default", `cohort mix: "default" or name=kind:weight[,...] (kinds exact|topk|sampled|mutate)`)
	fs.Float64Var(&c.zipf, "zipf", 1.5, "zipf exponent of skewed cohorts (> 1)")
	fs.StringVar(&c.graphs, "graphs", "hot=grid:10x10x5,warm=uniform:120x480",
		"workload graphs: name=kind:dims[,...] (grid:RxC[xW] | uniform:NxM | rmat:SxEF)")
	fs.Int64Var(&c.seed, "seed", 42, "workload seed (same seed → identical trace)")
	fs.IntVar(&c.workers, "workers", 1, "in-process server: kernel threads per compute")
	fs.IntVar(&c.cache, "cache", 256, "in-process server: result-cache size")
	fs.StringVar(&c.jsonPath, "json", "", "write bench points (mfbc-bench schema) to this file")
	fs.StringVar(&c.record, "record", "", "record the generated open-loop trace to this JSONL file")
	fs.StringVar(&c.replay, "replay", "", "replay an open-loop trace from this JSONL file instead of generating")
	fs.StringVar(&c.traceOut, "trace-out", "", "in-process mode: enable request tracing on the embedded server and stream finished traces to this JSONL file")
	fs.BoolVar(&c.quick, "quick", false, "CI preset: small in-process saturation sweep (overrides most knobs)")
	fs.BoolVar(&c.ingest, "ingest", false, "in-process server: enable the async ingestion pipeline (write-ahead queue + group commit)")
	fs.StringVar(&c.ingestDurability, "ingest-durability", "applied",
		"in-process server with -ingest: default PATCH ack durability, applied | enqueued")
	fs.IntVar(&c.ingestMaxDepth, "ingest-max-depth", 256,
		"in-process server with -ingest: per-graph queue bound before 429 backpressure (negative = unbounded)")
	fs.StringVar(&c.baseline, "baseline", "",
		"sweep mode: bench-points JSON of a prior sweep; fail if the measured knee regresses below its knee rate")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.quick {
		// Small enough to finish in tens of seconds on one core, hot
		// enough that the top rate saturates it.
		c.mode = "sweep"
		c.addr = ""
		c.graphs = "hot=grid:8x8x5,warm=uniform:48x160"
		c.cohorts = "readers=topk:4,dashboards=sampled:2,writers=mutate:1"
		c.rates = "40,120,360,1080"
		c.stepDur = 1500 * time.Millisecond
		c.window = 500 * time.Millisecond
		c.inflight = 32
		c.workers = 1
	}
	return c, nil
}

// parseGraphs parses the -graphs grammar into seeded workload graphs.
func parseGraphs(spec string, seed int64) ([]*load.SeededGraph, error) {
	var graphs []*load.SeededGraph
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -graphs entry %q (want name=kind:dims)", entry)
		}
		kind, dims, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("bad -graphs entry %q (want name=kind:dims)", entry)
		}
		var nums []int
		for _, d := range strings.Split(dims, "x") {
			v, err := strconv.Atoi(d)
			if err != nil {
				return nil, fmt.Errorf("bad -graphs dims in %q: %w", entry, err)
			}
			nums = append(nums, v)
		}
		gs := server.GraphSpec{Kind: kind, Seed: seed + int64(i)}
		switch {
		case kind == "grid" && len(nums) == 2:
			gs.Rows, gs.Cols = nums[0], nums[1]
		case kind == "grid" && len(nums) == 3:
			gs.Rows, gs.Cols, gs.MaxWeight = nums[0], nums[1], nums[2]
		case kind == "uniform" && len(nums) == 2:
			gs.N, gs.M = nums[0], nums[1]
		case kind == "rmat" && len(nums) == 2:
			gs.Scale, gs.EdgeFactor = nums[0], nums[1]
		default:
			return nil, fmt.Errorf("bad -graphs entry %q: %s wants grid:RxC[xW], uniform:NxM, or rmat:SxEF", entry, kind)
		}
		sg, err := load.NewSeededGraph(name, gs)
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, sg)
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("-graphs is empty")
	}
	return graphs, nil
}

// parseCohorts parses the -cohorts grammar.
func parseCohorts(spec string, zipfS float64) ([]load.CohortSpec, error) {
	switch spec {
	case "default":
		cohorts := load.DefaultCohorts()
		for i := range cohorts {
			cohorts[i].ZipfS = zipfS
		}
		return cohorts, nil
	case "ingest":
		cohorts := load.IngestCohorts()
		for i := range cohorts {
			cohorts[i].ZipfS = zipfS
		}
		return cohorts, nil
	}
	var cohorts []load.CohortSpec
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -cohorts entry %q (want name=kind[:weight])", entry)
		}
		kind, weightStr, hasWeight := strings.Cut(rest, ":")
		c := load.CohortSpec{Name: name, Kind: kind, ZipfS: zipfS}
		if kind == "sampled" {
			c.Popularity = "zipf" // dashboards poll a skewed key set
		}
		if hasWeight {
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -cohorts weight in %q: %w", entry, err)
			}
			c.Weight = w
		}
		cohorts = append(cohorts, c)
	}
	if len(cohorts) == 0 {
		return nil, fmt.Errorf("-cohorts is empty")
	}
	return cohorts, nil
}

func parseRates(spec string) ([]float64, error) {
	var rates []float64
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		r, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -rates entry %q: %w", s, err)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-rates is empty")
	}
	return rates, nil
}

func run(cfg cliConfig, out io.Writer) error {
	graphs, err := parseGraphs(cfg.graphs, cfg.seed)
	if err != nil {
		return err
	}
	cohorts, err := parseCohorts(cfg.cohorts, cfg.zipf)
	if err != nil {
		return err
	}

	switch cfg.ingestDurability {
	case "", server.DurabilityApplied, server.DurabilityEnqueued:
	default:
		return fmt.Errorf("unknown -ingest-durability %q (want %s|%s)",
			cfg.ingestDurability, server.DurabilityApplied, server.DurabilityEnqueued)
	}

	var tg load.Target
	if cfg.addr != "" {
		if cfg.traceOut != "" {
			return fmt.Errorf("-trace-out drives the in-process server; against a live server use mfbc-serve -trace-out")
		}
		if cfg.ingest {
			return fmt.Errorf("-ingest configures the in-process server; against a live server use mfbc-serve -ingest-queue")
		}
		tg = load.NewHTTPTarget(cfg.addr, 2*cfg.inflight)
	} else {
		scfg := server.Config{Workers: cfg.workers, CacheSize: cfg.cache}
		if cfg.ingest {
			scfg.IngestQueue = true
			scfg.IngestDurability = cfg.ingestDurability
			scfg.IngestMaxDepth = cfg.ingestMaxDepth
		}
		if cfg.traceOut != "" {
			f, err := os.Create(cfg.traceOut)
			if err != nil {
				return fmt.Errorf("-trace-out: %w", err)
			}
			defer f.Close()
			tracer := obs.NewTracer(64)
			tracer.SetSink(f)
			scfg.Tracer = tracer
		}
		tg = load.NewInprocTarget(scfg)
	}
	defer tg.Close()
	if err := load.Seed(tg, graphs); err != nil {
		return err
	}

	var points []bench.Point
	switch cfg.mode {
	case "sweep":
		rates, err := parseRates(cfg.rates)
		if err != nil {
			return err
		}
		res, err := load.RunSweep(tg, load.SweepConfig{
			Cohorts:      cohorts,
			Graphs:       graphs,
			Rates:        rates,
			StepDuration: cfg.stepDur,
			Window:       cfg.window,
			MaxInflight:  cfg.inflight,
			Seed:         cfg.seed,
		})
		if err != nil {
			return err
		}
		printSweep(out, res)
		for _, p := range res.Points {
			if err := p.Run.CrossCheck(); err != nil {
				fmt.Fprintf(out, "WARNING (rate %.0f): %v\n", p.Offered, err)
			}
		}
		if cfg.baseline != "" {
			if err := checkBaseline(out, cfg.baseline, res); err != nil {
				return err
			}
		}
		points = res.BenchPoints(graphs)

	case "run":
		if cfg.baseline != "" {
			return fmt.Errorf("-baseline applies to sweep mode only")
		}
		res, err := runOnce(tg, cfg, cohorts, graphs)
		if err != nil {
			return err
		}
		printRun(out, res)
		if err := res.CrossCheck(); err != nil {
			fmt.Fprintf(out, "WARNING: %v\n", err)
		}
		points = res.BenchPoints(graphs)

	default:
		return fmt.Errorf("unknown -mode %q (want run|sweep)", cfg.mode)
	}

	if cfg.jsonPath != "" {
		if err := writeJSON(cfg.jsonPath, points); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		fmt.Fprintf(out, "wrote %d points to %s\n", len(points), cfg.jsonPath)
	}
	return nil
}

func runOnce(tg load.Target, cfg cliConfig, cohorts []load.CohortSpec, graphs []*load.SeededGraph) (*load.RunResult, error) {
	tc := load.TraceConfig{
		Cohorts: cohorts,
		Graphs:  graphs,
		Horizon: cfg.duration,
		Seed:    cfg.seed,
	}
	switch cfg.loop {
	case "closed":
		if cfg.record != "" || cfg.replay != "" {
			return nil, fmt.Errorf("-record/-replay apply to open-loop runs only")
		}
		return load.RunClosedLoop(tg, tc, cfg.window)
	case "open":
		var trace []load.Request
		if cfg.replay != "" {
			f, err := os.Open(cfg.replay)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			trace, err = load.ReadTrace(f)
			if err != nil {
				return nil, err
			}
		} else {
			sched, err := load.ParseSchedule(cfg.schedule, cfg.rate)
			if err != nil {
				return nil, err
			}
			tc.Schedule = sched
			trace, err = load.GenerateTrace(tc)
			if err != nil {
				return nil, err
			}
		}
		if cfg.record != "" {
			f, err := os.Create(cfg.record)
			if err != nil {
				return nil, err
			}
			if err := load.WriteTrace(f, trace); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
		return load.RunOpenLoop(tg, trace, cfg.rate, cfg.window, cfg.inflight)
	}
	return nil, fmt.Errorf("unknown -loop %q (want open|closed)", cfg.loop)
}

func printCohorts(tw *tabwriter.Writer, sums []load.CohortSummary) {
	for _, c := range sums {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			c.Cohort, c.Requests, c.Errors, c.RPS, c.GoodputRPS,
			c.Lat.P50MS, c.Lat.P95MS, c.Lat.P99MS, c.Lat.MaxMS)
	}
}

func printRun(out io.Writer, res *load.RunResult) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "run: %d requests, %d errors in %.2fs\n",
		res.Total.Requests, res.Total.Errors, res.Elapsed.Seconds())
	fmt.Fprintf(tw, "  cohort\treq\terr\trps\tgoodput\tp50ms\tp95ms\tp99ms\tmaxms\n")
	printCohorts(tw, res.Cohorts)
	printCohorts(tw, []load.CohortSummary{res.Total})
	tw.Flush()
	if ss := res.ServerSummary(); ss != nil {
		clip := ""
		if ss.Clipped {
			clip = " (quantile past last finite bucket; edges clipped)"
		}
		fmt.Fprintf(out, "server side: %d requests, p50≤%.1fms p95≤%.1fms p99≤%.1fms%s\n",
			ss.Requests, ss.P50MS, ss.P95MS, ss.P99MS, clip)
	}
}

func printSweep(out io.Writer, res *load.SweepResult) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "offered\tachieved\tgoodput\tp50ms\tp99ms\tqw99ms\terr\tsaturated\n")
	for _, p := range res.Points {
		fmt.Fprintf(tw, "%.0f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%d\t%v\n",
			p.Offered, p.Run.Total.RPS, p.Run.Total.GoodputRPS,
			p.Run.Total.Lat.P50MS, p.Run.Total.Lat.P99MS,
			p.Run.Total.QueueWait.P99MS,
			p.Run.Total.Errors, p.Saturated)
	}
	tw.Flush()
	switch {
	case res.KneeFound:
		fmt.Fprintf(out, "knee: %.0f req/s (highest sustained rate before saturation)\n", res.KneeRPS)
	case res.KneeIndex >= 0:
		fmt.Fprintf(out, "no knee found: service sustained every offered rate up to %.0f req/s\n", res.KneeRPS)
	default:
		fmt.Fprintf(out, "no knee found: even the lowest offered rate saturated the service\n")
	}
}

// checkBaseline compares the measured sweep knee against a prior sweep's
// bench points (the row flagged Knee: true) and errors on regression —
// the CI gate that keeps async-ingestion throughput from silently
// eroding. Sustaining every offered rate (knee unbracketed but
// KneeIndex ≥ 0) passes as long as the top sustained rate is at least
// the baseline knee.
func checkBaseline(out io.Writer, path string, res *load.SweepResult) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var points []bench.Point
	if err := json.Unmarshal(b, &points); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	baseKnee := 0.0
	for _, p := range points {
		if p.Knee && p.OfferedRPS > baseKnee {
			baseKnee = p.OfferedRPS
		}
	}
	if !(baseKnee > 0) {
		return fmt.Errorf("-baseline %s: no point has knee: true", path)
	}
	if res.KneeIndex < 0 {
		return fmt.Errorf("knee regression: even the lowest offered rate saturated (baseline knee %.0f req/s)", baseKnee)
	}
	if res.KneeRPS < baseKnee {
		return fmt.Errorf("knee regression: sustained %.0f req/s, baseline knee %.0f req/s", res.KneeRPS, baseKnee)
	}
	fmt.Fprintf(out, "baseline gate: sustained %.0f req/s >= baseline knee %.0f req/s\n", res.KneeRPS, baseKnee)
	return nil
}

// writeJSON dumps the points as an indented JSON array, the same format
// mfbc-bench -json writes, so one plotting pipeline reads both.
func writeJSON(path string, points []bench.Point) error {
	b, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
