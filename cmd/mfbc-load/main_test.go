package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

func TestParsers(t *testing.T) {
	graphs, err := parseGraphs("a=grid:4x5x3,b=uniform:30x90,c=rmat:5x4", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 3 || graphs[0].N() != 20 || graphs[1].N() != 30 {
		t.Fatalf("graphs = %+v", graphs)
	}
	for _, bad := range []string{"", "noeq", "g=grid:4", "g=torus:4x4", "g=grid:axb"} {
		if _, err := parseGraphs(bad, 1); err == nil {
			t.Fatalf("-graphs %q must be rejected", bad)
		}
	}

	cohorts, err := parseCohorts("r=topk:4,w=mutate:1", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cohorts) != 2 || cohorts[0].Name != "r" || cohorts[1].Kind != "mutate" {
		t.Fatalf("cohorts = %+v", cohorts)
	}
	def, err := parseCohorts("default", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 3 {
		t.Fatalf("default cohorts = %+v", def)
	}
	for _, bad := range []string{"", "noeq", "x=topk:abc"} {
		if _, err := parseCohorts(bad, 1.5); err == nil {
			t.Fatalf("-cohorts %q must be rejected", bad)
		}
	}

	rates, err := parseRates("10, 20,40")
	if err != nil || len(rates) != 3 {
		t.Fatalf("rates = %v, %v", rates, err)
	}
	if _, err := parseRates("10,x"); err == nil {
		t.Fatal("bad -rates must be rejected")
	}
}

// TestQuickSweepEmitsJSON drives the CI entry point end to end: the quick
// preset (extended with headroom rates so even a fast machine saturates)
// must complete, report per-cohort throughput and latency percentiles,
// find a knee, and emit parseable bench points in the mfbc-bench schema.
func TestQuickSweepEmitsJSON(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "points.json")
	cfg, err := parseFlags([]string{"-quick", "-json", jsonPath})
	if err != nil {
		t.Fatal(err)
	}
	// Headroom: the sweep stops at the first saturated step, so faster
	// machines walk further up instead of finishing without a knee.
	cfg.rates += ",3240,9720,29160"

	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "knee: ") {
		t.Fatalf("quick sweep found no knee:\n%s", out.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var points []bench.Point
	if err := json.Unmarshal(raw, &points); err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no bench points written")
	}
	cohortRows := map[string]int{}
	kneeRows, saturatedAgg := 0, 0
	for _, p := range points {
		if p.Experiment != "load-sweep" || p.Engine != "server" {
			t.Fatalf("point mislabeled: %+v", p)
		}
		if p.Requests == 0 || !(p.AchievedRPS > 0) {
			t.Fatalf("point carries no traffic: %+v", p)
		}
		if !(p.P50MS > 0) || p.P99MS < p.P50MS || p.MaxMS < p.P99MS {
			t.Fatalf("latency percentiles inconsistent: %+v", p)
		}
		cohortRows[p.Cohort]++
		if p.Knee {
			kneeRows++
		}
		if p.Cohort == "all" && p.Saturated {
			saturatedAgg++
		}
	}
	for _, want := range []string{"all", "readers", "dashboards", "writers"} {
		if cohortRows[want] == 0 {
			t.Fatalf("no rows for cohort %q (have %v)", want, cohortRows)
		}
	}
	if kneeRows != 1 {
		t.Fatalf("knee rows = %d, want exactly 1", kneeRows)
	}
	if saturatedAgg == 0 {
		t.Fatal("sweep never saturated despite headroom rates")
	}
}

// TestIngestSweepAndBaselineGate drives the async-ingestion CI entry
// point: the "ingest" cohort alias, the -ingest in-process pipeline, and
// the -baseline knee-regression gate in both its passing and failing
// directions.
func TestIngestSweepAndBaselineGate(t *testing.T) {
	cohorts, err := parseCohorts("ingest", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cohorts) != 2 || cohorts[1].Kind != "mutate" {
		t.Fatalf("ingest cohorts = %+v", cohorts)
	}

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "pts.json")
	writeBase := func(name string, knee float64) string {
		t.Helper()
		path := filepath.Join(dir, name)
		b, err := json.Marshal([]bench.Point{
			{Experiment: "load-sweep", Cohort: "all", OfferedRPS: knee, Knee: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cfg, err := parseFlags([]string{
		"-mode", "sweep", "-cohorts", "ingest", "-ingest",
		"-graphs", "g=grid:6x6x5", "-rates", "30,60",
		"-step-duration", "400ms", "-window", "200ms",
		"-json", jsonPath, "-baseline", writeBase("base_low.json", 25),
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("ingest sweep failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "baseline gate: ") {
		t.Fatalf("output missing baseline-gate line:\n%s", out.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var points []bench.Point
	if err := json.Unmarshal(raw, &points); err != nil {
		t.Fatal(err)
	}
	commits := int64(0)
	for _, p := range points {
		if p.Cohort == "all" {
			commits += p.IngestCommits
		}
	}
	if commits == 0 {
		t.Fatalf("ingest sweep recorded no group commits:\n%s", string(raw))
	}

	// An unreachable baseline knee must fail the gate.
	cfg.baseline = writeBase("base_high.json", 1e9)
	if err := run(cfg, &out); err == nil || !strings.Contains(err.Error(), "knee regression") {
		t.Fatalf("gate must fail against a 1e9 baseline knee, got %v", err)
	}
	// A baseline with no knee row is a usage error, not a silent pass.
	noKnee := filepath.Join(dir, "base_noknee.json")
	if err := os.WriteFile(noKnee, []byte(`[{"cohort":"all","offered_rps":30}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.baseline = noKnee
	if err := run(cfg, &out); err == nil || !strings.Contains(err.Error(), "knee: true") {
		t.Fatalf("baseline without a knee row must be rejected, got %v", err)
	}

	// -ingest configures the embedded server only.
	live, err := parseFlags([]string{"-addr", "http://127.0.0.1:1", "-ingest"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(live, &out); err == nil || !strings.Contains(err.Error(), "-ingest") {
		t.Fatalf("live-server -ingest must be rejected, got %v", err)
	}
	bad, err := parseFlags([]string{"-ingest", "-ingest-durability", "eventually"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(bad, &out); err == nil || !strings.Contains(err.Error(), "-ingest-durability") {
		t.Fatalf("bad durability must be rejected, got %v", err)
	}
}

// TestRecordReplay pins the CLI's record/replay loop: an open-loop run
// recorded to JSONL and replayed must observe exactly the same request
// count (the trace is the workload; the driver adds nothing).
func TestRecordReplay(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	jsonA := filepath.Join(dir, "a.json")
	jsonB := filepath.Join(dir, "b.json")

	base := cliConfig{
		mode: "run", loop: "open", rate: 80, schedule: "constant",
		duration: 400 * time.Millisecond, window: 200 * time.Millisecond,
		inflight: 16, cohorts: "readers=topk:3,writers=mutate:1", zipf: 1.5,
		graphs: "g=grid:6x6x5", seed: 5, workers: 1, cache: 64,
	}

	rec := base
	rec.record, rec.jsonPath = tracePath, jsonA
	var out bytes.Buffer
	if err := run(rec, &out); err != nil {
		t.Fatal(err)
	}

	rep := base
	rep.replay, rep.jsonPath = tracePath, jsonB
	if err := run(rep, &out); err != nil {
		t.Fatal(err)
	}

	readAgg := func(path string) bench.Point {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var points []bench.Point
		if err := json.Unmarshal(raw, &points); err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			if p.Cohort == "all" {
				if p.Experiment != "load-run" {
					t.Fatalf("run-mode point mislabeled: %+v", p)
				}
				return p
			}
		}
		t.Fatalf("no aggregate row in %s", path)
		return bench.Point{}
	}
	a, b := readAgg(jsonA), readAgg(jsonB)
	if a.Requests == 0 || a.Requests != b.Requests {
		t.Fatalf("recorded run saw %d requests, replay saw %d", a.Requests, b.Requests)
	}
	if a.ReqErrors != 0 || b.ReqErrors != 0 {
		t.Fatalf("errors: record %d, replay %d", a.ReqErrors, b.ReqErrors)
	}
}

// TestClosedLoopCLI smoke-tests the closed-loop path through the CLI.
func TestClosedLoopCLI(t *testing.T) {
	cfg := cliConfig{
		mode: "run", loop: "closed",
		duration: 300 * time.Millisecond, window: 100 * time.Millisecond,
		cohorts: "default", zipf: 1.5,
		graphs: "g=grid:6x6x5", seed: 3, workers: 1, cache: 64,
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"readers", "dashboards", "writers", "p99ms"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("closed-loop output missing %q:\n%s", want, out.String())
		}
	}
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag must be rejected")
	}
}

// TestTraceOutAndServerSummary pins the observability wiring of the CLI:
// -trace-out streams the embedded server's request traces to JSONL, the
// run report carries the server-side /metrics summary, and the bench
// points carry the server-observed request count and percentiles.
func TestTraceOutAndServerSummary(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	jsonPath := filepath.Join(dir, "points.json")
	cfg, err := parseFlags([]string{
		"-mode", "run", "-loop", "closed", "-duration", "300ms",
		"-graphs", "g=grid:6x6x5", "-trace-out", tracePath, "-json", jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "server side: ") {
		t.Fatalf("run output missing server-side summary:\n%s", out.String())
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Fatalf("client/server cross-check failed:\n%s", out.String())
	}

	traces, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"http.query"`, `"name":"server.query"`} {
		if !strings.Contains(string(traces), want) {
			t.Fatalf("trace JSONL missing %q", want)
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var points []bench.Point
	if err := json.Unmarshal(raw, &points); err != nil {
		t.Fatal(err)
	}
	agg := points[0]
	if agg.Cohort != "all" || agg.ServerRequests == 0 || agg.ServerRequests != agg.Requests {
		t.Fatalf("aggregate point server fields: %+v", agg)
	}
	if !(agg.ServerP99MS > 0) || agg.ServerP50MS > agg.ServerP99MS {
		t.Fatalf("server percentiles inconsistent: %+v", agg)
	}

	// -trace-out cannot instrument a remote server.
	cfg.addr = "http://127.0.0.1:1"
	if err := run(cfg, &out); err == nil || !strings.Contains(err.Error(), "-trace-out") {
		t.Fatalf("live-server -trace-out must be rejected, got %v", err)
	}
}
