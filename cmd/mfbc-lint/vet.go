package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"repro/internal/lint/analysis"
)

// vetConfig mirrors the JSON compilation-unit description the go command
// hands a vet tool (the unitchecker Config). Fields the suite does not
// use (facts, gccgo specifics) are kept for decode compatibility.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single compilation unit described by cfgFile, per
// the go vet -vettool protocol: diagnostics to stderr as file:line:col
// lines, exit 1 when there are findings, 0 otherwise.
func runVet(cfgFile string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	// The suite defines no cross-package facts, but the go command still
	// expects the promised output file to exist for its cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // the compiler will report it better
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  vetImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// vetImporter resolves imports through the export-data files the go
// command already compiled for the unit's dependencies.
func vetImporter(cfg *vetConfig, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
