// Command mfbc-lint runs the repository's custom determinism/concurrency
// analyzers (internal/lint) in two modes:
//
//	mfbc-lint [packages]          standalone: load from source and check
//	go vet -vettool=$(realpath bin/mfbc-lint) ./...
//	                              vet mode: driven by the go command
//
// Standalone mode resolves packages from the enclosing module from source
// (no export data needed); with no arguments or "./..." it checks every
// package in the module. Vet mode implements the unitchecker command-line
// protocol (-V=full, -flags, unit.cfg) so the go command can cache and
// parallelize runs per compilation unit.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfbc-lint: ")

	analyzers := lint.Analyzers()

	fs := flag.NewFlagSet("mfbc-lint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mfbc-lint [-<analyzer>=false] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	version := fs.String("V", "", "print version and exit (-V=full, for the go command)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
	enabled := make(map[string]*bool)
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Parse(os.Args[1:])

	if *version != "" {
		doVersion(*version)
		return
	}
	if *printFlags {
		doPrintFlags(analyzers)
		return
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVet(args[0], active)
		return
	}
	runStandalone(args, active)
}

// doVersion implements -V=full: the go command hashes the reply (which
// embeds a content hash of the executable) into its build cache keys.
func doVersion(v string) {
	if v != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", v)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// doPrintFlags implements -flags: the go command asks which flags the
// tool accepts so it can forward `go vet -<analyzer>` selections.
func doPrintFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{}
	for _, a := range analyzers {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
	}
	data, err := json.Marshal(out)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// runStandalone loads packages from source and analyzes them.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) {
	cwd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, err := loader.FindModuleRoot(cwd)
	if err != nil {
		log.Fatal(err)
	}
	l, err := loader.New(root)
	if err != nil {
		log.Fatal(err)
	}

	paths, err := resolvePatterns(l, cwd, patterns)
	if err != nil {
		log.Fatal(err)
	}

	exit := 0
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		if len(pkg.Errs) > 0 {
			for _, e := range pkg.Errs {
				fmt.Fprintln(os.Stderr, e)
			}
			log.Fatalf("%s: refusing to analyze a package that does not type-check", path)
		}
		diags, err := analysis.Run(l.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", relPos(cwd, pos.String()), d.Message, d.Analyzer)
			exit = 1
		}
	}
	os.Exit(exit)
}

// resolvePatterns turns command-line package patterns into module import
// paths. Supported: none or "./..." (whole module), "./dir" (relative),
// and explicit import paths.
func resolvePatterns(l *loader.Loader, cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			for _, p := range all {
				add(p)
			}
		case strings.HasPrefix(pat, "."):
			dir := filepath.Join(cwd, pat)
			rel, err := filepath.Rel(l.ModuleRoot, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("package %s is outside module %s", pat, l.ModulePath)
			}
			if rel == "." {
				add(l.ModulePath)
			} else {
				add(l.ModulePath + "/" + filepath.ToSlash(rel))
			}
		default:
			add(pat)
		}
	}
	return out, nil
}

func relPos(cwd, pos string) string {
	if rel, err := filepath.Rel(cwd, pos); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return pos
}
