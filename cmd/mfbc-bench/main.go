// Command mfbc-bench regenerates the tables and figures of the paper's
// evaluation section on the simulated machine. Run with -list to see the
// experiment ids and -exp all to reproduce everything.
//
// Example:
//
//	mfbc-bench -exp fig1a -procs 1,4,16,64 -batch 32
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiment ids and exit")
	procs := flag.String("procs", "1,4,16,64", "comma-separated simulated node counts")
	workers := flag.Int("workers", 0, "local kernel threads per simulated rank (0 = fair share of all cores; 1 = sequential)")
	scale := flag.Int("scale", 1, "stand-in graph scale multiplier")
	batch := flag.Int("batch", 32, "sources per timed batch")
	seed := flag.Int64("seed", 42, "generator seed")
	quick := flag.Bool("quick", false, "shrink workloads (smoke test)")
	transport := flag.String("transport", "sim", "machine backend for distributed runs: 'sim' (in-process simulated machine) or 'tcp' (loopback rank-per-process mesh per run; modeled columns are identical, wall_sec measures real transport overhead)")
	samples := flag.String("samples", "", "comma-separated sample budgets for the streaming-dist sampled-mode axis (empty = skip the sweep)")
	jsonPath := flag.String("json", "", "write all bench points as a JSON array to this path (BENCH_*.json)")
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mfbc-bench: -exp is required (use -list to enumerate)")
		os.Exit(2)
	}

	parseInts := func(flagName, s string) []int {
		var out []int
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.Atoi(tok)
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "mfbc-bench: bad %s %q\n", flagName, tok)
				os.Exit(2)
			}
			out = append(out, v)
		}
		return out
	}
	cfg := bench.Config{
		Out:       os.Stdout,
		Procs:     parseInts("proc count", *procs),
		Workers:   *workers,
		Scale:     *scale,
		Batch:     *batch,
		Seed:      *seed,
		Quick:     *quick,
		Samples:   parseInts("sample budget", *samples),
		Transport: *transport,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments
	}
	points := make([]bench.Point, 0, 64)
	for _, id := range ids {
		pts, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mfbc-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		points = append(points, pts...)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, points); err != nil {
			fmt.Fprintf(os.Stderr, "mfbc-bench: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mfbc-bench: wrote %d points to %s\n", len(points), *jsonPath)
	}
}

// writeJSON dumps the collected points as an indented JSON array, so the
// perf trajectory across runs is machine-readable rather than stderr-only.
func writeJSON(path string, points []bench.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
