// Command mfbc computes betweenness centrality for a graph with a selected
// engine, optionally on a simulated distributed machine with communication
// accounting.
//
// Examples:
//
//	mfbc -rmat 10,8 -engine mfbc -procs 16 -top 10
//	mfbc -in graph.txt -engine combblas -procs 4
//	mfbc -standin orkut-sim -engine mfbc -procs 64 -batch 64 -comm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	in := flag.String("in", "", "edge-list file to load")
	rmat := flag.String("rmat", "", "generate R-MAT graph: scale,edgefactor")
	uniform := flag.String("uniform", "", "generate uniform graph: n,m")
	standin := flag.String("standin", "", "generate a SNAP stand-in (orkut-sim, ...)")
	weights := flag.Int("weights", 0, "add uniform integer weights in [1,w]")
	directed := flag.Bool("directed", false, "generated graph is directed")
	engine := flag.String("engine", "mfbc", "engine: mfbc | brandes | combblas")
	procs := flag.Int("procs", 1, "simulated processors")
	workers := flag.Int("workers", 0, "local kernel threads per processor (0 = all cores, shared across simulated ranks; 1 = sequential)")
	batch := flag.Int("batch", 0, "batch size n_b (0 = default)")
	top := flag.Int("top", 10, "print the top-k central vertices")
	comm := flag.Bool("comm", false, "print the communication report")
	normalize := flag.Bool("normalize", false, "normalize scores by (n-1)(n-2)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "write all scores to a file (vertex<TAB>score)")
	flag.Parse()

	g, err := buildGraph(*in, *rmat, *uniform, *standin, *directed, *seed)
	if err != nil {
		fail(err)
	}
	if *weights > 1 {
		g.AddUniformWeights(1, *weights, *seed+1)
	}
	fmt.Printf("graph %s: n=%d m=%d directed=%v weighted=%v\n", g.Name, g.N, g.M(), g.Directed, g.Weighted)

	res, err := repro.Compute(g, repro.Options{
		Engine:    repro.Engine(*engine),
		Procs:     *procs,
		Workers:   *workers,
		Batch:     *batch,
		Normalize: *normalize,
	})
	if err != nil {
		fail(err)
	}
	if res.Plan != "" {
		fmt.Printf("engine=%s procs=%d plan=%s iterations=%d\n", res.Engine, res.Procs, res.Plan, res.Iterations)
	} else {
		fmt.Printf("engine=%s iterations=%d\n", res.Engine, res.Iterations)
	}
	if *comm {
		fmt.Printf("comm: %.3f MB, %d msgs, %d Mflops | modeled %.4fs (comm %.4fs) | wall %.3fs\n",
			float64(res.Comm.Bytes)/1e6, res.Comm.Msgs, res.Comm.Flops/1e6,
			res.Comm.ModelSec, res.Comm.CommSec, res.Comm.WallSec)
	}
	for rank, v := range repro.TopK(res.BC, *top) {
		fmt.Printf("#%-3d vertex %-8d bc %.6g\n", rank+1, v, res.BC[v])
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		for v, x := range res.BC {
			fmt.Fprintf(f, "%d\t%.12g\n", v, x)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d scores to %s\n", len(res.BC), *out)
	}
}

func buildGraph(in, rmat, uniform, standin string, directed bool, seed int64) (*repro.Graph, error) {
	switch {
	case in != "":
		return repro.LoadGraph(in)
	case rmat != "":
		s, e, err := pairArg(rmat)
		if err != nil {
			return nil, fmt.Errorf("bad -rmat %q: %w", rmat, err)
		}
		g := repro.RMATGraph(s, e, seed)
		g.Directed = directed
		return g, nil
	case uniform != "":
		n, m, err := pairArg(uniform)
		if err != nil {
			return nil, fmt.Errorf("bad -uniform %q: %w", uniform, err)
		}
		return repro.UniformGraph(n, m, directed, seed), nil
	case standin != "":
		return repro.StandinGraph(standin, 1, seed)
	default:
		return nil, fmt.Errorf("one of -in, -rmat, -uniform, -standin is required")
	}
}

func pairArg(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want two comma-separated integers")
	}
	a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mfbc:", err)
	os.Exit(1)
}
