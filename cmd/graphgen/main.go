// Command graphgen generates benchmark graphs in the library's edge-list
// format: R-MAT power-law graphs, uniform random graphs, meshes, and the
// paper's SNAP stand-ins.
//
// Examples:
//
//	graphgen -kind rmat -scale 12 -edgefactor 16 -out rmat.txt
//	graphgen -kind uniform -n 10000 -m 200000 -directed -out uni.txt
//	graphgen -kind standin -name patents-sim -out patents.txt
//	graphgen -kind grid -rows 64 -cols 64 -maxw 10 -out road.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/graph"
)

func main() {
	kind := flag.String("kind", "rmat", "rmat | uniform | grid | standin")
	scale := flag.Int("scale", 10, "rmat: log2 vertex count")
	edgefactor := flag.Int("edgefactor", 8, "rmat: average degree target")
	n := flag.Int("n", 1024, "uniform: vertices")
	m := flag.Int("m", 8192, "uniform: edges")
	rows := flag.Int("rows", 32, "grid: rows")
	cols := flag.Int("cols", 32, "grid: columns")
	maxw := flag.Int("maxw", 1, "grid: maximum integer weight (1 = unweighted)")
	name := flag.String("name", "orkut-sim", "standin: id")
	directed := flag.Bool("directed", false, "generate a directed graph")
	weights := flag.Int("weights", 0, "add uniform integer weights in [1,w]")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print graph statistics to stderr")
	flag.Parse()

	var g *repro.Graph
	var err error
	switch *kind {
	case "rmat":
		opt := graph.DefaultRMAT(*scale, *edgefactor, *seed)
		opt.Directed = *directed
		g = graph.RMAT(opt)
	case "uniform":
		g = repro.UniformGraph(*n, *m, *directed, *seed)
	case "grid":
		g = repro.GridGraph(*rows, *cols, *maxw, *seed)
	case "standin":
		g, err = repro.StandinGraph(*name, 1, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fail(err)
	}
	if *weights > 1 {
		g.AddUniformWeights(1, *weights, *seed+1)
	}
	if *stats {
		st := graph.ComputeStats(g, 32, *seed)
		fmt.Fprintf(os.Stderr, "n=%d m=%d k=%.2f maxdeg=%d diam=%d effdiam=%.1f reach=%.2f\n",
			st.N, st.M, st.AvgDegree, st.MaxDegree, st.Diameter, st.EffDiam, st.Reachable)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
