package repro

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

// TestEnginesAgree is the top-level acceptance test: all three engines
// produce identical scores on an unweighted graph, sequentially and
// distributed.
func TestEnginesAgree(t *testing.T) {
	g := RMATGraph(7, 8, 3)
	oracle, err := Compute(g, Options{Engine: EngineBrandes})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{Engine: EngineMFBC},
		{Engine: EngineMFBC, Procs: 4},
		{Engine: EngineMFBC, Procs: 9, Batch: 16},
		{Engine: EngineCombBLAS},
		{Engine: EngineCombBLAS, Procs: 4},
	} {
		res, err := Compute(g, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		for v := range oracle.BC {
			if !almostEqual(res.BC[v], oracle.BC[v]) {
				t.Fatalf("engine %s p=%d: BC[%d]=%g want %g", opt.Engine, opt.Procs, v, res.BC[v], oracle.BC[v])
			}
		}
	}
}

// TestWorkersKnobInvariant: the public Workers knob must not change scores
// in any engine path (sequential fast path, simulated distributed, and
// against the Brandes oracle).
func TestWorkersKnobInvariant(t *testing.T) {
	g := RMATGraph(7, 8, 3)
	oracle, err := Compute(g, Options{Engine: EngineBrandes})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{Engine: EngineMFBC, Workers: 4},
		{Engine: EngineMFBC, Workers: 0},
		{Engine: EngineMFBC, Procs: 4, Workers: 3},
	} {
		res, err := Compute(g, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		for v := range oracle.BC {
			if !almostEqual(res.BC[v], oracle.BC[v]) {
				t.Fatalf("workers=%d p=%d: BC[%d]=%g want %g", opt.Workers, opt.Procs, v, res.BC[v], oracle.BC[v])
			}
		}
	}
}

func TestWeightedOnlyMFBC(t *testing.T) {
	g := GridGraph(5, 5, 9, 1)
	oracle, err := Compute(g, Options{Engine: EngineBrandes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, Options{Engine: EngineMFBC, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range oracle.BC {
		if !almostEqual(res.BC[v], oracle.BC[v]) {
			t.Fatalf("BC[%d]=%g want %g", v, res.BC[v], oracle.BC[v])
		}
	}
	if _, err := Compute(g, Options{Engine: EngineCombBLAS}); err == nil {
		t.Fatal("combblas engine must reject weighted graphs")
	}
}

func TestSourcesBatchMode(t *testing.T) {
	g := UniformGraph(60, 300, false, 5)
	sources := []int32{3, 17, 42}
	partial, err := Compute(g, Options{Engine: EngineMFBC, Procs: 2, Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Compute(g, Options{Engine: EngineBrandes, Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	for v := range oracle.BC {
		if !almostEqual(partial.BC[v], oracle.BC[v]) {
			t.Fatalf("partial BC[%d]=%g want %g", v, partial.BC[v], oracle.BC[v])
		}
	}
}

func TestNormalizeScores(t *testing.T) {
	g := UniformGraph(30, 120, false, 6)
	raw, err := Compute(g, Options{Engine: EngineMFBC})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Compute(g, Options{Engine: EngineMFBC, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	scale := float64(g.N-1) * float64(g.N-2)
	for v := range raw.BC {
		if !almostEqual(norm.BC[v]*scale, raw.BC[v]) {
			t.Fatalf("normalization wrong at %d", v)
		}
		if norm.BC[v] < 0 || norm.BC[v] > 1 {
			t.Fatalf("normalized score %g outside [0,1]", norm.BC[v])
		}
	}
}

func TestTopK(t *testing.T) {
	bc := []float64{1, 9, 3, 9, 0}
	top := TopK(bc, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if got := TopK(bc, 99); len(got) != len(bc) {
		t.Fatal("TopK must clamp k")
	}
}

func TestCommReportPopulated(t *testing.T) {
	g := RMATGraph(7, 8, 9)
	res, err := Compute(g, Options{Engine: EngineMFBC, Procs: 8, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Bytes == 0 || res.Comm.Msgs == 0 || res.Comm.Flops == 0 {
		t.Fatalf("comm report empty: %+v", res.Comm)
	}
	if res.Plan == "" || res.Iterations == 0 {
		t.Fatal("metadata missing")
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := RMATGraph(6, 6, 11)
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	h, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.M() != g.M() {
		t.Fatal("file round trip changed the graph")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownEngine(t *testing.T) {
	g := UniformGraph(10, 20, false, 1)
	if _, err := Compute(g, Options{Engine: "nope"}); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if _, err := Compute(nil, Options{}); err == nil {
		t.Fatal("nil graph must fail")
	}
}

func TestShortestPaths(t *testing.T) {
	g := GridGraph(5, 5, 7, 2)
	seq, err := ShortestPaths(g, []int32{0, 12}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ShortestPaths(g, []int32{0, 12}, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := range seq.Dist {
		for v := range seq.Dist[s] {
			if seq.Dist[s][v] != dist.Dist[s][v] || seq.Counts[s][v] != dist.Counts[s][v] {
				t.Fatalf("sequential and distributed SSSP disagree at (%d,%d)", s, v)
			}
		}
	}
	if seq.Dist[0][0] != 0 || seq.Counts[0][0] != 1 {
		t.Fatal("source self-distance must be 0 with multiplicity 1")
	}
}

// TestApproximateBC checks the sampling estimator: unbiased scaling and a
// sane top-vertex on a structured graph.
func TestApproximateBC(t *testing.T) {
	// On a star graph every source contributes identically, so sampling
	// must reproduce the exact (scaled) answer.
	star := &Graph{Name: "star", N: 21}
	for i := 1; i < 21; i++ {
		star.Edges = append(star.Edges, Edge{U: 0, V: int32(i), W: 1})
	}
	exact, err := Compute(star, Options{Engine: EngineBrandes})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproximateBC(star, 5, 3, Options{Engine: EngineMFBC})
	if err != nil {
		t.Fatal(err)
	}
	// Spokes are interchangeable: hub estimate must be within 25% even
	// with 5 of 21 samples (only the hub-vs-spoke source mix varies).
	if approx.BC[0] < exact.BC[0]*0.7 || approx.BC[0] > exact.BC[0]*1.3 {
		t.Fatalf("hub estimate %g far from exact %g", approx.BC[0], exact.BC[0])
	}
	if top := TopK(approx.BC, 1); top[0] != 0 {
		t.Fatalf("approximation missed the hub: top=%d", top[0])
	}
	// samples ≥ n degenerates to the exact computation.
	full, err := ApproximateBC(star, 100, 3, Options{Engine: EngineMFBC})
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact.BC {
		if !almostEqual(full.BC[v], exact.BC[v]) {
			t.Fatal("full-sample approximation must be exact")
		}
	}
	if _, err := ApproximateBC(star, 0, 1, Options{}); err == nil {
		t.Fatal("zero samples must fail")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 7 {
		t.Fatalf("expected at least 7 experiments, got %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %s", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"table2", "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "table3"} {
		if !seen[want] {
			t.Fatalf("missing paper artifact %s", want)
		}
	}
}
