# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make check` is the pre-push bundle.

GO ?= go
BIN := bin/mfbc-lint

.PHONY: all build lint lint-standalone test race bench load-quick load-async tidy-check fmt-check check clean

all: build

build:
	$(GO) build ./...

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/mfbc-lint

FORCE:

## lint: run the custom determinism/concurrency analyzers through go vet
## (cached and parallel per package).
lint: $(BIN)
	$(GO) vet -vettool=$(CURDIR)/$(BIN) ./...

## lint-standalone: same suite via the source-loading driver (no build
## cache involved; useful when iterating on the analyzers themselves).
lint-standalone: $(BIN)
	./$(BIN) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the paper's experiment driver in quick mode.
bench:
	$(GO) run ./cmd/mfbc-bench -exp scaling -quick

## load-quick: in-process saturation sweep of the query service (the CI
## load check; writes bench points in the mfbc-bench JSON schema).
load-quick:
	$(GO) run ./cmd/mfbc-load -quick -json BENCH_load_quick.json

## load-async: the BENCH_load.json workload with the async ingestion
## pipeline on, gated against the committed synchronous knee (the CI
## regression check for write-ahead-queue throughput).
load-async:
	$(GO) run ./cmd/mfbc-load -mode sweep -ingest -ingest-durability enqueued \
		-graphs hot=grid:8x8x5,warm=uniform:48x160 \
		-cohorts readers=topk:4,writers=mutate:1 \
		-rates 120,360,720,1080,2160,4320,8640,17280,34560 \
		-step-duration 2s -window 500ms -inflight 32 \
		-json BENCH_load_async.json -baseline BENCH_load.json

tidy-check:
	$(GO) mod tidy -diff

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

check: build fmt-check tidy-check lint test

clean:
	rm -rf bin
