package machine

// Canonical phase names. Proc.Phase attributes per-phase cost that is
// joined across reports, benches, and the PATCH response by *name*, so the
// set of names is a closed registry: a region that invented its own
// spelling ("Sweep", "sweeping", …) would silently fork the attribution
// key space and break every cross-report join. The mfbc-lint phasenames
// analyzer mechanically enforces that every Proc.Phase call site passes a
// string constant drawn from this registry (test files are exempt — phase
// bookkeeping tests deliberately use off-registry names).
//
// Grow the registry here, in one place, when a new region phase is born.
const (
	// PhaseStage: staging an operand onto the machine (redistribution,
	// fiber replication) ahead of the multiply supersteps.
	PhaseStage = "stage"
	// PhaseDiff: computing the old/new operand difference of an
	// incremental apply (edit extraction, pair lifting).
	PhaseDiff = "diff"
	// PhasePatch: splicing a mutation diff into resident working sets in
	// place of re-staging.
	PhasePatch = "patch"
	// PhaseProbe: the affected-source detection probes (multi-source
	// reverse SSSP) that scope an incremental apply.
	PhaseProbe = "probe"
	// PhaseSweep: the forward Bellman-Ford / Brandes back-propagation
	// supersteps, the multiply-heavy body of a region.
	PhaseSweep = "sweep"
	// PhaseReduce: folding per-rank partial results into the final
	// centrality contributions.
	PhaseReduce = "reduce"
)

// CanonicalPhases lists the registry in declaration order. The returned
// slice is fresh on every call; callers may sort or mutate it.
func CanonicalPhases() []string {
	return []string{PhaseStage, PhaseDiff, PhasePatch, PhaseProbe, PhaseSweep, PhaseReduce}
}

// IsCanonicalPhase reports whether name is in the phase registry.
func IsCanonicalPhase(name string) bool {
	switch name {
	case PhaseStage, PhaseDiff, PhasePatch, PhaseProbe, PhaseSweep, PhaseReduce:
		return true
	}
	return false
}
