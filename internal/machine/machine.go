// Package machine defines the distributed-memory machine abstraction of
// the paper: p processors communicating exclusively through
// bulk-synchronous collectives (broadcast, reduce, allreduce, gather,
// allgather, scatter, all-to-all, and sparse reductions), the same
// collective set the paper's §5.1 cost model covers.
//
// The package itself is backend-neutral: the collectives are written
// against the Group interface (one BSP superstep per collective), and a
// Transport runs SPMD regions over some concrete backend. Two backends
// exist: machine/sim simulates all p ranks as goroutines inside one
// process (modeled cost only), and machine/tcpnet runs rank-per-process
// over real TCP sockets (modeled cost plus measured wall clock).
//
// Every collective moves real data (callers never alias each other's
// buffers) and charges an α–β model cost to each participant's critical
// path, following the paper's measurement methodology (§7.4): "for each
// collective over a set of processors, we maximize the critical path costs
// incurred by those processors so far", then add the collective's own cost.
// Broadcast and reduce of x bytes over p processors cost 2xβ + 2⌈log₂p⌉α
// (twice scatter/allgather), matching the Table-3 model.
package machine

import (
	"fmt"
	"math"
	"time"
)

// CostModel holds the machine constants of the α–β–γ model.
type CostModel struct {
	Alpha float64 // seconds per message on the critical path
	Beta  float64 // seconds per byte
	Gamma float64 // seconds per scalar operation (generalized flop)
}

// DefaultModel approximates the paper's Cray Gemini interconnect and a
// node-level effective rate for sparse monoid operations.
func DefaultModel() CostModel {
	return CostModel{
		Alpha: 1.5e-6,      // ~1.5 µs per message
		Beta:  1.0 / 5.8e9, // ~5.8 GB/s injection bandwidth
		Gamma: 2.0e-9,      // ~0.5 Gop/s effective on sparse monoid kernels
	}
}

// Cost is a critical-path cost vector.
type Cost struct {
	Bytes int64 // words communicated (in bytes) along the critical path
	Msgs  int64 // messages (latency units) along the critical path
	Flops int64 // generalized operations along the critical path
}

// Add returns c + o componentwise.
func (c Cost) Add(o Cost) Cost {
	return Cost{Bytes: c.Bytes + o.Bytes, Msgs: c.Msgs + o.Msgs, Flops: c.Flops + o.Flops}
}

// Sub returns c − o componentwise (the cost accrued since the mark o).
func (c Cost) Sub(o Cost) Cost {
	return Cost{Bytes: c.Bytes - o.Bytes, Msgs: c.Msgs - o.Msgs, Flops: c.Flops - o.Flops}
}

// Max returns the componentwise maximum, the critical-path join.
func (c Cost) Max(o Cost) Cost {
	if o.Bytes > c.Bytes {
		c.Bytes = o.Bytes
	}
	if o.Msgs > c.Msgs {
		c.Msgs = o.Msgs
	}
	if o.Flops > c.Flops {
		c.Flops = o.Flops
	}
	return c
}

// Time converts the cost vector to modeled seconds.
func (c Cost) Time(m CostModel) float64 {
	return float64(c.Msgs)*m.Alpha + float64(c.Bytes)*m.Beta + float64(c.Flops)*m.Gamma
}

// CommTime converts only the communication components to modeled seconds.
func (c Cost) CommTime(m CostModel) float64 {
	return float64(c.Msgs)*m.Alpha + float64(c.Bytes)*m.Beta
}

func (c Cost) String() string {
	return fmt.Sprintf("{bytes=%d msgs=%d flops=%d}", c.Bytes, c.Msgs, c.Flops)
}

// Transport is one concrete machine backend: it knows the world size,
// owns the cost model and the collective watchdog timeout, and executes
// SPMD regions. The simulated backend (machine/sim) runs fn on every rank
// as a goroutine; the TCP backend (machine/tcpnet) runs fn only on the
// ranks hosted by this OS process, synchronizing with its peers over
// sockets. Either way the returned RunStats are identical on every
// participating process.
type Transport interface {
	// Size returns the world size p.
	Size() int
	// Model returns the α–β–γ constants charged by this transport.
	Model() CostModel
	// SetModel replaces the cost model (before a region, not during).
	SetModel(CostModel)
	// SetTimeout replaces the per-collective watchdog; 0 disables.
	SetTimeout(time.Duration)
	// Run executes fn as one machine region and reports critical-path
	// statistics. A panic or failure on any rank aborts the whole machine
	// and is returned as an error on every process.
	Run(fn func(p *Proc)) (RunStats, error)
}

// Payload is one rank's contribution to a collective superstep. The
// simulated backend delivers V to peers directly (shared memory, zero
// copies beyond what the collective itself makes); a network backend
// instead calls Enc once per destination and Dec once per arrived frame.
type Payload struct {
	// V is the posted value, delivered verbatim into peer slot arrays by
	// in-process backends.
	V any
	// Size is the element count posted (for nested [][]T posts, the total
	// across parts). Backends expose every rank's Size to the read
	// callback so charge formulas need no peer data.
	Size int64
	// Enc encodes the part of the payload destined for rank dst, or
	// returns nil when dst needs no data from us (the frame then carries
	// cost bookkeeping only). nil Enc means no rank needs our data.
	Enc func(dst int) []byte
	// Dec decodes a frame from rank src into the value placed in the
	// receiver's slot array. Required whenever any peer's Enc may address
	// this rank.
	Dec func(src int, b []byte) any
}

// Group is one communicator's backend state: the set of ranks that move
// through collective supersteps together. Comm wraps a Group with the
// caller's rank; the collectives in this package are written against
// Step, so any Group implementation gets the full collective set.
type Group interface {
	// Size returns the number of group members.
	Size() int
	// Step runs one BSP superstep: every member posts its contribution
	// and its current critical-path cost, read consumes peer
	// contributions (slots indexed by group rank; sizes holds every
	// member's posted Payload.Size), and the returned Cost is the group
	// maximum of the members' pre-step costs — the critical-path join of
	// §7.4. The collective then assigns p's cost itself. Slot entries for
	// ranks whose data was not addressed to this member may be nil on
	// network backends; collectives only read the slots their charge
	// formulas promise are present.
	Step(p *Proc, rank int, post Payload, read func(slots []any, sizes []int64)) Cost
	// Subgroup derives the communicator state for a Split: members holds
	// the parent-group ranks of the new group in new-rank order, and
	// myIdx is this member's position in it. Every member of the new
	// group calls Subgroup with the identical members slice.
	Subgroup(p *Proc, rank int, members []int, myIdx int) Group
}

// abortError marks the panic that unwinds ranks after a peer failure or
// watchdog timeout, so backends can tell cooperative teardown from a real
// region panic.
type abortError struct{ reason string }

func (e abortError) Error() string { return "machine: aborted: " + e.reason }

// Abort panics with the cooperative-teardown marker. Backends call it to
// unwind a rank after recording the underlying failure via the Proc's
// fail hook.
func Abort(reason string) {
	panic(abortError{reason: reason})
}

// AbortErr reports whether a recovered panic value is the cooperative
// teardown marker, returning it as an error when so.
func AbortErr(r any) (error, bool) {
	if e, ok := r.(abortError); ok {
		return e, true
	}
	return nil, false
}

// RunStats aggregates a run's outcome.
type RunStats struct {
	MaxCost  Cost          // componentwise max over processors (critical path)
	PerProc  []Cost        // final cost vector of each processor
	Wall     time.Duration // host wall-clock time of the region
	ModelSec float64       // MaxCost.Time(model)
	CommSec  float64       // MaxCost.CommTime(model)
	// Phases attributes the region's cost to the named phases the region
	// body declared with Proc.Phase, in first-declaration order. Empty when
	// the body never called Phase. Per processor, the phase costs sum
	// exactly to the processor's PerProc total.
	Phases []PhaseStats
}

// PhaseStats is one named phase's share of a region's cost.
type PhaseStats struct {
	Name     string
	MaxCost  Cost   // componentwise max over processors within this phase
	PerProc  []Cost // this phase's cost on each processor
	ModelSec float64
	CommSec  float64
	// Wall is the measured host wall-clock spent in this phase, maximized
	// over processors (phases overlap in time across ranks, so the per-phase
	// walls do not sum to RunStats.Wall). It is observability-only: modeled
	// cost never depends on it.
	Wall time.Duration
}

// ProcSummary is one rank's contribution to a region's RunStats: its
// final cost vector and closed phase buckets. It is flat and
// gob-encodable so network backends can exchange summaries and build
// identical RunStats on every process.
type ProcSummary struct {
	Cost      Cost
	PhaseSeq  []string
	PhaseCost []Cost
	PhaseWall []time.Duration
}

// Phase attributes all cost accrued from this call until the next Phase
// call (or the end of the region) to the named phase. A region that never
// calls Phase reports no phase breakdown; one that does should name its
// first phase before any collective so every cost lands in a named bucket
// (unattributed cost is reported under ""). Phases may repeat: re-entering
// a name accumulates into the same bucket. Phase sequences may differ
// across processors (it is rank-local bookkeeping, not a collective).
func (p *Proc) Phase(name string) {
	if name == p.phaseName {
		return
	}
	p.closePhase()
	p.phaseName = name
	p.phaseMark = p.cost
}

// closePhase folds the open segment into its named bucket.
func (p *Proc) closePhase() {
	seg := p.cost.Sub(p.phaseMark)
	now := time.Now() //lint:allow detsource wall-clock phase stat only; never feeds the cost model
	var wallSeg time.Duration
	if !p.phaseWallAt.IsZero() {
		wallSeg = now.Sub(p.phaseWallAt)
	}
	p.phaseWallAt = now
	if p.phaseName == "" && seg == (Cost{}) && len(p.phaseSeq) == 0 {
		return // nothing attributed and no phases declared
	}
	for i, n := range p.phaseSeq {
		if n == p.phaseName {
			p.phaseCost[i] = p.phaseCost[i].Add(seg)
			p.phaseWall[i] += wallSeg
			return
		}
	}
	p.phaseSeq = append(p.phaseSeq, p.phaseName)
	p.phaseCost = append(p.phaseCost, seg)
	p.phaseWall = append(p.phaseWall, wallSeg)
}

// Summary closes the open phase segment and returns the rank's region
// summary. Backends call it once per hosted rank after the region body
// returns.
func (p *Proc) Summary() ProcSummary {
	p.closePhase()
	return ProcSummary{
		Cost:      p.cost,
		PhaseSeq:  p.phaseSeq,
		PhaseCost: p.phaseCost,
		PhaseWall: p.phaseWall,
	}
}

// phaseStats merges the per-proc phase buckets into the run's breakdown:
// names ordered by first declaration scanning ranks in order, costs joined
// componentwise. Returns nil when no processor declared a phase.
func phaseStats(model CostModel, procs []ProcSummary) []PhaseStats {
	named := false
	for _, p := range procs {
		if len(p.PhaseSeq) > 1 || (len(p.PhaseSeq) == 1 && p.PhaseSeq[0] != "") {
			named = true
			break
		}
	}
	if !named {
		return nil
	}
	var order []string
	index := make(map[string]int)
	for _, p := range procs {
		for _, n := range p.PhaseSeq {
			if _, ok := index[n]; !ok {
				index[n] = len(order)
				order = append(order, n)
			}
		}
	}
	out := make([]PhaseStats, len(order))
	for i, n := range order {
		ps := PhaseStats{Name: n, PerProc: make([]Cost, len(procs))}
		for r, p := range procs {
			for k, pn := range p.PhaseSeq {
				if pn == n {
					ps.PerProc[r] = p.PhaseCost[k]
					ps.MaxCost = ps.MaxCost.Max(p.PhaseCost[k])
					if p.PhaseWall[k] > ps.Wall {
						ps.Wall = p.PhaseWall[k]
					}
				}
			}
		}
		ps.ModelSec = ps.MaxCost.Time(model)
		ps.CommSec = ps.MaxCost.CommTime(model)
		out[i] = ps
	}
	return out
}

// BuildRunStats folds every rank's ProcSummary into the region's
// RunStats. Deterministic in its inputs, so backends that exchange
// summaries build bit-identical stats on every process.
func BuildRunStats(model CostModel, procs []ProcSummary, wall time.Duration) RunStats {
	stats := RunStats{Wall: wall, PerProc: make([]Cost, len(procs))}
	for r, p := range procs {
		stats.PerProc[r] = p.Cost
		stats.MaxCost = stats.MaxCost.Max(p.Cost)
	}
	stats.Phases = phaseStats(model, procs)
	stats.ModelSec = stats.MaxCost.Time(model)
	stats.CommSec = stats.MaxCost.CommTime(model)
	return stats
}

// Proc is one processor's handle within a machine region.
type Proc struct {
	rank       int
	localRanks int
	world      *Comm
	cost       Cost
	fail       func(error)

	// Phase-attribution bookkeeping: the open segment's name, the cost
	// vector and wall instant at its start, plus the closed buckets in
	// declaration order (phaseCost and phaseWall parallel phaseSeq).
	phaseName   string
	phaseMark   Cost
	phaseWallAt time.Time
	phaseSeq    []string
	phaseCost   []Cost
	phaseWall   []time.Duration
}

// NewProc constructs a rank handle for a backend: world is the
// whole-machine Group, localRanks the number of ranks this OS process
// hosts (sim: p, tcpnet: 1), fail the backend's first-failure hook, and
// start the region's wall-clock origin for phase attribution.
func NewProc(world Group, rank, localRanks int, fail func(error), start time.Time) *Proc {
	p := &Proc{rank: rank, localRanks: localRanks, fail: fail, phaseWallAt: start}
	p.world = &Comm{group: world, rank: rank, proc: p}
	return p
}

// Rank returns the processor's world rank.
func (p *Proc) Rank() int { return p.rank }

// World returns the communicator spanning all processors.
func (p *Proc) World() *Comm { return p.world }

// LocalRanks returns how many ranks of this machine live in the current
// OS process — the divisor for splitting host cores among rank-local
// kernel workers (sim: the whole world shares the host; tcpnet: each
// rank owns its process).
func (p *Proc) LocalRanks() int {
	if p.localRanks < 1 {
		return 1
	}
	return p.localRanks
}

// Fail records err as the machine's failure through the backend hook,
// poisoning every barrier so peers unwind instead of deadlocking. It does
// not panic; callers follow with Abort.
func (p *Proc) Fail(err error) {
	if p.fail != nil {
		p.fail(err)
	}
}

// AddFlops charges local computation to the critical path.
func (p *Proc) AddFlops(n int64) { p.cost.Flops += n }

// Cost returns the processor's critical-path cost so far.
func (p *Proc) Cost() Cost { return p.cost }

// Comm is a communicator: one processor's view of a process group.
type Comm struct {
	group Group
	rank  int
	proc  *Proc
}

// NewComm wraps backend group state as rank's communicator handle.
func NewComm(g Group, rank int, p *Proc) *Comm {
	return &Comm{group: g, rank: rank, proc: p}
}

// Rank returns this processor's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Proc returns the owning processor handle.
func (c *Comm) Proc() *Proc { return c.proc }

// Size returns the number of group members.
func (c *Comm) Size() int { return c.group.Size() }

// LogMsgs is the ⌈log₂ p⌉ latency term of tree-based collectives.
func LogMsgs(p int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(math.Ceil(math.Log2(float64(p))))
}
