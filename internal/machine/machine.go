// Package machine simulates the distributed-memory machine of the paper on
// shared memory: p virtual processors run as goroutines and communicate
// exclusively through bulk-synchronous collectives (broadcast, reduce,
// allreduce, gather, allgather, scatter, all-to-all, and sparse reductions),
// the same collective set the paper's §5.1 cost model covers.
//
// Every collective moves real data (callers never alias each other's
// buffers) and charges an α–β model cost to each participant's critical
// path, following the paper's measurement methodology (§7.4): "for each
// collective over a set of processors, we maximize the critical path costs
// incurred by those processors so far", then add the collective's own cost.
// Broadcast and reduce of x bytes over p processors cost 2xβ + 2⌈log₂p⌉α
// (twice scatter/allgather), matching the Table-3 model.
package machine

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"
)

// CostModel holds the machine constants of the α–β–γ model.
type CostModel struct {
	Alpha float64 // seconds per message on the critical path
	Beta  float64 // seconds per byte
	Gamma float64 // seconds per scalar operation (generalized flop)
}

// DefaultModel approximates the paper's Cray Gemini interconnect and a
// node-level effective rate for sparse monoid operations.
func DefaultModel() CostModel {
	return CostModel{
		Alpha: 1.5e-6,      // ~1.5 µs per message
		Beta:  1.0 / 5.8e9, // ~5.8 GB/s injection bandwidth
		Gamma: 2.0e-9,      // ~0.5 Gop/s effective on sparse monoid kernels
	}
}

// Cost is a critical-path cost vector.
type Cost struct {
	Bytes int64 // words communicated (in bytes) along the critical path
	Msgs  int64 // messages (latency units) along the critical path
	Flops int64 // generalized operations along the critical path
}

// Add returns c + o componentwise.
func (c Cost) Add(o Cost) Cost {
	return Cost{Bytes: c.Bytes + o.Bytes, Msgs: c.Msgs + o.Msgs, Flops: c.Flops + o.Flops}
}

// Sub returns c − o componentwise (the cost accrued since the mark o).
func (c Cost) Sub(o Cost) Cost {
	return Cost{Bytes: c.Bytes - o.Bytes, Msgs: c.Msgs - o.Msgs, Flops: c.Flops - o.Flops}
}

// Max returns the componentwise maximum, the critical-path join.
func (c Cost) Max(o Cost) Cost {
	if o.Bytes > c.Bytes {
		c.Bytes = o.Bytes
	}
	if o.Msgs > c.Msgs {
		c.Msgs = o.Msgs
	}
	if o.Flops > c.Flops {
		c.Flops = o.Flops
	}
	return c
}

// Time converts the cost vector to modeled seconds.
func (c Cost) Time(m CostModel) float64 {
	return float64(c.Msgs)*m.Alpha + float64(c.Bytes)*m.Beta + float64(c.Flops)*m.Gamma
}

// CommTime converts only the communication components to modeled seconds.
func (c Cost) CommTime(m CostModel) float64 {
	return float64(c.Msgs)*m.Alpha + float64(c.Bytes)*m.Beta
}

func (c Cost) String() string {
	return fmt.Sprintf("{bytes=%d msgs=%d flops=%d}", c.Bytes, c.Msgs, c.Flops)
}

// Machine is a simulated distributed machine of P processors.
type Machine struct {
	P       int
	Model   CostModel
	Timeout time.Duration // per-barrier watchdog; 0 disables

	abortOnce sync.Once
	abort     chan struct{}
	failMu    sync.Mutex
	failErr   error
}

// New creates a machine with p processors and the default cost model.
func New(p int) *Machine {
	if p < 1 {
		panic("machine: need at least one processor")
	}
	return &Machine{P: p, Model: DefaultModel(), Timeout: 2 * time.Minute, abort: make(chan struct{})}
}

type abortError struct{ reason string }

func (e abortError) Error() string { return "machine: aborted: " + e.reason }

// fail records the first failure and poisons every barrier so that all
// processors unwind instead of deadlocking.
func (m *Machine) fail(err error) {
	m.failMu.Lock()
	if m.failErr == nil {
		m.failErr = err
	}
	m.failMu.Unlock()
	m.abortOnce.Do(func() { close(m.abort) })
}

// RunStats aggregates a run's outcome.
type RunStats struct {
	MaxCost  Cost          // componentwise max over processors (critical path)
	PerProc  []Cost        // final cost vector of each processor
	Wall     time.Duration // host wall-clock time of the region
	ModelSec float64       // MaxCost.Time(model)
	CommSec  float64       // MaxCost.CommTime(model)
	// Phases attributes the region's cost to the named phases the region
	// body declared with Proc.Phase, in first-declaration order. Empty when
	// the body never called Phase. Per processor, the phase costs sum
	// exactly to the processor's PerProc total.
	Phases []PhaseStats
}

// PhaseStats is one named phase's share of a region's cost.
type PhaseStats struct {
	Name     string
	MaxCost  Cost   // componentwise max over processors within this phase
	PerProc  []Cost // this phase's cost on each processor
	ModelSec float64
	CommSec  float64
	// Wall is the measured host wall-clock spent in this phase, maximized
	// over processors (phases overlap in time across ranks, so the per-phase
	// walls do not sum to RunStats.Wall). It is observability-only: modeled
	// cost never depends on it.
	Wall time.Duration
}

// Phase attributes all cost accrued from this call until the next Phase
// call (or the end of the region) to the named phase. A region that never
// calls Phase reports no phase breakdown; one that does should name its
// first phase before any collective so every cost lands in a named bucket
// (unattributed cost is reported under ""). Phases may repeat: re-entering
// a name accumulates into the same bucket. Phase sequences may differ
// across processors (it is rank-local bookkeeping, not a collective).
func (p *Proc) Phase(name string) {
	if name == p.phaseName {
		return
	}
	p.closePhase()
	p.phaseName = name
	p.phaseMark = p.cost
}

// closePhase folds the open segment into its named bucket.
func (p *Proc) closePhase() {
	seg := p.cost.Sub(p.phaseMark)
	now := time.Now() //lint:allow detsource wall-clock phase stat only; never feeds the cost model
	var wallSeg time.Duration
	if !p.phaseWallAt.IsZero() {
		wallSeg = now.Sub(p.phaseWallAt)
	}
	p.phaseWallAt = now
	if p.phaseName == "" && seg == (Cost{}) && len(p.phaseSeq) == 0 {
		return // nothing attributed and no phases declared
	}
	for i, n := range p.phaseSeq {
		if n == p.phaseName {
			p.phaseCost[i] = p.phaseCost[i].Add(seg)
			p.phaseWall[i] += wallSeg
			return
		}
	}
	p.phaseSeq = append(p.phaseSeq, p.phaseName)
	p.phaseCost = append(p.phaseCost, seg)
	p.phaseWall = append(p.phaseWall, wallSeg)
}

// phaseStats merges the per-proc phase buckets into the run's breakdown:
// names ordered by first declaration scanning ranks in order, costs joined
// componentwise. Returns nil when no processor declared a phase.
func phaseStats(m *Machine, procs []*Proc) []PhaseStats {
	named := false
	for _, p := range procs {
		if len(p.phaseSeq) > 1 || (len(p.phaseSeq) == 1 && p.phaseSeq[0] != "") {
			named = true
			break
		}
	}
	if !named {
		return nil
	}
	var order []string
	index := make(map[string]int)
	for _, p := range procs {
		for _, n := range p.phaseSeq {
			if _, ok := index[n]; !ok {
				index[n] = len(order)
				order = append(order, n)
			}
		}
	}
	out := make([]PhaseStats, len(order))
	for i, n := range order {
		ps := PhaseStats{Name: n, PerProc: make([]Cost, len(procs))}
		for r, p := range procs {
			for k, pn := range p.phaseSeq {
				if pn == n {
					ps.PerProc[r] = p.phaseCost[k]
					ps.MaxCost = ps.MaxCost.Max(p.phaseCost[k])
					if p.phaseWall[k] > ps.Wall {
						ps.Wall = p.phaseWall[k]
					}
				}
			}
		}
		ps.ModelSec = ps.MaxCost.Time(m.Model)
		ps.CommSec = ps.MaxCost.CommTime(m.Model)
		out[i] = ps
	}
	return out
}

// Run executes fn on every processor concurrently and reports critical-path
// statistics. A panic on any processor aborts the whole machine and is
// returned as an error.
func (m *Machine) Run(fn func(p *Proc)) (RunStats, error) {
	world := newCommState(m, m.P)
	procs := make([]*Proc, m.P)
	var wg sync.WaitGroup
	start := time.Now() //lint:allow detsource wall-clock run stat only; never feeds the cost model
	for r := 0; r < m.P; r++ {
		p := &Proc{rank: r, machine: m, phaseWallAt: start}
		p.world = &Comm{state: world, rank: r, proc: p}
		procs[r] = p
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := r.(abortError); ok {
						m.fail(ab)
						return
					}
					m.fail(fmt.Errorf("machine: proc %d panicked: %v\n%s", p.rank, r, debug.Stack()))
				}
			}()
			fn(p)
		}(p)
	}
	wg.Wait()
	stats := RunStats{Wall: time.Since(start), PerProc: make([]Cost, m.P)}
	for r, p := range procs {
		p.closePhase()
		stats.PerProc[r] = p.cost
		stats.MaxCost = stats.MaxCost.Max(p.cost)
	}
	stats.Phases = phaseStats(m, procs)
	stats.ModelSec = stats.MaxCost.Time(m.Model)
	stats.CommSec = stats.MaxCost.CommTime(m.Model)
	m.failMu.Lock()
	err := m.failErr
	m.failMu.Unlock()
	return stats, err
}

// Proc is one virtual processor's handle.
type Proc struct {
	rank    int
	machine *Machine
	world   *Comm
	cost    Cost

	// Phase-attribution bookkeeping: the open segment's name, the cost
	// vector and wall instant at its start, plus the closed buckets in
	// declaration order (phaseCost and phaseWall parallel phaseSeq).
	phaseName   string
	phaseMark   Cost
	phaseWallAt time.Time
	phaseSeq    []string
	phaseCost   []Cost
	phaseWall   []time.Duration
}

// Rank returns the processor's world rank.
func (p *Proc) Rank() int { return p.rank }

// World returns the communicator spanning all processors.
func (p *Proc) World() *Comm { return p.world }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.machine }

// AddFlops charges local computation to the critical path.
func (p *Proc) AddFlops(n int64) { p.cost.Flops += n }

// Cost returns the processor's critical-path cost so far.
func (p *Proc) Cost() Cost { return p.cost }

// Comm is a communicator: one processor's view of a process group.
type Comm struct {
	state *commState
	rank  int
	proc  *Proc
}

// Rank returns this processor's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Proc returns the owning processor handle.
func (c *Comm) Proc() *Proc { return c.proc }

// Size returns the number of group members.
func (c *Comm) Size() int { return c.state.size }

type commState struct {
	machine *Machine
	size    int
	slots   []any
	aux     []any
	costs   []Cost
	bar     *barrier
}

func newCommState(m *Machine, size int) *commState {
	return &commState{
		machine: m,
		size:    size,
		slots:   make([]any, size),
		aux:     make([]any, size),
		costs:   make([]Cost, size),
		bar:     newBarrier(m, size),
	}
}

// barrier is a reusable sense-reversing barrier with abort and watchdog
// support, the synchronization backbone of every collective.
type barrier struct {
	machine *Machine
	mu      sync.Mutex
	n       int
	count   int
	gen     chan struct{}
}

func newBarrier(m *Machine, n int) *barrier {
	return &barrier{machine: m, n: n, gen: make(chan struct{})}
}

func (b *barrier) await() {
	b.mu.Lock()
	ch := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen = make(chan struct{})
		close(ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	if b.machine.Timeout <= 0 {
		select {
		case <-ch:
		case <-b.machine.abort:
			panic(abortError{reason: "peer failure"})
		}
		return
	}
	timer := time.NewTimer(b.machine.Timeout)
	defer timer.Stop()
	select {
	case <-ch:
	case <-b.machine.abort:
		panic(abortError{reason: "peer failure"})
	case <-timer.C:
		err := fmt.Errorf("machine: barrier timeout after %v (collective deadlock: mismatched collective calls across ranks?)", b.machine.Timeout)
		b.machine.fail(err)
		panic(abortError{reason: err.Error()})
	}
}

// logMsgs is the ⌈log₂ p⌉ latency term of tree-based collectives.
func logMsgs(p int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(math.Ceil(math.Log2(float64(p))))
}
