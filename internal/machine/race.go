//go:build race

package machine

// raceEnabled reports whether this build is instrumented by the race
// detector. Wall-clock calibration is meaningless under instrumentation
// (every memory access pays a shadow-state check), so timing-based tests
// consult this to relax or skip their bounds.
const raceEnabled = true
