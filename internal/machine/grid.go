package machine

import "fmt"

// Grid2 is a pr×pc processor grid over a communicator: rank r sits at
// (r / pc, r % pc), with row and column sub-communicators — the layout used
// by the 2D sparse matrix multiplication variants (§5.2.2).
type Grid2 struct {
	PR, PC   int
	Comm     *Comm
	Row      *Comm // members sharing my row index (size PC)
	Col      *Comm // members sharing my column index (size PR)
	MyR, MyC int
}

// NewGrid2 builds a 2D grid; pr*pc must equal the communicator size.
func NewGrid2(c *Comm, pr, pc int) *Grid2 {
	if pr*pc != c.Size() {
		panic(fmt.Sprintf("machine: grid %dx%d does not tile %d processors", pr, pc, c.Size()))
	}
	i, j := c.Rank()/pc, c.Rank()%pc
	return &Grid2{
		PR:   pr,
		PC:   pc,
		Comm: c,
		Row:  Split(c, i, j),
		Col:  Split(c, pr+j, i),
		MyR:  i,
		MyC:  j,
	}
}

// RankAt returns the communicator rank of grid position (i, j).
func (g *Grid2) RankAt(i, j int) int { return i*g.PC + j }

// Grid3 is a p1×(p2×p3) grid: p1 layers, each a p2×p3 2D grid, plus fiber
// communicators linking the same 2D position across layers — the nesting
// used by the 3D algorithm variants (§5.2.3).
type Grid3 struct {
	P1, P2, P3 int
	Comm       *Comm
	Layer      *Comm  // within my layer (size P2*P3)
	Fiber      *Comm  // across layers at my 2D position (size P1)
	G2         *Grid2 // 2D grid over Layer
	MyLayer    int
}

// NewGrid3 builds a 3D grid; p1*p2*p3 must equal the communicator size.
// World rank r maps to layer r / (p2*p3), layer-rank r % (p2*p3).
func NewGrid3(c *Comm, p1, p2, p3 int) *Grid3 {
	if p1*p2*p3 != c.Size() {
		panic(fmt.Sprintf("machine: grid %dx%dx%d does not tile %d processors", p1, p2, p3, c.Size()))
	}
	layerSize := p2 * p3
	l := c.Rank() / layerSize
	pos := c.Rank() % layerSize
	layer := Split(c, l, pos)
	fiber := Split(c, c.Size()+pos, l)
	return &Grid3{
		P1:      p1,
		P2:      p2,
		P3:      p3,
		Comm:    c,
		Layer:   layer,
		Fiber:   fiber,
		G2:      NewGrid2(layer, p2, p3),
		MyLayer: l,
	}
}

// RankAt returns the communicator rank of (layer, i, j).
func (g *Grid3) RankAt(layer, i, j int) int {
	return layer*g.P2*g.P3 + i*g.P3 + j
}

// Factorizations3 enumerates all ordered triples (p1,p2,p3) with product p,
// the search space of the automatic decomposition selection.
func Factorizations3(p int) [][3]int {
	var out [][3]int
	for p1 := 1; p1 <= p; p1++ {
		if p%p1 != 0 {
			continue
		}
		q := p / p1
		for p2 := 1; p2 <= q; p2++ {
			if q%p2 != 0 {
				continue
			}
			out = append(out, [3]int{p1, p2, q / p2})
		}
	}
	return out
}

// Factorizations2 enumerates all ordered pairs (pr,pc) with product p.
func Factorizations2(p int) [][2]int {
	var out [][2]int
	for pr := 1; pr <= p; pr++ {
		if p%pr == 0 {
			out = append(out, [2]int{pr, p / pr})
		}
	}
	return out
}

// LCM returns the least common multiple, the 2D SUMMA stage count.
func LCM(a, b int) int {
	return a / GCD(a, b) * b
}

// GCD returns the greatest common divisor.
func GCD(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
