package machine

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// The wire codec for collective payloads. Every element type crossing a
// collective is a flat struct (float64/int slices, pair-semiring paths,
// distmat entry triples) — no internal pointers — so a slice's wire form
// is simply its memory image: n elements of Sizeof(T) bytes each, padding
// included. That keeps the encoded size identical to the bytesOf charge
// the cost model applies, so a network backend moves exactly the bytes
// the model says it does. Both ends must share architecture word size and
// endianness (the rank-per-process backend targets homogeneous clusters,
// like the paper's).

// flatChecked caches the per-type flatness verdict.
var flatChecked sync.Map // reflect.Type -> bool (true = flat)

// assertFlat panics when T contains pointers, maps, slices, strings,
// channels, funcs, or interfaces — anything whose memory image is not its
// wire form. The check runs once per type.
func assertFlat[T any]() {
	var zero T
	t := reflect.TypeOf(zero)
	if t == nil {
		panic("machine: codec element type cannot be an interface")
	}
	if v, ok := flatChecked.Load(t); ok {
		if !v.(bool) {
			panic(fmt.Sprintf("machine: codec element type %v contains pointers", t))
		}
		return
	}
	flat := isFlat(t)
	flatChecked.Store(t, flat)
	if !flat {
		panic(fmt.Sprintf("machine: codec element type %v contains pointers", t))
	}
}

func isFlat(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return isFlat(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isFlat(t.Field(i).Type) {
				return false
			}
		}
		return true
	}
	return false
}

// EncodeSlice returns the wire form of s: its raw memory image. The
// result aliases s (zero-copy); callers that buffer it past the next
// mutation of s must copy. Always non-nil, so an encoded empty slice is
// distinguishable from "no payload" (nil).
func EncodeSlice[T any](s []T) []byte {
	assertFlat[T]()
	if len(s) == 0 {
		return []byte{}
	}
	sz := int(unsafe.Sizeof(s[0]))
	if sz == 0 {
		return []byte{}
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*sz)
}

// DecodeSlice reconstructs a []T from its wire form, copying out of b.
// len(b) must be a multiple of Sizeof(T).
func DecodeSlice[T any](b []byte) []T {
	assertFlat[T]()
	var zero T
	sz := int(unsafe.Sizeof(zero))
	if sz == 0 || len(b) == 0 {
		return []T{}
	}
	if len(b)%sz != 0 {
		panic(fmt.Sprintf("machine: codec frame of %d bytes is not a multiple of element size %d", len(b), sz))
	}
	n := len(b) / sz
	out := make([]T, n)
	dst := unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), n*sz)
	copy(dst, b)
	return out
}

// WireBytes is the modeled (and, for the raw codec, actual) wire size of
// n elements of T.
func WireBytes[T any](n int) int64 {
	return bytesOf[T](n)
}
