// Package sim is the in-process backend of the machine abstraction: the
// p virtual processors of a region run as goroutines inside one OS
// process and exchange collective contributions through shared slot
// arrays, so every rank sees peers' posted values directly and the only
// cost is the modeled α–β–γ charge. This is the simulator the paper-level
// differential tests and plan searches run on — deterministic, free of
// real communication, and bit-identical across runs.
package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/machine"
)

// Machine is a simulated distributed machine of p processors. It
// implements machine.Transport.
type Machine struct {
	p       int
	model   machine.CostModel
	timeout time.Duration

	abortOnce sync.Once
	abort     chan struct{}
	failMu    sync.Mutex
	failErr   error
}

// New creates a machine with p processors and the default cost model.
func New(p int) *Machine {
	if p < 1 {
		panic("machine: need at least one processor")
	}
	return &Machine{p: p, model: machine.DefaultModel(), timeout: 2 * time.Minute, abort: make(chan struct{})}
}

// Size returns the number of simulated processors.
func (m *Machine) Size() int { return m.p }

// Model returns the machine's α–β–γ constants.
func (m *Machine) Model() machine.CostModel { return m.model }

// SetModel replaces the cost model.
func (m *Machine) SetModel(model machine.CostModel) { m.model = model }

// SetTimeout replaces the per-barrier watchdog; 0 disables it.
func (m *Machine) SetTimeout(d time.Duration) { m.timeout = d }

// fail records the first failure and poisons every barrier so that all
// processors unwind instead of deadlocking.
func (m *Machine) fail(err error) {
	m.failMu.Lock()
	if m.failErr == nil {
		m.failErr = err
	}
	m.failMu.Unlock()
	m.abortOnce.Do(func() { close(m.abort) })
}

// Run executes fn on every processor concurrently and reports critical-path
// statistics. A panic on any processor aborts the whole machine and is
// returned as an error.
func (m *Machine) Run(fn func(p *machine.Proc)) (machine.RunStats, error) {
	world := newCommState(m, m.p)
	procs := make([]*machine.Proc, m.p)
	var wg sync.WaitGroup
	start := time.Now() //lint:allow detsource wall-clock run stat only; never feeds the cost model
	for r := 0; r < m.p; r++ {
		p := machine.NewProc(world, r, m.p, m.fail, start)
		procs[r] = p
		wg.Add(1)
		go func(p *machine.Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := machine.AbortErr(r); ok {
						m.fail(ab)
						return
					}
					m.fail(fmt.Errorf("machine: proc %d panicked: %v\n%s", p.Rank(), r, debug.Stack()))
				}
			}()
			fn(p)
		}(p)
	}
	wg.Wait()
	summaries := make([]machine.ProcSummary, m.p)
	for r, p := range procs {
		summaries[r] = p.Summary()
	}
	stats := machine.BuildRunStats(m.model, summaries, time.Since(start))
	m.failMu.Lock()
	err := m.failErr
	m.failMu.Unlock()
	return stats, err
}

// commState is the shared slot array of one communicator: every member
// posts into its rank's slot, the sense-reversing barrier flips, and
// members read peers' values directly. It implements machine.Group.
type commState struct {
	machine *Machine
	size    int
	slots   []any
	sizes   []int64
	costs   []machine.Cost
	bar     *barrier

	subMu sync.Mutex
	subs  map[string]*commState
}

func newCommState(m *Machine, size int) *commState {
	return &commState{
		machine: m,
		size:    size,
		slots:   make([]any, size),
		sizes:   make([]int64, size),
		costs:   make([]machine.Cost, size),
		bar:     newBarrier(m, size),
	}
}

// Size returns the number of group members.
func (st *commState) Size() int { return st.size }

// Step runs one BSP superstep over the shared slots: post, barrier, read,
// group-max, and a second barrier protecting slot reuse. Posted values are
// delivered to peers verbatim (shared memory), so the collectives layer
// behaves exactly as the pre-refactor in-process machine did.
func (st *commState) Step(p *machine.Proc, rank int, post machine.Payload, read func(slots []any, sizes []int64)) machine.Cost {
	st.slots[rank] = post.V
	st.sizes[rank] = post.Size
	st.costs[rank] = p.Cost()
	st.bar.await()
	read(st.slots, st.sizes)
	group := machine.Cost{}
	for _, pc := range st.costs {
		group = group.Max(pc)
	}
	st.bar.await()
	return group
}

// Subgroup returns the shared state for a Split-derived communicator.
// States are memoized per member list: every member of the new group asks
// for the identical list, the first caller allocates, and later Splits
// that produce the same grouping reuse the state — safe because the SPMD
// program order keeps all members of a communicator on the same
// collective sequence.
func (st *commState) Subgroup(p *machine.Proc, rank int, members []int, myIdx int) machine.Group {
	key := fmt.Sprint(members)
	st.subMu.Lock()
	defer st.subMu.Unlock()
	if st.subs == nil {
		st.subs = make(map[string]*commState)
	}
	if g, ok := st.subs[key]; ok {
		return g
	}
	g := newCommState(st.machine, len(members))
	st.subs[key] = g
	return g
}

// barrier is a reusable sense-reversing barrier with abort and watchdog
// support, the synchronization backbone of every collective.
type barrier struct {
	machine *Machine
	mu      sync.Mutex
	n       int
	count   int
	gen     chan struct{}
}

func newBarrier(m *Machine, n int) *barrier {
	return &barrier{machine: m, n: n, gen: make(chan struct{})}
}

func (b *barrier) await() {
	b.mu.Lock()
	ch := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen = make(chan struct{})
		close(ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	if b.machine.timeout <= 0 {
		select {
		case <-ch:
		case <-b.machine.abort:
			machine.Abort("peer failure")
		}
		return
	}
	timer := time.NewTimer(b.machine.timeout)
	defer timer.Stop()
	select {
	case <-ch:
	case <-b.machine.abort:
		machine.Abort("peer failure")
	case <-timer.C:
		err := fmt.Errorf("machine: barrier timeout after %v (collective deadlock: mismatched collective calls across ranks?)", b.machine.timeout)
		b.machine.fail(err)
		machine.Abort(err.Error())
	}
}
