package machine

import (
	"sort"
	"unsafe"
)

// bytesOf estimates the wire size of n elements of type T. Element types
// used on the wire are flat structs (no internal pointers), so Sizeof is
// exact up to padding.
func bytesOf[T any](n int) int64 {
	var zero T
	return int64(n) * int64(unsafe.Sizeof(zero))
}

// exchange runs one BSP superstep: every member posts its contribution and
// its current critical-path cost, the barrier flips, read() consumes peer
// contributions, a second barrier protects slot reuse, and finally each
// member's cost becomes the group maximum plus its own opCost. The opCost
// callback sees the group size so charges can follow the §5.1 formulas.
func exchange[T any](c *Comm, post T, read func(slots []any)) Cost {
	st := c.state
	st.slots[c.rank] = post
	st.costs[c.rank] = c.proc.cost
	st.bar.await()
	read(st.slots)
	group := Cost{}
	for _, pc := range st.costs {
		group = group.Max(pc)
	}
	st.bar.await()
	return group
}

// commCost returns the charge for a collective, which is free on a
// single-member communicator (self-communication costs nothing in the
// α–β model).
func commCost(size int, c Cost) Cost {
	if size <= 1 {
		return Cost{Flops: c.Flops}
	}
	return c
}

// Barrier synchronizes the group, charging ⌈log₂p⌉ latency.
func Barrier(c *Comm) {
	group := exchange(c, struct{}{}, func([]any) {})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Msgs: logMsgs(c.Size())}))
}

// Bcast broadcasts root's data to every member. Cost per the paper's
// Table-3 model: 2xβ + 2⌈log₂p⌉α with x the message size.
func Bcast[T any](c *Comm, root int, data []T) []T {
	var out []T
	group := exchange(c, data, func(slots []any) {
		src := slots[root].([]T)
		if c.rank == root {
			out = data
			return
		}
		out = make([]T, len(src))
		copy(out, src)
	})
	x := bytesOf[T](len(out))
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: 2 * x, Msgs: 2 * logMsgs(c.Size())}))
	return out
}

// Allgather returns every member's contribution, in rank order.
// Cost: xβ + ⌈log₂p⌉α with x the total gathered size.
func Allgather[T any](c *Comm, data []T) [][]T {
	out := make([][]T, c.Size())
	total := 0
	group := exchange(c, data, func(slots []any) {
		for i := range out {
			src := slots[i].([]T)
			total += len(src)
			if i == c.rank {
				out[i] = data
				continue
			}
			cp := make([]T, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](total), Msgs: logMsgs(c.Size())}))
	return out
}

// AllgatherConcat is Allgather flattened into one slice.
func AllgatherConcat[T any](c *Comm, data []T) []T {
	parts := Allgather(c, data)
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Gather collects every member's contribution at root (others get nil).
// Cost: xβ + ⌈log₂p⌉α with x the total gathered size.
func Gather[T any](c *Comm, root int, data []T) [][]T {
	var out [][]T
	total := 0
	group := exchange(c, data, func(slots []any) {
		for i := range slots {
			total += len(slots[i].([]T))
		}
		if c.rank != root {
			return
		}
		out = make([][]T, c.Size())
		for i := range out {
			src := slots[i].([]T)
			if i == c.rank {
				out[i] = data
				continue
			}
			cp := make([]T, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](total), Msgs: logMsgs(c.Size())}))
	return out
}

// Scatter distributes root's parts (len == group size); member i receives
// parts[i]. Cost: xβ + ⌈log₂p⌉α with x the total scattered size.
func Scatter[T any](c *Comm, root int, parts [][]T) []T {
	var out []T
	total := 0
	group := exchange(c, parts, func(slots []any) {
		src := slots[root].([][]T)
		for _, p := range src {
			total += len(p)
		}
		mine := src[c.rank]
		out = make([]T, len(mine))
		copy(out, mine)
	})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](total), Msgs: logMsgs(c.Size())}))
	return out
}

// Allreduce combines equal-length vectors elementwise with op; every member
// receives the result. Cost: 2xβ + 2⌈log₂p⌉α.
func Allreduce[T any](c *Comm, data []T, op func(T, T) T) []T {
	var out []T
	group := exchange(c, data, func(slots []any) {
		out = make([]T, len(data))
		copy(out, data)
		for i := 0; i < c.Size(); i++ {
			if i == c.rank {
				continue
			}
			src := slots[i].([]T)
			for k := range out {
				out[k] = op(out[k], src[k])
			}
		}
	})
	x := bytesOf[T](len(out))
	c.proc.cost = group.Add(commCost(c.Size(), Cost{
		Bytes: 2 * x,
		Msgs:  2 * logMsgs(c.Size()),
		Flops: int64(len(out)) * logMsgs(c.Size()),
	}))
	return out
}

// AllreduceScalar is Allreduce for a single value.
func AllreduceScalar[T any](c *Comm, v T, op func(T, T) T) T {
	return Allreduce(c, []T{v}, op)[0]
}

// ReduceSlices performs a sparse reduction: every member contributes a
// variable-length slice, combine folds two slices into one (e.g. a sorted
// merge that sums duplicates), and root receives the fold (others nil).
// Cost per the paper's sparse-reduction bound: 2xβ + 2⌈log₂p⌉α with x the
// *output* size, plus the fold work as flops.
func ReduceSlices[T any](c *Comm, root int, data []T, combine func(a, b []T) []T) []T {
	var out []T
	var inTotal int
	group := exchange(c, data, func(slots []any) {
		for i := range slots {
			inTotal += len(slots[i].([]T))
		}
		if c.rank != root {
			return
		}
		// Tree-order fold for deterministic association.
		parts := make([][]T, c.Size())
		for i := range parts {
			src := slots[i].([]T)
			cp := make([]T, len(src))
			copy(cp, src)
			parts[i] = cp
		}
		for len(parts) > 1 {
			var next [][]T
			for i := 0; i+1 < len(parts); i += 2 {
				next = append(next, combine(parts[i], parts[i+1]))
			}
			if len(parts)%2 == 1 {
				next = append(next, parts[len(parts)-1])
			}
			parts = next
		}
		out = parts[0]
	})
	outLen := len(out)
	// Non-roots charge the same modeled cost: they participated in the tree.
	outBytes := bytesOf[T](outLen)
	if c.rank != root {
		outBytes = bytesOf[T](inTotal) / int64(max(1, c.Size()))
	}
	c.proc.cost = group.Add(commCost(c.Size(), Cost{
		Bytes: 2 * outBytes,
		Msgs:  2 * logMsgs(c.Size()),
		Flops: int64(inTotal),
	}))
	return out
}

// Alltoall performs personalized all-to-all: member i's parts[j] is
// delivered to member j; the return value holds, per source rank, the slice
// it sent here. Cost per member: max(sent, received)·β + ⌈log₂p⌉α.
func Alltoall[T any](c *Comm, parts [][]T) [][]T {
	if len(parts) != c.Size() {
		c.state.machine.fail(errAlltoallShape{len(parts), c.Size()})
		panic(abortError{reason: "alltoall parts/size mismatch"})
	}
	out := make([][]T, c.Size())
	sent, recv := 0, 0
	group := exchange(c, parts, func(slots []any) {
		for _, p := range parts {
			sent += len(p)
		}
		for i := 0; i < c.Size(); i++ {
			src := slots[i].([][]T)[c.rank]
			recv += len(src)
			if i == c.rank {
				out[i] = parts[c.rank]
				continue
			}
			cp := make([]T, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	x := sent
	if recv > x {
		x = recv
	}
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](x), Msgs: logMsgs(c.Size())}))
	return out
}

// AlltoallConcat flattens Alltoall output into one slice ordered by source
// rank.
func AlltoallConcat[T any](c *Comm, parts [][]T) []T {
	got := Alltoall(c, parts)
	n := 0
	for _, p := range got {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range got {
		out = append(out, p...)
	}
	return out
}

type errAlltoallShape [2]int

func (e errAlltoallShape) Error() string {
	return "machine: alltoall called with wrong number of parts"
}

// SendRecv performs a simultaneous point-to-point exchange: every member
// names a destination and a source (a permutation, e.g. a Cannon shift) and
// receives the data the source addressed to it. Cost: α + β·bytes received,
// the point-to-point term of Cannon's algorithm (§5.2.2).
func SendRecv[T any](c *Comm, dst, src int, data []T) []T {
	type addressed struct {
		to   int
		data []T
	}
	var out []T
	group := exchange(c, addressed{to: dst, data: data}, func(slots []any) {
		msg := slots[src].(addressed)
		if msg.to != c.rank {
			c.state.machine.fail(errPointToPoint{from: src, want: c.rank, got: msg.to})
			panic(abortError{reason: "mismatched send/recv pairing"})
		}
		out = make([]T, len(msg.data))
		copy(out, msg.data)
	})
	charge := Cost{Bytes: bytesOf[T](len(out)), Msgs: 1}
	if dst == c.rank && src == c.rank {
		charge = Cost{}
	}
	c.proc.cost = group.Add(charge)
	return out
}

type errPointToPoint struct{ from, want, got int }

func (e errPointToPoint) Error() string {
	return "machine: sendrecv pairing mismatch"
}

// Split partitions the communicator by color, MPI_Comm_split style: members
// with equal color form a new communicator, ranked by (key, old rank). The
// bookkeeping exchange is charged as a small allgather.
func Split(c *Comm, color, key int) *Comm {
	type info struct{ Color, Key, Rank int }
	st := c.state
	// Phase 1: share (color, key).
	mine := info{Color: color, Key: key, Rank: c.rank}
	st.slots[c.rank] = mine
	st.costs[c.rank] = c.proc.cost
	st.bar.await()
	all := make([]info, st.size)
	for i := range all {
		all[i] = st.slots[i].(info)
	}
	group := Cost{}
	for _, pc := range st.costs {
		group = group.Max(pc)
	}
	st.bar.await()
	// Everyone derives the same grouping.
	var members []info
	for _, in := range all {
		if in.Color == color {
			members = append(members, in)
		}
	}
	sort.Slice(members, func(a, b int) bool {
		if members[a].Key != members[b].Key {
			return members[a].Key < members[b].Key
		}
		return members[a].Rank < members[b].Rank
	})
	newRank := 0
	for i, in := range members {
		if in.Rank == c.rank {
			newRank = i
		}
	}
	leader := members[0].Rank
	// Phase 2: the leader allocates shared state; members pick it up.
	if c.rank == leader {
		st.aux[c.rank] = newCommState(st.machine, len(members))
	}
	st.bar.await()
	newState := st.aux[leader].(*commState)
	st.bar.await()
	c.proc.cost = group.Add(commCost(st.size, Cost{Bytes: int64(24 * st.size), Msgs: logMsgs(st.size)}))
	return &Comm{state: newState, rank: newRank, proc: c.proc}
}
