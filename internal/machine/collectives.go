package machine

import (
	"sort"
	"unsafe"
)

// bytesOf estimates the wire size of n elements of type T. Element types
// used on the wire are flat structs (no internal pointers), so Sizeof is
// exact up to padding.
func bytesOf[T any](n int) int64 {
	var zero T
	return int64(n) * int64(unsafe.Sizeof(zero))
}

// step posts one superstep contribution through the communicator's
// backend group and returns the group's critical-path maximum; the
// collective then assigns the member's cost as max + its own charge. The
// charge callbacks see every member's posted Size so the §5.1 formulas
// need no peer payloads.
func (c *Comm) step(post Payload, read func(slots []any, sizes []int64)) Cost {
	return c.group.Step(c.proc, c.rank, post, read)
}

// commCost returns the charge for a collective, which is free on a
// single-member communicator (self-communication costs nothing in the
// α–β model).
func commCost(size int, c Cost) Cost {
	if size <= 1 {
		return Cost{Flops: c.Flops}
	}
	return c
}

// Barrier synchronizes the group, charging ⌈log₂p⌉ latency.
func Barrier(c *Comm) {
	group := c.step(Payload{}, func([]any, []int64) {})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Msgs: LogMsgs(c.Size())}))
}

// Bcast broadcasts root's data to every member. Cost per the paper's
// Table-3 model: 2xβ + 2⌈log₂p⌉α with x the message size.
func Bcast[T any](c *Comm, root int, data []T) []T {
	var out []T
	pl := Payload{V: data, Size: int64(len(data))}
	if c.rank == root {
		pl.Enc = func(int) []byte { return EncodeSlice(data) }
	} else {
		pl.Dec = func(src int, b []byte) any { return DecodeSlice[T](b) }
	}
	group := c.step(pl, func(slots []any, _ []int64) {
		if c.rank == root {
			out = data
			return
		}
		src := slots[root].([]T)
		out = make([]T, len(src))
		copy(out, src)
	})
	x := bytesOf[T](len(out))
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: 2 * x, Msgs: 2 * LogMsgs(c.Size())}))
	return out
}

// Allgather returns every member's contribution, in rank order.
// Cost: xβ + ⌈log₂p⌉α with x the total gathered size.
func Allgather[T any](c *Comm, data []T) [][]T {
	out := make([][]T, c.Size())
	total := 0
	pl := Payload{
		V:    data,
		Size: int64(len(data)),
		Enc:  func(int) []byte { return EncodeSlice(data) },
		Dec:  func(src int, b []byte) any { return DecodeSlice[T](b) },
	}
	group := c.step(pl, func(slots []any, sizes []int64) {
		for _, s := range sizes {
			total += int(s)
		}
		for i := range out {
			if i == c.rank {
				out[i] = data
				continue
			}
			src := slots[i].([]T)
			cp := make([]T, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](total), Msgs: LogMsgs(c.Size())}))
	return out
}

// AllgatherConcat is Allgather flattened into one slice.
func AllgatherConcat[T any](c *Comm, data []T) []T {
	parts := Allgather(c, data)
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Gather collects every member's contribution at root (others get nil).
// Cost: xβ + ⌈log₂p⌉α with x the total gathered size.
func Gather[T any](c *Comm, root int, data []T) [][]T {
	var out [][]T
	total := 0
	pl := Payload{
		V:    data,
		Size: int64(len(data)),
		Enc: func(dst int) []byte {
			if dst != root {
				return nil
			}
			return EncodeSlice(data)
		},
		Dec: func(src int, b []byte) any { return DecodeSlice[T](b) },
	}
	group := c.step(pl, func(slots []any, sizes []int64) {
		for _, s := range sizes {
			total += int(s)
		}
		if c.rank != root {
			return
		}
		out = make([][]T, c.Size())
		for i := range out {
			if i == c.rank {
				out[i] = data
				continue
			}
			src := slots[i].([]T)
			cp := make([]T, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](total), Msgs: LogMsgs(c.Size())}))
	return out
}

// Scatter distributes root's parts (len == group size); member i receives
// parts[i]. Cost: xβ + ⌈log₂p⌉α with x the total scattered size.
func Scatter[T any](c *Comm, root int, parts [][]T) []T {
	var out []T
	var mySize int64
	for _, p := range parts {
		mySize += int64(len(p))
	}
	pl := Payload{
		V:    parts,
		Size: mySize,
		Dec: func(src int, b []byte) any {
			// A network backend delivers only our own part; rebuild a
			// sparse parts view so the read path is backend-agnostic.
			sparse := make([][]T, c.Size())
			sparse[c.rank] = DecodeSlice[T](b)
			return sparse
		},
	}
	if c.rank == root {
		pl.Enc = func(dst int) []byte { return EncodeSlice(parts[dst]) }
		pl.Dec = nil
	}
	total := 0
	group := c.step(pl, func(slots []any, sizes []int64) {
		total = int(sizes[root])
		src := slots[root].([][]T)
		mine := src[c.rank]
		out = make([]T, len(mine))
		copy(out, mine)
	})
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](total), Msgs: LogMsgs(c.Size())}))
	return out
}

// Allreduce combines equal-length vectors elementwise with op; every member
// receives the result. Cost: 2xβ + 2⌈log₂p⌉α.
func Allreduce[T any](c *Comm, data []T, op func(T, T) T) []T {
	var out []T
	pl := Payload{
		V:    data,
		Size: int64(len(data)),
		Enc:  func(int) []byte { return EncodeSlice(data) },
		Dec:  func(src int, b []byte) any { return DecodeSlice[T](b) },
	}
	group := c.step(pl, func(slots []any, _ []int64) {
		out = make([]T, len(data))
		copy(out, data)
		for i := 0; i < c.Size(); i++ {
			if i == c.rank {
				continue
			}
			src := slots[i].([]T)
			for k := range out {
				out[k] = op(out[k], src[k])
			}
		}
	})
	x := bytesOf[T](len(out))
	c.proc.cost = group.Add(commCost(c.Size(), Cost{
		Bytes: 2 * x,
		Msgs:  2 * LogMsgs(c.Size()),
		Flops: int64(len(out)) * LogMsgs(c.Size()),
	}))
	return out
}

// AllreduceScalar is Allreduce for a single value.
func AllreduceScalar[T any](c *Comm, v T, op func(T, T) T) T {
	return Allreduce(c, []T{v}, op)[0]
}

// ReduceSlices performs a sparse reduction: every member contributes a
// variable-length slice, combine folds two slices into one (e.g. a sorted
// merge that sums duplicates), and root receives the fold (others nil).
// Cost per the paper's sparse-reduction bound: 2xβ + 2⌈log₂p⌉α with x the
// *output* size, plus the fold work as flops.
func ReduceSlices[T any](c *Comm, root int, data []T, combine func(a, b []T) []T) []T {
	var out []T
	var inTotal int
	pl := Payload{
		V:    data,
		Size: int64(len(data)),
		Enc: func(dst int) []byte {
			if dst != root {
				return nil
			}
			return EncodeSlice(data)
		},
		Dec: func(src int, b []byte) any { return DecodeSlice[T](b) },
	}
	group := c.step(pl, func(slots []any, sizes []int64) {
		for _, s := range sizes {
			inTotal += int(s)
		}
		if c.rank != root {
			return
		}
		// Tree-order fold for deterministic association.
		parts := make([][]T, c.Size())
		for i := range parts {
			src := slots[i].([]T)
			cp := make([]T, len(src))
			copy(cp, src)
			parts[i] = cp
		}
		for len(parts) > 1 {
			var next [][]T
			for i := 0; i+1 < len(parts); i += 2 {
				next = append(next, combine(parts[i], parts[i+1]))
			}
			if len(parts)%2 == 1 {
				next = append(next, parts[len(parts)-1])
			}
			parts = next
		}
		out = parts[0]
	})
	outLen := len(out)
	// Non-roots charge the same modeled cost: they participated in the tree.
	outBytes := bytesOf[T](outLen)
	if c.rank != root {
		outBytes = bytesOf[T](inTotal) / int64(max(1, c.Size()))
	}
	c.proc.cost = group.Add(commCost(c.Size(), Cost{
		Bytes: 2 * outBytes,
		Msgs:  2 * LogMsgs(c.Size()),
		Flops: int64(inTotal),
	}))
	return out
}

// Alltoall performs personalized all-to-all: member i's parts[j] is
// delivered to member j; the return value holds, per source rank, the slice
// it sent here. Cost per member: max(sent, received)·β + ⌈log₂p⌉α.
func Alltoall[T any](c *Comm, parts [][]T) [][]T {
	if len(parts) != c.Size() {
		c.proc.Fail(errAlltoallShape{len(parts), c.Size()})
		Abort("alltoall parts/size mismatch")
	}
	sent := 0
	for _, p := range parts {
		sent += len(p)
	}
	out := make([][]T, c.Size())
	recv := 0
	pl := Payload{
		V:    parts,
		Size: int64(sent),
		Enc:  func(dst int) []byte { return EncodeSlice(parts[dst]) },
		Dec: func(src int, b []byte) any {
			sparse := make([][]T, c.Size())
			sparse[c.rank] = DecodeSlice[T](b)
			return sparse
		},
	}
	group := c.step(pl, func(slots []any, _ []int64) {
		for i := 0; i < c.Size(); i++ {
			src := slots[i].([][]T)[c.rank]
			recv += len(src)
			if i == c.rank {
				out[i] = parts[c.rank]
				continue
			}
			cp := make([]T, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	x := sent
	if recv > x {
		x = recv
	}
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: bytesOf[T](x), Msgs: LogMsgs(c.Size())}))
	return out
}

// AlltoallConcat flattens Alltoall output into one slice ordered by source
// rank.
func AlltoallConcat[T any](c *Comm, parts [][]T) []T {
	got := Alltoall(c, parts)
	n := 0
	for _, p := range got {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range got {
		out = append(out, p...)
	}
	return out
}

type errAlltoallShape [2]int

func (e errAlltoallShape) Error() string {
	return "machine: alltoall called with wrong number of parts"
}

// sendRecvMsg is the addressed point-to-point envelope of SendRecv.
type sendRecvMsg[T any] struct {
	to   int
	data []T
}

// SendRecv performs a simultaneous point-to-point exchange: every member
// names a destination and a source (a permutation, e.g. a Cannon shift) and
// receives the data the source addressed to it. Cost: α + β·bytes received,
// the point-to-point term of Cannon's algorithm (§5.2.2).
func SendRecv[T any](c *Comm, dst, src int, data []T) []T {
	var out []T
	pl := Payload{
		V:    sendRecvMsg[T]{to: dst, data: data},
		Size: int64(len(data)),
		Enc: func(d int) []byte {
			if d != dst {
				return nil
			}
			return EncodeSlice(data)
		},
		Dec: func(s int, b []byte) any {
			return sendRecvMsg[T]{to: c.rank, data: DecodeSlice[T](b)}
		},
	}
	group := c.step(pl, func(slots []any, _ []int64) {
		msg, ok := slots[src].(sendRecvMsg[T])
		if !ok || msg.to != c.rank {
			c.proc.Fail(errPointToPoint{from: src, want: c.rank})
			Abort("mismatched send/recv pairing")
		}
		out = make([]T, len(msg.data))
		copy(out, msg.data)
	})
	charge := Cost{Bytes: bytesOf[T](len(out)), Msgs: 1}
	if dst == c.rank && src == c.rank {
		charge = Cost{}
	}
	c.proc.cost = group.Add(charge)
	return out
}

type errPointToPoint struct{ from, want int }

func (e errPointToPoint) Error() string {
	return "machine: sendrecv pairing mismatch"
}

// splitInfo is the bookkeeping triple Split exchanges (24 wire bytes).
type splitInfo struct{ Color, Key, Rank int }

// Split partitions the communicator by color, MPI_Comm_split style: members
// with equal color form a new communicator, ranked by (key, old rank). The
// bookkeeping exchange is charged as a small allgather; the backend derives
// the subgroup state from the agreed member list.
func Split(c *Comm, color, key int) *Comm {
	mine := splitInfo{Color: color, Key: key, Rank: c.rank}
	all := make([]splitInfo, c.Size())
	pl := Payload{
		V:    mine,
		Size: 1,
		Enc:  func(int) []byte { return EncodeSlice([]splitInfo{mine}) },
		Dec:  func(src int, b []byte) any { return DecodeSlice[splitInfo](b)[0] },
	}
	group := c.step(pl, func(slots []any, _ []int64) {
		for i := range all {
			all[i] = slots[i].(splitInfo)
		}
	})
	// Everyone derives the same grouping.
	var members []splitInfo
	for _, in := range all {
		if in.Color == color {
			members = append(members, in)
		}
	}
	sort.Slice(members, func(a, b int) bool {
		if members[a].Key != members[b].Key {
			return members[a].Key < members[b].Key
		}
		return members[a].Rank < members[b].Rank
	})
	memberRanks := make([]int, len(members))
	newRank := 0
	for i, in := range members {
		memberRanks[i] = in.Rank
		if in.Rank == c.rank {
			newRank = i
		}
	}
	c.proc.cost = group.Add(commCost(c.Size(), Cost{Bytes: int64(24 * c.Size()), Msgs: LogMsgs(c.Size())}))
	sub := c.group.Subgroup(c.proc, c.rank, memberRanks, newRank)
	return &Comm{group: sub, rank: newRank, proc: c.proc}
}
