// Registers the TCP backend into the conformance suite: every shared
// collective/grid/phase/failure test in machine_test.go also runs over a
// real loopback mesh, and its modeled stats must match sim bit-for-bit.
package machine_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/machine/tcpnet"
)

func init() {
	registerBackend(backendCase{
		name: "tcpnet",
		make: func(t testing.TB, p int) machine.Transport {
			mesh, err := tcpnet.StartLocalMesh(p, tcpnet.Options{})
			if err != nil {
				t.Fatalf("tcpnet loopback mesh: %v", err)
			}
			t.Cleanup(func() { mesh.Close() })
			return mesh
		},
	})
}
