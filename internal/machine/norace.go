//go:build !race

package machine

// raceEnabled is false in uninstrumented builds; see race.go.
const raceEnabled = false
