// Wire protocol: every message is one frame, [uint32 length][1-byte
// type][body], length covering type + body. Data frames additionally
// carry a per-connection sequence number (a desync check: per-pair FIFO
// is the protocol's only ordering guarantee, so a gap means the stream
// is corrupt), the sender's modeled cost vector, its posted collective
// size, and an optional payload.

package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/machine"
)

const (
	frameHello byte = 1 // body: uint32 dialer rank
	frameData  byte = 2 // body: data header + payload
	frameCtrl  byte = 3 // body: opaque operation / ack bytes
	frameAbort byte = 4 // body: failure message
)

// dataHeader is seq(8) + cost(3×8) + size(8) + payload-present(1).
const dataHeader = 8 + 3*8 + 8 + 1

// maxFrame bounds a frame body; anything larger indicates corruption.
const maxFrame = 1 << 30

// abortWriteTimeout bounds best-effort abort broadcasts so the failure
// path cannot hang on a dead connection.
const abortWriteTimeout = 2 * time.Second

// conn is one rank-pair connection. Writes are serialized by wmu (the
// region goroutine and the abort path share the stream); reads belong
// exclusively to the readLoop goroutine, which demultiplexes data and
// control frames into the channels.
type conn struct {
	peer   int
	c      net.Conn
	wmu    sync.Mutex
	seqOut uint64 // guarded by wmu
	seqIn  uint64 // readLoop only
	data   chan dataFrame
	ctrl   chan []byte
}

func newConn(peer int, c net.Conn) *conn {
	return &conn{peer: peer, c: c, data: make(chan dataFrame, 1024), ctrl: make(chan []byte, 16)}
}

// dataFrame is one received superstep contribution.
type dataFrame struct {
	seq     uint64
	cost    machine.Cost
	size    int64
	payload []byte // nil when the frame carried cost bookkeeping only
}

// writeFrame sends one framed message. Each write attempt runs under the
// transport's deadline; a deadline miss with partial progress continues
// with a fresh window (the stream stays consistent — the remainder picks
// up where the kernel left off), while a zero-progress miss is retried
// once before giving up.
func (t *Transport) writeFrame(cn *conn, typ byte, body []byte) error {
	if len(body)+1 > maxFrame {
		return fmt.Errorf("tcpnet: frame to rank %d exceeds %d bytes", cn.peer, maxFrame)
	}
	buf := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(body)))
	buf[4] = typ
	copy(buf[5:], body)
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	return t.writeLocked(cn, buf)
}

func (t *Transport) writeLocked(cn *conn, buf []byte) error {
	retries := 1
	for {
		if t.timeout > 0 {
			cn.c.SetWriteDeadline(time.Now().Add(t.timeout))
		}
		n, err := cn.c.Write(buf)
		buf = buf[n:]
		if len(buf) == 0 && err == nil {
			return nil
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if n > 0 {
					continue // progress made; fresh deadline window
				}
				if retries > 0 {
					retries--
					continue
				}
			}
			return fmt.Errorf("machine: write to rank %d failed: %w", cn.peer, err)
		}
	}
}

// sendData sends one superstep contribution. The sequence number is
// allocated under the write lock so concurrent control traffic cannot
// reorder data frames.
func (t *Transport) sendData(worldRank int, cost machine.Cost, size int64, payload []byte) error {
	cn := t.conns[worldRank]
	body := make([]byte, dataHeader+len(payload))
	binary.LittleEndian.PutUint64(body[8:], uint64(cost.Bytes))
	binary.LittleEndian.PutUint64(body[16:], uint64(cost.Msgs))
	binary.LittleEndian.PutUint64(body[24:], uint64(cost.Flops))
	binary.LittleEndian.PutUint64(body[32:], uint64(size))
	if payload != nil {
		body[40] = 1
		copy(body[dataHeader:], payload)
	}
	buf := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(body)))
	buf[4] = frameData
	copy(buf[5:], body)
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	cn.seqOut++
	binary.LittleEndian.PutUint64(buf[5:], cn.seqOut)
	return t.writeLocked(cn, buf)
}

// writeAbort best-effort pushes an abort frame. It must never block the
// failure path: if the stream is busy (a concurrent write is stuck) the
// peer's own watchdog handles teardown instead.
func (t *Transport) writeAbort(cn *conn, msg []byte) {
	if !cn.wmu.TryLock() {
		return
	}
	defer cn.wmu.Unlock()
	buf := make([]byte, 5+len(msg))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(msg)))
	buf[4] = frameAbort
	copy(buf[5:], msg)
	cn.c.SetWriteDeadline(time.Now().Add(abortWriteTimeout))
	cn.c.Write(buf)
}

// readLoop owns the connection's read side for the transport's lifetime,
// demultiplexing frames into the conn's channels. Reads carry no
// deadline — sessions idle between regions for arbitrarily long — and
// collective-level starvation is the recv watchdog's job, not the
// stream's.
func (t *Transport) readLoop(cn *conn) {
	br := bufio.NewReaderSize(cn.c, 64<<10)
	hdr := make([]byte, 5)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			t.linkLost(cn, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr)
		if n < 1 || n > maxFrame {
			t.linkLost(cn, fmt.Errorf("bad frame length %d", n))
			return
		}
		body := make([]byte, n-1)
		if _, err := io.ReadFull(br, body); err != nil {
			t.linkLost(cn, err)
			return
		}
		switch hdr[4] {
		case frameData:
			df, err := parseData(body)
			if err != nil {
				t.linkLost(cn, err)
				return
			}
			cn.seqIn++
			if df.seq != cn.seqIn {
				t.linkLost(cn, fmt.Errorf("stream desync: frame seq %d, want %d", df.seq, cn.seqIn))
				return
			}
			select {
			case cn.data <- df:
			case <-t.abort:
				return
			}
		case frameCtrl:
			select {
			case cn.ctrl <- body:
			case <-t.abort:
				return
			}
		case frameAbort:
			t.fail(fmt.Errorf("machine: aborted by rank %d: %s", cn.peer, body))
			return
		default:
			t.linkLost(cn, fmt.Errorf("unknown frame type %d", hdr[4]))
			return
		}
	}
}

func parseData(body []byte) (dataFrame, error) {
	if len(body) < dataHeader {
		return dataFrame{}, fmt.Errorf("short data frame (%d bytes)", len(body))
	}
	df := dataFrame{
		seq: binary.LittleEndian.Uint64(body),
		cost: machine.Cost{
			Bytes: int64(binary.LittleEndian.Uint64(body[8:])),
			Msgs:  int64(binary.LittleEndian.Uint64(body[16:])),
			Flops: int64(binary.LittleEndian.Uint64(body[24:])),
		},
		size: int64(binary.LittleEndian.Uint64(body[32:])),
	}
	if body[40] == 1 {
		df.payload = body[dataHeader:]
		if df.payload == nil {
			df.payload = []byte{}
		}
	}
	return df, nil
}

// linkLost surfaces a dead connection as a machine failure, unless the
// transport is already closing or aborting (peers tearing down produce
// expected EOFs).
func (t *Transport) linkLost(cn *conn, err error) {
	if t.closed.Load() {
		return
	}
	select {
	case <-t.abort:
		return
	default:
	}
	t.fail(fmt.Errorf("machine: link to rank %d lost: %w", cn.peer, err))
}

// recvData waits for the next superstep frame from worldRank, guarded by
// the collective watchdog: one full timeout window, one retry window,
// then the machine fails (the sim backend's barrier watchdog, translated
// to message passing). Abort wakes the wait immediately.
func (t *Transport) recvData(p *machine.Proc, worldRank int) dataFrame {
	cn := t.conns[worldRank]
	if t.timeout <= 0 {
		select {
		case df := <-cn.data:
			return df
		case <-t.abort:
			t.abortRecv(p)
		}
	}
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	retries := 1
	for {
		select {
		case df := <-cn.data:
			return df
		case <-t.abort:
			t.abortRecv(p)
		case <-timer.C:
			if retries > 0 {
				retries--
				timer.Reset(t.timeout)
				continue
			}
			err := fmt.Errorf("machine: receive from rank %d timed out after %v (collective deadlock: mismatched collective calls across ranks?)", worldRank, 2*t.timeout)
			p.Fail(err)
			machine.Abort("collective timeout")
		}
	}
}

// abortRecv unwinds a waiting rank after the transport failed or closed.
func (t *Transport) abortRecv(p *machine.Proc) {
	if err := t.err(); err == nil {
		p.Fail(errClosed)
	}
	machine.Abort("peer failure")
}
