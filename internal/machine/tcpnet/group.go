// The superstep engine: group implements machine.Group over the mesh,
// and Run drives one rank's region body plus the closing summary
// exchange that makes RunStats identical on every process.

package tcpnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/machine"
)

// group is one communicator's view of the mesh: the member world ranks
// in group-rank order. Subgroups are pure rank arithmetic — Split's
// bookkeeping allgather already agreed on the member list everywhere, so
// no extra communication is needed.
type group struct {
	t       *Transport
	members []int // world rank of each group rank
	myIdx   int   // this rank's group rank
}

func worldGroup(t *Transport) *group {
	members := make([]int, t.p)
	for i := range members {
		members[i] = i
	}
	return &group{t: t, members: members, myIdx: t.rank}
}

func (g *group) Size() int { return len(g.members) }

// Step runs one BSP superstep: send one frame to every other member
// (payload where Enc addresses that peer, cost-only otherwise), then
// collect one frame from each. Per-pair FIFO plus SPMD program order
// guarantees the collected frames belong to this superstep.
func (g *group) Step(p *machine.Proc, rank int, post machine.Payload, read func(slots []any, sizes []int64)) machine.Cost {
	n := len(g.members)
	slots := make([]any, n)
	sizes := make([]int64, n)
	own := p.Cost()
	slots[g.myIdx] = post.V
	sizes[g.myIdx] = post.Size
	for gi, wr := range g.members {
		if gi == g.myIdx {
			continue
		}
		var payload []byte
		if post.Enc != nil {
			payload = post.Enc(gi)
		}
		if err := g.t.sendData(wr, own, post.Size, payload); err != nil {
			p.Fail(err)
			machine.Abort("send failure")
		}
	}
	max := own
	for gi, wr := range g.members {
		if gi == g.myIdx {
			continue
		}
		df := g.t.recvData(p, wr)
		sizes[gi] = df.size
		max = max.Max(df.cost)
		if df.payload != nil && post.Dec != nil {
			slots[gi] = post.Dec(gi, df.payload)
		}
	}
	read(slots, sizes)
	return max
}

func (g *group) Subgroup(p *machine.Proc, rank int, members []int, myIdx int) machine.Group {
	world := make([]int, len(members))
	for i, m := range members {
		world[i] = g.members[m]
	}
	return &group{t: g.t, members: world, myIdx: myIdx}
}

// Run executes fn as this rank's part of one SPMD machine region. All
// ranks must call Run with the same program; the closing summary
// exchange then builds bit-identical RunStats everywhere (wall clock
// aside, which is measured per process).
//
// A failed run poisons the transport — peer streams may have died
// mid-frame — so callers rebuild the mesh rather than retry on it.
func (t *Transport) Run(fn func(p *machine.Proc)) (machine.RunStats, error) {
	if t.closed.Load() {
		return machine.RunStats{}, errClosed
	}
	if err := t.err(); err != nil {
		return machine.RunStats{}, fmt.Errorf("tcpnet: transport poisoned by earlier failure: %w", err)
	}
	start := time.Now()
	world := worldGroup(t)
	proc := machine.NewProc(world, t.rank, 1, t.fail, start)
	t.runBody(proc, fn)
	if err := t.err(); err != nil {
		return machine.RunStats{}, err
	}
	sums, ok := t.exchangeSummaries(world, proc)
	if !ok {
		return machine.RunStats{}, t.err()
	}
	return machine.BuildRunStats(t.model, sums, time.Since(start)), nil
}

func (t *Transport) runBody(proc *machine.Proc, fn func(p *machine.Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := machine.AbortErr(r); ok {
				t.fail(err)
				return
			}
			t.fail(fmt.Errorf("machine: proc %d panicked: %v\n%s", t.rank, r, debug.Stack()))
		}
	}()
	fn(proc)
}

// exchangeSummaries closes the rank's phase bookkeeping and runs one
// cost-free superstep carrying every rank's gob-encoded ProcSummary, so
// each process can fold the identical stats. The step's cost maximum is
// deliberately discarded: stats exchange is bookkeeping, not part of the
// modeled program.
func (t *Transport) exchangeSummaries(world *group, proc *machine.Proc) (sums []machine.ProcSummary, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if err, isAbort := machine.AbortErr(r); isAbort {
				t.fail(err)
				ok = false
				return
			}
			panic(r)
		}
	}()
	self := proc.Summary()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(self); err != nil {
		t.fail(fmt.Errorf("tcpnet: encoding rank %d summary: %w", t.rank, err))
		return nil, false
	}
	enc := buf.Bytes()
	out := make([]machine.ProcSummary, t.p)
	world.Step(proc, t.rank, machine.Payload{
		V:   self,
		Enc: func(int) []byte { return enc },
		Dec: func(src int, b []byte) any {
			var s machine.ProcSummary
			if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
				t.fail(fmt.Errorf("tcpnet: decoding rank %d summary: %w", src, err))
				machine.Abort("summary decode failure")
			}
			return s
		},
	}, func(slots []any, _ []int64) {
		for i := range slots {
			s, isSummary := slots[i].(machine.ProcSummary)
			if !isSummary {
				// A cost-only frame here means some rank ran a different
				// collective sequence (its frame was consumed elsewhere).
				t.fail(fmt.Errorf("machine: rank %d summary exchange desynchronized (mismatched collective calls across ranks?)", t.rank))
				machine.Abort("summary desync")
			}
			out[i] = s
		}
	})
	if err := t.err(); err != nil {
		return nil, false
	}
	return out, true
}
