// LocalMesh: a whole p-rank TCP machine inside one process, each rank on
// its own loopback endpoint. It exists for tests, the conformance suite,
// and loopback differentials — production deployments run one rank per
// process (cmd/mfbc-rank) and never touch it.

package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/machine"
)

// LocalMesh bundles p loopback Transports behind the machine.Transport
// interface: Run executes the region on every rank concurrently, exactly
// as p separate processes would, and returns rank 0's statistics (all
// ranks compute identical stats modulo wall clock).
type LocalMesh struct {
	ranks []*Transport
}

// StartLocalMesh brings up a full loopback mesh on ephemeral 127.0.0.1
// ports: rank 0 coordinates, all others join, concurrently, as separate
// processes would.
func StartLocalMesh(p int, opt Options) (*LocalMesh, error) {
	if p < 1 {
		return nil, fmt.Errorf("tcpnet: mesh needs at least 1 rank, got %d", p)
	}
	lns := make([]net.Listener, p)
	peers := make([]string, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("tcpnet: loopback listen: %w", err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	trs := make([]*Transport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := opt
			o.Listener = lns[r]
			if r == 0 {
				trs[r], errs[r] = Coordinate(peers, o)
			} else {
				trs[r], errs[r] = Join(r, peers, o)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, tr := range trs {
				if tr != nil {
					tr.Close()
				}
			}
			return nil, err
		}
	}
	return &LocalMesh{ranks: trs}, nil
}

// Size returns the world size p.
func (m *LocalMesh) Size() int { return len(m.ranks) }

// Model returns the mesh's cost model.
func (m *LocalMesh) Model() machine.CostModel { return m.ranks[0].Model() }

// SetModel applies the model on every rank (the in-process analogue of
// replicated SPMD configuration).
func (m *LocalMesh) SetModel(cm machine.CostModel) {
	for _, tr := range m.ranks {
		tr.SetModel(cm)
	}
}

// SetTimeout applies the watchdog on every rank.
func (m *LocalMesh) SetTimeout(d time.Duration) {
	for _, tr := range m.ranks {
		tr.SetTimeout(d)
	}
}

// Run executes fn on every rank concurrently and returns rank 0's
// statistics; any rank's failure surfaces as the error.
func (m *LocalMesh) Run(fn func(p *machine.Proc)) (machine.RunStats, error) {
	stats := make([]machine.RunStats, len(m.ranks))
	errs := make([]error, len(m.ranks))
	var wg sync.WaitGroup
	for i, tr := range m.ranks {
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			stats[i], errs[i] = tr.Run(fn)
		}(i, tr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return machine.RunStats{}, err
		}
	}
	return stats[0], nil
}

// Rank exposes a single rank's endpoint (for control-plane tests).
func (m *LocalMesh) Rank(r int) *Transport { return m.ranks[r] }

// Close tears down every rank.
func (m *LocalMesh) Close() error {
	for _, tr := range m.ranks {
		tr.Close()
	}
	return nil
}
