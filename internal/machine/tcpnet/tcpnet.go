// Package tcpnet is the rank-per-process machine backend: each rank of
// the machine lives in its own OS process and the collectives in
// internal/machine move real bytes over a full mesh of TCP connections,
// one per rank pair.
//
// Topology and rendezvous are static: every process is given the same
// ordered peer list (rank i listens on peers[i]), rank i dials every
// lower rank and accepts from every higher rank, and rank 0 then acts as
// coordinator, shipping its cost model and watchdog timeout to all
// workers and collecting readiness before the transport is handed to the
// caller. After the mesh is up, rank 0 can also drive workers through
// the opaque operation channel (OpBroadcast/OpCollect on the
// coordinator, NextOp/AckOp on workers) — the session layer uses it to
// replicate region requests before entering machine.Transport.Run on
// every rank.
//
// The BSP superstep maps onto the mesh directly: in a collective over a
// group, every member sends one frame to every other member (payload
// frames where the collective's Enc addresses that peer, cost-only
// frames otherwise) and receives one frame from each. Because regions
// are SPMD, any two ranks observe their common groups' supersteps in the
// same program order, so per-pair FIFO delivery is sufficient ordering —
// frames need no group or superstep tags. Modeled α–β–γ cost rides along
// in every frame header, which keeps the critical-path join (§7.4 of the
// paper) bit-identical to the simulated backend; wall-clock time is
// whatever the network really took.
//
// Failure handling mirrors machine/sim: the first failure (a region
// panic, a lost link, a watchdog timeout) poisons the transport, an
// abort frame is broadcast best-effort so remote ranks unwind instead of
// deadlocking, and Run returns the failure as an error everywhere. A
// poisoned transport stays poisoned — streams may have died mid-frame —
// so callers rebuild the mesh rather than reuse it.
package tcpnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
)

// Options configures one rank's endpoint.
type Options struct {
	// Model overrides the α–β–γ constants; nil keeps machine.DefaultModel.
	// Only the coordinator's value matters: the rendezvous handshake ships
	// rank 0's model to every worker.
	Model *machine.CostModel
	// Timeout is the per-collective watchdog (and per-write deadline).
	// Zero keeps the 2-minute default; negative disables the watchdog.
	// Like Model, the coordinator's value wins.
	Timeout time.Duration
	// Rendezvous bounds mesh establishment (dial retries plus accepts).
	// Zero keeps the 15-second default.
	Rendezvous time.Duration
	// Listener, when non-nil, is a pre-bound listener for this rank's
	// peers[rank] address (useful for ephemeral-port harnesses). The
	// transport takes ownership and closes it once the mesh is up.
	Listener net.Listener
}

const (
	defaultTimeout    = 2 * time.Minute
	defaultRendezvous = 15 * time.Second
)

var errClosed = errors.New("tcpnet: transport closed")

// Transport is one rank's endpoint of the TCP machine. It implements
// machine.Transport; Run executes the region body for this rank only,
// synchronizing with the peer processes over the mesh.
type Transport struct {
	rank    int
	p       int
	peers   []string
	model   machine.CostModel
	timeout time.Duration

	ln    net.Listener
	conns []*conn // indexed by world rank; conns[rank] == nil

	closed    atomic.Bool
	abortOnce sync.Once
	abort     chan struct{}
	failMu    sync.Mutex
	failErr   error
}

// Coordinate brings up rank 0: it joins the mesh, ships its model and
// timeout to every worker, and returns once all workers acknowledged.
func Coordinate(peers []string, opt Options) (*Transport, error) {
	return start(0, peers, opt)
}

// Join brings up a worker rank: it joins the mesh, adopts the
// coordinator's model and timeout, and acknowledges readiness.
func Join(rank int, peers []string, opt Options) (*Transport, error) {
	if rank == 0 {
		return nil, errors.New("tcpnet: rank 0 must call Coordinate")
	}
	return start(rank, peers, opt)
}

func start(rank int, peers []string, opt Options) (*Transport, error) {
	p := len(peers)
	if p < 1 {
		return nil, errors.New("tcpnet: empty peer list")
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("tcpnet: rank %d outside peer list of %d", rank, p)
	}
	t := &Transport{
		rank:    rank,
		p:       p,
		peers:   append([]string(nil), peers...),
		model:   machine.DefaultModel(),
		timeout: defaultTimeout,
		abort:   make(chan struct{}),
		conns:   make([]*conn, p),
	}
	if opt.Model != nil {
		t.model = *opt.Model
	}
	if opt.Timeout != 0 {
		t.timeout = opt.Timeout
		if t.timeout < 0 {
			t.timeout = 0 // watchdog disabled
		}
	}
	window := opt.Rendezvous
	if window <= 0 {
		window = defaultRendezvous
	}
	if p > 1 {
		if err := t.connectMesh(opt.Listener, window); err != nil {
			t.Close()
			return nil, err
		}
		for _, cn := range t.conns {
			if cn != nil {
				go t.readLoop(cn)
			}
		}
		if err := t.handshake(); err != nil {
			t.Close()
			return nil, err
		}
	} else if opt.Listener != nil {
		opt.Listener.Close()
	}
	return t, nil
}

// connectMesh establishes the rank-pair connections: dial every lower
// rank (with retries inside the rendezvous window, since peers start in
// any order), accept from every higher rank.
func (t *Transport) connectMesh(ln net.Listener, window time.Duration) error {
	var err error
	if ln == nil {
		ln, err = net.Listen("tcp", t.peers[t.rank])
		if err != nil {
			return fmt.Errorf("tcpnet: rank %d listen %s: %w", t.rank, t.peers[t.rank], err)
		}
	}
	t.ln = ln
	deadline := time.Now().Add(window)
	acceptDone := make(chan error, 1)
	go func() { acceptDone <- t.acceptPeers(ln, deadline) }()
	dialErr := t.dialPeers(deadline)
	if dialErr != nil {
		ln.Close() // unblock the accept loop
	}
	acceptErr := <-acceptDone
	ln.Close()
	t.ln = nil
	if dialErr != nil {
		return dialErr
	}
	return acceptErr
}

func (t *Transport) acceptPeers(ln net.Listener, deadline time.Time) error {
	expect := t.p - 1 - t.rank
	for got := 0; got < expect; got++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("tcpnet: rank %d accepting peers (%d/%d arrived): %w", t.rank, got, expect, err)
		}
		peer, err := readHello(c, deadline)
		if err != nil {
			c.Close()
			return fmt.Errorf("tcpnet: rank %d handshaking inbound peer: %w", t.rank, err)
		}
		if peer <= t.rank || peer >= t.p || t.conns[peer] != nil {
			c.Close()
			return fmt.Errorf("tcpnet: rank %d got unexpected hello from rank %d", t.rank, peer)
		}
		t.conns[peer] = newConn(peer, c)
	}
	return nil
}

func (t *Transport) dialPeers(deadline time.Time) error {
	for peer := 0; peer < t.rank; peer++ {
		backoff := 25 * time.Millisecond
		for {
			c, err := net.DialTimeout("tcp", t.peers[peer], time.Until(deadline))
			if err == nil {
				if err := writeHello(c, t.rank, deadline); err != nil {
					c.Close()
					return fmt.Errorf("tcpnet: rank %d hello to rank %d: %w", t.rank, peer, err)
				}
				t.conns[peer] = newConn(peer, c)
				break
			}
			if !time.Now().Add(backoff).Before(deadline) {
				return fmt.Errorf("tcpnet: rank %d dialing rank %d at %s: %w", t.rank, peer, t.peers[peer], err)
			}
			time.Sleep(backoff)
			if backoff < 400*time.Millisecond {
				backoff *= 2
			}
		}
	}
	return nil
}

// wireConfig is the coordinator's CONFIG payload: the settings every
// rank must share for modeled costs to agree.
type wireConfig struct {
	Model   machine.CostModel
	Timeout time.Duration
}

// handshake distributes rank 0's configuration and synchronizes
// readiness, reusing the operation channel (the CONFIG broadcast is the
// mesh's first op, READY its ack).
func (t *Transport) handshake() error {
	if t.rank == 0 {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(wireConfig{Model: t.model, Timeout: t.timeout}); err != nil {
			return fmt.Errorf("tcpnet: encoding config: %w", err)
		}
		if err := t.OpBroadcast(buf.Bytes()); err != nil {
			return fmt.Errorf("tcpnet: config broadcast: %w", err)
		}
		if err := t.OpCollect(); err != nil {
			return fmt.Errorf("tcpnet: waiting for workers: %w", err)
		}
		return nil
	}
	op, err := t.NextOp()
	if err != nil {
		return fmt.Errorf("tcpnet: waiting for config: %w", err)
	}
	var cfg wireConfig
	if err := gob.NewDecoder(bytes.NewReader(op)).Decode(&cfg); err != nil {
		t.AckOp(err)
		return fmt.Errorf("tcpnet: decoding config: %w", err)
	}
	t.model = cfg.Model
	t.timeout = cfg.Timeout
	return t.AckOp(nil)
}

// Size returns the world size p.
func (t *Transport) Size() int { return t.p }

// Rank returns this process's world rank.
func (t *Transport) Rank() int { return t.rank }

// Model returns the α–β–γ constants charged by this transport.
func (t *Transport) Model() machine.CostModel { return t.model }

// SetModel replaces the cost model. It is process-local: in a real
// deployment every rank must apply the identical model (the SPMD program
// replicates its configuration), exactly as the handshake seeded it.
func (t *Transport) SetModel(m machine.CostModel) { t.model = m }

// SetTimeout replaces the collective watchdog; 0 disables it. Like
// SetModel it is process-local.
func (t *Transport) SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.timeout = d
}

// fail records the transport's first failure, wakes every local waiter,
// and broadcasts an abort frame so remote ranks unwind too.
func (t *Transport) fail(err error) {
	if err == nil {
		return
	}
	t.failMu.Lock()
	if t.failErr == nil {
		t.failErr = err
	}
	msg := t.failErr.Error()
	t.failMu.Unlock()
	t.abortOnce.Do(func() {
		close(t.abort)
		for _, cn := range t.conns {
			if cn != nil {
				t.writeAbort(cn, []byte(msg))
			}
		}
	})
}

// err returns the recorded failure, if any.
func (t *Transport) err() error {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	return t.failErr
}

// Close tears down the mesh. Idempotent; the transport is unusable
// afterwards.
func (t *Transport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.abortOnce.Do(func() { close(t.abort) })
	if t.ln != nil {
		t.ln.Close()
	}
	for _, cn := range t.conns {
		if cn != nil {
			cn.c.Close()
		}
	}
	return nil
}

// OpBroadcast ships one opaque operation from the coordinator to every
// worker. The session layer encodes region requests with it so all ranks
// enter the same Run. Coordinator only.
func (t *Transport) OpBroadcast(op []byte) error {
	if t.rank != 0 {
		return errors.New("tcpnet: OpBroadcast called on a worker rank")
	}
	for peer := 1; peer < t.p; peer++ {
		if err := t.writeFrame(t.conns[peer], frameCtrl, op); err != nil {
			t.fail(err)
			return err
		}
	}
	return nil
}

// OpCollect waits for every worker's acknowledgement of the last
// broadcast operation and returns the first reported failure.
// Coordinator only.
func (t *Transport) OpCollect() error {
	if t.rank != 0 {
		return errors.New("tcpnet: OpCollect called on a worker rank")
	}
	var firstErr error
	for peer := 1; peer < t.p; peer++ {
		body, err := t.recvCtrl(peer)
		if err != nil {
			return err
		}
		if len(body) < 1 {
			return fmt.Errorf("tcpnet: malformed ack from rank %d", peer)
		}
		if body[0] == 0 && firstErr == nil {
			firstErr = fmt.Errorf("tcpnet: rank %d: %s", peer, body[1:])
		}
	}
	return firstErr
}

// NextOp blocks until the coordinator broadcasts the next operation.
// Worker ranks only; it returns an error once the transport fails or is
// closed.
func (t *Transport) NextOp() ([]byte, error) {
	if t.rank == 0 {
		return nil, errors.New("tcpnet: NextOp called on the coordinator")
	}
	return t.recvCtrl(0)
}

// AckOp reports this worker's result for the last operation to the
// coordinator. A nil error acknowledges success.
func (t *Transport) AckOp(opErr error) error {
	if t.rank == 0 {
		return errors.New("tcpnet: AckOp called on the coordinator")
	}
	body := []byte{1}
	if opErr != nil {
		body = append([]byte{0}, opErr.Error()...)
	}
	if err := t.writeFrame(t.conns[0], frameCtrl, body); err != nil {
		t.fail(err)
		return err
	}
	return nil
}

func (t *Transport) recvCtrl(peer int) ([]byte, error) {
	cn := t.conns[peer]
	select {
	case b := <-cn.ctrl:
		return b, nil
	case <-t.abort:
		// The mesh is tearing down, but the frame may already be ahead of
		// the failure in the stream — e.g. shutdown acks racing the peers'
		// own closes (each peer's FIN arrives after its ack, but another
		// peer's FIN can poison the transport first). Give the frame one
		// bounded grace window before reporting the failure.
		select {
		case b := <-cn.ctrl:
			return b, nil
		case <-time.After(abortWriteTimeout):
		}
		if err := t.err(); err != nil {
			return nil, err
		}
		return nil, errClosed
	}
}

// hello frames carry the dialer's rank so the accepter can index the
// connection; they are exchanged synchronously before readLoop starts.

func writeHello(c net.Conn, rank int, deadline time.Time) error {
	buf := make([]byte, 9)
	binary.LittleEndian.PutUint32(buf, 5)
	buf[4] = frameHello
	binary.LittleEndian.PutUint32(buf[5:], uint32(rank))
	c.SetWriteDeadline(deadline)
	_, err := c.Write(buf)
	c.SetWriteDeadline(time.Time{})
	return err
}

func readHello(c net.Conn, deadline time.Time) (int, error) {
	buf := make([]byte, 9)
	c.SetReadDeadline(deadline)
	if _, err := io.ReadFull(c, buf); err != nil {
		return 0, err
	}
	c.SetReadDeadline(time.Time{})
	if binary.LittleEndian.Uint32(buf) != 5 || buf[4] != frameHello {
		return 0, errors.New("not a hello frame")
	}
	return int(binary.LittleEndian.Uint32(buf[5:])), nil
}
