// Round-trip fuzzing for the raw wire codec, over every payload type that
// crosses a collective: scalar slices (float64, int, int64, int32), the
// pair-semiring path structs, and the distmat entry triples wrapping each
// of them. The codec's contract is that a slice's wire form IS its memory
// image, so both directions must be bit-exact — including NaN payloads,
// infinities, and struct padding — and the encoded size must equal the
// modeled WireBytes charge.
package machine_test

import (
	"bytes"
	"math"
	"testing"
	"unsafe"

	"repro/internal/algebra"
	"repro/internal/machine"
	"repro/internal/sparse"
)

// roundTrip drives one payload type through both codec directions from a
// fuzzed byte image: truncate to a whole number of elements, decode,
// re-encode, and require the identical bytes back (bit-exact, so NaN bit
// patterns and padding bytes survive).
func roundTrip[T any](t *testing.T, raw []byte) {
	t.Helper()
	var zero T
	sz := int(unsafe.Sizeof(zero))
	b := raw[:len(raw)-len(raw)%sz]
	vals := machine.DecodeSlice[T](b)
	if len(vals) != len(b)/sz {
		t.Fatalf("%T: decoded %d elements from %d bytes (element size %d)", zero, len(vals), len(b), sz)
	}
	if got := machine.WireBytes[T](len(vals)); got != int64(len(b)) {
		t.Fatalf("%T: WireBytes(%d) = %d, want %d — modeled and actual wire size diverge", zero, len(vals), got, len(b))
	}
	enc := machine.EncodeSlice(vals)
	if enc == nil {
		t.Fatalf("%T: EncodeSlice returned nil; empty payloads must stay distinguishable from none", zero)
	}
	if !bytes.Equal(enc, b) {
		t.Fatalf("%T: encode(decode(b)) != b\n got %x\nwant %x", zero, enc, b)
	}
	// Second lap from the re-encoded form: the fixed point is immediate.
	if again := machine.EncodeSlice(machine.DecodeSlice[T](enc)); !bytes.Equal(again, b) {
		t.Fatalf("%T: second round trip diverged", zero)
	}
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	// Seed with real encoded payloads so the corpus starts on interesting
	// element boundaries: tropical infinities, NaN, negative zero, and a
	// pair entry with asymmetric sides.
	f.Add(append([]byte(nil), machine.EncodeSlice([]float64{0, math.Copysign(0, -1), 1.5, math.Inf(1), math.NaN()})...))
	f.Add(append([]byte(nil), machine.EncodeSlice([]algebra.MultPath{algebra.MultPathZero(), {W: 2.5, M: 3}})...))
	f.Add(append([]byte(nil), machine.EncodeSlice([]algebra.CentPath{algebra.CentPathZero(), {W: 1, P: 0.5, C: -7}})...))
	f.Add(append([]byte(nil), machine.EncodeSlice([]sparse.Entry[algebra.MultPathPair]{
		{I: 0, J: 1, V: algebra.MultPathPair{Old: algebra.MultPathZero(), New: algebra.MultPath{W: 1, M: 2}}},
	})...))
	f.Fuzz(func(t *testing.T, b []byte) {
		roundTrip[float64](t, b)
		roundTrip[int](t, b)
		roundTrip[int64](t, b)
		roundTrip[int32](t, b)
		roundTrip[algebra.MultPath](t, b)
		roundTrip[algebra.CentPath](t, b)
		roundTrip[algebra.WeightPair](t, b)
		roundTrip[algebra.MultPathPair](t, b)
		roundTrip[algebra.CentPathPair](t, b)
		roundTrip[sparse.Entry[float64]](t, b)
		roundTrip[sparse.Entry[algebra.MultPath]](t, b)
		roundTrip[sparse.Entry[algebra.CentPath]](t, b)
		roundTrip[sparse.Entry[algebra.WeightPair]](t, b)
		roundTrip[sparse.Entry[algebra.MultPathPair]](t, b)
		roundTrip[sparse.Entry[algebra.CentPathPair]](t, b)
	})
}

// FuzzCodecValues drives the value→bytes→value direction with arbitrary
// field contents (including NaN-boxed floats reconstructed from raw bits)
// and requires bit-exact reconstruction through every wrapper type.
func FuzzCodecValues(f *testing.F) {
	f.Add(int64(1), uint64(0x3FF8000000000000), int32(2), uint64(0x7FF8000000000001), int64(-7))
	f.Add(int64(0), uint64(0), int32(-1), uint64(0xFFF0000000000000), int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, i int64, wBits uint64, j int32, pBits uint64, c int64) {
		w := math.Float64frombits(wBits)
		p := math.Float64frombits(pBits)
		checkValues(t, []float64{w, p})
		checkValues(t, []int64{i, c})
		checkValues(t, []int32{j, int32(i)})
		checkValues(t, []algebra.MultPath{{W: w, M: p}, algebra.MultPathZero()})
		checkValues(t, []algebra.CentPath{{W: w, P: p, C: c}})
		checkValues(t, []algebra.WeightPair{{Old: w, New: p}})
		checkValues(t, []algebra.MultPathPair{{Old: algebra.MultPath{W: w, M: p}, New: algebra.MultPath{W: p, M: w}}})
		checkValues(t, []algebra.CentPathPair{{Old: algebra.CentPath{W: w, P: p, C: c}, New: algebra.CentPathZero()}})
		checkValues(t, []sparse.Entry[algebra.CentPathPair]{
			{I: j, J: int32(i), V: algebra.CentPathPair{Old: algebra.CentPath{W: w, P: p, C: c}}},
		})
	})
}

// checkValues round-trips a concrete slice and compares memory images
// (byte equality subsumes field equality and keeps NaN payloads honest).
func checkValues[T any](t *testing.T, s []T) {
	t.Helper()
	enc := append([]byte(nil), machine.EncodeSlice(s)...)
	dec := machine.DecodeSlice[T](enc)
	if len(dec) != len(s) {
		t.Fatalf("%T: round trip length %d, want %d", s, len(dec), len(s))
	}
	if !bytes.Equal(machine.EncodeSlice(dec), enc) {
		t.Fatalf("%T: round trip not bit-exact", s)
	}
}

// TestDecodeSliceRejectsTornFrame pins the misaligned-frame panic: a frame
// that is not a whole number of elements means a protocol bug upstream and
// must fail loudly, not truncate silently.
func TestDecodeSliceRejectsTornFrame(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeSlice accepted a torn frame")
		}
	}()
	machine.DecodeSlice[float64](make([]byte, 7))
}
