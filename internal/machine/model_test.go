package machine

import "testing"

func TestFactorizations(t *testing.T) {
	f3 := Factorizations3(12)
	seen := map[[3]int]bool{}
	for _, f := range f3 {
		if f[0]*f[1]*f[2] != 12 {
			t.Fatalf("bad factorization %v", f)
		}
		if seen[f] {
			t.Fatalf("duplicate factorization %v", f)
		}
		seen[f] = true
	}
	if !seen[[3]int{1, 3, 4}] || !seen[[3]int{12, 1, 1}] {
		t.Fatal("missing expected factorizations")
	}
	if got := len(Factorizations2(16)); got != 5 {
		t.Fatalf("Factorizations2(16) = %d, want 5", got)
	}
	if LCM(4, 6) != 12 || GCD(12, 18) != 6 {
		t.Fatal("lcm/gcd wrong")
	}
}

func TestCalibrateModel(t *testing.T) {
	if raceEnabled {
		t.Skip("flop-rate calibration bounds are meaningless under race instrumentation")
	}
	base := DefaultModel()
	tuned := CalibrateModel(base)
	if tuned.Alpha != base.Alpha || tuned.Beta != base.Beta {
		t.Fatal("calibration must not touch the interconnect constants")
	}
	if tuned.Gamma <= 0 || tuned.Gamma > 1e-6 {
		t.Fatalf("implausible fitted gamma %g", tuned.Gamma)
	}
	// The fit must be stable within an order of magnitude across runs.
	again := CalibrateModel(base)
	ratio := tuned.Gamma / again.Gamma
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("unstable calibration: %g vs %g", tuned.Gamma, again.Gamma)
	}
}

func TestCostTimeConversions(t *testing.T) {
	model := CostModel{Alpha: 1e-6, Beta: 1e-9, Gamma: 1e-9}
	c := Cost{Bytes: 1000, Msgs: 10, Flops: 500}
	wantComm := 10*1e-6 + 1000*1e-9
	if got := c.CommTime(model); got != wantComm {
		t.Fatalf("comm time %g want %g", got, wantComm)
	}
	if got := c.Time(model); got != wantComm+500*1e-9 {
		t.Fatalf("total time %g", got)
	}
	a := Cost{Bytes: 5, Msgs: 20, Flops: 1}
	mx := c.Max(a)
	if mx.Bytes != 1000 || mx.Msgs != 20 || mx.Flops != 500 {
		t.Fatalf("max wrong: %v", mx)
	}
	if c.Add(a).Bytes != 1005 {
		t.Fatal("add wrong")
	}
}
