package machine

import (
	"math/rand"
	"sort"
	"time"
)

// CalibrateModel is the analogue of CTF's automatic model tuner (§6.2):
// it executes a set of representative kernel benchmarks on the host and
// fits the γ (seconds per generalized operation) constant of the cost
// model, so that modeled times of compute-bound phases track this machine.
// The α and β interconnect constants are properties of the *modeled*
// network (Gemini-like by default) and are left untouched — on a real
// cluster they would come from link-level benchmarks instead.
//
// The fit runs three microkernels that dominate the library's compute
// time — sorted-merge accumulation, hash-free SPA row products, and
// comparison-heavy monoid folds — and takes the median per-op time.
func CalibrateModel(base CostModel) CostModel {
	samples := []float64{
		timePerOp(mergeKernel),
		timePerOp(productKernel),
		timePerOp(foldKernel),
	}
	sort.Float64s(samples)
	gamma := samples[len(samples)/2]
	if gamma <= 0 {
		return base
	}
	out := base
	out.Gamma = gamma
	return out
}

const tuneN = 1 << 16

// timePerOp runs the kernel enough times to exceed ~2ms and returns
// seconds per reported operation.
func timePerOp(kernel func(rng *rand.Rand) int64) float64 {
	rng := rand.New(rand.NewSource(99))
	var ops int64
	start := time.Now() //lint:allow detsource wall-clock calibration budget only; tuned constants come from op counts
	for time.Since(start) < 2*time.Millisecond {
		ops += kernel(rng)
	}
	elapsed := time.Since(start).Seconds()
	if ops == 0 {
		return 0
	}
	return elapsed / float64(ops)
}

// mergeKernel models EWise/MergeSorted: a two-pointer merge of sorted runs.
func mergeKernel(rng *rand.Rand) int64 {
	a := make([]int64, tuneN/2)
	b := make([]int64, tuneN/2)
	for i := range a {
		a[i] = int64(2 * i)
		b[i] = int64(2*i + rng.Intn(3))
	}
	out := make([]int64, 0, tuneN)
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		if a[x] <= b[y] {
			out = append(out, a[x])
			x++
		} else {
			out = append(out, b[y])
			y++
		}
	}
	return int64(len(out))
}

// productKernel models the inner loop of the generalized SpGEMM: load two
// operands, combine, accumulate into a buffer.
func productKernel(rng *rand.Rand) int64 {
	w := make([]float64, tuneN)
	acc := make([]float64, tuneN)
	for i := range w {
		w[i] = rng.Float64() + 0.5
	}
	for i := 0; i < tuneN; i++ {
		j := (i * 31) & (tuneN - 1)
		v := w[i] + w[j]
		//lint:allow floateq synthetic calibration kernel mimics the monoid's exact sentinel test
		if v < acc[j] || acc[j] == 0 {
			acc[j] = v
		}
	}
	return tuneN
}

// foldKernel models monoid folds with branchy comparisons (multpath ⊕).
func foldKernel(rng *rand.Rand) int64 {
	type mp struct {
		w float64
		m float64
	}
	xs := make([]mp, tuneN)
	for i := range xs {
		xs[i] = mp{w: float64(rng.Intn(16)), m: 1}
	}
	cur := mp{w: 1e300}
	for _, x := range xs {
		switch {
		case x.w < cur.w:
			cur = x
		//lint:allow floateq synthetic calibration kernel mimics the monoid's exact tie fold
		case x.w == cur.w:
			cur.m += x.m
		}
	}
	if cur.m < 0 {
		panic("unreachable")
	}
	return tuneN
}
