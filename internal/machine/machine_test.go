package machine

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		m := New(p)
		stats, err := m.Run(func(pr *Proc) {
			var data []int
			if pr.Rank() == 0 {
				data = []int{10, 20, 30}
			}
			got := Bcast(pr.World(), 0, data)
			if len(got) != 3 || got[0] != 10 || got[2] != 30 {
				panic(fmt.Sprintf("rank %d got %v", pr.Rank(), got))
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		wantBytes := int64(2 * 3 * 8)
		if p == 1 {
			wantBytes = 0 // self-communication is free
		}
		if stats.MaxCost.Bytes != wantBytes {
			t.Fatalf("p=%d: bcast charged %d bytes, want %d", p, stats.MaxCost.Bytes, wantBytes)
		}
		if p > 1 && stats.MaxCost.Msgs != 2*logMsgs(p) {
			t.Fatalf("p=%d: bcast charged %d msgs, want %d", p, stats.MaxCost.Msgs, 2*logMsgs(p))
		}
	}
}

func TestAllgatherAndGather(t *testing.T) {
	m := New(5)
	_, err := m.Run(func(pr *Proc) {
		data := []int{pr.Rank(), pr.Rank() * 10}
		all := Allgather(pr.World(), data)
		for i, part := range all {
			if part[0] != i || part[1] != i*10 {
				panic("allgather wrong content")
			}
		}
		root := Gather(pr.World(), 2, data)
		if pr.Rank() == 2 {
			if len(root) != 5 || root[4][1] != 40 {
				panic("gather wrong content at root")
			}
		} else if root != nil {
			panic("gather leaked data to non-root")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	m := New(6)
	_, err := m.Run(func(pr *Proc) {
		v := Allreduce(pr.World(), []float64{float64(pr.Rank()), 1}, func(a, b float64) float64 { return a + b })
		if v[0] != 15 || v[1] != 6 {
			panic(fmt.Sprintf("allreduce got %v", v))
		}
		s := AllreduceScalar(pr.World(), pr.Rank(), func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		if s != 5 {
			panic("allreduce max wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	m := New(3)
	_, err := m.Run(func(pr *Proc) {
		var parts [][]int
		if pr.Rank() == 1 {
			parts = [][]int{{0}, {1, 1}, {2, 2, 2}}
		}
		got := Scatter(pr.World(), 1, parts)
		if len(got) != pr.Rank()+1 {
			panic("scatter wrong size")
		}
		for _, v := range got {
			if v != pr.Rank() {
				panic("scatter wrong content")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	m := New(4)
	_, err := m.Run(func(pr *Proc) {
		parts := make([][]int, 4)
		for j := range parts {
			parts[j] = []int{pr.Rank()*10 + j}
		}
		got := Alltoall(pr.World(), parts)
		for i, part := range got {
			if len(part) != 1 || part[0] != i*10+pr.Rank() {
				panic(fmt.Sprintf("alltoall rank %d from %d: %v", pr.Rank(), i, part))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSlices(t *testing.T) {
	merge := func(a, b []int) []int {
		out := append(append([]int{}, a...), b...)
		sort.Ints(out)
		return out
	}
	m := New(4)
	_, err := m.Run(func(pr *Proc) {
		data := []int{pr.Rank(), pr.Rank() + 100}
		got := ReduceSlices(pr.World(), 0, data, merge)
		if pr.Rank() == 0 {
			want := []int{0, 1, 2, 3, 100, 101, 102, 103}
			if len(got) != len(want) {
				panic("reduceslices wrong length")
			}
			for i := range want {
				if got[i] != want[i] {
					panic("reduceslices wrong content")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitAndGrids(t *testing.T) {
	m := New(12)
	_, err := m.Run(func(pr *Proc) {
		g := NewGrid2(pr.World(), 3, 4)
		if g.Row.Size() != 4 || g.Col.Size() != 3 {
			panic("grid2 comm sizes wrong")
		}
		if g.Row.Rank() != g.MyC || g.Col.Rank() != g.MyR {
			panic("grid2 sub-ranks wrong")
		}
		// Row-wise sum of ranks must equal the row's world-rank sum.
		sum := AllreduceScalar(g.Row, pr.Rank(), func(a, b int) int { return a + b })
		want := 0
		for j := 0; j < 4; j++ {
			want += g.RankAt(g.MyR, j)
		}
		if sum != want {
			panic("row communicator grouped wrong members")
		}

		g3 := NewGrid3(pr.World(), 3, 2, 2)
		if g3.Layer.Size() != 4 || g3.Fiber.Size() != 3 {
			panic("grid3 comm sizes wrong")
		}
		lsum := AllreduceScalar(g3.Fiber, g3.MyLayer, func(a, b int) int { return a + b })
		if lsum != 0+1+2 {
			panic("fiber communicator grouped wrong members")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathMax(t *testing.T) {
	// One processor does extra flops; after a barrier everyone's critical
	// path must include them.
	m := New(4)
	stats, err := m.Run(func(pr *Proc) {
		if pr.Rank() == 2 {
			pr.AddFlops(1000)
		}
		Barrier(pr.World())
		if pr.Cost().Flops < 1000 {
			panic("critical path did not absorb the slow rank")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxCost.Flops < 1000 {
		t.Fatal("run stats lost flops")
	}
}

func TestPanicPropagation(t *testing.T) {
	m := New(4)
	_, err := m.Run(func(pr *Proc) {
		if pr.Rank() == 3 {
			panic("injected failure")
		}
		// Other ranks wait on a collective; the abort must free them.
		Barrier(pr.World())
	})
	if err == nil {
		t.Fatal("expected the injected panic to surface")
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	m := New(2)
	m.Timeout = 50 * time.Millisecond
	_, err := m.Run(func(pr *Proc) {
		if pr.Rank() == 0 {
			Barrier(pr.World()) // rank 1 never shows up: mismatched collective
		}
	})
	if err == nil {
		t.Fatal("expected watchdog to flag the deadlock")
	}
	var ab abortError
	if !errors.As(err, &ab) && err == nil {
		t.Fatal("unexpected error type")
	}
}

func TestFactorizations(t *testing.T) {
	f3 := Factorizations3(12)
	seen := map[[3]int]bool{}
	for _, f := range f3 {
		if f[0]*f[1]*f[2] != 12 {
			t.Fatalf("bad factorization %v", f)
		}
		if seen[f] {
			t.Fatalf("duplicate factorization %v", f)
		}
		seen[f] = true
	}
	if !seen[[3]int{1, 3, 4}] || !seen[[3]int{12, 1, 1}] {
		t.Fatal("missing expected factorizations")
	}
	if got := len(Factorizations2(16)); got != 5 {
		t.Fatalf("Factorizations2(16) = %d, want 5", got)
	}
	if LCM(4, 6) != 12 || GCD(12, 18) != 6 {
		t.Fatal("lcm/gcd wrong")
	}
}

func TestSingleProcDegenerate(t *testing.T) {
	m := New(1)
	_, err := m.Run(func(pr *Proc) {
		if got := Bcast(pr.World(), 0, []int{7}); got[0] != 7 {
			panic("p=1 bcast")
		}
		if got := AllgatherConcat(pr.World(), []int{1, 2}); len(got) != 2 {
			panic("p=1 allgather")
		}
		if got := AlltoallConcat(pr.World(), [][]int{{9}}); got[0] != 9 {
			panic("p=1 alltoall")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateModel(t *testing.T) {
	if raceEnabled {
		t.Skip("flop-rate calibration bounds are meaningless under race instrumentation")
	}
	base := DefaultModel()
	tuned := CalibrateModel(base)
	if tuned.Alpha != base.Alpha || tuned.Beta != base.Beta {
		t.Fatal("calibration must not touch the interconnect constants")
	}
	if tuned.Gamma <= 0 || tuned.Gamma > 1e-6 {
		t.Fatalf("implausible fitted gamma %g", tuned.Gamma)
	}
	// The fit must be stable within an order of magnitude across runs.
	again := CalibrateModel(base)
	ratio := tuned.Gamma / again.Gamma
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("unstable calibration: %g vs %g", tuned.Gamma, again.Gamma)
	}
}

func TestSendRecvRing(t *testing.T) {
	m := New(5)
	_, err := m.Run(func(pr *Proc) {
		right := (pr.Rank() + 1) % 5
		left := (pr.Rank() + 4) % 5
		got := SendRecv(pr.World(), right, left, []int{pr.Rank()})
		if len(got) != 1 || got[0] != left {
			panic("ring shift delivered wrong data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCostTimeConversions(t *testing.T) {
	model := CostModel{Alpha: 1e-6, Beta: 1e-9, Gamma: 1e-9}
	c := Cost{Bytes: 1000, Msgs: 10, Flops: 500}
	wantComm := 10*1e-6 + 1000*1e-9
	if got := c.CommTime(model); got != wantComm {
		t.Fatalf("comm time %g want %g", got, wantComm)
	}
	if got := c.Time(model); got != wantComm+500*1e-9 {
		t.Fatalf("total time %g", got)
	}
	a := Cost{Bytes: 5, Msgs: 20, Flops: 1}
	mx := c.Max(a)
	if mx.Bytes != 1000 || mx.Msgs != 20 || mx.Flops != 500 {
		t.Fatalf("max wrong: %v", mx)
	}
	if c.Add(a).Bytes != 1005 {
		t.Fatal("add wrong")
	}
}

func TestRunPhaseAttribution(t *testing.T) {
	m := New(4)
	stats, err := m.Run(func(pr *Proc) {
		pr.Phase("stage")
		Bcast(pr.World(), 0, []int{1, 2, 3})
		pr.AddFlops(100)
		pr.Phase("sweep")
		Allreduce(pr.World(), []float64{1, 2}, func(a, b float64) float64 { return a + b })
		pr.Phase("stage") // re-entering accumulates into the same bucket
		pr.AddFlops(50)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Phases) != 2 {
		t.Fatalf("want 2 phases, got %+v", stats.Phases)
	}
	if stats.Phases[0].Name != "stage" || stats.Phases[1].Name != "sweep" {
		t.Fatalf("phase order wrong: %q, %q", stats.Phases[0].Name, stats.Phases[1].Name)
	}
	// Per processor, phase costs must sum exactly to the run total.
	for r, total := range stats.PerProc {
		var sum Cost
		for _, ph := range stats.Phases {
			sum = sum.Add(ph.PerProc[r])
		}
		if sum != total {
			t.Fatalf("rank %d: phase sum %v != total %v", r, sum, total)
		}
	}
	// This workload is symmetric, so the phase maxima also sum to the run
	// maximum (the same processor is critical in every phase).
	var sum Cost
	for _, ph := range stats.Phases {
		sum = sum.Add(ph.MaxCost)
	}
	if sum != stats.MaxCost {
		t.Fatalf("phase max sum %v != run max %v", sum, stats.MaxCost)
	}
	if stats.Phases[0].PerProc[0].Flops != 150 {
		t.Fatalf("re-entered phase must accumulate: got %d flops", stats.Phases[0].PerProc[0].Flops)
	}
	if stats.Phases[0].MaxCost.Msgs == 0 || stats.Phases[1].MaxCost.Msgs == 0 {
		t.Fatal("both phases moved data; msgs must be attributed to each")
	}
}

func TestRunPhaseWallClock(t *testing.T) {
	m := New(2)
	stats, err := m.Run(func(pr *Proc) {
		pr.Phase("stage")
		time.Sleep(2 * time.Millisecond)
		pr.Phase("sweep")
		time.Sleep(1 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Phases) != 2 {
		t.Fatalf("want 2 phases, got %+v", stats.Phases)
	}
	for _, ph := range stats.Phases {
		if ph.Wall <= 0 {
			t.Errorf("phase %q wall = %v, want > 0", ph.Name, ph.Wall)
		}
		if ph.Wall > stats.Wall {
			t.Errorf("phase %q wall %v exceeds region wall %v", ph.Name, ph.Wall, stats.Wall)
		}
	}
}

func TestRunWithoutPhasesReportsNone(t *testing.T) {
	m := New(2)
	stats, err := m.Run(func(pr *Proc) {
		Barrier(pr.World())
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Phases != nil {
		t.Fatalf("no Phase calls must mean no breakdown, got %+v", stats.Phases)
	}
}

func TestRunPhasePrelude(t *testing.T) {
	// Cost accrued before the first Phase call lands in the "" bucket.
	m := New(2)
	stats, err := m.Run(func(pr *Proc) {
		Barrier(pr.World())
		pr.Phase("late")
		pr.AddFlops(7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Phases) != 2 || stats.Phases[0].Name != "" || stats.Phases[1].Name != "late" {
		t.Fatalf("want [\"\", late], got %+v", stats.Phases)
	}
	if stats.Phases[1].MaxCost.Flops != 7 {
		t.Fatalf("late phase flops = %d, want 7", stats.Phases[1].MaxCost.Flops)
	}
}
