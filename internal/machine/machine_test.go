// Conformance suite for machine backends: every collective, grid, phase,
// and failure-handling test runs as a shared table against each
// registered Transport implementation, and the modeled costs must be
// identical across backends (the cost model is a property of the
// collectives layer, not of the wire). Backends register themselves in
// conformanceBackends; sim is always present, tcpnet joins from
// tcpnet_backend_test.go via loopback sockets.
package machine_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/machine/sim"
)

type backendCase struct {
	name string
	make func(t testing.TB, p int) machine.Transport
}

var (
	backendsMu          sync.Mutex
	conformanceBackends = []backendCase{
		{name: "sim", make: func(_ testing.TB, p int) machine.Transport { return sim.New(p) }},
	}
)

func registerBackend(b backendCase) {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	conformanceBackends = append(conformanceBackends, b)
}

func listBackends() []backendCase {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	return append([]backendCase(nil), conformanceBackends...)
}

// forEachBackend runs the region on every registered backend and checks
// that the modeled run statistics agree bit-for-bit across them.
func forEachBackend(t *testing.T, p int, region func(pr *machine.Proc), check func(t *testing.T, stats machine.RunStats)) {
	t.Helper()
	var ref *machine.RunStats
	var refName string
	for _, b := range listBackends() {
		t.Run(fmt.Sprintf("%s/p=%d", b.name, p), func(t *testing.T) {
			tr := b.make(t, p)
			stats, err := tr.Run(region)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if check != nil {
				check(t, stats)
			}
			if ref == nil {
				ref, refName = &stats, b.name
				return
			}
			assertStatsEqual(t, refName, *ref, b.name, stats)
		})
	}
}

// assertStatsEqual pins the cross-backend invariant: modeled cost, its
// per-proc decomposition, and the phase breakdown must not depend on the
// backend. Wall-clock fields are backend-specific and excluded.
func assertStatsEqual(t *testing.T, an string, a machine.RunStats, bn string, b machine.RunStats) {
	t.Helper()
	if a.MaxCost != b.MaxCost {
		t.Fatalf("MaxCost differs: %s=%v %s=%v", an, a.MaxCost, bn, b.MaxCost)
	}
	if a.ModelSec != b.ModelSec || a.CommSec != b.CommSec {
		t.Fatalf("modeled seconds differ: %s=(%g,%g) %s=(%g,%g)", an, a.ModelSec, a.CommSec, bn, b.ModelSec, b.CommSec)
	}
	if len(a.PerProc) != len(b.PerProc) {
		t.Fatalf("PerProc length differs: %d vs %d", len(a.PerProc), len(b.PerProc))
	}
	for r := range a.PerProc {
		if a.PerProc[r] != b.PerProc[r] {
			t.Fatalf("rank %d cost differs: %s=%v %s=%v", r, an, a.PerProc[r], bn, b.PerProc[r])
		}
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase count differs: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa.Name != pb.Name || pa.MaxCost != pb.MaxCost {
			t.Fatalf("phase %d differs: %s={%q %v} %s={%q %v}", i, an, pa.Name, pa.MaxCost, bn, pb.Name, pb.MaxCost)
		}
		for r := range pa.PerProc {
			if pa.PerProc[r] != pb.PerProc[r] {
				t.Fatalf("phase %q rank %d cost differs", pa.Name, r)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		forEachBackend(t, p, func(pr *machine.Proc) {
			var data []int
			if pr.Rank() == 0 {
				data = []int{10, 20, 30}
			}
			got := machine.Bcast(pr.World(), 0, data)
			if len(got) != 3 || got[0] != 10 || got[2] != 30 {
				panic(fmt.Sprintf("rank %d got %v", pr.Rank(), got))
			}
		}, func(t *testing.T, stats machine.RunStats) {
			wantBytes := int64(2 * 3 * 8)
			if p == 1 {
				wantBytes = 0 // self-communication is free
			}
			if stats.MaxCost.Bytes != wantBytes {
				t.Fatalf("p=%d: bcast charged %d bytes, want %d", p, stats.MaxCost.Bytes, wantBytes)
			}
			if p > 1 && stats.MaxCost.Msgs != 2*machine.LogMsgs(p) {
				t.Fatalf("p=%d: bcast charged %d msgs, want %d", p, stats.MaxCost.Msgs, 2*machine.LogMsgs(p))
			}
		})
	}
}

func TestAllgatherAndGather(t *testing.T) {
	forEachBackend(t, 5, func(pr *machine.Proc) {
		data := []int{pr.Rank(), pr.Rank() * 10}
		all := machine.Allgather(pr.World(), data)
		for i, part := range all {
			if part[0] != i || part[1] != i*10 {
				panic("allgather wrong content")
			}
		}
		root := machine.Gather(pr.World(), 2, data)
		if pr.Rank() == 2 {
			if len(root) != 5 || root[4][1] != 40 {
				panic("gather wrong content at root")
			}
		} else if root != nil {
			panic("gather leaked data to non-root")
		}
	}, nil)
}

func TestAllreduce(t *testing.T) {
	forEachBackend(t, 6, func(pr *machine.Proc) {
		v := machine.Allreduce(pr.World(), []float64{float64(pr.Rank()), 1}, func(a, b float64) float64 { return a + b })
		if v[0] != 15 || v[1] != 6 {
			panic(fmt.Sprintf("allreduce got %v", v))
		}
		s := machine.AllreduceScalar(pr.World(), pr.Rank(), func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		if s != 5 {
			panic("allreduce max wrong")
		}
	}, nil)
}

func TestScatter(t *testing.T) {
	forEachBackend(t, 3, func(pr *machine.Proc) {
		var parts [][]int
		if pr.Rank() == 1 {
			parts = [][]int{{0}, {1, 1}, {2, 2, 2}}
		}
		got := machine.Scatter(pr.World(), 1, parts)
		if len(got) != pr.Rank()+1 {
			panic("scatter wrong size")
		}
		for _, v := range got {
			if v != pr.Rank() {
				panic("scatter wrong content")
			}
		}
	}, nil)
}

func TestAlltoall(t *testing.T) {
	forEachBackend(t, 4, func(pr *machine.Proc) {
		parts := make([][]int, 4)
		for j := range parts {
			parts[j] = []int{pr.Rank()*10 + j}
		}
		got := machine.Alltoall(pr.World(), parts)
		for i, part := range got {
			if len(part) != 1 || part[0] != i*10+pr.Rank() {
				panic(fmt.Sprintf("alltoall rank %d from %d: %v", pr.Rank(), i, part))
			}
		}
	}, nil)
}

func TestReduceSlices(t *testing.T) {
	merge := func(a, b []int) []int {
		out := append(append([]int{}, a...), b...)
		sort.Ints(out)
		return out
	}
	forEachBackend(t, 4, func(pr *machine.Proc) {
		data := []int{pr.Rank(), pr.Rank() + 100}
		got := machine.ReduceSlices(pr.World(), 0, data, merge)
		if pr.Rank() == 0 {
			want := []int{0, 1, 2, 3, 100, 101, 102, 103}
			if len(got) != len(want) {
				panic("reduceslices wrong length")
			}
			for i := range want {
				if got[i] != want[i] {
					panic("reduceslices wrong content")
				}
			}
		}
	}, nil)
}

func TestSplitAndGrids(t *testing.T) {
	forEachBackend(t, 12, func(pr *machine.Proc) {
		g := machine.NewGrid2(pr.World(), 3, 4)
		if g.Row.Size() != 4 || g.Col.Size() != 3 {
			panic("grid2 comm sizes wrong")
		}
		if g.Row.Rank() != g.MyC || g.Col.Rank() != g.MyR {
			panic("grid2 sub-ranks wrong")
		}
		// Row-wise sum of ranks must equal the row's world-rank sum.
		sum := machine.AllreduceScalar(g.Row, pr.Rank(), func(a, b int) int { return a + b })
		want := 0
		for j := 0; j < 4; j++ {
			want += g.RankAt(g.MyR, j)
		}
		if sum != want {
			panic("row communicator grouped wrong members")
		}

		g3 := machine.NewGrid3(pr.World(), 3, 2, 2)
		if g3.Layer.Size() != 4 || g3.Fiber.Size() != 3 {
			panic("grid3 comm sizes wrong")
		}
		lsum := machine.AllreduceScalar(g3.Fiber, g3.MyLayer, func(a, b int) int { return a + b })
		if lsum != 0+1+2 {
			panic("fiber communicator grouped wrong members")
		}
	}, nil)
}

func TestSendRecvRing(t *testing.T) {
	forEachBackend(t, 5, func(pr *machine.Proc) {
		right := (pr.Rank() + 1) % 5
		left := (pr.Rank() + 4) % 5
		got := machine.SendRecv(pr.World(), right, left, []int{pr.Rank()})
		if len(got) != 1 || got[0] != left {
			panic("ring shift delivered wrong data")
		}
	}, nil)
}

func TestCriticalPathMax(t *testing.T) {
	// One processor does extra flops; after a barrier everyone's critical
	// path must include them.
	forEachBackend(t, 4, func(pr *machine.Proc) {
		if pr.Rank() == 2 {
			pr.AddFlops(1000)
		}
		machine.Barrier(pr.World())
		if pr.Cost().Flops < 1000 {
			panic("critical path did not absorb the slow rank")
		}
	}, func(t *testing.T, stats machine.RunStats) {
		if stats.MaxCost.Flops < 1000 {
			t.Fatal("run stats lost flops")
		}
	})
}

func TestSingleProcDegenerate(t *testing.T) {
	forEachBackend(t, 1, func(pr *machine.Proc) {
		if got := machine.Bcast(pr.World(), 0, []int{7}); got[0] != 7 {
			panic("p=1 bcast")
		}
		if got := machine.AllgatherConcat(pr.World(), []int{1, 2}); len(got) != 2 {
			panic("p=1 allgather")
		}
		if got := machine.AlltoallConcat(pr.World(), [][]int{{9}}); got[0] != 9 {
			panic("p=1 alltoall")
		}
	}, nil)
}

func TestRunPhaseAttribution(t *testing.T) {
	forEachBackend(t, 4, func(pr *machine.Proc) {
		pr.Phase("stage")
		machine.Bcast(pr.World(), 0, []int{1, 2, 3})
		pr.AddFlops(100)
		pr.Phase("sweep")
		machine.Allreduce(pr.World(), []float64{1, 2}, func(a, b float64) float64 { return a + b })
		pr.Phase("stage") // re-entering accumulates into the same bucket
		pr.AddFlops(50)
	}, func(t *testing.T, stats machine.RunStats) {
		if len(stats.Phases) != 2 {
			t.Fatalf("want 2 phases, got %+v", stats.Phases)
		}
		if stats.Phases[0].Name != "stage" || stats.Phases[1].Name != "sweep" {
			t.Fatalf("phase order wrong: %q, %q", stats.Phases[0].Name, stats.Phases[1].Name)
		}
		// Per processor, phase costs must sum exactly to the run total.
		for r, total := range stats.PerProc {
			var sum machine.Cost
			for _, ph := range stats.Phases {
				sum = sum.Add(ph.PerProc[r])
			}
			if sum != total {
				t.Fatalf("rank %d: phase sum %v != total %v", r, sum, total)
			}
		}
		// This workload is symmetric, so the phase maxima also sum to the run
		// maximum (the same processor is critical in every phase).
		var sum machine.Cost
		for _, ph := range stats.Phases {
			sum = sum.Add(ph.MaxCost)
		}
		if sum != stats.MaxCost {
			t.Fatalf("phase max sum %v != run max %v", sum, stats.MaxCost)
		}
		if stats.Phases[0].PerProc[0].Flops != 150 {
			t.Fatalf("re-entered phase must accumulate: got %d flops", stats.Phases[0].PerProc[0].Flops)
		}
		if stats.Phases[0].MaxCost.Msgs == 0 || stats.Phases[1].MaxCost.Msgs == 0 {
			t.Fatal("both phases moved data; msgs must be attributed to each")
		}
	})
}

func TestRunPhaseWallClock(t *testing.T) {
	forEachBackend(t, 2, func(pr *machine.Proc) {
		pr.Phase("stage")
		time.Sleep(2 * time.Millisecond)
		pr.Phase("sweep")
		time.Sleep(1 * time.Millisecond)
	}, func(t *testing.T, stats machine.RunStats) {
		if len(stats.Phases) != 2 {
			t.Fatalf("want 2 phases, got %+v", stats.Phases)
		}
		for _, ph := range stats.Phases {
			if ph.Wall <= 0 {
				t.Errorf("phase %q wall = %v, want > 0", ph.Name, ph.Wall)
			}
			if ph.Wall > stats.Wall {
				t.Errorf("phase %q wall %v exceeds region wall %v", ph.Name, ph.Wall, stats.Wall)
			}
		}
	})
}

func TestRunWithoutPhasesReportsNone(t *testing.T) {
	forEachBackend(t, 2, func(pr *machine.Proc) {
		machine.Barrier(pr.World())
	}, func(t *testing.T, stats machine.RunStats) {
		if stats.Phases != nil {
			t.Fatalf("no Phase calls must mean no breakdown, got %+v", stats.Phases)
		}
	})
}

func TestRunPhasePrelude(t *testing.T) {
	// Cost accrued before the first Phase call lands in the "" bucket.
	forEachBackend(t, 2, func(pr *machine.Proc) {
		machine.Barrier(pr.World())
		pr.Phase("late")
		pr.AddFlops(7)
	}, func(t *testing.T, stats machine.RunStats) {
		if len(stats.Phases) != 2 || stats.Phases[0].Name != "" || stats.Phases[1].Name != "late" {
			t.Fatalf("want [\"\", late], got %+v", stats.Phases)
		}
		if stats.Phases[1].MaxCost.Flops != 7 {
			t.Fatalf("late phase flops = %d, want 7", stats.Phases[1].MaxCost.Flops)
		}
	})
}

// TestPanicPropagation and TestDeadlockWatchdog exercise failure paths,
// which every backend must surface as a run error on every rank.
func TestPanicPropagation(t *testing.T) {
	for _, b := range listBackends() {
		t.Run(b.name, func(t *testing.T) {
			tr := b.make(t, 4)
			_, err := tr.Run(func(pr *machine.Proc) {
				if pr.Rank() == 3 {
					panic("injected failure")
				}
				// Other ranks wait on a collective; the abort must free them.
				machine.Barrier(pr.World())
			})
			if err == nil {
				t.Fatal("expected the injected panic to surface")
			}
		})
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	for _, b := range listBackends() {
		t.Run(b.name, func(t *testing.T) {
			tr := b.make(t, 2)
			tr.SetTimeout(50 * time.Millisecond)
			_, err := tr.Run(func(pr *machine.Proc) {
				if pr.Rank() == 0 {
					machine.Barrier(pr.World()) // rank 1 never shows up: mismatched collective
				}
			})
			if err == nil {
				t.Fatal("expected watchdog to flag the deadlock")
			}
		})
	}
}
