package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a SNAP-like text format:
//
//	# name <name>
//	# nodes <n> edges <m> directed <bool> weighted <bool>
//	u v [w]
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n", g.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d directed %v weighted %v\n", g.N, len(g.Edges), g.Directed, g.Weighted); err != nil {
		return err
	}
	for _, e := range g.Edges {
		var err error
		if g.Weighted {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
		if err != nil {
			return err // first write error; don't keep formatting edges
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Header lines are
// optional: without them the graph is assumed undirected/unweighted with n
// inferred from the maximum vertex id.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := &Graph{Name: "edgelist"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	maxID := int32(-1)
	declaredN := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			for i := 0; i+1 < len(fields); i++ {
				switch fields[i] {
				case "name":
					g.Name = fields[i+1]
				case "nodes":
					n, err := strconv.Atoi(fields[i+1])
					if err != nil {
						return nil, fmt.Errorf("graph: bad nodes header: %v", err)
					}
					declaredN = n
				case "directed":
					g.Directed = fields[i+1] == "true"
				case "weighted":
					g.Weighted = fields[i+1] == "true"
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q: %v", fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q: %v", fields[1], err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight %q: %v", fields[2], err)
			}
			g.Weighted = true
		}
		e := Edge{U: int32(u), V: int32(v), W: w}
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
		g.Edges = append(g.Edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.N = int(maxID) + 1
	if declaredN > g.N {
		g.N = declaredN
	}
	g.Edges = dedupeEdges(g.Edges, g.Directed)
	return g, g.Validate()
}

// LoadFile reads a graph from an edge-list file.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveFile writes a graph to an edge-list file.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
