// Package graph provides the graph representation, synthetic generators
// (R-MAT, Erdős–Rényi uniform, and structured families), scaled-down
// stand-ins for the SNAP graphs of the paper's Table 2, edge-list I/O, and
// the graph statistics the paper reports (diameter and 90-percentile
// effective diameter).
package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/algebra"
	"repro/internal/sparse"
)

// Edge is one edge with endpoints U → V and weight W. For undirected graphs
// each edge is stored once with U ≤ V.
type Edge struct {
	U, V int32
	W    float64
}

// Graph is a simple graph (no self-loops, no multi-edges). Unweighted graphs
// carry weight 1 on every edge.
type Graph struct {
	Name     string
	N        int
	Directed bool
	Weighted bool
	Edges    []Edge
}

// M returns the number of edges (each undirected edge counted once).
func (g *Graph) M() int { return len(g.Edges) }

// AvgDegree returns m/n for directed graphs and 2m/n for undirected ones.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	m := float64(len(g.Edges))
	if !g.Directed {
		m *= 2
	}
	return m / float64(g.N)
}

// Validate checks structural invariants: coordinates in range, strictly
// positive weights, no self-loops, canonical undirected orientation.
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e.U < 0 || int(e.U) >= g.N || e.V < 0 || int(e.V) >= g.N {
			return fmt.Errorf("graph %q: edge (%d,%d) outside n=%d", g.Name, e.U, e.V, g.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph %q: self-loop at %d", g.Name, e.U)
		}
		if !(e.W > 0) || math.IsInf(e.W, 1) {
			return fmt.Errorf("graph %q: edge (%d,%d) has nonpositive or infinite weight %v", g.Name, e.U, e.V, e.W)
		}
		if !g.Directed && e.U > e.V {
			return fmt.Errorf("graph %q: undirected edge (%d,%d) not canonically oriented", g.Name, e.U, e.V)
		}
	}
	return nil
}

// Adjacency builds the sparse adjacency matrix A with A(i,j) = w(i,j) on the
// tropical structure (absent entries represent ∞). Undirected edges appear
// in both orientations.
func (g *Graph) Adjacency() *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](g.N, g.N)
	for _, e := range g.Edges {
		coo.Append(e.U, e.V, e.W)
		if !g.Directed {
			coo.Append(e.V, e.U, e.W)
		}
	}
	return sparse.FromCOO(coo, algebra.TropicalMonoid())
}

// AdjacencyNNZ returns the number of stored adjacency nonzeros (2m for
// undirected graphs), the per-traversal edge count used in TEPS rates.
func (g *Graph) AdjacencyNNZ() int {
	if g.Directed {
		return len(g.Edges)
	}
	return 2 * len(g.Edges)
}

// OutAdjacencyLists returns out-neighbour lists (index, weight) for
// traversal-based baselines.
func (g *Graph) OutAdjacencyLists() ([][]int32, [][]float64) {
	idx := make([][]int32, g.N)
	wts := make([][]float64, g.N)
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		if !g.Directed {
			deg[e.V]++
		}
	}
	for i := range idx {
		idx[i] = make([]int32, 0, deg[i])
		wts[i] = make([]float64, 0, deg[i])
	}
	for _, e := range g.Edges {
		idx[e.U] = append(idx[e.U], e.V)
		wts[e.U] = append(wts[e.U], e.W)
		if !g.Directed {
			idx[e.V] = append(idx[e.V], e.U)
			wts[e.V] = append(wts[e.V], e.W)
		}
	}
	return idx, wts
}

// InAdjacencyLists returns in-neighbour lists (index, weight): for vertex v,
// the vertices u with an edge u → v.
func (g *Graph) InAdjacencyLists() ([][]int32, [][]float64) {
	if !g.Directed {
		return g.OutAdjacencyLists()
	}
	idx := make([][]int32, g.N)
	wts := make([][]float64, g.N)
	for _, e := range g.Edges {
		idx[e.V] = append(idx[e.V], e.U)
		wts[e.V] = append(wts[e.V], e.W)
	}
	return idx, wts
}

// dedupeEdges canonicalizes an edge multiset: undirected edges are oriented
// U ≤ V, self-loops dropped, duplicates merged keeping the minimum weight.
func dedupeEdges(edges []Edge, directed bool) []Edge {
	out := edges[:0]
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if !directed && e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		if out[a].V != out[b].V {
			return out[a].V < out[b].V
		}
		return out[a].W < out[b].W
	})
	ded := out[:0]
	for i, e := range out {
		if i > 0 && e.U == ded[len(ded)-1].U && e.V == ded[len(ded)-1].V {
			continue
		}
		ded = append(ded, e)
	}
	return ded
}

// RemoveDisconnected drops vertices with no incident edges and relabels the
// rest contiguously, as the paper's preprocessing does.
func (g *Graph) RemoveDisconnected() {
	seen := make([]bool, g.N)
	for _, e := range g.Edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	remap := make([]int32, g.N)
	next := int32(0)
	for i, s := range seen {
		if s {
			remap[i] = next
			next++
		} else {
			remap[i] = -1
		}
	}
	for i := range g.Edges {
		g.Edges[i].U = remap[g.Edges[i].U]
		g.Edges[i].V = remap[g.Edges[i].V]
	}
	g.N = int(next)
}

// Permute relabels vertices by the permutation perm (new = perm[old]),
// re-canonicalizing edge orientation. Randomized relabeling is what makes
// the oblivious block distributions of §5.2 load-balanced.
func (g *Graph) Permute(perm []int32) {
	for i := range g.Edges {
		g.Edges[i].U = perm[g.Edges[i].U]
		g.Edges[i].V = perm[g.Edges[i].V]
		if !g.Directed && g.Edges[i].U > g.Edges[i].V {
			g.Edges[i].U, g.Edges[i].V = g.Edges[i].V, g.Edges[i].U
		}
	}
	sort.Slice(g.Edges, func(a, b int) bool {
		if g.Edges[a].U != g.Edges[b].U {
			return g.Edges[a].U < g.Edges[b].U
		}
		return g.Edges[a].V < g.Edges[b].V
	})
}

// RandomPermute applies a seeded random relabeling.
func (g *Graph) RandomPermute(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]int32, g.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(g.N, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	g.Permute(perm)
}

// AddUniformWeights assigns integer weights drawn uniformly from [lo, hi]
// (the paper's weighted R-MAT setup uses [1, 100]).
func (g *Graph) AddUniformWeights(lo, hi int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Edges {
		g.Edges[i].W = float64(lo + rng.Intn(hi-lo+1))
	}
	g.Weighted = true
}

// RMATOptions parameterizes the recursive-matrix generator of Chakrabarti
// et al., the power-law family used in the paper's Figure 1(c).
type RMATOptions struct {
	Scale        int     // n = 2^Scale before disconnected-vertex removal
	EdgeFactor   int     // E: average degree target, m = E * n sampled edges
	A, B, C      float64 // quadrant probabilities (D = 1-A-B-C)
	Directed     bool
	Seed         int64
	KeepIsolated bool // if false, disconnected vertices are removed (paper's preprocessing)
}

// DefaultRMAT returns the Graph500 parameterization (0.57, 0.19, 0.19).
func DefaultRMAT(scale, edgeFactor int, seed int64) RMATOptions {
	return RMATOptions{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, Seed: seed}
}

// RMAT generates an R-MAT graph.
func RMAT(opt RMATOptions) *Graph {
	n := 1 << opt.Scale
	rng := rand.New(rand.NewSource(opt.Seed))
	m := n * opt.EdgeFactor
	edges := make([]Edge, 0, m)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < opt.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < opt.A:
				// upper-left: no bits set
			case r < opt.A+opt.B:
				v |= 1 << bit
			case r < opt.A+opt.B+opt.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, Edge{U: int32(u), V: int32(v), W: 1})
	}
	g := &Graph{
		Name:     fmt.Sprintf("rmat-s%d-e%d", opt.Scale, opt.EdgeFactor),
		N:        n,
		Directed: opt.Directed,
		Edges:    dedupeEdges(edges, opt.Directed),
	}
	if !opt.KeepIsolated {
		g.RemoveDisconnected()
	}
	return g
}

// Uniform generates an Erdős–Rényi style G(n, m) uniform random graph with
// exactly m distinct edges (the paper's weak-scaling workload).
func Uniform(n, m int, directed bool, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	maxM := int64(n) * int64(n-1)
	if !directed {
		maxM /= 2
	}
	if int64(m) > maxM {
		m = int(maxM)
	}
	seen := make(map[int64]struct{}, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if !directed && u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{U: u, V: v, W: 1})
	}
	g := &Graph{
		Name:     fmt.Sprintf("uniform-n%d-m%d", n, m),
		N:        n,
		Directed: directed,
		Edges:    dedupeEdges(edges, directed),
	}
	return g
}

// Ring generates an undirected cycle, a high-diameter stress case.
func Ring(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("ring-%d", n), N: n}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		u, v := int32(i), int32(j)
		if u > v {
			u, v = v, u
		}
		g.Edges = append(g.Edges, Edge{U: u, V: v, W: 1})
	}
	g.Edges = dedupeEdges(g.Edges, false)
	return g
}

// Path generates an undirected path graph.
func Path(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("path-%d", n), N: n}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, Edge{U: int32(i), V: int32(i + 1), W: 1})
	}
	return g
}

// Star generates a star with the hub at vertex 0.
func Star(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("star-%d", n), N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, Edge{U: 0, V: int32(i), W: 1})
	}
	return g
}

// Grid2D generates an r×c undirected mesh, optionally with uniform random
// integer weights in [1, maxW] (a road-network-like workload).
func Grid2D(r, c int, maxW int, seed int64) *Graph {
	g := &Graph{Name: fmt.Sprintf("grid-%dx%d", r, c), N: r * c, Weighted: maxW > 1}
	rng := rand.New(rand.NewSource(seed))
	w := func() float64 {
		if maxW <= 1 {
			return 1
		}
		return float64(1 + rng.Intn(maxW))
	}
	at := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.Edges = append(g.Edges, Edge{U: at(i, j), V: at(i, j+1), W: w()})
			}
			if i+1 < r {
				g.Edges = append(g.Edges, Edge{U: at(i, j), V: at(i+1, j), W: w()})
			}
		}
	}
	return g
}

// CompleteBinaryTree generates a rooted complete binary tree as an
// undirected graph; its BC scores have a closed form used by invariant
// tests.
func CompleteBinaryTree(levels int) *Graph {
	n := (1 << levels) - 1
	g := &Graph{Name: fmt.Sprintf("btree-%d", levels), N: n}
	for i := 1; i < n; i++ {
		p := int32((i - 1) / 2)
		g.Edges = append(g.Edges, Edge{U: p, V: int32(i), W: 1})
	}
	return g
}

// LayeredDAG generates a directed graph of `layers` layers of `width`
// vertices with forward edges chosen randomly, plus a chain through layer
// heads guaranteeing a large diameter — a citation-network-like profile.
func LayeredDAG(layers, width, outDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := layers * width
	g := &Graph{Name: fmt.Sprintf("layered-%dx%d", layers, width), N: n, Directed: true}
	at := func(l, i int) int32 { return int32(l*width + i) }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			g.Edges = append(g.Edges, Edge{U: at(l, i), V: at(l+1, rng.Intn(width)), W: 1})
			for d := 1; d < outDeg; d++ {
				tgt := l + 1 + rng.Intn(min(3, layers-l-1))
				g.Edges = append(g.Edges, Edge{U: at(l, i), V: at(tgt, rng.Intn(width)), W: 1})
			}
		}
	}
	g.Edges = dedupeEdges(g.Edges, true)
	return g
}
