package graph

import (
	"math/rand"
	"testing"
)

// Property tests pinning MutationLog.Compact as the coalescing oracle of
// the server's group-commit ingestion path: for any valid interleaved
// add/remove/set_weight history, replaying the compacted log on the graph
// the history started from must yield the same topology as applying the
// history one mutation at a time.
//
// The Weighted flag is deliberately excluded from the comparison: it is a
// monotone "some weight ever differed from 1" bit, so a history that sets
// a weight and later restores 1 leaves it raised on the sequential copy
// while the compacted replay (which never sees the transient weight) does
// not. Both describe the identical edge set and weights.

// randMutation proposes one mutation against g. It may be invalid (the
// caller applies it and skips rejects), but it is biased toward valid ops
// so histories stay dense in interesting interleavings.
func randMutation(rng *rand.Rand, g *Graph) Mutation {
	pickEdge := func() (int32, int32, bool) {
		if len(g.Edges) == 0 {
			return 0, 0, false
		}
		e := g.Edges[rng.Intn(len(g.Edges))]
		if !g.Directed && rng.Intn(2) == 0 {
			return e.V, e.U, true // exercise orientation canonicalization
		}
		return e.U, e.V, true
	}
	randWeight := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return 0 // add_edge default-weight sentinel
		case 1:
			return 1
		case 2:
			return float64(1 + rng.Intn(8))
		default:
			return 0.25 + rng.Float64()*4
		}
	}
	switch k := rng.Intn(12); {
	case k == 0:
		return Mutation{Op: OpAddVertex}
	case k < 5:
		u, v := int32(rng.Intn(g.N)), int32(rng.Intn(g.N))
		return Mutation{Op: OpAddEdge, U: u, V: v, W: randWeight()}
	case k < 8:
		if u, v, ok := pickEdge(); ok {
			return Mutation{Op: OpRemoveEdge, U: u, V: v}
		}
		return Mutation{Op: OpAddVertex}
	default:
		if u, v, ok := pickEdge(); ok {
			w := randWeight()
			if w == 0 { //lint:allow floateq zero is the add_edge sentinel; set_weight has none
				w = 1
			}
			return Mutation{Op: OpSetWeight, U: u, V: v, W: w}
		}
		u, v := int32(rng.Intn(g.N)), int32(rng.Intn(g.N))
		return Mutation{Op: OpAddEdge, U: u, V: v, W: randWeight()}
	}
}

// randHistory grows a valid history of exactly steps mutations by applying
// proposals to work (mutated in place) and keeping the ones that succeed.
func randHistory(rng *rand.Rand, work *Graph, steps int) []Mutation {
	hist := make([]Mutation, 0, steps)
	for tries := 0; len(hist) < steps && tries < steps*20; tries++ {
		m := randMutation(rng, work)
		if err := work.Apply(m); err != nil {
			continue
		}
		hist = append(hist, m)
	}
	return hist
}

func assertSameTopology(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if want.N != got.N || want.Directed != got.Directed {
		t.Fatalf("%s: shape differs: want n=%d directed=%v, got n=%d directed=%v",
			label, want.N, want.Directed, got.N, got.Directed)
	}
	want.ensureSorted()
	got.ensureSorted()
	if len(want.Edges) != len(got.Edges) {
		t.Fatalf("%s: edge count differs: want %d, got %d", label, len(want.Edges), len(got.Edges))
	}
	for i := range want.Edges {
		if want.Edges[i] != got.Edges[i] { //lint:allow floateq weights must round-trip bit-for-bit through compaction
			t.Fatalf("%s: edge %d differs: want %+v, got %+v", label, i, want.Edges[i], got.Edges[i])
		}
	}
}

// replayCompacted compacts hist and applies it to a clone of base,
// failing the test if the compacted batch does not replay cleanly.
func replayCompacted(t *testing.T, label string, base *Graph, hist []Mutation) *Graph {
	t.Helper()
	var log MutationLog
	log.Append(hist...)
	log.Compact(base.Directed)
	compacted := log.Mutations()
	if len(compacted) > len(hist) {
		t.Fatalf("%s: compaction grew the history: %d ops -> %d", label, len(hist), len(compacted))
	}
	coal := base.Clone()
	if i, err := coal.ApplyAll(compacted); err != nil {
		t.Fatalf("%s: compacted replay failed at op %d: %v\nhistory:   %v\ncompacted: %v",
			label, i, err, hist, compacted)
	}
	return coal
}

// TestCompactCoalescingOracle is the correctness keystone of group-commit
// ingestion: across seeded random graphs and histories, coalesced
// application (one compacted batch) and one-at-a-time application yield
// identical graphs.
func TestCompactCoalescingOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		base := Uniform(6+rng.Intn(12), 10+rng.Intn(24), directed, seed)
		if seed%3 == 0 {
			base.AddUniformWeights(1, 5, seed+1)
		}
		seq := base.Clone()
		hist := randHistory(rng, seq, 40)
		if len(hist) == 0 {
			t.Fatalf("seed %d: generated no valid mutations", seed)
		}
		coal := replayCompacted(t, "seed", base, hist)
		assertSameTopology(t, "seed", seq, coal)

		// Prefix closure: the oracle must hold on every prefix of the
		// history, since a group commit can cut the queue at any point.
		for _, cut := range []int{1, len(hist) / 3, len(hist) / 2, len(hist) - 1} {
			if cut <= 0 || cut >= len(hist) {
				continue
			}
			pseq := base.Clone()
			if _, err := pseq.ApplyAll(hist[:cut]); err != nil {
				t.Fatalf("seed %d: sequential prefix %d failed: %v", seed, cut, err)
			}
			pcoal := replayCompacted(t, "prefix", base, hist[:cut])
			assertSameTopology(t, "prefix", pseq, pcoal)
		}
	}
}

// TestCompactRestoresDefaultWeight pins the regression the oracle exposed:
// removing a pre-existing edge and re-adding it with the W == 0 default
// sentinel compacts to a set_weight, which must say weight 1 explicitly —
// a literal set_weight(0) is invalid and would poison the whole group
// commit.
func TestCompactRestoresDefaultWeight(t *testing.T) {
	for _, directed := range []bool{false, true} {
		base := Uniform(6, 8, directed, 3)
		e := base.Edges[0]
		hist := []Mutation{
			{Op: OpSetWeight, U: e.U, V: e.V, W: 7},
			{Op: OpRemoveEdge, U: e.U, V: e.V},
			{Op: OpAddEdge, U: e.U, V: e.V, W: 0}, // sentinel: weight 1
		}
		seq := base.Clone()
		if _, err := seq.ApplyAll(hist); err != nil {
			t.Fatalf("directed=%v: sequential apply failed: %v", directed, err)
		}
		coal := replayCompacted(t, "sentinel", base, hist)
		assertSameTopology(t, "sentinel", seq, coal)
		if w, ok := coal.FindEdge(e.U, e.V); !ok || w != 1 { //lint:allow floateq the restored default weight is exactly 1
			t.Fatalf("directed=%v: edge (%d,%d) = (%v,%v), want weight 1", directed, e.U, e.V, w, ok)
		}
	}
}

// decodeFuzzMutation maps 4 fuzz bytes onto one proposed mutation over a
// graph with n vertices (add_vertex kept rare so N stays bounded).
func decodeFuzzMutation(b []byte, n int) Mutation {
	u, v := int32(int(b[1])%n), int32(int(b[2])%n)
	var w float64
	switch b[3] % 4 {
	case 0:
		w = 0
	case 1:
		w = 1
	case 2:
		w = 2.5
	default:
		w = float64(b[3])/32 + 0.5
	}
	switch b[0] % 8 {
	case 0:
		return Mutation{Op: OpAddVertex}
	case 1, 2, 3:
		return Mutation{Op: OpAddEdge, U: u, V: v, W: w}
	case 4, 5:
		return Mutation{Op: OpRemoveEdge, U: u, V: v}
	default:
		if w == 0 { //lint:allow floateq zero is the add_edge sentinel; set_weight has none
			w = 1
		}
		return Mutation{Op: OpSetWeight, U: u, V: v, W: w}
	}
}

// FuzzCompactReplayEquivalence feeds arbitrary op programs through the
// coalescing oracle. The seed corpus covers the algebra's corners
// (add+remove cancel, remove+add, chained sets, the W == 0 sentinel).
func FuzzCompactReplayEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{1, 0, 1, 0, 4, 0, 1, 0})                         // add then remove: cancels
	f.Add(int64(2), []byte{4, 0, 1, 0, 1, 0, 1, 0})                         // remove then re-add: set_weight
	f.Add(int64(3), []byte{6, 0, 1, 2, 6, 0, 1, 3, 6, 0, 1, 1})             // chained sets keep last
	f.Add(int64(4), []byte{4, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 1, 9, 3, 2}) // sentinel re-add + add_vertex
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		base := Uniform(5+rng.Intn(8), 8+rng.Intn(12), directed, seed)
		work := base.Clone()
		var hist []Mutation
		for i := 0; i+3 < len(program) && len(hist) < 128; i += 4 {
			if work.N > 96 {
				break
			}
			m := decodeFuzzMutation(program[i:i+4], work.N)
			if err := work.Apply(m); err != nil {
				continue
			}
			hist = append(hist, m)
		}
		if len(hist) == 0 {
			return
		}
		coal := replayCompacted(t, "fuzz", base, hist)
		assertSameTopology(t, "fuzz", work, coal)
	})
}
