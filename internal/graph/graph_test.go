package graph

import (
	"bytes"
	"math"
	"testing"
)

func TestGeneratorsValidate(t *testing.T) {
	graphs := []*Graph{
		RMAT(DefaultRMAT(8, 8, 1)),
		Uniform(200, 900, false, 2),
		Uniform(200, 900, true, 3),
		Ring(50),
		Path(50),
		Star(50),
		Grid2D(8, 9, 5, 4),
		CompleteBinaryTree(5),
		LayeredDAG(6, 20, 3, 5),
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(DefaultRMAT(9, 8, 7))
	if g.N > 1<<9 {
		t.Fatalf("n=%d exceeds 2^scale", g.N)
	}
	if g.M() == 0 {
		t.Fatal("no edges generated")
	}
	// Deduplication: no repeated edges.
	seen := map[[2]int32]bool{}
	for _, e := range g.Edges {
		k := [2]int32{e.U, e.V}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
	// Disconnected vertices removed: every vertex touched.
	touched := make([]bool, g.N)
	for _, e := range g.Edges {
		touched[e.U] = true
		touched[e.V] = true
	}
	for v, ok := range touched {
		if !ok {
			t.Fatalf("vertex %d is isolated after RemoveDisconnected", v)
		}
	}
	// Determinism.
	h := RMAT(DefaultRMAT(9, 8, 7))
	if h.N != g.N || h.M() != g.M() {
		t.Fatal("generator not deterministic")
	}
	// Power-law-ish skew: max degree far above average.
	st := ComputeStats(g, 16, 1)
	if float64(st.MaxDegree) < 4*st.AvgDegree {
		t.Fatalf("no degree skew: max %d avg %.1f", st.MaxDegree, st.AvgDegree)
	}
}

func TestUniformExactEdgeCount(t *testing.T) {
	g := Uniform(100, 500, false, 9)
	if g.M() != 500 {
		t.Fatalf("m=%d want 500", g.M())
	}
	// Requesting more than the maximum clamps to the complete graph.
	k := Uniform(10, 1000, false, 9)
	if k.M() != 45 {
		t.Fatalf("complete graph clamp: m=%d want 45", k.M())
	}
}

func TestAdjacencySymmetryAndWeights(t *testing.T) {
	g := Grid2D(4, 4, 7, 11)
	a := g.Adjacency()
	if a.NNZ() != 2*g.M() {
		t.Fatalf("undirected adjacency nnz=%d want %d", a.NNZ(), 2*g.M())
	}
	for i := 0; i < g.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			v, ok := a.Get(j, int32(i))
			if !ok || v != vals[k] {
				t.Fatal("undirected adjacency must be symmetric")
			}
		}
	}
	d := LayeredDAG(4, 5, 2, 3)
	if d.Adjacency().NNZ() != d.M() {
		t.Fatal("directed adjacency must store each edge once")
	}
	if d.AdjacencyNNZ() != d.M() || g.AdjacencyNNZ() != 2*g.M() {
		t.Fatal("AdjacencyNNZ wrong")
	}
}

func TestAdjacencyLists(t *testing.T) {
	g := &Graph{N: 4, Directed: true, Edges: []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 3, V: 1, W: 4}}}
	out, _ := g.OutAdjacencyLists()
	in, _ := g.InAdjacencyLists()
	if len(out[0]) != 1 || out[0][0] != 1 {
		t.Fatal("out list wrong")
	}
	if len(in[1]) != 2 {
		t.Fatalf("in list of 1 has %d entries, want 2", len(in[1]))
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	g := RMAT(DefaultRMAT(7, 6, 13))
	perm := make([]int32, g.N)
	inv := make([]int32, g.N)
	for i := range perm {
		perm[i] = int32((i*7 + 3) % g.N)
	}
	// ensure bijection (gcd(7, n) may not be 1; verify)
	seen := make([]bool, g.N)
	bij := true
	for _, p := range perm {
		if seen[p] {
			bij = false
			break
		}
		seen[p] = true
	}
	if !bij {
		t.Skip("7 divides n; permutation not bijective for this size")
	}
	for i, p := range perm {
		inv[p] = int32(i)
	}
	orig := append([]Edge{}, g.Edges...)
	g.Permute(perm)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Permute(inv)
	if len(g.Edges) != len(orig) {
		t.Fatal("permute round trip lost edges")
	}
	for i := range orig {
		if g.Edges[i] != orig[i] {
			t.Fatalf("edge %d: %v vs %v", i, g.Edges[i], orig[i])
		}
	}
}

func TestAddUniformWeights(t *testing.T) {
	g := Ring(30)
	g.AddUniformWeights(1, 100, 5)
	if !g.Weighted {
		t.Fatal("graph must be marked weighted")
	}
	for _, e := range g.Edges {
		if e.W < 1 || e.W > 100 || e.W != math.Trunc(e.W) {
			t.Fatalf("weight %v outside [1,100] or not integer", e.W)
		}
	}
}

func TestIORoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		RMAT(DefaultRMAT(6, 5, 17)),
		Grid2D(4, 5, 9, 3),
		LayeredDAG(4, 6, 2, 9),
	} {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if h.N != g.N || h.M() != g.M() || h.Directed != g.Directed || h.Weighted != g.Weighted {
			t.Fatalf("%s: header mismatch after round trip", g.Name)
		}
		for i := range g.Edges {
			if g.Edges[i] != h.Edges[i] {
				t.Fatalf("%s: edge %d differs", g.Name, i)
			}
		}
	}
}

func TestReadEdgeListBare(t *testing.T) {
	in := "0 1\n1 2\n2 0\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 3 || g.Weighted {
		t.Fatalf("bare parse wrong: n=%d m=%d", g.N, g.M())
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("0 x\n")); err == nil {
		t.Fatal("malformed line must fail")
	}
}

func TestBFSDistancesAndStats(t *testing.T) {
	g := Path(10)
	adj, _ := g.OutAdjacencyLists()
	d := BFSDistances(adj, 0)
	for i := 0; i < 10; i++ {
		if d[i] != int32(i) {
			t.Fatalf("path distance to %d = %d", i, d[i])
		}
	}
	st := ComputeStats(g, 100, 1)
	if st.Diameter != 9 {
		t.Fatalf("path diameter %d want 9", st.Diameter)
	}
	if st.MaxDegree != 2 || st.Reachable != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	ring := ComputeStats(Ring(12), 100, 1)
	if ring.Diameter != 6 {
		t.Fatalf("ring diameter %d want 6", ring.Diameter)
	}
}

func TestStandins(t *testing.T) {
	for _, spec := range Standins {
		g, err := Standin(spec.ID, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		if g.Directed != spec.Directed {
			t.Fatalf("%s: directedness mismatch", spec.ID)
		}
		if g.N < 1000 {
			t.Fatalf("%s: implausibly small (n=%d)", spec.ID, g.N)
		}
	}
	if _, err := Standin("nosuch", 1, 1); err == nil {
		t.Fatal("unknown stand-in must fail")
	}
	// Relative orderings that carry the paper's performance narrative.
	stats := map[string]Stats{}
	for _, spec := range Standins {
		g, _ := Standin(spec.ID, 1, 42)
		stats[spec.ID] = ComputeStats(g, 16, 1)
	}
	if !(stats["orkut-sim"].AvgDegree > stats["livejournal-sim"].AvgDegree) {
		t.Fatal("orkut-sim must be denser than livejournal-sim")
	}
	if !(stats["patents-sim"].Diameter > stats["orkut-sim"].Diameter) {
		t.Fatal("patents-sim must have the larger diameter")
	}
}

func TestRemoveDisconnected(t *testing.T) {
	g := &Graph{N: 10, Edges: []Edge{{U: 2, V: 7, W: 1}, {U: 7, V: 9, W: 1}}}
	g.RemoveDisconnected()
	if g.N != 3 {
		t.Fatalf("n=%d want 3", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	bad := []*Graph{
		{N: 2, Edges: []Edge{{U: 0, V: 5, W: 1}}},           // out of range
		{N: 2, Edges: []Edge{{U: 0, V: 0, W: 1}}},           // self loop
		{N: 2, Edges: []Edge{{U: 0, V: 1, W: 0}}},           // zero weight
		{N: 2, Edges: []Edge{{U: 0, V: 1, W: -1}}},          // negative
		{N: 3, Edges: []Edge{{U: 2, V: 1, W: 1}}},           // bad orientation
		{N: 2, Edges: []Edge{{U: 0, V: 1, W: math.Inf(1)}}}, // infinite
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d must fail validation", i)
		}
	}
}
