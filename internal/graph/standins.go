package graph

import (
	"fmt"
	"math/rand"
)

// The paper benchmarks four SNAP graphs (Table 2). The datasets themselves
// are multi-gigabyte downloads unavailable in this offline reproduction, so
// we substitute degree/diameter/directedness-matched synthetic stand-ins at
// roughly 1/400 scale (DESIGN.md §2). The features that drive the paper's
// performance narrative — density k, diameter d (iteration count),
// directedness, and degree skew — are matched; absolute sizes are not.

// StandinSpec describes one stand-in and the SNAP original it models.
type StandinSpec struct {
	ID        string // short id used by CLIs and benchmarks
	SNAPName  string
	Directed  bool
	PaperN    int64 // original vertex count
	PaperM    int64 // original edge count
	PaperDiam int   // original diameter (Table 2)
}

// Standins lists the four Table-2 graphs in the paper's order (sorted by m).
var Standins = []StandinSpec{
	{ID: "friendster-sim", SNAPName: "Friendster", Directed: false, PaperN: 65_600_000, PaperM: 1_800_000_000, PaperDiam: 32},
	{ID: "orkut-sim", SNAPName: "Orkut social network", Directed: false, PaperN: 3_100_000, PaperM: 117_000_000, PaperDiam: 9},
	{ID: "livejournal-sim", SNAPName: "LiveJournal membership", Directed: true, PaperN: 4_800_000, PaperM: 70_000_000, PaperDiam: 16},
	{ID: "patents-sim", SNAPName: "Patent citation graph", Directed: true, PaperN: 3_800_000, PaperM: 16_500_000, PaperDiam: 22},
}

// Standin generates the named stand-in graph. scale multiplies the default
// sizes (scale 1 keeps single-process experiments in seconds; larger scales
// are for bigger runs). Unknown names yield an error.
func Standin(id string, scale int, seed int64) (*Graph, error) {
	if scale < 1 {
		scale = 1
	}
	switch id {
	case "friendster-sim":
		// Large, moderately dense, undirected, larger diameter than the
		// other social graphs: R-MAT with mild skew plus chain "tendrils"
		// hanging off the core, the structure that gives Friendster its
		// d=32 against Orkut's d=9.
		g := RMAT(RMATOptions{Scale: 13 + log2(scale), EdgeFactor: 14, A: 0.45, B: 0.22, C: 0.22, Seed: seed})
		attachTails(g, 4, 5, seed)
		g.Name = id
		return g, nil
	case "orkut-sim":
		// Dense, undirected, very low diameter: heavy R-MAT.
		g := RMAT(RMATOptions{Scale: 12 + log2(scale), EdgeFactor: 19, A: 0.57, B: 0.19, C: 0.19, Seed: seed})
		g.Name = id
		return g, nil
	case "livejournal-sim":
		// Directed, moderate density, moderate diameter.
		g := RMAT(RMATOptions{Scale: 13 + log2(scale), EdgeFactor: 7, A: 0.57, B: 0.19, C: 0.19, Directed: true, Seed: seed})
		g.Name = id
		return g, nil
	case "patents-sim":
		// Directed, sparse, high diameter: a layered citation-style DAG.
		g := LayeredDAG(22, 700*scale, 4, seed)
		g.Name = id
		return g, nil
	default:
		return nil, fmt.Errorf("graph: unknown stand-in %q", id)
	}
}

// attachTails grows `count` chains of `length` fresh vertices off existing
// vertices, stretching the diameter of an otherwise small-world core
// without changing its density profile.
func attachTails(g *Graph, count, length int, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x7a115))
	next := int32(g.N)
	for c := 0; c < count; c++ {
		anchor := int32(rng.Intn(g.N))
		prev := anchor
		for l := 0; l < length; l++ {
			u, v := prev, next
			if !g.Directed && u > v {
				u, v = v, u
			}
			g.Edges = append(g.Edges, Edge{U: u, V: v, W: 1})
			prev = next
			next++
		}
	}
	g.N = int(next)
	g.Edges = dedupeEdges(g.Edges, g.Directed)
}

func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
