package graph

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// failAfterWriter errors once more than limit bytes have been attempted,
// like a full disk partway through a write.
type failAfterWriter struct {
	limit   int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		if n < 0 {
			n = 0
		}
		w.written += n
		return n, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

// bigGraph returns a graph whose edge list overflows bufio's 4 KiB buffer,
// so write errors surface mid-loop rather than only at Flush.
func bigGraph() *Graph {
	g := &Graph{Name: "big", N: 2000}
	for i := int32(0); i+1 < 2000; i++ {
		g.Edges = append(g.Edges, Edge{U: i, V: i + 1, W: 1})
	}
	return g
}

// TestWriteEdgeListPropagatesWriteError: the first underlying write error
// must be returned (previously only Flush's error surfaced, and a caller
// retrying Flush could mistake a truncated file for success).
func TestWriteEdgeListPropagatesWriteError(t *testing.T) {
	err := WriteEdgeList(&failAfterWriter{limit: 6000}, bigGraph())
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteEdgeList = %v, want errDiskFull", err)
	}
}

// TestWriteEdgeListErrorAtFlush: an error only the final flush hits (small
// graph, everything buffered) must still be returned.
func TestWriteEdgeListErrorAtFlush(t *testing.T) {
	g := &Graph{Name: "tiny", N: 2, Edges: []Edge{{U: 0, V: 1, W: 1}}}
	err := WriteEdgeList(&failAfterWriter{limit: 10}, g)
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteEdgeList = %v, want errDiskFull", err)
	}
}

// TestWriteEdgeListRoundTrip guards the happy path after the error-handling
// rework.
func TestWriteEdgeListRoundTrip(t *testing.T) {
	g := &Graph{Name: "rt", N: 4, Weighted: true, Edges: []Edge{
		{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 0.25},
	}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if got.N != g.N || len(got.Edges) != len(g.Edges) || !got.Weighted {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i, e := range got.Edges {
		want := g.Edges[i]
		if fmt.Sprint(e) != fmt.Sprint(want) {
			t.Fatalf("edge %d = %v, want %v", i, e, want)
		}
	}
}
