package graph

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failAfterWriter errors once more than limit bytes have been attempted,
// like a full disk partway through a write.
type failAfterWriter struct {
	limit   int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		if n < 0 {
			n = 0
		}
		w.written += n
		return n, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

// bigGraph returns a graph whose edge list overflows bufio's 4 KiB buffer,
// so write errors surface mid-loop rather than only at Flush.
func bigGraph() *Graph {
	g := &Graph{Name: "big", N: 2000}
	for i := int32(0); i+1 < 2000; i++ {
		g.Edges = append(g.Edges, Edge{U: i, V: i + 1, W: 1})
	}
	return g
}

// TestWriteEdgeListPropagatesWriteError: the first underlying write error
// must be returned (previously only Flush's error surfaced, and a caller
// retrying Flush could mistake a truncated file for success).
func TestWriteEdgeListPropagatesWriteError(t *testing.T) {
	err := WriteEdgeList(&failAfterWriter{limit: 6000}, bigGraph())
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteEdgeList = %v, want errDiskFull", err)
	}
}

// TestWriteEdgeListErrorAtFlush: an error only the final flush hits (small
// graph, everything buffered) must still be returned.
func TestWriteEdgeListErrorAtFlush(t *testing.T) {
	g := &Graph{Name: "tiny", N: 2, Edges: []Edge{{U: 0, V: 1, W: 1}}}
	err := WriteEdgeList(&failAfterWriter{limit: 10}, g)
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteEdgeList = %v, want errDiskFull", err)
	}
}

// TestReadEdgeListErrors covers the parse-error paths: malformed edge
// lines, bad endpoints and weights, broken headers, and structurally
// invalid results (negative ids surface through Validate).
func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"one-field line", "0 1\n2\n", "malformed edge line"},
		{"non-numeric endpoint", "0 x\n", "bad endpoint"},
		{"overflowing endpoint", "0 99999999999999\n", "bad endpoint"},
		{"non-numeric weight", "0 1 heavy\n", "bad weight"},
		{"bad nodes header", "# nodes many\n0 1\n", "bad nodes header"},
		{"negative vertex id", "-3 1\n", "outside"},
		{"nonpositive weight", "0 1 -4\n", "nonpositive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ReadEdgeList(%q) = %v, want error containing %q", tc.input, err, tc.want)
			}
		})
	}
}

// TestReadEdgeListSanitizesSelfLoops: self-loop lines are dropped by the
// canonicalization pass (SNAP dumps contain them), not rejected.
func TestReadEdgeListSanitizesSelfLoops(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("2 2\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m = %d, want the self-loop dropped", g.M())
	}
}

// TestReadEdgeListDeclaredN: a nodes header larger than the max vertex id
// must win (isolated tail vertices), and a smaller one must not truncate.
func TestReadEdgeListDeclaredN(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nodes 10\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Fatalf("declared nodes ignored: n = %d, want 10", g.N)
	}
	g, err = ReadEdgeList(strings.NewReader("# nodes 2\n0 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 6 {
		t.Fatalf("undersized header truncated: n = %d, want 6", g.N)
	}
}

// TestLoadFileMissing: a nonexistent path must return the os error, not
// panic or yield an empty graph.
func TestLoadFileMissing(t *testing.T) {
	g, err := LoadFile(filepath.Join(t.TempDir(), "no-such-graph.txt"))
	if err == nil || g != nil {
		t.Fatalf("LoadFile(missing) = %v, %v; want nil graph and an error", g, err)
	}
	if !os.IsNotExist(err) {
		t.Fatalf("LoadFile(missing) error = %v, want IsNotExist", err)
	}
}

// TestWriteEdgeListRoundTrip guards the happy path after the error-handling
// rework.
func TestWriteEdgeListRoundTrip(t *testing.T) {
	g := &Graph{Name: "rt", N: 4, Weighted: true, Edges: []Edge{
		{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 0.25},
	}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if got.N != g.N || len(got.Edges) != len(g.Edges) || !got.Weighted {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i, e := range got.Edges {
		want := g.Edges[i]
		if fmt.Sprint(e) != fmt.Sprint(want) {
			t.Fatalf("edge %d = %v, want %v", i, e, want)
		}
	}
}
