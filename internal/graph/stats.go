package graph

import (
	"math/rand"
	"sort"
)

// Stats summarizes a graph the way the paper's Table 2 does.
type Stats struct {
	Name      string
	Directed  bool
	N, M      int
	AvgDegree float64
	MaxDegree int
	Diameter  int     // max eccentricity observed over sampled BFS sources (exact on small graphs)
	EffDiam   float64 // 90-percentile effective diameter over sampled pairwise distances
	Reachable float64 // average fraction of vertices reachable from a sampled source
}

// BFSDistances runs an unweighted BFS from src over the provided adjacency
// lists and returns hop distances (-1 for unreachable).
func BFSDistances(adj [][]int32, src int32) []int32 {
	dist := make([]int32, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ComputeStats gathers graph statistics from up to `samples` BFS sources
// (all vertices when samples ≥ n), using the seeded generator for source
// selection.
func ComputeStats(g *Graph, samples int, seed int64) Stats {
	adj, _ := g.OutAdjacencyLists()
	st := Stats{
		Name:      g.Name,
		Directed:  g.Directed,
		N:         g.N,
		M:         g.M(),
		AvgDegree: g.AvgDegree(),
	}
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		if !g.Directed {
			deg[e.V]++
		}
	}
	for _, d := range deg {
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	if g.N == 0 {
		return st
	}
	srcs := make([]int32, 0, samples)
	if samples >= g.N {
		for i := 0; i < g.N; i++ {
			srcs = append(srcs, int32(i))
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		seen := map[int32]bool{}
		for len(srcs) < samples {
			s := int32(rng.Intn(g.N))
			if !seen[s] {
				seen[s] = true
				srcs = append(srcs, s)
			}
		}
	}
	var alldist []int32
	var reachSum float64
	for _, s := range srcs {
		dist := BFSDistances(adj, s)
		reached := 0
		for _, d := range dist {
			if d > 0 {
				alldist = append(alldist, d)
				if int(d) > st.Diameter {
					st.Diameter = int(d)
				}
			}
			if d >= 0 {
				reached++
			}
		}
		reachSum += float64(reached) / float64(g.N)
	}
	st.Reachable = reachSum / float64(len(srcs))
	if len(alldist) > 0 {
		sort.Slice(alldist, func(a, b int) bool { return alldist[a] < alldist[b] })
		idx := int(0.9*float64(len(alldist))) - 1
		if idx < 0 {
			idx = 0
		}
		// Linear interpolation between the two distances bracketing the
		// 90th percentile, matching SNAP's effective-diameter convention.
		lo := float64(alldist[idx])
		hi := lo
		if idx+1 < len(alldist) {
			hi = float64(alldist[idx+1])
		}
		frac := 0.9*float64(len(alldist)) - float64(idx+1)
		st.EffDiam = lo + (hi-lo)*frac
	}
	return st
}
