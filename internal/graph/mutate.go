// Graph mutation: the write API of the streaming subsystem. A Graph built
// by any generator or loader can evolve through AddEdge / RemoveEdge /
// SetWeight / AddVertex, each validating the same structural invariants
// Validate enforces (coordinates in range, strictly positive finite
// weights, no self-loops, canonical undirected orientation, no
// multi-edges). Mutation records the operations compactly so engines
// downstream (internal/dynamic) can log, replay, and compact histories.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// MutOp names one mutation kind. The string values are the wire format of
// the server's PATCH route.
type MutOp string

const (
	OpAddEdge    MutOp = "add_edge"    // insert edge (U,V) with weight W (0 → 1)
	OpRemoveEdge MutOp = "remove_edge" // delete edge (U,V)
	OpSetWeight  MutOp = "set_weight"  // change the weight of existing edge (U,V) to W
	OpAddVertex  MutOp = "add_vertex"  // append one isolated vertex (id = old N)
)

// Mutation is one graph edit. For undirected graphs the (U,V) orientation
// is canonicalized on application, so (3,1) and (1,3) name the same edge.
type Mutation struct {
	Op MutOp   `json:"op"`
	U  int32   `json:"u,omitempty"`
	V  int32   `json:"v,omitempty"`
	W  float64 `json:"w,omitempty"`
}

func (m Mutation) String() string {
	switch m.Op {
	case OpAddVertex:
		return string(m.Op)
	case OpRemoveEdge:
		return fmt.Sprintf("%s(%d,%d)", m.Op, m.U, m.V)
	default:
		return fmt.Sprintf("%s(%d,%d,%g)", m.Op, m.U, m.V, m.W)
	}
}

// Clone returns a deep copy of g; mutating the copy leaves g untouched.
func (g *Graph) Clone() *Graph {
	c := *g
	c.Edges = append([]Edge(nil), g.Edges...)
	return &c
}

// orient canonicalizes an edge key for lookup: undirected edges are stored
// with U ≤ V.
func (g *Graph) orient(u, v int32) (int32, int32) {
	if !g.Directed && u > v {
		u, v = v, u
	}
	return u, v
}

// ensureSorted restores the canonical (U,V) edge order the generators and
// dedupeEdges establish, so edgePos can binary-search. A sorted check is
// O(m) and almost always hits; callers that mutate through this API keep
// the order intact.
func (g *Graph) ensureSorted() {
	sorted := sort.SliceIsSorted(g.Edges, func(a, b int) bool {
		if g.Edges[a].U != g.Edges[b].U {
			return g.Edges[a].U < g.Edges[b].U
		}
		return g.Edges[a].V < g.Edges[b].V
	})
	if !sorted {
		sort.Slice(g.Edges, func(a, b int) bool {
			if g.Edges[a].U != g.Edges[b].U {
				return g.Edges[a].U < g.Edges[b].U
			}
			return g.Edges[a].V < g.Edges[b].V
		})
	}
}

// edgePos returns the insertion position of (u, v) in the sorted edge list
// and whether an edge with that key is already present. Callers pass
// oriented coordinates.
func (g *Graph) edgePos(u, v int32) (int, bool) {
	i := sort.Search(len(g.Edges), func(k int) bool {
		e := g.Edges[k]
		return e.U > u || (e.U == u && e.V >= v)
	})
	return i, i < len(g.Edges) && g.Edges[i].U == u && g.Edges[i].V == v
}

// FindEdge reports the weight of edge (u, v) and whether it exists. The
// orientation is canonicalized for undirected graphs. Unlike the mutation
// methods it is strictly read-only (a linear scan), so it is safe on
// shared immutable snapshots.
func (g *Graph) FindEdge(u, v int32) (float64, bool) {
	if u < 0 || int(u) >= g.N || v < 0 || int(v) >= g.N {
		return 0, false
	}
	u, v = g.orient(u, v)
	for _, e := range g.Edges {
		if e.U == u && e.V == v {
			return e.W, true
		}
	}
	return 0, false
}

func (g *Graph) checkEndpoints(op MutOp, u, v int32) error {
	if u < 0 || int(u) >= g.N || v < 0 || int(v) >= g.N {
		return fmt.Errorf("graph %q: %s: endpoint (%d,%d) outside n=%d", g.Name, op, u, v, g.N)
	}
	if u == v {
		return fmt.Errorf("graph %q: %s: self-loop at %d", g.Name, op, u)
	}
	return nil
}

func checkWeight(op MutOp, w float64) error {
	if !(w > 0) || math.IsInf(w, 1) || math.IsNaN(w) {
		return fmt.Errorf("graph: %s: nonpositive or non-finite weight %v", op, w)
	}
	return nil
}

// AddEdge inserts edge (u, v) with weight w (w == 0 selects weight 1).
// Duplicate edges are rejected: the graph stays a simple graph.
func (g *Graph) AddEdge(u, v int32, w float64) error {
	if err := g.checkEndpoints(OpAddEdge, u, v); err != nil {
		return err
	}
	if w == 0 { //lint:allow floateq zero is the default-weight sentinel, never computed
		w = 1
	}
	if err := checkWeight(OpAddEdge, w); err != nil {
		return err
	}
	u, v = g.orient(u, v)
	g.ensureSorted()
	i, exists := g.edgePos(u, v)
	if exists {
		return fmt.Errorf("graph %q: add_edge: edge (%d,%d) already present", g.Name, u, v)
	}
	g.Edges = append(g.Edges, Edge{})
	copy(g.Edges[i+1:], g.Edges[i:])
	g.Edges[i] = Edge{U: u, V: v, W: w}
	if w != 1 { //lint:allow floateq stored weight compared bit-for-bit to decide the Weighted flag
		g.Weighted = true
	}
	return nil
}

// RemoveEdge deletes edge (u, v); missing edges are an error so callers
// notice drifted views of the graph.
func (g *Graph) RemoveEdge(u, v int32) error {
	if err := g.checkEndpoints(OpRemoveEdge, u, v); err != nil {
		return err
	}
	u, v = g.orient(u, v)
	g.ensureSorted()
	i, exists := g.edgePos(u, v)
	if !exists {
		return fmt.Errorf("graph %q: remove_edge: no edge (%d,%d)", g.Name, u, v)
	}
	g.Edges = append(g.Edges[:i], g.Edges[i+1:]...)
	return nil
}

// SetWeight changes the weight of existing edge (u, v) to w.
func (g *Graph) SetWeight(u, v int32, w float64) error {
	if err := g.checkEndpoints(OpSetWeight, u, v); err != nil {
		return err
	}
	if err := checkWeight(OpSetWeight, w); err != nil {
		return err
	}
	u, v = g.orient(u, v)
	g.ensureSorted()
	i, exists := g.edgePos(u, v)
	if !exists {
		return fmt.Errorf("graph %q: set_weight: no edge (%d,%d)", g.Name, u, v)
	}
	g.Edges[i].W = w
	if w != 1 { //lint:allow floateq stored weight compared bit-for-bit to decide the Weighted flag
		g.Weighted = true
	}
	return nil
}

// AddVertex appends one isolated vertex and returns its id.
func (g *Graph) AddVertex() int32 {
	g.N++
	return int32(g.N - 1)
}

// Apply executes one mutation.
func (g *Graph) Apply(m Mutation) error {
	switch m.Op {
	case OpAddEdge:
		return g.AddEdge(m.U, m.V, m.W)
	case OpRemoveEdge:
		return g.RemoveEdge(m.U, m.V)
	case OpSetWeight:
		return g.SetWeight(m.U, m.V, m.W)
	case OpAddVertex:
		g.AddVertex()
		return nil
	default:
		return fmt.Errorf("graph: unknown mutation op %q", m.Op)
	}
}

// ApplyAll executes a batch in order, stopping at the first failure. The
// graph is left partially mutated on error; callers wanting atomic batches
// apply to a Clone and swap on success (internal/dynamic does).
func (g *Graph) ApplyAll(batch []Mutation) (int, error) {
	for i, m := range batch {
		if err := g.Apply(m); err != nil {
			return i, fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	return len(batch), nil
}

// MutationLog is a compact, replayable history of applied mutations.
type MutationLog struct {
	muts []Mutation
}

// Append records mutations in application order.
func (l *MutationLog) Append(ms ...Mutation) { l.muts = append(l.muts, ms...) }

// Len reports the number of recorded mutations.
func (l *MutationLog) Len() int { return len(l.muts) }

// Mutations returns a copy of the log in order.
func (l *MutationLog) Mutations() []Mutation { return append([]Mutation(nil), l.muts...) }

// Compact rewrites the log to the minimal replay-equivalent form: per edge
// key the operation history collapses to at most one operation (add+remove
// cancels, remove+add becomes set_weight, chained set_weights keep only the
// last), and add_vertex operations are hoisted to the front (they only
// increment N, so edges referencing the new ids stay valid). Replaying the
// compacted log on the graph the original log started from yields the same
// final graph.
//
// directed states the orientation of the graph the log applies to: for
// undirected graphs (directed == false) mutations recorded as (u,v) and
// (v,u) name the same edge and compact into one history.
func (l *MutationLog) Compact(directed bool) {
	type hist struct {
		first Mutation // first op for this key in the log
		last  Mutation // last weight-carrying op (add or set)
		alive bool     // edge exists after replay of this key's history
		order int      // position of first appearance, for stable output
	}
	var vertices int
	keys := make(map[[2]int32]*hist)
	orderedKeys := make([][2]int32, 0, len(l.muts))
	for _, m := range l.muts {
		if m.Op == OpAddVertex {
			vertices++
			continue
		}
		u, v := m.U, m.V
		if !directed && u > v {
			u, v = v, u
		}
		k := [2]int32{u, v}
		h, ok := keys[k]
		if !ok {
			h = &hist{first: m, order: len(orderedKeys)}
			// Before its first op, the edge exists iff that op is legal on an
			// existing edge (remove/set imply existence; add implies absence).
			keys[k] = h
			orderedKeys = append(orderedKeys, k)
			h.alive = m.Op != OpAddEdge
		}
		switch m.Op {
		case OpAddEdge:
			h.alive = true
			h.last = m
		case OpSetWeight:
			h.last = m
		case OpRemoveEdge:
			h.alive = false
			h.last = Mutation{}
		}
	}
	out := make([]Mutation, 0, vertices+len(orderedKeys))
	for i := 0; i < vertices; i++ {
		out = append(out, Mutation{Op: OpAddVertex})
	}
	for _, k := range orderedKeys {
		h := keys[k]
		existedBefore := h.first.Op != OpAddEdge
		switch {
		case h.alive && !existedBefore:
			out = append(out, Mutation{Op: OpAddEdge, U: k[0], V: k[1], W: h.last.W})
		case h.alive && existedBefore:
			// remove+add or set chains on a pre-existing edge: one set_weight,
			// and only if some op actually changed the weight. An add_edge
			// recorded with the W == 0 default-weight sentinel re-created the
			// edge at weight 1, so the compacted set_weight must say 1
			// explicitly — set_weight has no zero sentinel and rejects w ≤ 0.
			if h.last.Op != "" {
				w := h.last.W
				if h.last.Op == OpAddEdge && w == 0 { //lint:allow floateq zero is the add_edge default-weight sentinel, never computed
					w = 1
				}
				out = append(out, Mutation{Op: OpSetWeight, U: k[0], V: k[1], W: w})
			}
		case !h.alive && existedBefore:
			out = append(out, Mutation{Op: OpRemoveEdge, U: k[0], V: k[1]})
		}
		// !alive && !existedBefore: transient edge, drops out entirely.
	}
	l.muts = out
}

// Fingerprint returns a structural FNV-1a hash of the graph (vertex count,
// orientation, weights, and the full edge list). Any edit to the edge set
// changes it; the server and dynamic engine use it as the graph version.
func Fingerprint(g *Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(g.N))
	flags := uint64(0)
	if g.Directed {
		flags |= 1
	}
	if g.Weighted {
		flags |= 2
	}
	put(flags)
	for _, e := range g.Edges {
		put(uint64(uint32(e.U))<<32 | uint64(uint32(e.V)))
		put(math.Float64bits(e.W))
	}
	return h.Sum64()
}
