package graph

import (
	"math"
	"strings"
	"testing"
)

// square returns the 4-cycle 0-1-2-3-0, undirected and unweighted.
func square() *Graph {
	return &Graph{Name: "square", N: 4, Edges: []Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 3, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	}}
}

func TestAddEdgeValidatesAndDedupes(t *testing.T) {
	g := square()
	if err := g.AddEdge(0, 2, 0); err != nil {
		t.Fatalf("AddEdge(0,2): %v", err)
	}
	if w, ok := g.FindEdge(2, 0); !ok || w != 1 {
		t.Fatalf("FindEdge(2,0) = %v,%v after weight-0 (=1) insert", w, ok)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after AddEdge: %v", err)
	}
	for _, bad := range []struct {
		u, v int32
		w    float64
		want string
	}{
		{0, 2, 1, "already present"},      // duplicate (canonical)
		{2, 0, 1, "already present"},      // duplicate (reversed orientation)
		{1, 1, 1, "self-loop"},            // self-loop
		{0, 9, 1, "outside"},              // out of range
		{-1, 2, 1, "outside"},             // negative id
		{1, 3, -2, "nonpositive"},         // bad weight
		{1, 3, math.NaN(), "nonpositive"}, // NaN fails the w > 0 check
	} {
		err := g.AddEdge(bad.u, bad.v, bad.w)
		if err == nil || !strings.Contains(err.Error(), bad.want) {
			t.Fatalf("AddEdge(%d,%d,%g) = %v, want error containing %q", bad.u, bad.v, bad.w, err, bad.want)
		}
	}
	if g.M() != 5 {
		t.Fatalf("M = %d after failed mutations, want 5", g.M())
	}
}

func TestRemoveAndSetWeight(t *testing.T) {
	g := square()
	if err := g.RemoveEdge(3, 0); err != nil { // reversed orientation resolves
		t.Fatalf("RemoveEdge(3,0): %v", err)
	}
	if _, ok := g.FindEdge(0, 3); ok {
		t.Fatal("edge (0,3) still present after removal")
	}
	if err := g.RemoveEdge(0, 3); err == nil {
		t.Fatal("double remove succeeded")
	}
	if err := g.SetWeight(1, 2, 2.5); err != nil {
		t.Fatalf("SetWeight: %v", err)
	}
	if w, _ := g.FindEdge(1, 2); w != 2.5 {
		t.Fatalf("weight = %v after SetWeight, want 2.5", w)
	}
	if !g.Weighted {
		t.Fatal("Weighted flag not raised by non-unit SetWeight")
	}
	if err := g.SetWeight(0, 3, 1); err == nil {
		t.Fatal("SetWeight on missing edge succeeded")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddVertexAndApplyAll(t *testing.T) {
	g := square()
	id := g.AddVertex()
	if id != 4 || g.N != 5 {
		t.Fatalf("AddVertex = %d, N = %d", id, g.N)
	}
	applied, err := g.ApplyAll([]Mutation{
		{Op: OpAddVertex},
		{Op: OpAddEdge, U: 4, V: 5, W: 3},
		{Op: OpAddEdge, U: 0, V: 4, W: 1},
	})
	if err != nil || applied != 3 {
		t.Fatalf("ApplyAll = %d,%v", applied, err)
	}
	if w, ok := g.FindEdge(5, 4); !ok || w != 3 {
		t.Fatalf("edge to new vertex: %v,%v", w, ok)
	}
	// A failing batch reports the offending index.
	applied, err = g.ApplyAll([]Mutation{
		{Op: OpRemoveEdge, U: 0, V: 1},
		{Op: OpAddEdge, U: 1, V: 1},
	})
	if err == nil || applied != 1 || !strings.Contains(err.Error(), "mutation 1") {
		t.Fatalf("ApplyAll partial = %d,%v", applied, err)
	}
	if err := g.Apply(Mutation{Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDirectedMutationsKeepOrientation(t *testing.T) {
	g := &Graph{Name: "d", N: 3, Directed: true, Edges: []Edge{{U: 1, V: 0, W: 1}}}
	if err := g.AddEdge(2, 0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if _, ok := g.FindEdge(0, 2); ok {
		t.Fatal("directed FindEdge matched the reversed orientation")
	}
	if _, ok := g.FindEdge(2, 0); !ok {
		t.Fatal("directed edge (2,0) missing")
	}
	if err := g.AddEdge(0, 1, 1); err != nil { // anti-parallel to (1,0) is legal
		t.Fatalf("anti-parallel AddEdge: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestMutationsOnUnsortedEdges: mutation methods must work on graphs whose
// edge slice is not in canonical order (hand-built, permuted, ...).
func TestMutationsOnUnsortedEdges(t *testing.T) {
	g := &Graph{Name: "u", N: 4, Edges: []Edge{
		{U: 2, V: 3, W: 1}, {U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	}}
	if err := g.RemoveEdge(1, 0); err != nil {
		t.Fatalf("RemoveEdge on unsorted graph: %v", err)
	}
	if w, ok := g.FindEdge(2, 3); !ok || w != 1 {
		t.Fatalf("FindEdge(2,3) = %v,%v", w, ok)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestCloneIsolatesMutations(t *testing.T) {
	g := square()
	c := g.Clone()
	if err := c.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEdge(0, 2, 7); err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 || g.Weighted {
		t.Fatalf("original mutated through clone: m=%d weighted=%v", g.M(), g.Weighted)
	}
	if Fingerprint(g) == Fingerprint(c) {
		t.Fatal("clone mutation did not change the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	g := square()
	base := Fingerprint(g)
	c := g.Clone()
	if err := c.SetWeight(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(c) == base {
		t.Fatal("weight change invisible to fingerprint")
	}
	c2 := g.Clone()
	c2.AddVertex()
	if Fingerprint(c2) == base {
		t.Fatal("vertex count change invisible to fingerprint")
	}
	if Fingerprint(g.Clone()) != base {
		t.Fatal("clone fingerprint differs from original")
	}
}

// replay applies a log to a clone of g and returns the result.
func replay(t *testing.T, g *Graph, muts []Mutation) *Graph {
	t.Helper()
	c := g.Clone()
	if _, err := c.ApplyAll(muts); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return c
}

func TestMutationLogCompact(t *testing.T) {
	g := square()
	var log MutationLog
	seq := []Mutation{
		{Op: OpAddVertex},                   // 4
		{Op: OpAddEdge, U: 0, V: 4, W: 2},   // transient: removed below
		{Op: OpAddEdge, U: 1, V: 4, W: 1},   // survives
		{Op: OpSetWeight, U: 1, V: 4, W: 5}, // folded into the add
		{Op: OpRemoveEdge, U: 0, V: 4},      // cancels the transient add
		{Op: OpRemoveEdge, U: 0, V: 1},      // pre-existing: stays a remove
		{Op: OpSetWeight, U: 2, V: 3, W: 2}, // chained sets keep the last
		{Op: OpSetWeight, U: 2, V: 3, W: 9}, //
		{Op: OpRemoveEdge, U: 0, V: 3},      // remove+add on pre-existing edge
		{Op: OpAddEdge, U: 0, V: 3, W: 4},   //   → one set_weight
	}
	log.Append(seq...)
	want := replay(t, g, log.Mutations())

	log.Compact(false)
	if log.Len() >= len(seq) {
		t.Fatalf("Compact did not shrink: %d → %d", len(seq), log.Len())
	}
	got := replay(t, g, log.Mutations())
	if Fingerprint(got) != Fingerprint(want) {
		t.Fatalf("compacted replay differs:\n got %+v\nwant %+v", got, want)
	}
	// Compaction is idempotent.
	n := log.Len()
	log.Compact(false)
	if log.Len() != n {
		t.Fatalf("second Compact changed length %d → %d", n, log.Len())
	}
}

// TestMutationLogCompactMixedOrientation: on undirected graphs, (u,v) and
// (v,u) in the log name the same edge; compaction must merge their
// histories, not split them into a corrupting pair.
func TestMutationLogCompactMixedOrientation(t *testing.T) {
	g := &Graph{Name: "pair", N: 4}
	var log MutationLog
	log.Append(
		Mutation{Op: OpAddEdge, U: 1, V: 3, W: 5},
		Mutation{Op: OpRemoveEdge, U: 3, V: 1}, // same edge, reversed
		Mutation{Op: OpAddEdge, U: 1, V: 3, W: 2},
	)
	want := replay(t, g, log.Mutations())
	log.Compact(false)
	got := replay(t, g, log.Mutations())
	if Fingerprint(got) != Fingerprint(want) {
		t.Fatalf("mixed-orientation compaction corrupts replay:\n got %+v\nwant %+v", got, want)
	}
	if log.Len() != 1 {
		t.Fatalf("log len = %d after compaction, want 1 (single surviving add)", log.Len())
	}
	// Directed graphs keep (1,3) and (3,1) distinct.
	dg := &Graph{Name: "dpair", N: 4, Directed: true}
	var dlog MutationLog
	dlog.Append(
		Mutation{Op: OpAddEdge, U: 1, V: 3, W: 5},
		Mutation{Op: OpAddEdge, U: 3, V: 1, W: 2}, // anti-parallel, distinct
	)
	dwant := replay(t, dg, dlog.Mutations())
	dlog.Compact(true)
	dgot := replay(t, dg, dlog.Mutations())
	if Fingerprint(dgot) != Fingerprint(dwant) || dlog.Len() != 2 {
		t.Fatalf("directed compaction merged anti-parallel edges: len=%d", dlog.Len())
	}
}

// TestFindEdgeIsReadOnly: FindEdge must not reorder the edge slice (it
// runs against shared immutable snapshots).
func TestFindEdgeIsReadOnly(t *testing.T) {
	g := &Graph{Name: "u", N: 4, Edges: []Edge{
		{U: 2, V: 3, W: 1}, {U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	}}
	before := append([]Edge(nil), g.Edges...)
	if _, ok := g.FindEdge(1, 0); !ok {
		t.Fatal("FindEdge missed an existing edge on an unsorted slice")
	}
	if _, ok := g.FindEdge(3, 0); ok {
		t.Fatal("FindEdge invented an edge")
	}
	for i, e := range g.Edges {
		if e != before[i] {
			t.Fatalf("FindEdge reordered the edge slice: %+v vs %+v", g.Edges, before)
		}
	}
}
