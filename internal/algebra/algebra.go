// Package algebra defines the algebraic structures used by the MFBC
// betweenness-centrality algorithms of Solomonik et al. (SC'17):
// commutative monoids, the multpath and centpath monoids, and the
// Bellman-Ford and Brandes monoid actions that parameterize the
// generalized sparse matrix product C = A •⟨⊕,f⟩ B.
package algebra

import "math"

// Inf is the additive identity of the tropical semiring: the weight of a
// nonexistent path.
var Inf = math.Inf(1)

// Weight is the path-weight domain W ⊂ R ∪ {∞}. Finite weights must be
// strictly positive for the MFBC algorithms to be correct (shortest walks
// revisiting a vertex must be strictly longer than the walk that skips the
// revisit).
type Weight = float64

// Monoid is a commutative monoid (S, Op) with an identity element and a
// sparsity predicate: IsZero reports whether an element is equivalent to the
// identity and may be dropped from a sparse data structure.
type Monoid[T any] struct {
	Identity T
	Op       func(T, T) T
	IsZero   func(T) bool
}

// Fold combines xs with the monoid operation, returning Identity for an
// empty slice.
func (m Monoid[T]) Fold(xs ...T) T {
	acc := m.Identity
	for _, x := range xs {
		acc = m.Op(acc, x)
	}
	return acc
}

// MultPath is an element of the multpath monoid (M, ⊕): a path weight W
// together with the multiplicity M of distinct shortest paths achieving it.
// The multiplicity is held in a float64 (exact for counts below 2^53, the
// same representation CombBLAS uses) because shortest-path multiplicities
// grow multiplicatively.
type MultPath struct {
	W Weight
	M float64
}

// MultPathZero is the identity of ⊕: no path.
func MultPathZero() MultPath { return MultPath{W: Inf, M: 0} }

// MultPathPlus is the ⊕ operator of the multpath monoid: the lower-weight
// operand wins; equal weights sum their multiplicities.
func MultPathPlus(x, y MultPath) MultPath {
	switch {
	case x.W < y.W:
		return x
	case x.W > y.W:
		return y
	default:
		return MultPath{W: x.W, M: x.M + y.M}
	}
}

// MultPathIsZero reports whether x carries no path information.
func MultPathIsZero(x MultPath) bool { return math.IsInf(x.W, 1) || x.M == 0 }

// MultPathMonoid is the multpath monoid packaged for generic kernels.
func MultPathMonoid() Monoid[MultPath] {
	return Monoid[MultPath]{Identity: MultPathZero(), Op: MultPathPlus, IsZero: MultPathIsZero}
}

// BFAction is the Bellman-Ford action f : M × W → M of the weight monoid
// (W,+) on multpaths: it appends one edge of weight w to the path a,
// preserving the multiplicity.
func BFAction(a MultPath, w Weight) MultPath { return MultPath{W: a.W + w, M: a.M} }

// CentPath is an element of the centpath monoid (C, ⊗): a path weight W, a
// partial centrality factor P (converging to ζ(s,v) = δ(s,v)/σ̄(s,v)), and a
// counter C tracking how many shortest-path-DAG children of the vertex have
// not yet reported their centrality.
type CentPath struct {
	W Weight
	P float64
	C int64
}

// CentPathZero is the identity of ⊗. Because ⊗ keeps the *higher*-weight
// operand (the paper's formal definition; its prose is inverted), the
// identity carries weight −∞.
func CentPathZero() CentPath { return CentPath{W: math.Inf(-1)} }

// CentPathTimes is the ⊗ operator of the centpath monoid: the higher-weight
// operand wins; equal weights sum both the partial centrality factors and
// the counters. Keeping the higher weight is what screens out spurious
// back-propagation contributions, whose weights T(s,u).w − w(v,u) are
// strictly below T(s,v).w whenever (v,u) is not a shortest-path-DAG edge.
func CentPathTimes(x, y CentPath) CentPath {
	switch {
	case x.W > y.W:
		return x
	case x.W < y.W:
		return y
	default:
		return CentPath{W: x.W, P: x.P + y.P, C: x.C + y.C}
	}
}

// CentPathIsZero reports whether x carries no centrality information.
func CentPathIsZero(x CentPath) bool { return math.IsInf(x.W, -1) }

// CentPathMonoid is the centpath monoid packaged for generic kernels.
func CentPathMonoid() Monoid[CentPath] {
	return Monoid[CentPath]{Identity: CentPathZero(), Op: CentPathTimes, IsZero: CentPathIsZero}
}

// BrandesAction is the Brandes action g : C × W → C of the weight monoid
// (W,+) on centpaths: back-propagation of a centrality factor across one
// edge of weight w subtracts the edge weight, preserving factor and counter.
func BrandesAction(a CentPath, w Weight) CentPath {
	return CentPath{W: a.W - w, P: a.P, C: a.C}
}

// TropicalMin is the ⊕ of the tropical semiring (W, min, +), used by the
// adjacency matrix structure and by baseline shortest-path codes.
func TropicalMin(x, y Weight) Weight {
	if x < y {
		return x
	}
	return y
}

// TropicalMonoid is (W, min) with identity ∞.
func TropicalMonoid() Monoid[Weight] {
	return Monoid[Weight]{
		Identity: Inf,
		Op:       TropicalMin,
		IsZero:   func(w Weight) bool { return math.IsInf(w, 1) },
	}
}

// CountPlus is ordinary addition on float64 path counts with zero-identity,
// the monoid used by the CombBLAS-style BFS baseline.
func CountMonoid() Monoid[float64] {
	return Monoid[float64]{
		Identity: 0,
		Op:       func(x, y float64) float64 { return x + y },
		IsZero:   func(x float64) bool { return x == 0 },
	}
}
