// The pair semiring: every element carries an independent Old and New
// component, one per side of an incremental graph update. A single fused
// sweep over pair values computes the pre-batch and post-batch dependency
// contributions simultaneously — both sides ride the same supersteps, so
// the latency term of the §5.1 cost model is paid once instead of twice.
//
// All pair operations act componentwise and the component identities are
// exact absorbing/neutral elements (∞ weights, zero multiplicities), so a
// component that is dead on one side folds as an exact no-op: the live
// component's floating-point operation sequence is bit-identical to the
// sequence a scalar sweep over that side alone would execute (given the
// same decomposition plan). core's fused incremental path relies on this.
package algebra

import "math"

// WeightPair is one edge of the fused old/new adjacency operand: the edge
// weight on each side, with Inf marking absence on that side.
type WeightPair struct {
	Old, New Weight
}

// WeightPairZero is the identity of the pair tropical monoid: absent on
// both sides.
func WeightPairZero() WeightPair { return WeightPair{Old: Inf, New: Inf} }

// WeightPairMonoid is (W×W, min×min) with identity (∞, ∞).
func WeightPairMonoid() Monoid[WeightPair] {
	return Monoid[WeightPair]{
		Identity: WeightPairZero(),
		Op: func(x, y WeightPair) WeightPair {
			return WeightPair{Old: TropicalMin(x.Old, y.Old), New: TropicalMin(x.New, y.New)}
		},
		IsZero: func(w WeightPair) bool { return w.Old == Inf && w.New == Inf },
	}
}

// MultPathPair carries a multpath per side.
type MultPathPair struct {
	Old, New MultPath
}

// MultPathPairZero is the identity of the pair ⊕: no path on either side.
func MultPathPairZero() MultPathPair {
	return MultPathPair{Old: MultPathZero(), New: MultPathZero()}
}

// MultPathPairIsZero reports that neither side carries path information.
func MultPathPairIsZero(x MultPathPair) bool {
	return MultPathIsZero(x.Old) && MultPathIsZero(x.New)
}

// MultPathPairMonoid is the componentwise multpath monoid. An entry is
// sparse-droppable only when both sides are zero, so entries live on one
// side survive with an exact identity in the other component.
func MultPathPairMonoid() Monoid[MultPathPair] {
	return Monoid[MultPathPair]{
		Identity: MultPathPairZero(),
		Op: func(x, y MultPathPair) MultPathPair {
			return MultPathPair{Old: MultPathPlus(x.Old, y.Old), New: MultPathPlus(x.New, y.New)}
		},
		IsZero: MultPathPairIsZero,
	}
}

// BFActionPair appends one pair edge to a pair path componentwise. A side
// where either operand is absent yields that side's exact zero.
func BFActionPair(a MultPathPair, w WeightPair) MultPathPair {
	return MultPathPair{Old: bfSide(a.Old, w.Old), New: bfSide(a.New, w.New)}
}

// bfSide is BFAction normalized so a dead result is the exact component
// zero: an ∞-weight result must not retain a multiplicity that a later
// ∞-weight tie could sum into a live-looking value.
func bfSide(a MultPath, w Weight) MultPath {
	out := BFAction(a, w)
	if MultPathIsZero(out) {
		return MultPathZero()
	}
	return out
}

// CentPathPair carries a centpath per side.
type CentPathPair struct {
	Old, New CentPath
}

// CentPathPairZero is the identity of the pair ⊗.
func CentPathPairZero() CentPathPair {
	return CentPathPair{Old: CentPathZero(), New: CentPathZero()}
}

// CentPathPairIsZero reports that neither side carries centrality
// information.
func CentPathPairIsZero(x CentPathPair) bool {
	return CentPathIsZero(x.Old) && CentPathIsZero(x.New)
}

// CentPathPairMonoid is the componentwise centpath monoid.
func CentPathPairMonoid() Monoid[CentPathPair] {
	return Monoid[CentPathPair]{
		Identity: CentPathPairZero(),
		Op: func(x, y CentPathPair) CentPathPair {
			return CentPathPair{Old: CentPathTimes(x.Old, y.Old), New: CentPathTimes(x.New, y.New)}
		},
		IsZero: CentPathPairIsZero,
	}
}

// BrandesActionPair back-propagates a pair centrality factor across one
// pair edge componentwise. A side with an absent edge (∞ weight) drops to
// −∞ and is screened as zero; a dead side stays dead (−∞ − w = −∞).
func BrandesActionPair(a CentPathPair, w WeightPair) CentPathPair {
	return CentPathPair{Old: brandesSide(a.Old, w.Old), New: brandesSide(a.New, w.New)}
}

// brandesSide is BrandesAction with absent-edge screening: subtracting an
// ∞ edge weight from a finite path weight would produce −∞ with a live P
// component, which CentPathIsZero would classify as zero but whose P could
// still leak through a later tie; map it to the exact component zero.
func brandesSide(a CentPath, w Weight) CentPath {
	if CentPathIsZero(a) || math.IsInf(w, 1) {
		return CentPathZero()
	}
	return BrandesAction(a, w)
}
