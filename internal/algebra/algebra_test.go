package algebra

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickMP wraps MultPath with a quick.Generator drawing from a small weight
// lattice so that ties (the interesting case) are common.
type quickMP MultPath

func (quickMP) Generate(r *rand.Rand, _ int) reflect.Value {
	v := quickMP(MultPathZero())
	if r.Intn(8) != 0 {
		v = quickMP{W: float64(1 + r.Intn(5)), M: float64(1 + r.Intn(4))}
	}
	return reflect.ValueOf(v)
}

// quickCP wraps CentPath likewise.
type quickCP CentPath

func (quickCP) Generate(r *rand.Rand, _ int) reflect.Value {
	v := quickCP(CentPathZero())
	if r.Intn(8) != 0 {
		v = quickCP{W: float64(1 + r.Intn(5)), P: float64(r.Intn(5)), C: int64(r.Intn(4))}
	}
	return reflect.ValueOf(v)
}

var quickCfg = &quick.Config{MaxCount: 4000}

func TestMultPathMonoidLaws(t *testing.T) {
	commutative := func(a, b quickMP) bool {
		return MultPathPlus(MultPath(a), MultPath(b)) == MultPathPlus(MultPath(b), MultPath(a))
	}
	if err := quick.Check(commutative, quickCfg); err != nil {
		t.Errorf("⊕ not commutative: %v", err)
	}
	associative := func(a, b, c quickMP) bool {
		x, y, z := MultPath(a), MultPath(b), MultPath(c)
		return MultPathPlus(MultPathPlus(x, y), z) == MultPathPlus(x, MultPathPlus(y, z))
	}
	if err := quick.Check(associative, quickCfg); err != nil {
		t.Errorf("⊕ not associative: %v", err)
	}
	identity := func(a quickMP) bool {
		return MultPathPlus(MultPath(a), MultPathZero()) == MultPath(a)
	}
	if err := quick.Check(identity, quickCfg); err != nil {
		t.Errorf("⊕ identity law failed: %v", err)
	}
}

func TestCentPathMonoidLaws(t *testing.T) {
	commutative := func(a, b quickCP) bool {
		return CentPathTimes(CentPath(a), CentPath(b)) == CentPathTimes(CentPath(b), CentPath(a))
	}
	if err := quick.Check(commutative, quickCfg); err != nil {
		t.Errorf("⊗ not commutative: %v", err)
	}
	associative := func(a, b, c quickCP) bool {
		x, y, z := CentPath(a), CentPath(b), CentPath(c)
		return CentPathTimes(CentPathTimes(x, y), z) == CentPathTimes(x, CentPathTimes(y, z))
	}
	if err := quick.Check(associative, quickCfg); err != nil {
		t.Errorf("⊗ not associative: %v", err)
	}
	identity := func(a quickCP) bool {
		return CentPathTimes(CentPath(a), CentPathZero()) == CentPath(a)
	}
	if err := quick.Check(identity, quickCfg); err != nil {
		t.Errorf("⊗ identity law failed: %v", err)
	}
}

// The Bellman-Ford action is a monoid action: f(f(a,w1),w2) = f(a,w1+w2)
// and it distributes over ⊕ on the weight-tie structure.
func TestBFActionIsMonoidAction(t *testing.T) {
	composed := func(a quickMP, w1, w2 uint8) bool {
		x := MultPath(a)
		u, v := float64(w1%16), float64(w2%16)
		return BFAction(BFAction(x, u), v) == BFAction(x, u+v)
	}
	if err := quick.Check(composed, quickCfg); err != nil {
		t.Errorf("f not an action of (W,+): %v", err)
	}
	distributes := func(a, b quickMP, w uint8) bool {
		x, y := MultPath(a), MultPath(b)
		u := float64(w % 16)
		return BFAction(MultPathPlus(x, y), u) == MultPathPlus(BFAction(x, u), BFAction(y, u))
	}
	if err := quick.Check(distributes, quickCfg); err != nil {
		t.Errorf("f does not distribute over ⊕: %v", err)
	}
}

func TestBrandesActionIsMonoidAction(t *testing.T) {
	composed := func(a quickCP, w1, w2 uint8) bool {
		x := CentPath(a)
		u, v := float64(w1%16), float64(w2%16)
		return BrandesAction(BrandesAction(x, u), v) == BrandesAction(x, u+v)
	}
	if err := quick.Check(composed, quickCfg); err != nil {
		t.Errorf("g not an action of (W,+): %v", err)
	}
}

func TestMultPathSemantics(t *testing.T) {
	a := MultPath{W: 2, M: 3}
	b := MultPath{W: 2, M: 5}
	c := MultPath{W: 1, M: 1}
	if got := MultPathPlus(a, b); got.W != 2 || got.M != 8 {
		t.Fatalf("tie must sum multiplicities, got %v", got)
	}
	if got := MultPathPlus(a, c); got != c {
		t.Fatalf("lower weight must win, got %v", got)
	}
	if !MultPathIsZero(MultPathZero()) || MultPathIsZero(a) {
		t.Fatal("IsZero misclassifies")
	}
	if got := BFAction(a, 4.5); got.W != 6.5 || got.M != 3 {
		t.Fatalf("Bellman-Ford action wrong: %v", got)
	}
}

func TestCentPathSemantics(t *testing.T) {
	a := CentPath{W: 3, P: 0.5, C: 2}
	b := CentPath{W: 3, P: 0.25, C: -1}
	lo := CentPath{W: 1, P: 9, C: 9}
	if got := CentPathTimes(a, b); got.W != 3 || got.P != 0.75 || got.C != 1 {
		t.Fatalf("⊗ tie wrong: %v", got)
	}
	// The *higher* weight wins (the paper's formalism; its prose is
	// inverted) — this is what screens spurious back-propagation.
	if got := CentPathTimes(a, lo); got != a {
		t.Fatalf("higher weight must win, got %v", got)
	}
	if got := BrandesAction(a, 1.5); got.W != 1.5 || got.P != 0.5 || got.C != 2 {
		t.Fatalf("Brandes action wrong: %v", got)
	}
}

func TestTropicalMonoid(t *testing.T) {
	m := TropicalMonoid()
	if m.Op(3, 5) != 3 || m.Op(5, 3) != 3 {
		t.Fatal("tropical min wrong")
	}
	if !m.IsZero(m.Identity) || m.IsZero(7) {
		t.Fatal("tropical zero wrong")
	}
	if !math.IsInf(m.Identity, 1) {
		t.Fatal("tropical identity must be +inf")
	}
}

func TestFold(t *testing.T) {
	m := MultPathMonoid()
	if got := m.Fold(); !MultPathIsZero(got) {
		t.Fatal("empty fold must be identity")
	}
	got := m.Fold(MultPath{W: 4, M: 1}, MultPath{W: 2, M: 2}, MultPath{W: 2, M: 3})
	if got.W != 2 || got.M != 5 {
		t.Fatalf("fold wrong: %v", got)
	}
	cm := CountMonoid()
	if cm.Op(2, 3) != 5 || !cm.IsZero(0) || cm.IsZero(1) {
		t.Fatal("count monoid wrong")
	}
}
