package algebra

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type quickMPP MultPathPair

func (quickMPP) Generate(r *rand.Rand, sz int) reflect.Value {
	side := func() MultPath {
		if r.Intn(8) == 0 {
			return MultPathZero()
		}
		return MultPath{W: float64(1 + r.Intn(5)), M: float64(1 + r.Intn(4))}
	}
	return reflect.ValueOf(quickMPP{Old: side(), New: side()})
}

type quickCPP CentPathPair

func (quickCPP) Generate(r *rand.Rand, sz int) reflect.Value {
	side := func() CentPath {
		if r.Intn(8) == 0 {
			return CentPathZero()
		}
		return CentPath{W: float64(1 + r.Intn(5)), P: float64(r.Intn(5)), C: int64(r.Intn(4))}
	}
	return reflect.ValueOf(quickCPP{Old: side(), New: side()})
}

func TestMultPathPairMonoidLaws(t *testing.T) {
	m := MultPathPairMonoid()
	commutative := func(a, b quickMPP) bool {
		return m.Op(MultPathPair(a), MultPathPair(b)) == m.Op(MultPathPair(b), MultPathPair(a))
	}
	if err := quick.Check(commutative, quickCfg); err != nil {
		t.Errorf("pair ⊕ not commutative: %v", err)
	}
	associative := func(a, b, c quickMPP) bool {
		x, y, z := MultPathPair(a), MultPathPair(b), MultPathPair(c)
		return m.Op(m.Op(x, y), z) == m.Op(x, m.Op(y, z))
	}
	if err := quick.Check(associative, quickCfg); err != nil {
		t.Errorf("pair ⊕ not associative: %v", err)
	}
	identity := func(a quickMPP) bool {
		return m.Op(MultPathPair(a), m.Identity) == MultPathPair(a)
	}
	if err := quick.Check(identity, quickCfg); err != nil {
		t.Errorf("pair ⊕ identity law failed: %v", err)
	}
}

func TestCentPathPairMonoidLaws(t *testing.T) {
	m := CentPathPairMonoid()
	commutative := func(a, b quickCPP) bool {
		return m.Op(CentPathPair(a), CentPathPair(b)) == m.Op(CentPathPair(b), CentPathPair(a))
	}
	if err := quick.Check(commutative, quickCfg); err != nil {
		t.Errorf("pair ⊗ not commutative: %v", err)
	}
	associative := func(a, b, c quickCPP) bool {
		x, y, z := CentPathPair(a), CentPathPair(b), CentPathPair(c)
		return m.Op(m.Op(x, y), z) == m.Op(x, m.Op(y, z))
	}
	if err := quick.Check(associative, quickCfg); err != nil {
		t.Errorf("pair ⊗ not associative: %v", err)
	}
}

// Pair folds over live-on-one-side values must be bit-identical to scalar
// folds of the live side: the dead component is an exact no-op.
func TestPairComponentIndependence(t *testing.T) {
	mp := MultPathMonoid()
	mpp := MultPathPairMonoid()
	scalar := []MultPath{{W: 2, M: 1}, {W: 2, M: 3}, {W: 4, M: 9}}
	lifted := []MultPathPair{
		{Old: scalar[0], New: MultPathZero()},
		{Old: scalar[1], New: MultPath{W: 1, M: 5}},
		{Old: scalar[2], New: MultPathZero()},
	}
	want := mp.Fold(scalar...)
	got := mpp.Fold(lifted...)
	if got.Old != want {
		t.Fatalf("old component diverged: %v vs %v", got.Old, want)
	}
	if got.New != (MultPath{W: 1, M: 5}) {
		t.Fatalf("new component wrong: %v", got.New)
	}
}

func TestBFActionPairKillsAbsentSides(t *testing.T) {
	a := MultPathPair{Old: MultPath{W: 3, M: 2}, New: MultPath{W: 3, M: 2}}
	got := BFActionPair(a, WeightPair{Old: 1.5, New: Inf})
	if got.Old != (MultPath{W: 4.5, M: 2}) {
		t.Fatalf("live side wrong: %v", got.Old)
	}
	if got.New != MultPathZero() {
		t.Fatalf("absent edge must produce the exact zero, got %v", got.New)
	}
}

func TestBrandesActionPairKillsAbsentSides(t *testing.T) {
	a := CentPathPair{Old: CentPath{W: 5, P: 0.5, C: 1}, New: CentPath{W: 5, P: 0.5, C: 1}}
	got := BrandesActionPair(a, WeightPair{Old: Inf, New: 2})
	if got.Old != CentPathZero() {
		t.Fatalf("absent edge must produce the exact zero, got %v", got.Old)
	}
	if got.New != (CentPath{W: 3, P: 0.5, C: 1}) {
		t.Fatalf("live side wrong: %v", got.New)
	}
	dead := BrandesActionPair(CentPathPairZero(), WeightPair{Old: 1, New: 1})
	if !CentPathPairIsZero(dead) {
		t.Fatalf("dead input must stay dead, got %v", dead)
	}
}

func TestWeightPairMonoid(t *testing.T) {
	m := WeightPairMonoid()
	got := m.Op(WeightPair{Old: 3, New: Inf}, WeightPair{Old: 5, New: 2})
	if got != (WeightPair{Old: 3, New: 2}) {
		t.Fatalf("componentwise min wrong: %v", got)
	}
	if !m.IsZero(m.Identity) || m.IsZero(got) {
		t.Fatal("IsZero misclassifies")
	}
}
