package baseline

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// CombBLASStyle computes betweenness centrality with the batched algebraic
// Brandes formulation used by the CombBLAS BC code the paper benchmarks
// against: BFS levels expressed as sparse matrix products over the counting
// semiring on the forward sweep (storing every level's frontier), followed
// by a level-by-level backward dependency sweep. Like CombBLAS, it supports
// only unweighted graphs.
//
// batch is the number of sources processed per sweep (CombBLAS's
// "batch size"); batch ≤ 0 selects min(n, 128).
func CombBLASStyle(g *graph.Graph, batch int) ([]float64, error) {
	if g.Weighted {
		return nil, fmt.Errorf("combblas: weighted graphs are not supported (the paper's CombBLAS limitation)")
	}
	if batch <= 0 {
		batch = 128
	}
	if batch > g.N {
		batch = g.N
	}
	a := g.Adjacency()
	at := sparse.Transpose(a)
	bc := make([]float64, g.N)
	for lo := 0; lo < g.N; lo += batch {
		hi := lo + batch
		if hi > g.N {
			hi = g.N
		}
		sources := make([]int32, 0, hi-lo)
		for s := lo; s < hi; s++ {
			sources = append(sources, int32(s))
		}
		CombBLASBatch(a, at, sources, bc)
	}
	return bc, nil
}

// CombBLASBatch runs one forward+backward sweep for the given sources,
// accumulating dependencies into bc. Exposed so the benchmark harness can
// time a single batch the way the paper's Table 3 does.
func CombBLASBatch(a, at *sparse.CSR[float64], sources []int32, bc []float64) {
	count := algebra.CountMonoid()
	n := a.Rows
	nb := len(sources)
	// Forward BFS sweep over the counting semiring: frontier_{l+1}(s,v) =
	// Σ_u frontier_l(s,u)·[edge u→v], restricted to unvisited vertices.
	f0 := sparse.NewCOO[float64](nb, n)
	for s, src := range sources {
		f0.Append(int32(s), src, 1)
	}
	frontier := sparse.FromCOO(f0, count)
	nsp := frontier // σ̄: number of shortest paths discovered so far
	levels := []*sparse.CSR[float64]{frontier}
	for frontier.NNZ() > 0 {
		next, _ := sparse.Mul(frontier, a, func(x, _ float64) float64 { return x }, count)
		next = sparse.Mask(next, nsp, false)
		if next.NNZ() == 0 {
			break
		}
		nsp = sparse.EWise(nsp, next, count)
		levels = append(levels, next)
		frontier = next
	}
	// Backward dependency sweep, deepest level first:
	//   u = ((level_l ∘ (1+δ)/σ̄) · Aᵀ) ∘ level_{l-1} ∘ σ̄
	delta := &sparse.CSR[float64]{Rows: nb, Cols: n, RowPtr: make([]int64, nb+1)}
	for l := len(levels) - 1; l >= 1; l-- {
		w := sparse.Map(levels[l], count, func(i, j int32, _ float64) float64 {
			d, _ := delta.Get(i, j)
			ns, _ := nsp.Get(i, j)
			return (1 + d) / ns
		})
		u, _ := sparse.Mul(w, at, func(x, _ float64) float64 { return x }, count)
		u = sparse.Mask(u, levels[l-1], true)
		u = sparse.Map(u, count, func(i, j int32, v float64) float64 {
			ns, _ := nsp.Get(i, j)
			return v * ns
		})
		delta = sparse.EWise(delta, u, count)
	}
	for s := range sources {
		cols, vals := delta.Row(s)
		for k, col := range cols {
			if col != sources[s] {
				bc[col] += vals[k]
			}
		}
	}
}
