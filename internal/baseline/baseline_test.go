package baseline

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

func TestBrandesClosedForms(t *testing.T) {
	// Path: interior vertex i lies between 2·i·(n-1-i) ordered pairs.
	g := graph.Path(7)
	bc := Brandes(g)
	for i := 0; i < 7; i++ {
		want := float64(2 * i * (6 - i))
		if !almostEqual(bc[i], want) {
			t.Fatalf("path BC[%d]=%g want %g", i, bc[i], want)
		}
	}
	// Star: hub between all ordered spoke pairs.
	s := graph.Star(9)
	bcs := Brandes(s)
	if !almostEqual(bcs[0], float64(8*7)) {
		t.Fatalf("star hub BC=%g want %d", bcs[0], 8*7)
	}
	// Complete graph: nobody is an intermediary.
	k := graph.Uniform(6, 15, false, 1) // 6 choose 2 = 15: complete
	for v, x := range Brandes(k) {
		if x != 0 {
			t.Fatalf("K6 BC[%d]=%g want 0", v, x)
		}
	}
}

func TestBrandesWeightedMatchesUnitWeights(t *testing.T) {
	// With all weights equal, weighted and unweighted Brandes must agree.
	g := graph.RMAT(graph.DefaultRMAT(6, 6, 3))
	unweighted := Brandes(g)
	g.Weighted = true
	for i := range g.Edges {
		g.Edges[i].W = 2.5
	}
	weighted := Brandes(g)
	for v := range unweighted {
		if !almostEqual(unweighted[v], weighted[v]) {
			t.Fatalf("BC[%d]: unweighted %g vs uniform-weighted %g", v, unweighted[v], weighted[v])
		}
	}
}

func TestBrandesSourcesPartition(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 5, 7))
	full := Brandes(g)
	part := make([]float64, g.N)
	for lo := 0; lo < g.N; lo += 17 {
		hi := lo + 17
		if hi > g.N {
			hi = g.N
		}
		var srcs []int32
		for s := lo; s < hi; s++ {
			srcs = append(srcs, int32(s))
		}
		chunk := BrandesSources(g, srcs)
		for v := range chunk {
			part[v] += chunk[v]
		}
	}
	for v := range full {
		if !almostEqual(full[v], part[v]) {
			t.Fatalf("source partition broke at %d: %g vs %g", v, part[v], full[v])
		}
	}
}

func TestDistCombBLASMatchesBrandes(t *testing.T) {
	for _, p := range []int{1, 4, 9, 16} {
		g := graph.RMAT(graph.DefaultRMAT(6, 7, int64(p)))
		want := Brandes(g)
		got, err := CombBLASStyleDistributed(g, DistCombBLASOptions{Procs: p, Batch: 32})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for v := range want {
			if !almostEqual(got.BC[v], want[v]) {
				t.Fatalf("p=%d: BC[%d]=%g want %g", p, v, got.BC[v], want[v])
			}
		}
		if p > 1 && (got.Stats.MaxCost.Bytes == 0 || got.Stats.MaxCost.Msgs == 0) {
			t.Fatalf("p=%d: no communication charged", p)
		}
	}
}

func TestDistCombBLASDirected(t *testing.T) {
	opt := graph.DefaultRMAT(6, 5, 11)
	opt.Directed = true
	g := graph.RMAT(opt)
	want := Brandes(g)
	got, err := CombBLASStyleDistributed(g, DistCombBLASOptions{Procs: 4, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if !almostEqual(got.BC[v], want[v]) {
			t.Fatalf("BC[%d]=%g want %g", v, got.BC[v], want[v])
		}
	}
}

func TestDistCombBLASRejectsWeighted(t *testing.T) {
	g := graph.Grid2D(3, 3, 5, 1)
	if _, err := CombBLASStyleDistributed(g, DistCombBLASOptions{Procs: 4}); err == nil {
		t.Fatal("weighted graph must be rejected")
	}
}

func TestSquarest2D(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 16: {4, 4}, 64: {8, 8}, 12: {3, 4}, 7: {1, 7}}
	for p, want := range cases {
		pr, pc := squarest2D(p)
		if pr*pc != p || (pr != want[0] && pr != want[1]) {
			t.Fatalf("squarest2D(%d) = (%d,%d), want %v", p, pr, pc, want)
		}
	}
}
