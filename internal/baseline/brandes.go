// Package baseline implements the comparison algorithms of the paper's
// evaluation: the textbook Brandes betweenness-centrality algorithm
// (BFS-based for unweighted graphs, Dijkstra-based for weighted ones), used
// as the correctness oracle throughout the test suite, and a CombBLAS-style
// batched algebraic BC (see combblas.go).
package baseline

import (
	"container/heap"

	"repro/internal/graph"
)

// Brandes computes exact betweenness centrality scores
//
//	λ(v) = Σ_{s,t ∈ V} σ(s,t,v) / σ̄(s,t)
//
// over ordered (s,t) pairs, endpoints excluded — the same convention as the
// paper's MFBC (undirected graphs therefore count each unordered pair
// twice). It dispatches on g.Weighted.
func Brandes(g *graph.Graph) []float64 {
	if g.Weighted {
		return brandesDijkstra(g)
	}
	return brandesBFS(g)
}

// BrandesSources computes the partial centrality contribution
// Σ_{s ∈ sources} δ(s,·), used to validate batched engines batch by batch.
func BrandesSources(g *graph.Graph, sources []int32) []float64 {
	adj, wts := g.OutAdjacencyLists()
	bc := make([]float64, g.N)
	if g.Weighted {
		for _, s := range sources {
			dijkstraAccumulate(adj, wts, s, bc)
		}
	} else {
		for _, s := range sources {
			bfsAccumulate(adj, s, bc)
		}
	}
	return bc
}

func brandesBFS(g *graph.Graph) []float64 {
	adj, _ := g.OutAdjacencyLists()
	bc := make([]float64, g.N)
	for s := 0; s < g.N; s++ {
		bfsAccumulate(adj, int32(s), bc)
	}
	return bc
}

func bfsAccumulate(adj [][]int32, s int32, bc []float64) {
	n := len(adj)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	pred := make([][]int32, n)
	stack := make([]int32, 0, n)
	sigma[s] = 1
	dist[s] = 0
	queue := []int32{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		stack = append(stack, u)
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
				pred[v] = append(pred[v], u)
			}
		}
	}
	delta := make([]float64, n)
	for i := len(stack) - 1; i >= 0; i-- {
		w := stack[i]
		for _, u := range pred[w] {
			delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
		}
		if w != s {
			bc[w] += delta[w]
		}
	}
}

type pqItem struct {
	v    int32
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func brandesDijkstra(g *graph.Graph) []float64 {
	adj, wts := g.OutAdjacencyLists()
	bc := make([]float64, g.N)
	for s := 0; s < g.N; s++ {
		dijkstraAccumulate(adj, wts, int32(s), bc)
	}
	return bc
}

func dijkstraAccumulate(adj [][]int32, wts [][]float64, s int32, bc []float64) {
	n := len(adj)
	const unset = -1.0
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = unset
	}
	sigma := make([]float64, n)
	pred := make([][]int32, n)
	settled := make([]bool, n)
	order := make([]int32, 0, n)

	tentative := make([]float64, n)
	for i := range tentative {
		tentative[i] = unset
	}
	sigma[s] = 1
	tentative[s] = 0
	pq := &priorityQueue{{v: s, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.v
		//lint:allow floateq stale-heap-entry test compares a value copied bit-for-bit
		if settled[u] || it.dist != tentative[u] {
			continue
		}
		settled[u] = true
		dist[u] = it.dist
		order = append(order, u)
		for k, v := range adj[u] {
			nd := dist[u] + wts[u][k]
			//lint:allow floateq unset is an exact +Inf sentinel never produced by arithmetic here
			if tentative[v] == unset || nd < tentative[v] {
				tentative[v] = nd
				sigma[v] = sigma[u]
				pred[v] = append(pred[v][:0], u)
				heap.Push(pq, pqItem{v: v, dist: nd})
				//lint:allow floateq equal-weight shortest-path counting is exact by the Brandes contract
			} else if nd == tentative[v] && !settled[v] {
				sigma[v] += sigma[u]
				pred[v] = append(pred[v], u)
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, u := range pred[w] {
			delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
		}
		if w != s {
			bc[w] += delta[w]
		}
	}
}
