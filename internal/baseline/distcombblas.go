package baseline

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/machine/sim"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

// DistCombBLASOptions configures a distributed CombBLAS-style run.
type DistCombBLASOptions struct {
	Procs   int
	Batch   int
	Sources []int32 // when non-nil, process only this single batch (benchmark mode)
	Model   *machine.CostModel
	// Transport pins the run to an external machine backend (its Size
	// must equal Procs); nil uses the in-process simulated machine.
	Transport machine.Transport
}

// DistCombBLASResult carries scores plus machine statistics.
type DistCombBLASResult struct {
	BC     []float64
	Plan   spgemm.Plan
	Stats  machine.RunStats
	Levels int // total BFS levels processed across batches
}

// squarest2D returns the most square pr×pc factorization, CombBLAS's grid
// requirement (the library insists on square process grids; we take the
// nearest factorization for non-square p).
func squarest2D(p int) (int, int) {
	best := [2]int{1, p}
	for _, f := range machine.Factorizations2(p) {
		if abs64(f[0]-f[1]) < abs64(best[0]-best[1]) {
			best = f
		}
	}
	return best[0], best[1]
}

func abs64(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CombBLASStyleDistributed runs the CombBLAS-style batched algebraic BC on
// the simulated machine. Faithful to the library the paper compares
// against, it uses only a 2D SUMMA decomposition (no 3D replication), keeps
// every BFS level's frontier resident, and rejects weighted graphs.
func CombBLASStyleDistributed(g *graph.Graph, opt DistCombBLASOptions) (*DistCombBLASResult, error) {
	if g.Weighted {
		return nil, fmt.Errorf("combblas: weighted graphs are not supported (the paper's CombBLAS limitation)")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("combblas: %w", err)
	}
	p := opt.Procs
	if p < 1 {
		p = 1
	}
	nb := opt.Batch
	if nb <= 0 {
		nb = 128
	}
	if nb > g.N {
		nb = g.N
	}
	pr, pc := squarest2D(p)
	plan := spgemm.Plan{P1: 1, P2: pr, P3: pc, X: spgemm.RoleA, YZ: spgemm.VarAB}

	trop := algebra.TropicalMonoid()
	adjCSR := g.Adjacency()
	adjCOO := adjCSR.ToCOO()
	atCOO := sparse.Transpose(adjCSR).ToCOO()

	mach := opt.Transport
	if mach == nil {
		mach = sim.New(p)
	} else if mach.Size() != p {
		return nil, fmt.Errorf("combblas: transport has %d ranks, want %d", mach.Size(), p)
	}
	if opt.Model != nil {
		mach.SetModel(*opt.Model)
	}
	res := &DistCombBLASResult{Plan: plan, BC: make([]float64, g.N)}
	bcPer := make([][]float64, p)
	levelsPer := make([]int, p)

	stats, err := mach.Run(func(proc *machine.Proc) {
		world := proc.World()
		sess := spgemm.NewSession(proc)
		shard := distmat.DistShard(p)
		aMat := distmat.FromGlobal(proc.Rank(), adjCOO, shard, trop)
		atMat := distmat.FromGlobal(proc.Rank(), atCOO, shard, trop)
		bc := make([]float64, g.N)
		totalLevels := 0

		batches := [][]int32{opt.Sources}
		if opt.Sources == nil {
			batches = batches[:0]
			for lo := 0; lo < g.N; lo += nb {
				hi := lo + nb
				if hi > g.N {
					hi = g.N
				}
				sources := make([]int32, 0, hi-lo)
				for s := lo; s < hi; s++ {
					sources = append(sources, int32(s))
				}
				batches = append(batches, sources)
			}
		}
		for _, sources := range batches {
			totalLevels += distCombBLASBatch(sess, plan, aMat, atMat, sources, g.N, shard, bc)
		}
		total := machine.Allreduce(world, bc, func(a, b float64) float64 { return a + b })
		bcPer[proc.Rank()] = total
		levelsPer[proc.Rank()] = totalLevels
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	res.Levels = levelsPer[0]
	copy(res.BC, bcPer[0])
	return res, nil
}

// distCombBLASBatch runs one forward+backward sweep distributed; returns the
// number of BFS levels.
func distCombBLASBatch(
	sess *spgemm.Session, plan spgemm.Plan,
	aMat, atMat *distmat.Mat[float64],
	sources []int32, n int, shard distmat.Dist, bc []float64,
) int {
	count := algebra.CountMonoid()
	trop := algebra.TropicalMonoid()
	world := sess.Proc.World()
	nb := len(sources)

	init := sparse.NewCOO[float64](nb, n)
	for s, src := range sources {
		init.Append(int32(s), src, 1)
	}
	frontier := distmat.FromGlobal(world.Rank(), init, shard, count)
	nsp := frontier
	levels := []*distmat.Mat[float64]{frontier}
	copyX := func(x, _ float64) float64 { return x }

	for {
		if distmat.GlobalNNZ(world, frontier) == 0 {
			break
		}
		next := spgemm.Multiply(sess, plan, frontier, aMat, copyX, count, count, trop, true)
		nsp = distmat.Redistribute(world, nsp, next.Dist, count)
		next = &distmat.Mat[float64]{
			Rows: nb, Cols: n, Dist: next.Dist,
			Local: maskEntries(next.Local, nsp.Local, false),
		}
		if distmat.GlobalNNZ(world, next) == 0 {
			break
		}
		nsp = distmat.EWise(nsp, next, count)
		levels = append(levels, next)
		frontier = next
	}

	// Backward sweep. All level matrices share nsp's distribution except
	// possibly level 0 (still in the shard layout when the loop broke
	// early); align lazily.
	delta := &distmat.Mat[float64]{Rows: nb, Cols: n, Dist: nsp.Dist}
	for l := len(levels) - 1; l >= 1; l-- {
		lvl := distmat.Redistribute(world, levels[l], nsp.Dist, count)
		w := &distmat.Mat[float64]{
			Rows: nb, Cols: n, Dist: nsp.Dist,
			Local: scaleByJoin(lvl.Local, delta.Local, nsp.Local),
		}
		u := spgemm.Multiply(sess, plan, w, atMat, copyX, count, count, trop, true)
		prev := distmat.Redistribute(world, levels[l-1], u.Dist, count)
		nsp = distmat.Redistribute(world, nsp, u.Dist, count)
		delta = distmat.Redistribute(world, delta, u.Dist, count)
		masked := maskEntries(u.Local, prev.Local, true)
		scaled := mulByJoin(masked, nsp.Local)
		delta = distmat.EWise(delta, &distmat.Mat[float64]{Rows: nb, Cols: n, Dist: u.Dist, Local: scaled}, count)
	}
	for _, e := range delta.Local {
		if e.J != sources[e.I] {
			bc[e.J] += e.V
		}
	}
	return len(levels)
}

// maskEntries filters sorted entries a by membership of their coordinate in
// the sorted slice m.
func maskEntries(a, m []sparse.Entry[float64], keep bool) []sparse.Entry[float64] {
	var out []sparse.Entry[float64]
	y := 0
	for _, e := range a {
		for y < len(m) && lessEntry(m[y], e) {
			y++
		}
		present := y < len(m) && m[y].I == e.I && m[y].J == e.J
		if present == keep {
			out = append(out, e)
		}
	}
	return out
}

// scaleByJoin computes, per entry of lvl, (1 + delta)/nsp using the values
// of the co-distributed delta and nsp slices (w of the backward sweep).
func scaleByJoin(lvl, delta, nsp []sparse.Entry[float64]) []sparse.Entry[float64] {
	out := make([]sparse.Entry[float64], 0, len(lvl))
	d, s := 0, 0
	for _, e := range lvl {
		dv := 0.0
		for d < len(delta) && lessEntry(delta[d], e) {
			d++
		}
		if d < len(delta) && delta[d].I == e.I && delta[d].J == e.J {
			dv = delta[d].V
		}
		for s < len(nsp) && lessEntry(nsp[s], e) {
			s++
		}
		sv := 1.0
		if s < len(nsp) && nsp[s].I == e.I && nsp[s].J == e.J {
			sv = nsp[s].V
		}
		out = append(out, sparse.Entry[float64]{I: e.I, J: e.J, V: (1 + dv) / sv})
	}
	return out
}

// mulByJoin multiplies entries of a by the co-located nsp values.
func mulByJoin(a, nsp []sparse.Entry[float64]) []sparse.Entry[float64] {
	out := make([]sparse.Entry[float64], 0, len(a))
	s := 0
	for _, e := range a {
		for s < len(nsp) && lessEntry(nsp[s], e) {
			s++
		}
		if s < len(nsp) && nsp[s].I == e.I && nsp[s].J == e.J {
			out = append(out, sparse.Entry[float64]{I: e.I, J: e.J, V: e.V * nsp[s].V})
		}
	}
	return out
}

func lessEntry(a, b sparse.Entry[float64]) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}
