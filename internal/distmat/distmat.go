// Package distmat provides sparse matrices distributed over the simulated
// machine: each processor holds the entries a distribution function assigns
// to it (global coordinates), and redistribution between arbitrary
// distributions is a single personalized all-to-all — the sparse-to-sparse
// redistribution kernel of CTF (§6.2).
package distmat

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/machine"
	"repro/internal/sparse"
)

// Dist assigns every matrix coordinate to exactly one world rank. Key
// identifies the distribution: matrices with equal keys have co-located
// entries, the precondition for local elementwise operations.
type Dist struct {
	Key   string
	P     int
	Owner func(i, j int32) int
}

// Part computes the contiguous partition of n items into p parts (first
// n%p parts one larger) and returns the part index of item i.
func Part(i int32, n, p int) int {
	q, r := n/p, n%p
	big := int32(r * (q + 1))
	if i < big {
		return int(i) / (q + 1)
	}
	if q == 0 {
		return p - 1
	}
	return r + (int(i)-int(big))/q
}

// PartBounds returns the [lo, hi) item range of part idx.
func PartBounds(idx, n, p int) (int32, int32) {
	q, r := n/p, n%p
	if idx < r {
		return int32(idx * (q + 1)), int32((idx + 1) * (q + 1))
	}
	lo := r*(q+1) + (idx-r)*q
	return int32(lo), int32(lo + q)
}

// DistRowBlock splits rows into p contiguous blocks.
func DistRowBlock(p, rows int) Dist {
	return Dist{
		Key:   fmt.Sprintf("rowblock(p=%d,rows=%d)", p, rows),
		P:     p,
		Owner: func(i, _ int32) int { return Part(i, rows, p) },
	}
}

// DistColBlock splits columns into p contiguous blocks.
func DistColBlock(p, cols int) Dist {
	return Dist{
		Key:   fmt.Sprintf("colblock(p=%d,cols=%d)", p, cols),
		P:     p,
		Owner: func(_, j int32) int { return Part(j, cols, p) },
	}
}

// DistShard spreads entries pseudo-randomly (used as the neutral input
// distribution before a plan-specific redistribution).
func DistShard(p int) Dist {
	return Dist{
		Key: fmt.Sprintf("shard(p=%d)", p),
		P:   p,
		Owner: func(i, j int32) int {
			h := uint64(uint32(i))*0x9E3779B1 ^ uint64(uint32(j))*0x85EBCA77
			h ^= h >> 33
			return int(h % uint64(p))
		},
	}
}

// Mat is one processor's view of a distributed sparse matrix: the entries
// the distribution assigns to this rank, kept sorted by (row, col) and
// duplicate-free. A Mat is owned by a single rank goroutine; it is not
// safe for concurrent use.
type Mat[T any] struct {
	Rows, Cols int
	Dist       Dist
	Local      []sparse.Entry[T]

	id uint64 // process-unique identity, issued lazily by ID
}

// matIDs issues process-unique matrix identities; see (*Mat).ID.
var matIDs atomic.Uint64

// ID returns a process-unique identity for this matrix, issued on first
// use. Unlike a formatted pointer (%p), an ID is never reused after the
// matrix becomes garbage, so caches keyed by it cannot alias a dead matrix
// whose address the allocator recycled. Called only by the owning rank
// (Mat is rank-local, see type comment).
func (m *Mat[T]) ID() uint64 {
	if m.id == 0 {
		m.id = matIDs.Add(1)
	}
	return m.id
}

// FromGlobal builds this rank's piece of a globally known COO matrix (the
// generator-replication input convention; no communication is charged, as
// the paper's benchmarks exclude graph load time).
func FromGlobal[T any](rank int, coo *sparse.COO[T], d Dist, m algebra.Monoid[T]) *Mat[T] {
	c := coo.Clone()
	c.Canonicalize(m)
	out := &Mat[T]{Rows: coo.Rows, Cols: coo.Cols, Dist: d}
	for _, e := range c.E {
		if d.Owner(e.I, e.J) == rank {
			out.Local = append(out.Local, e)
		}
	}
	return out
}

// SortLocal canonicalizes the local entries with the monoid.
func (m *Mat[T]) SortLocal(mon algebra.Monoid[T]) {
	c := sparse.COO[T]{Rows: m.Rows, Cols: m.Cols, E: m.Local}
	c.Canonicalize(mon)
	m.Local = c.E
}

// LocalNNZ returns the number of locally held entries.
func (m *Mat[T]) LocalNNZ() int { return len(m.Local) }

// GlobalNNZ sums entry counts over the communicator.
func GlobalNNZ[T any](c *machine.Comm, m *Mat[T]) int64 {
	return machine.AllreduceScalar(c, int64(len(m.Local)), func(a, b int64) int64 { return a + b })
}

// Redistribute moves m into distribution `to` with one all-to-all. A no-op
// (returning m) when the keys already match.
func Redistribute[T any](c *machine.Comm, m *Mat[T], to Dist, mon algebra.Monoid[T]) *Mat[T] {
	if m.Dist.Key == to.Key {
		return m
	}
	parts := make([][]sparse.Entry[T], c.Size())
	for _, e := range m.Local {
		r := to.Owner(e.I, e.J)
		parts[r] = append(parts[r], e)
	}
	got := machine.AlltoallConcat(c, parts)
	out := &Mat[T]{Rows: m.Rows, Cols: m.Cols, Dist: to, Local: got}
	out.SortLocal(mon)
	c.Proc().AddFlops(int64(len(got)))
	return out
}

// Gather collects the full matrix at every rank (a debugging/verification
// helper; cost charged as an allgather).
func Gather[T any](c *machine.Comm, m *Mat[T], mon algebra.Monoid[T]) *sparse.CSR[T] {
	all := machine.AllgatherConcat(c, m.Local)
	coo := &sparse.COO[T]{Rows: m.Rows, Cols: m.Cols, E: all}
	return sparse.FromCOO(coo, mon)
}

// EWise merges two identically distributed matrices with the monoid.
func EWise[T any](a, b *Mat[T], mon algebra.Monoid[T]) *Mat[T] {
	if a.Dist.Key != b.Dist.Key || a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("distmat: ewise on mismatched matrices (%s vs %s)", a.Dist.Key, b.Dist.Key))
	}
	out := &Mat[T]{Rows: a.Rows, Cols: a.Cols, Dist: a.Dist}
	out.Local = MergeSorted(a.Local, b.Local, mon)
	return out
}

// MergeSorted merges two sorted duplicate-free entry slices, combining
// coordinate collisions with the monoid and dropping zeros.
func MergeSorted[T any](a, b []sparse.Entry[T], mon algebra.Monoid[T]) []sparse.Entry[T] {
	out := make([]sparse.Entry[T], 0, len(a)+len(b))
	x, y := 0, 0
	for x < len(a) || y < len(b) {
		switch {
		case y >= len(b) || (x < len(a) && less(a[x], b[y])):
			out = append(out, a[x])
			x++
		case x >= len(a) || less(b[y], a[x]):
			out = append(out, b[y])
			y++
		default:
			v := mon.Op(a[x].V, b[y].V)
			if !mon.IsZero(v) {
				out = append(out, sparse.Entry[T]{I: a[x].I, J: a[x].J, V: v})
			}
			x++
			y++
		}
	}
	return out
}

func less[T any](a, b sparse.Entry[T]) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// Filter keeps local entries satisfying the predicate.
func (m *Mat[T]) Filter(keep func(i, j int32, v T) bool) *Mat[T] {
	out := &Mat[T]{Rows: m.Rows, Cols: m.Cols, Dist: m.Dist}
	for _, e := range m.Local {
		if keep(e.I, e.J, e.V) {
			out.Local = append(out.Local, e)
		}
	}
	return out
}

// Map transforms local entries, dropping zeros of the target monoid.
func Map[T, U any](m *Mat[T], mon algebra.Monoid[U], fn func(i, j int32, v T) U) *Mat[U] {
	out := &Mat[U]{Rows: m.Rows, Cols: m.Cols, Dist: m.Dist}
	for _, e := range m.Local {
		u := fn(e.I, e.J, e.V)
		if !mon.IsZero(u) {
			out.Local = append(out.Local, sparse.Entry[U]{I: e.I, J: e.J, V: u})
		}
	}
	return out
}

// ZipJoin visits coordinates present in both identically distributed
// matrices.
func ZipJoin[T, U any](a *Mat[T], b *Mat[U], visit func(i, j int32, x T, y U)) {
	if a.Dist.Key != b.Dist.Key {
		panic("distmat: zipjoin on mismatched distributions")
	}
	x, y := 0, 0
	for x < len(a.Local) && y < len(b.Local) {
		ea, eb := a.Local[x], b.Local[y]
		switch {
		case ea.I < eb.I || (ea.I == eb.I && ea.J < eb.J):
			x++
		case eb.I < ea.I || (eb.I == ea.I && eb.J < ea.J):
			y++
		default:
			visit(ea.I, ea.J, ea.V, eb.V)
			x++
			y++
		}
	}
}

// SortEntries sorts an entry slice by coordinates (no merging).
func SortEntries[T any](e []sparse.Entry[T]) {
	sort.Slice(e, func(a, b int) bool { return less(e[a], e[b]) })
}
