package distmat

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/sparse"
)

// randUniqueEntries builds n coordinate-unique entries in random order.
func randUniqueEntries(n int, seed int64) []sparse.Entry[float64] {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int32]bool, n)
	out := make([]sparse.Entry[float64], 0, n)
	for len(out) < n {
		c := [2]int32{int32(rng.Intn(4 * n)), int32(rng.Intn(64))}
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, sparse.Entry[float64]{I: c[0], J: c[1], V: rng.Float64()})
	}
	return out
}

func entriesEqual(a, b []sparse.Entry[float64]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSortEntriesParallelMatchesSequential covers sizes straddling the
// parallel threshold and several worker counts.
func TestSortEntriesParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 100, sortParallelMin - 1, sortParallelMin, 3*sortParallelMin + 17} {
		for _, w := range []int{0, 1, 2, 3, 5, 8} {
			e := randUniqueEntries(n, int64(n+w))
			want := append([]sparse.Entry[float64](nil), e...)
			SortEntries(want)
			SortEntriesParallel(e, w)
			if !entriesEqual(e, want) {
				t.Fatalf("n=%d workers=%d: parallel sort differs from sequential", n, w)
			}
		}
	}
}

// randSortedEntries builds a sorted duplicate-free entry slice.
func randSortedEntries(n int, seed int64) []sparse.Entry[float64] {
	e := randUniqueEntries(n, seed)
	SortEntries(e)
	return e
}

// TestMergeSortedParallelMatchesSequential includes heavy coordinate
// overlap so monoid collisions (and zero-dropping) are exercised at
// segment boundaries.
func TestMergeSortedParallelMatchesSequential(t *testing.T) {
	trop := algebra.TropicalMonoid()
	for _, tc := range []struct{ na, nb int }{
		{0, 100}, {100, 0}, {50, 50},
		{mergeParallelMin, mergeParallelMin},
		{3 * mergeParallelMin, mergeParallelMin / 2},
	} {
		a := randSortedEntries(tc.na, 1) // same seed ranges force overlaps
		b := randSortedEntries(tc.nb, 2)
		want := MergeSorted(a, b, trop)
		for _, w := range []int{0, 1, 2, 3, 7} {
			got := MergeSortedParallel(a, b, trop, w)
			if !entriesEqual(got, want) {
				t.Fatalf("na=%d nb=%d workers=%d: parallel merge differs", tc.na, tc.nb, w)
			}
		}
	}
}

// TestMergeSortedParallelIdenticalSlices maximizes collisions: every
// coordinate merges, so any boundary mistake double-counts or drops.
func TestMergeSortedParallelIdenticalSlices(t *testing.T) {
	count := algebra.CountMonoid()
	a := randSortedEntries(2*mergeParallelMin, 5)
	want := MergeSorted(a, a, count)
	for _, w := range []int{2, 4, 9} {
		got := MergeSortedParallel(a, a, count, w)
		if !entriesEqual(got, want) {
			t.Fatalf("workers=%d: self-merge differs", w)
		}
	}
}

// TestMatIDUniqueAndStable: distinct matrices get distinct IDs; an ID never
// changes once issued.
func TestMatIDUniqueAndStable(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		m := &Mat[float64]{Rows: 1, Cols: 1}
		id := m.ID()
		if id == 0 {
			t.Fatal("ID() returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate Mat ID %d", id)
		}
		seen[id] = true
		if again := m.ID(); again != id {
			t.Fatalf("ID changed between calls: %d then %d", id, again)
		}
	}
}
