// Shared-memory parallel variants of the entry-slice kernels. Each rank of
// the simulated machine may call these with its local worker budget; the
// outputs are required (and tested) to be identical to the sequential
// SortEntries / MergeSorted, so distributed results do not depend on the
// worker count.
package distmat

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Parallelism thresholds: below these sizes the sequential kernels win.
const (
	sortParallelMin  = 1 << 12
	mergeParallelMin = 1 << 12
)

// SortEntriesParallel sorts an entry slice by coordinates using parallel
// chunk sorts followed by parallel pairwise run merges. It assumes
// coordinate-unique entries (the invariant of all call sites, which sort
// allgathered shards of disjoint ownership); for such inputs the result is
// identical to SortEntries. workers <= 0 selects GOMAXPROCS.
func SortEntriesParallel[T any](e []sparse.Entry[T], workers int) {
	workers = parallel.Resolve(workers)
	if workers <= 1 || len(e) < sortParallelMin {
		SortEntries(e)
		return
	}
	rs := parallel.Ranges(len(e), workers)
	runs := make([][]sparse.Entry[T], len(rs))
	parallel.For(len(rs), len(rs), func(part, _, _ int) {
		seg := e[rs[part][0]:rs[part][1]]
		SortEntries(seg)
		runs[part] = seg
	})
	for len(runs) > 1 {
		next := make([][]sparse.Entry[T], (len(runs)+1)/2)
		parallel.For(len(next), len(next), func(part, _, _ int) {
			i := 2 * part
			if i+1 == len(runs) {
				next[part] = runs[i]
				return
			}
			next[part] = mergeRuns(runs[i], runs[i+1])
		})
		runs = next
	}
	copy(e, runs[0])
}

// mergeRuns merges two sorted runs keeping duplicates (ties take the left
// run first).
func mergeRuns[T any](a, b []sparse.Entry[T]) []sparse.Entry[T] {
	out := make([]sparse.Entry[T], 0, len(a)+len(b))
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		if less(b[y], a[x]) {
			out = append(out, b[y])
			y++
		} else {
			out = append(out, a[x])
			x++
		}
	}
	out = append(out, a[x:]...)
	out = append(out, b[y:]...)
	return out
}

// MergeSortedParallel computes the same union merge as MergeSorted by
// splitting the coordinate space at boundaries of a, binary-searching the
// matching positions in b, merging the segment pairs concurrently, and
// concatenating. Output is identical to MergeSorted(a, b, mon) for any
// monoid. workers <= 0 selects GOMAXPROCS.
func MergeSortedParallel[T any](a, b []sparse.Entry[T], mon algebra.Monoid[T], workers int) []sparse.Entry[T] {
	workers = parallel.Resolve(workers)
	if workers <= 1 || len(a)+len(b) < mergeParallelMin || len(a) == 0 || len(b) == 0 {
		return MergeSorted(a, b, mon)
	}
	rs := parallel.Ranges(len(a), workers)
	// cuts[i] is the b-position of segment boundary i: the first entry of b
	// not less than a[rs[i][0]], so equal coordinates land in the same
	// segment as their a counterpart and merge there.
	cuts := make([]int, len(rs)+1)
	for i := 1; i < len(rs); i++ {
		bound := a[rs[i][0]]
		cuts[i] = sort.Search(len(b), func(y int) bool { return !less(b[y], bound) })
	}
	cuts[len(rs)] = len(b)
	parts := make([][]sparse.Entry[T], len(rs))
	parallel.For(len(rs), len(rs), func(part, _, _ int) {
		parts[part] = MergeSorted(a[rs[part][0]:rs[part][1]], b[cuts[part]:cuts[part+1]], mon)
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]sparse.Entry[T], 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
