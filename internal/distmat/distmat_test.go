package distmat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/machine"
	"repro/internal/machine/sim"
	"repro/internal/sparse"
)

var addF = algebra.Monoid[float64]{
	Identity: 0,
	Op:       func(a, b float64) float64 { return a + b },
	IsZero:   func(a float64) bool { return a == 0 },
}

func TestPartProperties(t *testing.T) {
	check := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := int(pRaw%16) + 1
		// Every item lands in exactly the part whose bounds contain it, and
		// bounds tile [0, n).
		prev := int32(0)
		for idx := 0; idx < p; idx++ {
			lo, hi := PartBounds(idx, n, p)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
			for i := lo; i < hi; i++ {
				if Part(i, n, p) != idx {
					return false
				}
			}
		}
		return prev == int32(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartBalance(t *testing.T) {
	// Part sizes differ by at most one.
	for _, tc := range [][2]int{{100, 7}, {5, 8}, {64, 64}, {1, 3}} {
		n, p := tc[0], tc[1]
		min, max := n, 0
		for idx := 0; idx < p; idx++ {
			lo, hi := PartBounds(idx, n, p)
			sz := int(hi - lo)
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d p=%d: part sizes range [%d,%d]", n, p, min, max)
		}
	}
}

func TestDistOwnersInRange(t *testing.T) {
	dists := []Dist{
		DistRowBlock(6, 100),
		DistColBlock(6, 90),
		DistShard(6),
	}
	for _, d := range dists {
		for i := int32(0); i < 100; i++ {
			for j := int32(0); j < 90; j += 7 {
				r := d.Owner(i, j)
				if r < 0 || r >= 6 {
					t.Fatalf("%s: owner(%d,%d)=%d out of range", d.Key, i, j, r)
				}
			}
		}
	}
}

func TestFromGlobalPartitions(t *testing.T) {
	coo := sparse.NewCOO[float64](40, 40)
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 200; k++ {
		coo.Append(int32(rng.Intn(40)), int32(rng.Intn(40)), 1)
	}
	coo.Canonicalize(addF)
	total := 0
	d := DistShard(5)
	for r := 0; r < 5; r++ {
		m := FromGlobal(r, coo, d, addF)
		for _, e := range m.Local {
			if d.Owner(e.I, e.J) != r {
				t.Fatal("entry assigned to wrong owner")
			}
		}
		total += m.LocalNNZ()
	}
	if total != coo.NNZ() {
		t.Fatalf("partition lost entries: %d of %d", total, coo.NNZ())
	}
}

func TestRedistributeRoundTrip(t *testing.T) {
	coo := sparse.NewCOO[float64](30, 30)
	rng := rand.New(rand.NewSource(8))
	for k := 0; k < 150; k++ {
		coo.Append(int32(rng.Intn(30)), int32(rng.Intn(30)), float64(1+rng.Intn(5)))
	}
	coo.Canonicalize(addF)
	want := sparse.FromCOO(coo, addF)

	p := 6
	mach := sim.New(p)
	_, err := mach.Run(func(proc *machine.Proc) {
		w := proc.World()
		m := FromGlobal(proc.Rank(), coo, DistShard(p), addF)
		m2 := Redistribute(w, m, DistRowBlock(p, 30), addF)
		for _, e := range m2.Local {
			if DistRowBlock(p, 30).Owner(e.I, e.J) != proc.Rank() {
				panic("redistribute placed an entry at the wrong rank")
			}
		}
		m3 := Redistribute(w, m2, DistColBlock(p, 30), addF)
		m4 := Redistribute(w, m3, DistShard(p), addF)
		got := Gather(w, m4, addF)
		if !sparse.Equal(want, got, func(a, b float64) bool { return a == b }) {
			panic("redistribution round trip changed the matrix")
		}
		// No-op fast path.
		m5 := Redistribute(w, m4, DistShard(p), addF)
		if m5 != m4 {
			panic("same-key redistribute must be a no-op")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEWiseAndZipJoin(t *testing.T) {
	cooA := sparse.NewCOO[float64](20, 20)
	cooB := sparse.NewCOO[float64](20, 20)
	rng := rand.New(rand.NewSource(15))
	for k := 0; k < 80; k++ {
		cooA.Append(int32(rng.Intn(20)), int32(rng.Intn(20)), 1)
		cooB.Append(int32(rng.Intn(20)), int32(rng.Intn(20)), 2)
	}
	cooA.Canonicalize(addF)
	cooB.Canonicalize(addF)
	wantA := sparse.FromCOO(cooA, addF)
	wantB := sparse.FromCOO(cooB, addF)
	want := sparse.EWise(wantA, wantB, addF)

	p := 4
	mach := sim.New(p)
	_, err := mach.Run(func(proc *machine.Proc) {
		d := DistShard(p)
		a := FromGlobal(proc.Rank(), cooA, d, addF)
		b := FromGlobal(proc.Rank(), cooB, d, addF)
		c := EWise(a, b, addF)
		got := Gather(proc.World(), c, addF)
		if !sparse.Equal(want, got, func(x, y float64) bool { return x == y }) {
			panic("distributed ewise differs from sequential")
		}
		joined := 0
		ZipJoin(a, b, func(_, _ int32, _, _ float64) { joined++ })
		cnt := machine.AllreduceScalar(proc.World(), joined, func(x, y int) int { return x + y })
		wantJoin := 0
		sparse.ZipJoin(wantA, wantB, func(_, _ int32, _, _ float64) { wantJoin++ })
		if cnt != wantJoin {
			panic("distributed zipjoin visited the wrong number of coordinates")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// quickEntries generates sorted, duplicate-free entry slices.
type quickEntries []sparse.Entry[float64]

func (quickEntries) Generate(r *rand.Rand, _ int) reflect.Value {
	coo := sparse.NewCOO[float64](12, 12)
	for k := 0; k < r.Intn(30); k++ {
		coo.Append(int32(r.Intn(12)), int32(r.Intn(12)), float64(r.Intn(7)-3))
	}
	coo.Canonicalize(addF)
	return reflect.ValueOf(quickEntries(coo.E))
}

func TestMergeSortedProperties(t *testing.T) {
	check := func(qa, qb quickEntries) bool {
		a, b := []sparse.Entry[float64](qa), []sparse.Entry[float64](qb)
		got := MergeSorted(a, b, addF)
		// Reference: concatenate and canonicalize.
		coo := &sparse.COO[float64]{Rows: 12, Cols: 12, E: append(append([]sparse.Entry[float64]{}, a...), b...)}
		coo.Canonicalize(addF)
		if len(got) != len(coo.E) {
			return false
		}
		for i := range got {
			if got[i] != coo.E[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterAndMap(t *testing.T) {
	coo := sparse.NewCOO[float64](10, 10)
	for i := int32(0); i < 10; i++ {
		coo.Append(i, i, float64(i))
	}
	m := FromGlobal(0, coo, Dist{Key: "all0", P: 1, Owner: func(_, _ int32) int { return 0 }}, addF)
	f := m.Filter(func(i, _ int32, _ float64) bool { return i%2 == 0 })
	if f.LocalNNZ() != 4 { // i=0 dropped by IsZero during canonicalize
		t.Fatalf("filter kept %d", f.LocalNNZ())
	}
	mm := Map(m, addF, func(_, _ int32, v float64) float64 { return v - 5 })
	for _, e := range mm.Local {
		if e.V == 0 {
			t.Fatal("map must drop zeros")
		}
	}
}
