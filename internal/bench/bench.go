// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§7), plus the design-choice ablations called
// out in DESIGN.md. Runners print the same rows/series the paper reports
// and return them as data for tests and EXPERIMENTS.md generation.
//
// Performance is reported in MTEPS/node computed from the *modeled*
// critical-path time T = γ·flops + β·bytes + α·msgs of the simulated
// machine (DESIGN.md §2 explains why modeled time, not host wall time,
// carries the scaling shapes); wall time is reported alongside.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/machine/tcpnet"
	"repro/internal/spgemm"
)

// Config scales and directs an experiment run.
type Config struct {
	Out     io.Writer
	Procs   []int // simulated node counts; default {1, 4, 16, 64}
	Workers int   // local kernel threads per simulated rank; 0 = all cores, 1 = sequential
	Scale   int   // stand-in scale multiplier (1 = defaults)
	Batch   int   // sources per timed batch; default 32
	Seed    int64
	Quick   bool // shrink workloads for smoke tests and testing.B
	// Samples is the sample-budget axis of the streaming-dist experiment:
	// for each budget, the mutation stream replays through a sampled-mode
	// engine and the points record budget vs. modeled communication and
	// the Hoeffding error bound. Empty skips the sweep.
	Samples []int
	// Transport selects the machine backend of every distributed run:
	// "" or "sim" is the in-process simulated machine; "tcp" brings up a
	// loopback rank-per-process mesh per run — real sockets carrying the
	// same program, with bit-identical modeled statistics, so the wall_sec
	// column measures actual transport overhead.
	Transport string
}

func (c *Config) fill() {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{1, 4, 16, 64}
	}
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Point is one measured series point. The JSON tags are the schema of
// mfbc-bench's -json output (BENCH_*.json files).
type Point struct {
	Experiment string  `json:"experiment"`
	Graph      string  `json:"graph"`
	Engine     string  `json:"engine"` // "ctf-mfbc" | "combblas"
	Weighted   bool    `json:"weighted"`
	Procs      int     `json:"procs"`
	Batch      int     `json:"batch"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	Plan       string  `json:"plan,omitempty"`
	MTEPSNode  float64 `json:"mteps_node"` // modeled MTEPS per node
	ModelSec   float64 `json:"model_sec"`  // modeled total time for the batch
	CommSec    float64 `json:"comm_sec"`   // modeled communication time
	WallSec    float64 `json:"wall_sec"`   // host wall time (informational)
	Bytes      int64   `json:"bytes"`      // critical-path bytes
	Msgs       int64   `json:"msgs"`       // critical-path messages
	Iters      int     `json:"iters"`
	Err        string  `json:"err,omitempty"` // engines can fail (reproducing the paper's CombBLAS failures)
	// Streaming-scenario fields (experiment "streaming-dist"): the
	// strategy the dynamic engine chose for the apply, how many sources it
	// re-ran, whether the apply executed as one fused machine region, the
	// sample budget of sampled-mode points, and the Hoeffding half-width
	// attached to sampled estimates.
	Strategy string  `json:"strategy,omitempty"`
	Affected int     `json:"affected,omitempty"`
	Fused    bool    `json:"fused,omitempty"`
	Samples  int     `json:"samples,omitempty"`
	ErrBound float64 `json:"err_bound,omitempty"`
	// Load-harness fields (experiments "load-run" and "load-sweep", emitted by cmd/mfbc-load
	// into the same BENCH_*.json format): offered vs. achieved traffic,
	// latency percentiles, and server-counter deltas scraped from /stats
	// over the measurement step. Cohort is "all" for the aggregate row or
	// the cohort name for per-cohort rows; Knee marks the aggregate row of
	// the highest offered rate the service sustained before saturating.
	Cohort         string  `json:"cohort,omitempty"`
	OfferedRPS     float64 `json:"offered_rps,omitempty"`
	AchievedRPS    float64 `json:"achieved_rps,omitempty"`
	GoodputRPS     float64 `json:"goodput_rps,omitempty"`
	P50MS          float64 `json:"p50_ms,omitempty"`
	P95MS          float64 `json:"p95_ms,omitempty"`
	P99MS          float64 `json:"p99_ms,omitempty"`
	MaxMS          float64 `json:"max_ms,omitempty"`
	Requests       int64   `json:"requests,omitempty"`
	ReqErrors      int64   `json:"req_errors,omitempty"`
	CacheHits      int64   `json:"cache_hits,omitempty"`
	Coalesced      int64   `json:"coalesced,omitempty"`
	WarmSeeds      int64   `json:"warm_seeds,omitempty"`
	CacheEvictions int64   `json:"cache_evictions,omitempty"`
	Saturated      bool    `json:"saturated,omitempty"`
	Knee           bool    `json:"knee,omitempty"`
	// Server-side observability fields (aggregate load rows only): the
	// request count and latency percentiles the server itself measured
	// over the run, from the /metrics histogram deltas of the query and
	// mutate routes. Percentiles resolve to histogram bucket upper edges,
	// so they are coarser than — and an independent check on — the
	// client-side recorder's P50MS/P95MS/P99MS.
	ServerRequests int64   `json:"server_requests,omitempty"`
	ServerP50MS    float64 `json:"server_p50_ms,omitempty"`
	ServerP95MS    float64 `json:"server_p95_ms,omitempty"`
	ServerP99MS    float64 `json:"server_p99_ms,omitempty"`
	// Async-ingestion fields (load rows against a server running the
	// write-ahead mutation queue): the percentile spread of per-request
	// queue wait (time a PATCH batch sat queued before its group commit,
	// separating queue time from apply time) and the /stats deltas of the
	// pipeline's counters over the step.
	QueueWaitP50MS  float64 `json:"queue_wait_p50_ms,omitempty"`
	QueueWaitP95MS  float64 `json:"queue_wait_p95_ms,omitempty"`
	QueueWaitP99MS  float64 `json:"queue_wait_p99_ms,omitempty"`
	IngestCommits   int64   `json:"ingest_commits,omitempty"`
	IngestCoalesced int64   `json:"ingest_coalesced,omitempty"`
	IngestRejected  int64   `json:"ingest_rejected,omitempty"`
}

// Experiments lists the available experiment ids in presentation order.
var Experiments = []string{
	"table2", "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "table3",
	"ablate-decomp", "ablate-batch", "ablate-cannon", "streaming-dist",
}

// Run executes one experiment by id.
func Run(id string, cfg Config) ([]Point, error) {
	cfg.fill()
	switch id {
	case "table2":
		return Table2(cfg)
	case "fig1a":
		return Fig1a(cfg)
	case "fig1b":
		return Fig1b(cfg)
	case "fig1c":
		return Fig1c(cfg)
	case "fig2a":
		return Fig2a(cfg)
	case "fig2b":
		return Fig2b(cfg)
	case "table3":
		return Table3(cfg)
	case "ablate-decomp":
		return AblateDecomp(cfg)
	case "ablate-batch":
		return AblateBatch(cfg)
	case "ablate-cannon":
		return AblateCannon(cfg)
	case "streaming-dist":
		return StreamingDist(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments)
	}
}

// sampleSources draws nb distinct source vertices.
func sampleSources(n, nb int, seed int64) []int32 {
	if nb > n {
		nb = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]int32, nb)
	for i := range out {
		out[i] = int32(perm[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// mteps converts a modeled batch time to millions of traversed edges per
// second per node: every adjacency nonzero is traversed once per source.
func mteps(adjNNZ, nb, procs int, modelSec float64) float64 {
	if modelSec <= 0 {
		return 0
	}
	return float64(adjNNZ) * float64(nb) / modelSec / 1e6 / float64(procs)
}

// newTransport builds the machine backend for one p-rank run. The nil
// transport keeps the library default (in-process simulated machine);
// "tcp" starts a loopback mesh that the returned func tears down.
func (c Config) newTransport(p int) (machine.Transport, func(), error) {
	switch c.Transport {
	case "", "sim":
		return nil, func() {}, nil
	case "tcp":
		mesh, err := tcpnet.StartLocalMesh(p, tcpnet.Options{})
		if err != nil {
			return nil, nil, err
		}
		return mesh, func() { mesh.Close() }, nil
	}
	return nil, nil, fmt.Errorf("bench: unknown transport %q (want sim or tcp)", c.Transport)
}

// runMFBC measures one CTF-MFBC batch on cfg's machine backend.
func runMFBC(exp string, g *graph.Graph, cfg Config, procs, nb int, cons spgemm.Constraint, plan *spgemm.Plan) Point {
	sources := sampleSources(g.N, nb, cfg.Seed)
	pt := Point{
		Experiment: exp, Graph: g.Name, Engine: "ctf-mfbc", Weighted: g.Weighted,
		Procs: procs, Batch: len(sources), N: g.N, M: g.M(),
	}
	tr, done, err := cfg.newTransport(procs)
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	defer done()
	res, err := core.MFBCDistributed(g, core.DistOptions{
		Procs: procs, Workers: cfg.Workers, Sources: sources, Constraint: cons, Plan: plan,
		Transport: tr,
	})
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	pt.Plan = res.Plan.String()
	pt.ModelSec = res.Stats.ModelSec
	pt.CommSec = res.Stats.CommSec
	pt.WallSec = res.Stats.Wall.Seconds()
	pt.Bytes = res.Stats.MaxCost.Bytes
	pt.Msgs = res.Stats.MaxCost.Msgs
	pt.Iters = res.Iterations
	pt.MTEPSNode = mteps(g.AdjacencyNNZ(), len(sources), procs, res.Stats.ModelSec)
	return pt
}

// runCombBLAS measures one CombBLAS-style batch.
func runCombBLAS(exp string, g *graph.Graph, cfg Config, procs, nb int) Point {
	sources := sampleSources(g.N, nb, cfg.Seed)
	pt := Point{
		Experiment: exp, Graph: g.Name, Engine: "combblas", Weighted: g.Weighted,
		Procs: procs, Batch: len(sources), N: g.N, M: g.M(),
	}
	tr, done, err := cfg.newTransport(procs)
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	defer done()
	res, err := baseline.CombBLASStyleDistributed(g, baseline.DistCombBLASOptions{
		Procs: procs, Sources: sources, Transport: tr,
	})
	if err != nil {
		pt.Err = err.Error()
		return pt
	}
	pt.Plan = res.Plan.String()
	pt.ModelSec = res.Stats.ModelSec
	pt.CommSec = res.Stats.CommSec
	pt.WallSec = res.Stats.Wall.Seconds()
	pt.Bytes = res.Stats.MaxCost.Bytes
	pt.Msgs = res.Stats.MaxCost.Msgs
	pt.Iters = res.Levels
	pt.MTEPSNode = mteps(g.AdjacencyNNZ(), len(sources), procs, res.Stats.ModelSec)
	return pt
}

func printHeader(cfg Config, title string) {
	fmt.Fprintf(cfg.Out, "\n== %s ==\n", title)
	fmt.Fprintf(cfg.Out, "%-18s %-9s %5s %6s %9s %10s %10s %10s %8s %s\n",
		"graph", "engine", "p", "batch", "MTEPS/nd", "model(s)", "comm(s)", "wall(s)", "iters", "plan")
}

func printPoint(cfg Config, p Point) {
	if p.Err != "" {
		fmt.Fprintf(cfg.Out, "%-18s %-9s %5d %6d %9s   failed: %s\n",
			p.Graph, p.Engine, p.Procs, p.Batch, "n/a", p.Err)
		return
	}
	fmt.Fprintf(cfg.Out, "%-18s %-9s %5d %6d %9.2f %10.4f %10.4f %10.3f %8d %s\n",
		p.Graph, p.Engine, p.Procs, p.Batch, p.MTEPSNode, p.ModelSec, p.CommSec, p.WallSec, p.Iters, p.Plan)
}

// Table2 regenerates the real-graph property table from the SNAP stand-ins.
func Table2(cfg Config) ([]Point, error) {
	cfg.fill()
	fmt.Fprintf(cfg.Out, "\n== Table 2: analyzed real-world graphs (synthetic stand-ins; paper originals in parentheses) ==\n")
	fmt.Fprintf(cfg.Out, "%-18s %-10s %9s %10s %7s %7s %7s\n", "ID", "directed?", "n", "m", "d", "d90", "k")
	var pts []Point
	samples := 32
	if cfg.Quick {
		samples = 8
	}
	for _, spec := range graph.Standins {
		g, err := graph.Standin(spec.ID, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		st := graph.ComputeStats(g, samples, cfg.Seed)
		fmt.Fprintf(cfg.Out, "%-18s %-10v %9d %10d %7d %7.1f %7.1f   (paper: n=%.1fM m=%.0fM d=%d)\n",
			spec.ID, st.Directed, st.N, st.M, st.Diameter, st.EffDiam, st.AvgDegree,
			float64(spec.PaperN)/1e6, float64(spec.PaperM)/1e6, spec.PaperDiam)
		pts = append(pts, Point{
			Experiment: "table2", Graph: spec.ID, N: st.N, M: st.M,
			Iters: st.Diameter, MTEPSNode: st.AvgDegree,
		})
	}
	return pts, nil
}

// Fig1a: strong scaling of CTF-MFBC on the real-graph stand-ins.
func Fig1a(cfg Config) ([]Point, error) {
	cfg.fill()
	printHeader(cfg, "Figure 1(a): strong scaling of MFBC for real graphs (stand-ins)")
	ids := []string{"friendster-sim", "orkut-sim", "livejournal-sim", "patents-sim"}
	if cfg.Quick {
		ids = ids[1:3]
	}
	var pts []Point
	for _, id := range ids {
		g, err := graph.Standin(id, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.Procs {
			pt := runMFBC("fig1a", g, cfg, p, cfg.Batch, spgemm.AnyPlan, nil)
			printPoint(cfg, pt)
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// Fig1b: strong scaling of the CombBLAS-style code on the stand-ins.
// Friendster-sim is skipped below 32 simulated nodes, reproducing the
// paper's observation that CombBLAS could not execute it.
func Fig1b(cfg Config) ([]Point, error) {
	cfg.fill()
	printHeader(cfg, "Figure 1(b): strong scaling of CombBLAS-style BC for real graphs (stand-ins)")
	ids := []string{"orkut-sim", "livejournal-sim", "patents-sim"}
	if cfg.Quick {
		ids = ids[:2]
	}
	var pts []Point
	for _, id := range ids {
		g, err := graph.Standin(id, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.Procs {
			pt := runCombBLAS("fig1b", g, cfg, p, cfg.Batch)
			printPoint(cfg, pt)
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// Fig1c: strong scaling on R-MAT graphs, weighted and unweighted,
// E ∈ {8, 128}.
func Fig1c(cfg Config) ([]Point, error) {
	cfg.fill()
	printHeader(cfg, "Figure 1(c): strong scaling for R-MAT graphs (weighted and unweighted)")
	scale := 11
	if cfg.Quick {
		scale = 9
	}
	var pts []Point
	for _, e := range []int{8, 128} {
		base := graph.RMAT(graph.DefaultRMAT(scale, e, cfg.Seed))
		weighted := graph.RMAT(graph.DefaultRMAT(scale, e, cfg.Seed))
		weighted.AddUniformWeights(1, 100, cfg.Seed+1)
		weighted.Name = base.Name + "-w"
		for _, p := range cfg.Procs {
			m := runMFBC("fig1c", base, cfg, p, cfg.Batch, spgemm.AnyPlan, nil)
			printPoint(cfg, m)
			c := runCombBLAS("fig1c", base, cfg, p, cfg.Batch)
			printPoint(cfg, c)
			w := runMFBC("fig1c", weighted, cfg, p, cfg.Batch, spgemm.AnyPlan, nil)
			printPoint(cfg, w)
			pts = append(pts, m, c, w)
		}
	}
	return pts, nil
}

// Fig2a: edge weak scaling on uniform random graphs — n²/p and the fill
// fraction f = m/n² held constant, so n grows with √p.
func Fig2a(cfg Config) ([]Point, error) {
	cfg.fill()
	printHeader(cfg, "Figure 2(a): edge weak scaling for uniform random graphs")
	type series struct {
		n0 int
		f  float64
	}
	set := []series{{1024, 0.005}, {1024, 0.0005}, {4096, 0.0005}, {4096, 0.00005}}
	if cfg.Quick {
		set = set[:2]
	}
	var pts []Point
	for _, s := range set {
		for _, p := range cfg.Procs {
			n := int(float64(s.n0) * sqrtInt(p))
			m := int(s.f * float64(n) * float64(n))
			g := graph.Uniform(n, m, false, cfg.Seed+int64(n))
			g.Name = fmt.Sprintf("uni-n0=%d-f=%.3g%%", s.n0, s.f*100)
			mp := runMFBC("fig2a", g, cfg, p, cfg.Batch, spgemm.AnyPlan, nil)
			printPoint(cfg, mp)
			cp := runCombBLAS("fig2a", g, cfg, p, cfg.Batch)
			printPoint(cfg, cp)
			pts = append(pts, mp, cp)
		}
	}
	return pts, nil
}

// Fig2b: vertex weak scaling — n/p and the average degree k = m/n held
// constant, so n grows linearly with p.
func Fig2b(cfg Config) ([]Point, error) {
	cfg.fill()
	printHeader(cfg, "Figure 2(b): vertex weak scaling for uniform random graphs")
	type series struct {
		n0, k int
	}
	set := []series{{256, 96}, {256, 16}, {1024, 16}, {1024, 4}}
	if cfg.Quick {
		set = set[1:3]
	}
	var pts []Point
	for _, s := range set {
		for _, p := range cfg.Procs {
			n := s.n0 * p
			m := s.k * n / 2
			g := graph.Uniform(n, m, false, cfg.Seed+int64(n))
			g.Name = fmt.Sprintf("uni-n0=%d-k=%d", s.n0, s.k)
			mp := runMFBC("fig2b", g, cfg, p, cfg.Batch, spgemm.AnyPlan, nil)
			printPoint(cfg, mp)
			cp := runCombBLAS("fig2b", g, cfg, p, cfg.Batch)
			printPoint(cfg, cp)
			pts = append(pts, mp, cp)
		}
	}
	return pts, nil
}

// Table3: critical-path communication costs for a single batch on the
// largest processor count, for both engines.
func Table3(cfg Config) ([]Point, error) {
	cfg.fill()
	p := cfg.Procs[len(cfg.Procs)-1]
	nb := cfg.Batch * 2
	fmt.Fprintf(cfg.Out, "\n== Table 3: critical path costs, single batch of %d sources on p=%d ==\n", nb, p)
	fmt.Fprintf(cfg.Out, "%-18s %-9s %12s %12s %12s %12s\n", "graph", "code", "W (MB)", "S (#msgs)", "comm (s)", "total (s)")
	ids := []string{"orkut-sim", "livejournal-sim", "patents-sim"}
	if cfg.Quick {
		ids = ids[:1]
	}
	var pts []Point
	for _, id := range ids {
		g, err := graph.Standin(id, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, run := range []func() Point{
			func() Point { return runCombBLAS("table3", g, cfg, p, nb) },
			func() Point { return runMFBC("table3", g, cfg, p, nb, spgemm.AnyPlan, nil) },
		} {
			pt := run()
			if pt.Err != "" {
				fmt.Fprintf(cfg.Out, "%-18s %-9s   failed: %s\n", pt.Graph, pt.Engine, pt.Err)
			} else {
				fmt.Fprintf(cfg.Out, "%-18s %-9s %12.3f %12d %12.4f %12.4f\n",
					pt.Graph, pt.Engine, float64(pt.Bytes)/1e6, pt.Msgs, pt.CommSec, pt.ModelSec)
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// AblateDecomp compares forced 1D / 2D / 3D decompositions against the
// automatic search (§5.2 / §6 design space).
func AblateDecomp(cfg Config) ([]Point, error) {
	cfg.fill()
	p := cfg.Procs[len(cfg.Procs)-1]
	printHeader(cfg, fmt.Sprintf("Ablation: decomposition space on p=%d", p))
	g, err := graph.Standin("orkut-sim", cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var pts []Point
	for _, c := range []struct {
		name string
		cons spgemm.Constraint
	}{
		{"auto", spgemm.AnyPlan},
		{"1D-only", spgemm.Only1D},
		{"2D-only", spgemm.Only2D},
		{"3D-only", spgemm.Only3D},
	} {
		pt := runMFBC("ablate-decomp", g, cfg, p, cfg.Batch, c.cons, nil)
		pt.Graph = g.Name + "/" + c.name
		printPoint(cfg, pt)
		pts = append(pts, pt)
	}
	return pts, nil
}

// AblateBatch sweeps the batch size n_b (§4's time/memory trade-off).
func AblateBatch(cfg Config) ([]Point, error) {
	cfg.fill()
	p := cfg.Procs[len(cfg.Procs)-1] / 4
	if p < 1 {
		p = 1
	}
	printHeader(cfg, fmt.Sprintf("Ablation: batch size n_b on p=%d", p))
	g, err := graph.Standin("livejournal-sim", cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sizes := []int{4, 16, 64, 256}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	var pts []Point
	for _, nb := range sizes {
		pt := runMFBC("ablate-batch", g, cfg, p, nb, spgemm.AnyPlan, nil)
		printPoint(cfg, pt)
		pts = append(pts, pt)
	}
	return pts, nil
}

func sqrtInt(p int) float64 {
	x := 1.0
	for x*x < float64(p) {
		x++
	}
	return x
}
