// The streaming-distributed scenario: the dynamic engine on the simulated
// machine, applying a congestion-style mutation stream to a weighted mesh
// and recording the modeled communication of every incremental apply —
// the comm trajectory future PRs track — next to what a from-scratch
// distributed run on the same evolved topology costs. Because the engine
// keeps the stationary adjacency operands resident and delta-patches them
// per batch, the per-apply words moved should sit well below the
// from-scratch baseline whenever the affected set is small.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
)

// StreamingDist measures the distributed-dynamic path per simulated node
// count (counts below 2 are skipped: the engine would take the
// shared-memory path and model no communication).
func StreamingDist(cfg Config) ([]Point, error) {
	cfg.fill()
	rows, cols, rounds := 16, 16, 6
	if cfg.Quick {
		rows, cols, rounds = 8, 8, 3
	}
	base := graph.Grid2D(rows, cols, 1, cfg.Seed)
	// Continuous weights keep shortest paths near-unique, so reweights
	// stay local — the regime where incremental maintenance pays.
	wrng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := range base.Edges {
		base.Edges[i].W = 1 + 29*wrng.Float64()
	}
	base.Weighted = true
	base.Name = fmt.Sprintf("mesh-%dx%d", rows, cols)

	fmt.Fprintf(cfg.Out, "\n== Streaming-distributed: incremental applies vs from-scratch runs on %s ==\n", base.Name)
	fmt.Fprintf(cfg.Out, "%-22s %5s %6s %9s %12s %10s %10s %s\n",
		"series", "p", "aff", "strategy", "W (bytes)", "S (msgs)", "model(s)", "plan")

	var pts []Point
	ran := false
	for _, p := range cfg.Procs {
		if p < 2 {
			continue
		}
		ran = true
		eng, err := dynamic.New(base, dynamic.Config{
			Procs: p, Batch: cfg.Batch, Workers: cfg.Workers,
			DirtyThreshold: 0.5, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed*3 + int64(p)))
		for round := 0; round < rounds; round++ {
			batch := meshBatch(rng, eng.Snapshot().Graph, 1+rng.Intn(2))
			rep, err := eng.Apply(batch)
			if err != nil {
				return nil, err
			}
			pt := Point{
				Experiment: "streaming-dist", Graph: base.Name, Engine: "dynamic-mfbc",
				Weighted: true, Procs: p, Batch: cfg.Batch, N: rep.N, M: rep.M,
				Plan: rep.Plan, Strategy: string(rep.Strategy), Affected: rep.Affected,
				ModelSec: rep.Comm.ModelSec, CommSec: rep.Comm.CommSec,
				WallSec: rep.Wall.Seconds(), Bytes: rep.Comm.Bytes, Msgs: rep.Comm.Msgs,
			}
			fmt.Fprintf(cfg.Out, "%-22s %5d %6d %9s %12d %10d %10.5f %s\n",
				"apply", p, pt.Affected, pt.Strategy, pt.Bytes, pt.Msgs, pt.ModelSec, pt.Plan)
			pts = append(pts, pt)
		}
		// The baseline every apply is implicitly compared against: a cold
		// from-scratch distributed run on the evolved topology.
		g := eng.Snapshot().Graph
		full, err := core.MFBCDistributed(g, core.DistOptions{Procs: p, Workers: cfg.Workers, Batch: cfg.Batch})
		if err != nil {
			return nil, err
		}
		pt := Point{
			Experiment: "streaming-dist", Graph: base.Name + "/from-scratch", Engine: "ctf-mfbc",
			Weighted: true, Procs: p, Batch: cfg.Batch, N: g.N, M: g.M(),
			Plan: full.Plan.String(), Strategy: "from-scratch", Affected: g.N,
			ModelSec: full.Stats.ModelSec, CommSec: full.Stats.CommSec,
			WallSec: full.Stats.Wall.Seconds(), Bytes: full.Stats.MaxCost.Bytes,
			Msgs: full.Stats.MaxCost.Msgs, Iters: full.Iterations,
			MTEPSNode: mteps(g.AdjacencyNNZ(), g.N, p, full.Stats.ModelSec),
		}
		fmt.Fprintf(cfg.Out, "%-22s %5d %6d %9s %12d %10d %10.5f %s\n",
			"from-scratch", p, pt.Affected, pt.Strategy, pt.Bytes, pt.Msgs, pt.ModelSec, pt.Plan)
		pts = append(pts, pt)
	}
	if !ran {
		return nil, fmt.Errorf("bench: streaming-dist needs at least one proc count ≥ 2 (got %v)", cfg.Procs)
	}
	return pts, nil
}

// meshBatch draws k valid mutations with a road-traffic profile: mostly
// congestion reweights of existing links, an occasional new link or
// closure.
func meshBatch(rng *rand.Rand, g *graph.Graph, k int) []graph.Mutation {
	shadow := g.Clone()
	batch := make([]graph.Mutation, 0, k)
	for len(batch) < k {
		var m graph.Mutation
		switch rng.Intn(8) {
		case 0: // close a link
			if shadow.M() <= shadow.N {
				continue
			}
			e := shadow.Edges[rng.Intn(shadow.M())]
			m = graph.Mutation{Op: graph.OpRemoveEdge, U: e.U, V: e.V}
		case 1: // open a new local link
			u := int32(rng.Intn(shadow.N - 1))
			v := u + 1 + int32(rng.Intn(3))
			if int(v) >= shadow.N {
				continue
			}
			if _, exists := shadow.FindEdge(u, v); exists {
				continue
			}
			m = graph.Mutation{Op: graph.OpAddEdge, U: u, V: v, W: 1 + 29*rng.Float64()}
		default: // congestion: a link's travel time creeps up
			e := shadow.Edges[rng.Intn(shadow.M())]
			m = graph.Mutation{Op: graph.OpSetWeight, U: e.U, V: e.V, W: e.W * (1.05 + 0.15*rng.Float64())}
		}
		if err := shadow.Apply(m); err != nil {
			continue
		}
		batch = append(batch, m)
	}
	return batch
}
