// The streaming-distributed scenario: the dynamic engine on the simulated
// machine, applying a congestion-style mutation stream to a weighted mesh
// and recording the modeled communication of every incremental apply.
// Each stream replays twice — through the fused single-region engine and
// through the two-region ablation (NoFuse) — so the artifact carries the
// fused-vs-two-region W/S/msgs comparison directly: fusion should cut the
// latency term (S, critical-path messages) roughly in half while words
// moved stay comparable. A from-scratch distributed run on the evolved
// topology anchors both series, and an optional sample-budget axis
// (Config.Samples) replays the stream through sampled-mode engines,
// recording budget vs. modeled communication and the Hoeffding bound.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
)

// StreamingDist measures the distributed-dynamic path per simulated node
// count (counts below 2 are skipped: the engine would take the
// shared-memory path and model no communication).
func StreamingDist(cfg Config) ([]Point, error) {
	cfg.fill()
	rows, cols, rounds := 16, 16, 6
	if cfg.Quick {
		rows, cols, rounds = 8, 8, 3
	}
	base := graph.Grid2D(rows, cols, 1, cfg.Seed)
	// Continuous weights keep shortest paths near-unique, so reweights
	// stay local — the regime where incremental maintenance pays.
	wrng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := range base.Edges {
		base.Edges[i].W = 1 + 29*wrng.Float64()
	}
	base.Weighted = true
	base.Name = fmt.Sprintf("mesh-%dx%d", rows, cols)

	fmt.Fprintf(cfg.Out, "\n== Streaming-distributed: fused vs two-region applies vs from-scratch runs on %s ==\n", base.Name)
	fmt.Fprintf(cfg.Out, "%-22s %5s %6s %9s %12s %10s %10s %s\n",
		"series", "p", "aff", "strategy", "W (bytes)", "S (msgs)", "model(s)", "plan")

	var pts []Point
	ran := false
	for _, p := range cfg.Procs {
		if p < 2 {
			continue
		}
		ran = true
		// The same seeded stream replays through the fused engine and the
		// two-region ablation, so their per-apply costs are comparable
		// point by point.
		variants := []struct {
			series string
			engine string
			noFuse bool
		}{
			{"apply-fused", "dynamic-mfbc-fused", false},
			{"apply-two-region", "dynamic-mfbc-2region", true},
		}
		var evolved *graph.Graph
		for _, va := range variants {
			// DirtyThreshold < 0 pins every apply to the incremental path:
			// the series exists to compare the fused and two-region forms
			// of the *incremental* apply, and a full-recompute fallback
			// (identical in both engines) would blank the comparison on
			// small quick-mode meshes.
			tr, done, err := cfg.newTransport(p)
			if err != nil {
				return nil, err
			}
			eng, err := dynamic.New(base, dynamic.Config{
				Procs: p, Batch: cfg.Batch, Workers: cfg.Workers,
				DirtyThreshold: -1, Seed: cfg.Seed, NoFuse: va.noFuse,
				Transport: tr,
			})
			if err != nil {
				done()
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed*3 + int64(p)))
			for round := 0; round < rounds; round++ {
				batch := meshBatch(rng, eng.Snapshot().Graph, 1+rng.Intn(2))
				rep, err := eng.Apply(batch)
				if err != nil {
					done()
					return nil, err
				}
				pt := Point{
					Experiment: "streaming-dist", Graph: base.Name, Engine: va.engine,
					Weighted: true, Procs: p, Batch: cfg.Batch, N: rep.N, M: rep.M,
					Plan: rep.Plan, Strategy: string(rep.Strategy), Affected: rep.Affected,
					Fused:    rep.Fused,
					ModelSec: rep.Comm.ModelSec, CommSec: rep.Comm.CommSec,
					WallSec: rep.Wall.Seconds(), Bytes: rep.Comm.Bytes, Msgs: rep.Comm.Msgs,
				}
				fmt.Fprintf(cfg.Out, "%-22s %5d %6d %9s %12d %10d %10.5f %s\n",
					va.series, p, pt.Affected, pt.Strategy, pt.Bytes, pt.Msgs, pt.ModelSec, pt.Plan)
				pts = append(pts, pt)
			}
			evolved = eng.Snapshot().Graph
			done()
		}
		// The baseline every apply is implicitly compared against: a cold
		// from-scratch distributed run on the evolved topology.
		ftr, fdone, err := cfg.newTransport(p)
		if err != nil {
			return nil, err
		}
		full, err := core.MFBCDistributed(evolved, core.DistOptions{Procs: p, Workers: cfg.Workers, Batch: cfg.Batch, Transport: ftr})
		fdone()
		if err != nil {
			return nil, err
		}
		pt := Point{
			Experiment: "streaming-dist", Graph: base.Name + "/from-scratch", Engine: "ctf-mfbc",
			Weighted: true, Procs: p, Batch: cfg.Batch, N: evolved.N, M: evolved.M(),
			Plan: full.Plan.String(), Strategy: "from-scratch", Affected: evolved.N,
			ModelSec: full.Stats.ModelSec, CommSec: full.Stats.CommSec,
			WallSec: full.Stats.Wall.Seconds(), Bytes: full.Stats.MaxCost.Bytes,
			Msgs: full.Stats.MaxCost.Msgs, Iters: full.Iterations,
			MTEPSNode: mteps(evolved.AdjacencyNNZ(), evolved.N, p, full.Stats.ModelSec),
		}
		fmt.Fprintf(cfg.Out, "%-22s %5d %6d %9s %12d %10d %10.5f %s\n",
			"from-scratch", p, pt.Affected, pt.Strategy, pt.Bytes, pt.Msgs, pt.ModelSec, pt.Plan)
		pts = append(pts, pt)

		// Sample-budget axis: replay the stream through sampled-mode
		// engines, one per budget, recording modeled comm against the
		// budget and the Hoeffding half-width of the estimates.
		for _, budget := range cfg.Samples {
			if budget <= 0 {
				continue
			}
			str, sdone, err := cfg.newTransport(p)
			if err != nil {
				return nil, err
			}
			eng, err := dynamic.New(base, dynamic.Config{
				Procs: p, Batch: cfg.Batch, Workers: cfg.Workers,
				DirtyThreshold: 0.5, Seed: cfg.Seed,
				SampleBudget: budget, RefreshEvery: rounds + 1, // keep every apply sampled
				Transport: str,
			})
			if err != nil {
				sdone()
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed*3 + int64(p)))
			for round := 0; round < rounds; round++ {
				batch := meshBatch(rng, eng.Snapshot().Graph, 1+rng.Intn(2))
				rep, err := eng.Apply(batch)
				if err != nil {
					sdone()
					return nil, err
				}
				pt := Point{
					Experiment: "streaming-dist", Graph: base.Name, Engine: "dynamic-mfbc-sampled",
					Weighted: true, Procs: p, Batch: cfg.Batch, N: rep.N, M: rep.M,
					Plan: rep.Plan, Strategy: string(rep.Strategy), Affected: rep.Affected,
					Samples: budget, ErrBound: rep.ErrBound,
					ModelSec: rep.Comm.ModelSec, CommSec: rep.Comm.CommSec,
					WallSec: rep.Wall.Seconds(), Bytes: rep.Comm.Bytes, Msgs: rep.Comm.Msgs,
				}
				fmt.Fprintf(cfg.Out, "%-22s %5d %6d %9s %12d %10d %10.5f %s (k=%d ±%.1f)\n",
					"apply-sampled", p, pt.Affected, pt.Strategy, pt.Bytes, pt.Msgs, pt.ModelSec, pt.Plan, budget, pt.ErrBound)
				pts = append(pts, pt)
			}
			sdone()
		}
	}
	if !ran {
		return nil, fmt.Errorf("bench: streaming-dist needs at least one proc count ≥ 2 (got %v)", cfg.Procs)
	}
	return pts, nil
}

// meshBatch draws k valid mutations with a road-traffic profile: mostly
// congestion reweights of existing links, an occasional new link or
// closure.
func meshBatch(rng *rand.Rand, g *graph.Graph, k int) []graph.Mutation {
	shadow := g.Clone()
	batch := make([]graph.Mutation, 0, k)
	for len(batch) < k {
		var m graph.Mutation
		switch rng.Intn(8) {
		case 0: // close a link
			if shadow.M() <= shadow.N {
				continue
			}
			e := shadow.Edges[rng.Intn(shadow.M())]
			m = graph.Mutation{Op: graph.OpRemoveEdge, U: e.U, V: e.V}
		case 1: // open a new local link
			u := int32(rng.Intn(shadow.N - 1))
			v := u + 1 + int32(rng.Intn(3))
			if int(v) >= shadow.N {
				continue
			}
			if _, exists := shadow.FindEdge(u, v); exists {
				continue
			}
			m = graph.Mutation{Op: graph.OpAddEdge, U: u, V: v, W: 1 + 29*rng.Float64()}
		default: // congestion: a link's travel time creeps up
			e := shadow.Edges[rng.Intn(shadow.M())]
			m = graph.Mutation{Op: graph.OpSetWeight, U: e.U, V: e.V, W: e.W * (1.05 + 0.15*rng.Float64())}
		}
		if err := shadow.Apply(m); err != nil {
			continue
		}
		batch = append(batch, m)
	}
	return batch
}
