package bench

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/machine/sim"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

// AblateCannon contrasts Cannon's point-to-point 2D algorithm (§5.2.2's
// classical baseline) against the broadcast-based SUMMA variants and the
// automatically chosen plan on a single frontier-style product T·A. Cannon
// is cost-optimal for square operands but cannot exploit the nonzero
// imbalance between a thin frontier and a square adjacency matrix — the
// motivation for the paper's richer variant space.
func AblateCannon(cfg Config) ([]Point, error) {
	cfg.fill()
	p := cfg.Procs[len(cfg.Procs)-1]
	q := 1
	for (q+1)*(q+1) <= p {
		q++
	}
	p = q * q // Cannon needs a square processor count
	fmt.Fprintf(cfg.Out, "\n== Ablation: Cannon vs broadcast-based SUMMA, one frontier product on p=%d ==\n", p)
	fmt.Fprintf(cfg.Out, "%-22s %12s %12s %12s %12s\n", "algorithm", "W (MB)", "S (#msgs)", "comm (s)", "model (s)")

	g, err := graph.Standin("orkut-sim", cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	nb := cfg.Batch
	mp := algebra.MultPathMonoid()
	trop := algebra.TropicalMonoid()
	adjCSR := g.Adjacency()
	adjCOO := adjCSR.ToCOO()
	sources := sampleSources(g.N, nb, cfg.Seed)
	frontier := buildFrontier(adjCSR, sources)

	type variant struct {
		name string
		plan *spgemm.Plan // nil = Cannon
	}
	auto := spgemm.Search(p, spgemm.Problem{
		M: nb, K: g.N, N: g.N,
		NNZA: int64(frontier.NNZ()), NNZB: int64(adjCSR.NNZ()),
		BytesA: 24, BytesB: 16, BytesC: 24,
	}, machine.DefaultModel(), spgemm.AnyPlan)
	variants := []variant{
		{name: "cannon", plan: nil},
		{name: "summa-AB " + planString(p, q, spgemm.VarAB), plan: &spgemm.Plan{P1: 1, P2: q, P3: q, X: spgemm.RoleA, YZ: spgemm.VarAB}},
		{name: "summa-BC " + planString(p, q, spgemm.VarBC), plan: &spgemm.Plan{P1: 1, P2: q, P3: q, X: spgemm.RoleA, YZ: spgemm.VarBC}},
		{name: "auto " + auto.String(), plan: &auto},
	}

	var pts []Point
	for _, v := range variants {
		mach := sim.New(p)
		stats, err := mach.Run(func(proc *machine.Proc) {
			sess := spgemm.NewSession(proc)
			sess.Workers = cfg.Workers
			shard := distmat.DistShard(p)
			f := distmat.FromGlobal(proc.Rank(), frontier, shard, mp)
			a := distmat.FromGlobal(proc.Rank(), adjCOO, shard, trop)
			if v.plan == nil {
				spgemm.Cannon(sess, f, a, algebra.BFAction, mp, mp, trop)
			} else {
				spgemm.Multiply(sess, *v.plan, f, a, algebra.BFAction, mp, mp, trop, false)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("bench: cannon ablation %s: %w", v.name, err)
		}
		pt := Point{
			Experiment: "ablate-cannon", Graph: g.Name, Engine: v.name,
			Procs: p, Batch: nb, N: g.N, M: g.M(),
			ModelSec: stats.ModelSec, CommSec: stats.CommSec,
			WallSec: stats.Wall.Seconds(),
			Bytes:   stats.MaxCost.Bytes, Msgs: stats.MaxCost.Msgs,
			MTEPSNode: mteps(g.AdjacencyNNZ(), nb, p, stats.ModelSec),
		}
		fmt.Fprintf(cfg.Out, "%-22s %12.3f %12d %12.5f %12.5f\n",
			v.name, float64(pt.Bytes)/1e6, pt.Msgs, pt.CommSec, pt.ModelSec)
		pts = append(pts, pt)
	}
	return pts, nil
}

func planString(p, q int, v spgemm.Variant) string {
	return fmt.Sprintf("1x%dx%d/%s", q, q, v)
}

// buildFrontier constructs the dense first-iteration MFBF frontier for the
// sampled sources.
func buildFrontier(adj *sparse.CSR[float64], sources []int32) *sparse.COO[algebra.MultPath] {
	coo := sparse.NewCOO[algebra.MultPath](len(sources), adj.Cols)
	for s, src := range sources {
		cols, vals := adj.Row(int(src))
		for k, v := range cols {
			if v == src {
				continue
			}
			coo.Append(int32(s), v, algebra.MultPath{W: vals[k], M: 1})
		}
	}
	return coo
}
