package bench

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Procs: []int{1, 4}, Quick: true, Batch: 8, Seed: 7}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	for _, id := range Experiments {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := quickCfg()
			cfg.Out = &buf
			pts, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(pts) == 0 {
				t.Fatalf("%s produced no points", id)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s printed nothing", id)
			}
			for _, p := range pts {
				// table2 reports graph properties and streaming-dist reports
				// comm trajectories; neither carries a throughput rate.
				if p.Err == "" && id != "table2" && id != "streaming-dist" && p.MTEPSNode <= 0 {
					t.Fatalf("%s: %s/%s p=%d has no rate", id, p.Graph, p.Engine, p.Procs)
				}
				if id == "streaming-dist" && p.Strategy == "" {
					t.Fatalf("%s: %s/%s p=%d has no strategy", id, p.Graph, p.Engine, p.Procs)
				}
			}
		})
	}
}

// TestStreamingDistAmortizes: the emitted trajectory must show operand
// reuse — every incremental apply that re-ran a minority of sources moves
// fewer modeled bytes than the from-scratch run at the same proc count.
func TestStreamingDistAmortizes(t *testing.T) {
	cfg := quickCfg()
	cfg.Seed = 3 // this stream contains a small-footprint congestion apply
	pts, err := Run("streaming-dist", cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[int]int64{}
	for _, p := range pts {
		if p.Strategy == "from-scratch" {
			baseline[p.Procs] = p.Bytes
		}
	}
	checked := 0
	for _, p := range pts {
		if p.Strategy != "incremental" || p.Affected == 0 || p.Affected > p.N/4 {
			continue
		}
		full, ok := baseline[p.Procs]
		if !ok {
			t.Fatalf("no from-scratch baseline for p=%d", p.Procs)
		}
		if p.Bytes >= full {
			t.Fatalf("incremental apply (affected %d/%d) moved %d bytes, from-scratch %d", p.Affected, p.N, p.Bytes, full)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no small-footprint incremental applies in this seed's stream (seed drifted?)")
	}
}

func TestFig1cWeightedSlowdown(t *testing.T) {
	cfg := quickCfg()
	pts, err := Run("fig1c", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: adding weights costs MFBC more than 2x in rate (more
	// iterations, denser frontiers). Compare at matching procs/E.
	var unweighted, weighted []Point
	for _, p := range pts {
		if p.Engine != "ctf-mfbc" {
			continue
		}
		if strings.HasSuffix(p.Graph, "-w") {
			weighted = append(weighted, p)
		} else {
			unweighted = append(unweighted, p)
		}
	}
	if len(weighted) == 0 || len(unweighted) != len(weighted) {
		t.Fatalf("unexpected series shapes: %d vs %d", len(unweighted), len(weighted))
	}
	slower := 0
	for i := range weighted {
		if weighted[i].Err != "" || unweighted[i].Err != "" {
			continue
		}
		if weighted[i].MTEPSNode < unweighted[i].MTEPSNode {
			slower++
		}
	}
	if slower < len(weighted)/2 {
		t.Fatalf("weighted MFBC faster than unweighted in %d/%d points", len(weighted)-slower, len(weighted))
	}
}

func TestTable3ReportsBothEngines(t *testing.T) {
	cfg := quickCfg()
	pts, err := Run("table3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]bool{}
	for _, p := range pts {
		engines[p.Engine] = true
		if p.Err == "" && (p.Bytes == 0 || p.Msgs == 0) {
			t.Fatalf("table3 %s/%s has empty comm costs", p.Graph, p.Engine)
		}
	}
	if !engines["ctf-mfbc"] || !engines["combblas"] {
		t.Fatal("table3 must cover both codes")
	}
}

func TestSampleSources(t *testing.T) {
	s := sampleSources(100, 10, 3)
	if len(s) != 10 {
		t.Fatalf("got %d sources", len(s))
	}
	seen := map[int32]bool{}
	for i, v := range s {
		if v < 0 || v >= 100 {
			t.Fatal("source out of range")
		}
		if seen[v] {
			t.Fatal("duplicate source")
		}
		seen[v] = true
		if i > 0 && s[i-1] >= v {
			t.Fatal("sources must be sorted")
		}
	}
	if got := sampleSources(5, 10, 1); len(got) != 5 {
		t.Fatal("clamp to n failed")
	}
}

func TestMTEPS(t *testing.T) {
	if mteps(1000, 10, 2, 0.001) != 1000*10/0.001/1e6/2 {
		t.Fatal("mteps formula wrong")
	}
	if mteps(1, 1, 1, 0) != 0 {
		t.Fatal("zero time must yield zero rate")
	}
}

// TestTransportDifferential re-runs one experiment per engine family on
// the loopback TCP mesh and requires every modeled column to match the
// simulated backend exactly — the bench-level pin that -transport only
// changes how bytes move, never what the machine computes.
func TestTransportDifferential(t *testing.T) {
	for _, id := range []string{"fig1c", "streaming-dist"} {
		id := id
		t.Run(id, func(t *testing.T) {
			sim := quickCfg()
			tcp := quickCfg()
			tcp.Transport = "tcp"
			simPts, err := Run(id, sim)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			tcpPts, err := Run(id, tcp)
			if err != nil {
				t.Fatalf("tcp: %v", err)
			}
			if len(simPts) != len(tcpPts) {
				t.Fatalf("point counts: sim %d, tcp %d", len(simPts), len(tcpPts))
			}
			for i := range simPts {
				s, c := simPts[i], tcpPts[i]
				if s.Graph != c.Graph || s.Engine != c.Engine || s.Procs != c.Procs {
					t.Fatalf("point %d identity diverged: sim %+v, tcp %+v", i, s, c)
				}
				if s.ModelSec != c.ModelSec || s.CommSec != c.CommSec ||
					s.Bytes != c.Bytes || s.Msgs != c.Msgs || s.Plan != c.Plan ||
					s.MTEPSNode != c.MTEPSNode || s.Err != c.Err {
					t.Errorf("point %d (%s/%s p=%d): modeled columns diverged:\n sim %+v\n tcp %+v",
						i, s.Graph, s.Engine, s.Procs, s, c)
				}
			}
		})
	}
}
