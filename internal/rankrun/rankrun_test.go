package rankrun

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/graph"
	"repro/internal/machine/tcpnet"
)

// mesh brings up a p-rank loopback mesh with workers already looping in
// ServeWorker, and returns the coordinator's driver.
func mesh(t *testing.T, p int) (*Driver, *tcpnet.LocalMesh, *sync.WaitGroup) {
	t.Helper()
	lm, err := tcpnet.StartLocalMesh(p, tcpnet.Options{})
	if err != nil {
		t.Fatalf("loopback mesh: %v", err)
	}
	t.Cleanup(func() { lm.Close() })
	d, err := NewDriver(lm.Rank(0))
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, p)
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			workerErrs[r] = ServeWorker(lm.Rank(r))
		}(r)
	}
	t.Cleanup(func() {
		wg.Wait()
		for r, err := range workerErrs {
			if err != nil {
				t.Errorf("worker rank %d: %v", r, err)
			}
		}
	})
	return d, lm, &wg
}

// stream is a deterministic mutation workload touching every op kind.
func stream() [][]graph.Mutation {
	return [][]graph.Mutation{
		{{Op: graph.OpAddEdge, U: 0, V: 14, W: 2}},
		{{Op: graph.OpSetWeight, U: 0, V: 1, W: 3}, {Op: graph.OpAddEdge, U: 3, V: 17, W: 1}},
		{{Op: graph.OpRemoveEdge, U: 0, V: 14}, {Op: graph.OpAddVertex}},
		{{Op: graph.OpAddEdge, U: 2, V: 20, W: 4}},
	}
}

// TestReplicatedMatchesLocal drives the same mutation stream through a
// 4-rank replicated engine and a plain in-process engine (simulated
// machine) and requires bit-identical scores, versions, and strategy
// decisions on every apply — the acceptance bar for the TCP backend.
func TestReplicatedMatchesLocal(t *testing.T) {
	const p = 4
	d, _, _ := mesh(t, p)
	defer d.Shutdown()

	g := graph.Grid2D(5, 4, 8, 13)
	opt := repro.DynamicOptions{Procs: p, Workers: 1, Batch: 4, Seed: 7}

	eng, err := d.NewEngine("g", g, opt)
	if err != nil {
		t.Fatalf("replicated engine: %v", err)
	}
	ref, err := repro.NewDynamicBC(g, opt)
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	for i, batch := range stream() {
		rep, err := eng.Apply(batch)
		if err != nil {
			t.Fatalf("apply %d (replicated): %v", i, err)
		}
		want, err := ref.Apply(batch)
		if err != nil {
			t.Fatalf("apply %d (reference): %v", i, err)
		}
		if rep.Strategy != want.Strategy || rep.Version != want.Version || rep.Affected != want.Affected {
			t.Fatalf("apply %d: decision diverged: got (%s v%d a%d), want (%s v%d a%d)",
				i, rep.Strategy, rep.Version, rep.Affected, want.Strategy, want.Version, want.Affected)
		}
	}
	got, want := eng.Scores(), ref.Scores()
	if got.Version != want.Version || len(got.BC) != len(want.BC) {
		t.Fatalf("snapshot shape: got v%d n=%d, want v%d n=%d", got.Version, len(got.BC), want.Version, len(want.BC))
	}
	for i := range got.BC {
		if got.BC[i] != want.BC[i] {
			t.Fatalf("score %d: tcpnet %v != sim %v", i, got.BC[i], want.BC[i])
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestValidationErrorKeepsLockstep applies an invalid batch (rejected on
// every rank before any machine region) and checks the session still
// works afterwards.
func TestValidationErrorKeepsLockstep(t *testing.T) {
	const p = 2
	d, _, _ := mesh(t, p)
	defer d.Shutdown()

	g := graph.Grid2D(4, 4, 1, 1)
	eng, err := d.NewEngine("g", g, repro.DynamicOptions{Procs: p, Workers: 1})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng.Apply([]graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 0, W: 1}}); err == nil {
		t.Fatal("self-loop batch: want error, got nil")
	}
	rep, err := eng.Apply([]graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 15, W: 1}})
	if err != nil {
		t.Fatalf("apply after rejected batch: %v", err)
	}
	if rep.Applied != 1 {
		t.Fatalf("applied = %d, want 1", rep.Applied)
	}
}

// TestMultipleEngines interleaves applies on two named engines over one
// mesh; the driver serializes them onto the shared machine.
func TestMultipleEngines(t *testing.T) {
	const p = 2
	d, _, _ := mesh(t, p)
	defer d.Shutdown()

	engines := make([]*Engine, 2)
	for i := range engines {
		g := graph.Grid2D(4, 4, i+1, int64(i))
		e, err := d.NewEngine(fmt.Sprintf("g%d", i), g, repro.DynamicOptions{Procs: p, Workers: 1})
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		engines[i] = e
	}
	for round := 0; round < 2; round++ {
		for i, e := range engines {
			m := graph.Mutation{Op: graph.OpAddEdge, U: int32(i), V: int32(8 + round), W: 1}
			if _, err := e.Apply([]graph.Mutation{m}); err != nil {
				t.Fatalf("round %d engine %d: %v", round, i, err)
			}
		}
	}
	for i, e := range engines {
		if got := e.Scores().Seq; got != 2 {
			t.Fatalf("engine %d seq = %d, want 2", i, got)
		}
	}
}

// TestEngineProcsMustMatchMesh pins the size validation.
func TestEngineProcsMustMatchMesh(t *testing.T) {
	const p = 2
	d, _, _ := mesh(t, p)
	defer d.Shutdown()
	if _, err := d.NewEngine("g", graph.Grid2D(3, 3, 1, 1), repro.DynamicOptions{Procs: p + 1}); err == nil {
		t.Fatal("mismatched Procs: want error, got nil")
	}
}
