// Package rankrun replicates streaming-engine sessions across a
// rank-per-process TCP machine (internal/machine/tcpnet).
//
// The dynamic engine's host-side decisions — strategy selection, affected
// sources, batch diffs, sampled-mode source draws — are deterministic
// functions of (initial graph, options, batch sequence). rankrun exploits
// that: every process runs a complete replica of the engine, and only the
// op stream (engine creation, mutation batches, teardown) travels over
// the coordinator's control plane. When a replicated engine enters a
// machine region, all ranks enter the same region over the shared mesh,
// each contributing its own rank's shard of the collectives; scores and
// modeled statistics come out identical on every process.
//
// The coordinator (rank 0, e.g. mfbc-serve) drives engines through
// Driver; workers (cmd/mfbc-rank) loop in ServeWorker. Each op is
// broadcast before the coordinator's local call, so worker replicas enter
// the region concurrently with it, and acknowledged by every worker after
// it, so the op channel never skews by more than one op.
//
// A failed machine region poisons the underlying transport (peer streams
// may have died mid-frame); the driver surfaces the error and the
// deployment must rebuild the mesh — there is no in-place recovery.
package rankrun

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"repro"
	"repro/internal/graph"
	"repro/internal/machine/tcpnet"
)

// Op kinds of the replication wire protocol.
const (
	opEngine   = "engine"   // build a replica engine (graph + options)
	opApply    = "apply"    // apply one mutation batch on the named engine
	opDrop     = "drop"     // discard the named engine
	opShutdown = "shutdown" // end the worker loop
)

// op is one replicated operation, gob-encoded onto the control plane.
// Opt travels with a nil Transport (the field is process-local; each rank
// substitutes its own endpoint).
type op struct {
	Kind  string
	Name  string
	Graph *graph.Graph         // opEngine
	Opt   repro.DynamicOptions // opEngine
	Batch []graph.Mutation     // opApply
}

func encodeOp(o op) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(o); err != nil {
		return nil, fmt.Errorf("rankrun: encoding %s op: %w", o.Kind, err)
	}
	return buf.Bytes(), nil
}

// Driver is the coordinator's handle on the replicated worker fleet. All
// engine-building and apply traffic across every graph funnels through
// one driver, serialized by its mutex: the mesh is a single shared
// machine, and interleaving two engines' regions on it would corrupt the
// superstep streams.
type Driver struct {
	tr *tcpnet.Transport
	mu sync.Mutex
}

// NewDriver wraps the coordinator's transport (rank 0 of the mesh).
func NewDriver(tr *tcpnet.Transport) (*Driver, error) {
	if tr.Rank() != 0 {
		return nil, fmt.Errorf("rankrun: driver needs the coordinator rank, got rank %d", tr.Rank())
	}
	return &Driver{tr: tr}, nil
}

// Size returns the mesh's world size p.
func (d *Driver) Size() int { return d.tr.Size() }

// do broadcasts one op, runs the coordinator's local share, then collects
// every worker's acknowledgement. The local error wins (a region failure
// usually fails the collect too); a worker-only failure means the
// replicas diverged, which is fatal to the session.
func (d *Driver) do(o op, local func() error) error {
	raw, err := encodeOp(o)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.tr.OpBroadcast(raw); err != nil {
		return err
	}
	localErr := local()
	collectErr := d.tr.OpCollect()
	if localErr != nil {
		return localErr
	}
	if collectErr != nil {
		return fmt.Errorf("rankrun: replicas diverged on %s op: %w", o.Kind, collectErr)
	}
	return nil
}

// Engine is one replicated streaming engine: a local repro.DynamicBC
// whose applies are mirrored on every worker rank. Reads (Scores, Stats,
// Graph, Log) are host-side and served locally.
type Engine struct {
	d    *Driver
	name string
	bc   *repro.DynamicBC
}

// NewEngine builds the named engine on every rank of the mesh. opt.Procs
// must equal the mesh size (every sweep runs one shard per process);
// opt.Transport is ignored and replaced per rank.
func (d *Driver) NewEngine(name string, g *graph.Graph, opt repro.DynamicOptions) (*Engine, error) {
	if opt.Procs != d.tr.Size() {
		return nil, fmt.Errorf("rankrun: engine %q wants %d procs on a %d-rank mesh", name, opt.Procs, d.tr.Size())
	}
	opt.Transport = nil
	var bc *repro.DynamicBC
	err := d.do(op{Kind: opEngine, Name: name, Graph: g, Opt: opt}, func() error {
		lopt := opt
		lopt.Transport = d.tr
		var lerr error
		bc, lerr = repro.NewDynamicBC(g, lopt)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	return &Engine{d: d, name: name, bc: bc}, nil
}

// Apply is ApplyCtx with a background context.
func (e *Engine) Apply(batch []graph.Mutation) (repro.ApplyReport, error) {
	return e.ApplyCtx(context.Background(), batch)
}

// ApplyCtx applies one mutation batch on every replica. The batch is
// broadcast before the local apply, so all ranks run the machine regions
// of this apply together.
func (e *Engine) ApplyCtx(ctx context.Context, batch []graph.Mutation) (repro.ApplyReport, error) {
	var rep repro.ApplyReport
	err := e.d.do(op{Kind: opApply, Name: e.name, Batch: batch}, func() error {
		var lerr error
		rep, lerr = e.bc.ApplyCtx(ctx, batch)
		return lerr
	})
	if err != nil {
		return repro.ApplyReport{}, err
	}
	return rep, nil
}

// Scores returns the coordinator replica's consistent snapshot.
func (e *Engine) Scores() repro.DynamicSnapshot { return e.bc.Scores() }

// Stats returns the coordinator replica's cumulative counters.
func (e *Engine) Stats() repro.DynamicStats { return e.bc.Stats() }

// Graph returns the coordinator replica's current topology snapshot.
func (e *Engine) Graph() *graph.Graph { return e.bc.Graph() }

// Log returns the coordinator replica's mutation history.
func (e *Engine) Log() []graph.Mutation { return e.bc.Log() }

// Close drops the engine on every worker, releasing the replica state.
// The coordinator's local replica is released with the Engine itself.
func (e *Engine) Close() error {
	return e.d.do(op{Kind: opDrop, Name: e.name}, func() error { return nil })
}

// Shutdown ends every worker's ServeWorker loop. The mesh itself stays
// up; close the transport separately.
func (d *Driver) Shutdown() error {
	return d.do(op{Kind: opShutdown}, func() error { return nil })
}

// ServeWorker runs one worker rank's replication loop: receive an op,
// mirror it on the local replicas, acknowledge, repeat until a shutdown
// op or a transport failure. It returns nil on orderly shutdown.
func ServeWorker(tr *tcpnet.Transport) error {
	if tr.Rank() == 0 {
		return errors.New("rankrun: ServeWorker called on the coordinator rank")
	}
	engines := make(map[string]*repro.DynamicBC)
	for {
		raw, err := tr.NextOp()
		if err != nil {
			return err
		}
		var o op
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&o); err != nil {
			// An undecodable op means the control stream is corrupt; tell
			// the coordinator and bail out.
			err = fmt.Errorf("rankrun: rank %d decoding op: %w", tr.Rank(), err)
			tr.AckOp(err)
			return err
		}
		var opErr error
		switch o.Kind {
		case opEngine:
			lopt := o.Opt
			lopt.Transport = tr
			var bc *repro.DynamicBC
			bc, opErr = repro.NewDynamicBC(o.Graph, lopt)
			if opErr == nil {
				engines[o.Name] = bc
			}
		case opApply:
			bc := engines[o.Name]
			if bc == nil {
				opErr = fmt.Errorf("rankrun: rank %d has no engine %q", tr.Rank(), o.Name)
			} else {
				_, opErr = bc.Apply(o.Batch)
			}
		case opDrop:
			delete(engines, o.Name)
		case opShutdown:
			tr.AckOp(nil)
			return nil
		default:
			opErr = fmt.Errorf("rankrun: rank %d: unknown op kind %q", tr.Rank(), o.Kind)
		}
		// Replica-side failures are acknowledged, not fatal here: a
		// validation error rejects the batch identically on every rank
		// (lockstep holds), and a region failure poisons the transport,
		// which ends the loop through the next NextOp anyway.
		if err := tr.AckOp(opErr); err != nil {
			return err
		}
	}
}
