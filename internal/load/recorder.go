package load

import (
	"sort"
	"sync"
	"time"
)

// Sample is one observed request outcome: which cohort sent it, when it
// was scheduled (offset from run start), how long until its response, and
// whether the response was a success.
type Sample struct {
	Cohort  string
	Start   time.Duration
	Latency time.Duration
	OK      bool
	// Op distinguishes query from mutate samples; QueueWaitMS is the
	// server-reported time a mutate batch spent in the write-ahead queue
	// before its group commit started (async ingestion only), so the
	// sweep can separate queue time from apply time.
	Op          Op
	QueueWaitMS float64
}

// Recorder collects samples from concurrent driver goroutines and
// aggregates them into per-cohort and per-window statistics. It keeps the
// raw samples (a load-harness run is at most a few hundred thousand
// requests), so percentiles are exact nearest-rank values rather than
// sketch approximations.
type Recorder struct {
	window time.Duration

	mu      sync.Mutex
	samples []Sample // guarded by mu
}

// NewRecorder creates a recorder that buckets window statistics into
// intervals of the given width (default 1s if nonpositive).
func NewRecorder(window time.Duration) *Recorder {
	if window <= 0 {
		window = time.Second
	}
	return &Recorder{window: window}
}

// Observe records one completed request. Safe for concurrent use.
func (r *Recorder) Observe(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, s)
}

// Len reports how many samples have been observed.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

func (r *Recorder) snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// LatencyStats are nearest-rank percentiles in milliseconds.
type LatencyStats struct {
	P50MS float64
	P95MS float64
	P99MS float64
	MaxMS float64
}

// percentiles computes nearest-rank percentiles over lats (which it
// sorts in place). Zero-valued for an empty slice.
func percentiles(lats []time.Duration) LatencyStats {
	if len(lats) == 0 {
		return LatencyStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := func(q float64) float64 {
		idx := int(q*float64(len(lats))+0.999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	return LatencyStats{
		P50MS: rank(0.50),
		P95MS: rank(0.95),
		P99MS: rank(0.99),
		MaxMS: float64(lats[len(lats)-1]) / float64(time.Millisecond),
	}
}

// CohortSummary aggregates one cohort (or the whole run, Cohort "all")
// over the full duration. Latency percentiles cover all completed
// requests; GoodputRPS counts only successes.
type CohortSummary struct {
	Cohort     string
	Requests   int
	Errors     int
	RPS        float64
	GoodputRPS float64
	Lat        LatencyStats
	// MutateRequests counts the cohort's mutate samples; QueueWait is the
	// percentile spread of their server-reported write-ahead queue waits
	// (zero-valued when the target runs without async ingestion).
	MutateRequests int
	QueueWait      LatencyStats
}

func summarize(cohort string, samples []Sample, elapsed time.Duration) CohortSummary {
	sum := CohortSummary{Cohort: cohort, Requests: len(samples)}
	lats := make([]time.Duration, 0, len(samples))
	var waits []time.Duration
	for _, s := range samples {
		if !s.OK {
			sum.Errors++
		}
		lats = append(lats, s.Latency)
		if s.Op == OpMutate {
			sum.MutateRequests++
			waits = append(waits, time.Duration(s.QueueWaitMS*float64(time.Millisecond)))
		}
	}
	sum.Lat = percentiles(lats)
	sum.QueueWait = percentiles(waits)
	if elapsed > 0 {
		secs := elapsed.Seconds()
		sum.RPS = float64(sum.Requests) / secs
		sum.GoodputRPS = float64(sum.Requests-sum.Errors) / secs
	}
	return sum
}

// Summaries returns one CohortSummary per cohort, sorted by name, over
// the run's elapsed wall time.
func (r *Recorder) Summaries(elapsed time.Duration) []CohortSummary {
	samples := r.snapshot()
	byCohort := make(map[string][]Sample)
	for _, s := range samples {
		byCohort[s.Cohort] = append(byCohort[s.Cohort], s)
	}
	names := make([]string, 0, len(byCohort))
	for name := range byCohort {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CohortSummary, 0, len(names))
	for _, name := range names {
		out = append(out, summarize(name, byCohort[name], elapsed))
	}
	return out
}

// Total aggregates every sample into a single summary (Cohort "all").
func (r *Recorder) Total(elapsed time.Duration) CohortSummary {
	return summarize("all", r.snapshot(), elapsed)
}

// WindowStats is one (window, cohort) cell of the run timeline: requests
// scheduled in [Index·width, (Index+1)·width).
type WindowStats struct {
	Index    int
	Cohort   string
	Requests int
	Errors   int
	RPS      float64
	Lat      LatencyStats
}

type windowKey struct {
	index  int
	cohort string
}

// Windows buckets samples by scheduled start into the recorder's window
// width and returns per-(window, cohort) rows in timeline order.
func (r *Recorder) Windows() []WindowStats {
	samples := r.snapshot()
	byKey := make(map[windowKey][]Sample)
	for _, s := range samples {
		k := windowKey{index: int(s.Start / r.window), cohort: s.Cohort}
		byKey[k] = append(byKey[k], s)
	}
	keys := make([]windowKey, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].index != keys[j].index {
			return keys[i].index < keys[j].index
		}
		return keys[i].cohort < keys[j].cohort
	})
	out := make([]WindowStats, 0, len(keys))
	for _, k := range keys {
		sum := summarize(k.cohort, byKey[k], r.window)
		out = append(out, WindowStats{
			Index: k.index, Cohort: k.cohort,
			Requests: sum.Requests, Errors: sum.Errors,
			RPS: sum.RPS, Lat: sum.Lat,
		})
	}
	return out
}
