package load

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
	"repro/internal/server"
)

// TraceConfig describes a workload: who sends (Cohorts), against what
// (Graphs), how fast (Schedule, open loop only), for how long (Horizon),
// and from which seed. The same config generates the same trace, always.
type TraceConfig struct {
	Cohorts  []CohortSpec
	Graphs   []*SeededGraph
	Schedule Schedule
	Horizon  time.Duration
	Seed     int64
}

func (cfg *TraceConfig) validate() ([]CohortSpec, error) {
	if len(cfg.Cohorts) == 0 {
		return nil, fmt.Errorf("load: no cohorts")
	}
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("load: no graphs")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("load: horizon must be positive, got %s", cfg.Horizon)
	}
	cohorts := make([]CohortSpec, len(cfg.Cohorts))
	for i, c := range cfg.Cohorts {
		filled, err := c.withDefaults()
		if err != nil {
			return nil, err
		}
		cohorts[i] = filled
	}
	return cohorts, nil
}

// synth deterministically turns (cohort, rng) draws into requests. One
// synth per request stream: the open-loop generator uses a single shared
// instance, each closed-loop client gets its own with a derived seed.
type synth struct {
	rng    *rand.Rand
	graphs []*SeededGraph
	zipf   map[string]*rand.Zipf // cohort name → graph-popularity sampler
}

func newSynth(seed int64, cohorts []CohortSpec, graphs []*SeededGraph) *synth {
	sy := &synth{
		rng:    rand.New(rand.NewSource(seed)),
		graphs: graphs,
		zipf:   make(map[string]*rand.Zipf, len(cohorts)),
	}
	for _, c := range cohorts {
		if c.Popularity == "zipf" && len(graphs) > 1 {
			// Zipf over graph ranks 0..len-1; v=1 gives P(k) ∝ 1/(1+k)^s.
			sy.zipf[c.Name] = rand.NewZipf(sy.rng, c.ZipfS, 1, uint64(len(graphs)-1))
		}
	}
	return sy
}

// pickGraph draws the addressed graph under the cohort's popularity
// distribution. Graph 0 is the hottest zipf key.
func (sy *synth) pickGraph(c *CohortSpec) *SeededGraph {
	if z, ok := sy.zipf[c.Name]; ok {
		return sy.graphs[int(z.Uint64())]
	}
	return sy.graphs[sy.rng.Intn(len(sy.graphs))]
}

// request draws one request for cohort c scheduled at offset at.
func (sy *synth) request(c *CohortSpec, at time.Duration) Request {
	sg := sy.pickGraph(c)
	req := Request{At: at, Cohort: c.Name, Graph: sg.Name}
	switch c.Kind {
	case "exact":
		req.Op = OpQuery
		req.Query = &server.QueryRequest{Graph: sg.Name, K: c.K, IncludeScores: true}
	case "topk":
		req.Op = OpQuery
		req.Query = &server.QueryRequest{Graph: sg.Name, K: c.K}
	case "sampled":
		req.Op = OpQuery
		req.Query = &server.QueryRequest{
			Graph:   sg.Name,
			K:       c.K,
			Samples: c.Samples,
			Seed:    1 + int64(sy.rng.Intn(c.SeedSpace)),
		}
	case "mutate":
		req.Op = OpMutate
		muts := make([]repro.Mutation, c.BatchSize)
		for i := range muts {
			e := sg.edges[sy.rng.Intn(len(sg.edges))]
			muts[i] = repro.Mutation{
				Op: repro.MutSetWeight, U: e.U, V: e.V,
				W: float64(1 + sy.rng.Intn(9)),
			}
		}
		req.Mutations = muts
	}
	return req
}

// pickCohort draws a cohort index proportionally to Weight.
func pickCohort(rng *rand.Rand, cum []float64) int {
	x := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

func weightCum(cohorts []CohortSpec) []float64 {
	cum := make([]float64, len(cohorts))
	total := 0.0
	for i, c := range cohorts {
		total += c.Weight
		cum[i] = total
	}
	return cum
}

// GenerateTrace builds the full open-loop request trace: Poisson arrivals
// following cfg.Schedule (time-varying rates are realized by thinning
// against the schedule's MaxRate envelope), cohorts chosen by weight,
// request bodies synthesized per cohort. Deterministic: identical configs
// and seeds yield identical traces.
func GenerateTrace(cfg TraceConfig) ([]Request, error) {
	cohorts, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("load: open-loop trace needs a schedule")
	}
	env := cfg.Schedule.MaxRate(cfg.Horizon)
	if env <= 0 {
		return nil, fmt.Errorf("load: schedule %s has nonpositive max rate", cfg.Schedule)
	}
	sy := newSynth(cfg.Seed, cohorts, cfg.Graphs)
	cum := weightCum(cohorts)

	var trace []Request
	t := time.Duration(0)
	for {
		// Homogeneous Poisson process at the envelope rate...
		t += time.Duration(sy.rng.ExpFloat64() / env * float64(time.Second))
		if t >= cfg.Horizon {
			break
		}
		// ...thinned down to the schedule's instantaneous rate.
		if sy.rng.Float64()*env > cfg.Schedule.RateAt(t) {
			continue
		}
		c := &cohorts[pickCohort(sy.rng, cum)]
		trace = append(trace, sy.request(c, t))
	}
	return trace, nil
}

// ClientStream is the deterministic request sequence of one closed-loop
// client. Distinct clients derive distinct seeds from the config seed, so
// a closed-loop run is reproducible client by client.
type ClientStream struct {
	sy     *synth
	cohort CohortSpec
}

// NewClientStream returns the stream of client number `client` of cohort
// `cohort` (indices into cfg.Cohorts and [0, Clients)).
func NewClientStream(cfg TraceConfig, cohort, client int) (*ClientStream, error) {
	cohorts, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if cohort < 0 || cohort >= len(cohorts) {
		return nil, fmt.Errorf("load: cohort index %d out of range", cohort)
	}
	// Fixed mixing constants spread client streams across the seed space;
	// any collision-free affine map works, it just has to be stable.
	seed := cfg.Seed + int64(cohort+1)*1_000_003 + int64(client)*7919
	c := cohorts[cohort]
	return &ClientStream{sy: newSynth(seed, cohorts[cohort:cohort+1], cfg.Graphs), cohort: c}, nil
}

// Next draws the client's next request. Closed-loop requests carry no
// scheduled offset (the driver paces by think time).
func (cs *ClientStream) Next() Request {
	return cs.sy.request(&cs.cohort, 0)
}
