package load

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
)

func testGraphs(t *testing.T) []*SeededGraph {
	t.Helper()
	hot, err := NewSeededGraph("hot", server.GraphSpec{Kind: "grid", Rows: 8, Cols: 8, MaxWeight: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewSeededGraph("warm", server.GraphSpec{Kind: "uniform", N: 48, M: 160, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return []*SeededGraph{hot, warm}
}

func testCohorts() []CohortSpec {
	return []CohortSpec{
		{Name: "readers", Kind: "topk", Weight: 4},
		{Name: "dashboards", Kind: "sampled", Weight: 2, Popularity: "zipf", SeedSpace: 3},
		{Name: "writers", Kind: "mutate", Weight: 1, BatchSize: 2},
	}
}

// TestGenerateTraceDeterminism is the reproducibility contract of the
// harness: identical configs and seeds yield bit-identical traces;
// different seeds do not.
func TestGenerateTraceDeterminism(t *testing.T) {
	cfg := TraceConfig{
		Cohorts:  testCohorts(),
		Graphs:   testGraphs(t),
		Schedule: Constant{RPS: 500},
		Horizon:  2 * time.Second,
		Seed:     42,
	}
	a, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}

	cfg.Seed = 43
	c, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}

	// ~500 rps over 2s: the Poisson count must land near 1000.
	if len(a) < 700 || len(a) > 1300 {
		t.Fatalf("trace length %d wildly off the offered 1000", len(a))
	}
	// Arrivals are sorted and inside the horizon; every cohort shows up.
	seen := map[string]int{}
	for i, r := range a {
		if i > 0 && r.At < a[i-1].At {
			t.Fatalf("arrival %d out of order", i)
		}
		if r.At < 0 || r.At >= cfg.Horizon {
			t.Fatalf("arrival %d outside horizon: %s", i, r.At)
		}
		seen[r.Cohort]++
	}
	for _, c := range testCohorts() {
		if seen[c.Name] == 0 {
			t.Fatalf("cohort %q generated no requests (%v)", c.Name, seen)
		}
	}
	// Weight 4:2:1 must be visible in the mix.
	if seen["readers"] <= seen["dashboards"] || seen["dashboards"] <= seen["writers"] {
		t.Fatalf("cohort weights not respected: %v", seen)
	}
}

// TestGenerateTraceMutationsAreValid pins the mutate-cohort contract:
// every generated mutation reweights an edge that really exists in the
// addressed graph, so a live server accepts whole traces without drawing
// rejected mutations.
func TestGenerateTraceMutationsAreValid(t *testing.T) {
	graphs := testGraphs(t)
	edges := make(map[string]map[[2]int32]bool)
	for _, sg := range graphs {
		set := make(map[[2]int32]bool, len(sg.edges))
		for _, e := range sg.edges {
			set[[2]int32{e.U, e.V}] = true
		}
		edges[sg.Name] = set
	}
	trace, err := GenerateTrace(TraceConfig{
		Cohorts:  []CohortSpec{{Name: "writers", Kind: "mutate", BatchSize: 3}},
		Graphs:   graphs,
		Schedule: Constant{RPS: 200},
		Horizon:  time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace {
		if r.Op != OpMutate || len(r.Mutations) != 3 {
			t.Fatalf("writer request malformed: %+v", r)
		}
		for _, m := range r.Mutations {
			if !edges[r.Graph][[2]int32{m.U, m.V}] {
				t.Fatalf("mutation targets non-edge (%d,%d) of %q", m.U, m.V, r.Graph)
			}
			if m.W < 1 || m.W > 9 {
				t.Fatalf("mutation weight %v outside [1,9]", m.W)
			}
		}
	}
}

// TestClientStreamDeterminism pins closed-loop reproducibility: the same
// (cohort, client) pair replays the same stream; distinct clients diverge.
func TestClientStreamDeterminism(t *testing.T) {
	cfg := TraceConfig{
		Cohorts: testCohorts(),
		Graphs:  testGraphs(t),
		Horizon: time.Second,
		Seed:    7,
	}
	s1, err := NewClientStream(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewClientStream(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewClientStream(cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	same, diff := true, false
	for i := 0; i < 32; i++ {
		a, b, c := s1.Next(), s2.Next(), other.Next()
		if !reflect.DeepEqual(a, b) {
			same = false
		}
		if !reflect.DeepEqual(a, c) {
			diff = true
		}
		if a.Cohort != "dashboards" {
			t.Fatalf("stream of cohort 1 emitted cohort %q", a.Cohort)
		}
	}
	if !same {
		t.Fatal("identical clients diverged")
	}
	if !diff {
		t.Fatal("distinct clients replayed the same stream")
	}
}

// TestTraceRoundTrip pins record/replay: write → read is lossless.
func TestTraceRoundTrip(t *testing.T) {
	trace, err := GenerateTrace(TraceConfig{
		Cohorts:  testCohorts(),
		Graphs:   testGraphs(t),
		Schedule: Constant{RPS: 300},
		Horizon:  time.Second,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace, back) {
		t.Fatal("trace changed across a JSONL round trip")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("{bogus\n"))); err == nil {
		t.Fatal("malformed trace line must error")
	}
}

func TestSchedules(t *testing.T) {
	const eps = 1e-12
	c, err := ParseSchedule("constant", 100)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.RateAt(time.Hour); math.Abs(r-100) > eps {
		t.Fatalf("constant rate = %g", r)
	}

	s, err := ParseSchedule("step:2@10s", 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{{0, 50}, {9 * time.Second, 50}, {10 * time.Second, 100}, {25 * time.Second, 200}} {
		if r := s.RateAt(tc.at); math.Abs(r-tc.want) > eps {
			t.Fatalf("step rate at %s = %g, want %g", tc.at, r, tc.want)
		}
	}
	if m := s.MaxRate(30 * time.Second); math.Abs(m-200) > eps {
		t.Fatalf("step max over 30s = %g, want 200", m)
	}

	d, err := ParseSchedule("diurnal:0.5@40s", 80)
	if err != nil {
		t.Fatal(err)
	}
	if r := d.RateAt(10 * time.Second); math.Abs(r-120) > 1e-9 {
		t.Fatalf("diurnal peak = %g, want 120", r)
	}
	if m := d.MaxRate(time.Minute); math.Abs(m-120) > eps {
		t.Fatalf("diurnal max = %g, want 120", m)
	}
	if r := d.RateAt(30 * time.Second); math.Abs(r-40) > 1e-9 {
		t.Fatalf("diurnal trough = %g, want 40", r)
	}

	for _, bad := range []string{"nope", "step:0@1s", "step:2@0s", "diurnal:2@1s", "step:2"} {
		if _, err := ParseSchedule(bad, 10); err == nil {
			t.Fatalf("schedule %q must be rejected", bad)
		}
	}
	if _, err := ParseSchedule("constant", 0); err == nil {
		t.Fatal("zero base rate must be rejected")
	}
}

func TestCohortValidation(t *testing.T) {
	for _, bad := range []CohortSpec{
		{Name: "x", Kind: "bogus"},
		{Name: "x", Kind: "topk", Weight: -1},
		{Name: "x", Kind: "topk", Popularity: "pareto"},
		{Name: "x", Kind: "topk", Popularity: "zipf", ZipfS: 0.5},
	} {
		if _, err := bad.withDefaults(); err == nil {
			t.Fatalf("cohort %+v must be rejected", bad)
		}
	}
	c, err := CohortSpec{Kind: "sampled"}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "sampled" || c.K != 10 || c.Samples != 16 || c.SeedSpace != 4 || c.Clients != 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
