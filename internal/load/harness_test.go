package load

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRecorderPercentiles feeds a known latency distribution (1..100 ms,
// one sample each) and checks the nearest-rank percentiles exactly.
func TestRecorderPercentiles(t *testing.T) {
	rec := NewRecorder(time.Second)
	for i := 1; i <= 100; i++ {
		rec.Observe(Sample{
			Cohort:  "c",
			Start:   time.Duration(i) * 10 * time.Millisecond,
			Latency: time.Duration(i) * time.Millisecond,
			OK:      i%10 != 0, // 10 errors
		})
	}
	total := rec.Total(2 * time.Second)
	if total.Requests != 100 || total.Errors != 10 {
		t.Fatalf("total = %+v", total)
	}
	const eps = 1e-9
	for _, tc := range []struct{ got, want float64 }{
		{total.Lat.P50MS, 50}, {total.Lat.P95MS, 95},
		{total.Lat.P99MS, 99}, {total.Lat.MaxMS, 100},
		{total.RPS, 50}, {total.GoodputRPS, 45},
	} {
		if math.Abs(tc.got-tc.want) > eps {
			t.Fatalf("percentile/rate mismatch: got %g want %g (total %+v)", tc.got, tc.want, total)
		}
	}

	sums := rec.Summaries(2 * time.Second)
	if len(sums) != 1 || sums[0].Cohort != "c" || sums[0].Requests != 100 {
		t.Fatalf("summaries = %+v", sums)
	}

	// Windows bucket by scheduled start: samples at 10ms..1000ms with a 1s
	// window put starts 10..990ms in window 0 and the 1000ms start in
	// window 1.
	wins := rec.Windows()
	if len(wins) != 2 || wins[0].Index != 0 || wins[0].Requests != 99 || wins[1].Requests != 1 {
		t.Fatalf("windows = %+v", wins)
	}
}

func TestRecorderEmpty(t *testing.T) {
	rec := NewRecorder(0)
	if got := rec.Total(time.Second); got.Requests != 0 || got.Lat.MaxMS > 0 {
		t.Fatalf("empty total = %+v", got)
	}
	if wins := rec.Windows(); len(wins) != 0 {
		t.Fatalf("empty windows = %+v", wins)
	}
}

// fakeTarget is a synthetic service with a hard capacity: `slots`
// concurrent requests, each taking `service` of wall time. Its saturation
// throughput is slots/service, known analytically — the ground truth the
// sweep's knee detector is tested against.
type fakeTarget struct {
	slots   chan struct{}
	service time.Duration

	mu    sync.Mutex
	stats server.Stats // guarded by mu
}

func newFakeTarget(slots int, service time.Duration) *fakeTarget {
	return &fakeTarget{slots: make(chan struct{}, slots), service: service}
}

func (f *fakeTarget) Do(r *Request) Outcome {
	f.slots <- struct{}{}
	time.Sleep(f.service)
	<-f.slots
	f.mu.Lock()
	f.stats.Queries++
	f.mu.Unlock()
	return Outcome{Status: 200}
}

func (f *fakeTarget) Register(string, server.GraphSpec) error { return nil }

func (f *fakeTarget) ServerStats() (server.Stats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats, nil
}

func (f *fakeTarget) Close() {}

// TestSweepFindsKnee sweeps a fake service whose capacity is known
// (4 slots × 5ms service = 800 rps) and checks the knee lands below
// capacity and that overload is flagged saturated.
func TestSweepFindsKnee(t *testing.T) {
	tg := newFakeTarget(4, 5*time.Millisecond)
	res, err := RunSweep(tg, SweepConfig{
		Cohorts:      []CohortSpec{{Name: "readers", Kind: "topk"}},
		Graphs:       testGraphs(t),
		Rates:        []float64{100, 200, 3200},
		StepDuration: 500 * time.Millisecond,
		Window:       100 * time.Millisecond,
		MaxInflight:  64,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.KneeFound {
		t.Fatalf("no knee found: %+v", res.Points)
	}
	if res.KneeIndex != 1 || math.Abs(res.KneeRPS-200) > 1e-9 {
		t.Fatalf("knee at index %d rate %g, want index 1 rate 200", res.KneeIndex, res.KneeRPS)
	}
	if len(res.Points) != 3 || res.Points[0].Saturated || res.Points[1].Saturated || !res.Points[2].Saturated {
		t.Fatalf("saturation flags wrong: %+v", res.Points)
	}

	pts := res.BenchPoints(testGraphs(t))
	// 3 steps × (1 aggregate + 1 cohort row).
	if len(pts) != 6 {
		t.Fatalf("bench points = %d, want 6", len(pts))
	}
	kneeRows := 0
	for _, p := range pts {
		if p.Experiment != "load-sweep" || p.Graph != "hot+warm" {
			t.Fatalf("bench point mislabeled: %+v", p)
		}
		if p.Knee {
			kneeRows++
			if p.Cohort != "all" || math.Abs(p.OfferedRPS-200) > 1e-9 {
				t.Fatalf("knee row wrong: %+v", p)
			}
		}
	}
	if kneeRows != 1 {
		t.Fatalf("knee rows = %d, want exactly 1", kneeRows)
	}
}

// TestSweepAllSaturated: when even the lowest rate exceeds capacity the
// sweep must stop after one point and report no knee.
func TestSweepAllSaturated(t *testing.T) {
	tg := newFakeTarget(1, 50*time.Millisecond) // capacity 20 rps
	res, err := RunSweep(tg, SweepConfig{
		Cohorts:      []CohortSpec{{Name: "readers", Kind: "topk"}},
		Graphs:       testGraphs(t),
		Rates:        []float64{400, 800},
		StepDuration: 300 * time.Millisecond,
		MaxInflight:  16,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KneeFound || res.KneeIndex != -1 || len(res.Points) != 1 || !res.Points[0].Saturated {
		t.Fatalf("overloaded sweep = %+v", res)
	}
}

// TestClosedLoopInProcess is the CI smoke test: a closed-loop mixed-cohort
// run against a real in-process server. Closed loop self-limits, so it
// cannot overrun a slow CI machine; every response must be a success and
// the server counters must show all three traffic classes.
func TestClosedLoopInProcess(t *testing.T) {
	tg := NewInprocTarget(server.Config{Workers: 1})
	defer tg.Close()
	graphs := testGraphs(t)
	if err := Seed(tg, graphs); err != nil {
		t.Fatal(err)
	}
	res, err := RunClosedLoop(tg, TraceConfig{
		Cohorts: []CohortSpec{
			{Name: "readers", Kind: "topk", Clients: 2, Think: time.Millisecond},
			{Name: "dashboards", Kind: "sampled", Clients: 1, Think: 2 * time.Millisecond, Popularity: "zipf"},
			{Name: "writers", Kind: "mutate", Clients: 1, Think: 5 * time.Millisecond},
		},
		Graphs:  graphs,
		Horizon: 600 * time.Millisecond,
		Seed:    21,
	}, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests == 0 || res.Total.Errors != 0 {
		t.Fatalf("closed loop total = %+v", res.Total)
	}
	if len(res.Cohorts) != 3 {
		t.Fatalf("cohorts = %+v", res.Cohorts)
	}
	for _, c := range res.Cohorts {
		if c.Requests == 0 {
			t.Fatalf("cohort %q sent nothing", c.Cohort)
		}
		if !(c.Lat.P50MS > 0) || c.Lat.MaxMS < c.Lat.P99MS {
			t.Fatalf("cohort %q latency stats inconsistent: %+v", c.Cohort, c.Lat)
		}
	}
	d := statsDelta(res.StatsBefore, res.StatsAfter)
	if res.StatsAfter.Queries == 0 || res.StatsAfter.Mutations == 0 {
		t.Fatalf("server saw no traffic: %+v", res.StatsAfter)
	}
	// Repeat top-k reads on a graph version must hit the cache.
	if d.CacheHits == 0 {
		t.Fatalf("no cache hits across the run: %+v", res.StatsAfter)
	}
}

// TestOpenLoopInProcessReplay drives a recorded open-loop trace against a
// real in-process server and checks every request lands (the trace only
// references registered graphs and real edges, so errors mean a harness
// bug).
func TestOpenLoopInProcessReplay(t *testing.T) {
	tg := NewInprocTarget(server.Config{Workers: 1})
	defer tg.Close()
	graphs := testGraphs(t)
	if err := Seed(tg, graphs); err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(TraceConfig{
		Cohorts:  testCohorts(),
		Graphs:   graphs,
		Schedule: Constant{RPS: 100},
		Horizon:  500 * time.Millisecond,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOpenLoop(tg, trace, 100, 100*time.Millisecond, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests != len(trace) {
		t.Fatalf("observed %d of %d requests", res.Total.Requests, len(trace))
	}
	if res.Total.Errors != 0 {
		t.Fatalf("open-loop replay produced %d errors", res.Total.Errors)
	}
	if len(res.StatsWindows) == 0 {
		t.Fatal("no periodic stats scrapes recorded")
	}
}
