package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/server"
)

// Outcome is one request's result as the driver saw it: the HTTP status
// (0 when the transport failed before a status existed) and any
// transport-level error.
type Outcome struct {
	Status int
	Err    error
	// Mutate-only fields decoded from the PATCH response when the server
	// runs the async ingestion pipeline: whether the ack was
	// enqueued-durability (202, not yet applied) and how long the batch
	// waited queued before its group commit started. Zero elsewhere.
	Queued      bool
	QueueWaitMS float64
}

// OK reports whether the request succeeded end to end.
func (o Outcome) OK() bool { return o.Err == nil && o.Status >= 200 && o.Status < 400 }

// Target abstracts where the load lands: a live server over HTTP or an
// in-process handler. Do must be safe for concurrent use.
type Target interface {
	// Do executes one request and reports its outcome.
	Do(r *Request) Outcome
	// Register installs a graph under the given spec (the server-side
	// half of a SeededGraph).
	Register(name string, spec server.GraphSpec) error
	// ServerStats scrapes the service's cumulative counters (/stats).
	ServerStats() (server.Stats, error)
	// Close releases client-side resources.
	Close()
}

// Seed registers every workload graph on the target.
func Seed(tg Target, graphs []*SeededGraph) error {
	for _, sg := range graphs {
		if err := tg.Register(sg.Name, sg.Spec); err != nil {
			return err
		}
	}
	return nil
}

// encode returns the method, path, and JSON body of a request.
func encode(r *Request) (method, path string, body []byte, err error) {
	switch r.Op {
	case OpQuery:
		if r.Query == nil {
			return "", "", nil, fmt.Errorf("load: query request without a query body")
		}
		body, err = json.Marshal(r.Query)
		return http.MethodPost, "/query", body, err
	case OpMutate:
		if len(r.Mutations) == 0 {
			return "", "", nil, fmt.Errorf("load: mutate request without mutations")
		}
		body, err = json.Marshal(server.MutateRequest{Mutations: r.Mutations})
		return http.MethodPatch, "/graphs/" + r.Graph, body, err
	}
	return "", "", nil, fmt.Errorf("load: unknown op %q", r.Op)
}

// HTTPTarget drives a live server at a base URL with a connection-pooled
// client sized for the harness's concurrency.
type HTTPTarget struct {
	base   string
	client *http.Client
}

// NewHTTPTarget targets the server at baseURL (e.g. "http://host:8080").
// maxConns bounds pooled connections per host (default 128).
func NewHTTPTarget(baseURL string, maxConns int) *HTTPTarget {
	if maxConns <= 0 {
		maxConns = 128
	}
	tr := &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
		MaxConnsPerHost:     0, // open-loop bursts may exceed the idle pool
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPTarget{
		base:   strings.TrimRight(baseURL, "/"),
		client: &http.Client{Transport: tr},
	}
}

func (t *HTTPTarget) roundTrip(method, path string, body []byte, out any) Outcome {
	req, err := http.NewRequest(method, t.base+path, bytes.NewReader(body))
	if err != nil {
		return Outcome{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return Outcome{Err: err}
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return Outcome{Status: resp.StatusCode, Err: err}
		}
	}
	// Drain so the connection returns to the pool.
	_, _ = io.Copy(io.Discard, resp.Body)
	return Outcome{Status: resp.StatusCode}
}

// mutateAck is the slice of the PATCH response the harness keeps: the
// async-ingestion fields that separate queue time from apply time.
type mutateAck struct {
	Queued      bool    `json:"queued"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
}

func (t *HTTPTarget) Do(r *Request) Outcome {
	method, path, body, err := encode(r)
	if err != nil {
		return Outcome{Err: err}
	}
	if r.Op == OpMutate {
		var ack mutateAck
		out := t.roundTrip(method, path, body, &ack)
		out.Queued, out.QueueWaitMS = ack.Queued, ack.QueueWaitMS
		return out
	}
	return t.roundTrip(method, path, body, nil)
}

func (t *HTTPTarget) Register(name string, spec server.GraphSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	out := t.roundTrip(http.MethodPost, "/graphs/"+name, body, nil)
	if out.Err != nil {
		return out.Err
	}
	if out.Status != http.StatusCreated {
		return fmt.Errorf("load: register %q: status %d", name, out.Status)
	}
	return nil
}

func (t *HTTPTarget) ServerStats() (server.Stats, error) {
	var st server.Stats
	out := t.roundTrip(http.MethodGet, "/stats", nil, &st)
	if out.Err != nil {
		return server.Stats{}, out.Err
	}
	if out.Status != http.StatusOK {
		return server.Stats{}, fmt.Errorf("load: /stats: status %d", out.Status)
	}
	return st, nil
}

// MetricsText scrapes GET /metrics (the MetricsScraper face).
func (t *HTTPTarget) MetricsText() (string, error) {
	resp, err := t.client.Get(t.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("load: /metrics: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func (t *HTTPTarget) Close() { t.client.CloseIdleConnections() }

// InprocTarget drives a server in the same process through its HTTP
// handler — no sockets, no listener — so CI runs are hermetic and fast
// while still exercising the full mux/decode/status surface.
type InprocTarget struct {
	s   *server.Server
	mux http.Handler
}

// NewInprocTarget builds a fresh in-process service under cfg.
func NewInprocTarget(cfg server.Config) *InprocTarget {
	s := server.New(cfg)
	return &InprocTarget{s: s, mux: server.NewMux(s)}
}

// Server exposes the underlying service (tests register graphs directly).
func (t *InprocTarget) Server() *server.Server { return t.s }

func (t *InprocTarget) Do(r *Request) Outcome {
	method, path, body, err := encode(r)
	if err != nil {
		return Outcome{Err: err}
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rw := httptest.NewRecorder()
	t.mux.ServeHTTP(rw, req)
	out := Outcome{Status: rw.Code}
	if r.Op == OpMutate && rw.Code < 300 {
		var ack mutateAck
		if json.Unmarshal(rw.Body.Bytes(), &ack) == nil {
			out.Queued, out.QueueWaitMS = ack.Queued, ack.QueueWaitMS
		}
	}
	return out
}

func (t *InprocTarget) Register(name string, spec server.GraphSpec) error {
	_, err := t.s.GenerateGraph(name, spec)
	return err
}

func (t *InprocTarget) ServerStats() (server.Stats, error) { return t.s.Stats(), nil }

// MetricsText renders the in-process registry directly (no HTTP hop).
func (t *InprocTarget) MetricsText() (string, error) { return t.s.Registry().Text(), nil }

func (t *InprocTarget) Close() {}
