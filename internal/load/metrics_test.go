package load

import (
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestParseMetricsAndDelta(t *testing.T) {
	before, err := ParseMetrics(`# HELP x_total help text
# TYPE x_total counter
x_total 3
y{a="1",b="q r"} 2.5
`)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseMetrics("x_total 10\ny{a=\"1\",b=\"q r\"} 4\nz_new 7\n")
	if err != nil {
		t.Fatal(err)
	}
	d := after.Delta(before)
	if d["x_total"] != 7 || d[`y{a="1",b="q r"}`] != 1.5 || d["z_new"] != 7 {
		t.Fatalf("delta = %v", d)
	}
	// Exemplar suffixes on histogram buckets parse to the bucket value.
	ex, err := ParseMetrics("h_bucket{le=\"0.5\"} 3 # {span_id=\"s01\",trace_id=\"t000007\"} 0.31\n")
	if err != nil {
		t.Fatal(err)
	}
	if ex[`h_bucket{le="0.5"}`] != 3 || len(ex) != 1 {
		t.Fatalf("exemplar line parsed as %v", ex)
	}
	if _, err := ParseMetrics("lonelytoken\n"); err == nil {
		t.Fatal("malformed line must error")
	}
	if _, err := ParseMetrics("x notanumber\n"); err == nil {
		t.Fatal("bad value must error")
	}
}

func TestSeriesLabels(t *testing.T) {
	name, labels := seriesLabels(`mfbc_http_requests_total{code="2xx",route="query"}`)
	if name != "mfbc_http_requests_total" || labels["code"] != "2xx" || labels["route"] != "query" {
		t.Fatalf("parsed %q %v", name, labels)
	}
	name, labels = seriesLabels("mfbc_queries_total")
	if name != "mfbc_queries_total" || labels != nil {
		t.Fatalf("unlabeled series parsed %q %v", name, labels)
	}
}

// TestServerSideQuantiles pins the bucket-edge quantile math on a
// synthetic delta: 90 requests in the ≤0.01 s bucket, 10 more in ≤0.1 s.
func TestServerSideQuantiles(t *testing.T) {
	d := MetricsSnapshot{
		`mfbc_http_requests_total{code="2xx",route="query"}`:                  90.0,
		`mfbc_http_requests_total{code="2xx",route="mutate"}`:                 10.0,
		`mfbc_http_requests_total{code="2xx",route="stats"}`:                  5.0, // not harness-driven
		`mfbc_http_request_duration_seconds_bucket{le="0.01",route="query"}`:  90.0,
		`mfbc_http_request_duration_seconds_bucket{le="0.1",route="query"}`:   90.0,
		`mfbc_http_request_duration_seconds_bucket{le="+Inf",route="query"}`:  90.0,
		`mfbc_http_request_duration_seconds_bucket{le="0.01",route="mutate"}`: 0.0,
		`mfbc_http_request_duration_seconds_bucket{le="0.1",route="mutate"}`:  10.0,
		`mfbc_http_request_duration_seconds_bucket{le="+Inf",route="mutate"}`: 10.0,
	}
	ss := d.ServerSide()
	if ss.Requests != 100 {
		t.Fatalf("requests = %d, want 100 (stats route excluded)", ss.Requests)
	}
	// p50 rank 50 lands in the 0.01 s bucket; p95 rank 95 and p99 rank 99
	// land in the 0.1 s bucket.
	if ss.P50MS != 10 || ss.P95MS != 100 || ss.P99MS != 100 || ss.Clipped {
		t.Fatalf("quantiles = %+v", ss)
	}

	// A quantile past the last finite edge clips and flags it.
	clip := MetricsSnapshot{
		`mfbc_http_request_duration_seconds_bucket{le="0.01",route="query"}`: 1.0,
		`mfbc_http_request_duration_seconds_bucket{le="+Inf",route="query"}`: 2.0,
	}
	if ss := clip.ServerSide(); !ss.Clipped || ss.P99MS != 10 {
		t.Fatalf("clipped quantiles = %+v", ss)
	}

	if ss := (MetricsSnapshot{}).ServerSide(); ss.Requests != 0 || ss.P99MS != 0 {
		t.Fatalf("empty delta summary = %+v", ss)
	}
}

// TestRunCrossCheckInproc drives a real closed-loop run and checks the
// client-observed and server-observed request counts agree, and that the
// server-side summary lands in the bench points.
func TestRunCrossCheckInproc(t *testing.T) {
	tg := NewInprocTarget(server.Config{Workers: 1, CacheSize: 64})
	defer tg.Close()
	graphs := testGraphs(t)
	if err := Seed(tg, graphs); err != nil {
		t.Fatal(err)
	}
	res, err := RunClosedLoop(tg, TraceConfig{
		Cohorts: []CohortSpec{
			{Name: "readers", Kind: "topk", Weight: 3, Clients: 2},
			{Name: "writers", Kind: "mutate", Weight: 1, Clients: 1},
		},
		Graphs:  graphs,
		Horizon: 300 * time.Millisecond,
		Seed:    7,
	}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests == 0 {
		t.Fatal("run made no requests")
	}
	ss := res.ServerSummary()
	if ss == nil {
		t.Fatal("in-process target must produce a server-side summary")
	}
	if ss.Requests != int64(res.Total.Requests) {
		t.Fatalf("server counted %d requests, client observed %d (errors %d)",
			ss.Requests, res.Total.Requests, res.Total.Errors)
	}
	if err := res.CrossCheck(); err != nil {
		t.Fatal(err)
	}
	if ss.P99MS <= 0 {
		t.Fatalf("server-side p99 = %g, want > 0", ss.P99MS)
	}

	pts := res.BenchPoints(graphs)
	agg := pts[0]
	if agg.ServerRequests != ss.Requests || agg.ServerP99MS != ss.P99MS {
		t.Fatalf("bench point server fields = %+v, want %+v", agg, ss)
	}
	for _, pt := range pts[1:] {
		if pt.ServerRequests != 0 {
			t.Fatalf("per-cohort row carries server fields: %+v", pt)
		}
	}
}

// TestCrossCheckMismatch: a fabricated disagreement must surface.
func TestCrossCheckMismatch(t *testing.T) {
	rec := NewRecorder(time.Second)
	for i := 0; i < 5; i++ {
		rec.Observe(Sample{Cohort: "c", Latency: time.Millisecond, OK: true})
	}
	r := &RunResult{
		Total:         rec.Total(time.Second),
		MetricsBefore: MetricsSnapshot{},
		MetricsAfter: MetricsSnapshot{
			`mfbc_http_requests_total{code="2xx",route="query"}`: 3.0,
		},
	}
	err := r.CrossCheck()
	if err == nil || !strings.Contains(err.Error(), "cross-check failed") {
		t.Fatalf("cross-check err = %v", err)
	}
	r.MetricsBefore, r.MetricsAfter = nil, nil
	if err := r.CrossCheck(); err != nil {
		t.Fatalf("metrics-less run must pass vacuously: %v", err)
	}
}
