package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Schedule is a time-varying offered-load profile for open-loop traces.
// RateAt returns the target arrival rate (requests/second) at elapsed
// time t; MaxRate returns an upper bound of RateAt over [0, horizon],
// used as the thinning envelope by GenerateTrace.
type Schedule interface {
	RateAt(t time.Duration) float64
	MaxRate(horizon time.Duration) float64
	String() string
}

// Constant offers a fixed rate for the whole run.
type Constant struct {
	RPS float64
}

func (c Constant) RateAt(time.Duration) float64  { return c.RPS }
func (c Constant) MaxRate(time.Duration) float64 { return c.RPS }
func (c Constant) String() string                { return fmt.Sprintf("constant:%g", c.RPS) }

// Step multiplies the rate by Factor every Every, starting at Start —
// the staircase profile of a saturation probe run as a single schedule.
type Step struct {
	Start  float64
	Factor float64
	Every  time.Duration
}

func (s Step) RateAt(t time.Duration) float64 {
	if t < 0 || s.Every <= 0 {
		return s.Start
	}
	return s.Start * math.Pow(s.Factor, float64(t/s.Every))
}

func (s Step) MaxRate(horizon time.Duration) float64 {
	if horizon <= 0 {
		return s.Start
	}
	// The last step that begins strictly inside the horizon.
	last := (horizon - 1) / s.Every
	r := s.RateAt(last * s.Every)
	if r < s.Start {
		return s.Start // Factor < 1: the staircase descends
	}
	return r
}

func (s Step) String() string {
	return fmt.Sprintf("step:%gx@%s from %g", s.Factor, s.Every, s.Start)
}

// Diurnal modulates a base rate sinusoidally with the given period:
// rate(t) = Base · (1 + Amp·sin(2πt/Period)), clamped at zero. Amp is the
// fractional amplitude (0.5 → ±50% around the base).
type Diurnal struct {
	Base   float64
	Amp    float64
	Period time.Duration
}

func (d Diurnal) RateAt(t time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	r := d.Base * (1 + d.Amp*math.Sin(2*math.Pi*float64(t)/float64(d.Period)))
	if r < 0 {
		return 0
	}
	return r
}

func (d Diurnal) MaxRate(time.Duration) float64 {
	amp := d.Amp
	if amp < 0 {
		amp = -amp
	}
	return d.Base * (1 + amp)
}

func (d Diurnal) String() string {
	return fmt.Sprintf("diurnal:%g@%s around %g", d.Amp, d.Period, d.Base)
}

// ParseSchedule parses the -schedule flag grammar against a base rate:
//
//	constant                 fixed rate rps
//	step:FACTOR@DUR          rate rps · FACTOR^⌊t/DUR⌋
//	diurnal:AMP@DUR          rate rps · (1 + AMP·sin(2πt/DUR))
func ParseSchedule(spec string, rps float64) (Schedule, error) {
	if rps <= 0 {
		return nil, fmt.Errorf("load: schedule base rate must be positive, got %g", rps)
	}
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "", "constant":
		return Constant{RPS: rps}, nil
	case "step", "diurnal":
		val, durs, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("load: schedule %q: want %s:VALUE@DURATION", spec, kind)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("load: schedule %q: bad value: %w", spec, err)
		}
		d, err := time.ParseDuration(durs)
		if err != nil {
			return nil, fmt.Errorf("load: schedule %q: bad duration: %w", spec, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("load: schedule %q: duration must be positive", spec)
		}
		if kind == "step" {
			if x <= 0 {
				return nil, fmt.Errorf("load: schedule %q: step factor must be positive", spec)
			}
			return Step{Start: rps, Factor: x, Every: d}, nil
		}
		if x < 0 || x > 1 {
			return nil, fmt.Errorf("load: schedule %q: diurnal amplitude must be in [0,1]", spec)
		}
		return Diurnal{Base: rps, Amp: x, Period: d}, nil
	}
	return nil, fmt.Errorf("load: unknown schedule %q (want constant|step:F@D|diurnal:A@D)", spec)
}
