package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteTrace records a generated trace as JSONL, one request per line —
// the record side of record/replay. The encoding is lossless (durations
// are nanosecond integers, weights are small integers), so a replayed
// trace is identical to the generated one.
func WriteTrace(w io.Writer, trace []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range trace {
		if err := enc.Encode(&trace[i]); err != nil {
			return fmt.Errorf("load: write trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace replays a JSONL trace written by WriteTrace. Blank lines are
// skipped; anything else that fails to parse is an error, not a silent
// drop.
func ReadTrace(r io.Reader) ([]Request, error) {
	var trace []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(b, &req); err != nil {
			return nil, fmt.Errorf("load: trace line %d: %w", line, err)
		}
		trace = append(trace, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: read trace: %w", err)
	}
	return trace, nil
}
