// Package load is the deterministic workload generator and load driver
// for the betweenness-centrality query service (internal/server): the
// production load harness behind cmd/mfbc-load.
//
// A workload is a set of cohorts — read-heavy query users (exact and
// top-k), mutation-heavy PATCH streamers, and sampled-approximation
// dashboard pollers — each with its own key-popularity distribution
// (uniform or zipf) over a set of seeded graphs. Request generation is
// fully deterministic: the same TraceConfig and seed produce bit-identical
// traces, which can be recorded to and replayed from JSONL
// (WriteTrace/ReadTrace).
//
// Two driver disciplines are provided. RunOpenLoop fires a pre-generated
// trace at its scheduled Poisson arrival times regardless of outstanding
// responses, so offered load does not adapt to server slowness — the
// property that makes saturation observable. RunClosedLoop runs N clients
// per cohort, each issuing its deterministic stream with a think-time
// pause between responses. RunSweep steps offered load across rates until
// goodput flattens and p99 blows out, and reports the knee.
//
// Targets are pluggable: a live server over HTTP (NewHTTPTarget) or an
// in-process handler with no sockets (NewInprocTarget), the latter fast
// and hermetic enough for CI.
package load

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/server"
)

// Op is the protocol action class of one generated request.
type Op string

const (
	OpQuery  Op = "query"  // POST /query
	OpMutate Op = "mutate" // PATCH /graphs/{name}
)

// Request is one generated protocol action. At is the scheduled offset
// from run start (open-loop pacing; zero for closed-loop streams, which
// pace by think time instead). The struct round-trips through JSON
// losslessly, so recorded traces replay bit-identically.
type Request struct {
	At        time.Duration        `json:"at_ns"`
	Cohort    string               `json:"cohort"`
	Op        Op                   `json:"op"`
	Graph     string               `json:"graph"`
	Query     *server.QueryRequest `json:"query,omitempty"`
	Mutations []repro.Mutation     `json:"mutations,omitempty"`
}

// CohortSpec describes one traffic cohort. Zero-valued knobs take the
// documented defaults (applied by withDefaults), so a spec can be as
// short as {Name: "readers", Kind: "topk"}.
type CohortSpec struct {
	Name string
	// Kind selects the request mix:
	//
	//	"exact"   exact query, full score vector (IncludeScores)
	//	"topk"    exact query, top-K ranking only
	//	"sampled" approximate query with a rotating sampling seed
	//	          (the dashboard-poller pattern)
	//	"mutate"  PATCH with a batch of set_weight mutations on real
	//	          edges of the addressed graph
	Kind string
	// Weight is this cohort's relative share of open-loop traffic
	// (normalized over all cohorts; default 1).
	Weight float64
	// Clients and Think shape closed-loop runs: Clients concurrent
	// clients (default 1), each pausing Think between a response and its
	// next request (default 0).
	Clients int
	Think   time.Duration
	// Popularity picks which seeded graph each request addresses:
	// "uniform" (default) or "zipf" with exponent ZipfS > 1 (default 1.5;
	// graph 0 is the hottest key).
	Popularity string
	ZipfS      float64
	// K is the ranking size of query cohorts (default 10). Samples is the
	// source budget of sampled cohorts (default 16). SeedSpace is how many
	// distinct sampling seeds a sampled cohort rotates through (default 4)
	// — it controls the cache-miss fraction, since each seed is a distinct
	// cache key per graph version. BatchSize is mutations per PATCH
	// (default 2).
	K         int
	Samples   int
	SeedSpace int
	BatchSize int
}

// withDefaults returns the spec with zero-valued knobs filled in, or an
// error for an invalid cohort.
func (c CohortSpec) withDefaults() (CohortSpec, error) {
	if c.Name == "" {
		c.Name = c.Kind
	}
	switch c.Kind {
	case "exact", "topk", "sampled", "mutate":
	default:
		return c, fmt.Errorf("load: cohort %q: unknown kind %q (want exact|topk|sampled|mutate)", c.Name, c.Kind)
	}
	if c.Weight < 0 {
		return c, fmt.Errorf("load: cohort %q: negative weight %v", c.Name, c.Weight)
	}
	if !(c.Weight > 0) { // zero (or NaN) means unset
		c.Weight = 1
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	switch c.Popularity {
	case "":
		c.Popularity = "uniform"
	case "uniform", "zipf":
	default:
		return c, fmt.Errorf("load: cohort %q: unknown popularity %q (want uniform|zipf)", c.Name, c.Popularity)
	}
	if !(c.ZipfS > 0) { // zero (or NaN) means unset
		c.ZipfS = 1.5
	}
	if c.Popularity == "zipf" && c.ZipfS <= 1 {
		return c, fmt.Errorf("load: cohort %q: zipf exponent must be > 1, got %v", c.Name, c.ZipfS)
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Samples <= 0 {
		c.Samples = 16
	}
	if c.SeedSpace <= 0 {
		c.SeedSpace = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 2
	}
	return c, nil
}

// DefaultCohorts is the canonical production mix: read-heavy top-k users,
// sampled-approximation dashboard pollers on a zipf-skewed key set, and a
// thin stream of mutation writers.
func DefaultCohorts() []CohortSpec {
	return []CohortSpec{
		{Name: "readers", Kind: "topk", Weight: 5, Clients: 4, Think: 10 * time.Millisecond},
		{Name: "dashboards", Kind: "sampled", Weight: 3, Clients: 2, Think: 25 * time.Millisecond, Popularity: "zipf"},
		{Name: "writers", Kind: "mutate", Weight: 1, Clients: 1, Think: 50 * time.Millisecond},
	}
}

// IngestCohorts is the mutate-heavy preset for exercising the async
// ingestion pipeline: a 2/5 mutate share with zipf key popularity (hot
// graphs absorb most writes, so per-graph queues actually coalesce) and a
// reader cohort verifying that snapshot-isolated queries stay responsive
// while appliers group-commit.
func IngestCohorts() []CohortSpec {
	return []CohortSpec{
		{Name: "readers", Kind: "topk", Weight: 3, Clients: 2, Think: 10 * time.Millisecond, Popularity: "zipf"},
		{Name: "writers", Kind: "mutate", Weight: 2, Clients: 2, Think: 10 * time.Millisecond, Popularity: "zipf"},
	}
}

// SeededGraph is one registry graph the workload addresses: its name, the
// spec it is registered from, and the edge list of the locally
// materialized graph. Because server.BuildGraph is deterministic in the
// spec, the generator's local copy has exactly the edges the server
// holds, so mutate cohorts can reweight real edges without ever drawing a
// rejected mutation.
type SeededGraph struct {
	Name string
	Spec server.GraphSpec

	n     int
	edges []repro.Edge
}

// NewSeededGraph materializes spec locally and returns the workload-side
// descriptor. The server side registers the same spec via
// Target.Register.
func NewSeededGraph(name string, spec server.GraphSpec) (*SeededGraph, error) {
	if name == "" {
		return nil, fmt.Errorf("load: empty graph name")
	}
	g, err := server.BuildGraph(spec)
	if err != nil {
		return nil, fmt.Errorf("load: graph %q: %w", name, err)
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("load: graph %q has no edges", name)
	}
	return &SeededGraph{Name: name, Spec: spec, n: g.N, edges: g.Edges}, nil
}

// N returns the vertex count of the materialized graph.
func (sg *SeededGraph) N() int { return sg.n }

// M returns the edge count of the materialized graph.
func (sg *SeededGraph) M() int { return len(sg.edges) }
