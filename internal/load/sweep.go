package load

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
)

// SweepConfig drives a saturation sweep: the same workload mix offered at
// each rate in Rates (ascending), open loop, StepDuration per rate.
type SweepConfig struct {
	Cohorts []CohortSpec
	Graphs  []*SeededGraph
	// Rates are the offered rates (requests/second) to step through,
	// ascending.
	Rates        []float64
	StepDuration time.Duration
	Window       time.Duration
	MaxInflight  int
	Seed         int64
	// GoodputFrac and P99Blowup are the saturation thresholds: a point is
	// saturated when goodput falls below GoodputFrac·offered (default
	// 0.9) or its p99 exceeds P99Blowup× the lowest-rate baseline p99
	// (default 5).
	GoodputFrac float64
	P99Blowup   float64
}

// SweepPoint is one measured rate step.
type SweepPoint struct {
	Offered   float64
	Saturated bool
	Run       *RunResult
}

// SweepResult is the outcome of a saturation sweep. KneeIndex is the last
// consecutive unsaturated point from the bottom of the sweep (-1 when
// even the lowest rate saturates); KneeFound reports whether some higher
// rate actually saturated, i.e. whether the knee is bracketed rather than
// merely "the highest rate we tried".
type SweepResult struct {
	Points    []SweepPoint
	KneeIndex int
	KneeRPS   float64
	KneeFound bool
}

// RunSweep steps offered load up cfg.Rates against tg. Each step
// regenerates a deterministic trace (seed varied per step, reproducibly)
// and replays it open loop. Sweeping is cumulative server state: caches
// stay warm and mutations accumulate across steps, as they would in
// production.
func RunSweep(tg Target, cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("load: sweep needs at least one rate")
	}
	if !sort.Float64sAreSorted(cfg.Rates) {
		return nil, fmt.Errorf("load: sweep rates must be ascending")
	}
	if cfg.StepDuration <= 0 {
		return nil, fmt.Errorf("load: sweep step duration must be positive")
	}
	goodFrac := cfg.GoodputFrac
	if !(goodFrac > 0) {
		goodFrac = 0.9
	}
	blowup := cfg.P99Blowup
	if !(blowup > 0) {
		blowup = 5
	}

	res := &SweepResult{KneeIndex: -1}
	baseP99 := 0.0
	for i, rate := range cfg.Rates {
		if !(rate > 0) {
			return nil, fmt.Errorf("load: sweep rate %d is nonpositive", i)
		}
		trace, err := GenerateTrace(TraceConfig{
			Cohorts:  cfg.Cohorts,
			Graphs:   cfg.Graphs,
			Schedule: Constant{RPS: rate},
			Horizon:  cfg.StepDuration,
			Seed:     cfg.Seed + int64(i)*101, // distinct but reproducible per step
		})
		if err != nil {
			return nil, err
		}
		if len(trace) == 0 {
			return nil, fmt.Errorf("load: rate %g over %s generated no arrivals", rate, cfg.StepDuration)
		}
		run, err := RunOpenLoop(tg, trace, rate, cfg.Window, cfg.MaxInflight)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseP99 = run.Total.Lat.P99MS
		}
		// Judge goodput against the rate the trace actually offered
		// (len/horizon), not the nominal target: short steps carry real
		// Poisson variance, and holding the generator to the nominal rate
		// would flag an unlucky draw as saturation.
		offeredActual := float64(len(trace)) / cfg.StepDuration.Seconds()
		saturated := run.Total.GoodputRPS < goodFrac*offeredActual ||
			(baseP99 > 0 && run.Total.Lat.P99MS > blowup*baseP99)
		res.Points = append(res.Points, SweepPoint{Offered: rate, Saturated: saturated, Run: run})
		if saturated {
			res.KneeFound = res.KneeIndex >= 0
			break // past the knee; higher rates only melt the server further
		}
		res.KneeIndex = i
		res.KneeRPS = rate
	}
	return res, nil
}

// graphsLabel summarizes the workload graph set for bench points: joined
// names plus total vertex and edge counts.
func graphsLabel(graphs []*SeededGraph) (label string, n, m int) {
	names := make([]string, 0, len(graphs))
	for _, sg := range graphs {
		names = append(names, sg.Name)
		n += sg.N()
		m += sg.M()
	}
	return strings.Join(names, "+"), n, m
}

// benchRow builds one bench.Point row under the load-harness schema.
// Server-counter deltas only make sense run-wide, so per-cohort rows pass
// a nil run.
func benchRow(experiment, graphLabel string, n, m int, offered float64, sum CohortSummary, run *RunResult) bench.Point {
	pt := bench.Point{
		Experiment:  experiment,
		Graph:       graphLabel,
		Engine:      "server",
		N:           n,
		M:           m,
		Cohort:      sum.Cohort,
		OfferedRPS:  offered,
		AchievedRPS: sum.RPS,
		GoodputRPS:  sum.GoodputRPS,
		P50MS:       sum.Lat.P50MS,
		P95MS:       sum.Lat.P95MS,
		P99MS:       sum.Lat.P99MS,
		MaxMS:       sum.Lat.MaxMS,
		Requests:    int64(sum.Requests),
		ReqErrors:   int64(sum.Errors),
	}
	if sum.MutateRequests > 0 {
		pt.QueueWaitP50MS = sum.QueueWait.P50MS
		pt.QueueWaitP95MS = sum.QueueWait.P95MS
		pt.QueueWaitP99MS = sum.QueueWait.P99MS
	}
	if run != nil {
		pt.WallSec = run.Elapsed.Seconds()
		d := statsDelta(run.StatsBefore, run.StatsAfter)
		pt.CacheHits = d.CacheHits
		pt.Coalesced = d.Coalesced
		pt.WarmSeeds = d.WarmSeeds
		pt.CacheEvictions = d.Evictions
		pt.IngestCommits = d.IngestCommits
		pt.IngestCoalesced = d.IngestCoalesced
		pt.IngestRejected = d.IngestRejected
		if ss := run.ServerSummary(); ss != nil {
			pt.ServerRequests = ss.Requests
			pt.ServerP50MS = ss.P50MS
			pt.ServerP95MS = ss.P95MS
			pt.ServerP99MS = ss.P99MS
		}
	}
	return pt
}

// BenchPoints converts one run into the mfbc-bench JSON point schema
// (BENCH_*.json) under experiment "load-run": an aggregate row (Cohort
// "all", carrying the server-counter deltas) plus one row per cohort.
func (r *RunResult) BenchPoints(graphs []*SeededGraph) []bench.Point {
	label, n, m := graphsLabel(graphs)
	points := []bench.Point{benchRow("load-run", label, n, m, r.Offered, r.Total, r)}
	for _, sum := range r.Cohorts {
		points = append(points, benchRow("load-run", label, n, m, r.Offered, sum, nil))
	}
	return points
}

// BenchPoints converts a sweep into the same schema under experiment
// "load-sweep": per rate step, one aggregate row plus one row per cohort,
// with Saturated flagged per step and Knee: true on the aggregate row of
// the knee rate.
func (sr *SweepResult) BenchPoints(graphs []*SeededGraph) []bench.Point {
	label, n, m := graphsLabel(graphs)
	var points []bench.Point
	for i, p := range sr.Points {
		agg := benchRow("load-sweep", label, n, m, p.Offered, p.Run.Total, p.Run)
		agg.Saturated = p.Saturated
		agg.Knee = sr.KneeFound && i == sr.KneeIndex
		points = append(points, agg)
		for _, sum := range p.Run.Cohorts {
			row := benchRow("load-sweep", label, n, m, p.Offered, sum, nil)
			row.Saturated = p.Saturated
			points = append(points, row)
		}
	}
	return points
}

// statsDeltas holds the per-step change of the cumulative server
// counters the harness reports.
type statsDeltas struct {
	CacheHits, Coalesced, WarmSeeds, Evictions     int64
	IngestCommits, IngestCoalesced, IngestRejected int64
}

// statsDelta returns after − before on the scraped server counters.
func statsDelta(before, after server.Stats) statsDeltas {
	return statsDeltas{
		CacheHits:       after.CacheHits - before.CacheHits,
		Coalesced:       after.Coalesced - before.Coalesced,
		WarmSeeds:       after.WarmSeeds - before.WarmSeeds,
		Evictions:       after.Evictions - before.Evictions,
		IngestCommits:   after.IngestCommits - before.IngestCommits,
		IngestCoalesced: after.IngestCoalesced - before.IngestCoalesced,
		IngestRejected:  after.IngestRejected - before.IngestRejected,
	}
}
