package load

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/server"
)

// StatsSample is one /stats scrape with its offset from run start.
type StatsSample struct {
	At    time.Duration
	Stats server.Stats
}

// RunResult is the measured outcome of one driver run.
type RunResult struct {
	// Offered is the intended open-loop arrival rate in requests/second
	// (zero for closed-loop runs, whose load is response-paced).
	Offered float64
	// Elapsed is wall time from first dispatch to last completion.
	Elapsed time.Duration
	// Total aggregates every request (Cohort "all"); Cohorts splits by
	// cohort; Windows is the per-window timeline.
	Total   CohortSummary
	Cohorts []CohortSummary
	Windows []WindowStats
	// StatsBefore/StatsAfter bracket the run; StatsWindows are the
	// periodic scrapes in between (one per recorder window).
	StatsBefore  server.Stats
	StatsAfter   server.Stats
	StatsWindows []StatsSample
	// MetricsBefore/MetricsAfter bracket the run with full /metrics
	// scrapes when the target implements MetricsScraper (nil otherwise);
	// ServerSummary and CrossCheck derive from their delta.
	MetricsBefore MetricsSnapshot
	MetricsAfter  MetricsSnapshot
}

// scrapeLoop samples tg's server counters every window until stop is
// closed, then delivers the collected scrapes on done.
func scrapeLoop(tg Target, window time.Duration, start time.Time, stop <-chan struct{}, done chan<- []StatsSample) {
	var scrapes []StatsSample
	tick := time.NewTicker(window)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			done <- scrapes
			return
		case <-tick.C:
			if st, err := tg.ServerStats(); err == nil {
				scrapes = append(scrapes, StatsSample{At: time.Since(start), Stats: st})
			}
		}
	}
}

// RunOpenLoop fires a pre-generated trace at its scheduled arrival times:
// dispatch does not wait for earlier responses, so offered load is
// independent of server speed (the defining open-loop property — a
// saturated server visibly falls behind instead of silently slowing the
// generator). maxInflight bounds concurrently outstanding requests to
// protect file descriptors; when the bound binds, arrivals queue and
// their measured latency still counts from the scheduled time, so
// saturation shows up as latency rather than being silently omitted
// (no coordinated omission). window sets the recorder/scrape bucket
// width.
func RunOpenLoop(tg Target, trace []Request, offered float64, window time.Duration, maxInflight int) (*RunResult, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("load: empty trace")
	}
	if maxInflight <= 0 {
		maxInflight = 64
	}
	rec := NewRecorder(window)
	before, err := tg.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("load: pre-run stats scrape: %w", err)
	}
	metricsBefore := scrapeMetrics(tg)

	start := time.Now()
	stop := make(chan struct{})
	scraped := make(chan []StatsSample, 1)
	go scrapeLoop(tg, rec.window, start, stop, scraped)

	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	for i := range trace {
		req := &trace[i]
		if d := req.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := tg.Do(req)
			// Latency from the scheduled arrival, not the (possibly
			// semaphore-delayed) dispatch.
			lat := time.Since(start) - req.At
			rec.Observe(Sample{
				Cohort: req.Cohort, Start: req.At, Latency: lat, OK: out.OK(),
				Op: req.Op, QueueWaitMS: out.QueueWaitMS,
			})
			<-sem
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	after, err := tg.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("load: post-run stats scrape: %w", err)
	}

	return &RunResult{
		Offered:       offered,
		Elapsed:       elapsed,
		Total:         rec.Total(elapsed),
		Cohorts:       rec.Summaries(elapsed),
		Windows:       rec.Windows(),
		StatsBefore:   before,
		StatsAfter:    after,
		StatsWindows:  <-scraped,
		MetricsBefore: metricsBefore,
		MetricsAfter:  scrapeMetrics(tg),
	}, nil
}

// RunClosedLoop runs cfg.Cohorts as closed-loop populations for
// cfg.Horizon: each cohort contributes Clients concurrent clients, each
// issuing its deterministic stream sequentially with a Think pause after
// every response. Load self-limits to what the server sustains — the
// complementary discipline to RunOpenLoop, and the right smoke test for
// CI because it cannot overrun a slow machine.
func RunClosedLoop(tg Target, cfg TraceConfig, window time.Duration) (*RunResult, error) {
	cohorts, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	rec := NewRecorder(window)
	before, err := tg.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("load: pre-run stats scrape: %w", err)
	}
	metricsBefore := scrapeMetrics(tg)

	start := time.Now()
	stop := make(chan struct{})
	scraped := make(chan []StatsSample, 1)
	go scrapeLoop(tg, rec.window, start, stop, scraped)

	var wg sync.WaitGroup
	for ci := range cohorts {
		c := cohorts[ci]
		for k := 0; k < c.Clients; k++ {
			stream, err := NewClientStream(cfg, ci, k)
			if err != nil {
				close(stop)
				<-scraped
				return nil, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					at := time.Since(start)
					if at >= cfg.Horizon {
						return
					}
					req := stream.Next()
					out := tg.Do(&req)
					rec.Observe(Sample{
						Cohort: req.Cohort, Start: at,
						Latency: time.Since(start) - at, OK: out.OK(),
						Op: req.Op, QueueWaitMS: out.QueueWaitMS,
					})
					if c.Think > 0 {
						time.Sleep(c.Think)
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	after, err := tg.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("load: post-run stats scrape: %w", err)
	}

	return &RunResult{
		Elapsed:       elapsed,
		Total:         rec.Total(elapsed),
		Cohorts:       rec.Summaries(elapsed),
		Windows:       rec.Windows(),
		StatsBefore:   before,
		StatsAfter:    after,
		StatsWindows:  <-scraped,
		MetricsBefore: metricsBefore,
		MetricsAfter:  scrapeMetrics(tg),
	}, nil
}
