package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricsScraper is the optional second face of a Target: access to the
// server's Prometheus-text /metrics. The harness type-asserts for it, so
// targets without a metrics endpoint still drive load — they just produce
// runs without a server-side summary.
type MetricsScraper interface {
	// MetricsText returns one exposition-format scrape.
	MetricsText() (string, error)
}

// MetricsSnapshot is one parsed scrape: fully-labeled series name → value
// (histogram series appear as their _bucket/_sum/_count expansions, the
// same shape the text format carries).
type MetricsSnapshot map[string]float64

// ParseMetrics parses Prometheus text exposition into a snapshot. Comment
// and blank lines are skipped; a malformed sample line is an error.
// OpenMetrics-style exemplar suffixes (` # {...} value`) on histogram
// bucket lines are stripped — the snapshot carries series values only.
func ParseMetrics(text string) (MetricsSnapshot, error) {
	snap := MetricsSnapshot{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if j := strings.Index(line, " # "); j >= 0 {
			line = strings.TrimSpace(line[:j])
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("load: malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("load: bad value in metrics line %q: %w", line, err)
		}
		snap[line[:i]] = v
	}
	return snap, nil
}

// Delta returns m − before per series. Series absent from before (e.g. a
// label child first observed mid-run) count from zero; series absent from
// m are dropped.
func (m MetricsSnapshot) Delta(before MetricsSnapshot) MetricsSnapshot {
	d := make(MetricsSnapshot, len(m))
	for k, v := range m {
		d[k] = v - before[k]
	}
	return d
}

// seriesLabels parses `name{k="v",...}` into its name and label map
// (label values hold no escaped quotes in this codebase's fixed
// vocabularies, so a simple split suffices).
func seriesLabels(series string) (name string, labels map[string]string) {
	open := strings.IndexByte(series, '{')
	if open < 0 {
		return series, nil
	}
	name = series[:open]
	labels = map[string]string{}
	body := strings.TrimSuffix(series[open+1:], "}")
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		labels[k] = strings.Trim(v, `"`)
	}
	return name, labels
}

// ServerSummary is the server's own view of a run, computed from a
// /metrics delta over the request-serving routes: how many requests the
// server counted and its latency percentiles from the duration-histogram
// bucket deltas. Each quantile resolves to its bucket's upper edge
// (conservative: the true quantile is ≤ the reported value); a quantile
// landing in the +Inf bucket reports the largest finite edge instead,
// flagged by Clipped.
type ServerSummary struct {
	Requests int64
	P50MS    float64
	P95MS    float64
	P99MS    float64
	Clipped  bool
}

// loadRoutes are the routes the harness drives; the server-side summary
// and the client/server cross-check cover exactly these.
var loadRoutes = map[string]bool{"query": true, "mutate": true}

// ServerSide summarizes a metrics delta over the harness-driven routes.
func (m MetricsSnapshot) ServerSide() ServerSummary {
	var sum ServerSummary
	buckets := map[float64]float64{} // le upper edge → count delta
	series := make([]string, 0, len(m))
	for k := range m {
		series = append(series, k)
	}
	sort.Strings(series) // deterministic fold order for the float sums
	for _, key := range series {
		v := m[key]
		name, labels := seriesLabels(key)
		switch name {
		case "mfbc_http_requests_total":
			if loadRoutes[labels["route"]] {
				sum.Requests += int64(v + 0.5)
			}
		case "mfbc_http_request_duration_seconds_bucket":
			if !loadRoutes[labels["route"]] {
				continue
			}
			le, err := strconv.ParseFloat(labels["le"], 64)
			if err != nil {
				if labels["le"] == "+Inf" {
					le = math.Inf(1)
				} else {
					continue
				}
			}
			buckets[le] += v
		}
	}
	if len(buckets) == 0 {
		return sum
	}
	edges := make([]float64, 0, len(buckets))
	for le := range buckets {
		edges = append(edges, le)
	}
	sort.Float64s(edges)
	// The exposition is cumulative; deltas of cumulative counts are
	// cumulative too, so the total is the +Inf (last) bucket.
	total := buckets[edges[len(edges)-1]]
	if total <= 0 {
		return sum
	}
	quantile := func(q float64) float64 {
		rank := math.Ceil(q * total)
		for _, le := range edges {
			if buckets[le] >= rank {
				if math.IsInf(le, 1) {
					sum.Clipped = true
					if len(edges) > 1 {
						return edges[len(edges)-2] * 1e3
					}
					return 0
				}
				return le * 1e3
			}
		}
		return 0
	}
	sum.P50MS = quantile(0.50)
	sum.P95MS = quantile(0.95)
	sum.P99MS = quantile(0.99)
	return sum
}

// scrapeMetrics returns one parsed scrape, or nil when the target has no
// metrics surface (older servers, custom targets): runs then simply lack
// the server-side summary rather than failing.
func scrapeMetrics(tg Target) MetricsSnapshot {
	ms, ok := tg.(MetricsScraper)
	if !ok {
		return nil
	}
	text, err := ms.MetricsText()
	if err != nil {
		return nil
	}
	snap, err := ParseMetrics(text)
	if err != nil {
		return nil
	}
	return snap
}

// ServerSummary returns the server-observed view of the run, or nil when
// the target exposed no metrics.
func (r *RunResult) ServerSummary() *ServerSummary {
	if r.MetricsBefore == nil || r.MetricsAfter == nil {
		return nil
	}
	s := r.MetricsAfter.Delta(r.MetricsBefore).ServerSide()
	return &s
}

// CrossCheck verifies the client-observed and server-observed request
// counts agree: every request the driver dispatched must appear on the
// server's route counters (transport failures never reached a route and
// are excluded). A nil error when metrics are unavailable keeps older
// targets usable.
func (r *RunResult) CrossCheck() error {
	ss := r.ServerSummary()
	if ss == nil {
		return nil
	}
	// Transport-level failures never produced a server-side sample. The
	// recorder folds them into Errors together with HTTP-level failures
	// (which DID reach the server), so the check is equality modulo the
	// error count rather than exact equality.
	client := int64(r.Total.Requests)
	errs := int64(r.Total.Errors)
	if ss.Requests >= client-errs && ss.Requests <= client {
		return nil
	}
	return fmt.Errorf("load: request-count cross-check failed: client observed %d (%d errors), server counted %d",
		client, errs, ss.Requests)
}
