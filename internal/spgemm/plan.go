// Package spgemm implements the communication-efficient distributed sparse
// matrix multiplication of the paper's §5.2 on the simulated machine: the
// three 1D variants, the three 2D SUMMA-like variants with lcm(pr,pc)
// stages, and the nine 3D variants obtained by nesting a 1D algorithm over
// the fiber dimension of a 2D algorithm — together with the analytic cost
// model used to search the space of decompositions automatically, as CTF
// does (§6.2).
package spgemm

import (
	"fmt"
	"math"

	"repro/internal/machine"
)

// Role names the operand handled by the 1D (fiber) dimension of a 3D plan:
// RoleA and RoleB are replicated across layers, RoleC is reduced.
type Role int

const (
	RoleA Role = iota
	RoleB
	RoleC
)

func (r Role) String() string { return [...]string{"A", "B", "C"}[r] }

// Variant names the 2D algorithm executed within each layer: the stationary
// operand is the one *not* named (AB keeps C in place, AC keeps B, BC keeps
// A).
type Variant int

const (
	VarAB Variant = iota
	VarAC
	VarBC
)

func (v Variant) String() string { return [...]string{"AB", "AC", "BC"}[v] }

// Plan is one point in the decomposition search space: a processor grid
// p1×p2×p3 (p1 layers of p2×p3 grids), the fiber role, and the layer
// variant. p1=1 gives a pure 2D algorithm; p2=p3=1 gives a pure 1D
// algorithm; all 1 is a single-processor multiply.
type Plan struct {
	P1, P2, P3 int
	X          Role
	YZ         Variant
}

func (p Plan) String() string {
	return fmt.Sprintf("%dx%dx%d/X=%s/YZ=%s", p.P1, p.P2, p.P3, p.X, p.YZ)
}

// Procs returns the total processor count of the plan.
func (p Plan) Procs() int { return p.P1 * p.P2 * p.P3 }

// Stages returns the 2D stage count lcm(p2, p3).
func (p Plan) Stages() int { return machine.LCM(p.P2, p.P3) }

// Problem describes one multiplication C(m×n) = A(m×k)·B(k×n) for cost
// estimation.
type Problem struct {
	M, K, N                int
	NNZA, NNZB             int64
	NNZC, Ops              int64 // estimates; ≤0 triggers the uniform-random model of §5.2
	BytesA, BytesB, BytesC int64 // per-entry wire sizes
}

// fillEstimates applies the paper's uniform-random sparsity model:
// ops(A,B) ≈ nnz(A)·nnz(B)/k and nnz(C) ≈ min(m·n, ops).
func (pr *Problem) fillEstimates() {
	if pr.Ops <= 0 {
		k := int64(pr.K)
		if k == 0 {
			k = 1
		}
		pr.Ops = pr.NNZA * pr.NNZB / k
		if pr.Ops < pr.NNZA {
			pr.Ops = pr.NNZA
		}
	}
	if pr.NNZC <= 0 {
		mn := int64(pr.M) * int64(pr.N)
		pr.NNZC = pr.Ops
		if mn < pr.NNZC {
			pr.NNZC = mn
		}
	}
}

// Estimate models the execution time of the plan in seconds under the α–β–γ
// model, following §5.2.3's W_{X,YZ}: a fiber term β·nnz(X)/(p2·p3) +
// α·log p1 for replication/reduction of X, plus the 2D term
// W_YZ = α·lcm(p2,p3)·(log p2 + log p3) + β·(nnz(Y)/p2 + nnz(Z)/p3) on the
// layer slices, plus γ·ops/p for the (load-balanced) local computation.
func Estimate(p Plan, pr Problem, model machine.CostModel) float64 {
	pr.fillEstimates()
	procs := float64(p.Procs())
	layer := float64(p.P2 * p.P3)

	// Layer-slice nonzero counts depend on which dimension the fiber splits.
	fA, fB, fC := 1.0, 1.0, 1.0
	var fiberBytes float64
	if p.P1 > 1 {
		switch p.X {
		case RoleA: // replicate A; split n
			fB, fC = 1/float64(p.P1), 1/float64(p.P1)
			fiberBytes = float64(pr.NNZA*pr.BytesA) / layer
		case RoleB: // replicate B; split m
			fA, fC = 1/float64(p.P1), 1/float64(p.P1)
			fiberBytes = float64(pr.NNZB*pr.BytesB) / layer
		case RoleC: // split k; reduce C
			fA, fB = 1/float64(p.P1), 1/float64(p.P1)
			fiberBytes = 2 * float64(pr.NNZC*pr.BytesC) / layer
		}
	}
	fiber := model.Beta*fiberBytes + model.Alpha*2*float64(logp(p.P1))

	var bw float64
	nnzA := float64(pr.NNZA*pr.BytesA) * fA
	nnzB := float64(pr.NNZB*pr.BytesB) * fB
	nnzC := float64(pr.NNZC*pr.BytesC) * fC
	switch p.YZ {
	case VarAB:
		bw = nnzA/float64(p.P2) + nnzB/float64(p.P3)
	case VarAC:
		bw = nnzA/float64(p.P2) + nnzC/float64(p.P3)
	case VarBC:
		bw = nnzB/float64(p.P2) + nnzC/float64(p.P3)
	}
	stages := float64(p.Stages())
	lat := stages * 2 * float64(logp(p.P2)+logp(p.P3))
	twoD := model.Beta*2*bw + model.Alpha*lat

	comp := model.Gamma * float64(pr.Ops) / procs
	return fiber + twoD + comp
}

func logp(p int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(math.Ceil(math.Log2(float64(p))))
}

// Constraint restricts the plan search, used by the decomposition ablation.
type Constraint int

const (
	AnyPlan Constraint = iota
	Only1D             // p2 = p3 = 1
	Only2D             // p1 = 1
	Only3D             // p1, and p2*p3, both > 1
)

// Search returns the minimum-estimated-cost plan for the problem on p
// processors, scanning all grid factorizations, fiber roles, and layer
// variants (the automatic decomposition selection of §6.2). The search is
// deterministic, so every processor arrives at the same plan.
func Search(p int, pr Problem, model machine.CostModel, cons Constraint) Plan {
	best := Plan{P1: 1, P2: 1, P3: p, X: RoleC, YZ: VarAB}
	bestCost := math.Inf(1)
	for _, f := range machine.Factorizations3(p) {
		p1, p2, p3 := f[0], f[1], f[2]
		switch cons {
		case Only1D:
			if p2 != 1 || p3 != 1 {
				continue
			}
		case Only2D:
			if p1 != 1 {
				continue
			}
		case Only3D:
			if p > 1 && (p1 == 1 || p2*p3 == 1) {
				continue
			}
		}
		for _, x := range []Role{RoleA, RoleB, RoleC} {
			if p1 == 1 && x != RoleA {
				continue // X unused on a single layer: avoid duplicate plans
			}
			for _, yz := range []Variant{VarAB, VarAC, VarBC} {
				if p2*p3 == 1 && yz != VarAB {
					continue // variant irrelevant on a 1×1 layer grid
				}
				cand := Plan{P1: p1, P2: p2, P3: p3, X: x, YZ: yz}
				c := Estimate(cand, pr, model)
				if c < bestCost {
					bestCost = c
					best = cand
				}
			}
		}
	}
	return best
}
