package spgemm

import (
	"testing"

	"repro/internal/distmat"
	"repro/internal/machine"
	"repro/internal/machine/sim"
	"repro/internal/sparse"
)

func TestCannonMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4, 9, 16} {
		p := p
		t.Run(planName(p), func(t *testing.T) {
			cooA := randomCOO(30, 26, 0.2, int64(p))
			cooB := randomCOO(26, 34, 0.25, int64(p)+1)
			wantA := sparse.FromCOO(cooA, addF)
			wantB := sparse.FromCOO(cooB, addF)
			want, _ := sparse.Mul(wantA, wantB, mulF, addF)

			mach := sim.New(p)
			_, err := mach.Run(func(proc *machine.Proc) {
				s := NewSession(proc)
				a := distmat.FromGlobal(proc.Rank(), cooA, distmat.DistShard(p), addF)
				b := distmat.FromGlobal(proc.Rank(), cooB, distmat.DistShard(p), addF)
				c := Cannon(s, a, b, mulF, addF, addF, addF)
				got := distmat.Gather(proc.World(), c, addF)
				if !sparse.Equal(want, got, func(x, y float64) bool { return x == y || abs(x-y) < 1e-9 }) {
					panic("cannon result differs from sequential")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func planName(p int) string {
	return "p=" + string(rune('0'+p/10)) + string(rune('0'+p%10))
}

func TestCannonRejectsNonSquare(t *testing.T) {
	mach := sim.New(6)
	_, err := mach.Run(func(proc *machine.Proc) {
		s := NewSession(proc)
		cooA := randomCOO(10, 10, 0.3, 1)
		a := distmat.FromGlobal(proc.Rank(), cooA, distmat.DistShard(6), addF)
		Cannon(s, a, a, mulF, addF, addF, addF)
	})
	if err == nil {
		t.Fatal("non-square processor count must fail")
	}
}

func TestCannonChargesPointToPoint(t *testing.T) {
	p := 9
	cooA := randomCOO(30, 30, 0.3, 5)
	cooB := randomCOO(30, 30, 0.3, 6)
	mach := sim.New(p)
	stats, err := mach.Run(func(proc *machine.Proc) {
		s := NewSession(proc)
		a := distmat.FromGlobal(proc.Rank(), cooA, distmat.DistShard(p), addF)
		b := distmat.FromGlobal(proc.Rank(), cooB, distmat.DistShard(p), addF)
		Cannon(s, a, b, mulF, addF, addF, addF)
	})
	if err != nil {
		t.Fatal(err)
	}
	// √p - 1 = 2 shift rounds, two shifts each, plus redistribution msgs.
	if stats.MaxCost.Msgs < 4 {
		t.Fatalf("expected shift messages on the critical path, got %v", stats.MaxCost)
	}
}

func TestSendRecvMismatchFails(t *testing.T) {
	mach := sim.New(2)
	_, err := mach.Run(func(proc *machine.Proc) {
		// Both ranks address rank 0: rank 1 receives nothing it expects.
		machine.SendRecv(proc.World(), 0, proc.Rank()^1, []int{proc.Rank()})
	})
	if err == nil {
		t.Fatal("mismatched pairing must fail")
	}
}
