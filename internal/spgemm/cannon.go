package spgemm

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/machine"
	"repro/internal/sparse"
)

// Cannon executes Cannon's algorithm (§5.2.2) on a square √p×√p grid:
// blocks of A shift left and blocks of B shift up each round, using
// point-to-point communication instead of collectives. The paper quotes its
// cost, O(α·√p + β·(nnz(A)+nnz(B))/√p), as the classical 2D baseline that
// the broadcast-based variants improve upon for imbalanced operands; it is
// provided both as a historical reference and for the decomposition
// ablations.
//
// Inputs may be in any distribution; outputs land in the Block2D layout of
// the grid. The communicator size must be a perfect square.
func Cannon[TA, TB, TC any](
	s *Session,
	a *distmat.Mat[TA], b *distmat.Mat[TB],
	f func(TA, TB) TC,
	add algebra.Monoid[TC], addA algebra.Monoid[TA], addB algebra.Monoid[TB],
) *distmat.Mat[TC] {
	world := s.Proc.World()
	p := world.Size()
	q := isqrt(p)
	if q*q != p {
		panic(fmt.Sprintf("spgemm: Cannon needs a square processor count, got %d", p))
	}
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("spgemm: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	g := s.Grid(1, q, q)
	i, j := g.G2.MyR, g.G2.MyC

	// Initial skew: processor (i,j) starts with A block (i, i+j mod q) and
	// B block (i+j mod q, j).
	da := distmat.Dist{
		Key: fmt.Sprintf("cannon-A(q=%d,m=%d,k=%d)", q, m, k),
		P:   p,
		Owner: func(r, c int32) int {
			bi := distmat.Part(r, m, q)
			bk := distmat.Part(c, k, q)
			// block (bi, bk) starts at processor (bi, (bk - bi) mod q)
			return bi*q + ((bk-bi)%q+q)%q
		},
	}
	db := distmat.Dist{
		Key: fmt.Sprintf("cannon-B(q=%d,k=%d,n=%d)", q, k, n),
		P:   p,
		Owner: func(r, c int32) int {
			bk := distmat.Part(r, k, q)
			bj := distmat.Part(c, n, q)
			// block (bk, bj) starts at processor ((bk - bj) mod q, bj)
			return (((bk-bj)%q+q)%q)*q + bj
		},
	}
	aw := distmat.Redistribute(world, a, da, addA)
	bw := distmat.Redistribute(world, b, db, addB)
	aBlk := append([]sparse.Entry[TA]{}, aw.Local...)
	bBlk := append([]sparse.Entry[TB]{}, bw.Local...)

	var acc []sparse.Entry[TC]
	for round := 0; round < q; round++ {
		// The k-block currently held is the same for A's columns and B's
		// rows by the skew invariant: (i + j + round) mod q.
		kb := (i + j + round) % q
		k0, k1 := distmat.PartBounds(kb, k, q)
		prod, ops := mulEntries(aBlk, bBlk, k0, k1, f, add)
		s.Proc.AddFlops(ops)
		acc = distmat.MergeSorted(acc, prod, add)
		if round == q-1 {
			break
		}
		// Shift A left within the row, B up within the column.
		left, right := (j+q-1)%q, (j+1)%q
		aBlk = machine.SendRecv(g.G2.Row, left, right, aBlk)
		up, down := (i+q-1)%q, (i+1)%q
		bBlk = machine.SendRecv(g.G2.Col, up, down, bBlk)
	}
	dc := distmat.Dist{
		Key: fmt.Sprintf("cannon-C(q=%d,m=%d,n=%d)", q, m, n),
		P:   p,
		Owner: func(r, c int32) int {
			return distmat.Part(r, m, q)*q + distmat.Part(c, n, q)
		},
	}
	return &distmat.Mat[TC]{Rows: m, Cols: n, Dist: dc, Local: acc}
}

func isqrt(p int) int {
	q := 0
	for (q+1)*(q+1) <= p {
		q++
	}
	return q
}
