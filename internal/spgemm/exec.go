package spgemm

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Session is one processor's handle for distributed multiplications. Grid
// construction is collective, so every processor must issue the same plan
// sequence (guaranteed because plan selection is deterministic). The
// session also caches stationary-operand working sets so that the
// adjacency-matrix replication of MFBC is paid once and amortized over all
// iterations and batches, as in the proof of Theorem 5.1.
type Session struct {
	Proc *machine.Proc
	// Workers is the shared-memory parallelism of this rank's local
	// kernels (stage multiplies, sorts, merges): 0 selects this rank's
	// fair share of the host cores (GOMAXPROCS divided by the world
	// size, at least 1 — all p ranks run concurrently, so giving each
	// rank all cores would oversubscribe the host p-fold), 1 forces the
	// sequential kernels. Parallel kernels produce output identical to
	// their sequential counterparts, so results never depend on this
	// knob.
	Workers int
	grids   map[[3]int]*machine.Grid3
	cache   *OperandCache
}

// OperandCache holds one rank's stationary-operand working sets. It is
// rank-local state that can outlive the Session (and the simulated-machine
// run) that filled it: core's persistent distributed sessions hand the same
// cache to a fresh Session on every region, so a stationary matrix staged
// in one run is a warm hit — no redistribution, no fiber replication — in
// the next. That extends the Theorem 5.1 once-per-run amortization across
// the applies of an evolving-graph workload.
//
// With a positive maxSets the cache keeps at most that many working sets
// per matrix, evicting the least-recently-used (plan, dims) key of that
// matrix on overflow — a long mutation stream whose automatic plan search
// wanders across many decompositions then sheds dead sets instead of
// accruing them forever. Eviction order is deterministic, so bounded
// caches stay SPMD-consistent across ranks.
type OperandCache struct {
	sets      map[string]*cachedOperand
	maxSets   int // per-matrix working-set bound; ≤ 0 = unbounded
	tick      uint64
	evictions int64
	// transient marks matrices whose working sets are per-region scratch
	// (the pair lifts of a fused apply): they bypass the per-matrix bound
	// and the eviction stat — they are dropped wholesale by DropMatrix
	// when the region ends, so counting them would report scratch churn
	// as stationary-cache pressure.
	transient map[uint64]bool
}

// cachedOperand is one staged working set: the entries this rank holds
// after redistribution (and, for RoleB fiber plans, replication) of matrix
// matID under plan, plus the metadata PatchStationary needs to keep the
// set current when the matrix is edited in place.
type cachedOperand struct {
	key     string
	matID   uint64
	plan    Plan
	k, n    int // B's dimensions
	entries any
	lastUse uint64
}

// NewOperandCache returns an empty, unbounded stationary-operand cache.
func NewOperandCache() *OperandCache {
	return NewOperandCacheSized(0)
}

// NewOperandCacheSized returns an empty cache bounded to maxSets working
// sets per matrix (≤ 0 = unbounded).
func NewOperandCacheSized(maxSets int) *OperandCache {
	return &OperandCache{sets: make(map[string]*cachedOperand), maxSets: maxSets}
}

// Evictions returns how many working sets the per-matrix LRU bound has
// dropped over the cache's lifetime.
func (c *OperandCache) Evictions() int64 { return c.evictions }

// Len returns the number of resident working sets.
func (c *OperandCache) Len() int { return len(c.sets) }

// operandKey is the cache key of matrix id staged under plan with B
// dimensions k×n.
func operandKey(id uint64, plan Plan, k, n int) string {
	return fmt.Sprintf("B:%d:%s:%dx%d", id, plan, k, n)
}

// lookup returns the cached set for key, bumping its recency.
func (c *OperandCache) lookup(key string) (*cachedOperand, bool) {
	co, ok := c.sets[key]
	if ok {
		c.tick++
		co.lastUse = c.tick
	}
	return co, ok
}

// insert stores a working set, evicting the least-recently-used sets of
// the same matrix past the per-matrix bound (transient matrices are
// exempt; see the transient field).
func (c *OperandCache) insert(co *cachedOperand) {
	c.tick++
	co.lastUse = c.tick
	c.sets[co.key] = co
	if c.maxSets <= 0 || c.transient[co.matID] {
		return
	}
	for {
		keys := make([]string, 0, len(c.sets))
		for key := range c.sets {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		var victim *cachedOperand
		count := 0
		for _, key := range keys {
			s := c.sets[key]
			if s.matID != co.matID {
				continue
			}
			count++
			// lastUse ticks are unique, so the minimum is unambiguous; the
			// sorted key order pins the walk (and any future tie) anyway.
			if s != co && (victim == nil || s.lastUse < victim.lastUse) {
				victim = s
			}
		}
		if count <= c.maxSets || victim == nil {
			return
		}
		delete(c.sets, victim.key)
		c.evictions++
	}
}

// DropMatrix removes every working set of matrix id (transient operands a
// fused region staged for one apply) and clears its transient mark. Not
// counted as LRU evictions.
func DropMatrix(c *OperandCache, id uint64) {
	for key, co := range c.sets {
		if co.matID == id {
			delete(c.sets, key)
		}
	}
	delete(c.transient, id)
}

// MarkTransient flags matrix id's working sets as per-region scratch:
// exempt from the per-matrix LRU bound and the eviction stat until
// DropMatrix removes them.
func MarkTransient(c *OperandCache, id uint64) {
	if c.transient == nil {
		c.transient = make(map[uint64]bool)
	}
	c.transient[id] = true
}

// PlanDims identifies one staged working set of a matrix: the plan it was
// staged under and B's dimensions.
type PlanDims struct {
	Plan Plan
	K, N int
}

// CachedPlans lists the (plan, dims) working sets resident for matrix id,
// sorted deterministically. Because every rank executes the same multiply
// sequence, the list is identical across the ranks of a session.
func CachedPlans(c *OperandCache, id uint64) []PlanDims {
	var out []PlanDims
	for _, co := range c.sets {
		if co.matID == id {
			out = append(out, PlanDims{Plan: co.plan, K: co.k, N: co.n})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Plan != out[b].Plan {
			return out[a].Plan.String() < out[b].Plan.String()
		}
		if out[a].K != out[b].K {
			return out[a].K < out[b].K
		}
		return out[a].N < out[b].N
	})
	return out
}

// workers resolves the Workers knob for this rank; see the field comment.
// The fair share divides host cores by the ranks co-hosted in this OS
// process (the whole world under sim, one under a rank-per-process
// transport, where each rank owns its host's cores).
func (s *Session) workers() int {
	if s.Workers != 0 {
		return parallel.Resolve(s.Workers)
	}
	w := parallel.Resolve(0) / s.Proc.LocalRanks()
	if w < 1 {
		w = 1
	}
	return w
}

// NewSession creates a session for this processor with a fresh operand
// cache.
func NewSession(p *machine.Proc) *Session {
	return NewSessionWithCache(p, NewOperandCache())
}

// NewSessionWithCache creates a session that adopts a previously filled
// operand cache. Grids are always rebuilt (they embed the run's
// communicators), but working sets staged by an earlier session over the
// same matrices are reused without re-staging.
func NewSessionWithCache(p *machine.Proc, c *OperandCache) *Session {
	if c == nil {
		c = NewOperandCache()
	}
	return &Session{Proc: p, grids: make(map[[3]int]*machine.Grid3), cache: c}
}

// Grid returns (building on first use) the p1×p2×p3 grid over the world.
func (s *Session) Grid(p1, p2, p3 int) *machine.Grid3 {
	key := [3]int{p1, p2, p3}
	if g, ok := s.grids[key]; ok {
		return g
	}
	g := machine.NewGrid3(s.Proc.World(), p1, p2, p3)
	s.grids[key] = g
	return g
}

// ranges holds the layer-local coordinate ranges of one processor: the
// fiber dimension is split across layers, the rest span the full matrix.
type ranges struct {
	m0, m1, k0, k1, n0, n1 int32
}

func layerRanges(plan Plan, m, k, n, layer int) ranges {
	r := ranges{m1: int32(m), k1: int32(k), n1: int32(n)}
	if plan.P1 <= 1 {
		return r
	}
	switch plan.X {
	case RoleA:
		r.n0, r.n1 = distmat.PartBounds(layer, n, plan.P1)
	case RoleB:
		r.m0, r.m1 = distmat.PartBounds(layer, m, plan.P1)
	case RoleC:
		r.k0, r.k1 = distmat.PartBounds(layer, k, plan.P1)
	}
	return r
}

// layerOf maps a coordinate on the fiber-split dimension to its layer.
func layerOf(plan Plan, m, k, n int, i, kc, j int32, role Role) int {
	if plan.P1 <= 1 {
		return 0
	}
	switch plan.X {
	case RoleA: // split n
		if role == RoleA { // A is replicated: shard pseudo-randomly pre-replication
			return shard(i, kc, plan.P1)
		}
		return distmat.Part(j, n, plan.P1)
	case RoleB: // split m
		if role == RoleB {
			return shard(kc, j, plan.P1)
		}
		return distmat.Part(i, m, plan.P1)
	default: // RoleC: split k
		if role == RoleC {
			panic("spgemm: C has no input layer assignment under RoleC")
		}
		return distmat.Part(kc, k, plan.P1)
	}
}

func shard(i, j int32, p int) int {
	h := uint64(uint32(i))*0x9E3779B1 ^ uint64(uint32(j))*0x85EBCA77
	h ^= h >> 33
	return int(h % uint64(p))
}

func partIn(x, lo, hi int32, parts int) int { return distmat.Part(x-lo, int(hi-lo), parts) }

// inner2D computes the layer-grid position (li, lj) of a coordinate pair
// for the given operand under the given variant, using the layer's local
// ranges. S is the stage count.
func inner2D(v Variant, role Role, p2, p3, s int, r ranges, i, j int32) (int, int) {
	switch v {
	case VarAB:
		switch role {
		case RoleA: // (i, k): rows blocked over p2, k staged mod p3
			return partIn(i, r.m0, r.m1, p2), partIn(j, r.k0, r.k1, s) % p3
		case RoleB: // (k, j): k staged mod p2, cols blocked over p3
			return partIn(i, r.k0, r.k1, s) % p2, partIn(j, r.n0, r.n1, p3)
		default: // C stationary block
			return partIn(i, r.m0, r.m1, p2), partIn(j, r.n0, r.n1, p3)
		}
	case VarAC:
		switch role {
		case RoleA: // (i, k): m staged mod p3, k blocked over p2
			return partIn(j, r.k0, r.k1, p2), partIn(i, r.m0, r.m1, s) % p3
		case RoleB: // stationary block (k→p2, n→p3)
			return partIn(i, r.k0, r.k1, p2), partIn(j, r.n0, r.n1, p3)
		default: // C: m staged mod p2, n blocked over p3
			return partIn(i, r.m0, r.m1, s) % p2, partIn(j, r.n0, r.n1, p3)
		}
	default: // VarBC
		switch role {
		case RoleA: // stationary block (m→p2, k→p3)
			return partIn(i, r.m0, r.m1, p2), partIn(j, r.k0, r.k1, p3)
		case RoleB: // (k, j): n staged mod p2, k blocked over p3
			return partIn(j, r.n0, r.n1, s) % p2, partIn(i, r.k0, r.k1, p3)
		default: // C: m blocked over p2, n staged mod p3
			return partIn(i, r.m0, r.m1, p2), partIn(j, r.n0, r.n1, s) % p3
		}
	}
}

// Dists returns the input distributions the plan requires for A and B and
// the output distribution it produces for C.
func Dists(plan Plan, m, k, n int) (da, db, dc distmat.Dist) {
	p := plan.Procs()
	s := plan.Stages()
	mk := func(role Role, tag string, coordRole func(i, j int32) (int32, int32, int32)) distmat.Dist {
		return distmat.Dist{
			Key: fmt.Sprintf("spgemm(%s,%s,m=%d,k=%d,n=%d)", plan, tag, m, k, n),
			P:   p,
			Owner: func(i, j int32) int {
				ri, rk, rj := coordRole(i, j)
				l := layerOf(plan, m, k, n, ri, rk, rj, role)
				r := layerRanges(plan, m, k, n, l)
				li, lj := inner2D(plan.YZ, role, plan.P2, plan.P3, s, r, i, j)
				return l*plan.P2*plan.P3 + li*plan.P3 + lj
			},
		}
	}
	da = mk(RoleA, "A", func(i, j int32) (int32, int32, int32) { return i, j, -1 })
	db = mk(RoleB, "B", func(i, j int32) (int32, int32, int32) { return -1, i, j })
	// C's layer under RoleC is the reduction root, spread by inner position.
	dc = distmat.Dist{
		Key: fmt.Sprintf("spgemm(%s,C,m=%d,k=%d,n=%d)", plan, m, k, n),
		P:   p,
		Owner: func(i, j int32) int {
			var l int
			r := layerRanges(plan, m, k, n, 0)
			if plan.P1 > 1 {
				switch plan.X {
				case RoleA:
					l = distmat.Part(j, n, plan.P1)
				case RoleB:
					l = distmat.Part(i, m, plan.P1)
				case RoleC:
					// all layers share full (m, n): the root layer rotates
					// with the inner rank.
					li, lj := inner2D(plan.YZ, RoleC, plan.P2, plan.P3, s, r, i, j)
					return ((li*plan.P3+lj)%plan.P1)*plan.P2*plan.P3 + li*plan.P3 + lj
				}
			}
			r = layerRanges(plan, m, k, n, l)
			li, lj := inner2D(plan.YZ, RoleC, plan.P2, plan.P3, s, r, i, j)
			return l*plan.P2*plan.P3 + li*plan.P3 + lj
		},
	}
	return da, db, dc
}

// Multiply computes the generalized product C = A •⟨add,f⟩ B according to
// plan. When cacheB is true the working set of B (redistributed and, for
// RoleB plans, fiber-replicated) is cached in the session keyed by B's
// identity, so repeated multiplications against the same stationary matrix
// (MFBC's adjacency) pay its movement once.
func Multiply[TA, TB, TC any](
	s *Session, plan Plan,
	a *distmat.Mat[TA], b *distmat.Mat[TB],
	f func(TA, TB) TC,
	add algebra.Monoid[TC], addA algebra.Monoid[TA], addB algebra.Monoid[TB],
	cacheB bool,
) *distmat.Mat[TC] {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("spgemm: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	world := s.Proc.World()
	if plan.Procs() != world.Size() {
		panic(fmt.Sprintf("spgemm: plan %s does not tile %d processors", plan, world.Size()))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	g := s.Grid(plan.P1, plan.P2, plan.P3)
	da, db, dc := Dists(plan, m, k, n)
	workers := s.workers()

	// Stage the A operand (moving in every variant).
	aw := distmat.Redistribute(world, a, da, addA)
	aE := aw.Local
	if plan.P1 > 1 && plan.X == RoleA {
		aE = machine.AllgatherConcat(g.Fiber, aE)
		distmat.SortEntriesParallel(aE, workers)
	}

	// Stage the B operand, with optional caching of the stationary matrix.
	// The key uses the matrix's process-unique ID (not its address): an
	// address can be recycled by the allocator after the matrix dies, which
	// would silently alias the cache to stale entries.
	var bE []sparse.Entry[TB]
	hitB := false
	cacheKey := operandKey(b.ID(), plan, k, n)
	if cacheB {
		var co *cachedOperand
		if co, hitB = s.cache.lookup(cacheKey); hitB {
			bE = co.entries.([]sparse.Entry[TB])
		}
	}
	// A rank owning no B entries legitimately caches a nil slice, so a
	// cache hit must be decided by the map's ok flag: re-staging on nil
	// would have that rank alone re-enter the fiber collectives and desync
	// the simulated machine.
	if !hitB {
		bw := distmat.Redistribute(world, b, db, addB)
		bE = bw.Local
		if plan.P1 > 1 && plan.X == RoleB {
			bE = machine.AllgatherConcat(g.Fiber, bE)
			distmat.SortEntriesParallel(bE, workers)
		}
		if cacheB {
			s.cache.insert(&cachedOperand{key: cacheKey, matID: b.ID(), plan: plan, k: k, n: n, entries: bE})
		}
	}

	r := layerRanges(plan, m, k, n, g.MyLayer)
	var c []sparse.Entry[TC]
	switch plan.YZ {
	case VarAB:
		c = runAB(s.Proc, g, plan, r, aE, bE, f, add, workers)
	case VarAC:
		c = runAC(s.Proc, g, plan, r, aE, bE, f, add, workers)
	default:
		c = runBC(s.Proc, g, plan, r, aE, bE, f, add, workers)
	}

	if plan.P1 > 1 && plan.X == RoleC {
		// Partial C matrices live at the same inner position of every
		// layer; reduce over the fiber to the rotating root layer.
		rootLayer := (g.G2.MyR*plan.P3 + g.G2.MyC) % plan.P1
		red := machine.ReduceSlices(g.Fiber, rootLayer, c, func(x, y []sparse.Entry[TC]) []sparse.Entry[TC] {
			return distmat.MergeSortedParallel(x, y, add, workers)
		})
		if g.MyLayer == rootLayer {
			c = red
		} else {
			c = nil
		}
	}
	return &distmat.Mat[TC]{Rows: m, Cols: n, Dist: dc, Local: c}
}

// StationaryEdit is one coordinate edit of a stationary operand: an upsert
// of value V at (I, J), or — when Del is set — a deletion.
type StationaryEdit[T any] struct {
	I, J int32
	V    T
	Del  bool
}

// PatchStationary merges globally known coordinate edits (sorted by row,
// then column, duplicate-free) into every cached working set of matrix id,
// in place of invalidating and re-staging. For each set it recomputes,
// from the cached plan, exactly which edits a full staging would have
// landed on this rank — the plan's B distribution, widened to the whole
// fiber group for RoleB-replicated plans — and splices them into the
// resident sorted block. The patched set is entry-for-entry identical to
// what Redistribute (+ fiber Allgather) of the edited matrix would
// produce, but moves no simulated bytes: only the blocks a diff touches
// change, so the stationary placement cost stays amortized across an
// evolving-graph mutation stream.
//
// The merge rewrites the rank's local block (host-side O(local nnz), no
// modeled communication; the returned operation count is what a faithful
// region charges as local γ-flops — core's sessions defer it to the next
// machine region or charge it inside the fused patch phase).
func PatchStationary[T any](c *OperandCache, rank int, id uint64, edits []StationaryEdit[T]) int64 {
	if c == nil || len(edits) == 0 {
		return 0
	}
	var ops int64
	for _, co := range c.sets {
		if co.matID != id {
			continue
		}
		owns := StationaryOwnership(co.plan, co.k, co.n)
		cur := co.entries.([]sparse.Entry[T])
		out := make([]sparse.Entry[T], 0, len(cur)+len(edits))
		x := 0
		for _, ed := range edits {
			if !owns(rank, ed.I, ed.J) {
				continue
			}
			for x < len(cur) && (cur[x].I < ed.I || (cur[x].I == ed.I && cur[x].J < ed.J)) {
				out = append(out, cur[x])
				x++
			}
			if x < len(cur) && cur[x].I == ed.I && cur[x].J == ed.J {
				x++ // replaced by the upsert, or deleted
			}
			if !ed.Del {
				out = append(out, sparse.Entry[T]{I: ed.I, J: ed.J, V: ed.V})
			}
		}
		out = append(out, cur[x:]...)
		co.entries = out
		ops += int64(len(out))
	}
	return ops
}

// StationaryOwnership returns the membership test of a staged stationary-B
// working set under plan (with B dimensions k×n): whether a rank's set
// holds coordinate (i, j). The plan's B distribution is hoisted once —
// call this per (plan, dims) and reuse the closure across coordinates, as
// the patch/stage hot paths do. Ownership is the B distribution widened to
// the whole fiber group for plans that replicate B across layers. B's
// distribution is independent of the frontier row count m for every plan
// (only the k and n coordinates of a B entry are consulted), matching the
// cache key's omission of m.
func StationaryOwnership(plan Plan, k, n int) func(rank int, i, j int32) bool {
	_, db, _ := Dists(plan, 1, k, n)
	if plan.P1 > 1 && plan.X == RoleB {
		// After replication a rank holds the union of its fiber group:
		// every layer at the same inner grid position.
		inner := plan.P2 * plan.P3
		return func(rank int, i, j int32) bool { return db.Owner(i, j)%inner == rank%inner }
	}
	return func(rank int, i, j int32) bool { return db.Owner(i, j) == rank }
}

// OwnsStationary is StationaryOwnership for a single coordinate.
func OwnsStationary(plan Plan, k, n, rank int, i, j int32) bool {
	return StationaryOwnership(plan, k, n)(rank, i, j)
}

// PairSplice lifts a scalar stationary block into the pair operand of a
// fused incremental region: each resident entry becomes {Old: w, New: w},
// and the owned subset of the sorted new-side edits is spliced into the
// New component — deletions mark the new side absent (∞), upserts replace
// or insert it. The result is entry-for-entry what staging the old and
// new matrices side by side would produce, built from resident data alone.
func PairSplice(cur []sparse.Entry[float64], edits []StationaryEdit[float64], owned func(i, j int32) bool) []sparse.Entry[algebra.WeightPair] {
	out := make([]sparse.Entry[algebra.WeightPair], 0, len(cur)+len(edits))
	both := func(e sparse.Entry[float64]) sparse.Entry[algebra.WeightPair] {
		return sparse.Entry[algebra.WeightPair]{I: e.I, J: e.J, V: algebra.WeightPair{Old: e.V, New: e.V}}
	}
	x := 0
	for _, ed := range edits {
		if !owned(ed.I, ed.J) {
			continue
		}
		for x < len(cur) && (cur[x].I < ed.I || (cur[x].I == ed.I && cur[x].J < ed.J)) {
			out = append(out, both(cur[x]))
			x++
		}
		v := algebra.WeightPair{Old: algebra.Inf, New: algebra.Inf}
		if x < len(cur) && cur[x].I == ed.I && cur[x].J == ed.J {
			v.Old = cur[x].V
			x++
		}
		if !ed.Del {
			v.New = ed.V
		}
		if !math.IsInf(v.Old, 1) || !math.IsInf(v.New, 1) {
			out = append(out, sparse.Entry[algebra.WeightPair]{I: ed.I, J: ed.J, V: v})
		}
	}
	for ; x < len(cur); x++ {
		out = append(out, both(cur[x]))
	}
	return out
}

// StagePairStationary registers, for every resident working set of the
// scalar matrix srcID, a pair working set for matrix dstID under the same
// (plan, dims) key, built by PairSplice from the resident entries and the
// owned subset of the new-side edits. A fused region that pre-stages pairs
// this way turns its pair multiplications into warm cache hits: no
// redistribution, no fiber replication — only the diff moved. Returns the
// local splice work in entry writes (the caller charges it as γ-flops).
// Pair sets are transient; drop them after the region with DropMatrix.
func StagePairStationary(c *OperandCache, rank int, srcID, dstID uint64, edits []StationaryEdit[float64]) int64 {
	if c == nil {
		return 0
	}
	MarkTransient(c, dstID)
	var ops int64
	for _, pd := range CachedPlans(c, srcID) {
		src, ok := c.lookup(operandKey(srcID, pd.Plan, pd.K, pd.N))
		if !ok {
			continue
		}
		plan, k, n := pd.Plan, pd.K, pd.N
		owns := StationaryOwnership(plan, k, n)
		pair := PairSplice(src.entries.([]sparse.Entry[float64]), edits, func(i, j int32) bool {
			return owns(rank, i, j)
		})
		c.insert(&cachedOperand{
			key: operandKey(dstID, plan, k, n), matID: dstID,
			plan: plan, k: k, n: n, entries: pair,
		})
		ops += int64(len(pair))
	}
	return ops
}

// stageBounds returns the absolute [lo, hi) bounds of stage t over the
// range [lo0, hi0) split into s stages.
func stageBounds(t int, lo0, hi0 int32, s int) (int32, int32) {
	lo, hi := distmat.PartBounds(t, int(hi0-lo0), s)
	return lo0 + lo, lo0 + hi
}

func bucketByStage[T any](es []sparse.Entry[T], s int, stageOf func(sparse.Entry[T]) int) [][]sparse.Entry[T] {
	out := make([][]sparse.Entry[T], s)
	for _, e := range es {
		t := stageOf(e)
		out[t] = append(out[t], e)
	}
	return out
}

// runAB: C stationary; A broadcast along grid rows, B along grid columns,
// one stage per k-block (lcm(p2,p3) stages).
func runAB[TA, TB, TC any](
	proc *machine.Proc, g *machine.Grid3, plan Plan, r ranges,
	aE []sparse.Entry[TA], bE []sparse.Entry[TB],
	f func(TA, TB) TC, add algebra.Monoid[TC], workers int,
) []sparse.Entry[TC] {
	s := plan.Stages()
	aStage := bucketByStage(aE, s, func(e sparse.Entry[TA]) int { return partIn(e.J, r.k0, r.k1, s) })
	bStage := bucketByStage(bE, s, func(e sparse.Entry[TB]) int { return partIn(e.I, r.k0, r.k1, s) })
	var acc []sparse.Entry[TC]
	for t := 0; t < s; t++ {
		aBlk := machine.Bcast(g.G2.Row, t%plan.P3, aStage[t])
		bBlk := machine.Bcast(g.G2.Col, t%plan.P2, bStage[t])
		kb0, kb1 := stageBounds(t, r.k0, r.k1, s)
		prod, ops := mulEntriesParallel(aBlk, bBlk, kb0, kb1, f, add, workers)
		proc.AddFlops(ops)
		acc = distmat.MergeSortedParallel(acc, prod, add, workers)
	}
	return acc
}

// runAC: B stationary; A broadcast along grid rows, partial C reduced along
// grid columns, one stage per m-block.
func runAC[TA, TB, TC any](
	proc *machine.Proc, g *machine.Grid3, plan Plan, r ranges,
	aE []sparse.Entry[TA], bE []sparse.Entry[TB],
	f func(TA, TB) TC, add algebra.Monoid[TC], workers int,
) []sparse.Entry[TC] {
	s := plan.Stages()
	aStage := bucketByStage(aE, s, func(e sparse.Entry[TA]) int { return partIn(e.I, r.m0, r.m1, s) })
	kb0, kb1 := stageBounds(g.G2.MyR, r.k0, r.k1, plan.P2)
	var acc []sparse.Entry[TC]
	merge := func(x, y []sparse.Entry[TC]) []sparse.Entry[TC] {
		return distmat.MergeSortedParallel(x, y, add, workers)
	}
	for t := 0; t < s; t++ {
		aBlk := machine.Bcast(g.G2.Row, t%plan.P3, aStage[t])
		prod, ops := mulEntriesParallel(aBlk, bE, kb0, kb1, f, add, workers)
		proc.AddFlops(ops)
		red := machine.ReduceSlices(g.G2.Col, t%plan.P2, prod, merge)
		if g.G2.MyR == t%plan.P2 {
			acc = append(acc, red...) // stages cover ascending row ranges
		}
	}
	return acc
}

// runBC: A stationary; B broadcast along grid columns, partial C reduced
// along grid rows, one stage per n-block.
func runBC[TA, TB, TC any](
	proc *machine.Proc, g *machine.Grid3, plan Plan, r ranges,
	aE []sparse.Entry[TA], bE []sparse.Entry[TB],
	f func(TA, TB) TC, add algebra.Monoid[TC], workers int,
) []sparse.Entry[TC] {
	s := plan.Stages()
	bStage := bucketByStage(bE, s, func(e sparse.Entry[TB]) int { return partIn(e.J, r.n0, r.n1, s) })
	kb0, kb1 := stageBounds(g.G2.MyC, r.k0, r.k1, plan.P3)
	var acc []sparse.Entry[TC]
	merge := func(x, y []sparse.Entry[TC]) []sparse.Entry[TC] {
		return distmat.MergeSortedParallel(x, y, add, workers)
	}
	for t := 0; t < s; t++ {
		bBlk := machine.Bcast(g.G2.Col, t%plan.P2, bStage[t])
		prod, ops := mulEntriesParallel(aE, bBlk, kb0, kb1, f, add, workers)
		proc.AddFlops(ops)
		red := machine.ReduceSlices(g.G2.Row, t%plan.P3, prod, merge)
		if g.G2.MyC == t%plan.P3 {
			acc = distmat.MergeSortedParallel(acc, red, add, workers) // stage columns interleave rows
		}
	}
	return acc
}

// mulEntriesMinEntries is the A-entry count below which mulEntriesParallel
// runs sequentially (distinct from sparse.mulParallelMinRows, which gates
// on CSR row count; here A is a coordinate list).
const mulEntriesMinEntries = 8

// mulEntriesParallel computes the same product as mulEntries with A's rows
// blocked across workers: chunk boundaries are aligned to row breaks, each
// worker runs the row-wise kernel on its chunk against the shared B index,
// and the row-disjoint sorted outputs are concatenated in row order — so
// the result is identical to the sequential kernel.
func mulEntriesParallel[TA, TB, TC any](
	aE []sparse.Entry[TA], bE []sparse.Entry[TB], k0, k1 int32,
	f func(TA, TB) TC, add algebra.Monoid[TC], workers int,
) ([]sparse.Entry[TC], int64) {
	if len(aE) == 0 || len(bE) == 0 {
		return nil, 0
	}
	if workers <= 1 || len(aE) < mulEntriesMinEntries {
		return mulEntries(aE, bE, k0, k1, f, add)
	}
	// Align the even split of aE to row boundaries (entries are row-sorted).
	bounds := []int{0}
	for _, r := range parallel.Ranges(len(aE), workers)[1:] {
		cut := r[0]
		for cut < len(aE) && cut > 0 && aE[cut].I == aE[cut-1].I {
			cut++
		}
		if cut > bounds[len(bounds)-1] && cut < len(aE) {
			bounds = append(bounds, cut)
		}
	}
	bounds = append(bounds, len(aE))
	if len(bounds) <= 2 {
		return mulEntries(aE, bE, k0, k1, f, add)
	}
	offs := indexRows(bE, k0, k1)
	chunks := make([][]sparse.Entry[TC], len(bounds)-1)
	var ops atomic.Int64
	parallel.For(len(chunks), len(chunks), func(part, _, _ int) {
		out, n := mulEntriesRange(aE[bounds[part]:bounds[part+1]], bE, offs, k0, k1, f, add)
		chunks[part] = out
		ops.Add(n)
	})
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]sparse.Entry[TC], 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, ops.Load()
}

// indexRows builds the CSR-style row offsets of bE over [k0, k1).
func indexRows[TB any](bE []sparse.Entry[TB], k0, k1 int32) []int32 {
	nk := int(k1 - k0)
	offs := make([]int32, nk+1)
	for _, e := range bE {
		offs[e.I-k0+1]++
	}
	for i := 0; i < nk; i++ {
		offs[i+1] += offs[i]
	}
	return offs
}

// mulEntries multiplies two coordinate blocks: aE's columns and bE's rows
// both lie in [k0, k1). Inputs are (row, col)-sorted; the output is sorted
// and duplicate-free. Returns the entry list and the f-evaluation count.
func mulEntries[TA, TB, TC any](
	aE []sparse.Entry[TA], bE []sparse.Entry[TB], k0, k1 int32,
	f func(TA, TB) TC, add algebra.Monoid[TC],
) ([]sparse.Entry[TC], int64) {
	if len(aE) == 0 || len(bE) == 0 {
		return nil, 0
	}
	return mulEntriesRange(aE, bE, indexRows(bE, k0, k1), k0, k1, f, add)
}

// mulEntriesRange is the row-wise kernel over one contiguous chunk of A
// entries (whole rows) against the shared B row index.
func mulEntriesRange[TA, TB, TC any](
	aE []sparse.Entry[TA], bE []sparse.Entry[TB], offs []int32, k0, k1 int32,
	f func(TA, TB) TC, add algebra.Monoid[TC],
) ([]sparse.Entry[TC], int64) {
	var out []sparse.Entry[TC]
	var ops int64
	type jv struct {
		j int32
		v TC
	}
	var buf []jv
	flushRow := func(i int32) {
		if len(buf) == 0 {
			return
		}
		// Stable by j so contributions at one output coordinate fold in
		// k-order regardless of what else shares the buffer. The fused
		// incremental path's bit-identity to per-side scalar sweeps depends
		// on this: pair and scalar runs fill the buffer with different
		// entry sets, and an unstable sort could permute equal-j groups
		// differently between them.
		sort.SliceStable(buf, func(a, b int) bool { return buf[a].j < buf[b].j })
		cur := buf[0]
		for _, p := range buf[1:] {
			if p.j == cur.j {
				cur.v = add.Op(cur.v, p.v)
				continue
			}
			if !add.IsZero(cur.v) {
				out = append(out, sparse.Entry[TC]{I: i, J: cur.j, V: cur.v})
			}
			cur = p
		}
		if !add.IsZero(cur.v) {
			out = append(out, sparse.Entry[TC]{I: i, J: cur.j, V: cur.v})
		}
		buf = buf[:0]
	}
	row := int32(-1)
	for _, ea := range aE {
		if ea.I != row {
			flushRow(row)
			row = ea.I
		}
		if ea.J < k0 || ea.J >= k1 {
			continue
		}
		lo, hi := offs[ea.J-k0], offs[ea.J-k0+1]
		for _, eb := range bE[lo:hi] {
			buf = append(buf, jv{j: eb.J, v: f(ea.V, eb.V)})
			ops++
		}
	}
	flushRow(row)
	return out, ops
}
