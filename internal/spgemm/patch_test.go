package spgemm

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/sparse"
)

// stageForTest reproduces what Multiply's staging path leaves on a rank for
// a stationary B operand: the entries the plan's B distribution assigns to
// it, widened to its whole fiber group under RoleB replication, sorted.
func stageForTest(plan Plan, rank, k, n int, global []sparse.Entry[float64]) []sparse.Entry[float64] {
	_, db, _ := Dists(plan, 1, k, n)
	inner := plan.P2 * plan.P3
	fiberRepl := plan.P1 > 1 && plan.X == RoleB
	var out []sparse.Entry[float64]
	for _, e := range global {
		owner := db.Owner(e.I, e.J)
		if fiberRepl {
			if owner%inner != rank%inner {
				continue
			}
		} else if owner != rank {
			continue
		}
		out = append(out, e)
	}
	sortEntriesByCoord(out)
	return out
}

func sortEntriesByCoord(e []sparse.Entry[float64]) {
	for i := 1; i < len(e); i++ {
		for j := i; j > 0 && (e[j].I < e[j-1].I || (e[j].I == e[j-1].I && e[j].J < e[j-1].J)); j-- {
			e[j], e[j-1] = e[j-1], e[j]
		}
	}
}

// TestPatchStationaryMatchesRestage: for every decomposition family, the
// delta-patched working set must equal a from-scratch staging of the
// edited matrix on every rank.
func TestPatchStationaryMatchesRestage(t *testing.T) {
	plans := []Plan{
		{P1: 1, P2: 1, P3: 4, X: RoleA, YZ: VarAB}, // 1D
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarAB}, // 2D
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarBC},
		{P1: 2, P2: 2, P3: 1, X: RoleA, YZ: VarAB}, // 3D, A replicated
		{P1: 2, P2: 1, P3: 2, X: RoleB, YZ: VarAC}, // 3D, B fiber-replicated
		{P1: 2, P2: 2, P3: 1, X: RoleB, YZ: VarAB},
		{P1: 4, P2: 1, P3: 1, X: RoleB, YZ: VarAB},
		{P1: 2, P2: 2, P3: 1, X: RoleC, YZ: VarBC}, // 3D, k split
	}
	const k, n = 17, 23
	rng := rand.New(rand.NewSource(9))
	var global []sparse.Entry[float64]
	seen := map[[2]int32]bool{}
	for len(global) < 60 {
		i, j := int32(rng.Intn(k)), int32(rng.Intn(n))
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		global = append(global, sparse.Entry[float64]{I: i, J: j, V: 1 + rng.Float64()})
	}
	sortEntriesByCoord(global)

	// Edits: delete a third of the existing entries, reweight another
	// third, insert fresh coordinates.
	var edits []StationaryEdit[float64]
	edited := map[[2]int32]*float64{}
	for _, e := range global {
		w := e.V
		edited[[2]int32{e.I, e.J}] = &w
	}
	for idx, e := range global {
		switch idx % 3 {
		case 0:
			edits = append(edits, StationaryEdit[float64]{I: e.I, J: e.J, Del: true})
			delete(edited, [2]int32{e.I, e.J})
		case 1:
			edits = append(edits, StationaryEdit[float64]{I: e.I, J: e.J, V: e.V + 10})
			*edited[[2]int32{e.I, e.J}] = e.V + 10
		}
	}
	for len(edited) < len(global)+8 {
		i, j := int32(rng.Intn(k)), int32(rng.Intn(n))
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		w := 50 + rng.Float64()
		edits = append(edits, StationaryEdit[float64]{I: i, J: j, V: w})
		edited[[2]int32{i, j}] = &w
	}
	sortEdits := func(es []StationaryEdit[float64]) {
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && (es[j].I < es[j-1].I || (es[j].I == es[j-1].I && es[j].J < es[j-1].J)); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
	}
	sortEdits(edits)
	var newGlobal []sparse.Entry[float64]
	for key, w := range edited {
		newGlobal = append(newGlobal, sparse.Entry[float64]{I: key[0], J: key[1], V: *w})
	}
	sortEntriesByCoord(newGlobal)

	const matID = 7
	for _, plan := range plans {
		for rank := 0; rank < plan.Procs(); rank++ {
			c := NewOperandCache()
			c.sets["b"] = &cachedOperand{
				matID: matID, plan: plan, k: k, n: n,
				entries: stageForTest(plan, rank, k, n, global),
			}
			PatchStationary(c, rank, matID, edits)
			got := c.sets["b"].entries.([]sparse.Entry[float64])
			want := stageForTest(plan, rank, k, n, newGlobal)
			if len(got) != len(want) {
				t.Fatalf("%s rank %d: %d entries after patch, restage has %d", plan, rank, len(got), len(want))
			}
			for x := range want {
				if got[x] != want[x] {
					t.Fatalf("%s rank %d entry %d: patched %+v, restaged %+v", plan, rank, x, got[x], want[x])
				}
			}
		}
	}
}

// TestPatchStationaryIgnoresOtherMatrices: edits keyed to one matrix id
// must leave working sets of other matrices untouched.
func TestPatchStationaryIgnoresOtherMatrices(t *testing.T) {
	plan := Plan{P1: 1, P2: 1, P3: 2, X: RoleA, YZ: VarAB}
	before := []sparse.Entry[float64]{{I: 0, J: 0, V: 1}, {I: 1, J: 1, V: 2}}
	c := NewOperandCache()
	c.sets["other"] = &cachedOperand{matID: 3, plan: plan, k: 4, n: 4, entries: append([]sparse.Entry[float64](nil), before...)}
	PatchStationary(c, 0, 99, []StationaryEdit[float64]{{I: 0, J: 0, Del: true}})
	got := c.sets["other"].entries.([]sparse.Entry[float64])
	if len(got) != len(before) || got[0] != before[0] || got[1] != before[1] {
		t.Fatalf("patch for matrix 99 modified matrix 3's set: %+v", got)
	}
}

// TestOperandCacheLRUBound: a bounded cache keeps at most maxSets working
// sets per matrix, evicting the least recently used (plan, dims) key, and
// leaves other matrices' sets alone.
func TestOperandCacheLRUBound(t *testing.T) {
	plans := []Plan{
		{P1: 1, P2: 1, P3: 1, X: RoleA, YZ: VarAB},
		{P1: 1, P2: 1, P3: 1, X: RoleA, YZ: VarAC},
		{P1: 1, P2: 1, P3: 1, X: RoleA, YZ: VarBC},
		{P1: 1, P2: 1, P3: 1, X: RoleB, YZ: VarAB},
	}
	c := NewOperandCacheSized(2)
	ins := func(id uint64, plan Plan) {
		c.insert(&cachedOperand{key: operandKey(id, plan, 4, 4), matID: id, plan: plan, k: 4, n: 4})
	}
	ins(1, plans[0])
	ins(1, plans[1])
	ins(2, plans[0]) // different matrix: its own budget
	if _, ok := c.lookup(operandKey(1, plans[0], 4, 4)); !ok {
		t.Fatal("set 1/plan0 must be resident (bound not yet hit); lookup also bumps its recency")
	}
	ins(1, plans[2]) // over budget for matrix 1: evicts plan1 (LRU; plan0 was just touched)
	if _, ok := c.lookup(operandKey(1, plans[1], 4, 4)); ok {
		t.Fatal("LRU set must have been evicted")
	}
	if _, ok := c.lookup(operandKey(1, plans[0], 4, 4)); !ok {
		t.Fatal("recently used set must survive")
	}
	if _, ok := c.lookup(operandKey(2, plans[0], 4, 4)); !ok {
		t.Fatal("other matrix's set must be untouched by matrix 1's bound")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	ins(1, plans[3])
	if c.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", c.Evictions())
	}
	if got := len(CachedPlans(c, 1)); got != 2 {
		t.Fatalf("matrix 1 holds %d sets, want 2", got)
	}
}

// TestPairSpliceMatchesSideBySide: the pair lift of a stationary block must
// equal the old block and the edited block staged side by side.
func TestPairSpliceMatchesSideBySide(t *testing.T) {
	cur := []sparse.Entry[float64]{
		{I: 0, J: 1, V: 1.5}, {I: 0, J: 3, V: 2}, {I: 2, J: 0, V: 4}, {I: 2, J: 2, V: 8},
	}
	edits := []StationaryEdit[float64]{
		{I: 0, J: 2, V: 9},      // insert: new side only
		{I: 0, J: 3, Del: true}, // delete: old side only afterwards
		{I: 2, J: 2, V: 5},      // reweight
		{I: 3, J: 3, V: 7},      // insert in the tail
		{I: 3, J: 4, Del: true}, // delete of a non-entry: no-op
	}
	got := PairSplice(cur, edits, func(i, j int32) bool { return true })
	inf := func() float64 { return algebra.Inf }
	want := []sparse.Entry[algebra.WeightPair]{
		{I: 0, J: 1, V: algebra.WeightPair{Old: 1.5, New: 1.5}},
		{I: 0, J: 2, V: algebra.WeightPair{Old: inf(), New: 9}},
		{I: 0, J: 3, V: algebra.WeightPair{Old: 2, New: inf()}},
		{I: 2, J: 0, V: algebra.WeightPair{Old: 4, New: 4}},
		{I: 2, J: 2, V: algebra.WeightPair{Old: 8, New: 5}},
		{I: 3, J: 3, V: algebra.WeightPair{Old: inf(), New: 7}},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Ownership filter: nothing owned, nothing spliced, old entries lifted.
	none := PairSplice(cur, edits, func(i, j int32) bool { return false })
	if len(none) != len(cur) {
		t.Fatalf("unowned splice must keep the lifted base block, got %d entries", len(none))
	}
	for i, e := range cur {
		if none[i].V != (algebra.WeightPair{Old: e.V, New: e.V}) {
			t.Fatalf("entry %d not lifted: %+v", i, none[i])
		}
	}
}

// TestStagePairStationary: pair sets registered for every cached plan of
// the source matrix, under the destination id, equal to a PairSplice of
// each set with its own ownership filter; DropMatrix removes them without
// counting LRU evictions.
func TestStagePairStationary(t *testing.T) {
	plans := []Plan{
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarAB},
		{P1: 2, P2: 1, P3: 2, X: RoleB, YZ: VarAC}, // fiber-replicated B
	}
	const k, n = 11, 13
	rng := rand.New(rand.NewSource(4))
	var global []sparse.Entry[float64]
	seen := map[[2]int32]bool{}
	for len(global) < 30 {
		i, j := int32(rng.Intn(k)), int32(rng.Intn(n))
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		global = append(global, sparse.Entry[float64]{I: i, J: j, V: 1 + rng.Float64()})
	}
	sortEntriesByCoord(global)
	edits := []StationaryEdit[float64]{
		{I: global[0].I, J: global[0].J, Del: true},
		{I: global[4].I, J: global[4].J, V: 99},
	}
	sortEdits := func(es []StationaryEdit[float64]) {
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && (es[j].I < es[j-1].I || (es[j].I == es[j-1].I && es[j].J < es[j-1].J)); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
	}
	sortEdits(edits)
	const srcID, dstID = 5, 6
	for _, plan := range plans {
		for rank := 0; rank < plan.Procs(); rank++ {
			c := NewOperandCache()
			staged := stageForTest(plan, rank, k, n, global)
			c.insert(&cachedOperand{
				key: operandKey(srcID, plan, k, n), matID: srcID, plan: plan, k: k, n: n,
				entries: staged,
			})
			ops := StagePairStationary(c, rank, srcID, dstID, edits)
			co, ok := c.lookup(operandKey(dstID, plan, k, n))
			if !ok {
				t.Fatalf("%s rank %d: pair set not registered", plan, rank)
			}
			got := co.entries.([]sparse.Entry[algebra.WeightPair])
			want := PairSplice(staged, edits, func(i, j int32) bool {
				return OwnsStationary(plan, k, n, rank, i, j)
			})
			if len(got) != len(want) {
				t.Fatalf("%s rank %d: %d pair entries, want %d", plan, rank, len(got), len(want))
			}
			for x := range want {
				if got[x] != want[x] {
					t.Fatalf("%s rank %d entry %d: %+v vs %+v", plan, rank, x, got[x], want[x])
				}
			}
			if ops != int64(len(got)) {
				t.Fatalf("%s rank %d: reported %d ops, wrote %d entries", plan, rank, ops, len(got))
			}
			DropMatrix(c, dstID)
			if _, ok := c.lookup(operandKey(dstID, plan, k, n)); ok {
				t.Fatal("DropMatrix left the pair set resident")
			}
			if _, ok := c.lookup(operandKey(srcID, plan, k, n)); !ok {
				t.Fatal("DropMatrix removed the scalar source set")
			}
			if c.Evictions() != 0 {
				t.Fatal("DropMatrix must not count as LRU evictions")
			}
		}
	}
}

// TestTransientPairSetsBypassLRUBound: pair working sets staged for one
// fused region are per-apply scratch — they must neither consume the
// per-matrix budget nor inflate the eviction stat, even on a cache bounded
// below the staged plan count.
func TestTransientPairSetsBypassLRUBound(t *testing.T) {
	plans := []Plan{
		{P1: 1, P2: 1, P3: 1, X: RoleA, YZ: VarAB},
		{P1: 1, P2: 1, P3: 1, X: RoleA, YZ: VarAC},
	}
	const srcID, dstID = 8, 9
	c := NewOperandCacheSized(1)
	// Two scalar plans would normally exceed the bound; insert just one so
	// the scalar side stays within budget, then stage pairs for both plans
	// via the transient path.
	c.insert(&cachedOperand{
		key: operandKey(srcID, plans[0], 4, 4), matID: srcID, plan: plans[0], k: 4, n: 4,
		entries: []sparse.Entry[float64]{{I: 0, J: 1, V: 2}},
	})
	c.insert(&cachedOperand{
		key: operandKey(srcID, plans[1], 4, 4), matID: srcID, plan: plans[1], k: 4, n: 4,
		entries: []sparse.Entry[float64]{{I: 0, J: 1, V: 2}},
	})
	scalarEvictions := c.Evictions() // the scalar bound did evict one set
	StagePairStationary(c, 0, srcID, dstID, []StationaryEdit[float64]{{I: 0, J: 1, V: 3}})
	// Staging must not have evicted anything more, and manual transient
	// inserts (what a mid-sweep cache miss does) are exempt too.
	c.insert(&cachedOperand{
		key: operandKey(dstID, plans[0], 4, 4), matID: dstID, plan: plans[0], k: 4, n: 4,
	})
	c.insert(&cachedOperand{
		key: operandKey(dstID, plans[1], 4, 4), matID: dstID, plan: plans[1], k: 4, n: 4,
	})
	if c.Evictions() != scalarEvictions {
		t.Fatalf("transient pair sets counted as evictions: %d -> %d", scalarEvictions, c.Evictions())
	}
	if got := len(CachedPlans(c, dstID)); got != 2 {
		t.Fatalf("transient sets must bypass the bound: %d resident, want 2", got)
	}
	DropMatrix(c, dstID)
	if len(CachedPlans(c, dstID)) != 0 || c.Evictions() != scalarEvictions {
		t.Fatal("DropMatrix must remove transient sets without counting evictions")
	}
	// After DropMatrix the id is no longer transient: a fresh insert under
	// it obeys the bound again.
	c.insert(&cachedOperand{
		key: operandKey(dstID, plans[0], 4, 4), matID: dstID, plan: plans[0], k: 4, n: 4,
	})
	c.insert(&cachedOperand{
		key: operandKey(dstID, plans[1], 4, 4), matID: dstID, plan: plans[1], k: 4, n: 4,
	})
	if c.Evictions() != scalarEvictions+1 {
		t.Fatalf("bound not restored after DropMatrix: evictions %d", c.Evictions())
	}
}
