package spgemm

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// stageForTest reproduces what Multiply's staging path leaves on a rank for
// a stationary B operand: the entries the plan's B distribution assigns to
// it, widened to its whole fiber group under RoleB replication, sorted.
func stageForTest(plan Plan, rank, k, n int, global []sparse.Entry[float64]) []sparse.Entry[float64] {
	_, db, _ := Dists(plan, 1, k, n)
	inner := plan.P2 * plan.P3
	fiberRepl := plan.P1 > 1 && plan.X == RoleB
	var out []sparse.Entry[float64]
	for _, e := range global {
		owner := db.Owner(e.I, e.J)
		if fiberRepl {
			if owner%inner != rank%inner {
				continue
			}
		} else if owner != rank {
			continue
		}
		out = append(out, e)
	}
	sortEntriesByCoord(out)
	return out
}

func sortEntriesByCoord(e []sparse.Entry[float64]) {
	for i := 1; i < len(e); i++ {
		for j := i; j > 0 && (e[j].I < e[j-1].I || (e[j].I == e[j-1].I && e[j].J < e[j-1].J)); j-- {
			e[j], e[j-1] = e[j-1], e[j]
		}
	}
}

// TestPatchStationaryMatchesRestage: for every decomposition family, the
// delta-patched working set must equal a from-scratch staging of the
// edited matrix on every rank.
func TestPatchStationaryMatchesRestage(t *testing.T) {
	plans := []Plan{
		{P1: 1, P2: 1, P3: 4, X: RoleA, YZ: VarAB}, // 1D
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarAB}, // 2D
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarBC},
		{P1: 2, P2: 2, P3: 1, X: RoleA, YZ: VarAB}, // 3D, A replicated
		{P1: 2, P2: 1, P3: 2, X: RoleB, YZ: VarAC}, // 3D, B fiber-replicated
		{P1: 2, P2: 2, P3: 1, X: RoleB, YZ: VarAB},
		{P1: 4, P2: 1, P3: 1, X: RoleB, YZ: VarAB},
		{P1: 2, P2: 2, P3: 1, X: RoleC, YZ: VarBC}, // 3D, k split
	}
	const k, n = 17, 23
	rng := rand.New(rand.NewSource(9))
	var global []sparse.Entry[float64]
	seen := map[[2]int32]bool{}
	for len(global) < 60 {
		i, j := int32(rng.Intn(k)), int32(rng.Intn(n))
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		global = append(global, sparse.Entry[float64]{I: i, J: j, V: 1 + rng.Float64()})
	}
	sortEntriesByCoord(global)

	// Edits: delete a third of the existing entries, reweight another
	// third, insert fresh coordinates.
	var edits []StationaryEdit[float64]
	edited := map[[2]int32]*float64{}
	for _, e := range global {
		w := e.V
		edited[[2]int32{e.I, e.J}] = &w
	}
	for idx, e := range global {
		switch idx % 3 {
		case 0:
			edits = append(edits, StationaryEdit[float64]{I: e.I, J: e.J, Del: true})
			delete(edited, [2]int32{e.I, e.J})
		case 1:
			edits = append(edits, StationaryEdit[float64]{I: e.I, J: e.J, V: e.V + 10})
			*edited[[2]int32{e.I, e.J}] = e.V + 10
		}
	}
	for len(edited) < len(global)+8 {
		i, j := int32(rng.Intn(k)), int32(rng.Intn(n))
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		w := 50 + rng.Float64()
		edits = append(edits, StationaryEdit[float64]{I: i, J: j, V: w})
		edited[[2]int32{i, j}] = &w
	}
	sortEdits := func(es []StationaryEdit[float64]) {
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && (es[j].I < es[j-1].I || (es[j].I == es[j-1].I && es[j].J < es[j-1].J)); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
	}
	sortEdits(edits)
	var newGlobal []sparse.Entry[float64]
	for key, w := range edited {
		newGlobal = append(newGlobal, sparse.Entry[float64]{I: key[0], J: key[1], V: *w})
	}
	sortEntriesByCoord(newGlobal)

	const matID = 7
	for _, plan := range plans {
		for rank := 0; rank < plan.Procs(); rank++ {
			c := NewOperandCache()
			c.sets["b"] = &cachedOperand{
				matID: matID, plan: plan, k: k, n: n,
				entries: stageForTest(plan, rank, k, n, global),
			}
			PatchStationary(c, rank, matID, edits)
			got := c.sets["b"].entries.([]sparse.Entry[float64])
			want := stageForTest(plan, rank, k, n, newGlobal)
			if len(got) != len(want) {
				t.Fatalf("%s rank %d: %d entries after patch, restage has %d", plan, rank, len(got), len(want))
			}
			for x := range want {
				if got[x] != want[x] {
					t.Fatalf("%s rank %d entry %d: patched %+v, restaged %+v", plan, rank, x, got[x], want[x])
				}
			}
		}
	}
}

// TestPatchStationaryIgnoresOtherMatrices: edits keyed to one matrix id
// must leave working sets of other matrices untouched.
func TestPatchStationaryIgnoresOtherMatrices(t *testing.T) {
	plan := Plan{P1: 1, P2: 1, P3: 2, X: RoleA, YZ: VarAB}
	before := []sparse.Entry[float64]{{I: 0, J: 0, V: 1}, {I: 1, J: 1, V: 2}}
	c := NewOperandCache()
	c.sets["other"] = &cachedOperand{matID: 3, plan: plan, k: 4, n: 4, entries: append([]sparse.Entry[float64](nil), before...)}
	PatchStationary(c, 0, 99, []StationaryEdit[float64]{{I: 0, J: 0, Del: true}})
	got := c.sets["other"].entries.([]sparse.Entry[float64])
	if len(got) != len(before) || got[0] != before[0] || got[1] != before[1] {
		t.Fatalf("patch for matrix 99 modified matrix 3's set: %+v", got)
	}
}
