package spgemm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/machine"
	"repro/internal/machine/sim"
	"repro/internal/sparse"
)

// randomCOO builds a random float64 matrix with ~density fraction nonzeros.
func randomCOO(rows, cols int, density float64, seed int64) *sparse.COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO[float64](rows, cols)
	target := int(float64(rows*cols) * density)
	for t := 0; t < target; t++ {
		coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), 1+rng.Float64())
	}
	return coo
}

var addF = algebra.Monoid[float64]{
	Identity: 0,
	Op:       func(a, b float64) float64 { return a + b },
	IsZero:   func(a float64) bool { return a == 0 },
}

func mulF(a, b float64) float64 { return a * b }

// checkPlan runs C = A·B distributed under the plan and compares against the
// sequential kernel.
func checkPlan(t *testing.T, plan Plan, m, k, n int, seed int64) {
	t.Helper()
	p := plan.Procs()
	cooA := randomCOO(m, k, 0.15, seed)
	cooB := randomCOO(k, n, 0.2, seed+1)
	wantA := sparse.FromCOO(cooA, addF)
	wantB := sparse.FromCOO(cooB, addF)
	want, _ := sparse.Mul(wantA, wantB, mulF, addF)

	mach := sim.New(p)
	results := make([]*sparse.CSR[float64], p)
	_, err := mach.Run(func(proc *machine.Proc) {
		s := NewSession(proc)
		a := distmat.FromGlobal(proc.Rank(), cooA, distmat.DistShard(p), addF)
		b := distmat.FromGlobal(proc.Rank(), cooB, distmat.DistRowBlock(p, k), addF)
		c := Multiply(s, plan, a, b, mulF, addF, addF, addF, false)
		results[proc.Rank()] = distmat.Gather(proc.World(), c, addF)
	})
	if err != nil {
		t.Fatalf("plan %s: %v", plan, err)
	}
	for r, got := range results {
		if !sparse.Equal(want, got, func(a, b float64) bool { return a == b || abs(a-b) < 1e-9*(abs(a)+abs(b)) }) {
			t.Fatalf("plan %s: rank %d result differs from sequential (nnz %d vs %d)", plan, r, got.NNZ(), want.NNZ())
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMultiply2DVariants(t *testing.T) {
	for _, v := range []Variant{VarAB, VarAC, VarBC} {
		for _, grid := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {4, 2}, {1, 4}} {
			plan := Plan{P1: 1, P2: grid[0], P3: grid[1], X: RoleA, YZ: v}
			t.Run(plan.String(), func(t *testing.T) {
				checkPlan(t, plan, 33, 27, 41, int64(grid[0]*100+grid[1]))
			})
		}
	}
}

func TestMultiply1DVariants(t *testing.T) {
	for _, x := range []Role{RoleA, RoleB, RoleC} {
		for _, p1 := range []int{2, 4} {
			plan := Plan{P1: p1, P2: 1, P3: 1, X: x, YZ: VarAB}
			t.Run(plan.String(), func(t *testing.T) {
				checkPlan(t, plan, 29, 31, 24, int64(p1)+int64(x))
			})
		}
	}
}

func TestMultiply3DVariants(t *testing.T) {
	for _, x := range []Role{RoleA, RoleB, RoleC} {
		for _, yz := range []Variant{VarAB, VarAC, VarBC} {
			plan := Plan{P1: 2, P2: 2, P3: 2, X: x, YZ: yz}
			t.Run(plan.String(), func(t *testing.T) {
				checkPlan(t, plan, 37, 29, 33, int64(x)*10+int64(yz))
			})
		}
	}
}

func TestMultiply3DAsymmetricGrids(t *testing.T) {
	for _, f := range [][3]int{{3, 2, 2}, {2, 3, 1}, {2, 1, 3}, {4, 2, 1}} {
		plan := Plan{P1: f[0], P2: f[1], P3: f[2], X: RoleB, YZ: VarBC}
		t.Run(plan.String(), func(t *testing.T) {
			checkPlan(t, plan, 26, 35, 31, int64(f[0]*f[1]*f[2]))
		})
	}
}

func TestMultiplyRectangularShortFat(t *testing.T) {
	// The MFBC shape: tiny row count (frontier) times square adjacency.
	for _, plan := range []Plan{
		{P1: 2, P2: 2, P3: 2, X: RoleB, YZ: VarAC},
		{P1: 4, P2: 1, P3: 2, X: RoleB, YZ: VarBC},
		{P1: 1, P2: 2, P3: 4, X: RoleA, YZ: VarAB},
	} {
		t.Run(plan.String(), func(t *testing.T) {
			checkPlan(t, plan, 5, 60, 60, int64(plan.P1))
		})
	}
}

func TestMultiplyEmptyOperand(t *testing.T) {
	plan := Plan{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarAB}
	mach := sim.New(4)
	_, err := mach.Run(func(proc *machine.Proc) {
		s := NewSession(proc)
		a := &distmat.Mat[float64]{Rows: 10, Cols: 10, Dist: distmat.DistShard(4)}
		cooB := randomCOO(10, 10, 0.3, 5)
		b := distmat.FromGlobal(proc.Rank(), cooB, distmat.DistShard(4), addF)
		c := Multiply(s, plan, a, b, mulF, addF, addF, addF, false)
		if got := distmat.GlobalNNZ(proc.World(), c); got != 0 {
			panic(fmt.Sprintf("empty * B produced %d nonzeros", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyCachedStationary(t *testing.T) {
	// Multiplying twice against a cached stationary B must give identical
	// results and charge less communication the second time.
	plan := Plan{P1: 2, P2: 2, P3: 1, X: RoleB, YZ: VarAC}
	cooA := randomCOO(20, 30, 0.2, 9)
	cooB := randomCOO(30, 30, 0.2, 10)
	mach := sim.New(4)
	var costFirst, costSecond machine.Cost
	_, err := mach.Run(func(proc *machine.Proc) {
		s := NewSession(proc)
		a := distmat.FromGlobal(proc.Rank(), cooA, distmat.DistShard(4), addF)
		b := distmat.FromGlobal(proc.Rank(), cooB, distmat.DistShard(4), addF)
		pre := proc.Cost()
		c1 := Multiply(s, plan, a, b, mulF, addF, addF, addF, true)
		mid := proc.Cost()
		c2 := Multiply(s, plan, a, b, mulF, addF, addF, addF, true)
		post := proc.Cost()
		g1 := distmat.Gather(proc.World(), c1, addF)
		g2 := distmat.Gather(proc.World(), c2, addF)
		if !sparse.Equal(g1, g2, func(x, y float64) bool { return x == y }) {
			panic("cached multiply changed the result")
		}
		if proc.Rank() == 0 {
			costFirst = machine.Cost{Bytes: mid.Bytes - pre.Bytes, Msgs: mid.Msgs - pre.Msgs}
			costSecond = machine.Cost{Bytes: post.Bytes - mid.Bytes, Msgs: post.Msgs - mid.Msgs}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if costSecond.Bytes >= costFirst.Bytes {
		t.Fatalf("caching did not reduce communication: first %v second %v", costFirst, costSecond)
	}
}

func TestSearchReturnsValidPlan(t *testing.T) {
	model := machine.DefaultModel()
	for _, p := range []int{1, 4, 16, 64} {
		pr := Problem{M: 64, K: 4096, N: 4096, NNZA: 2000, NNZB: 80000, BytesA: 24, BytesB: 16, BytesC: 24}
		plan := Search(p, pr, model, AnyPlan)
		if plan.Procs() != p {
			t.Fatalf("search(p=%d) returned plan %s with %d procs", p, plan, plan.Procs())
		}
		for _, cons := range []Constraint{Only1D, Only2D, Only3D} {
			cp := Search(p, pr, model, cons)
			if cp.Procs() != p {
				t.Fatalf("constrained search returned %s", cp)
			}
			switch cons {
			case Only1D:
				if cp.P2 != 1 || cp.P3 != 1 {
					t.Fatalf("Only1D returned %s", cp)
				}
			case Only2D:
				if cp.P1 != 1 {
					t.Fatalf("Only2D returned %s", cp)
				}
			case Only3D:
				if p > 1 && (cp.P1 == 1 || cp.P2*cp.P3 == 1) {
					t.Fatalf("Only3D returned %s", cp)
				}
			}
		}
	}
}

func TestSearchPrefersReplicationForSkewedOperands(t *testing.T) {
	// A huge stationary B against a tiny A: with generous memory the model
	// should exploit more than a flat 2D grid (the §5.3 configuration).
	model := machine.DefaultModel()
	pr := Problem{M: 32, K: 1 << 15, N: 1 << 15, NNZA: 4000, NNZB: 4 << 20, BytesA: 24, BytesB: 16, BytesC: 24}
	plan := Search(64, pr, model, AnyPlan)
	cost3D := Estimate(plan, pr, model)
	flat := Search(64, pr, model, Only2D)
	cost2D := Estimate(flat, pr, model)
	if cost3D > cost2D {
		t.Fatalf("search missed a cheaper plan: %s (%g) vs %s (%g)", plan, cost3D, flat, cost2D)
	}
}
