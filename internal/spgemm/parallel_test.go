package spgemm

import (
	"testing"

	"repro/internal/distmat"
	"repro/internal/machine"
	"repro/internal/machine/sim"
	"repro/internal/sparse"
)

// checkPlanWorkers runs the distributed multiply with per-rank worker
// parallelism and compares bit-exactly against the same multiply run with
// sequential local kernels: the worker knob must never change results.
func checkPlanWorkers(t *testing.T, plan Plan, m, k, n int, seed int64, workers int) {
	t.Helper()
	p := plan.Procs()
	cooA := randomCOO(m, k, 0.15, seed)
	cooB := randomCOO(k, n, 0.2, seed+1)

	run := func(workers int) *sparse.CSR[float64] {
		var out *sparse.CSR[float64]
		mach := sim.New(p)
		_, err := mach.Run(func(proc *machine.Proc) {
			s := NewSession(proc)
			s.Workers = workers
			a := distmat.FromGlobal(proc.Rank(), cooA, distmat.DistShard(p), addF)
			b := distmat.FromGlobal(proc.Rank(), cooB, distmat.DistRowBlock(p, k), addF)
			c := Multiply(s, plan, a, b, mulF, addF, addF, addF, false)
			g := distmat.Gather(proc.World(), c, addF)
			if proc.Rank() == 0 {
				out = g
			}
		})
		if err != nil {
			t.Fatalf("plan %s workers=%d: %v", plan, workers, err)
		}
		return out
	}

	want := run(1)
	got := run(workers)
	if !sparse.Equal(want, got, func(a, b float64) bool { return a == b }) {
		t.Fatalf("plan %s: workers=%d result differs from sequential", plan, workers)
	}
}

// TestMultiplyWorkersInvariant sweeps representative plans from every
// variant family with multi-worker local kernels.
func TestMultiplyWorkersInvariant(t *testing.T) {
	plans := []Plan{
		{P1: 1, P2: 1, P3: 1, X: RoleA, YZ: VarAB}, // p=1: the pure local kernel
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarAB},
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarAC},
		{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarBC},
		{P1: 2, P2: 2, P3: 1, X: RoleB, YZ: VarAC},
		{P1: 2, P2: 1, P3: 2, X: RoleC, YZ: VarAB},
		{P1: 4, P2: 1, P3: 1, X: RoleA, YZ: VarAB},
	}
	for _, plan := range plans {
		for _, w := range []int{2, 4} {
			t.Run(plan.String(), func(t *testing.T) {
				checkPlanWorkers(t, plan, 48, 56, 52, int64(plan.Procs()), w)
			})
		}
	}
}

// TestCacheKeyDistinguishesMatrices: two different B matrices multiplied
// through the same session with cacheB=true must not alias each other's
// cached working set (the old %p key could, once the allocator reused an
// address).
func TestCacheKeyDistinguishesMatrices(t *testing.T) {
	plan := Plan{P1: 1, P2: 2, P3: 2, X: RoleA, YZ: VarAB}
	const p = 4
	cooA := randomCOO(20, 30, 0.2, 21)
	cooB1 := randomCOO(30, 25, 0.2, 22)
	cooB2 := randomCOO(30, 25, 0.2, 23)

	// Sequential references.
	a := sparse.FromCOO(cooA, addF)
	b1 := sparse.FromCOO(cooB1, addF)
	b2 := sparse.FromCOO(cooB2, addF)
	want1, _ := sparse.Mul(a, b1, mulF, addF)
	want2, _ := sparse.Mul(a, b2, mulF, addF)

	mach := sim.New(p)
	var got1, got2 *sparse.CSR[float64]
	_, err := mach.Run(func(proc *machine.Proc) {
		s := NewSession(proc)
		da := distmat.FromGlobal(proc.Rank(), cooA, distmat.DistShard(p), addF)
		db1 := distmat.FromGlobal(proc.Rank(), cooB1, distmat.DistShard(p), addF)
		db2 := distmat.FromGlobal(proc.Rank(), cooB2, distmat.DistShard(p), addF)
		c1 := Multiply(s, plan, da, db1, mulF, addF, addF, addF, true)
		c2 := Multiply(s, plan, da, db2, mulF, addF, addF, addF, true) // same session, same shape, different B
		g1 := distmat.Gather(proc.World(), c1, addF)
		g2 := distmat.Gather(proc.World(), c2, addF)
		if proc.Rank() == 0 {
			got1, got2 = g1, g2
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	eq := func(a, b float64) bool { return a == b || abs(a-b) < 1e-9*(abs(a)+abs(b)) }
	if !sparse.Equal(want1, got1, eq) {
		t.Fatal("first cached multiply wrong")
	}
	if !sparse.Equal(want2, got2, eq) {
		t.Fatal("second multiply hit the first matrix's cache entry")
	}
}
