package spgemm

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// TestDistsPartitionCoordinates: for every plan shape, the generated A/B/C
// distributions must map every coordinate to a valid rank, and the
// assignment must be a pure function (same input → same owner).
func TestDistsPartitionCoordinates(t *testing.T) {
	m, k, n := 23, 31, 19
	rng := rand.New(rand.NewSource(4))
	for _, f := range machine.Factorizations3(12) {
		for _, x := range []Role{RoleA, RoleB, RoleC} {
			for _, yz := range []Variant{VarAB, VarAC, VarBC} {
				plan := Plan{P1: f[0], P2: f[1], P3: f[2], X: x, YZ: yz}
				da, db, dc := Dists(plan, m, k, n)
				p := plan.Procs()
				for trial := 0; trial < 200; trial++ {
					i, kk, j := int32(rng.Intn(m)), int32(rng.Intn(k)), int32(rng.Intn(n))
					if r := da.Owner(i, kk); r < 0 || r >= p {
						t.Fatalf("%s: A owner %d out of range", plan, r)
					}
					if r := db.Owner(kk, j); r < 0 || r >= p {
						t.Fatalf("%s: B owner %d out of range", plan, r)
					}
					if r := dc.Owner(i, j); r < 0 || r >= p {
						t.Fatalf("%s: C owner %d out of range", plan, r)
					}
					if da.Owner(i, kk) != da.Owner(i, kk) || dc.Owner(i, j) != dc.Owner(i, j) {
						t.Fatalf("%s: owner not deterministic", plan)
					}
				}
				if da.Key == db.Key || da.Key == dc.Key {
					t.Fatalf("%s: distribution keys collide", plan)
				}
			}
		}
	}
}

// TestEstimateMonotonicity: more nonzeros never make a plan cheaper.
func TestEstimateMonotonicity(t *testing.T) {
	model := machine.DefaultModel()
	plan := Plan{P1: 2, P2: 2, P3: 2, X: RoleB, YZ: VarAC}
	small := Problem{M: 64, K: 1000, N: 1000, NNZA: 100, NNZB: 10000, BytesA: 24, BytesB: 16, BytesC: 24}
	big := small
	big.NNZA *= 10
	big.NNZB *= 10
	if Estimate(plan, big, model) < Estimate(plan, small, model) {
		t.Fatal("cost estimate decreased with more nonzeros")
	}
}

// TestEstimateReplicationAmortization: for a frontier-vs-adjacency shaped
// problem, a plan that replicates the small operand must beat the one that
// replicates the big operand in modeled cost.
func TestEstimateReplicationSkew(t *testing.T) {
	model := machine.DefaultModel()
	pr := Problem{M: 32, K: 1 << 14, N: 1 << 14, NNZA: 1000, NNZB: 1 << 20, BytesA: 24, BytesB: 16, BytesC: 24}
	replSmall := Plan{P1: 4, P2: 2, P3: 2, X: RoleA, YZ: VarAB}
	replBig := Plan{P1: 4, P2: 2, P3: 2, X: RoleB, YZ: VarAB}
	if Estimate(replSmall, pr, model) > Estimate(replBig, pr, model) {
		t.Fatal("replicating the tiny operand must be cheaper than replicating the adjacency")
	}
}

func TestPlanHelpers(t *testing.T) {
	plan := Plan{P1: 2, P2: 3, P3: 4, X: RoleC, YZ: VarBC}
	if plan.Procs() != 24 {
		t.Fatal("procs wrong")
	}
	if plan.Stages() != 12 {
		t.Fatalf("stages = %d want lcm(3,4)=12", plan.Stages())
	}
	if plan.String() == "" || RoleA.String() != "A" || VarAC.String() != "AC" {
		t.Fatal("stringers broken")
	}
}

func TestSearchDegenerateProcs(t *testing.T) {
	model := machine.DefaultModel()
	pr := Problem{M: 8, K: 100, N: 100, NNZA: 50, NNZB: 500, BytesA: 24, BytesB: 16, BytesC: 24}
	plan := Search(1, pr, model, AnyPlan)
	if plan.Procs() != 1 {
		t.Fatalf("p=1 search returned %s", plan)
	}
	// Prime p: only 1D and flat 2D shapes exist.
	plan = Search(7, pr, model, AnyPlan)
	if plan.Procs() != 7 {
		t.Fatalf("p=7 search returned %s", plan)
	}
}
