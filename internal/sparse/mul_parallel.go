package sparse

import (
	"fmt"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/parallel"
)

// mulParallelMinRows is the row count below which MulParallel falls back to
// the sequential kernel: with fewer rows than this the fork-join overhead
// and the per-worker dense accumulators (each O(b.Cols)) outweigh any win.
const mulParallelMinRows = 8

// MulParallel computes the same generalized product as Mul using
// Gustavson's algorithm row-blocked across workers: the output rows are
// split into contiguous blocks (parallel.Ranges), each worker runs the
// sequential kernel on its block with a private sparse accumulator, and the
// per-block CSR fragments are stitched back in row order. Because every row
// is computed by exactly the same code path as Mul and row order is
// preserved, the result is bit-identical to Mul for any f and monoid.
//
// workers <= 0 selects GOMAXPROCS; workers == 1 is exactly Mul. The
// returned op count is the total f evaluations across all workers.
func MulParallel[TA, TB, TC any](a *CSR[TA], b *CSR[TB], f func(TA, TB) TC, add algebra.Monoid[TC], workers int) (*CSR[TC], int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	workers = parallel.Resolve(workers)
	if workers <= 1 || a.Rows < mulParallelMinRows {
		return Mul(a, b, f, add)
	}
	type frag struct {
		colIdx []int32
		val    []TC
		rowNNZ []int64 // nonzeros per row of the block
	}
	ranges := parallel.Ranges(a.Rows, workers)
	frags := make([]frag, len(ranges))
	var ops atomic.Int64
	parallel.For(len(ranges), len(ranges), func(part, _, _ int) {
		colIdx, val, rowNNZ, local := mulRowRange(a, b, ranges[part][0], ranges[part][1], f, add)
		frags[part] = frag{colIdx: colIdx, val: val, rowNNZ: rowNNZ}
		ops.Add(local)
	})

	// Stitch: fragments cover disjoint ascending row blocks, so prefix-sum
	// the per-row counts into RowPtr and concatenate values in block order.
	out := &CSR[TC]{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1)}
	total := 0
	for _, fr := range frags {
		total += len(fr.colIdx)
	}
	out.ColIdx = make([]int32, 0, total)
	out.Val = make([]TC, 0, total)
	for part, fr := range frags {
		lo := ranges[part][0]
		for r, nnz := range fr.rowNNZ {
			out.RowPtr[lo+r+1] = out.RowPtr[lo+r] + nnz
		}
		out.ColIdx = append(out.ColIdx, fr.colIdx...)
		out.Val = append(out.Val, fr.val...)
	}
	return out, ops.Load()
}
