// Package sparse implements generic sparse matrices (COO and CSR) and the
// generalized sparse matrix-matrix product C = A •⟨⊕,f⟩ B over arbitrary
// element domains, the computational substrate of the MFBC algorithms.
//
// All kernels are sequential; distribution is layered on top by
// internal/distmat and internal/spgemm.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
)

// Entry is one nonzero of a sparse matrix in coordinate form.
type Entry[T any] struct {
	I, J int32
	V    T
}

// COO is a coordinate-format sparse matrix. Entries may be unsorted and may
// contain duplicates until Canonicalize is called.
type COO[T any] struct {
	Rows, Cols int
	E          []Entry[T]
}

// NewCOO returns an empty COO matrix with the given dimensions.
func NewCOO[T any](rows, cols int) *COO[T] {
	return &COO[T]{Rows: rows, Cols: cols}
}

// Append adds one entry.
func (a *COO[T]) Append(i, j int32, v T) {
	a.E = append(a.E, Entry[T]{I: i, J: j, V: v})
}

// NNZ returns the number of stored entries (duplicates counted separately).
func (a *COO[T]) NNZ() int { return len(a.E) }

// Clone returns a deep copy.
func (a *COO[T]) Clone() *COO[T] {
	e := make([]Entry[T], len(a.E))
	copy(e, a.E)
	return &COO[T]{Rows: a.Rows, Cols: a.Cols, E: e}
}

// Canonicalize sorts entries by (row, col) and merges duplicates with the
// monoid operation, dropping merged values for which IsZero holds.
func (a *COO[T]) Canonicalize(m algebra.Monoid[T]) {
	if len(a.E) == 0 {
		return
	}
	sort.Slice(a.E, func(x, y int) bool {
		if a.E[x].I != a.E[y].I {
			return a.E[x].I < a.E[y].I
		}
		return a.E[x].J < a.E[y].J
	})
	out := a.E[:0]
	cur := a.E[0]
	for _, e := range a.E[1:] {
		if e.I == cur.I && e.J == cur.J {
			cur.V = m.Op(cur.V, e.V)
			continue
		}
		if !m.IsZero(cur.V) {
			out = append(out, cur)
		}
		cur = e
	}
	if !m.IsZero(cur.V) {
		out = append(out, cur)
	}
	a.E = out
}

// Validate checks that all coordinates are in range.
func (a *COO[T]) Validate() error {
	for _, e := range a.E {
		if e.I < 0 || int(e.I) >= a.Rows || e.J < 0 || int(e.J) >= a.Cols {
			return fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.I, e.J, a.Rows, a.Cols)
		}
	}
	return nil
}

// CSR is a compressed-sparse-row matrix. Column indices within each row are
// sorted ascending and unique.
type CSR[T any] struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []T
}

// NNZ returns the number of stored nonzeros.
func (a *CSR[T]) NNZ() int { return len(a.ColIdx) }

// Row returns the column indices and values of row i as shared slices.
func (a *CSR[T]) Row(i int) ([]int32, []T) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// Get returns the value at (i, j) and whether it is stored, using binary
// search within the row.
func (a *CSR[T]) Get(i, j int32) (T, bool) {
	cols, vals := a.Row(int(i))
	k := sort.Search(len(cols), func(x int) bool { return cols[x] >= j })
	if k < len(cols) && cols[k] == j {
		return vals[k], true
	}
	var zero T
	return zero, false
}

// FromCOO builds a CSR matrix from a (possibly unsorted, duplicated) COO
// matrix, merging duplicates with the monoid.
func FromCOO[T any](a *COO[T], m algebra.Monoid[T]) *CSR[T] {
	c := a.Clone()
	c.Canonicalize(m)
	out := &CSR[T]{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: make([]int64, c.Rows+1),
		ColIdx: make([]int32, 0, len(c.E)),
		Val:    make([]T, 0, len(c.E)),
	}
	for _, e := range c.E {
		out.RowPtr[e.I+1]++
	}
	for i := 0; i < c.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	for _, e := range c.E {
		out.ColIdx = append(out.ColIdx, e.J)
		out.Val = append(out.Val, e.V)
	}
	return out
}

// ToCOO converts back to coordinate form.
func (a *CSR[T]) ToCOO() *COO[T] {
	out := NewCOO[T](a.Rows, a.Cols)
	out.E = make([]Entry[T], 0, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			out.E = append(out.E, Entry[T]{I: int32(i), J: j, V: vals[k]})
		}
	}
	return out
}

// Transpose returns Aᵀ.
func Transpose[T any](a *CSR[T]) *CSR[T] {
	out := &CSR[T]{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int64, a.Cols+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]T, a.NNZ()),
	}
	for _, j := range a.ColIdx {
		out.RowPtr[j+1]++
	}
	for i := 0; i < a.Cols; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := make([]int64, a.Cols)
	for i := range next {
		next[i] = out.RowPtr[i]
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			pos := next[j]
			out.ColIdx[pos] = int32(i)
			out.Val[pos] = vals[k]
			next[j]++
		}
	}
	return out
}

// Mul computes the generalized sparse matrix product
//
//	C(i,j) = ⊕_k f(A(i,k), B(k,j))
//
// using Gustavson's row-wise algorithm with a sparse accumulator. It returns
// C and the number of f evaluations performed (the ops(A,B) measure of the
// paper's cost analysis).
func Mul[TA, TB, TC any](a *CSR[TA], b *CSR[TB], f func(TA, TB) TC, add algebra.Monoid[TC]) (*CSR[TC], int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	colIdx, val, rowNNZ, ops := mulRowRange(a, b, 0, a.Rows, f, add)
	out := &CSR[TC]{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1), ColIdx: colIdx, Val: val}
	for i, nnz := range rowNNZ {
		out.RowPtr[i+1] = out.RowPtr[i] + nnz
	}
	return out, ops
}

// mulRowRange runs Gustavson's kernel with a sparse accumulator over rows
// [lo, hi) of a, returning the concatenated column indices and values, the
// per-row nonzero counts, and the number of f evaluations. It is the single
// implementation behind both Mul and MulParallel: the parallel variant calls
// it once per row block, which is what guarantees bit-identical output.
func mulRowRange[TA, TB, TC any](a *CSR[TA], b *CSR[TB], lo, hi int, f func(TA, TB) TC, add algebra.Monoid[TC]) ([]int32, []TC, []int64, int64) {
	var (
		colIdx []int32
		val    []TC
	)
	rowNNZ := make([]int64, hi-lo)
	spa := make([]TC, b.Cols)
	occupied := make([]bool, b.Cols)
	var touched []int32
	var ops int64
	for i := lo; i < hi; i++ {
		acols, avals := a.Row(i)
		touched = touched[:0]
		for k, ak := range acols {
			av := avals[k]
			bcols, bvals := b.Row(int(ak))
			for x, j := range bcols {
				v := f(av, bvals[x])
				ops++
				if occupied[j] {
					spa[j] = add.Op(spa[j], v)
				} else {
					spa[j] = v
					occupied[j] = true
					touched = append(touched, j)
				}
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		nnzBefore := len(colIdx)
		for _, j := range touched {
			if !add.IsZero(spa[j]) {
				colIdx = append(colIdx, j)
				val = append(val, spa[j])
			}
			occupied[j] = false
		}
		rowNNZ[i-lo] = int64(len(colIdx) - nnzBefore)
	}
	return colIdx, val, rowNNZ, ops
}

// MulRef is a reference triple-loop implementation of Mul used by property
// tests.
func MulRef[TA, TB, TC any](a *CSR[TA], b *CSR[TB], f func(TA, TB) TC, add algebra.Monoid[TC]) *CSR[TC] {
	acc := NewCOO[TC](a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		acols, avals := a.Row(i)
		for k, ak := range acols {
			bcols, bvals := b.Row(int(ak))
			for x, j := range bcols {
				acc.Append(int32(i), j, f(avals[k], bvals[x]))
			}
		}
	}
	return FromCOO(acc, add)
}

// EWise merges two same-shaped matrices elementwise with the monoid
// operation (a union merge: entries present in only one operand pass
// through).
func EWise[T any](a, b *CSR[T], m algebra.Monoid[T]) *CSR[T] {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: ewise shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := &CSR[T]{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		x, y := 0, 0
		for x < len(ac) || y < len(bc) {
			var j int32
			var v T
			switch {
			case y >= len(bc) || (x < len(ac) && ac[x] < bc[y]):
				j, v = ac[x], av[x]
				x++
			case x >= len(ac) || bc[y] < ac[x]:
				j, v = bc[y], bv[y]
				y++
			default:
				j = ac[x]
				v = m.Op(av[x], bv[y])
				x++
				y++
			}
			if !m.IsZero(v) {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, v)
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Filter returns the entries of a for which keep returns true.
func Filter[T any](a *CSR[T], keep func(i, j int32, v T) bool) *CSR[T] {
	out := &CSR[T]{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if keep(int32(i), j, vals[k]) {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Map transforms every entry of a in place-like fashion, returning a new
// matrix; entries mapped to monoid zero are dropped.
func Map[T, U any](a *CSR[T], m algebra.Monoid[U], fn func(i, j int32, v T) U) *CSR[U] {
	out := &CSR[U]{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			u := fn(int32(i), j, vals[k])
			if !m.IsZero(u) {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, u)
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Mask filters a against the sparsity pattern of m: with keep=true the
// entries of a whose coordinates are present in m survive; with keep=false
// those entries are dropped (an anti-mask).
func Mask[T, U any](a *CSR[T], m *CSR[U], keep bool) *CSR[T] {
	if a.Rows != m.Rows || a.Cols != m.Cols {
		panic(fmt.Sprintf("sparse: mask shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, m.Rows, m.Cols))
	}
	out := &CSR[T]{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		mc, _ := m.Row(i)
		y := 0
		for x, j := range ac {
			for y < len(mc) && mc[y] < j {
				y++
			}
			present := y < len(mc) && mc[y] == j
			if present == keep {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, av[x])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// ZipJoin walks the entries present in both a and b (an intersection merge)
// and calls visit for each common coordinate.
func ZipJoin[T, U any](a *CSR[T], b *CSR[U], visit func(i, j int32, x T, y U)) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("sparse: zipjoin shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		x, y := 0, 0
		for x < len(ac) && y < len(bc) {
			switch {
			case ac[x] < bc[y]:
				x++
			case bc[y] < ac[x]:
				y++
			default:
				visit(int32(i), ac[x], av[x], bv[y])
				x++
				y++
			}
		}
	}
}

// Equal reports whether two matrices have identical structure and, per the
// provided predicate, equal values.
func Equal[T any](a, b *CSR[T], eq func(T, T) bool) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		if len(ac) != len(bc) {
			return false
		}
		for k := range ac {
			if ac[k] != bc[k] || !eq(av[k], bv[k]) {
				return false
			}
		}
	}
	return true
}
