package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
)

var addF = algebra.Monoid[float64]{
	Identity: 0,
	Op:       func(a, b float64) float64 { return a + b },
	IsZero:   func(a float64) bool { return a == 0 },
}

func mulF(a, b float64) float64 { return a * b }

func randomCSR(rows, cols, nnz int, seed int64) *CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < nnz; i++ {
		coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), float64(1+rng.Intn(9)))
	}
	return FromCOO(coo, addF)
}

func TestFromCOOCanonicalizes(t *testing.T) {
	coo := NewCOO[float64](3, 3)
	coo.Append(2, 1, 4)
	coo.Append(0, 0, 1)
	coo.Append(2, 1, 6) // duplicate: summed
	coo.Append(1, 2, 5)
	coo.Append(1, 1, 3)
	coo.Append(0, 2, -0.0) // zero after merge? no: stays -0 → IsZero(0) true
	a := FromCOO(coo, addF)
	if a.NNZ() != 4 {
		t.Fatalf("nnz=%d want 4", a.NNZ())
	}
	if v, ok := a.Get(2, 1); !ok || v != 10 {
		t.Fatalf("duplicate merge wrong: %v %v", v, ok)
	}
	cols, _ := a.Row(1)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Fatalf("row 1 not sorted: %v", cols)
	}
	if err := coo.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewCOO[float64](2, 2)
	bad.Append(5, 0, 1)
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range entry must fail validation")
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := randomCSR(17, 23, 80, 3)
	att := Transpose(Transpose(a))
	if !Equal(a, att, func(x, y float64) bool { return x == y }) {
		t.Fatal("transpose twice must be identity")
	}
	at := Transpose(a)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			v, ok := at.Get(j, int32(i))
			if !ok || v != vals[k] {
				t.Fatalf("A(%d,%d)=%v missing from Aᵀ", i, j, vals[k])
			}
		}
	}
}

// TestMulMatchesReference is the property test: Gustavson with SPA must
// agree with the triple-loop reference on random inputs.
func TestMulMatchesReference(t *testing.T) {
	check := func(seedA, seedB uint16) bool {
		a := randomCSR(13, 11, 40, int64(seedA))
		b := randomCSR(11, 17, 50, int64(seedB))
		got, _ := Mul(a, b, mulF, addF)
		want := MulRef(a, b, mulF, addF)
		return Equal(got, want, func(x, y float64) bool { return x == y })
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulOpsCount(t *testing.T) {
	a := randomCSR(10, 10, 30, 5)
	b := randomCSR(10, 10, 30, 6)
	_, ops := Mul(a, b, mulF, addF)
	var want int64
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, k := range cols {
			bc, _ := b.Row(int(k))
			want += int64(len(bc))
		}
	}
	if ops != want {
		t.Fatalf("ops=%d want %d", ops, want)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch must panic")
		}
	}()
	a := randomCSR(4, 5, 6, 1)
	b := randomCSR(6, 4, 6, 2)
	Mul(a, b, mulF, addF)
}

func TestMulTropicalShortestPath(t *testing.T) {
	// One step of min-plus matrix "squaring" on a path graph: distances of
	// up to two hops.
	coo := NewCOO[float64](4, 4)
	for i := 0; i < 3; i++ {
		coo.Append(int32(i), int32(i+1), 1)
		coo.Append(int32(i+1), int32(i), 1)
	}
	trop := algebra.TropicalMonoid()
	a := FromCOO(coo, trop)
	two, _ := Mul(a, a, func(x, y float64) float64 { return x + y }, trop)
	if v, ok := two.Get(0, 2); !ok || v != 2 {
		t.Fatalf("two-hop distance 0→2 = %v, want 2", v)
	}
}

func TestEWiseUnionAndZeroDrop(t *testing.T) {
	a := randomCSR(9, 9, 25, 7)
	b := randomCSR(9, 9, 25, 8)
	c := EWise(a, b, addF)
	// Every coordinate of a and b appears, values summed.
	for i := 0; i < 9; i++ {
		cols, vals := c.Row(i)
		for k, j := range cols {
			av, _ := a.Get(int32(i), j)
			bv, _ := b.Get(int32(i), j)
			if vals[k] != av+bv {
				t.Fatalf("ewise(%d,%d)=%v want %v", i, j, vals[k], av+bv)
			}
		}
	}
	// a ⊕ (-a) must vanish entirely.
	neg := Map(a, addF, func(_, _ int32, v float64) float64 { return -v })
	zero := EWise(a, neg, addF)
	if zero.NNZ() != 0 {
		t.Fatalf("a + (-a) kept %d entries", zero.NNZ())
	}
}

func TestMaskKeepAndDrop(t *testing.T) {
	a := randomCSR(8, 8, 30, 9)
	m := randomCSR(8, 8, 20, 10)
	keep := Mask(a, m, true)
	drop := Mask(a, m, false)
	if keep.NNZ()+drop.NNZ() != a.NNZ() {
		t.Fatal("mask must partition the entries")
	}
	for i := 0; i < 8; i++ {
		cols, _ := keep.Row(i)
		for _, j := range cols {
			if _, ok := m.Get(int32(i), j); !ok {
				t.Fatal("keep-mask leaked an unmasked entry")
			}
		}
		cols, _ = drop.Row(i)
		for _, j := range cols {
			if _, ok := m.Get(int32(i), j); ok {
				t.Fatal("anti-mask kept a masked entry")
			}
		}
	}
}

func TestFilterMapZip(t *testing.T) {
	a := randomCSR(6, 6, 20, 11)
	evens := Filter(a, func(_, j int32, _ float64) bool { return j%2 == 0 })
	cols, _ := evens.Row(3)
	for _, j := range cols {
		if j%2 != 0 {
			t.Fatal("filter kept an odd column")
		}
	}
	doubled := Map(a, addF, func(_, _ int32, v float64) float64 { return 2 * v })
	count := 0
	ZipJoin(a, doubled, func(_, _ int32, x, y float64) {
		count++
		if y != 2*x {
			t.Fatalf("map wrong: %v vs %v", x, y)
		}
	})
	if count != a.NNZ() {
		t.Fatalf("zipjoin visited %d of %d", count, a.NNZ())
	}
}

func TestToCOORoundTrip(t *testing.T) {
	a := randomCSR(12, 14, 60, 13)
	b := FromCOO(a.ToCOO(), addF)
	if !Equal(a, b, func(x, y float64) bool { return x == y }) {
		t.Fatal("COO round trip changed the matrix")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := randomCSR(5, 5, 12, 14)
	if !Equal(a, a, func(x, y float64) bool { return x == y }) {
		t.Fatal("matrix must equal itself")
	}
	b := Map(a, addF, func(i, j int32, v float64) float64 {
		if i == 0 && j == a.ColIdx[0] {
			return v + 1
		}
		return v
	})
	if Equal(a, b, func(x, y float64) bool { return x == y }) {
		t.Fatal("value difference missed")
	}
}

// quickCOO lets testing/quick generate whole random COO matrices.
type quickCOO struct {
	E []Entry[float64]
}

func (quickCOO) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(40)
	es := make([]Entry[float64], n)
	for i := range es {
		es[i] = Entry[float64]{I: int32(r.Intn(9)), J: int32(r.Intn(9)), V: float64(r.Intn(5) - 2)}
	}
	return reflect.ValueOf(quickCOO{E: es})
}

// Canonicalize is idempotent and order-insensitive.
func TestCanonicalizeProperties(t *testing.T) {
	check := func(q quickCOO) bool {
		a := &COO[float64]{Rows: 9, Cols: 9, E: append([]Entry[float64]{}, q.E...)}
		b := &COO[float64]{Rows: 9, Cols: 9, E: append([]Entry[float64]{}, q.E...)}
		rand.New(rand.NewSource(1)).Shuffle(len(b.E), func(i, j int) { b.E[i], b.E[j] = b.E[j], b.E[i] })
		a.Canonicalize(addF)
		b.Canonicalize(addF)
		aa := a.Clone()
		aa.Canonicalize(addF)
		if len(a.E) != len(b.E) || len(a.E) != len(aa.E) {
			return false
		}
		for i := range a.E {
			if a.E[i] != b.E[i] || a.E[i] != aa.E[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
