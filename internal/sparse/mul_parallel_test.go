package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
)

var workerCounts = []int{0, 1, 2, 3, 4, 8, 17}

// randCSRFloat builds a random tropical-weight matrix with the given shape
// and fill.
func randCSRFloat(rows, cols, nnz int, seed int64) *CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < nnz; i++ {
		coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), 1+float64(rng.Intn(9)))
	}
	return FromCOO(coo, algebra.TropicalMonoid())
}

// mustEqual asserts structural and bit-exact value equality.
func mustEqual[T comparable](t *testing.T, got, want *CSR[T], label string) {
	t.Helper()
	if !Equal(got, want, func(a, b T) bool { return a == b }) {
		t.Fatalf("%s: parallel result differs from sequential", label)
	}
	// RowPtr must match exactly too (Equal checks per-row slices).
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("%s: RowPtr[%d] = %d, want %d", label, i, got.RowPtr[i], want.RowPtr[i])
		}
	}
}

// TestMulParallelTropical checks exact equality on the tropical monoid
// (min-plus) across worker counts and random shapes.
func TestMulParallelTropical(t *testing.T) {
	trop := algebra.TropicalMonoid()
	times := func(a, b float64) float64 { return a + b }
	for _, tc := range []struct{ m, k, n, nnzA, nnzB int }{
		{50, 40, 30, 200, 150},
		{128, 128, 128, 1000, 1000},
		{7, 300, 11, 60, 500},
	} {
		a := randCSRFloat(tc.m, tc.k, tc.nnzA, int64(tc.m))
		b := randCSRFloat(tc.k, tc.n, tc.nnzB, int64(tc.n))
		want, wantOps := Mul(a, b, times, trop)
		ref := MulRef(a, b, times, trop)
		mustEqual(t, want, ref, "Mul vs MulRef")
		for _, w := range workerCounts {
			got, ops := MulParallel(a, b, times, trop, w)
			mustEqual(t, got, want, "tropical")
			if ops != wantOps {
				t.Fatalf("workers=%d: ops=%d, want %d", w, ops, wantOps)
			}
		}
	}
}

// TestMulParallelMultPath checks the Bellman-Ford action over the multpath
// monoid, the shape MFBF actually multiplies.
func TestMulParallelMultPath(t *testing.T) {
	mp := algebra.MultPathMonoid()
	rng := rand.New(rand.NewSource(7))
	const nb, n = 40, 120
	fcoo := NewCOO[algebra.MultPath](nb, n)
	for i := 0; i < 400; i++ {
		fcoo.Append(int32(rng.Intn(nb)), int32(rng.Intn(n)),
			algebra.MultPath{W: float64(1 + rng.Intn(5)), M: float64(1 + rng.Intn(3))})
	}
	f := FromCOO(fcoo, mp)
	a := randCSRFloat(n, n, 800, 11)
	want, wantOps := Mul(f, a, algebra.BFAction, mp)
	for _, w := range workerCounts {
		got, ops := MulParallel(f, a, algebra.BFAction, mp, w)
		mustEqual(t, got, want, "multpath")
		if ops != wantOps {
			t.Fatalf("workers=%d: ops=%d, want %d", w, ops, wantOps)
		}
	}
}

// TestMulParallelCountMonoid covers a monoid whose zero (0) is actually
// produced by cancellation-free addition of empty products.
func TestMulParallelCountMonoid(t *testing.T) {
	count := algebra.CountMonoid()
	times := func(a, b float64) float64 { return a * b }
	a := randCSRFloat(64, 64, 400, 3)
	b := randCSRFloat(64, 64, 400, 4)
	want, _ := Mul(a, b, times, count)
	for _, w := range workerCounts {
		got, _ := MulParallel(a, b, times, count, w)
		mustEqual(t, got, want, "count")
	}
}

// TestMulParallelEdgeShapes exercises empty matrices, empty rows, and the
// degenerate 1×n and n×1 shapes.
func TestMulParallelEdgeShapes(t *testing.T) {
	trop := algebra.TropicalMonoid()
	times := func(a, b float64) float64 { return a + b }

	// Fully empty operands.
	empty := FromCOO(NewCOO[float64](30, 20), trop)
	emptyB := FromCOO(NewCOO[float64](20, 10), trop)
	for _, w := range workerCounts {
		got, ops := MulParallel(empty, emptyB, times, trop, w)
		if got.NNZ() != 0 || ops != 0 || got.Rows != 30 || got.Cols != 10 {
			t.Fatalf("workers=%d: empty product wrong: nnz=%d ops=%d", w, got.NNZ(), ops)
		}
	}

	// Empty rows interleaved with dense rows: rows 0, 2, 4, ... empty.
	coo := NewCOO[float64](40, 40)
	for i := int32(1); i < 40; i += 2 {
		for j := int32(0); j < 40; j += 3 {
			coo.Append(i, j, float64(i+j))
		}
	}
	sparseRows := FromCOO(coo, trop)
	b := randCSRFloat(40, 40, 300, 9)
	want, _ := Mul(sparseRows, b, times, trop)
	for _, w := range workerCounts {
		got, _ := MulParallel(sparseRows, b, times, trop, w)
		mustEqual(t, got, want, "empty-rows")
	}

	// 1×n times n×n (single row: must fall back or still match).
	rowVec := randCSRFloat(1, 50, 30, 5)
	sq := randCSRFloat(50, 50, 250, 6)
	wantRow, _ := Mul(rowVec, sq, times, trop)
	// n×1 result shape.
	colVec := randCSRFloat(50, 1, 30, 8)
	wantCol, _ := Mul(sq, colVec, times, trop)
	for _, w := range workerCounts {
		gotRow, _ := MulParallel(rowVec, sq, times, trop, w)
		mustEqual(t, gotRow, wantRow, "1xn")
		gotCol, _ := MulParallel(sq, colVec, times, trop, w)
		mustEqual(t, gotCol, wantCol, "nx1")
	}
}

// TestMulParallelDimensionMismatchPanics mirrors Mul's contract.
func TestMulParallelDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	trop := algebra.TropicalMonoid()
	a := randCSRFloat(4, 5, 3, 1)
	b := randCSRFloat(6, 4, 3, 2)
	MulParallel(a, b, func(x, y float64) float64 { return x + y }, trop, 2)
}
