package obs

import "repro/internal/machine"

// phaseLabels maps every canonical machine phase to the stable metric
// label used on per-phase counter families and phase span names. The keys
// MUST cover machine.CanonicalPhases() — the mfbc-lint phasenames analyzer
// enforces it, so adding a phase to the machine registry without extending
// this table fails lint, and metric label sets never drift from the phase
// registry.
var phaseLabels = map[string]string{
	machine.PhaseStage:  "stage",
	machine.PhaseDiff:   "diff",
	machine.PhasePatch:  "patch",
	machine.PhaseProbe:  "probe",
	machine.PhaseSweep:  "sweep",
	machine.PhaseReduce: "reduce",
}

// PhaseLabel returns the metric label of a machine phase name and whether
// the phase is registered. Unregistered names (possible only from
// off-registry test regions) get the literal name back so telemetry is
// never silently dropped.
func PhaseLabel(name string) (string, bool) {
	if l, ok := phaseLabels[name]; ok {
		return l, true
	}
	return name, false
}

// PhaseLabels lists the metric labels of all canonical phases, in
// machine-registry declaration order. Useful for pre-registering vec
// children so the exposition shows zero-valued phases from the first
// scrape.
func PhaseLabels() []string {
	phases := machine.CanonicalPhases()
	out := make([]string, len(phases))
	for i, p := range phases {
		out[i], _ = PhaseLabel(p)
	}
	return out
}
