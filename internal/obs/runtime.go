package obs

import (
	"runtime"
	"runtime/metrics"
)

// RegisterRuntimeMetrics installs process runtime gauges (goroutines,
// heap, GC) on r, evaluated at scrape time. It is called by the serving
// binary, not by library constructors, because the values change on every
// scrape and would break byte-identical exposition tests that compare
// repeated scrapes of a quiesced registry.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapObjects)
	})
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
	r.GaugeFunc("go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
	r.GaugeFunc("go_sched_latency_p99_seconds", "P99 goroutine scheduling latency since process start.", func() float64 {
		return schedLatencyP99()
	})
}

// schedLatencyP99 reads the runtime/metrics scheduler-latency histogram
// and returns its (approximate, bucket-upper-bound) p99 in seconds, or 0
// when unavailable.
func schedLatencyP99() float64 {
	samples := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := samples[0].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * 0.99)
	var run uint64
	for i, c := range h.Counts {
		run += c
		if run >= target {
			// Buckets[i+1] is the upper edge of count bucket i.
			if i+1 < len(h.Buckets) {
				return h.Buckets[i+1]
			}
			return h.Buckets[len(h.Buckets)-1]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
