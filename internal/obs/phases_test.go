package obs

import (
	"testing"

	"repro/internal/machine"
)

// TestPhaseLabelsCoverRegistry is the runtime mirror of the mfbc-lint
// phasenames check: every canonical machine phase must have a label.
func TestPhaseLabelsCoverRegistry(t *testing.T) {
	for _, p := range machine.CanonicalPhases() {
		if _, ok := PhaseLabel(p); !ok {
			t.Errorf("machine phase %q has no obs label", p)
		}
	}
	if len(phaseLabels) != len(machine.CanonicalPhases()) {
		t.Errorf("phaseLabels has %d entries, registry has %d", len(phaseLabels), len(machine.CanonicalPhases()))
	}
}

func TestPhaseLabelUnknownPassthrough(t *testing.T) {
	label, ok := PhaseLabel("off-registry")
	if ok {
		t.Error("unknown phase reported as registered")
	}
	if label != "off-registry" {
		t.Errorf("unknown phase label = %q, want passthrough", label)
	}
}

func TestPhaseLabelsOrder(t *testing.T) {
	labels := PhaseLabels()
	want := []string{"stage", "diff", "patch", "probe", "sweep", "reduce"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}
