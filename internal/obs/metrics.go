package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64. Updates are one atomic
// CAS loop on the raw bits; Inc on the common integer path is a single
// add via the same loop.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v. Negative deltas are programmer error
// and ignored (counters are monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) sampleLines(name, sig string) []string {
	return []string{name + sig + " " + formatValue(c.Value())}
}

// Gauge is a settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sampleLines(name, sig string) []string {
	return []string{name + sig + " " + formatValue(g.Value())}
}

// gaugeFunc is a gauge evaluated at scrape time.
type gaugeFunc func() float64

func (f gaugeFunc) sampleLines(name, sig string) []string {
	return []string{name + sig + " " + formatValue(f())}
}

// Histogram is a fixed-bucket cumulative histogram. bounds hold the
// inclusive upper edges (ascending); counts[i] is the number of
// observations with v <= bounds[i] that did not fit an earlier bucket,
// and counts[len(bounds)] is the implicit +Inf overflow bucket. sumBits
// accumulates the raw observation sum.
//
// Observe is lock-free: a binary search plus two atomic adds. The scrape
// path reads counts non-transactionally, which is fine for monitoring —
// each sample line is individually coherent and the exposition-determinism
// test quiesces writers first.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64

	exMu      sync.Mutex
	exemplars []exemplar // guarded by exMu; lazily len(bounds)+1; zero traceID = unset
}

// exemplar pins one concrete observation — a trace/span reference and the
// observed value — to a histogram bucket, so an operator reading a slow
// bucket on /metrics can jump straight to a representative trace in
// /debug/traces.
type exemplar struct {
	traceID, spanID string
	value           float64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records v. A value exactly on a bucket's upper edge lands in
// that bucket (le is inclusive, per the exposition format).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the owning bucket
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records v like Observe and pins a trace/span exemplar
// to the owning bucket (latest observation wins), rendered after that
// bucket's sample line OpenMetrics-style:
//
//	name_bucket{le="0.5"} 3 # {span_id="s01",trace_id="t000007"} 0.31
//
// An empty traceID degrades to a plain Observe, so callers can pass the
// IDs unconditionally and let disabled/sampled-out tracing opt out.
func (h *Histogram) ObserveExemplar(v float64, traceID, spanID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = exemplar{traceID: traceID, spanID: spanID, value: v}
	h.exMu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the bucket upper bounds (ending with +Inf) and the
// cumulative count at or below each bound. The load harness uses it for
// percentile estimation.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	cumulative = make([]uint64, len(bounds))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

func (h *Histogram) sampleLines(name, sig string) []string {
	bounds, cum := h.Snapshot()
	h.exMu.Lock()
	ex := append([]exemplar(nil), h.exemplars...)
	h.exMu.Unlock()
	lines := make([]string, 0, len(bounds)+2)
	for i, b := range bounds {
		line := name + "_bucket" + mergeSig(sig, "le", formatValue(b)) + " " +
			formatValue(float64(cum[i]))
		if i < len(ex) && ex[i].traceID != "" {
			line += " # " + labelSig([]string{"trace_id", "span_id"}, []string{ex[i].traceID, ex[i].spanID}) +
				" " + formatValue(ex[i].value)
		}
		lines = append(lines, line)
	}
	lines = append(lines,
		name+"_sum"+sig+" "+formatValue(h.Sum()),
		name+"_count"+sig+" "+formatValue(float64(cum[len(cum)-1])))
	return lines
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	f *family
}

// With returns the child counter for the given label values (positional,
// matching the label names at registration).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	f *family
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values, all
// children sharing one bucket layout.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() metric { return newHistogram(v.bounds) }).(*Histogram)
}

// DefBuckets is the default latency bucket layout, in seconds: 100µs to
// ~100s, roughly geometric, covering both in-process cache hits and
// saturated-queue tail latencies.
func DefBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
	}
}

// SizeBuckets is the default payload-size bucket layout, in bytes: 256 B
// to 16 MiB, powers of four.
func SizeBuckets() []float64 {
	return []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}
}
