package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "Total requests.")
	g := r.Gauge("in_flight", "In-flight requests.")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	g.Set(7)
	g.Add(-3)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %v, want 4", got)
	}
	text := r.Text()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 3.5",
		"# TYPE in_flight gauge",
		"in_flight 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "second")
}

// TestHistogramBucketEdges pins the boundary rule: a value exactly on a
// bucket's upper edge counts in that bucket (le is inclusive), values
// above the top finite bound land only in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1, 2, 4})

	h.Observe(1) // exactly on first edge → le="1"
	h.Observe(2) // exactly on second edge → le="2"
	h.Observe(4) // exactly on top finite edge → le="4"
	h.Observe(5) // above all finite bounds → +Inf only

	bounds, cum := h.Snapshot()
	wantBounds := []float64{1, 2, 4, math.Inf(1)}
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
	}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
		}
	}
	wantCum := []uint64{1, 2, 3, 4}
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Fatalf("cumulative = %v, want %v", cum, wantCum)
		}
	}
	if got := h.Sum(); got != 12 {
		t.Fatalf("sum = %v, want 12", got)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %v, want 4", got)
	}

	text := r.Text()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="4"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		`lat_sum 12`,
		`lat_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHistogramEmpty pins the all-zero exposition of a histogram that has
// never observed anything — every bucket present, sum and count zero.
func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", "Never observed.", []float64{0.5})
	text := r.Text()
	for _, want := range []string{
		`empty_bucket{le="0.5"} 0`,
		`empty_bucket{le="+Inf"} 0`,
		`empty_sum 0`,
		`empty_count 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_reqs_total", "Requests by route/code.", "route", "code")
	v.With("query", "200").Add(3)
	v.With("query", "404").Inc()
	v.With("mutate", "200").Inc()
	hv := r.HistogramVec("dur", "Duration by route.", []float64{1}, "route")
	hv.With("query").Observe(0.5)

	if got := v.With("query", "200").Value(); got != 3 {
		t.Fatalf("repeat With returned a different child: value %v, want 3", got)
	}
	text := r.Text()
	for _, want := range []string{
		`http_reqs_total{code="200",route="mutate"} 1`,
		`http_reqs_total{code="200",route="query"} 3`,
		`http_reqs_total{code="404",route="query"} 1`,
		`dur_bucket{le="1",route="query"} 1`,
		`dur_bucket{le="+Inf",route="query"} 1`,
		`dur_count{route="query"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Families sorted by name: dur before http_reqs_total.
	if strings.Index(text, "# TYPE dur histogram") > strings.Index(text, "# TYPE http_reqs_total counter") {
		t.Errorf("families not sorted by name:\n%s", text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc", "Escapes.", "g")
	v.With(`a"b\c` + "\n").Inc()
	text := r.Text()
	want := `esc{g="a\"b\\c\n"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing %q:\n%s", want, text)
	}
}

// TestExpositionDeterministic hammers a registry from concurrent writers,
// quiesces, then requires repeated scrapes to be byte-identical — the
// /metrics determinism contract. Run under -race this also proves the
// update paths are race-clean against scrapes (a mid-load scrape is taken
// and discarded).
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("total", "Total.")
	v := r.CounterVec("by_route", "By route.", "route")
	h := r.Histogram("lat", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	hv := r.HistogramVec("sz", "Size.", []float64{10, 100}, "route")
	r.GaugeFunc("fixed", "Scrape-computed but constant.", func() float64 { return 42 })

	routes := []string{"query", "mutate", "stats", "graphs"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				route := routes[(w+i)%len(routes)]
				v.With(route).Inc()
				h.Observe(float64(i%7) * 0.003)
				hv.With(route).Observe(float64(i % 150))
			}
		}(w)
	}
	// Scrape mid-load: value is meaningless but must be race-free.
	_ = r.Text()
	wg.Wait()

	first := r.Text()
	for i := 0; i < 5; i++ {
		if again := r.Text(); again != first {
			t.Fatalf("scrape %d differs from first scrape:\n--- first ---\n%s\n--- again ---\n%s", i, first, again)
		}
	}
	if !strings.Contains(first, "total 8000") {
		t.Errorf("expected total 8000 in exposition:\n%s", first)
	}
}

func TestMergeSigOrdersKeys(t *testing.T) {
	// le sorts before "route" and after "code": the merged signature must
	// stay key-sorted wherever le lands.
	if got := mergeSig(`{route="q"}`, "le", "0.5"); got != `{le="0.5",route="q"}` {
		t.Fatalf("mergeSig = %s", got)
	}
	if got := mergeSig(`{code="200"}`, "le", "+Inf"); got != `{code="200",le="+Inf"}` {
		t.Fatalf("mergeSig = %s", got)
	}
	if got := mergeSig("", "le", "1"); got != `{le="1"}` {
		t.Fatalf("mergeSig = %s", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		1:           "1",
		3.5:         "3.5",
		0.0001:      "0.0001",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
