// Package obs is the zero-dependency observability layer of the service:
// a metrics registry with deterministic Prometheus-text exposition, a
// lightweight request tracer whose spans propagate through
// context.Context, and runtime gauges for profiling.
//
// Design constraints, in order:
//
//   - Determinism: the /metrics exposition is byte-stable — families sorted
//     by name, series sorted by label signature, floats formatted by one
//     canonical rule — so two scrapes of identical state are identical
//     bytes and diffs across scrapes are pure value changes.
//   - Near-zero disabled-path overhead: metric updates are single atomics;
//     tracing disabled means one nil context lookup per instrumentation
//     point and nothing else.
//   - Zero dependencies: nothing beyond the standard library, matching the
//     repo's no-new-modules constraint.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metric families and renders them as Prometheus
// text exposition. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu; name → family
}

// family is one named metric: a fixed type, help text, and either a single
// unlabeled series or a set of labeled children.
type family struct {
	name   string
	help   string
	typ    string   // "counter" | "gauge" | "histogram"
	labels []string // label names of vec families (nil for scalars)

	mu       sync.Mutex
	scalar   metric            // unlabeled families
	children map[string]metric // guarded by mu; label signature → child
}

// metric is the value surface a family exposes: each concrete type renders
// its own sample lines.
type metric interface {
	sampleLines(name, labelSig string) []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, panicking on a duplicate name: metric names
// are a global contract (dashboards and the load harness join on them), so
// colliding registrations are programmer error, not a runtime condition.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
	return f
}

// Counter registers and returns a monotone counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", scalar: c})
	return c
}

// Gauge registers and returns a set-table gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", scalar: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time (the
// runtime gauges and the server's registry-size gauges use it). fn must be
// safe to call concurrently with everything else.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", scalar: gaugeFunc(fn)})
}

// Histogram registers and returns a fixed-bucket histogram. bounds are the
// inclusive upper bucket edges, strictly ascending; a +Inf bucket is always
// appended implicitly. Nil bounds select DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, typ: "histogram", scalar: h})
	return h
}

// CounterVec registers a counter family partitioned by the given labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(&family{
		name: name, help: help, typ: "counter", labels: labels,
		children: make(map[string]metric),
	})
	return &CounterVec{f: f}
}

// GaugeVec registers a gauge family partitioned by the given labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(&family{
		name: name, help: help, typ: "gauge", labels: labels,
		children: make(map[string]metric),
	})
	return &GaugeVec{f: f}
}

// HistogramVec registers a histogram family partitioned by the given
// labels, every child sharing one fixed bucket layout.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := r.register(&family{
		name: name, help: help, typ: "histogram", labels: labels,
		children: make(map[string]metric),
	})
	if bounds == nil {
		bounds = DefBuckets()
	}
	return &HistogramVec{f: f, bounds: append([]float64(nil), bounds...)}
}

// child returns the labeled child metric, creating it with mk on first use.
func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	sig := labelSig(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[sig]
	if !ok {
		m = mk()
		f.children[sig] = m
	}
	return m
}

// labelSig renders the canonical label signature {a="x",b="y"}: label names
// sorted, values escaped. It is both the child key and the exposition form.
func labelSig(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, len(names))
	for i := range names {
		kvs[i] = kv{names[i], values[i]}
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeSig inserts extra label pairs (already escaped names like le) into a
// signature, keeping keys sorted. sig may be "".
func mergeSig(sig, key, val string) string {
	pair := key + `="` + escapeLabel(val) + `"`
	if sig == "" {
		return "{" + pair + "}"
	}
	inner := sig[1 : len(sig)-1]
	parts := strings.Split(inner, ",")
	out := make([]string, 0, len(parts)+1)
	inserted := false
	for _, p := range parts {
		if !inserted && p > pair {
			out = append(out, pair)
			inserted = true
		}
		out = append(out, p)
	}
	if !inserted {
		out = append(out, pair)
	}
	return "{" + strings.Join(out, ",") + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatValue is the one canonical float rendering of the exposition:
// shortest round-trip form, so equal values are equal bytes.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in Prometheus text exposition format,
// deterministically: families sorted by name, series within a family sorted
// by label signature.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		if f.children == nil {
			for _, line := range f.scalar.sampleLines(f.name, "") {
				b.WriteString(line)
				b.WriteByte('\n')
			}
			continue
		}
		f.mu.Lock()
		sigs := make([]string, 0, len(f.children))
		for sig := range f.children {
			sigs = append(sigs, sig)
		}
		kids := make(map[string]metric, len(f.children))
		for sig, m := range f.children {
			kids[sig] = m
		}
		f.mu.Unlock()
		sort.Strings(sigs)
		for _, sig := range sigs {
			for _, line := range kids[sig].sampleLines(f.name, sig) {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the exposition to a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// Handler serves the exposition over HTTP (the GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
