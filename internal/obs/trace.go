package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"
)

// SpanRecord is one finished span as exported in the trace JSONL: every
// line is a self-contained record, the parent references encode the tree,
// and StartUS/DurUS are microseconds relative to the trace's root start so
// records never carry absolute timestamps.
type SpanRecord struct {
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	Parent  string         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Tracer collects request traces into a bounded ring buffer and,
// optionally, streams finished traces to a JSONL sink. A head sampler
// (SetSampleRate) bounds retention under production rates: traces keep
// recording but only a sampled subset — plus anything force-kept, see
// Span.ForceKeep — is sealed. A nil *Tracer is the disabled state: Start
// returns a nil span and every span method no-ops, so instrumentation
// points cost one nil check when tracing is off.
type Tracer struct {
	mu         sync.Mutex
	cap        int
	ring       [][]SpanRecord // guarded by mu; completed traces, oldest first
	nextID     uint64         // guarded by mu
	sink       io.Writer      // guarded by mu
	dropped    uint64         // guarded by mu; traces evicted from the ring
	sample     float64        // guarded by mu; head-sampling keep probability
	sampledOut uint64         // guarded by mu; traces the head sampler discarded
}

// NewTracer creates a tracer retaining the most recent capacity traces
// (minimum 1). The sample rate starts at 1 (keep every trace); see
// SetSampleRate.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{cap: capacity, sample: 1}
}

// SetSampleRate sets the head-sampling keep probability, clamped to
// [0, 1]. Each trace draws its keep decision at Start from a hash of its
// trace ID, so the decision is stable per trace and the kept set is a
// rate-p subset of the ID sequence; traces sampled out still record spans
// but are discarded (counted by SampledOut) instead of sealed at finish.
// ForceKeep overrides the decision per trace — error and slow requests
// stay observable at any rate. Rate 0 keeps only force-kept traces.
func (tr *Tracer) SetSampleRate(p float64) {
	if tr == nil {
		return
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	tr.mu.Lock()
	tr.sample = p
	tr.mu.Unlock()
}

// sampleKeep is the head decision for one trace ID: the ID hashes to a
// uniform point in [0, 1) which is kept iff it falls below the rate.
// Deterministic per ID (no global randomness), statistically a rate-p
// sample over the ID sequence.
func sampleKeep(id string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, id)
	return float64(h.Sum64()>>11)/(1<<53) < rate
}

// SetSink directs finished traces to w as JSONL, one span record per
// line, flushed when each trace's root span ends. Pass nil to detach.
func (tr *Tracer) SetSink(w io.Writer) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.sink = w
	tr.mu.Unlock()
}

// trace is one in-flight request trace accumulating span records until
// the root span ends.
type trace struct {
	tr       *Tracer
	id       string
	start    time.Time
	keep     bool // head-sampling decision, fixed at Start
	mu       sync.Mutex
	records  []SpanRecord // guarded by mu
	nextSpan int          // guarded by mu
	forced   bool         // guarded by mu; ForceKeep override
}

func (t *trace) spanID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSpan++
	return fmt.Sprintf("s%02d", t.nextSpan)
}

func (t *trace) append(rec SpanRecord) {
	t.mu.Lock()
	t.records = append(t.records, rec)
	t.mu.Unlock()
}

// Span is one timed region of a trace. A nil *Span is valid and inert.
type Span struct {
	t      *trace
	id     string
	parent string
	name   string
	start  time.Time // zero for post-hoc spans added via AddCompleted

	mu       sync.Mutex
	startUS  int64          // guarded by mu (fixed at creation; read by children)
	cursorUS int64          // guarded by mu; layout offset for AddCompleted children
	attrs    map[string]any // guarded by mu
	ended    bool           // guarded by mu
}

type spanKey struct{}

// Start begins a new root span (a new trace). The returned context
// carries the span; StartSpan calls downstream attach children to it. On
// a nil tracer the context is returned unchanged with a nil span.
func (tr *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if tr == nil {
		return ctx, nil
	}
	tr.mu.Lock()
	tr.nextID++
	id := fmt.Sprintf("t%06d", tr.nextID)
	rate := tr.sample
	tr.mu.Unlock()
	t := &trace{tr: tr, id: id, start: time.Now(), keep: sampleKeep(id, rate)}
	s := &Span{t: t, id: t.spanID(), name: name, start: t.start}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan begins a child of the span carried by ctx, with a live
// wall-clock start. When ctx carries no span (tracing disabled or not a
// traced request) it returns ctx and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	now := time.Now()
	s := &Span{
		t:       parent.t,
		id:      parent.t.spanID(),
		parent:  parent.id,
		name:    name,
		start:   now,
		startUS: now.Sub(parent.t.start).Microseconds(),
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// ForceKeep marks the span's trace as always-kept, overriding the head
// sampler: the HTTP middleware calls it for error and slow requests so
// those traces survive any sample rate. No-op on a nil span.
func (s *Span) ForceKeep() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.t.forced = true
	s.t.mu.Unlock()
}

// Kept reports whether the span's trace will be retained when it finishes
// (head-sampled in, or force-kept). Exemplar attachment consults it so
// histograms only reference traces that actually exist in the ring/sink.
// False on a nil span.
func (s *Span) Kept() bool {
	if s == nil {
		return false
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.t.keep || s.t.forced
}

// IDs returns the trace and span identifiers, empty on a nil span.
func (s *Span) IDs() (traceID, spanID string) {
	if s == nil {
		return "", ""
	}
	return s.t.id, s.id
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SetAttr attaches a key/value attribute, returning the span for
// chaining. No-op on a nil span or after End.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]any)
		}
		s.attrs[key] = value
	}
	s.mu.Unlock()
	return s
}

// AddCompleted attaches an already-finished child span of the given
// duration. Children are laid out sequentially after any previous
// AddCompleted child of s — the caller supplies only durations, so layers
// that must not read wall clocks themselves (the deterministic core) can
// still report timed sub-structure. Returns the child so grandchildren
// (e.g. per-phase spans under a machine region) can hang off it.
func (s *Span) AddCompleted(name string, dur time.Duration, attrs map[string]any) *Span {
	if s == nil {
		return nil
	}
	durUS := dur.Microseconds()
	s.mu.Lock()
	startUS := s.startUS + s.cursorUS
	s.cursorUS += durUS
	s.mu.Unlock()
	child := &Span{t: s.t, id: s.t.spanID(), parent: s.id, name: name, startUS: startUS}
	var copied map[string]any
	if len(attrs) > 0 {
		copied = make(map[string]any, len(attrs))
		for k, v := range attrs {
			copied[k] = v
		}
	}
	s.t.append(SpanRecord{
		Trace:   s.t.id,
		Span:    child.id,
		Parent:  child.parent,
		Name:    name,
		StartUS: startUS,
		DurUS:   durUS,
		Attrs:   copied,
	})
	return child
}

// End finishes the span. Ending a root span seals the trace: its records
// move into the tracer's ring buffer and, if a sink is attached, are
// flushed as JSONL.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	durUS := int64(0)
	if !s.start.IsZero() {
		durUS = time.Since(s.start).Microseconds()
	}
	s.t.append(SpanRecord{
		Trace:   s.t.id,
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.startUS,
		DurUS:   durUS,
		Attrs:   attrs,
	})
	if s.parent == "" {
		s.t.finish()
	}
}

// finish seals a trace into the tracer's ring and sink, or discards it if
// the head sampler dropped it and nothing forced a keep.
func (t *trace) finish() {
	t.mu.Lock()
	records := t.records
	t.records = nil
	keep := t.keep || t.forced
	t.mu.Unlock()
	if len(records) == 0 {
		return
	}
	tr := t.tr
	tr.mu.Lock()
	if !keep {
		tr.sampledOut++
		tr.mu.Unlock()
		return
	}
	tr.ring = append(tr.ring, records)
	if len(tr.ring) > tr.cap {
		drop := len(tr.ring) - tr.cap
		tr.ring = append([][]SpanRecord(nil), tr.ring[drop:]...)
		tr.dropped += uint64(drop)
	}
	sink := tr.sink
	var buf []byte
	if sink != nil {
		for _, rec := range records {
			line, err := json.Marshal(rec)
			if err != nil {
				continue
			}
			buf = append(buf, line...)
			buf = append(buf, '\n')
		}
		// Written under mu so concurrent traces never interleave lines.
		_, _ = sink.Write(buf)
	}
	tr.mu.Unlock()
}

// SampledOut reports how many finished traces the head sampler discarded
// (distinct from Dropped, which counts ring evictions of kept traces).
func (tr *Tracer) SampledOut() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.sampledOut
}

// Dropped reports how many finished traces the ring has evicted.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// Traces returns the buffered traces, oldest first.
func (tr *Tracer) Traces() [][]SpanRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([][]SpanRecord, len(tr.ring))
	copy(out, tr.ring)
	return out
}

// WriteJSONL writes every buffered trace to w, one span record per line,
// oldest trace first.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	for _, records := range tr.Traces() {
		for _, rec := range records {
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the buffered traces as JSONL (the GET /debug/traces
// endpoint).
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = tr.WriteJSONL(w)
	})
}
