package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerAndNilSpanAreInert(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.Start(context.Background(), "req")
	if root != nil {
		t.Fatal("nil tracer Start returned a live span")
	}
	ctx2, child := StartSpan(ctx, "inner")
	if child != nil {
		t.Fatal("StartSpan without an active span returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without an active span replaced the context")
	}
	// All span methods must no-op on nil.
	child.SetAttr("k", 1)
	if got := child.AddCompleted("post", time.Millisecond, nil); got != nil {
		t.Fatal("nil span AddCompleted returned a live span")
	}
	child.End()
	root.End()
	tr.SetSink(nil)
	if tr.Traces() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer has state")
	}
}

func TestTraceTreeAndRecords(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Start(context.Background(), "http.mutate")
	root.SetAttr("route", "mutate")
	_, child := StartSpan(ctx, "dynamic.apply")
	child.SetAttr("strategy", "incremental")
	region := child.AddCompleted("machine.region", 3*time.Millisecond, map[string]any{"plan": "fused"})
	region.AddCompleted("phase.patch", 1*time.Millisecond, map[string]any{"flops": 10.0})
	region.AddCompleted("phase.sweep", 2*time.Millisecond, map[string]any{"flops": 90.0})
	child.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	recs := traces[0]
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if len(byName) != 5 {
		t.Fatalf("got %d distinct spans, want 5: %+v", len(byName), recs)
	}
	httpRec, applyRec := byName["http.mutate"], byName["dynamic.apply"]
	regionRec := byName["machine.region"]
	patchRec, sweepRec := byName["phase.patch"], byName["phase.sweep"]

	if httpRec.Parent != "" {
		t.Errorf("root has parent %q", httpRec.Parent)
	}
	if applyRec.Parent != httpRec.Span {
		t.Errorf("apply parent = %q, want %q", applyRec.Parent, httpRec.Span)
	}
	if regionRec.Parent != applyRec.Span {
		t.Errorf("region parent = %q, want %q", regionRec.Parent, applyRec.Span)
	}
	if patchRec.Parent != regionRec.Span || sweepRec.Parent != regionRec.Span {
		t.Errorf("phase parents = %q/%q, want %q", patchRec.Parent, sweepRec.Parent, regionRec.Span)
	}
	// AddCompleted children lay out sequentially inside their parent.
	if regionRec.DurUS != 3000 || patchRec.DurUS != 1000 || sweepRec.DurUS != 2000 {
		t.Errorf("durations = %d/%d/%d", regionRec.DurUS, patchRec.DurUS, sweepRec.DurUS)
	}
	if patchRec.StartUS != regionRec.StartUS {
		t.Errorf("first phase start %d != region start %d", patchRec.StartUS, regionRec.StartUS)
	}
	if sweepRec.StartUS != patchRec.StartUS+patchRec.DurUS {
		t.Errorf("second phase start %d, want %d", sweepRec.StartUS, patchRec.StartUS+patchRec.DurUS)
	}
	if got := regionRec.Attrs["plan"]; got != "fused" {
		t.Errorf("region plan attr = %v", got)
	}
	if got := httpRec.Attrs["route"]; got != "mutate" {
		t.Errorf("root route attr = %v", got)
	}
}

func TestTracerRingBoundAndSink(t *testing.T) {
	tr := NewTracer(2)
	var sink strings.Builder
	tr.SetSink(&sink)
	for i := 0; i < 5; i++ {
		_, root := tr.Start(context.Background(), "req")
		root.End()
	}
	if got := len(tr.Traces()); got != 2 {
		t.Fatalf("ring holds %d traces, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// The sink saw every trace, not just the retained ones.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("sink got %d lines, want 5:\n%s", len(lines), sink.String())
	}
	for _, line := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("sink line is not valid JSON: %v\n%s", err, line)
		}
		if rec.Name != "req" || rec.Trace == "" || rec.Span == "" {
			t.Fatalf("bad record: %+v", rec)
		}
	}

	var out strings.Builder
	if err := tr.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != 2 {
		t.Fatalf("WriteJSONL wrote %d lines, want 2", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	_, root := tr.Start(context.Background(), "req")
	root.End()
	root.End()
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("double End produced %d traces, want 1", got)
	}
	if got := len(tr.Traces()[0]); got != 1 {
		t.Fatalf("double End produced %d records, want 1", got)
	}
}

func TestConcurrentTraces(t *testing.T) {
	tr := NewTracer(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				ctx, root := tr.Start(context.Background(), "req")
				_, child := StartSpan(ctx, "inner")
				child.AddCompleted("leaf", time.Microsecond, nil)
				child.End()
				root.End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(tr.Traces()); got != 64 {
		t.Fatalf("ring holds %d traces, want 64", got)
	}
	if got := tr.Dropped(); got != 8*50-64 {
		t.Fatalf("dropped = %d, want %d", got, 8*50-64)
	}
}
