package obs

import (
	"context"
	"strings"
	"testing"
)

// TestHeadSamplerRateZeroAndForceKeep: at rate 0 every trace is sampled
// out unless something forces a keep.
func TestHeadSamplerRateZeroAndForceKeep(t *testing.T) {
	tr := NewTracer(64)
	tr.SetSampleRate(0)
	for i := 0; i < 10; i++ {
		_, root := tr.Start(context.Background(), "req")
		if root.Kept() {
			t.Fatal("rate-0 trace reports Kept before ForceKeep")
		}
		root.End()
	}
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("rate 0 retained %d traces, want 0", got)
	}
	if got := tr.SampledOut(); got != 10 {
		t.Fatalf("sampled out = %d, want 10", got)
	}

	_, root := tr.Start(context.Background(), "err")
	root.ForceKeep()
	if !root.Kept() {
		t.Fatal("ForceKeep did not mark the trace kept")
	}
	root.End()
	traces := tr.Traces()
	if len(traces) != 1 || traces[0][0].Name != "err" {
		t.Fatalf("force-kept trace missing from ring: %+v", traces)
	}
	if got := tr.SampledOut(); got != 10 {
		t.Fatalf("sampled out after force-keep = %d, want still 10", got)
	}
}

// TestHeadSamplerRateOneKeepsAll: the default rate keeps every trace and
// discards none.
func TestHeadSamplerRateOneKeepsAll(t *testing.T) {
	tr := NewTracer(64)
	for i := 0; i < 10; i++ {
		_, root := tr.Start(context.Background(), "req")
		if !root.Kept() {
			t.Fatal("default-rate trace not kept")
		}
		root.End()
	}
	if got := len(tr.Traces()); got != 10 {
		t.Fatalf("retained %d traces, want 10", got)
	}
	if got := tr.SampledOut(); got != 0 {
		t.Fatalf("sampled out = %d, want 0", got)
	}
}

// TestHeadSamplerFractionalRate: a fractional rate keeps a strict,
// deterministic subset — kept + sampled-out covers every trace, and the
// kept fraction lands in a loose band around the rate.
func TestHeadSamplerFractionalRate(t *testing.T) {
	const n = 400
	tr := NewTracer(n)
	tr.SetSampleRate(0.5)
	for i := 0; i < n; i++ {
		_, root := tr.Start(context.Background(), "req")
		root.End()
	}
	kept := len(tr.Traces())
	if kept+int(tr.SampledOut()) != n {
		t.Fatalf("kept %d + sampled out %d != %d", kept, tr.SampledOut(), n)
	}
	// The FNV-hash decision sequence is fixed, so this band never flakes;
	// it only breaks if the sampler itself changes.
	if kept < n/4 || kept > 3*n/4 {
		t.Fatalf("rate 0.5 kept %d of %d, outside [%d, %d]", kept, n, n/4, 3*n/4)
	}
}

// TestSampleKeepDeterministicAndMonotone: the per-ID decision is a pure
// function of (id, rate) and monotone in the rate, so raising -trace-sample
// only ever adds traces.
func TestSampleKeepDeterministicAndMonotone(t *testing.T) {
	ids := []string{"t000001", "t000002", "t000003", "t9", "x"}
	rates := []float64{0.1, 0.3, 0.5, 0.9}
	for _, id := range ids {
		if sampleKeep(id, 1) != true {
			t.Errorf("sampleKeep(%q, 1) = false", id)
		}
		if sampleKeep(id, 0) != false {
			t.Errorf("sampleKeep(%q, 0) = true", id)
		}
		prev := false
		for _, r := range rates {
			got := sampleKeep(id, r)
			if got != sampleKeep(id, r) {
				t.Errorf("sampleKeep(%q, %v) not deterministic", id, r)
			}
			if prev && !got {
				t.Errorf("sampleKeep(%q) not monotone: kept at lower rate, dropped at %v", id, r)
			}
			prev = got
		}
	}
}

// TestHistogramExemplar: ObserveExemplar pins the latest trace/span pair
// to the owning bucket and renders it after the bucket line; plain
// Observe and empty-ID calls leave lines untouched.
func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "help.", []float64{1, 2})
	h.Observe(0.5)
	if text := reg.Text(); strings.Contains(text, " # {") {
		t.Fatalf("plain Observe produced an exemplar:\n%s", text)
	}

	h.ObserveExemplar(1.5, "t000001", "s01")
	text := reg.Text()
	want := `lat_bucket{le="2"} 2 # {span_id="s01",trace_id="t000001"} 1.5`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing %q:\n%s", want, text)
	}

	// Latest observation in a bucket replaces the exemplar.
	h.ObserveExemplar(1.7, "t000002", "s02")
	text = reg.Text()
	if strings.Contains(text, "t000001") {
		t.Fatalf("stale exemplar survived:\n%s", text)
	}
	want = `lat_bucket{le="2"} 3 # {span_id="s02",trace_id="t000002"} 1.7`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing %q:\n%s", want, text)
	}

	// Empty trace ID counts the observation without attaching an exemplar.
	h.ObserveExemplar(0.2, "", "")
	text = reg.Text()
	if !strings.Contains(text, `lat_bucket{le="1"} 2`+"\n") {
		t.Fatalf("empty-ID ObserveExemplar did not count:\n%s", text)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}

	// Exemplars never perturb the non-exemplar series bytes.
	if !strings.Contains(text, "lat_sum ") || !strings.Contains(text, "lat_count 4") {
		t.Fatalf("sum/count lines damaged:\n%s", text)
	}
}
