package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", got)
	}
}

func TestRangesCoverAndOrder(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {3, 1}, {10, 0}, {2, 16},
	} {
		rs := Ranges(tc.n, tc.parts)
		next := 0
		for _, r := range rs {
			if r[0] != next {
				t.Fatalf("Ranges(%d,%d): gap at %d (got lo=%d)", tc.n, tc.parts, next, r[0])
			}
			if r[1] <= r[0] {
				t.Fatalf("Ranges(%d,%d): empty range %v", tc.n, tc.parts, r)
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("Ranges(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.parts, next, tc.n)
		}
		if tc.parts >= 1 && len(rs) > tc.parts {
			t.Fatalf("Ranges(%d,%d): %d parts, want <= %d", tc.n, tc.parts, len(rs), tc.parts)
		}
	}
}

func TestRangesBalanced(t *testing.T) {
	rs := Ranges(10, 4) // 3,3,2,2
	sizes := []int{}
	for _, r := range rs {
		sizes = append(sizes, r[1]-r[0])
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("Ranges(10,4) sizes = %v, want %v", sizes, want)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 3, 8, 64} {
		hits := make([]int32, n)
		For(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForZero(t *testing.T) {
	called := false
	For(4, 0, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("For with n=0 invoked fn")
	}
}

func TestPoolForMatchesSerial(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 5000
	sum := make([]int64, 4)
	for round := 0; round < 50; round++ { // many small sections reuse workers
		p.For(n, func(part, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			atomic.AddInt64(&sum[part], s)
		})
	}
	var total int64
	for _, s := range sum {
		total += s
	}
	if want := int64(50) * n * (n - 1) / 2; total != want {
		t.Fatalf("pool sum = %d, want %d", total, want)
	}
}

func TestPoolSingleWorkerInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ran := 0
	p.For(10, func(part, lo, hi int) { ran++ })
	if ran != 1 {
		t.Fatalf("1-worker pool split into %d parts, want 1", ran)
	}
}
