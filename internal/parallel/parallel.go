// Package parallel provides the shared-memory execution primitives used to
// parallelize local kernels across cores: deterministic contiguous range
// partitioning, a fork-join For loop, and a reusable worker pool.
//
// The distributed layer (internal/machine) simulates the p ranks of the
// paper's machine as goroutines; this package parallelizes the *local*
// compute each rank performs between collectives (the Gustavson SpGEMM,
// entry sorts, and sorted merges), so batched multi-source MFBC can use
// every core of the host. All partitioners are deterministic, and every
// parallel kernel built on them is required to produce output identical to
// its sequential counterpart.
package parallel

import (
	"runtime"
	"sync"
)

// Resolve returns the effective worker count for a user-supplied knob:
// n <= 0 selects GOMAXPROCS (all cores), anything else is returned as-is.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Ranges partitions [0, n) into at most parts contiguous ranges, the first
// n%parts one element larger — the same convention as distmat.PartBounds,
// so row blocks computed here line up with the distribution layer. Empty
// ranges are omitted; the result is nil when n == 0.
func Ranges(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if n <= 0 {
		return nil
	}
	out := make([][2]int, 0, parts)
	q, r := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + q
		if i < r {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// For splits [0, n) into up to workers contiguous ranges and runs
// fn(part, lo, hi) for each concurrently, returning when all are done.
// With workers <= 1 (or a single range) fn runs inline on the caller's
// goroutine. part is the dense index of the range (0-based), usable to
// index per-worker output slots without synchronization.
func For(workers, n int, fn func(part, lo, hi int)) {
	rs := Ranges(n, workers)
	if len(rs) == 0 {
		return
	}
	if len(rs) == 1 {
		fn(0, rs[0][0], rs[0][1])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(rs) - 1)
	for i := 1; i < len(rs); i++ {
		go func(part int) {
			defer wg.Done()
			fn(part, rs[part][0], rs[part][1])
		}(i)
	}
	fn(0, rs[0][0], rs[0][1]) // caller participates as worker 0
	wg.Wait()
}

// Pool is a reusable fixed-size worker pool for callers that issue many
// small parallel sections from one long-lived owner and want goroutine
// startup amortized. The kernels in this repository use the fork-join For
// above instead: their sections are large enough that spawn cost is noise,
// and For leaves no goroutines behind — a Pool's workers live until Close,
// which per-multiply code paths have no good place to call. A Pool is safe
// for use by a single submitting goroutine at a time.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup // outstanding tasks of the current section
	once    sync.Once
}

// NewPool creates a pool with Resolve(workers) workers. The worker
// goroutines are started lazily on first use, so constructing a pool that
// ends up unused (workers == 1 paths) costs nothing.
func NewPool(workers int) *Pool {
	return &Pool{workers: Resolve(workers)}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) start() {
	p.once.Do(func() {
		p.tasks = make(chan func(), p.workers)
		for i := 0; i < p.workers; i++ {
			go func() {
				for fn := range p.tasks {
					fn()
					p.wg.Done()
				}
			}()
		}
	})
}

// For runs fn(part, lo, hi) over the partition of [0, n) into up to
// p.Workers() contiguous ranges, blocking until all parts finish. With one
// worker it runs inline.
func (p *Pool) For(n int, fn func(part, lo, hi int)) {
	rs := Ranges(n, p.workers)
	if len(rs) == 0 {
		return
	}
	if len(rs) == 1 || p.workers <= 1 {
		for i, r := range rs {
			fn(i, r[0], r[1])
		}
		return
	}
	p.start()
	p.wg.Add(len(rs))
	for i := range rs {
		part := i
		p.tasks <- func() { fn(part, rs[part][0], rs[part][1]) }
	}
	p.wg.Wait()
}

// Close shuts down the worker goroutines. The pool must be idle. A pool
// that was never exercised (or already closed) is a no-op.
func (p *Pool) Close() {
	if p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}
