package dynamic

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

func batch(n int) []graph.Mutation {
	muts := make([]graph.Mutation, n)
	for i := range muts {
		muts[i] = graph.Mutation{Op: graph.OpAddVertex}
	}
	return muts
}

func TestQueueDrainHandoff(t *testing.T) {
	q := NewQueue[int](0)
	now := time.Now()

	p1, depth, start, err := q.Enqueue(batch(1), now)
	if err != nil || depth != 1 || !start {
		t.Fatalf("first enqueue: depth=%d start=%v err=%v, want 1 true nil", depth, start, err)
	}
	_, depth, start, err = q.Enqueue(batch(2), now)
	if err != nil || depth != 2 || start {
		t.Fatalf("second enqueue: depth=%d start=%v err=%v, want 2 false nil (drainer already elected)", depth, start, err)
	}

	group, ok := q.Drain()
	if !ok || len(group) != 2 || group[0] != p1 {
		t.Fatalf("drain: ok=%v len=%d, want whole backlog in order", ok, len(group))
	}
	if q.Depth() != 0 {
		t.Fatalf("depth after drain = %d, want 0", q.Depth())
	}

	// The drainer still holds duty: enqueues while it works must not
	// elect a second drainer.
	_, _, start, _ = q.Enqueue(batch(1), now)
	if start {
		t.Fatal("enqueue while drainer active elected a second drainer")
	}
	if group, ok = q.Drain(); !ok || len(group) != 1 {
		t.Fatalf("second drain: ok=%v len=%d, want the late batch", ok, len(group))
	}

	// Empty drain releases duty; the next enqueue elects afresh.
	if _, ok = q.Drain(); ok {
		t.Fatal("drain on empty queue reported work")
	}
	if _, _, start, _ = q.Enqueue(batch(1), now); !start {
		t.Fatal("enqueue after duty release did not elect a drainer")
	}
}

func TestQueueBackpressureAndClose(t *testing.T) {
	q := NewQueue[int](2)
	now := time.Now()
	q.Enqueue(batch(1), now)
	q.Enqueue(batch(1), now)
	if _, depth, _, err := q.Enqueue(batch(1), now); !errors.Is(err, ErrQueueFull) || depth != 2 {
		t.Fatalf("over-depth enqueue: depth=%d err=%v, want 2 ErrQueueFull", depth, err)
	}

	orphans := q.Close()
	if len(orphans) != 2 {
		t.Fatalf("close returned %d orphans, want 2", len(orphans))
	}
	if _, _, _, err := q.Enqueue(batch(1), now); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("enqueue after close: %v, want ErrQueueClosed", err)
	}
	if _, ok := q.Drain(); ok {
		t.Fatal("drain after close reported work")
	}
	if len(q.Close()) != 0 {
		t.Fatal("second close returned orphans")
	}
}

func TestPendingWaitAndResolve(t *testing.T) {
	q := NewQueue[int](0)
	p, _, _, err := q.Enqueue(batch(1), time.Now())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, werr := p.Wait(context.Background())
		if res != 42 || werr != nil {
			t.Errorf("Wait = (%d, %v), want (42, nil)", res, werr)
		}
	}()
	p.Resolve(42, nil)
	wg.Wait()

	// A canceled wait abandons only the waiter; the resolution sticks.
	p2, _, _, _ := q.Enqueue(batch(1), time.Now())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, werr := p2.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("canceled Wait = %v, want context.Canceled", werr)
	}
	wantErr := errors.New("boom")
	p2.Resolve(0, wantErr)
	if _, werr := p2.Wait(context.Background()); !errors.Is(werr, wantErr) {
		t.Fatalf("post-resolve Wait = %v, want boom", werr)
	}
}

func TestCoalesceAlgebra(t *testing.T) {
	cases := []struct {
		name string
		in   []graph.Mutation
		want []graph.Mutation
	}{
		{
			name: "add then remove cancels",
			in: []graph.Mutation{
				{Op: graph.OpAddEdge, U: 0, V: 1, W: 2},
				{Op: graph.OpRemoveEdge, U: 0, V: 1},
			},
			want: nil,
		},
		{
			name: "chained sets keep last",
			in: []graph.Mutation{
				{Op: graph.OpSetWeight, U: 0, V: 1, W: 2},
				{Op: graph.OpSetWeight, U: 0, V: 1, W: 3},
				{Op: graph.OpSetWeight, U: 0, V: 1, W: 5},
			},
			want: []graph.Mutation{{Op: graph.OpSetWeight, U: 0, V: 1, W: 5}},
		},
		{
			name: "remove then add becomes set_weight",
			in: []graph.Mutation{
				{Op: graph.OpRemoveEdge, U: 0, V: 1},
				{Op: graph.OpAddEdge, U: 0, V: 1, W: 4},
			},
			want: []graph.Mutation{{Op: graph.OpSetWeight, U: 0, V: 1, W: 4}},
		},
		{
			name: "sentinel re-add restores weight 1",
			in: []graph.Mutation{
				{Op: graph.OpRemoveEdge, U: 0, V: 1},
				{Op: graph.OpAddEdge, U: 0, V: 1, W: 0},
			},
			want: []graph.Mutation{{Op: graph.OpSetWeight, U: 0, V: 1, W: 1}},
		},
	}
	for _, tc := range cases {
		got := Coalesce(false, tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] { //lint:allow floateq exact literals round-trip through compaction
				t.Fatalf("%s: op %d = %+v, want %+v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}
