// Package dynamic maintains betweenness-centrality scores over an evolving
// graph: the streaming subsystem on top of the static MFBC machinery.
//
// The Engine owns an immutable (graph, scores) snapshot that atomically
// swaps on every applied mutation batch, so concurrent readers always see
// a consistent version — never a torn state. Per batch it chooses among
// three strategies:
//
//   - incremental: identify the sources whose shortest-path DAGs the batch
//     can touch (see affectedSources) and re-run only those pivots through
//     core's batched MFBC sweeps, subtracting their old contributions and
//     adding the new ones. This is the Kourtellis-style speedup: cost
//     scales with |affected|/n instead of 1.
//   - full: recompute from scratch when the affected fraction exceeds the
//     configured dirtiness threshold (incremental bookkeeping would cost
//     more than it saves), or when the previous snapshot holds estimates.
//   - sampled: with a sample budget configured, estimate the new scores
//     from a seeded random subset of sources (the Bader et al. estimator
//     repro.ApproximateBC uses), taking an exact full refresh every
//     RefreshEvery batches.
//
// Affected-source detection is conservative-exact: a source s is re-run
// iff some edge of the effective batch diff lies on a shortest path from s
// in the pre-batch or post-batch graph. If no old or new shortest path
// from s uses a mutated edge, every old shortest path survives with its
// length and no shorter or additional path can have appeared, so δ(s,·)
// is unchanged and skipping s is exact. Membership is decided from
// distances to the mutated endpoints (one multi-source reverse SSSP per
// side), with an epsilon-tolerant equality so float path sums can only
// over-include, never under-include.
package dynamic

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// Config parameterizes an Engine.
type Config struct {
	// Batch is the number of sources per MFBC sweep (core.Options.Batch).
	Batch int
	// Workers is the shared-memory parallelism of the local kernels.
	Workers int
	// DirtyThreshold is the affected-source fraction above which an exact
	// apply falls back to full recomputation. 0 selects the default 0.25;
	// negative disables the fallback (always incremental); values ≥ 1
	// effectively disable it too.
	DirtyThreshold float64
	// SampleBudget > 0 switches applies to sampled estimation with this
	// many source samples (cost ≈ SampleBudget/n of exact). Budgets ≥ n
	// degenerate to exact recomputation.
	SampleBudget int
	// RefreshEvery is the cadence of exact refreshes in sampled mode: every
	// RefreshEvery-th apply recomputes exactly. ≤ 0 selects the default 8.
	RefreshEvery int
	// Seed drives the sampled-mode source selection.
	Seed int64
}

const (
	defaultDirtyThreshold = 0.25
	defaultRefreshEvery   = 8
	// logCompactAt bounds the mutation log: past this many entries the
	// engine compacts it to the replay-equivalent minimal form.
	logCompactAt = 4096
)

// Strategy names how one apply produced its scores.
type Strategy string

const (
	StrategyIncremental Strategy = "incremental"
	StrategyFull        Strategy = "full"
	StrategySampled     Strategy = "sampled"
)

// state is one immutable (graph, scores) snapshot. Installed whole under
// the engine lock; never written after installation.
type state struct {
	g       *graph.Graph
	bc      []float64
	version uint64 // graph.Fingerprint(g)
	seq     uint64 // applies since engine creation
	sampled bool   // bc holds sampled estimates, not exact scores
}

// Stats is a snapshot of cumulative engine counters.
type Stats struct {
	Applies          int64 `json:"applies"`
	MutationsApplied int64 `json:"mutations_applied"`
	IncrementalRuns  int64 `json:"incremental_runs"`
	FullRecomputes   int64 `json:"full_recomputes"`
	SampledEstimates int64 `json:"sampled_estimates"`
	AffectedSources  int64 `json:"affected_sources"` // cumulative, exact applies only
	LastAffected     int   `json:"last_affected"`
	LogLen           int   `json:"log_len"`
}

// Report describes one applied batch.
type Report struct {
	Seq      uint64        `json:"seq"`     // snapshot sequence number after the apply
	Version  uint64        `json:"version"` // structural fingerprint after the apply
	Applied  int           `json:"applied"` // mutations in the batch
	Affected int           `json:"affected_sources"`
	Strategy Strategy      `json:"strategy"`
	Sampled  bool          `json:"sampled"` // scores are estimates after this apply
	N        int           `json:"n"`
	M        int           `json:"m"`
	Wall     time.Duration `json:"-"`
}

// Snapshot is a consistent read of the engine state. Graph is the live
// immutable snapshot — callers must not mutate it; BC is a private copy.
type Snapshot struct {
	Graph   *graph.Graph
	BC      []float64
	Version uint64
	Seq     uint64
	Sampled bool
}

// Engine maintains BC scores over an evolving graph. All methods are safe
// for concurrent use; Apply calls serialize with each other while readers
// proceed against the latest installed snapshot.
type Engine struct {
	cfg Config

	applyMu sync.Mutex // serializes Apply; held across the whole compute
	mu      sync.RWMutex
	cur     *state
	log     graph.MutationLog
	stats   Stats
}

// New creates an engine over g, computing the initial exact scores. The
// engine clones g, so the caller's graph stays independent.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("dynamic: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	if cfg.DirtyThreshold == 0 {
		cfg.DirtyThreshold = defaultDirtyThreshold
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = defaultRefreshEvery
	}
	own := g.Clone()
	r, err := core.MFBC(own, core.Options{Batch: cfg.Batch, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg: cfg,
		cur: &state{g: own, bc: r.BC, version: graph.Fingerprint(own)},
	}, nil
}

// Snapshot returns the current consistent (graph, scores, version) view.
func (e *Engine) Snapshot() Snapshot {
	e.mu.RLock()
	st := e.cur
	e.mu.RUnlock()
	return Snapshot{
		Graph:   st.g,
		BC:      append([]float64(nil), st.bc...),
		Version: st.version,
		Seq:     st.seq,
		Sampled: st.sampled,
	}
}

// Stats returns cumulative engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := e.stats
	st.LogLen = e.log.Len()
	return st
}

// Log returns a copy of the mutation log (possibly compacted).
func (e *Engine) Log() []graph.Mutation {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.log.Mutations()
}

// CompactLog rewrites the mutation log to its replay-equivalent minimal
// form immediately (the engine also does this automatically past an
// internal bound).
func (e *Engine) CompactLog() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log.Compact(e.cur.g.Directed)
}

// Apply atomically applies one mutation batch and refreshes the maintained
// scores. On error the engine state is unchanged (batches are applied to a
// private clone first). Readers concurrent with Apply see either the old
// or the new snapshot, never a mix.
func (e *Engine) Apply(batch []graph.Mutation) (Report, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()

	e.mu.RLock()
	old := e.cur
	e.mu.RUnlock()

	start := time.Now()
	newG := old.g.Clone()
	if _, err := newG.ApplyAll(batch); err != nil {
		return Report{}, fmt.Errorf("dynamic: %w", err)
	}
	seq := old.seq + 1

	var (
		bc       []float64
		strategy Strategy
		affected []int32
		sampled  bool
		err      error
	)
	full := func() error {
		r, ferr := core.MFBC(newG, core.Options{Batch: e.cfg.Batch, Workers: e.cfg.Workers})
		if ferr != nil {
			return ferr
		}
		bc, strategy = r.BC, StrategyFull
		return nil
	}
	switch {
	case e.cfg.SampleBudget > 0 && e.cfg.SampleBudget < newG.N && seq%uint64(e.cfg.RefreshEvery) != 0:
		bc = e.sampledScores(newG, seq)
		strategy, sampled = StrategySampled, true
	case old.sampled:
		// Incremental deltas need an exact base; with only estimates to
		// start from, affected-source detection would be wasted work.
		if err := full(); err != nil {
			return Report{}, err
		}
	default:
		affected, err = affectedSources(old.g, newG, batch)
		if err != nil {
			return Report{}, err
		}
		frac := 0.0
		if newG.N > 0 {
			frac = float64(len(affected)) / float64(newG.N)
		}
		if e.cfg.DirtyThreshold > 0 && frac > e.cfg.DirtyThreshold {
			if err := full(); err != nil {
				return Report{}, err
			}
		} else {
			bc = e.incrementalScores(old, newG, affected)
			strategy = StrategyIncremental
		}
	}

	st := &state{
		g:       newG,
		bc:      bc,
		version: graph.Fingerprint(newG),
		seq:     seq,
		sampled: sampled,
	}
	rep := Report{
		Seq: seq, Version: st.version, Applied: len(batch),
		Affected: len(affected), Strategy: strategy, Sampled: sampled,
		N: newG.N, M: newG.M(), Wall: time.Since(start),
	}

	e.mu.Lock()
	e.cur = st
	e.log.Append(batch...)
	if e.log.Len() > logCompactAt {
		e.log.Compact(st.g.Directed)
	}
	e.stats.Applies++
	e.stats.MutationsApplied += int64(len(batch))
	switch strategy {
	case StrategyIncremental:
		e.stats.IncrementalRuns++
	case StrategyFull:
		e.stats.FullRecomputes++
	case StrategySampled:
		e.stats.SampledEstimates++
	}
	if strategy != StrategySampled {
		e.stats.AffectedSources += int64(len(affected))
		e.stats.LastAffected = len(affected)
	}
	e.mu.Unlock()
	return rep, nil
}

// incrementalScores merges the batch's delta into the maintained vector:
// bc_new = bc_old − Σ_{s∈affected} δ_old(s,·) + Σ_{s∈affected} δ_new(s,·),
// each side computed with the ordinary batched MFBC sweeps restricted to
// the affected pivots.
func (e *Engine) incrementalScores(old *state, newG *graph.Graph, affected []int32) []float64 {
	bc := make([]float64, newG.N)
	copy(bc, old.bc)
	if len(affected) == 0 {
		return bc
	}

	oldN := old.g.N
	oldAff := affected
	if n := len(affected); n > 0 && int(affected[n-1]) >= oldN {
		// Sources added by this batch have no contribution to subtract.
		oldAff = oldAff[:0]
		for _, s := range affected {
			if int(s) < oldN {
				oldAff = append(oldAff, s)
			}
		}
	}
	if len(oldAff) > 0 {
		delta := e.pivotScores(old.g, oldAff)
		for v := 0; v < oldN; v++ {
			bc[v] -= delta[v]
		}
	}
	delta := e.pivotScores(newG, affected)
	for v := range bc {
		bc[v] += delta[v]
		// Subtracting recomputed old contributions from the running vector
		// can leave −1e-12-scale residue at mathematically zero scores; large
		// negatives would mean a bookkeeping bug and are left visible.
		if bc[v] < 0 && bc[v] > -1e-6 {
			bc[v] = 0
		}
	}
	return bc
}

// pivotScores runs batched MFBC sweeps for exactly the given sources and
// returns their accumulated dependency contributions.
func (e *Engine) pivotScores(g *graph.Graph, sources []int32) []float64 {
	a := g.Adjacency()
	at := sparse.Transpose(a)
	bc := make([]float64, g.N)
	nb := e.cfg.Batch
	if nb <= 0 {
		nb = 128
	}
	for lo := 0; lo < len(sources); lo += nb {
		hi := lo + nb
		if hi > len(sources) {
			hi = len(sources)
		}
		core.MFBCBatchParallel(a, at, sources[lo:hi], bc, e.cfg.Workers)
	}
	return bc
}

// sampledScores estimates BC from a seeded random subset of sources scaled
// by n/samples, exactly like repro.ApproximateBC's estimator.
func (e *Engine) sampledScores(g *graph.Graph, seq uint64) []float64 {
	n := g.N
	budget := e.cfg.SampleBudget
	rng := rand.New(rand.NewSource(e.cfg.Seed + int64(seq)*0x9e3779b9))
	perm := rng.Perm(n)
	sources := make([]int32, budget)
	for i := range sources {
		sources[i] = int32(perm[i])
	}
	bc := e.pivotScores(g, sources)
	scale := float64(n) / float64(budget)
	for v := range bc {
		bc[v] *= scale
	}
	return bc
}

// edgeDiff is one edge of the effective difference between the pre- and
// post-batch graphs.
type edgeDiff struct {
	u, v         int32
	wOld, wNew   float64
	inOld, inNew bool
}

// batchDiff reduces a mutation batch to the effective edge-level diff
// between oldG and newG: transient edges (added then removed within the
// batch) and no-op rewrites drop out; everything else reports its presence
// and weight on both sides.
func batchDiff(oldG, newG *graph.Graph, batch []graph.Mutation) []edgeDiff {
	seen := make(map[[2]int32]bool)
	var diffs []edgeDiff
	for _, m := range batch {
		if m.Op == graph.OpAddVertex {
			continue
		}
		u, v := m.U, m.V
		if !newG.Directed && u > v {
			u, v = v, u
		}
		k := [2]int32{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := edgeDiff{u: u, v: v}
		d.wOld, d.inOld = oldG.FindEdge(u, v)
		d.wNew, d.inNew = newG.FindEdge(u, v)
		if d.inOld == d.inNew && (!d.inOld || d.wOld == d.wNew) {
			continue // transient or no-op
		}
		diffs = append(diffs, d)
	}
	return diffs
}

// affectedSources returns, sorted ascending, every source vertex of newG
// whose dependency contributions can differ between oldG and newG: those
// with a mutated edge on some shortest path in either graph. The test is
// epsilon-tolerant, so floating-point path sums can only widen the set.
func affectedSources(oldG, newG *graph.Graph, batch []graph.Mutation) ([]int32, error) {
	diffs := batchDiff(oldG, newG, batch)
	if len(diffs) == 0 {
		return nil, nil
	}

	// d(s, e) for every source s and mutated endpoint e, on each side:
	// one multi-source SSSP from the endpoints on the reverse graph.
	oldEnds := endpointSet(diffs, func(d edgeDiff) bool { return d.inOld })
	newEnds := endpointSet(diffs, func(d edgeDiff) bool { return d.inNew })
	distOld, err := distancesTo(oldG, oldEnds)
	if err != nil {
		return nil, err
	}
	distNew, err := distancesTo(newG, newEnds)
	if err != nil {
		return nil, err
	}

	affected := make([]bool, newG.N)
	undirected := !newG.Directed
	for _, d := range diffs {
		if d.inOld {
			markOnShortestPath(affected, distOld[d.u], distOld[d.v], d.wOld, undirected)
		}
		if d.inNew {
			markOnShortestPath(affected, distNew[d.u], distNew[d.v], d.wNew, undirected)
		}
	}
	var out []int32
	for s, a := range affected {
		if a {
			out = append(out, int32(s))
		}
	}
	return out, nil
}

func endpointSet(diffs []edgeDiff, want func(edgeDiff) bool) []int32 {
	set := make(map[int32]bool)
	for _, d := range diffs {
		if want(d) {
			set[d.u] = true
			set[d.v] = true
		}
	}
	out := make([]int32, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	return out
}

// distancesTo returns dist[e][s] = d(s → e) for every endpoint e, via SSSP
// from the endpoints on the reverse graph (the graph itself when
// undirected).
func distancesTo(g *graph.Graph, endpoints []int32) (map[int32][]float64, error) {
	out := make(map[int32][]float64, len(endpoints))
	if len(endpoints) == 0 {
		return out, nil
	}
	rg := g
	if g.Directed {
		rg = &graph.Graph{Name: g.Name + "-rev", N: g.N, Directed: true, Weighted: g.Weighted}
		rg.Edges = make([]graph.Edge, len(g.Edges))
		for i, e := range g.Edges {
			rg.Edges[i] = graph.Edge{U: e.V, V: e.U, W: e.W}
		}
	}
	res, err := core.SSSP(rg, endpoints)
	if err != nil {
		return nil, fmt.Errorf("dynamic: endpoint SSSP: %w", err)
	}
	for i, e := range endpoints {
		out[e] = res.Dist[i]
	}
	return out, nil
}

// markOnShortestPath marks every source s for which edge (u→v, w) lies on
// a shortest path from s: d(s,u) + w == d(s,v), within a relative epsilon.
// Undirected edges are tested in both orientations.
func markOnShortestPath(affected []bool, distU, distV []float64, w float64, undirected bool) {
	n := len(distU)
	for s := 0; s < n && s < len(affected); s++ {
		du, dv := distU[s], distV[s]
		if onPath(du, dv, w) || (undirected && onPath(dv, du, w)) {
			affected[s] = true
		}
	}
}

func onPath(du, dv, w float64) bool {
	if math.IsInf(du, 1) || math.IsInf(dv, 1) {
		return false
	}
	sum := du + w
	tol := 1e-9 * (1 + math.Max(math.Abs(sum), math.Abs(dv)))
	return math.Abs(sum-dv) <= tol
}
