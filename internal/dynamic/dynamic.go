// Package dynamic maintains betweenness-centrality scores over an evolving
// graph: the streaming subsystem on top of the static MFBC machinery.
//
// The Engine owns an immutable (graph, scores) snapshot that atomically
// swaps on every applied mutation batch, so concurrent readers always see
// a consistent version — never a torn state. Per batch it chooses among
// three strategies:
//
//   - incremental: identify the sources whose shortest-path DAGs the batch
//     can touch (see affectedSources) and re-run only those pivots through
//     core's batched MFBC sweeps, subtracting their old contributions and
//     adding the new ones. This is the Kourtellis-style speedup: cost
//     scales with |affected|/n instead of 1.
//   - full: recompute from scratch when the affected fraction exceeds the
//     configured dirtiness threshold (incremental bookkeeping would cost
//     more than it saves), or when the previous snapshot holds estimates.
//   - sampled: with a sample budget configured, estimate the new scores
//     from a seeded random subset of sources (the Bader et al. estimator
//     repro.ApproximateBC uses), taking an exact full refresh every
//     RefreshEvery batches.
//
// With Config.Procs > 1 every exact sweep — the initial scores, the
// incremental pivot re-runs, and the full-recompute fallbacks — executes
// on the simulated distributed machine through a persistent
// core.DistSession: the stationary adjacency operands (A, Aᵀ) stay
// resident across applies and each batch's edge diff is delta-patched into
// the resident blocks instead of redistributing the whole matrix, so the
// once-per-run placement cost of Theorem 5.1 amortizes across the whole
// mutation stream. The modeled communication of each apply (critical-path
// words, messages, α–β–γ seconds, plan chosen) is reported per apply and
// accumulated into the snapshot.
//
// Affected-source detection is conservative-exact: a source s is re-run
// iff some edge of the effective batch diff lies on a shortest path from s
// in the pre-batch or post-batch graph. If no old or new shortest path
// from s uses a mutated edge, every old shortest path survives with its
// length and no shorter or additional path can have appeared, so δ(s,·)
// is unchanged and skipping s is exact. Membership is decided from
// distances to the mutated endpoints (one multi-source reverse SSSP per
// side, run on the snapshot's cached transpose), with an epsilon-tolerant
// equality so float path sums can only over-include, never under-include.
package dynamic

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

// Config parameterizes an Engine.
type Config struct {
	// Batch is the number of sources per MFBC sweep (core.Options.Batch).
	Batch int
	// Workers is the shared-memory parallelism of the local kernels.
	Workers int
	// DirtyThreshold is the affected-source fraction above which an exact
	// apply falls back to full recomputation. 0 selects the default 0.25;
	// negative disables the fallback (always incremental); values ≥ 1
	// effectively disable it too.
	DirtyThreshold float64
	// SampleBudget > 0 switches applies to sampled estimation with this
	// many source samples (cost ≈ SampleBudget/n of exact). Budgets ≥ n
	// degenerate to exact recomputation.
	SampleBudget int
	// RefreshEvery is the cadence of exact refreshes in sampled mode: every
	// RefreshEvery-th apply recomputes exactly. ≤ 0 selects the default 8.
	RefreshEvery int
	// Seed drives the sampled-mode source selection.
	Seed int64

	// Procs > 1 runs every exact sweep on the simulated distributed
	// machine (core.MFBCDistributed's path) through a persistent
	// operand-resident session; see the package comment. 0 or 1 keeps the
	// shared-memory path.
	Procs int
	// Plan forces one decomposition for every distributed multiplication;
	// nil searches automatically per operation.
	Plan *spgemm.Plan
	// Constraint restricts the automatic decomposition search (the 1D/2D/3D
	// ablations of the static path, now available to streaming workloads).
	Constraint spgemm.Constraint
	// Model overrides the machine's α–β–γ cost constants.
	Model *machine.CostModel
	// DistRebuild disables stationary-operand delta-patching: the session
	// rebuilds (and therefore fully redistributes) the adjacency operands
	// on every apply. Scores and plans are identical either way — the
	// differential tests pin that — but rebuilding pays the staging
	// communication again per apply; it exists as the ablation baseline.
	// It also forces the two-region incremental path (a rebuilt session
	// has no resident pre-batch operands to fuse against).
	DistRebuild bool
	// NoFuse keeps incremental distributed applies on the two-region path
	// (old-side region, host patch, new-side region) instead of the fused
	// single-region form: the ablation baseline the differential tests and
	// the streaming-dist benchmark compare the fused path against.
	NoFuse bool
	// CacheSets bounds each simulated rank's stationary-operand cache to
	// this many working sets per matrix, LRU-evicted across (plan, dims)
	// keys; ≤ 0 keeps the cache unbounded. Long streams whose automatic
	// plan search wanders across many decompositions stay bounded.
	CacheSets int

	// LogCompactAt bounds the mutation log: past this many entries the
	// engine compacts it (or, with LogTruncate, snapshots and truncates).
	// 0 selects the default 4096; negative disables automatic management.
	LogCompactAt int
	// LogTruncate switches the over-bound behavior from compaction to
	// snapshot+truncate: the current graph becomes the new replay base
	// (LogBase) and the log empties, so long-lived engines keep bounded
	// logs and full replayability from the recorded base.
	LogTruncate bool

	// Transport pins every machine region the engine runs (initial sweep,
	// incremental re-runs, full fallbacks, sampled estimates) to this
	// backend instead of an in-process simulated machine. Its Size must
	// equal Procs. Under a rank-per-process transport every process must
	// drive an identical engine with an identical op stream — the engine's
	// host-side decisions are deterministic functions of (initial graph,
	// Config, batch sequence), which is what makes that replication sound
	// (see internal/rankrun).
	Transport machine.Transport
}

const (
	defaultDirtyThreshold = 0.25
	defaultRefreshEvery   = 8
	// defaultLogCompactAt bounds the mutation log when Config.LogCompactAt
	// is zero.
	defaultLogCompactAt = 4096
)

// Strategy names how one apply produced its scores.
type Strategy string

const (
	StrategyIncremental Strategy = "incremental"
	StrategyFull        Strategy = "full"
	StrategySampled     Strategy = "sampled"
)

// CommStats aggregates the modeled communication of the simulated-machine
// runs behind one or more applies (zero-valued on shared-memory engines):
// critical-path words, messages, generalized flops, and α–β–γ seconds.
type CommStats struct {
	Runs     int64   `json:"runs"`
	Bytes    int64   `json:"bytes"`
	Msgs     int64   `json:"msgs"`
	Flops    int64   `json:"flops"`
	ModelSec float64 `json:"model_sec"`
	CommSec  float64 `json:"comm_sec"`
}

func (c *CommStats) add(o CommStats) {
	c.Runs += o.Runs
	c.Bytes += o.Bytes
	c.Msgs += o.Msgs
	c.Flops += o.Flops
	c.ModelSec += o.ModelSec
	c.CommSec += o.CommSec
}

func commOf(st machine.RunStats) CommStats {
	return CommStats{
		Runs: 1, Bytes: st.MaxCost.Bytes, Msgs: st.MaxCost.Msgs, Flops: st.MaxCost.Flops,
		ModelSec: st.ModelSec, CommSec: st.CommSec,
	}
}

// PhaseComm is one named region phase's share of an apply's modeled cost
// (machine.PhaseStats flattened for reports and JSON). For a fused apply
// the phases are diff/patch/sweep/reduce; a legacy multi-region apply
// merges the phases of its regions by name.
type PhaseComm struct {
	Name     string  `json:"name"`
	Bytes    int64   `json:"bytes"`
	Msgs     int64   `json:"msgs"`
	Flops    int64   `json:"flops"`
	ModelSec float64 `json:"model_sec"`
	// WallMS is the measured host wall-clock of the phase in milliseconds
	// (max over ranks, summed over merged regions) — the observability
	// counterpart of the modeled ModelSec.
	WallMS float64 `json:"wall_ms"`
}

// mergePhases folds a region's phase breakdown into the apply's, by name.
func mergePhases(acc []PhaseComm, phases []machine.PhaseStats) []PhaseComm {
	for _, ph := range phases {
		found := false
		for i := range acc {
			if acc[i].Name == ph.Name {
				acc[i].Bytes += ph.MaxCost.Bytes
				acc[i].Msgs += ph.MaxCost.Msgs
				acc[i].Flops += ph.MaxCost.Flops
				acc[i].ModelSec += ph.ModelSec
				acc[i].WallMS += float64(ph.Wall.Microseconds()) / 1e3
				found = true
				break
			}
		}
		if !found {
			acc = append(acc, PhaseComm{
				Name: ph.Name, Bytes: ph.MaxCost.Bytes, Msgs: ph.MaxCost.Msgs,
				Flops: ph.MaxCost.Flops, ModelSec: ph.ModelSec,
				WallMS: float64(ph.Wall.Microseconds()) / 1e3,
			})
		}
	}
	return acc
}

// state is one immutable (graph, scores) snapshot. Installed whole under
// the engine lock; never written after installation. The adjacency CSR and
// its transpose are built exactly once per snapshot and shared by the
// affected-source probes, the pivot re-runs, and the next apply's
// old-side bookkeeping.
type state struct {
	g        *graph.Graph
	a        *sparse.CSR[float64] // adjacency of g
	at       *sparse.CSR[float64] // transpose of a (reverse-graph adjacency)
	bc       []float64
	version  uint64 // graph.Fingerprint(g)
	seq      uint64 // applies since engine creation
	sampled  bool   // bc holds sampled estimates, not exact scores
	errBound float64
	plan     string // representative plan of the latest distributed run
	comm     CommStats
	phases   []PhaseComm // per-phase breakdown of the latest apply's regions
}

func newState(g *graph.Graph, seq uint64) *state {
	a := g.Adjacency()
	return &state{
		g: g, a: a, at: sparse.Transpose(a),
		version: graph.Fingerprint(g), seq: seq,
	}
}

// Stats is a snapshot of cumulative engine counters.
type Stats struct {
	Applies          int64     `json:"applies"`
	MutationsApplied int64     `json:"mutations_applied"`
	IncrementalRuns  int64     `json:"incremental_runs"`
	FullRecomputes   int64     `json:"full_recomputes"`
	SampledEstimates int64     `json:"sampled_estimates"`
	AffectedSources  int64     `json:"affected_sources"` // cumulative, exact applies only
	LastAffected     int       `json:"last_affected"`
	LogLen           int       `json:"log_len"`
	LogTruncations   int64     `json:"log_truncations"`
	LogBaseVersion   uint64    `json:"log_base_version"`
	Comm             CommStats `json:"comm"` // cumulative modeled communication (distributed mode)
	LastPlan         string    `json:"last_plan,omitempty"`
	// FusedApplies counts incremental applies that ran as one fused
	// machine region; TwoRegionApplies counts those on the legacy path
	// (NoFuse, DistRebuild, or a vertex-set change).
	FusedApplies     int64 `json:"fused_applies"`
	TwoRegionApplies int64 `json:"two_region_applies"`
	// OperandEvictions is the cumulative stationary-working-set evictions
	// of the session's bounded per-rank operand caches (Config.CacheSets).
	OperandEvictions int64 `json:"operand_evictions"`
}

// Report describes one applied batch.
type Report struct {
	Seq      uint64   `json:"seq"`     // snapshot sequence number after the apply
	Version  uint64   `json:"version"` // structural fingerprint after the apply
	Applied  int      `json:"applied"` // mutations in the batch
	Affected int      `json:"affected_sources"`
	Strategy Strategy `json:"strategy"`
	Sampled  bool     `json:"sampled"` // scores are estimates after this apply
	// ErrBound is the Hoeffding-style 95% half-width of sampled estimates
	// (0 on exact applies): |estimate − exact| ≤ ErrBound per vertex with
	// ≥ 95% confidence under the Bader-style uniform-source estimator.
	ErrBound float64       `json:"err_bound,omitempty"`
	N        int           `json:"n"`
	M        int           `json:"m"`
	Procs    int           `json:"procs,omitempty"` // simulated processors (distributed mode)
	Plan     string        `json:"plan,omitempty"`  // representative plan of this apply's runs
	Fused    bool          `json:"fused,omitempty"` // this apply ran as one fused machine region
	Comm     CommStats     `json:"comm"`            // modeled communication of this apply
	Phases   []PhaseComm   `json:"phases,omitempty"`
	Wall     time.Duration `json:"-"`
}

// Snapshot is a consistent read of the engine state. Graph is the live
// immutable snapshot — callers must not mutate it; BC is a private copy.
type Snapshot struct {
	Graph   *graph.Graph
	BC      []float64
	Version uint64
	Seq     uint64
	Sampled bool
	// ErrBound is the Hoeffding-style 95% half-width of the held estimates
	// when Sampled (0 when the scores are exact): clients force an exact
	// refresh when it exceeds their tolerance.
	ErrBound float64
	Plan     string      // representative plan of the latest distributed run
	Comm     CommStats   // cumulative modeled communication through this snapshot
	Phases   []PhaseComm // per-phase breakdown of the latest apply (shared; do not mutate)
}

// Engine maintains BC scores over an evolving graph. All methods are safe
// for concurrent use; Apply calls serialize with each other while readers
// proceed against the latest installed snapshot.
type Engine struct {
	cfg Config

	applyMu sync.Mutex // serializes Apply; held across the whole compute
	// dist is the persistent distributed session (Procs > 1). Guarded by
	// applyMu; nil after a failed run, lazily rebuilt from the committed
	// snapshot. applyComm/applyPlan/applyPhases are per-apply scratch,
	// also under applyMu.
	dist        *core.DistSession
	evictBase   int64 // guarded by applyMu; operand-cache evictions of sessions since dropped
	applyComm   CommStats
	applyPlan   string
	applyPhases []PhaseComm

	mu             sync.RWMutex
	cur            *state            // guarded by mu
	log            graph.MutationLog // guarded by mu
	logBase        *graph.Graph      // guarded by mu
	logBaseVersion uint64            // guarded by mu
	logTruncations int64             // guarded by mu
	stats          Stats             // guarded by mu
}

// New creates an engine over g, computing the initial exact scores (on the
// simulated distributed machine when cfg.Procs > 1). The engine clones g,
// so the caller's graph stays independent.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("dynamic: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	if cfg.DirtyThreshold == 0 { //lint:allow floateq zero is the unset-config sentinel, never computed
		cfg.DirtyThreshold = defaultDirtyThreshold
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = defaultRefreshEvery
	}
	if cfg.LogCompactAt == 0 {
		cfg.LogCompactAt = defaultLogCompactAt
	}
	own := g.Clone()
	st := newState(own, 0)
	e := &Engine{cfg: cfg}
	if cfg.Procs > 1 {
		sess, err := core.NewDistSession(own, e.distOpts())
		if err != nil {
			return nil, err
		}
		r, err := sess.Run(nil)
		if err != nil {
			return nil, err
		}
		st.bc = r.BC
		st.plan = r.Plan.String()
		st.comm = commOf(r.Stats)
		e.dist = sess
	} else {
		st.bc = e.fullExact(context.Background(), st)
	}
	// The engine is not shared yet, but publishing the initial snapshot
	// under the lock keeps the guarded-field discipline uniform (and the
	// happens-before edge costs nothing here).
	e.mu.Lock()
	e.cur = st
	e.logBase = own
	e.logBaseVersion = st.version
	e.stats.Comm = st.comm
	e.stats.LastPlan = st.plan
	e.mu.Unlock()
	return e, nil
}

func (e *Engine) distOpts() core.DistOptions {
	return core.DistOptions{
		Procs: e.cfg.Procs, Workers: e.cfg.Workers, Batch: e.cfg.Batch,
		Plan: e.cfg.Plan, Constraint: e.cfg.Constraint, Model: e.cfg.Model,
		CacheSets: e.cfg.CacheSets, Transport: e.cfg.Transport,
	}
}

// batchSize resolves Config.Batch like core.Options does.
func (e *Engine) batchSize(n int) int {
	nb := e.cfg.Batch
	if nb <= 0 {
		nb = 128
	}
	if nb > n {
		nb = n
	}
	if nb < 1 {
		nb = 1
	}
	return nb
}

// Snapshot returns the current consistent (graph, scores, version) view.
func (e *Engine) Snapshot() Snapshot {
	e.mu.RLock()
	st := e.cur
	e.mu.RUnlock()
	return Snapshot{
		Graph:    st.g,
		BC:       append([]float64(nil), st.bc...),
		Version:  st.version,
		Seq:      st.seq,
		Sampled:  st.sampled,
		ErrBound: st.errBound,
		Plan:     st.plan,
		Comm:     st.comm,
		Phases:   st.phases,
	}
}

// Stats returns cumulative engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := e.stats
	st.LogLen = e.log.Len()
	st.LogTruncations = e.logTruncations
	st.LogBaseVersion = e.logBaseVersion
	return st
}

// Log returns a copy of the mutation log (possibly compacted or
// truncated). Replaying it on LogBase reproduces the current topology.
func (e *Engine) Log() []graph.Mutation {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.log.Mutations()
}

// LogBase returns the immutable graph snapshot the mutation log replays
// from (the engine's initial graph until the first truncation) and its
// version. Callers must not mutate the returned graph.
func (e *Engine) LogBase() (*graph.Graph, uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.logBase, e.logBaseVersion
}

// CompactLog rewrites the mutation log to its replay-equivalent minimal
// form immediately (the engine also does this automatically past the
// configured bound).
func (e *Engine) CompactLog() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log.Compact(e.cur.g.Directed)
}

// TruncateLog snapshots the current graph as the new replay base and
// empties the mutation log, returning the new base version. Long-lived
// servers use it (directly or via Config.LogTruncate) to bound the log
// while keeping replayability from the recorded base.
func (e *Engine) TruncateLog() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.truncateLogLocked(e.cur)
	return e.logBaseVersion
}

// truncateLogLocked installs st as the replay base. Callers hold e.mu.
func (e *Engine) truncateLogLocked(st *state) {
	e.logBase = st.g
	e.logBaseVersion = st.version
	e.log = graph.MutationLog{}
	e.logTruncations++
}

// Apply atomically applies one mutation batch and refreshes the maintained
// scores. On error the engine state is unchanged (batches are applied to a
// private clone first). Readers concurrent with Apply see either the old
// or the new snapshot, never a mix.
func (e *Engine) Apply(batch []graph.Mutation) (Report, error) {
	return e.ApplyCtx(context.Background(), batch)
}

// ApplyCtx is Apply with trace propagation: when ctx carries an obs span,
// the apply reports itself as a dynamic.apply child span, the
// affected-source probes and local sweeps as grandchildren, and every
// machine region as a machine.region span whose per-phase children pair
// modeled cost with measured wall-clock.
func (e *Engine) ApplyCtx(ctx context.Context, batch []graph.Mutation) (Report, error) {
	ctx, span := obs.StartSpan(ctx, "dynamic.apply")
	defer span.End()
	e.applyMu.Lock()
	defer e.applyMu.Unlock()

	e.mu.RLock()
	old := e.cur
	e.mu.RUnlock()

	start := time.Now()
	newG := old.g.Clone()
	if _, err := newG.ApplyAll(batch); err != nil {
		return Report{}, fmt.Errorf("dynamic: %w", err)
	}
	st := newState(newG, old.seq+1)
	diffs := batchDiff(old.g, newG, batch)
	e.applyComm = CommStats{}
	e.applyPlan = ""
	e.applyPhases = nil

	var (
		strategy Strategy
		affected []int32
		fused    bool
	)
	useDist := e.cfg.Procs > 1
	// advance moves the resident distributed operands to the post-batch
	// topology — delta-patching the blocks the diff touches, or, under
	// DistRebuild / vertex growth, rebuilding. It must run exactly once
	// per apply in distributed mode, after any old-topology runs and
	// before any new-topology runs.
	advance := func() error {
		if !useDist {
			return nil
		}
		sess, err := e.session(old)
		if err != nil {
			return err
		}
		if e.cfg.DistRebuild {
			sess.Reset(newG, st.a)
		} else {
			sess.Patch(newG, st.a, coreDiffs(diffs))
		}
		return nil
	}
	full := func() error {
		if err := advance(); err != nil {
			return err
		}
		if useDist {
			bc, err := e.distRun(ctx, nil)
			if err != nil {
				return err
			}
			st.bc = bc
		} else {
			st.bc = e.fullExact(ctx, st)
		}
		strategy = StrategyFull
		return nil
	}
	switch {
	case e.cfg.SampleBudget > 0 && e.cfg.SampleBudget < newG.N && st.seq%uint64(e.cfg.RefreshEvery) != 0:
		if err := advance(); err != nil {
			return Report{}, err
		}
		bc, err := e.sampledScores(ctx, st)
		if err != nil {
			return Report{}, err
		}
		st.bc = bc
		st.errBound = sampleErrBound(newG.N, e.cfg.SampleBudget)
		strategy, st.sampled = StrategySampled, true
	case old.sampled:
		// Incremental deltas need an exact base; with only estimates to
		// start from, affected-source detection would be wasted work.
		if err := full(); err != nil {
			return Report{}, err
		}
	default:
		_, probe := obs.StartSpan(ctx, "dynamic.probe")
		affected = affectedSources(old, st, diffs, e.cfg.Workers)
		probe.SetAttr("affected", len(affected)).SetAttr("diffs", len(diffs))
		probe.End()
		frac := 0.0
		if newG.N > 0 {
			frac = float64(len(affected)) / float64(newG.N)
		}
		if e.cfg.DirtyThreshold > 0 && frac > e.cfg.DirtyThreshold {
			if err := full(); err != nil {
				return Report{}, err
			}
		} else {
			var bc []float64
			var err error
			// With no affected sources there is nothing to sweep: the
			// legacy path advances the operands host-side and runs zero
			// regions, which a fused region (diff scatter + full splice +
			// empty sweep + O(n) reduce) would only make more expensive.
			if e.fuseEligible(old, newG) && len(affected) > 0 {
				bc, err = e.fusedIncrementalScores(ctx, old, st, affected, diffs)
				fused = err == nil
			} else {
				bc, err = e.incrementalScores(ctx, old, st, affected, advance)
			}
			if err != nil {
				return Report{}, err
			}
			st.bc = bc
			strategy = StrategyIncremental
		}
	}

	st.comm = old.comm
	st.comm.add(e.applyComm)
	st.plan = e.applyPlan
	if st.plan == "" {
		st.plan = old.plan // no run this apply (e.g. a structural no-op batch)
	}
	st.phases = e.applyPhases
	rep := Report{
		Seq: st.seq, Version: st.version, Applied: len(batch),
		Affected: len(affected), Strategy: strategy, Sampled: st.sampled,
		ErrBound: st.errBound, N: newG.N, M: newG.M(), Procs: e.cfg.Procs,
		Plan: e.applyPlan, Fused: fused, Comm: e.applyComm,
		Phases: e.applyPhases, Wall: time.Since(start),
	}
	if !useDist {
		rep.Procs = 0
	}
	span.SetAttr("strategy", string(strategy)).SetAttr("applied", len(batch)).
		SetAttr("affected", len(affected)).SetAttr("fused", fused).
		SetAttr("seq", st.seq)

	e.mu.Lock()
	e.cur = st
	e.log.Append(batch...)
	if e.cfg.LogCompactAt > 0 && e.log.Len() > e.cfg.LogCompactAt {
		if e.cfg.LogTruncate {
			e.truncateLogLocked(st)
		} else {
			e.log.Compact(st.g.Directed)
		}
	}
	e.stats.Applies++
	e.stats.MutationsApplied += int64(len(batch))
	switch strategy {
	case StrategyIncremental:
		e.stats.IncrementalRuns++
	case StrategyFull:
		e.stats.FullRecomputes++
	case StrategySampled:
		e.stats.SampledEstimates++
	}
	if strategy != StrategySampled {
		e.stats.AffectedSources += int64(len(affected))
		e.stats.LastAffected = len(affected)
	}
	if strategy == StrategyIncremental && useDist {
		if fused {
			e.stats.FusedApplies++
		} else {
			e.stats.TwoRegionApplies++
		}
	}
	e.stats.Comm.add(e.applyComm)
	if e.applyPlan != "" {
		e.stats.LastPlan = e.applyPlan
	}
	if e.dist != nil {
		e.stats.OperandEvictions = e.evictBase + e.dist.CacheEvictions()
	}
	e.mu.Unlock()
	return rep, nil
}

// fuseEligible reports whether this incremental apply can run as one fused
// machine region: distributed mode, fusion not ablated away, and a fixed
// vertex set (vertex growth changes the operand dimensions, which the
// resident pair lift cannot express).
func (e *Engine) fuseEligible(old *state, newG *graph.Graph) bool {
	return e.cfg.Procs > 1 && !e.cfg.DistRebuild && !e.cfg.NoFuse && newG.N == old.g.N
}

// session returns the live distributed session, rebuilding it on the given
// snapshot's topology after a prior run failure dropped it.
func (e *Engine) session(st *state) (*core.DistSession, error) {
	if e.dist == nil {
		sess, err := core.NewDistSession(st.g, e.distOpts())
		if err != nil {
			return nil, err
		}
		e.dist = sess
	}
	return e.dist, nil
}

// dropSession discards the distributed session after a failed run (its
// resident operands may be mid-transition), folding its eviction count
// into the engine's base so Stats.OperandEvictions stays monotone across
// session rebuilds. Caller holds e.applyMu.
func (e *Engine) dropSession() {
	if e.dist != nil {
		e.evictBase += e.dist.CacheEvictions()
		e.dist = nil
	}
}

// distRun executes one machine region over the session's resident
// topology, folding its modeled cost into the apply's communication. On
// error the session is dropped so the next apply rebuilds it from the
// committed snapshot (the resident operands may be mid-transition).
func (e *Engine) distRun(ctx context.Context, sources []int32) ([]float64, error) {
	r, err := e.dist.RunCtx(ctx, sources)
	if err != nil {
		e.dropSession()
		return nil, fmt.Errorf("dynamic: distributed run: %w", err)
	}
	e.applyComm.add(commOf(r.Stats))
	e.applyPlan = r.Plan.String()
	e.applyPhases = mergePhases(e.applyPhases, r.Stats.Phases)
	return r.BC, nil
}

// fusedIncrementalScores merges the batch's delta through one fused
// machine region: core.DistSession.ApplyIncremental computes both sides'
// pivot re-runs simultaneously over the pair semiring, patching the
// resident operands mid-region (diff scattered as a modeled collective,
// splice charged as local γ-flops), so the latency term is paid once. The
// arithmetic — subtract the old-side partials, add the new-side partials —
// is the exact operation sequence of the two-region path, and the side
// partials themselves are bit-identical to it under a fixed plan.
func (e *Engine) fusedIncrementalScores(ctx context.Context, old, st *state, affected []int32, diffs []edgeDiff) ([]float64, error) {
	sess, err := e.session(old)
	if err != nil {
		return nil, err
	}
	res, err := sess.ApplyIncrementalCtx(ctx, affected, st.g, st.a, coreDiffs(diffs), affected)
	if err != nil {
		// The resident operands may be mid-transition; rebuild from the
		// committed snapshot on the next apply.
		e.dropSession()
		return nil, fmt.Errorf("dynamic: fused apply: %w", err)
	}
	e.applyComm.add(commOf(res.Stats))
	e.applyPlan = res.Plan.String()
	e.applyPhases = mergePhases(e.applyPhases, res.Stats.Phases)

	bc := make([]float64, st.g.N)
	copy(bc, old.bc)
	for v := 0; v < old.g.N; v++ {
		bc[v] -= res.OldBC[v]
	}
	for v := range bc {
		bc[v] += res.NewBC[v]
	}
	clampResidue(bc)
	return bc, nil
}

// sampleErrBound is the Hoeffding-style 95% half-width of the Bader-style
// estimator with k uniform source samples on n vertices: each per-source
// dependency contribution lies in [0, n−2], so the scaled estimate
// n·mean(X) deviates from the exact score by at most
// n·(n−2)·sqrt(ln(2/0.05)/(2k)) per vertex with probability ≥ 95%. Loose
// (it ignores variance), but honest and monotone in the budget — exactly
// what a client needs to decide when to force an exact refresh.
func sampleErrBound(n, k int) float64 {
	if k <= 0 || n < 3 {
		return 0
	}
	rng := float64(n - 2)
	return float64(n) * rng * math.Sqrt(math.Log(2/0.05)/(2*float64(k)))
}

// incrementalScores merges the batch's delta into the maintained vector:
// bc_new = bc_old − Σ_{s∈affected} δ_old(s,·) + Σ_{s∈affected} δ_new(s,·),
// each side computed with batched MFBC sweeps restricted to the affected
// pivots — on the simulated machine in distributed mode, where the old
// side runs against the still-resident pre-batch operands, advance patches
// in the diff, and the new side reuses the freshly patched blocks.
func (e *Engine) incrementalScores(ctx context.Context, old, st *state, affected []int32, advance func() error) ([]float64, error) {
	bc := make([]float64, st.g.N)
	copy(bc, old.bc)

	oldN := old.g.N
	oldAff := affected
	if n := len(affected); n > 0 && int(affected[n-1]) >= oldN {
		// Sources added by this batch have no contribution to subtract.
		oldAff = oldAff[:0]
		for _, s := range affected {
			if int(s) < oldN {
				oldAff = append(oldAff, s)
			}
		}
	}
	if e.cfg.Procs > 1 {
		if _, err := e.session(old); err != nil {
			return nil, err
		}
		if len(oldAff) > 0 {
			delta, err := e.distRun(ctx, oldAff)
			if err != nil {
				return nil, err
			}
			for v := 0; v < oldN; v++ {
				bc[v] -= delta[v]
			}
		}
		if err := advance(); err != nil {
			return nil, err
		}
		if len(affected) > 0 {
			delta, err := e.distRun(ctx, affected)
			if err != nil {
				return nil, err
			}
			for v := range bc {
				bc[v] += delta[v]
			}
		}
	} else {
		if len(oldAff) > 0 {
			delta := e.pivotScores(ctx, old, oldAff)
			for v := 0; v < oldN; v++ {
				bc[v] -= delta[v]
			}
		}
		if len(affected) > 0 {
			delta := e.pivotScores(ctx, st, affected)
			for v := range bc {
				bc[v] += delta[v]
			}
		}
	}
	clampResidue(bc)
	return bc, nil
}

// clampResidue zeroes tiny negative residue: subtracting recomputed old
// contributions from the running vector can leave −1e-12-scale values at
// mathematically zero scores; large negatives would mean a bookkeeping bug
// and are left visible.
func clampResidue(bc []float64) {
	for v := range bc {
		if bc[v] < 0 && bc[v] > -1e-6 {
			bc[v] = 0
		}
	}
}

// fullExact recomputes exact scores with the snapshot's cached operands:
// core.MFBC's batching without rebuilding A and Aᵀ.
func (e *Engine) fullExact(ctx context.Context, st *state) []float64 {
	_, span := obs.StartSpan(ctx, "sweep.local")
	n := st.g.N
	defer span.SetAttr("sources", n).End()
	bc := make([]float64, n)
	nb := e.batchSize(n)
	for lo := 0; lo < n; lo += nb {
		hi := lo + nb
		if hi > n {
			hi = n
		}
		sources := make([]int32, 0, hi-lo)
		for s := lo; s < hi; s++ {
			sources = append(sources, int32(s))
		}
		core.MFBCBatchParallel(st.a, st.at, sources, bc, e.cfg.Workers)
	}
	return bc
}

// pivotScores runs batched MFBC sweeps for exactly the given sources over
// the snapshot's cached operands and returns their accumulated dependency
// contributions.
func (e *Engine) pivotScores(ctx context.Context, st *state, sources []int32) []float64 {
	_, span := obs.StartSpan(ctx, "sweep.local")
	defer span.SetAttr("sources", len(sources)).End()
	bc := make([]float64, st.g.N)
	nb := e.batchSize(len(sources))
	for lo := 0; lo < len(sources); lo += nb {
		hi := lo + nb
		if hi > len(sources) {
			hi = len(sources)
		}
		core.MFBCBatchParallel(st.a, st.at, sources[lo:hi], bc, e.cfg.Workers)
	}
	return bc
}

// sampledScores estimates BC from a seeded random subset of sources scaled
// by n/samples, exactly like repro.ApproximateBC's estimator. In
// distributed mode the sample sweep runs on the simulated machine (the
// session must already hold the snapshot's topology).
func (e *Engine) sampledScores(ctx context.Context, st *state) ([]float64, error) {
	n := st.g.N
	budget := e.cfg.SampleBudget
	rng := rand.New(rand.NewSource(e.cfg.Seed + int64(st.seq)*0x9e3779b9))
	perm := rng.Perm(n)
	sources := make([]int32, budget)
	for i := range sources {
		sources[i] = int32(perm[i])
	}
	var bc []float64
	if e.cfg.Procs > 1 {
		var err error
		bc, err = e.distRun(ctx, sources)
		if err != nil {
			return nil, err
		}
	} else {
		bc = e.pivotScores(ctx, st, sources)
	}
	scale := float64(n) / float64(budget)
	for v := range bc {
		bc[v] *= scale
	}
	return bc, nil
}

// edgeDiff is one edge of the effective difference between the pre- and
// post-batch graphs.
type edgeDiff struct {
	u, v         int32
	wOld, wNew   float64
	inOld, inNew bool
}

// coreDiffs converts the effective diff into core's operand-patch form
// (the post-batch side of each edge).
func coreDiffs(diffs []edgeDiff) []core.EdgeDiff {
	out := make([]core.EdgeDiff, len(diffs))
	for i, d := range diffs {
		out[i] = core.EdgeDiff{U: d.u, V: d.v, W: d.wNew, Present: d.inNew}
	}
	return out
}

// batchDiff reduces a mutation batch to the effective edge-level diff
// between oldG and newG: transient edges (added then removed within the
// batch) and no-op rewrites drop out; everything else reports its presence
// and weight on both sides.
func batchDiff(oldG, newG *graph.Graph, batch []graph.Mutation) []edgeDiff {
	seen := make(map[[2]int32]bool)
	var diffs []edgeDiff
	for _, m := range batch {
		if m.Op == graph.OpAddVertex {
			continue
		}
		u, v := m.U, m.V
		if !newG.Directed && u > v {
			u, v = v, u
		}
		k := [2]int32{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := edgeDiff{u: u, v: v}
		d.wOld, d.inOld = oldG.FindEdge(u, v)
		d.wNew, d.inNew = newG.FindEdge(u, v)
		//lint:allow floateq no-op edit detection compares stored weights bit-for-bit, not arithmetic results
		if d.inOld == d.inNew && (!d.inOld || d.wOld == d.wNew) {
			continue // transient or no-op
		}
		diffs = append(diffs, d)
	}
	return diffs
}

// affectedSources returns, sorted ascending, every source vertex of the
// new snapshot whose dependency contributions can differ between the
// snapshots: those with a mutated edge on some shortest path in either
// graph. The test is epsilon-tolerant, so floating-point path sums can
// only widen the set. Both probes run on the snapshots' cached transposes.
func affectedSources(old, st *state, diffs []edgeDiff, workers int) []int32 {
	if len(diffs) == 0 {
		return nil
	}

	// d(s, e) for every source s and mutated endpoint e, on each side:
	// one multi-source SSSP from the endpoints on the reverse graph.
	oldEnds := endpointSet(diffs, func(d edgeDiff) bool { return d.inOld })
	newEnds := endpointSet(diffs, func(d edgeDiff) bool { return d.inNew })
	distOld := distancesTo(old.at, old.g.N, oldEnds, workers)
	distNew := distancesTo(st.at, st.g.N, newEnds, workers)

	affected := make([]bool, st.g.N)
	undirected := !st.g.Directed
	for _, d := range diffs {
		if d.inOld {
			markOnShortestPath(affected, distOld[d.u], distOld[d.v], d.wOld, undirected)
		}
		if d.inNew {
			markOnShortestPath(affected, distNew[d.u], distNew[d.v], d.wNew, undirected)
		}
	}
	var out []int32
	for s, a := range affected {
		if a {
			out = append(out, int32(s))
		}
	}
	return out
}

func endpointSet(diffs []edgeDiff, want func(edgeDiff) bool) []int32 {
	set := make(map[int32]bool)
	for _, d := range diffs {
		if want(d) {
			set[d.u] = true
			set[d.v] = true
		}
	}
	out := make([]int32, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	// The endpoints index the multi-source probe sweeps; a map-ordered
	// list would make the probe layout differ run to run.
	slices.Sort(out)
	return out
}

// distancesTo returns dist[e][s] = d(s → e) for every endpoint e: one
// multi-source MFBF sweep from the endpoints over the snapshot's cached
// transpose (the reverse graph's adjacency; for undirected graphs A is
// symmetric so the transpose is the graph itself).
func distancesTo(at *sparse.CSR[float64], n int, endpoints []int32, workers int) map[int32][]float64 {
	out := make(map[int32][]float64, len(endpoints))
	if len(endpoints) == 0 {
		return out
	}
	t, _, _ := core.MFBFParallel(at, endpoints, workers)
	for i, e := range endpoints {
		d := make([]float64, n)
		for v := range d {
			d[v] = math.Inf(1)
		}
		d[e] = 0 // MFBF suppresses the source diagonal
		cols, vals := t.Row(i)
		for k, v := range cols {
			d[v] = vals[k].W
		}
		out[e] = d
	}
	return out
}

// markOnShortestPath marks every source s for which edge (u→v, w) lies on
// a shortest path from s: d(s,u) + w == d(s,v), within a relative epsilon.
// Undirected edges are tested in both orientations.
func markOnShortestPath(affected []bool, distU, distV []float64, w float64, undirected bool) {
	n := len(distU)
	for s := 0; s < n && s < len(affected); s++ {
		du, dv := distU[s], distV[s]
		if onPath(du, dv, w) || (undirected && onPath(dv, du, w)) {
			affected[s] = true
		}
	}
}

func onPath(du, dv, w float64) bool {
	if math.IsInf(du, 1) || math.IsInf(dv, 1) {
		return false
	}
	sum := du + w
	tol := 1e-9 * (1 + math.Max(math.Abs(sum), math.Abs(dv)))
	return math.Abs(sum-dv) <= tol
}
