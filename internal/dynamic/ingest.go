// Write-ahead ingestion queue: the concurrency primitive behind the
// server's async mutation pipeline. A Queue collects mutation batches
// from many producers; a single drainer (elected by the queue itself via
// the startDrain handoff) takes the whole backlog at once, coalesces it,
// and group-commits through the engine, so N queued writers pay ~one
// probe + one machine region instead of N.
//
// The queue knows nothing about graphs or engines — it only tracks
// pending batches and who owes the drain. Callers provide the result
// type R that waiters receive when their batch resolves.
package dynamic

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/graph"
)

var (
	// ErrQueueFull is returned by Enqueue when the queue is at its
	// depth bound; callers surface it as backpressure (HTTP 429).
	ErrQueueFull = errors.New("dynamic: ingest queue full")
	// ErrQueueClosed is returned by Enqueue after Close — the owning
	// graph was evicted and the queue must never be reused.
	ErrQueueClosed = errors.New("dynamic: ingest queue closed")
)

// Pending is one producer's batch waiting in a Queue. The drainer calls
// Resolve exactly once; producers that asked for applied durability block
// in Wait until then.
type Pending[R any] struct {
	Muts       []graph.Mutation
	EnqueuedAt time.Time

	done chan struct{}
	res  R
	err  error
}

// Resolve delivers the batch's outcome and wakes every waiter. It must be
// called exactly once, by whoever removed the batch from the queue.
func (p *Pending[R]) Resolve(res R, err error) {
	p.res = res
	p.err = err
	close(p.done)
}

// Wait blocks until Resolve or ctx cancellation. A ctx error abandons
// only this wait — the batch is still in the queue and still commits.
func (p *Pending[R]) Wait(ctx context.Context) (R, error) {
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		var zero R
		return zero, ctx.Err()
	}
}

// Queue is a bounded multi-producer, single-drainer mutation queue.
//
// Drain duty is handed off atomically with queue state: the Enqueue that
// finds no drainer active is told to start one (startDrain), and a
// drainer holds duty until a Drain call finds the queue empty or closed.
// The handoff happens under one mutex, so there is no window where
// batches sit queued with nobody responsible for them, and never two
// drainers for one queue.
type Queue[R any] struct {
	maxDepth int // 0 or negative = unbounded

	mu       sync.Mutex
	pending  []*Pending[R] // guarded by mu
	draining bool          // guarded by mu
	closed   bool          // guarded by mu
}

// NewQueue returns a queue rejecting enqueues beyond maxDepth pending
// batches (maxDepth <= 0 means unbounded).
func NewQueue[R any](maxDepth int) *Queue[R] {
	return &Queue[R]{maxDepth: maxDepth}
}

// Enqueue appends a batch. depth is the queue depth including the new
// batch; startDrain is true iff the caller must spawn the drainer (no
// drainer currently holds duty).
func (q *Queue[R]) Enqueue(muts []graph.Mutation, now time.Time) (p *Pending[R], depth int, startDrain bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, 0, false, ErrQueueClosed
	}
	if q.maxDepth > 0 && len(q.pending) >= q.maxDepth {
		return nil, len(q.pending), false, ErrQueueFull
	}
	p = &Pending[R]{Muts: muts, EnqueuedAt: now, done: make(chan struct{})}
	q.pending = append(q.pending, p)
	startDrain = !q.draining
	q.draining = true
	return p, len(q.pending), startDrain, nil
}

// Drain hands the entire backlog to the calling drainer. ok == false
// means the queue is empty or closed and drain duty has been released —
// the drainer must exit (a later Enqueue will elect a fresh one).
func (q *Queue[R]) Drain() (group []*Pending[R], ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.pending) == 0 {
		q.draining = false
		return nil, false
	}
	group = q.pending
	q.pending = nil
	return group, true
}

// Close marks the queue unusable and returns the orphaned backlog; the
// caller owns failing those waiters. Idempotent.
func (q *Queue[R]) Close() []*Pending[R] {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	orphans := q.pending
	q.pending = nil
	return orphans
}

// Depth reports the number of pending (not yet drained) batches.
func (q *Queue[R]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Coalesce collapses a concatenated mutation stream into its compact
// equivalent under MutationLog.Compact's algebra (add+remove cancels,
// remove+add becomes set_weight, chained sets keep the last, add_vertex
// hoisted). Replaying the result yields the same graph as replaying the
// input one op at a time — pinned by the compact_prop_test oracle.
func Coalesce(directed bool, muts []graph.Mutation) []graph.Mutation {
	var log graph.MutationLog
	log.Append(muts...)
	log.Compact(directed)
	return log.Mutations()
}
