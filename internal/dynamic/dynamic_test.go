package dynamic

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spgemm"
)

func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

// fromScratch recomputes exact scores on g's current topology.
func fromScratch(t *testing.T, g *graph.Graph) []float64 {
	t.Helper()
	r, err := core.MFBC(g, core.Options{})
	if err != nil {
		t.Fatalf("from-scratch MFBC: %v", err)
	}
	return r.BC
}

func compareScores(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", ctx, len(got), len(want))
	}
	for v := range got {
		if !almostEqual(got[v], want[v]) {
			t.Fatalf("%s: bc[%d] = %v, want %v", ctx, v, got[v], want[v])
		}
	}
}

// randomMutation picks one valid mutation for g's current topology.
func randomMutation(rng *rand.Rand, g *graph.Graph, weighted bool) graph.Mutation {
	for tries := 0; tries < 200; tries++ {
		switch rng.Intn(10) {
		case 0: // grow the vertex set occasionally
			return graph.Mutation{Op: graph.OpAddVertex}
		case 1, 2, 3: // remove an existing edge (keep some density)
			if g.M() <= g.N/2 {
				continue
			}
			e := g.Edges[rng.Intn(g.M())]
			return graph.Mutation{Op: graph.OpRemoveEdge, U: e.U, V: e.V}
		case 4, 5: // reweight an existing edge
			if !weighted || g.M() == 0 {
				continue
			}
			e := g.Edges[rng.Intn(g.M())]
			return graph.Mutation{Op: graph.OpSetWeight, U: e.U, V: e.V, W: float64(1 + rng.Intn(9))}
		default: // insert a fresh edge
			u := int32(rng.Intn(g.N))
			v := int32(rng.Intn(g.N))
			if u == v {
				continue
			}
			if _, exists := g.FindEdge(u, v); exists {
				continue
			}
			w := 1.0
			if weighted {
				w = float64(1 + rng.Intn(9))
			}
			return graph.Mutation{Op: graph.OpAddEdge, U: u, V: v, W: w}
		}
	}
	return graph.Mutation{Op: graph.OpAddVertex}
}

// TestIncrementalMatchesFromScratch is the engine-level differential test:
// after every applied batch, the maintained scores must match a from-
// scratch recomputation on the mutated topology. DirtyThreshold < 0 forces
// the incremental path so the delta bookkeeping itself is what's tested.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	cases := []struct {
		name     string
		build    func() *graph.Graph
		weighted bool
	}{
		{"rmat", func() *graph.Graph { return graph.RMAT(graph.DefaultRMAT(6, 6, 11)) }, false},
		{"uniform-directed", func() *graph.Graph { return graph.Uniform(48, 160, true, 12) }, false},
		{"grid-weighted", func() *graph.Graph { return graph.Grid2D(7, 7, 8, 13) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			eng, err := New(g, Config{DirtyThreshold: -1})
			if err != nil {
				t.Fatal(err)
			}
			compareScores(t, "initial", eng.Snapshot().BC, fromScratch(t, g))
			rng := rand.New(rand.NewSource(99))
			shadow := g.Clone()
			for step := 0; step < 8; step++ {
				batch := make([]graph.Mutation, 1+rng.Intn(3))
				for i := range batch {
					batch[i] = randomMutation(rng, shadow, tc.weighted)
					if err := shadow.Apply(batch[i]); err != nil {
						t.Fatalf("step %d: shadow apply: %v", step, err)
					}
				}
				rep, err := eng.Apply(batch)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if rep.Strategy != StrategyIncremental {
					t.Fatalf("step %d: strategy %q, want incremental", step, rep.Strategy)
				}
				snap := eng.Snapshot()
				if snap.Version != graph.Fingerprint(shadow) {
					t.Fatalf("step %d: engine graph diverged from shadow replay", step)
				}
				compareScores(t, tc.name, snap.BC, fromScratch(t, shadow))
			}
			st := eng.Stats()
			if st.Applies != 8 || st.IncrementalRuns != 8 || st.FullRecomputes != 0 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

// TestDirtyThresholdFallsBackToFull: a batch touching most of the graph
// must trigger full recomputation when the threshold is low.
func TestDirtyThresholdFallsBackToFull(t *testing.T) {
	g := graph.Grid2D(6, 6, 1, 1)
	eng, err := New(g, Config{DirtyThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting a central edge affects shortest paths from nearly every
	// source in a mesh.
	rep, err := eng.Apply([]graph.Mutation{{Op: graph.OpRemoveEdge, U: g.Edges[30].U, V: g.Edges[30].V}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyFull {
		t.Fatalf("strategy = %q, want full (affected %d/%d)", rep.Strategy, rep.Affected, rep.N)
	}
	shadow := g.Clone()
	if err := shadow.RemoveEdge(g.Edges[30].U, g.Edges[30].V); err != nil {
		t.Fatal(err)
	}
	compareScores(t, "full fallback", eng.Snapshot().BC, fromScratch(t, shadow))
	if st := eng.Stats(); st.FullRecomputes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAffectedSourcesLocal: an edge inserted in a far corner of a long
// path graph must not force recomputing sources that cannot reach it with
// a changed shortest path.
func TestAffectedSourcesLocal(t *testing.T) {
	// Two path components: 0..19 and 20..39.
	g := &graph.Graph{Name: "twopaths", N: 40}
	for i := int32(0); i < 19; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: i, V: i + 1, W: 1})
		g.Edges = append(g.Edges, graph.Edge{U: 20 + i, V: 21 + i, W: 1})
	}
	eng, err := New(g, Config{DirtyThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	// A chord inside the second component leaves the first component's
	// sources untouched.
	rep, err := eng.Apply([]graph.Mutation{{Op: graph.OpAddEdge, U: 25, V: 30, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected == 0 || rep.Affected > 20 {
		t.Fatalf("affected = %d, want within (0, 20]: component 1 must be skipped", rep.Affected)
	}
	shadow := g.Clone()
	if err := shadow.AddEdge(25, 30, 1); err != nil {
		t.Fatal(err)
	}
	compareScores(t, "local insert", eng.Snapshot().BC, fromScratch(t, shadow))
}

// TestNoopBatchSkipsCompute: add+remove of the same edge in one batch is a
// structural no-op, so no source should be re-run.
func TestNoopBatchSkipsCompute(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(5, 6, 3))
	eng, err := New(g, Config{DirtyThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	var u, v int32
	for u = 0; u < int32(g.N); u++ {
		if _, ok := g.FindEdge(u, u+1); !ok && int(u+1) < g.N {
			v = u + 1
			break
		}
	}
	before := eng.Snapshot()
	rep, err := eng.Apply([]graph.Mutation{
		{Op: graph.OpAddEdge, U: u, V: v, W: 1},
		{Op: graph.OpRemoveEdge, U: u, V: v},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 0 {
		t.Fatalf("affected = %d for a transient edge, want 0", rep.Affected)
	}
	after := eng.Snapshot()
	if after.Version != before.Version {
		t.Fatal("structural no-op changed the fingerprint")
	}
	compareScores(t, "noop", after.BC, before.BC)
}

// TestSampledModeEstimatesAndRefreshes: sampled applies produce estimates
// flagged as such; every RefreshEvery-th apply is an exact refresh.
func TestSampledModeEstimatesAndRefreshes(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 8, 21))
	eng, err := New(g, Config{SampleBudget: 8, RefreshEvery: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	shadow := g.Clone()
	rng := rand.New(rand.NewSource(7))
	for step := 1; step <= 6; step++ {
		m := randomMutation(rng, shadow, false)
		if err := shadow.Apply(m); err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Apply([]graph.Mutation{m})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%3 == 0 {
			if rep.Strategy != StrategyFull || rep.Sampled {
				t.Fatalf("step %d: %q sampled=%v, want exact refresh", step, rep.Strategy, rep.Sampled)
			}
			compareScores(t, "refresh", eng.Snapshot().BC, fromScratch(t, shadow))
		} else {
			if rep.Strategy != StrategySampled || !rep.Sampled {
				t.Fatalf("step %d: %q sampled=%v, want sampled estimate", step, rep.Strategy, rep.Sampled)
			}
			// Estimates are not exact, but the total mass estimator is
			// unbiased; sanity-check it is in the right ballpark (not zeros,
			// not wildly off).
			exact := fromScratch(t, shadow)
			var se, sx float64
			for v := range exact {
				se += eng.Snapshot().BC[v]
				sx += exact[v]
			}
			if sx > 0 && (se < sx/20 || se > sx*20) {
				t.Fatalf("step %d: estimate mass %v vs exact %v", step, se, sx)
			}
		}
	}
	st := eng.Stats()
	if st.SampledEstimates != 4 || st.FullRecomputes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestApplyErrorLeavesStateUntouched: an invalid mutation mid-batch must
// not change the observable snapshot (batches are atomic).
func TestApplyErrorLeavesStateUntouched(t *testing.T) {
	g := graph.Grid2D(4, 4, 1, 1)
	eng, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	_, err = eng.Apply([]graph.Mutation{
		{Op: graph.OpAddEdge, U: 0, V: 5, W: 1},
		{Op: graph.OpAddEdge, U: 0, V: 99, W: 1}, // out of range
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	after := eng.Snapshot()
	if after.Version != before.Version || after.Seq != before.Seq {
		t.Fatal("failed batch mutated the snapshot")
	}
	if st := eng.Stats(); st.Applies != 0 {
		t.Fatalf("failed batch counted: %+v", st)
	}
}

// TestConcurrentReadersSeeConsistentSnapshots: readers racing a writer
// must only ever observe (version, scores) pairs that match one installed
// snapshot — scores always belong to the version they arrived with.
func TestConcurrentReadersSeeConsistentSnapshots(t *testing.T) {
	g := graph.Grid2D(5, 5, 1, 1)
	eng, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Precompute the expected scores of every version the writer installs.
	expect := map[uint64][]float64{graph.Fingerprint(g): fromScratch(t, g)}
	shadow := g.Clone()
	muts := []graph.Mutation{
		{Op: graph.OpAddEdge, U: 0, V: 24, W: 1},
		{Op: graph.OpRemoveEdge, U: 0, V: 1},
		{Op: graph.OpAddEdge, U: 3, V: 17, W: 1},
		{Op: graph.OpAddEdge, U: 7, V: 21, W: 1},
	}
	for _, m := range muts {
		if err := shadow.Apply(m); err != nil {
			t.Fatal(err)
		}
		expect[graph.Fingerprint(shadow)] = fromScratch(t, shadow)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := eng.Snapshot()
				want, ok := expect[snap.Version]
				if !ok {
					errs <- "reader saw unknown version"
					return
				}
				if len(snap.BC) != len(want) {
					errs <- "reader saw torn scores (length)"
					return
				}
				for v := range want {
					if !almostEqual(snap.BC[v], want[v]) {
						errs <- "reader saw scores inconsistent with their version"
						return
					}
				}
			}
		}()
	}
	for _, m := range muts {
		if _, err := eng.Apply([]graph.Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestApplyNeverMutatesPublishedSnapshot: Apply must treat installed
// snapshots as immutable even when the input graph's edge slice is not in
// canonical order — a reader iterating Snapshot().Graph.Edges while a
// batch applies must see the slice untouched (runs under -race in CI).
func TestApplyNeverMutatesPublishedSnapshot(t *testing.T) {
	g := &graph.Graph{Name: "unsorted", N: 6, Edges: []graph.Edge{
		{U: 4, V: 5, W: 1}, {U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1},
		{U: 1, V: 2, W: 1}, {U: 3, V: 4, W: 1},
	}}
	eng, err := New(g, Config{DirtyThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	before := append([]graph.Edge(nil), snap.Graph.Edges...)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, e := range snap.Graph.Edges {
				_ = e.W
			}
		}
	}()
	if _, err := eng.Apply([]graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 5, W: 1}}); err != nil {
		t.Fatal(err)
	}
	<-done
	for i, e := range snap.Graph.Edges {
		if e != before[i] {
			t.Fatalf("Apply reordered the published snapshot's edges: %+v vs %+v",
				snap.Graph.Edges, before)
		}
	}
}

// TestDistributedIncrementalMatchesFromScratch is the distributed-mode
// differential test: engines running their sweeps on the simulated machine
// (procs 2 and 4, plan-constrained to cover the 1D/2D/3D families) replay
// seeded mutation sequences; after every applied prefix the maintained
// scores must match a from-scratch sequential recomputation at 1e-9, and
// distributed applies must report modeled communication and a plan.
func TestDistributedIncrementalMatchesFromScratch(t *testing.T) {
	topologies := []struct {
		name     string
		build    func() *graph.Graph
		weighted bool
	}{
		{"rmat", func() *graph.Graph { return graph.RMAT(graph.DefaultRMAT(5, 6, 11)) }, false},
		{"grid-weighted", func() *graph.Graph { return graph.Grid2D(6, 6, 8, 13) }, true},
	}
	engines := []struct {
		name string
		cfg  Config
	}{
		{"p2", Config{Procs: 2, DirtyThreshold: -1, Workers: 1}},
		{"p2-1d", Config{Procs: 2, DirtyThreshold: -1, Workers: 1, Constraint: spgemm.Only1D}},
		{"p4-2d", Config{Procs: 4, DirtyThreshold: -1, Workers: 1, Constraint: spgemm.Only2D}},
		{"p4-3d", Config{Procs: 4, DirtyThreshold: -1, Workers: 1, Constraint: spgemm.Only3D}},
	}
	for _, topo := range topologies {
		for _, eng := range engines {
			t.Run(topo.name+"/"+eng.name, func(t *testing.T) {
				g := topo.build()
				e, err := New(g, eng.cfg)
				if err != nil {
					t.Fatal(err)
				}
				compareScores(t, "initial", e.Snapshot().BC, fromScratch(t, g))
				if e.Snapshot().Comm.Runs == 0 || e.Snapshot().Plan == "" {
					t.Fatalf("initial distributed compute reported no comm/plan: %+v", e.Snapshot())
				}
				rng := rand.New(rand.NewSource(41))
				shadow := g.Clone()
				for step := 0; step < 4; step++ {
					batch := make([]graph.Mutation, 1+rng.Intn(2))
					for i := range batch {
						batch[i] = randomMutation(rng, shadow, topo.weighted)
						if err := shadow.Apply(batch[i]); err != nil {
							t.Fatalf("step %d: shadow apply: %v", step, err)
						}
					}
					rep, err := e.Apply(batch)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if rep.Strategy != StrategyIncremental {
						t.Fatalf("step %d: strategy %q, want incremental", step, rep.Strategy)
					}
					if rep.Affected > 0 && (rep.Comm.Runs == 0 || rep.Plan == "") {
						t.Fatalf("step %d: distributed apply with %d affected reported no comm/plan: %+v",
							step, rep.Affected, rep)
					}
					snap := e.Snapshot()
					if snap.Version != graph.Fingerprint(shadow) {
						t.Fatalf("step %d: engine graph diverged from shadow replay", step)
					}
					compareScores(t, topo.name+"/"+eng.name, snap.BC, fromScratch(t, shadow))
				}
				st := e.Stats()
				if st.Applies != 4 || st.FullRecomputes != 0 {
					t.Fatalf("stats = %+v", st)
				}
				if st.Comm.Runs == 0 {
					t.Fatalf("no machine runs accumulated: %+v", st.Comm)
				}
			})
		}
	}
}

// TestDeltaPatchMatchesRebuild pins the operand delta-patch: an engine
// that patches the resident stationary operands per apply and one that
// rebuilds (fully redistributes) them must choose identical plans and
// produce bit-identical scores on every prefix — while the patched engine
// moves strictly fewer modeled bytes in total.
func TestDeltaPatchMatchesRebuild(t *testing.T) {
	g := graph.Grid2D(6, 6, 8, 3)
	// NoFuse keeps the patched engine on the two-region path: this
	// differential pins operand patching against full redistribution, so
	// both engines must execute the same region structure (the fused path
	// has its own differential, TestFusedEngineMatchesTwoRegionEngine).
	patched, err := New(g, Config{Procs: 4, DirtyThreshold: -1, Workers: 1, NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := New(g, Config{Procs: 4, DirtyThreshold: -1, Workers: 1, DistRebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	shadow := g.Clone()
	var patchedBytes, rebuiltBytes int64
	sawWork := false
	for step := 0; step < 5; step++ {
		m := randomMutation(rng, shadow, true)
		if m.Op == graph.OpAddVertex {
			// Vertex growth legitimately forces both engines to rebuild;
			// keep the comparison on the delta-patchable steps.
			m = graph.Mutation{Op: graph.OpSetWeight, U: shadow.Edges[0].U, V: shadow.Edges[0].V, W: float64(1 + rng.Intn(9))}
		}
		if err := shadow.Apply(m); err != nil {
			t.Fatalf("step %d: shadow: %v", step, err)
		}
		rp, err := patched.Apply([]graph.Mutation{m})
		if err != nil {
			t.Fatalf("step %d: patched: %v", step, err)
		}
		rr, err := rebuilt.Apply([]graph.Mutation{m})
		if err != nil {
			t.Fatalf("step %d: rebuilt: %v", step, err)
		}
		if rp.Plan != rr.Plan {
			t.Fatalf("step %d: plans diverged: patched %q vs rebuilt %q", step, rp.Plan, rr.Plan)
		}
		sp, sr := patched.Snapshot(), rebuilt.Snapshot()
		for v := range sp.BC {
			if sp.BC[v] != sr.BC[v] {
				t.Fatalf("step %d: bc[%d] bit-diverged: patched %v vs rebuilt %v (delta-patched operands are not identical to full redistribution)",
					step, v, sp.BC[v], sr.BC[v])
			}
		}
		compareScores(t, "vs from-scratch", sp.BC, fromScratch(t, shadow))
		patchedBytes += rp.Comm.Bytes
		rebuiltBytes += rr.Comm.Bytes
		if rp.Affected > 0 {
			sawWork = true
		}
	}
	if !sawWork {
		t.Fatal("mutation sequence never produced an affected source; comparison is vacuous")
	}
	if patchedBytes >= rebuiltBytes {
		t.Fatalf("delta-patching moved %d modeled bytes, full redistribution %d: operand reuse did not amortize",
			patchedBytes, rebuiltBytes)
	}
}

// TestDistributedApplyCheaperThanFromScratch is the amortization
// acceptance: for a small-diff batch, the modeled communication of the
// distributed incremental apply (old-side + new-side runs on resident
// operands) must be strictly less than a from-scratch distributed run on
// the same post-batch graph.
func TestDistributedApplyCheaperThanFromScratch(t *testing.T) {
	// Continuous weights keep shortest paths near-unique, so a single
	// reweight touches few sources.
	g := graph.Grid2D(10, 10, 1, 1)
	wrng := rand.New(rand.NewSource(17))
	for i := range g.Edges {
		g.Edges[i].W = 1 + 29*wrng.Float64()
	}
	g.Weighted = true
	e, err := New(g, Config{Procs: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Probe for a congestion-style reweight with a genuinely small
	// footprint (the regime the amortization targets): the edge whose
	// shortest-path involvement marks the fewest sources.
	st := newState(g, 0)
	best, bestAff := g.Edges[0], g.N+1
	for _, cand := range g.Edges[:40] {
		ng := g.Clone()
		if err := ng.SetWeight(cand.U, cand.V, cand.W*1.07); err != nil {
			t.Fatal(err)
		}
		m := []graph.Mutation{{Op: graph.OpSetWeight, U: cand.U, V: cand.V, W: cand.W * 1.07}}
		aff := affectedSources(st, newState(ng, 1), batchDiff(g, ng, m), 1)
		if n := len(aff); n > 0 && n < bestAff {
			best, bestAff = cand, n
		}
	}
	rep, err := e.Apply([]graph.Mutation{{Op: graph.OpSetWeight, U: best.U, V: best.V, W: best.W * 1.07}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyIncremental {
		t.Fatalf("strategy %q (affected %d/%d), want incremental", rep.Strategy, rep.Affected, rep.N)
	}
	full, err := core.MFBCDistributed(e.Snapshot().Graph, core.DistOptions{Procs: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Words moved (the paper's W) is the bandwidth measure the stationary
	// operands amortize; latency (S) scales with frontier iterations, not
	// batch width, and the incremental apply pays it for two regions.
	if rep.Comm.Bytes >= full.Stats.MaxCost.Bytes {
		t.Fatalf("incremental apply moved %d modeled bytes (affected %d/%d), from-scratch run %d: no amortization",
			rep.Comm.Bytes, rep.Affected, rep.N, full.Stats.MaxCost.Bytes)
	}
}

// TestLogPolicyConfigurableBoundAndTruncate: the compaction bound must be
// configurable, and truncate mode must snapshot a replay base that
// reproduces the current graph.
func TestLogPolicyConfigurableBoundAndTruncate(t *testing.T) {
	g := graph.Grid2D(4, 4, 1, 1)

	// Small configurable bound, compaction mode: the log never exceeds the
	// bound for long, and replaying it from the base reproduces the graph.
	eng, err := New(g, Config{LogCompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		var m graph.Mutation
		if i%2 == 0 {
			m = graph.Mutation{Op: graph.OpAddEdge, U: 0, V: int32(5 + i), W: 1}
		} else {
			m = graph.Mutation{Op: graph.OpRemoveEdge, U: 0, V: int32(4 + i)}
		}
		if _, err := eng.Apply([]graph.Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Stats().LogLen; got > 3+1 {
		t.Fatalf("log len %d exceeds configured bound", got)
	}
	base, baseVer := eng.LogBase()
	if baseVer != graph.Fingerprint(g) {
		t.Fatal("compaction mode moved the replay base")
	}
	replayed := base.Clone()
	if _, err := replayed.ApplyAll(eng.Log()); err != nil {
		t.Fatalf("replay from base: %v", err)
	}
	if graph.Fingerprint(replayed) != eng.Snapshot().Version {
		t.Fatal("compacted log + base do not reproduce the engine graph")
	}

	// Truncate mode: past the bound the base snapshot advances, the log
	// empties, and replay-from-base still reproduces the graph.
	trunc, err := New(g, Config{LogCompactAt: 2, LogTruncate: true})
	if err != nil {
		t.Fatal(err)
	}
	muts := []graph.Mutation{
		{Op: graph.OpAddEdge, U: 0, V: 15, W: 1},
		{Op: graph.OpAddEdge, U: 1, V: 14, W: 1},
		{Op: graph.OpAddEdge, U: 2, V: 13, W: 1}, // pushes past the bound → truncation
		{Op: graph.OpAddEdge, U: 3, V: 12, W: 1},
	}
	for _, m := range muts {
		if _, err := trunc.Apply([]graph.Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}
	st := trunc.Stats()
	if st.LogTruncations == 0 {
		t.Fatalf("no truncation past the bound: %+v", st)
	}
	base, baseVer = trunc.LogBase()
	if baseVer == graph.Fingerprint(g) {
		t.Fatal("truncate mode never advanced the replay base")
	}
	if st.LogBaseVersion != baseVer {
		t.Fatalf("stats base version %016x, LogBase %016x", st.LogBaseVersion, baseVer)
	}
	replayed = base.Clone()
	if _, err := replayed.ApplyAll(trunc.Log()); err != nil {
		t.Fatalf("replay from truncated base: %v", err)
	}
	if graph.Fingerprint(replayed) != trunc.Snapshot().Version {
		t.Fatal("truncated log + base do not reproduce the engine graph")
	}

	// Explicit TruncateLog snapshots immediately.
	v := trunc.TruncateLog()
	if trunc.Stats().LogLen != 0 || v != trunc.Snapshot().Version {
		t.Fatalf("explicit truncate: len=%d base=%016x cur=%016x", trunc.Stats().LogLen, v, trunc.Snapshot().Version)
	}
}

// TestLogRecordsAndCompacts: the engine log replays to the current graph
// and compaction preserves that.
func TestLogRecordsAndCompacts(t *testing.T) {
	g := graph.Grid2D(4, 4, 1, 1)
	eng, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]graph.Mutation{
		{{Op: graph.OpAddEdge, U: 0, V: 15, W: 1}},
		{{Op: graph.OpRemoveEdge, U: 0, V: 15}, {Op: graph.OpAddEdge, U: 2, V: 13, W: 1}},
		{{Op: graph.OpSetWeight, U: 2, V: 13, W: 4}},
	}
	for _, b := range batches {
		if _, err := eng.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	replayed := g.Clone()
	if _, err := replayed.ApplyAll(eng.Log()); err != nil {
		t.Fatalf("log replay: %v", err)
	}
	if graph.Fingerprint(replayed) != eng.Snapshot().Version {
		t.Fatal("log replay does not reproduce the engine graph")
	}
	eng.CompactLog()
	if got := eng.Stats().LogLen; got > 2 {
		t.Fatalf("compacted log has %d entries, want ≤ 2 (transient edge drops out)", got)
	}
	replayed = g.Clone()
	if _, err := replayed.ApplyAll(eng.Log()); err != nil {
		t.Fatalf("compacted replay: %v", err)
	}
	if graph.Fingerprint(replayed) != eng.Snapshot().Version {
		t.Fatal("compacted log replay does not reproduce the engine graph")
	}
}

// TestFusedEngineMatchesTwoRegionEngine is the fused-apply differential at
// engine level: under a forced plan, a fused engine and a NoFuse
// (two-region) engine replaying the same mutation stream must hold
// bit-identical scores after every prefix, while every fused incremental
// apply spends strictly fewer modeled messages (the latency term paid once
// instead of twice). Under automatic planning scores agree to tolerance.
func TestFusedEngineMatchesTwoRegionEngine(t *testing.T) {
	plan := spgemm.Plan{P1: 1, P2: 2, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarBC}
	for _, tc := range []struct {
		name string
		plan *spgemm.Plan
	}{
		{"forced-plan", &plan},
		{"auto-plan", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := graph.Grid2D(7, 7, 1, 5)
			wrng := rand.New(rand.NewSource(11))
			for i := range g.Edges {
				g.Edges[i].W = 1 + 29*wrng.Float64()
			}
			g.Weighted = true
			procs := 4
			fused, err := New(g, Config{Procs: procs, Plan: tc.plan, DirtyThreshold: -1, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := New(g, Config{Procs: procs, Plan: tc.plan, DirtyThreshold: -1, Workers: 1, NoFuse: true})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(29))
			shadow := g.Clone()
			sawFused := false
			for step := 0; step < 5; step++ {
				m := randomMutation(rng, shadow, true)
				if m.Op == graph.OpAddVertex {
					// Keep the stream on the fused-eligible (fixed vertex
					// set) steps; growth has its own fallback test.
					m = graph.Mutation{Op: graph.OpSetWeight, U: shadow.Edges[step].U, V: shadow.Edges[step].V, W: float64(2 + rng.Intn(7))}
				}
				if err := shadow.Apply(m); err != nil {
					t.Fatalf("step %d: shadow: %v", step, err)
				}
				rf, err := fused.Apply([]graph.Mutation{m})
				if err != nil {
					t.Fatalf("step %d: fused: %v", step, err)
				}
				rl, err := legacy.Apply([]graph.Mutation{m})
				if err != nil {
					t.Fatalf("step %d: two-region: %v", step, err)
				}
				if rl.Fused {
					t.Fatalf("step %d: NoFuse engine reported a fused apply", step)
				}
				sf, sl := fused.Snapshot(), legacy.Snapshot()
				if tc.plan != nil {
					for v := range sf.BC {
						if sf.BC[v] != sl.BC[v] {
							t.Fatalf("step %d: bc[%d] bit-diverged: fused %v vs two-region %v", step, v, sf.BC[v], sl.BC[v])
						}
					}
				} else {
					compareScores(t, "fused vs two-region", sf.BC, sl.BC)
				}
				compareScores(t, "fused vs from-scratch", sf.BC, fromScratch(t, shadow))
				if rf.Strategy == StrategyIncremental && rf.Affected > 0 {
					if !rf.Fused {
						t.Fatalf("step %d: incremental distributed apply did not fuse", step)
					}
					sawFused = true
					if rf.Comm.Msgs >= rl.Comm.Msgs {
						t.Fatalf("step %d: fused apply spent %d msgs, two-region %d — fusion must cut the latency term",
							step, rf.Comm.Msgs, rl.Comm.Msgs)
					}
				}
			}
			if !sawFused {
				t.Fatal("stream never exercised a fused incremental apply; differential is vacuous")
			}
			st := fused.Stats()
			if st.FusedApplies == 0 || st.TwoRegionApplies != 0 {
				t.Fatalf("fused engine counters wrong: %+v", st)
			}
			if lst := legacy.Stats(); lst.FusedApplies != 0 || lst.TwoRegionApplies == 0 {
				t.Fatalf("two-region engine counters wrong: %+v", lst)
			}
		})
	}
}

// TestFusedApplyReportsPhases: a fused apply's report carries the
// diff/patch/sweep/reduce attribution, and the snapshot exposes the latest
// breakdown.
func TestFusedApplyReportsPhases(t *testing.T) {
	g := graph.Grid2D(6, 6, 1, 7)
	e, err := New(g, Config{Procs: 4, DirtyThreshold: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eg := e.Snapshot().Graph
	rep, err := e.Apply([]graph.Mutation{{Op: graph.OpSetWeight, U: eg.Edges[0].U, V: eg.Edges[0].V, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fused {
		t.Fatalf("expected a fused apply, got %+v", rep)
	}
	names := map[string]bool{}
	var msgs, bytes, flops int64
	for _, ph := range rep.Phases {
		names[ph.Name] = true
		msgs += ph.Msgs
		bytes += ph.Bytes
		flops += ph.Flops
	}
	for _, want := range []string{"diff", "patch", "sweep", "reduce"} {
		if !names[want] {
			t.Fatalf("phase %q missing: %+v", want, rep.Phases)
		}
	}
	// Latency charges are uniform across ranks, so the phase message sums
	// reproduce the apply total exactly; bytes and flops are per-phase
	// critical-path maxima, which can only meet or exceed the single
	// end-to-end critical path.
	if msgs != rep.Comm.Msgs {
		t.Fatalf("phase msg sum %d != apply total %d", msgs, rep.Comm.Msgs)
	}
	if bytes < rep.Comm.Bytes || flops < rep.Comm.Flops {
		t.Fatalf("phase sums (W=%d F=%d) below apply totals %+v", bytes, flops, rep.Comm)
	}
	snap := e.Snapshot()
	if len(snap.Phases) != len(rep.Phases) {
		t.Fatalf("snapshot lost the phase breakdown: %+v", snap.Phases)
	}
}

// TestFusedFallsBackOnVertexGrowth: an AddVertex batch changes the operand
// dimensions, so the apply must take the legacy two-region path (session
// reset) and still produce correct scores.
func TestFusedFallsBackOnVertexGrowth(t *testing.T) {
	g := graph.Grid2D(5, 5, 1, 9)
	e, err := New(g, Config{Procs: 4, DirtyThreshold: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	shadow := e.Snapshot().Graph.Clone()
	batch := []graph.Mutation{
		{Op: graph.OpAddVertex},
		{Op: graph.OpAddEdge, U: 3, V: 25, W: 1},
	}
	if _, err := shadow.ApplyAll(batch); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fused {
		t.Fatal("vertex growth must not fuse")
	}
	compareScores(t, "growth apply", e.Snapshot().BC, fromScratch(t, shadow))
	if st := e.Stats(); st.TwoRegionApplies != 1 {
		t.Fatalf("growth apply not counted as two-region: %+v", st)
	}
}

// TestSampledErrBound: sampled applies must report a positive Hoeffding
// half-width that shrinks as the budget grows, and exact refreshes clear
// it.
func TestSampledErrBound(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 8, 3))
	small, err := New(g, Config{SampleBudget: 8, RefreshEvery: 4, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(g, Config{SampleBudget: 32, RefreshEvery: 4, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := graph.Mutation{Op: graph.OpAddEdge, U: 1, V: 2, W: 1}
	if _, ok := g.FindEdge(1, 2); ok {
		m = graph.Mutation{Op: graph.OpRemoveEdge, U: 1, V: 2}
	}
	rs, err := small.Apply([]graph.Mutation{m})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Apply([]graph.Mutation{m})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Strategy != StrategySampled || rb.Strategy != StrategySampled {
		t.Fatalf("expected sampled applies, got %q and %q", rs.Strategy, rb.Strategy)
	}
	if rs.ErrBound <= 0 || rb.ErrBound <= 0 {
		t.Fatalf("sampled applies must carry positive error bounds: %v, %v", rs.ErrBound, rb.ErrBound)
	}
	if rb.ErrBound >= rs.ErrBound {
		t.Fatalf("a larger budget must tighten the bound: k=8 → %v, k=32 → %v", rs.ErrBound, rb.ErrBound)
	}
	if snap := small.Snapshot(); snap.ErrBound != rs.ErrBound {
		t.Fatalf("snapshot bound %v != report bound %v", snap.ErrBound, rs.ErrBound)
	}
	// Drive the small engine to its exact refresh (every 4th apply).
	var last Report
	for i := 0; i < 3; i++ {
		mm := randomMutation(rand.New(rand.NewSource(int64(40+i))), small.Snapshot().Graph, false)
		if mm.Op == graph.OpAddVertex {
			mm = graph.Mutation{Op: graph.OpAddEdge, U: 0, V: int32(10 + i), W: 1}
			if _, ok := small.Snapshot().Graph.FindEdge(0, int32(10+i)); ok {
				mm = graph.Mutation{Op: graph.OpRemoveEdge, U: 0, V: int32(10 + i)}
			}
		}
		var err error
		last, err = small.Apply([]graph.Mutation{mm})
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Strategy != StrategyFull {
		t.Fatalf("4th apply should be the exact refresh, got %q", last.Strategy)
	}
	if last.ErrBound != 0 || small.Snapshot().ErrBound != 0 {
		t.Fatal("exact refresh must clear the error bound")
	}
}

// TestOperandCacheBoundEvicts: a CacheSets bound on a plan-forced stream
// that alternates decompositions must record evictions in the stats.
func TestOperandCacheBoundEvicts(t *testing.T) {
	g := graph.Grid2D(6, 6, 1, 13)
	e, err := New(g, Config{Procs: 4, DirtyThreshold: -1, Workers: 1, CacheSets: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Alternate forced plans is not expressible per apply; instead rely on
	// the automatic search across differently sized re-run batches plus
	// the full sweep to stage more than one (plan, dims) working set per
	// matrix. The bound of 1 then forces evictions on the second distinct
	// plan.
	shadow := e.Snapshot().Graph.Clone()
	rng := rand.New(rand.NewSource(31))
	for step := 0; step < 6; step++ {
		m := randomMutation(rng, shadow, true)
		if m.Op == graph.OpAddVertex {
			m = graph.Mutation{Op: graph.OpSetWeight, U: shadow.Edges[step].U, V: shadow.Edges[step].V, W: float64(2 + step)}
		}
		if err := shadow.Apply(m); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply([]graph.Mutation{m}); err != nil {
			t.Fatal(err)
		}
		compareScores(t, "bounded-cache stream", e.Snapshot().BC, fromScratch(t, shadow))
	}
	if st := e.Stats(); st.OperandEvictions == 0 {
		t.Fatalf("bounded cache never evicted on a multi-plan stream: %+v", st)
	}
}

// TestFusedNoopAndEmptyAffectedSkipRegions: a structural no-op batch (and
// any batch with no affected sources) must not launch a fused region on a
// distributed engine — no modeled communication, no fused flag, and the
// snapshot keeps the last real plan instead of a zero-value one.
func TestFusedNoopAndEmptyAffectedSkipRegions(t *testing.T) {
	g := graph.Grid2D(5, 5, 1, 3)
	e, err := New(g, Config{Procs: 4, DirtyThreshold: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	planBefore := e.Snapshot().Plan
	if planBefore == "" {
		t.Fatal("initial distributed compute must record a plan")
	}
	var u, v int32 = 0, 7
	if _, ok := g.FindEdge(u, v); ok {
		t.Fatal("test edge unexpectedly present")
	}
	rep, err := e.Apply([]graph.Mutation{
		{Op: graph.OpAddEdge, U: u, V: v, W: 1},
		{Op: graph.OpRemoveEdge, U: u, V: v}, // transient: effective diff empty
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fused {
		t.Fatalf("no-op batch reported fused: %+v", rep)
	}
	if rep.Comm.Runs != 0 || rep.Comm.Msgs != 0 {
		t.Fatalf("no-op batch ran a machine region: %+v", rep.Comm)
	}
	snap := e.Snapshot()
	if snap.Plan != planBefore {
		t.Fatalf("no-op apply clobbered the plan: %q -> %q", planBefore, snap.Plan)
	}
	if st := e.Stats(); st.FusedApplies != 0 {
		t.Fatalf("no-op batch counted as a fused apply: %+v", st)
	}
}
