// Single-source shortest paths with multiplicities: the MFBF phase
// (Algorithm 1) exposed as a standalone capability. The paper's conclusion
// notes that the monoid/frontier methodology extends beyond betweenness
// centrality; multi-source SSSP with path counting is its first half.
package core

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

// SSSPResult holds distances and shortest-path multiplicities from each
// source: Dist[s][v] = τ(sources[s], v) (+Inf when unreachable; 0 at the
// source itself) and Counts[s][v] = σ̄(sources[s], v).
type SSSPResult struct {
	Sources    []int32
	Dist       [][]float64
	Counts     [][]float64
	Iterations int
}

func newSSSPResult(sources []int32, n int) *SSSPResult {
	r := &SSSPResult{
		Sources: sources,
		Dist:    make([][]float64, len(sources)),
		Counts:  make([][]float64, len(sources)),
	}
	for s := range sources {
		r.Dist[s] = make([]float64, n)
		r.Counts[s] = make([]float64, n)
		for v := range r.Dist[s] {
			r.Dist[s][v] = math.Inf(1)
		}
		r.Dist[s][sources[s]] = 0
		r.Counts[s][sources[s]] = 1
	}
	return r
}

// SSSP computes shortest distances and multiplicities from the given
// sources with the sequential MFBF sweep.
func SSSP(g *graph.Graph, sources []int32) (*SSSPResult, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := checkSources(g.N, sources); err != nil {
		return nil, err
	}
	a := g.Adjacency()
	t, _, iters := MFBF(a, sources)
	res := newSSSPResult(sources, g.N)
	res.Iterations = iters
	for s := 0; s < t.Rows; s++ {
		cols, vals := t.Row(s)
		for k, v := range cols {
			res.Dist[s][v] = vals[k].W
			res.Counts[s][v] = vals[k].M
		}
	}
	return res, nil
}

// SSSPDistributed runs the same sweep on the simulated machine, gathering
// the result at every rank.
func SSSPDistributed(g *graph.Graph, sources []int32, opt DistOptions) (*SSSPResult, machine.RunStats, error) {
	var stats machine.RunStats
	if err := g.Validate(); err != nil {
		return nil, stats, fmt.Errorf("core: %w", err)
	}
	if err := checkSources(g.N, sources); err != nil {
		return nil, stats, err
	}
	p := opt.Procs
	if p < 1 {
		p = 1
	}
	mach := transportFor(p, opt)
	pl := planner{
		p: p, n: g.N, adjNNZ: int64(g.AdjacencyNNZ()),
		model: mach.Model(), cons: opt.Constraint, forced: opt.Plan,
	}
	adjCSR := g.Adjacency()
	adjCOO := adjCSR.ToCOO()
	trop := algebra.TropicalMonoid()
	mp := algebra.MultPathMonoid()

	res := newSSSPResult(sources, g.N)
	var gathered *sparse.CSR[algebra.MultPath]
	itersPer := make([]int, p)
	stats, err := mach.Run(func(proc *machine.Proc) {
		sess := spgemm.NewSession(proc)
		sess.Workers = opt.Workers
		shard := distmat.DistShard(p)
		aMat := distmat.FromGlobal(proc.Rank(), adjCOO, shard, trop)
		t, iters := distMFBF(sess, pl, aMat, adjCSR, sources, shard)
		itersPer[proc.Rank()] = iters
		full := distmat.Gather(proc.World(), t, mp)
		if proc.Rank() == 0 {
			gathered = full
		}
	})
	if err != nil {
		return nil, stats, err
	}
	res.Iterations = itersPer[0]
	for s := 0; s < gathered.Rows; s++ {
		cols, vals := gathered.Row(s)
		for k, v := range cols {
			res.Dist[s][v] = vals[k].W
			res.Counts[s][v] = vals[k].M
		}
	}
	return res, stats, nil
}

func checkSources(n int, sources []int32) error {
	if len(sources) == 0 {
		return fmt.Errorf("core: no sources given")
	}
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("core: source %d outside [0,%d)", s, n)
		}
	}
	return nil
}
