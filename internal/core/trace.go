package core

import (
	"context"

	"repro/internal/machine"
	"repro/internal/obs"
)

// recordRegionSpan attaches one finished "machine.region" span (with a
// child span per attributed phase) to the trace carried by ctx, pairing
// the region's modeled α-β-γ cost with its measured wall-clock. It is
// post-hoc by design: core never reads a wall clock itself — the machine
// layer measured the durations, obs lays the spans out — so the
// deterministic core stays free of time sources and tracing costs one nil
// check when disabled.
func recordRegionSpan(ctx context.Context, region string, procs int, st machine.RunStats) {
	parent := obs.SpanFromContext(ctx)
	if parent == nil {
		return
	}
	span := parent.AddCompleted("machine.region", st.Wall, map[string]any{
		"region":    region,
		"procs":     procs,
		"bytes":     st.MaxCost.Bytes,
		"msgs":      st.MaxCost.Msgs,
		"flops":     st.MaxCost.Flops,
		"model_sec": st.ModelSec,
		"comm_sec":  st.CommSec,
		"wall_ms":   float64(st.Wall.Microseconds()) / 1e3,
	})
	for _, ph := range st.Phases {
		label, _ := obs.PhaseLabel(ph.Name)
		span.AddCompleted("phase."+label, ph.Wall, map[string]any{
			"bytes":     ph.MaxCost.Bytes,
			"msgs":      ph.MaxCost.Msgs,
			"flops":     ph.MaxCost.Flops,
			"model_sec": ph.ModelSec,
			"comm_sec":  ph.CommSec,
			"wall_ms":   float64(ph.Wall.Microseconds()) / 1e3,
		})
	}
}
