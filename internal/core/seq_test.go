package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
)

func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

func checkAgainstBrandes(t *testing.T, g *graph.Graph, batch int) {
	t.Helper()
	want := baseline.Brandes(g)
	got, err := MFBC(g, Options{Batch: batch})
	if err != nil {
		t.Fatalf("%s: MFBC failed: %v", g.Name, err)
	}
	for v := range want {
		if !almostEqual(got.BC[v], want[v]) {
			t.Fatalf("%s (batch=%d): BC[%d] = %g, Brandes says %g", g.Name, batch, v, got.BC[v], want[v])
		}
	}
}

func TestMFBCPath(t *testing.T) {
	g := graph.Path(10)
	checkAgainstBrandes(t, g, 0)
	// Closed form: interior vertex i of a path lies on all s<i<t pairs.
	got, _ := MFBC(g, Options{})
	for i := 1; i < 9; i++ {
		want := float64(2 * i * (9 - i))
		if !almostEqual(got.BC[i], want) {
			t.Fatalf("path BC[%d] = %g, want %g", i, got.BC[i], want)
		}
	}
}

func TestMFBCStar(t *testing.T) {
	g := graph.Star(12)
	checkAgainstBrandes(t, g, 5)
	got, _ := MFBC(g, Options{})
	if want := float64(11 * 10); !almostEqual(got.BC[0], want) {
		t.Fatalf("star hub BC = %g, want %g", got.BC[0], want)
	}
	for i := 1; i < 12; i++ {
		if got.BC[i] != 0 {
			t.Fatalf("star spoke %d has BC %g, want 0", i, got.BC[i])
		}
	}
}

func TestMFBCRing(t *testing.T) {
	for _, n := range []int{4, 5, 8, 9} {
		checkAgainstBrandes(t, graph.Ring(n), 3)
	}
}

func TestMFBCBinaryTree(t *testing.T) {
	checkAgainstBrandes(t, graph.CompleteBinaryTree(4), 0)
}

func TestMFBCWeightedGrid(t *testing.T) {
	g := graph.Grid2D(5, 6, 9, 42)
	checkAgainstBrandes(t, g, 7)
}

func TestMFBCUnweightedGrid(t *testing.T) {
	checkAgainstBrandes(t, graph.Grid2D(6, 5, 1, 1), 0)
}

func TestMFBCRMATUndirected(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(7, 8, 7))
	checkAgainstBrandes(t, g, 32)
}

func TestMFBCRMATDirected(t *testing.T) {
	opt := graph.DefaultRMAT(7, 6, 11)
	opt.Directed = true
	g := graph.RMAT(opt)
	checkAgainstBrandes(t, g, 32)
}

func TestMFBCRMATWeighted(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 8, 13))
	g.AddUniformWeights(1, 100, 99)
	checkAgainstBrandes(t, g, 16)
}

func TestMFBCDirectedWeighted(t *testing.T) {
	opt := graph.DefaultRMAT(6, 5, 17)
	opt.Directed = true
	g := graph.RMAT(opt)
	g.AddUniformWeights(1, 10, 5)
	checkAgainstBrandes(t, g, 16)
}

func TestMFBCUniformRandom(t *testing.T) {
	g := graph.Uniform(80, 400, false, 3)
	checkAgainstBrandes(t, g, 0)
	gd := graph.Uniform(80, 500, true, 4)
	checkAgainstBrandes(t, gd, 0)
}

// TestMFBCEqualWeightTies stresses the multiplicity-tie handling: many
// equal-weight parallel routes.
func TestMFBCEqualWeightTies(t *testing.T) {
	// Layered lattice: every vertex in layer l connects to every vertex in
	// layer l+1, so multiplicities multiply and ties abound.
	layers, width := 5, 4
	g := &graph.Graph{Name: "lattice", N: layers * width}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.Edges = append(g.Edges, graph.Edge{U: int32(l*width + i), V: int32((l+1)*width + j), W: 1})
			}
		}
	}
	checkAgainstBrandes(t, g, 6)
}

// TestMFBCWeightedTies uses small integer weights so that distinct edge
// counts produce equal path weights, exercising the multi-visit frontier
// behaviour unique to weighted MFBC.
func TestMFBCWeightedTies(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := graph.Uniform(30, 90, trial%2 == 0, int64(trial))
		for i := range g.Edges {
			g.Edges[i].W = float64(1 + rng.Intn(3))
		}
		g.Weighted = true
		checkAgainstBrandes(t, g, 8)
	}
}

// TestMFBCBatchInvariance verifies Algorithm 3's batching is exact: any n_b
// partitions the same total.
func TestMFBCBatchInvariance(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 6, 21))
	ref, err := MFBC(g, Options{Batch: g.N})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 3, 7, 32} {
		got, err := MFBC(g, Options{Batch: b})
		if err != nil {
			t.Fatal(err)
		}
		for v := range ref.BC {
			if !almostEqual(got.BC[v], ref.BC[v]) {
				t.Fatalf("batch=%d: BC[%d]=%g, want %g", b, v, got.BC[v], ref.BC[v])
			}
		}
	}
}

// TestMFBCPermutationEquivariance: relabeling vertices permutes scores.
func TestMFBCPermutationEquivariance(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 7, 31))
	res, err := MFBC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int32, g.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	h := &graph.Graph{Name: "permuted", N: g.N, Directed: g.Directed, Weighted: g.Weighted}
	h.Edges = append(h.Edges, g.Edges...)
	h.Permute(perm)
	res2, err := MFBC(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.BC {
		if !almostEqual(res.BC[v], res2.BC[perm[v]]) {
			t.Fatalf("permutation broke equivariance at %d: %g vs %g", v, res.BC[v], res2.BC[perm[v]])
		}
	}
}

// TestMFBCRandomized is the broad randomized oracle sweep across the
// directed × weighted grid.
func TestMFBCRandomized(t *testing.T) {
	for trial := 0; trial < 24; trial++ {
		directed := trial%2 == 0
		weighted := (trial/2)%2 == 0
		n := 20 + trial*3
		m := n * (2 + trial%4)
		g := graph.Uniform(n, m, directed, int64(100+trial))
		if weighted {
			g.AddUniformWeights(1, 7, int64(trial))
		}
		checkAgainstBrandes(t, g, 1+trial%9)
	}
}

func TestMFBCDisconnected(t *testing.T) {
	// Two components; unreachable pairs contribute nothing.
	g := &graph.Graph{Name: "twocomp", N: 8}
	g.Edges = []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
		{U: 4, V: 5, W: 1}, {U: 5, V: 6, W: 1}, {U: 6, V: 7, W: 1},
	}
	checkAgainstBrandes(t, g, 3)
}

func TestMFBCEmptyAndTiny(t *testing.T) {
	empty := &graph.Graph{Name: "empty", N: 3}
	res, err := MFBC(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.BC {
		if v != 0 {
			t.Fatal("empty graph must have zero BC")
		}
	}
	single := graph.Path(2)
	res, err = MFBC(single, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BC[0] != 0 || res.BC[1] != 0 {
		t.Fatal("K2 must have zero BC")
	}
}

func TestMFBCRejectsBadWeights(t *testing.T) {
	g := &graph.Graph{Name: "bad", N: 2, Weighted: true}
	g.Edges = []graph.Edge{{U: 0, V: 1, W: 0}}
	if _, err := MFBC(g, Options{}); err == nil {
		t.Fatal("zero-weight edge must be rejected")
	}
	g.Edges = []graph.Edge{{U: 0, V: 1, W: -2}}
	if _, err := MFBC(g, Options{}); err == nil {
		t.Fatal("negative-weight edge must be rejected")
	}
}

func TestCombBLASStyleOracle(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := graph.Uniform(40+5*trial, 160+20*trial, trial%2 == 0, int64(trial+7))
		want := baseline.Brandes(g)
		got, err := baseline.CombBLASStyle(g, 1+trial*5)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if !almostEqual(got[v], want[v]) {
				t.Fatalf("combblas %s: BC[%d]=%g want %g", g.Name, v, got[v], want[v])
			}
		}
	}
	if _, err := baseline.CombBLASStyle(&graph.Graph{N: 2, Weighted: true, Edges: []graph.Edge{{U: 0, V: 1, W: 2}}}, 0); err == nil {
		t.Fatal("combblas-style must reject weighted graphs")
	}
}
