package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomTree builds a uniformly random labelled tree (attach each new
// vertex to a uniformly random earlier one).
func randomTree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &graph.Graph{Name: "randtree", N: n}
	for v := 1; v < n; v++ {
		u := int32(rng.Intn(v))
		w := int32(v)
		if u > w {
			u, w = w, u
		}
		g.Edges = append(g.Edges, graph.Edge{U: u, V: w, W: 1})
	}
	return g
}

// TestTreeSumIdentity: on a tree every pair (s,t) has exactly one shortest
// path, so Σ_v λ(v) = Σ_{s≠t} (hops(s,t) − 1): each ordered pair
// contributes one unit per interior vertex.
func TestTreeSumIdentity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomTree(60, seed)
		res, err := MFBC(g, Options{Batch: 13})
		if err != nil {
			t.Fatal(err)
		}
		var sumBC float64
		for _, x := range res.BC {
			sumBC += x
		}
		adj, _ := g.OutAdjacencyLists()
		var want float64
		for s := 0; s < g.N; s++ {
			dist := graph.BFSDistances(adj, int32(s))
			for _, d := range dist {
				if d > 1 {
					want += float64(d - 1)
				}
			}
		}
		if !almostEqual(sumBC, want) {
			t.Fatalf("seed %d: Σλ = %g, path-length identity says %g", seed, sumBC, want)
		}
	}
}

// TestTreeLeavesZero: leaves of a tree lie on no shortest path interior.
func TestTreeLeavesZero(t *testing.T) {
	g := randomTree(80, 9)
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	res, err := MFBC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range deg {
		if d == 1 && res.BC[v] != 0 {
			t.Fatalf("leaf %d has BC %g", v, res.BC[v])
		}
	}
}

// TestWeightIndifferenceOnTrees: on a tree the shortest-path structure is
// weight-independent (paths are unique), so BC must not change when random
// positive weights are added.
func TestWeightIndifferenceOnTrees(t *testing.T) {
	g := randomTree(50, 11)
	plain, err := MFBC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.AddUniformWeights(1, 50, 13)
	weighted, err := MFBC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.BC {
		if !almostEqual(plain.BC[v], weighted.BC[v]) {
			t.Fatalf("weights changed tree BC at %d: %g vs %g", v, plain.BC[v], weighted.BC[v])
		}
	}
}

// TestScaledWeightsInvariance: multiplying all weights by a constant leaves
// BC unchanged on any graph.
func TestScaledWeightsInvariance(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 6, 17))
	g.AddUniformWeights(1, 20, 3)
	base, err := MFBC(g, Options{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Edges {
		g.Edges[i].W *= 3.5
	}
	scaled, err := MFBC(g, Options{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.BC {
		if !almostEqual(base.BC[v], scaled.BC[v]) {
			t.Fatalf("weight scaling changed BC at %d", v)
		}
	}
}

// TestSymmetryOfVertexTransitiveGraphs: every vertex of a ring has equal
// centrality.
func TestSymmetryOfVertexTransitiveGraphs(t *testing.T) {
	g := graph.Ring(17)
	res, err := MFBC(g, Options{Batch: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if !almostEqual(res.BC[v], res.BC[0]) {
			t.Fatalf("ring BC not uniform: BC[%d]=%g BC[0]=%g", v, res.BC[v], res.BC[0])
		}
	}
}

// TestIterationCountsMatchDiameter: unweighted MFBF takes at most
// diameter+1 relaxation rounds per batch; weighted runs take at least as
// many as unweighted (the paper's §7.2 slowdown mechanism).
func TestIterationCountsMatchDiameter(t *testing.T) {
	g := graph.Path(20) // diameter 19
	a := g.Adjacency()
	sources := []int32{0}
	_, _, iters := MFBF(a, sources)
	if iters != 19 {
		t.Fatalf("path MFBF took %d rounds, want 19", iters)
	}
	rmat := graph.RMAT(graph.DefaultRMAT(7, 8, 21))
	au := rmat.Adjacency()
	srcs := []int32{0, 1, 2, 3}
	_, _, unweightedIters := MFBF(au, srcs)
	rmat.AddUniformWeights(1, 100, 5)
	aw := rmat.Adjacency()
	_, _, weightedIters := MFBF(aw, srcs)
	if weightedIters < unweightedIters {
		t.Fatalf("weighted MFBF took fewer rounds (%d) than unweighted (%d)", weightedIters, unweightedIters)
	}
}
