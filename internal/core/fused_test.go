package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/spgemm"
)

// fusedTestSetup builds a weighted mesh, a small mutation batch applied to
// a clone, the effective diff, and a plausible affected-source set (here:
// every vertex, unless narrow asks for a small set) — the raw ingredients
// of an incremental apply, independent of internal/dynamic.
func fusedTestSetup(t *testing.T, narrow bool) (g, g2 *graph.Graph, diffs []EdgeDiff, sources []int32) {
	t.Helper()
	g = graph.Grid2D(7, 7, 1, 3)
	for i := range g.Edges {
		g.Edges[i].W = 1 + float64((i*7)%13)/3
	}
	g.Weighted = true
	g2 = g.Clone()
	muts := []graph.Mutation{
		{Op: graph.OpSetWeight, U: g.Edges[3].U, V: g.Edges[3].V, W: g.Edges[3].W * 1.5},
		{Op: graph.OpRemoveEdge, U: g.Edges[20].U, V: g.Edges[20].V},
		{Op: graph.OpAddEdge, U: 0, V: 12, W: 2.5},
	}
	if _, err := g2.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		w, ok := g2.FindEdge(m.U, m.V)
		diffs = append(diffs, EdgeDiff{U: m.U, V: m.V, W: w, Present: ok})
	}
	if narrow {
		sources = []int32{0, 3, 11, 12, 25, 40}
	} else {
		for v := 0; v < g.N; v++ {
			sources = append(sources, int32(v))
		}
	}
	return g, g2, diffs, sources
}

// runTwoRegion replays the PR 4 path on a fresh session: warm one-shot run,
// old-side region, host patch, new-side region. Returns the side results.
func runTwoRegion(t *testing.T, g, g2 *graph.Graph, diffs []EdgeDiff, sources []int32, opt DistOptions) (oldR, newR *DistResult) {
	t.Helper()
	sess, err := NewDistSession(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(nil); err != nil {
		t.Fatal(err)
	}
	oldR, err = sess.Run(sources)
	if err != nil {
		t.Fatal(err)
	}
	sess.Patch(g2, nil, diffs)
	newR, err = sess.Run(sources)
	if err != nil {
		t.Fatal(err)
	}
	return oldR, newR
}

// TestFusedApplyMatchesTwoRegion: under a forced plan the fused region's
// old- and new-side partials must be bit-identical to the two separate
// scalar regions, while spending strictly fewer critical-path messages.
func TestFusedApplyMatchesTwoRegion(t *testing.T) {
	g, g2, diffs, sources := fusedTestSetup(t, false)
	plans := []spgemm.Plan{
		{P1: 4, P2: 1, P3: 1, X: spgemm.RoleB, YZ: spgemm.VarAB}, // 1D
		{P1: 1, P2: 2, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarAB}, // 2D SUMMA
		{P1: 1, P2: 2, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarBC}, // 2D, adjacency stationary
		{P1: 2, P2: 2, P3: 2, X: spgemm.RoleB, YZ: spgemm.VarAC}, // Theorem 5.1 3D layout
		{P1: 2, P2: 2, P3: 2, X: spgemm.RoleC, YZ: spgemm.VarAB}, // k-split layers
	}
	for _, plan := range plans {
		plan := plan
		t.Run(plan.String(), func(t *testing.T) {
			opt := DistOptions{Procs: plan.Procs(), Batch: 16, Plan: &plan}
			oldR, newR := runTwoRegion(t, g, g2, diffs, sources, opt)

			sess, err := NewDistSession(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(nil); err != nil {
				t.Fatal(err)
			}
			fused, err := sess.ApplyIncremental(sources, g2, nil, diffs, sources)
			if err != nil {
				t.Fatal(err)
			}
			for v := range fused.OldBC {
				if fused.OldBC[v] != oldR.BC[v] {
					t.Fatalf("old side BC[%d]: fused %v, two-region %v (must be bit-identical)", v, fused.OldBC[v], oldR.BC[v])
				}
				if fused.NewBC[v] != newR.BC[v] {
					t.Fatalf("new side BC[%d]: fused %v, two-region %v (must be bit-identical)", v, fused.NewBC[v], newR.BC[v])
				}
			}
			twoRegionMsgs := oldR.Stats.MaxCost.Msgs + newR.Stats.MaxCost.Msgs
			if fused.Stats.MaxCost.Msgs >= twoRegionMsgs {
				t.Fatalf("fused apply must pay fewer messages: fused %d, two-region %d",
					fused.Stats.MaxCost.Msgs, twoRegionMsgs)
			}
			// After the fused apply the resident operands must encode g2
			// exactly as the patched two-region session does: a full run on
			// each yields bit-identical scores.
			full, err := sess.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := MFBCDistributed(g2, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range full.BC {
				if full.BC[v] != fresh.BC[v] {
					t.Fatalf("post-apply session diverges from fresh session at BC[%d]: %v vs %v", v, full.BC[v], fresh.BC[v])
				}
			}
		})
	}
}

// TestFusedApplyMatchesTwoRegionAutoPlan: under automatic plan search the
// fused region plans every multiplication per side from that side's own
// frontier counts, so its results must be bit-identical to the scalar
// two-region path — exactly as under forced plans.
func TestFusedApplyMatchesTwoRegionAutoPlan(t *testing.T) {
	g, g2, diffs, sources := fusedTestSetup(t, false)
	for _, p := range []int{2, 4, 8} {
		opt := DistOptions{Procs: p, Batch: 16}
		oldR, newR := runTwoRegion(t, g, g2, diffs, sources, opt)
		sess, err := NewDistSession(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(nil); err != nil {
			t.Fatal(err)
		}
		fused, err := sess.ApplyIncremental(sources, g2, nil, diffs, sources)
		if err != nil {
			t.Fatal(err)
		}
		for v := range fused.OldBC {
			if fused.OldBC[v] != oldR.BC[v] {
				t.Fatalf("p=%d old side BC[%d]: fused %v, two-region %v (must be bit-identical)", p, v, fused.OldBC[v], oldR.BC[v])
			}
			if fused.NewBC[v] != newR.BC[v] {
				t.Fatalf("p=%d new side BC[%d]: fused %v, two-region %v (must be bit-identical)", p, v, fused.NewBC[v], newR.BC[v])
			}
		}
	}
}

// TestFusedApplyAutoPlanDivergence drives an edit so asymmetric (a large
// fraction of the edges deleted) that the two sides' automatic plan
// searches disagree on at least one iteration, forcing the fused sweep
// through its dual-product path — and the results must STILL be
// bit-identical to the two scalar regions.
func TestFusedApplyAutoPlanDivergence(t *testing.T) {
	g := graph.Grid2D(9, 9, 1, 5)
	for i := range g.Edges {
		g.Edges[i].W = 1 + float64((i*11)%17)/4
	}
	g.Weighted = true
	g2 := g.Clone()
	var muts []graph.Mutation
	// Delete every third edge: the new side is far sparser than the old, so
	// its frontiers (and adjacency counts) feed the planner very different
	// problem sizes.
	for i := 0; i < len(g.Edges); i += 3 {
		muts = append(muts, graph.Mutation{Op: graph.OpRemoveEdge, U: g.Edges[i].U, V: g.Edges[i].V})
	}
	if _, err := g2.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	var diffs []EdgeDiff
	for _, m := range muts {
		w, ok := g2.FindEdge(m.U, m.V)
		diffs = append(diffs, EdgeDiff{U: m.U, V: m.V, W: w, Present: ok})
	}
	var sources []int32
	for v := 0; v < g.N; v++ {
		sources = append(sources, int32(v))
	}

	divergedSomewhere := false
	for _, p := range []int{4, 8} {
		opt := DistOptions{Procs: p, Batch: 16}
		oldR, newR := runTwoRegion(t, g, g2, diffs, sources, opt)
		sess, err := NewDistSession(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(nil); err != nil {
			t.Fatal(err)
		}
		before := fusedDualProducts.Load()
		fused, err := sess.ApplyIncremental(sources, g2, nil, diffs, sources)
		if err != nil {
			t.Fatal(err)
		}
		if fusedDualProducts.Load() > before {
			divergedSomewhere = true
		}
		for v := range fused.OldBC {
			if fused.OldBC[v] != oldR.BC[v] {
				t.Fatalf("p=%d old side BC[%d]: fused %v, two-region %v (must be bit-identical)", p, v, fused.OldBC[v], oldR.BC[v])
			}
			if fused.NewBC[v] != newR.BC[v] {
				t.Fatalf("p=%d new side BC[%d]: fused %v, two-region %v (must be bit-identical)", p, v, fused.NewBC[v], newR.BC[v])
			}
		}
	}
	if !divergedSomewhere {
		t.Fatal("scenario never diverged the per-side plans; the dual-product path went unexercised")
	}
}

// TestFusedApplyLatencyWithinOneShot pins the acceptance bound: on a
// small-diff apply the fused region's latency term (critical-path
// messages) stays within 1.25× of a single one-shot region sweeping the
// same sources under the same plan — versus the ~2× the two-region path
// pays.
func TestFusedApplyLatencyWithinOneShot(t *testing.T) {
	g, g2, diffs, sources := fusedTestSetup(t, true)
	plan := spgemm.Plan{P1: 1, P2: 2, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarBC}
	opt := DistOptions{Procs: plan.Procs(), Batch: 16, Plan: &plan}

	// The two-region reference: its new-side region is exactly "a single
	// one-shot region of the same plan" over the same source set.
	oldR, newR := runTwoRegion(t, g, g2, diffs, sources, opt)
	oneShot := newR.Stats.MaxCost.Msgs
	twoRegion := oldR.Stats.MaxCost.Msgs + newR.Stats.MaxCost.Msgs

	sess, err := NewDistSession(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(nil); err != nil {
		t.Fatal(err)
	}
	fused, err := sess.ApplyIncremental(sources, g2, nil, diffs, sources)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Stats.MaxCost.Msgs > oneShot+oneShot/4 {
		t.Fatalf("fused apply S = %d msgs exceeds 1.25× the one-shot region's %d", fused.Stats.MaxCost.Msgs, oneShot)
	}
	if twoRegion < oneShot+oneShot/2 {
		t.Fatalf("two-region reference unexpectedly cheap (%d msgs vs one-shot %d); the comparison is vacuous", twoRegion, oneShot)
	}
	if fused.Stats.MaxCost.Msgs >= twoRegion {
		t.Fatalf("fused %d msgs not below two-region %d", fused.Stats.MaxCost.Msgs, twoRegion)
	}
}

// TestFusedApplyPhases: the fused region must attribute its cost to the
// diff/patch/sweep/reduce phases, summing per processor to the run total,
// with the diff scatter charged as communication and the splice as flops.
func TestFusedApplyPhases(t *testing.T) {
	g, g2, diffs, sources := fusedTestSetup(t, true)
	opt := DistOptions{Procs: 4, Batch: 16}
	sess, err := NewDistSession(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(nil); err != nil {
		t.Fatal(err)
	}
	fused, err := sess.ApplyIncremental(sources, g2, nil, diffs, sources)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]machine.PhaseStats{}
	for _, ph := range fused.Stats.Phases {
		got[ph.Name] = ph
	}
	for _, name := range []string{"diff", "patch", "sweep", "reduce"} {
		if _, ok := got[name]; !ok {
			t.Fatalf("phase %q missing from %+v", name, fused.Stats.Phases)
		}
	}
	if got["diff"].MaxCost.Msgs == 0 {
		t.Fatal("diff scatter must charge latency")
	}
	if got["patch"].MaxCost.Flops == 0 {
		t.Fatal("operand splice must charge flops")
	}
	if got["sweep"].MaxCost.Msgs == 0 || got["reduce"].MaxCost.Msgs == 0 {
		t.Fatal("sweep and reduce phases must charge communication")
	}
	for r, total := range fused.Stats.PerProc {
		var sum machine.Cost
		for _, ph := range fused.Stats.Phases {
			sum = sum.Add(ph.PerProc[r])
		}
		if sum != total {
			t.Fatalf("rank %d: phase sum %v != region total %v", r, sum, total)
		}
	}
}

// TestFusedApplyVertexGrowthRejected: a vertex-set change must be refused
// (callers fall back to Reset + two-region).
func TestFusedApplyVertexGrowthRejected(t *testing.T) {
	g, _, _, _ := fusedTestSetup(t, true)
	sess, err := NewDistSession(g, DistOptions{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	if err := g2.Apply(graph.Mutation{Op: graph.OpAddVertex}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyIncremental(nil, g2, nil, nil, nil); err == nil {
		t.Fatal("vertex growth must be rejected by the fused path")
	}
}
