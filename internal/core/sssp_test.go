package core

import (
	"container/heap"
	"math"
	"testing"

	"repro/internal/graph"
)

// refDijkstra computes reference distances and multiplicities.
func refDijkstra(g *graph.Graph, src int32) ([]float64, []float64) {
	adj, wts := g.OutAdjacencyLists()
	n := g.N
	dist := make([]float64, n)
	sigma := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	sigma[src] = 1
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if done[it.v] || it.d != dist[it.v] {
			continue
		}
		done[it.v] = true
		for k, u := range adj[it.v] {
			nd := it.d + wts[it.v][k]
			if nd < dist[u] {
				dist[u] = nd
				sigma[u] = sigma[it.v]
				heap.Push(pq, distItem{u, nd})
			} else if nd == dist[u] && !done[u] {
				sigma[u] += sigma[it.v]
			}
		}
	}
	return dist, sigma
}

type distItem struct {
	v int32
	d float64
}
type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

func checkSSSP(t *testing.T, g *graph.Graph, res *SSSPResult) {
	t.Helper()
	for s, src := range res.Sources {
		wantD, wantS := refDijkstra(g, src)
		for v := 0; v < g.N; v++ {
			if math.IsInf(wantD[v], 1) != math.IsInf(res.Dist[s][v], 1) {
				t.Fatalf("%s: reachability mismatch at (%d,%d)", g.Name, src, v)
			}
			if !math.IsInf(wantD[v], 1) && wantD[v] != res.Dist[s][v] {
				t.Fatalf("%s: dist(%d,%d)=%g want %g", g.Name, src, v, res.Dist[s][v], wantD[v])
			}
			if wantS[v] != res.Counts[s][v] && !(v == int(src)) {
				t.Fatalf("%s: count(%d,%d)=%g want %g", g.Name, src, v, res.Counts[s][v], wantS[v])
			}
		}
	}
}

func TestSSSPSequential(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.RMAT(graph.DefaultRMAT(7, 6, 3)),
		graph.Grid2D(6, 7, 9, 4),
		graph.Uniform(90, 400, true, 5),
	} {
		res, err := SSSP(g, []int32{0, 3, int32(g.N - 1)})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		checkSSSP(t, g, res)
		if res.Iterations == 0 {
			t.Fatalf("%s: no iterations recorded", g.Name)
		}
	}
}

func TestSSSPDistributed(t *testing.T) {
	g := graph.Grid2D(7, 7, 5, 8)
	for _, p := range []int{1, 4, 6} {
		res, stats, err := SSSPDistributed(g, []int32{1, 10, 25}, DistOptions{Procs: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkSSSP(t, g, res)
		if p > 1 && stats.MaxCost.Bytes == 0 {
			t.Fatalf("p=%d: no communication charged", p)
		}
	}
}

func TestSSSPValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := SSSP(g, nil); err == nil {
		t.Fatal("no sources must fail")
	}
	if _, err := SSSP(g, []int32{99}); err == nil {
		t.Fatal("out-of-range source must fail")
	}
}
