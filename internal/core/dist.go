// Distributed MFBC: the sequential algorithms of seq.go re-expressed over
// distributed matrices, with every frontier relaxation executed as a
// communication-efficient generalized sparse matrix multiplication
// (internal/spgemm) on the simulated machine. The adjacency matrix and its
// transpose are stationary cached operands, so their placement (including
// 3D fiber replication) is paid once per run and amortized, as in the proof
// of Theorem 5.1.
package core

import (
	"time"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/machine/sim"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

// DistOptions configures a distributed MFBC run.
type DistOptions struct {
	Procs      int                // processor count (p); with a Transport it must match Transport.Size()
	Workers    int                // per-rank local-kernel parallelism; 0 = fair share of host cores across local ranks, 1 = sequential
	Batch      int                // n_b; ≤0 selects min(n, 128)
	Sources    []int32            // when non-nil, process only this single batch (benchmark mode); BC holds the partial contribution Σ_{s∈Sources} δ(s,·)
	Plan       *spgemm.Plan       // force a decomposition; nil = automatic search
	Constraint spgemm.Constraint  // restrict the automatic search (ablations)
	Model      *machine.CostModel // override the α–β–γ constants
	Timeout    int                // seconds per collective watchdog; 0 = default
	CacheSets  int                // per-rank stationary-cache bound in working sets per matrix; ≤ 0 = unbounded
	// Transport pins every region of this run/session to an external
	// machine backend (e.g. a tcpnet rank mesh) instead of a fresh
	// simulated machine per region. The caller owns its lifecycle; Model
	// and Timeout overrides are applied to it when set.
	Transport machine.Transport
}

// transportFor returns the machine backend for a region: the persistent
// externally-managed transport when one is configured (rank-per-process
// deployments), else a fresh simulated machine of p ranks.
func transportFor(p int, opt DistOptions) machine.Transport {
	tr := opt.Transport
	if tr == nil {
		tr = sim.New(p)
	}
	if opt.Model != nil {
		tr.SetModel(*opt.Model)
	}
	if opt.Timeout > 0 {
		tr.SetTimeout(time.Duration(opt.Timeout) * time.Second)
	}
	return tr
}

// DistResult is the outcome of a distributed run.
type DistResult struct {
	BC         []float64
	Plan       spgemm.Plan
	Stats      machine.RunStats
	Iterations int
	Batches    int
}

// multpathBytes and centpathBytes are the wire sizes used for plan costing.
const (
	multpathBytes = 24 // Entry[MultPath]: 2×int32 + float64 + float64
	centpathBytes = 32 // Entry[CentPath]: 2×int32 + float64 + float64 + int64
	weightBytes   = 16 // Entry[float64]
)

// ChoosePlan runs the automatic decomposition search for an MFBC frontier
// multiplication on graph g with p processors and batch nb.
func ChoosePlan(g *graph.Graph, p, nb int, model machine.CostModel, cons spgemm.Constraint) spgemm.Plan {
	nnzAdj := int64(g.AdjacencyNNZ())
	avgDeg := g.AvgDegree()
	pl := planner{
		p: p, n: g.N, adjNNZ: nnzAdj, model: model, cons: cons,
	}
	return pl.planFor(nb, int64(float64(nb)*avgDeg), multpathBytes)
}

// planner mirrors CTF's mapping framework: every multiplication is planned
// individually from the runtime nonzero counts of its operands (§6.2 "for
// each operation, CTF seeks an optimal processor grid"). A forced plan or a
// search constraint applies to all operations. Selection is a pure function
// of globally agreed values, so all processors pick the same plan.
type planner struct {
	p      int
	n      int
	adjNNZ int64
	model  machine.CostModel
	cons   spgemm.Constraint
	forced *spgemm.Plan
}

func (pl planner) planFor(rows int, nnzA int64, bytesA int64) spgemm.Plan {
	if pl.forced != nil {
		return *pl.forced
	}
	pr := spgemm.Problem{
		M: rows, K: pl.n, N: pl.n,
		NNZA:   nnzA,
		NNZB:   pl.adjNNZ,
		BytesA: bytesA,
		BytesB: weightBytes,
		BytesC: bytesA,
	}
	return spgemm.Search(pl.p, pr, pl.model, pl.cons)
}

// MFBCDistributed computes betweenness centrality on the simulated
// distributed machine. It is the one-shot form of a DistSession: operands
// are built, staged, and discarded with the run. Explicit opt.Sources are
// processed as a single batch (benchmark mode); streaming callers that
// want cross-run operand reuse hold a DistSession instead (dyndist.go).
func MFBCDistributed(g *graph.Graph, opt DistOptions) (*DistResult, error) {
	s, err := NewDistSession(g, opt)
	if err != nil {
		return nil, err
	}
	nb := Options{Batch: opt.Batch}.batchFor(g.N)
	if opt.Sources != nil {
		nb = len(opt.Sources)
	}
	return s.run(opt.Sources, nb)
}

// batchList partitions 0..n-1 into batches of nb sources, or chunks the
// explicit source list into nb-sized batches when one is given.
func batchList(n, nb int, explicit []int32) [][]int32 {
	var out [][]int32
	if explicit != nil {
		for lo := 0; lo < len(explicit); lo += nb {
			hi := lo + nb
			if hi > len(explicit) {
				hi = len(explicit)
			}
			out = append(out, explicit[lo:hi])
		}
		return out
	}
	for lo := 0; lo < n; lo += nb {
		hi := lo + nb
		if hi > n {
			hi = n
		}
		sources := make([]int32, 0, hi-lo)
		for s := lo; s < hi; s++ {
			sources = append(sources, int32(s))
		}
		out = append(out, sources)
	}
	return out
}

// distMFBF is Algorithm 1 on distributed matrices.
func distMFBF(
	sess *spgemm.Session, pl planner,
	aMat *distmat.Mat[float64], adjCSR *sparse.CSR[float64],
	sources []int32, shard distmat.Dist,
) (*distmat.Mat[algebra.MultPath], int) {
	mp := algebra.MultPathMonoid()
	trop := algebra.TropicalMonoid()
	world := sess.Proc.World()
	n := aMat.Cols
	nb := len(sources)

	// T init: the source rows of A with multiplicity 1, built locally from
	// the replicated generator data under the neutral shard distribution.
	init := sparse.NewCOO[algebra.MultPath](nb, n)
	for s, src := range sources {
		cols, vals := adjCSR.Row(int(src))
		for kk, v := range cols {
			if v == src {
				continue
			}
			init.Append(int32(s), v, algebra.MultPath{W: vals[kk], M: 1})
		}
	}
	t := distmat.FromGlobal(world.Rank(), init, shard, mp)
	frontier := t
	iters := 0
	for {
		nnz := distmat.GlobalNNZ(world, frontier)
		if nnz == 0 {
			break
		}
		iters++
		if iters > n+1 {
			panic("core: distributed MFBF failed to converge")
		}
		plan := pl.planFor(nb, nnz, multpathBytes)
		ext := spgemm.Multiply(sess, plan, frontier, aMat, algebra.BFAction, mp, mp, trop, true)
		ext = dropDiagonalEntries(ext, sources)
		t = distmat.Redistribute(world, t, ext.Dist, mp)
		tNew := distmat.EWise(t, ext, mp)
		frontier = &distmat.Mat[algebra.MultPath]{
			Rows: nb, Cols: n, Dist: ext.Dist,
			Local: screenFrontierEntries(ext.Local, tNew.Local),
		}
		t = tNew
	}
	return t, iters
}

func dropDiagonalEntries(m *distmat.Mat[algebra.MultPath], sources []int32) *distmat.Mat[algebra.MultPath] {
	return m.Filter(func(i, j int32, _ algebra.MultPath) bool { return j != sources[i] })
}

// screenFrontierEntries keeps extension entries whose weight matches the
// accumulated T (both slices sorted, identically distributed).
func screenFrontierEntries(ext, t []sparse.Entry[algebra.MultPath]) []sparse.Entry[algebra.MultPath] {
	var out []sparse.Entry[algebra.MultPath]
	y := 0
	for _, e := range ext {
		for y < len(t) && entryLess(t[y], e) {
			y++
		}
		//lint:allow floateq screening requires an exact match of bit-identically replicated weights
		if y < len(t) && t[y].I == e.I && t[y].J == e.J && t[y].V.W == e.V.W && e.V.M > 0 {
			out = append(out, e)
		}
	}
	return out
}

// screenCentEntries keeps centpath entries matching T's weight at the same
// coordinate.
func screenCentEntries(p []sparse.Entry[algebra.CentPath], t []sparse.Entry[algebra.MultPath]) []sparse.Entry[algebra.CentPath] {
	var out []sparse.Entry[algebra.CentPath]
	y := 0
	for _, e := range p {
		for y < len(t) && entryLess(t[y], e) {
			y++
		}
		//lint:allow floateq screening requires an exact match of bit-identically replicated weights
		if y < len(t) && t[y].I == e.I && t[y].J == e.J && t[y].V.W == e.V.W {
			out = append(out, e)
		}
	}
	return out
}

func entryLess[T, U any](a sparse.Entry[T], b sparse.Entry[U]) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// distMFBr is Algorithm 2 on distributed matrices. It returns Z, the
// (possibly realigned) T sharing Z's distribution, and the iteration count.
func distMFBr(
	sess *spgemm.Session, pl planner,
	atMat *distmat.Mat[float64], t *distmat.Mat[algebra.MultPath],
	sources []int32,
) (*distmat.Mat[algebra.CentPath], *distmat.Mat[algebra.MultPath], int) {
	cp := algebra.CentPathMonoid()
	mp := algebra.MultPathMonoid()
	trop := algebra.TropicalMonoid()
	world := sess.Proc.World()
	n := t.Cols
	nb := len(sources)

	// Child counting: one product of the full T pattern with Aᵀ — much
	// denser than any frontier product, so it gets its own plan.
	z0 := distmat.Map(t, cp, func(_, _ int32, v algebra.MultPath) algebra.CentPath {
		return algebra.CentPath{W: v.W, P: 0, C: 1}
	})
	nnzT := distmat.GlobalNNZ(world, t)
	plan := pl.planFor(nb, nnzT, centpathBytes)
	p1 := spgemm.Multiply(sess, plan, z0, atMat, algebra.BrandesAction, cp, cp, trop, true)
	t = distmat.Redistribute(world, t, p1.Dist, mp)
	counts := screenCentEntries(p1.Local, t.Local)

	z := &distmat.Mat[algebra.CentPath]{Rows: nb, Cols: n, Dist: t.Dist, Local: buildZEntries(t.Local, counts)}
	frontier := &distmat.Mat[algebra.CentPath]{Rows: nb, Cols: n, Dist: t.Dist, Local: collectFrontierEntries(z.Local, t.Local)}

	iters := 0
	for {
		nnz := distmat.GlobalNNZ(world, frontier)
		if nnz == 0 {
			break
		}
		iters++
		if iters > n+1 {
			panic("core: distributed MFBr failed to converge")
		}
		plan = pl.planFor(nb, nnz, centpathBytes)
		p := spgemm.Multiply(sess, plan, frontier, atMat, algebra.BrandesAction, cp, cp, trop, true)
		// Keep Z and T aligned with the product's distribution.
		if p.Dist.Key != z.Dist.Key {
			t = distmat.Redistribute(world, t, p.Dist, mp)
			z = distmat.Redistribute(world, z, p.Dist, cp)
		}
		pScreened := &distmat.Mat[algebra.CentPath]{Rows: nb, Cols: n, Dist: p.Dist, Local: screenCentEntries(p.Local, t.Local)}
		z = distmat.EWise(z, pScreened, cp)
		frontier = &distmat.Mat[algebra.CentPath]{Rows: nb, Cols: n, Dist: z.Dist, Local: collectFrontierEntries(z.Local, t.Local)}
	}
	return z, t, iters
}

// buildZEntries merges the T pattern with screened child counts (both
// sorted, same distribution): every T coordinate appears with counter =
// number of shortest-path-DAG children.
func buildZEntries(t []sparse.Entry[algebra.MultPath], counts []sparse.Entry[algebra.CentPath]) []sparse.Entry[algebra.CentPath] {
	out := make([]sparse.Entry[algebra.CentPath], 0, len(t))
	y := 0
	for _, e := range t {
		for y < len(counts) && entryLess(counts[y], e) {
			y++
		}
		var c int64
		if y < len(counts) && counts[y].I == e.I && counts[y].J == e.J {
			c = counts[y].V.C
		}
		out = append(out, sparse.Entry[algebra.CentPath]{I: e.I, J: e.J, V: algebra.CentPath{W: e.V.W, P: 0, C: c}})
	}
	return out
}

// collectFrontierEntries extracts Z entries whose counter just reached zero,
// emitting (T.w, ζ + 1/σ̄, −1) and marking them done in place.
func collectFrontierEntries(z []sparse.Entry[algebra.CentPath], t []sparse.Entry[algebra.MultPath]) []sparse.Entry[algebra.CentPath] {
	var out []sparse.Entry[algebra.CentPath]
	for k := range z {
		if z[k].V.C == 0 {
			out = append(out, sparse.Entry[algebra.CentPath]{
				I: z[k].I, J: z[k].J,
				V: algebra.CentPath{W: z[k].V.W, P: z[k].V.P + 1/t[k].V.M, C: -1},
			})
			z[k].V.C = -1
		}
	}
	return out
}
