package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/spgemm"
)

func checkDistAgainstBrandes(t *testing.T, g *graph.Graph, opt DistOptions) *DistResult {
	t.Helper()
	want := baseline.Brandes(g)
	got, err := MFBCDistributed(g, opt)
	if err != nil {
		t.Fatalf("%s (p=%d): %v", g.Name, opt.Procs, err)
	}
	for v := range want {
		if !almostEqual(got.BC[v], want[v]) {
			t.Fatalf("%s (p=%d, plan=%s): BC[%d]=%g, Brandes says %g",
				g.Name, opt.Procs, got.Plan, v, got.BC[v], want[v])
		}
	}
	return got
}

func TestDistMFBCSingleProc(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 6, 3))
	checkDistAgainstBrandes(t, g, DistOptions{Procs: 1, Batch: 16})
}

func TestDistMFBCProcCounts(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 8, 5))
	for _, p := range []int{2, 4, 8, 16} {
		checkDistAgainstBrandes(t, g, DistOptions{Procs: p, Batch: 32})
	}
}

func TestDistMFBCWeighted(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 6, 9))
	g.AddUniformWeights(1, 100, 17)
	checkDistAgainstBrandes(t, g, DistOptions{Procs: 4, Batch: 16})
}

func TestDistMFBCDirected(t *testing.T) {
	opt := graph.DefaultRMAT(6, 5, 13)
	opt.Directed = true
	g := graph.RMAT(opt)
	checkDistAgainstBrandes(t, g, DistOptions{Procs: 4, Batch: 16})
}

func TestDistMFBCDirectedWeighted(t *testing.T) {
	opt := graph.DefaultRMAT(5, 6, 19)
	opt.Directed = true
	g := graph.RMAT(opt)
	g.AddUniformWeights(1, 9, 4)
	checkDistAgainstBrandes(t, g, DistOptions{Procs: 6, Batch: 8})
}

func TestDistMFBCForcedPlans(t *testing.T) {
	g := graph.Uniform(100, 600, false, 8)
	plans := []spgemm.Plan{
		{P1: 8, P2: 1, P3: 1, X: spgemm.RoleB, YZ: spgemm.VarAB}, // 1D replicate adjacency
		{P1: 1, P2: 4, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarAB}, // pure 2D SUMMA
		{P1: 1, P2: 2, P3: 4, X: spgemm.RoleA, YZ: spgemm.VarAC}, // 2D with C reduction
		{P1: 1, P2: 2, P3: 4, X: spgemm.RoleA, YZ: spgemm.VarBC}, // 2D, adjacency stationary
		{P1: 2, P2: 2, P3: 2, X: spgemm.RoleB, YZ: spgemm.VarAC}, // Theorem 5.1 layout
		{P1: 2, P2: 2, P3: 2, X: spgemm.RoleC, YZ: spgemm.VarAB}, // k-split layers
		{P1: 2, P2: 2, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarBC}, // frontier-replicating 3D
	}
	for _, plan := range plans {
		plan := plan
		t.Run(plan.String(), func(t *testing.T) {
			checkDistAgainstBrandes(t, g, DistOptions{Procs: plan.Procs(), Batch: 16, Plan: &plan})
		})
	}
}

func TestDistMFBCConstraints(t *testing.T) {
	g := graph.Uniform(80, 500, true, 12)
	for _, cons := range []spgemm.Constraint{spgemm.Only1D, spgemm.Only2D, spgemm.Only3D} {
		checkDistAgainstBrandes(t, g, DistOptions{Procs: 8, Batch: 16, Constraint: cons})
	}
}

func TestDistMFBCBatchSizes(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 6, 23))
	for _, nb := range []int{1, 5, 64, 1 << 10} {
		checkDistAgainstBrandes(t, g, DistOptions{Procs: 4, Batch: nb})
	}
}

func TestDistMFBCDisconnected(t *testing.T) {
	g := &graph.Graph{Name: "twocomp", N: 9}
	g.Edges = []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
		{U: 4, V: 5, W: 1}, {U: 5, V: 6, W: 1}, {U: 6, V: 7, W: 1},
	}
	checkDistAgainstBrandes(t, g, DistOptions{Procs: 4, Batch: 4})
}

func TestDistMFBCCostsAccumulate(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(6, 8, 29))
	res := checkDistAgainstBrandes(t, g, DistOptions{Procs: 8, Batch: 32})
	if res.Stats.MaxCost.Bytes == 0 || res.Stats.MaxCost.Msgs == 0 {
		t.Fatalf("distributed run charged no communication: %v", res.Stats.MaxCost)
	}
	if res.Stats.MaxCost.Flops == 0 {
		t.Fatal("distributed run charged no computation")
	}
	if res.Stats.ModelSec <= 0 || res.Stats.CommSec <= 0 {
		t.Fatal("modeled times must be positive")
	}
	// More processors must not increase per-processor critical-path flops
	// by more than the imbalance allowance.
	res1, err := MFBCDistributed(g, DistOptions{Procs: 1, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxCost.Flops > res1.Stats.MaxCost.Flops*2 {
		t.Fatalf("p=8 critical path flops %d exceed 2x the p=1 work %d",
			res.Stats.MaxCost.Flops, res1.Stats.MaxCost.Flops)
	}
}
