// Fused single-region incremental applies. An evolving-graph apply needs
// the dependency contributions of the affected pivots on both sides of the
// edit: δ_old to subtract, δ_new to add. PR 4 ran them as two machine
// regions with a host-side operand patch in between, paying the latency
// term S twice. ApplyIncremental fuses everything into ONE region over the
// pair semiring (internal/algebra/pair.go): every matrix entry carries an
// (old, new) component pair, the stationary operand is the pair lift of
// the resident adjacency spliced with the batch diff, and a single sweep
// advances both sides in lock-step — each superstep's collectives are paid
// once for the pair instead of once per side, so modeled S is comparable
// to a single run (iterations = max of the two sides, not their sum).
//
// The region's phases, attributed via machine.Proc.Phase:
//
//	diff   — rank 0 scatters each rank's share of the edge diff (the only
//	         modeled communication the patch itself needs)
//	patch  — each rank splices its resident blocks (scalar, to advance the
//	         session, and pair, to stage the fused operand) with the splice
//	         charged as local γ-flops
//	sweep  — the fused pair MFBF/MFBr sweeps
//	reduce — one concatenated allreduce of both sides' accumulators
//
// Because the pair components' identities are exact absorbing elements and
// the local kernels fold equal-coordinate contributions stably, the old
// and new components of the fused result are bit-identical to what the two
// separate scalar regions produce — under forced plans and under automatic
// planning alike: every multiplication is planned per side from that side's
// own live frontier counts with the scalar planner inputs, and when the two
// sides disagree on a plan the product is executed once per side under its
// own plan and merged (mulPairPerSide), so each side always runs exactly
// the plan sequence its scalar region would have chosen.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

// IncrementalResult is the outcome of one fused incremental region.
type IncrementalResult struct {
	OldBC []float64 // Σ_{s∈oldSources} δ_old(s,·) on the pre-batch topology
	NewBC []float64 // Σ_{s∈newSources} δ_new(s,·) on the post-batch topology
	Plan  spgemm.Plan
	Stats machine.RunStats // with per-phase attribution (diff/patch/sweep/reduce)

	Iterations int
	Batches    int
}

// ApplyIncremental runs one fused region: the old-side pivot re-runs
// against the still-resident pre-batch operands and the new-side re-runs
// against their patched successors execute simultaneously over the pair
// semiring, with the patch itself performed inside the region (diff
// scattered as a modeled collective, splice charged as local γ-flops). On
// success the session's resident operands encode newG, exactly as a
// Patch + Run sequence would leave them. On error the resident state is
// indeterminate; callers should drop and rebuild the session.
//
// newG must have the session's vertex count (vertex growth changes the
// operand dimensions; callers fall back to the two-region path). diffs is
// the effective edge diff between the session's topology and newG, as for
// Patch. newAdj is newG's adjacency (rebuilt when nil).
func (s *DistSession) ApplyIncremental(oldSources []int32, newG *graph.Graph, newAdj *sparse.CSR[float64], diffs []EdgeDiff, newSources []int32) (*IncrementalResult, error) {
	return s.ApplyIncrementalCtx(context.Background(), oldSources, newG, newAdj, diffs, newSources)
}

// ApplyIncrementalCtx is ApplyIncremental with trace propagation: when ctx
// carries an obs span, the fused region's modeled-vs-measured stats are
// attached as a machine.region child span with per-phase grandchildren.
func (s *DistSession) ApplyIncrementalCtx(ctx context.Context, oldSources []int32, newG *graph.Graph, newAdj *sparse.CSR[float64], diffs []EdgeDiff, newSources []int32) (*IncrementalResult, error) {
	if newG.N != s.g.N {
		return nil, fmt.Errorf("core: fused apply needs a fixed vertex set (%d → %d); use Reset + Run", s.g.N, newG.N)
	}
	if newAdj == nil {
		newAdj = newG.Adjacency()
	}
	oldG, oldAdj := s.g, s.adjCSR
	directed := newG.Directed
	n := newG.N
	if len(diffs) == 0 && len(oldSources) == 0 && len(newSources) == 0 {
		// Structural no-op: nothing to patch, nothing to sweep.
		s.g, s.adjCSR = newG, newAdj
		return &IncrementalResult{OldBC: make([]float64, n), NewBC: make([]float64, n)}, nil
	}

	sources, inOld, inNew := unionSources(oldSources, newSources, n)
	nb := Options{Batch: s.opt.Batch}.batchFor(n)
	if len(sources) > 0 && len(sources) < nb {
		nb = len(sources)
	}

	mach := transportFor(s.p, s.opt)
	// One planner per side, with exactly the inputs the side's scalar region
	// would have used (its own adjacency count, the scalar wire sizes): the
	// fused sweeps feed each planner that side's own live frontier counts,
	// so auto-planned fused applies replay the scalar plan sequences and
	// stay bit-identical to the two-region path.
	plOld := planner{
		p: s.p, n: n, adjNNZ: int64(oldG.AdjacencyNNZ()),
		model: mach.Model(), cons: s.opt.Constraint, forced: s.opt.Plan,
	}
	plNew := plOld
	plNew.adjNNZ = int64(newG.AdjacencyNNZ())
	plan := plNew.planFor(nb, int64(float64(nb)*newG.AvgDegree()), multpathBytes)

	// Rank 0's scatter payload: every rank's share of the edge diff (the
	// diffs whose derived adjacency coordinates land on one of the rank's
	// resident blocks). Prepared host-side from the pure ownership
	// functions — the data the root node of a real machine would hold.
	parts := s.diffShares(diffs, directed)

	res := &IncrementalResult{Plan: plan, OldBC: make([]float64, n), NewBC: make([]float64, n)}
	itersPer := make([]int, s.p)
	oldPer := make([][]float64, s.p)
	newPer := make([][]float64, s.p)
	pairIDs := make([][2]uint64, s.p)
	shard := distmat.DistShard(s.p)

	stats, err := mach.Run(func(proc *machine.Proc) {
		world := proc.World()
		rank := proc.Rank()
		rk := s.ranks[rank]
		sess := spgemm.NewSessionWithCache(proc, rk.cache)
		sess.Workers = s.opt.Workers
		if rk.pendingFlops > 0 {
			proc.Phase(machine.PhasePatch)
			proc.AddFlops(rk.pendingFlops)
			rk.pendingFlops = 0
		}

		// Receive this rank's diff share via the modeled collective.
		proc.Phase(machine.PhaseDiff)
		myDiffs := machine.Scatter(world, 0, parts)

		// Stage the pair operands from resident blocks + diff, and advance
		// the scalar residents to the post-batch topology, charging the
		// splice work as local flops.
		proc.Phase(machine.PhasePatch)
		editsA := adjacencyEdits(directed, myDiffs, false)
		editsAt := adjacencyEdits(directed, myDiffs, true)
		aPair, atPair, ops := s.stagePairRank(rk, rank, editsA, editsAt)
		pairIDs[rank] = [2]uint64{aPair.ID(), atPair.ID()}
		proc.AddFlops(ops)

		// The fused pair sweeps: both sides in lock-step.
		proc.Phase(machine.PhaseSweep)
		cpp := algebra.CentPathPairMonoid()
		mpp := algebra.MultPathPairMonoid()
		bcOld := make([]float64, n)
		bcNew := make([]float64, n)
		iters := 0
		batches := 0
		for _, batch := range batchList(n, nb, sources) {
			batches++
			t, itF := distMFBFPair(sess, plOld, plNew, aPair, oldAdj, newAdj, batch, inOld, inNew, shard)
			z, t, itB, distO, distN := distMFBrPair(sess, plOld, plNew, atPair, t, batch)
			iters += itF + itB
			// Accumulate each side under the distribution its scalar sweep
			// ended in (a free no-op whenever the sides agreed on the final
			// plan): the per-rank partial sums — and therefore the rounding
			// of the closing allreduce — group exactly as the two scalar
			// regions' do.
			zO := distmat.Redistribute(world, z, distO, cpp)
			tO := distmat.Redistribute(world, t, distO, mpp)
			distmat.ZipJoin(zO, tO, func(_, j int32, zc algebra.CentPathPair, tm algebra.MultPathPair) {
				bcOld[j] += zc.Old.P * tm.Old.M
			})
			zN := distmat.Redistribute(world, z, distN, cpp)
			tN := distmat.Redistribute(world, t, distN, mpp)
			distmat.ZipJoin(zN, tN, func(_, j int32, zc algebra.CentPathPair, tm algebra.MultPathPair) {
				bcNew[j] += zc.New.P * tm.New.M
			})
		}

		// One concatenated dense reduction for both sides.
		proc.Phase(machine.PhaseReduce)
		both := make([]float64, 0, 2*n)
		both = append(both, bcOld...)
		both = append(both, bcNew...)
		total := machine.Allreduce(world, both, func(a, b float64) float64 { return a + b })
		itersPer[rank] = iters
		oldPer[rank] = total[:n]
		newPer[rank] = total[n:]
		if rank == 0 {
			res.Batches = batches
		}
	})
	// The pair working sets are per-apply scratch: drop them so a bounded
	// cache doesn't carry dead matrices and an unbounded one doesn't leak.
	for r, rk := range s.ranks {
		for _, id := range pairIDs[r] {
			if id != 0 {
				spgemm.DropMatrix(rk.cache, id)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	s.g, s.adjCSR = newG, newAdj
	res.Stats = stats
	res.Iterations = itersPer[0]
	copy(res.OldBC, oldPer[0])
	copy(res.NewBC, newPer[0])
	recordRegionSpan(ctx, "fused-apply", s.p, res.Stats)
	return res, nil
}

// unionSources merges two ascending source lists and returns per-vertex
// membership masks. The fused frontier has one row per union source; a
// side's component is seeded only for its members.
func unionSources(oldS, newS []int32, n int) ([]int32, []bool, []bool) {
	inOld := make([]bool, n)
	inNew := make([]bool, n)
	out := make([]int32, 0, len(oldS)+len(newS))
	x, y := 0, 0
	for x < len(oldS) || y < len(newS) {
		var v int32
		switch {
		case y >= len(newS) || (x < len(oldS) && oldS[x] < newS[y]):
			v = oldS[x]
			x++
		case x >= len(oldS) || newS[y] < oldS[x]:
			v = newS[y]
			y++
		default:
			v = oldS[x]
			x++
			y++
		}
		out = append(out, v)
	}
	for _, v := range oldS {
		inOld[v] = true
	}
	for _, v := range newS {
		inNew[v] = true
	}
	return out, inOld, inNew
}

// diffShares computes, per destination rank, the subset of the edge diff
// whose derived adjacency-matrix coordinates (for A or Aᵀ, both edge
// orientations for undirected graphs) land on one of that rank's resident
// blocks: the shard operands or any cached working set.
func (s *DistSession) diffShares(diffs []EdgeDiff, directed bool) [][]EdgeDiff {
	shard := distmat.DistShard(s.p)
	parts := make([][]EdgeDiff, s.p)
	// The ownership closures are hoisted once per (plan, dims) — the plan
	// set is SPMD-identical across ranks, so rank 0's cache describes all.
	ownsFor := func(plans []spgemm.PlanDims) []func(rank int, i, j int32) bool {
		out := make([]func(rank int, i, j int32) bool, len(plans))
		for i, pd := range plans {
			out[i] = spgemm.StationaryOwnership(pd.Plan, pd.K, pd.N)
		}
		return out
	}
	ownsA := ownsFor(spgemm.CachedPlans(s.ranks[0].cache, s.ranks[0].aMat.ID()))
	ownsAt := ownsFor(spgemm.CachedPlans(s.ranks[0].cache, s.ranks[0].atMat.ID()))
	for _, d := range diffs {
		coords := [][2]int32{{d.U, d.V}}
		if !directed {
			coords = append(coords, [2]int32{d.V, d.U})
		}
		for r := 0; r < s.p; r++ {
			needed := false
			for _, c := range coords {
				// Both A's (i, j) and Aᵀ's (j, i) coordinates of this edge.
				if shard.Owner(c[0], c[1]) == r || shard.Owner(c[1], c[0]) == r {
					needed = true
					break
				}
				for _, owns := range ownsA {
					if owns(r, c[0], c[1]) {
						needed = true
						break
					}
				}
				if needed {
					break
				}
				for _, owns := range ownsAt {
					if owns(r, c[1], c[0]) {
						needed = true
						break
					}
				}
				if needed {
					break
				}
			}
			if needed {
				parts[r] = append(parts[r], d)
			}
		}
	}
	return parts
}

// stagePairRank builds one rank's pair operands for the fused region and
// advances its scalar residents to the post-batch topology. The pair lift
// reads the pre-patch blocks, so it must (and does) run before the scalar
// splice. Returns the pair matrices and the total local splice work.
func (s *DistSession) stagePairRank(rk *distRank, rank int, editsA, editsAt []spgemm.StationaryEdit[float64]) (aPair, atPair *distmat.Mat[algebra.WeightPair], ops int64) {
	shard := distmat.DistShard(s.p)
	owned := func(i, j int32) bool { return shard.Owner(i, j) == rank }

	lift := func(m *distmat.Mat[float64], edits []spgemm.StationaryEdit[float64]) *distmat.Mat[algebra.WeightPair] {
		local := spgemm.PairSplice(m.Local, edits, owned)
		ops += int64(len(local))
		pair := &distmat.Mat[algebra.WeightPair]{Rows: m.Rows, Cols: m.Cols, Dist: m.Dist, Local: local}
		ops += spgemm.StagePairStationary(rk.cache, rank, m.ID(), pair.ID(), edits)
		return pair
	}
	aPair = lift(rk.aMat, editsA)
	atPair = lift(rk.atMat, editsAt)
	ops += s.patchRank(rk, rank, editsA, editsAt)
	return aPair, atPair, ops
}

// sideNNZ counts, with one small allreduce, the pair entries whose old and
// new components are live — the per-side frontier sizes the scalar sweeps
// would have measured, and therefore the per-side planner inputs.
func sideNNZ[T any](world *machine.Comm, m *distmat.Mat[T], oldLive, newLive func(T) bool) (int64, int64) {
	cnt := []int64{0, 0}
	for _, e := range m.Local {
		if oldLive(e.V) {
			cnt[0]++
		}
		if newLive(e.V) {
			cnt[1]++
		}
	}
	tot := machine.Allreduce(world, cnt, func(a, b int64) int64 { return a + b })
	return tot[0], tot[1]
}

// sideProject masks a pair matrix onto one component: entries whose kept
// side is live survive with the other component zeroed — exactly the
// operand set the scalar sweep of that side would multiply.
func sideProject[T any](m *distmat.Mat[T], keep func(T) (T, bool)) *distmat.Mat[T] {
	out := &distmat.Mat[T]{Rows: m.Rows, Cols: m.Cols, Dist: m.Dist}
	for _, e := range m.Local {
		if v, ok := keep(e.V); ok {
			out.Local = append(out.Local, sparse.Entry[T]{I: e.I, J: e.J, V: v})
		}
	}
	return out
}

func oldOnlyMult(v algebra.MultPathPair) (algebra.MultPathPair, bool) {
	if algebra.MultPathIsZero(v.Old) {
		return algebra.MultPathPairZero(), false
	}
	return algebra.MultPathPair{Old: v.Old, New: algebra.MultPathZero()}, true
}

func newOnlyMult(v algebra.MultPathPair) (algebra.MultPathPair, bool) {
	if algebra.MultPathIsZero(v.New) {
		return algebra.MultPathPairZero(), false
	}
	return algebra.MultPathPair{Old: algebra.MultPathZero(), New: v.New}, true
}

func oldOnlyCent(v algebra.CentPathPair) (algebra.CentPathPair, bool) {
	if algebra.CentPathIsZero(v.Old) {
		return algebra.CentPathPairZero(), false
	}
	return algebra.CentPathPair{Old: v.Old, New: algebra.CentPathZero()}, true
}

func newOnlyCent(v algebra.CentPathPair) (algebra.CentPathPair, bool) {
	if algebra.CentPathIsZero(v.New) {
		return algebra.CentPathPairZero(), false
	}
	return algebra.CentPathPair{Old: algebra.CentPathZero(), New: v.New}, true
}

// fusedDualProducts counts per-side (dual) products executed because the
// two sides' automatic plans diverged — test observability for the plan
// fidelity of the fused path. Every rank of every region increments it.
var fusedDualProducts atomic.Int64

// mulPairPerSide runs one fused frontier product with per-side plans. When
// only one side is live, or both sides chose the same plan, a single pair
// multiply executes under that plan and the componentwise-exact identities
// make each live side bit-identical to its scalar product. When the plans
// diverge, the frontier is masked per side and each mask is multiplied
// under its own side's plan, then the two half-products are merged — the
// extra product is the honest price of replaying both scalar plan
// sequences exactly, and it is only paid on the (rare) divergent
// iterations. The result carries the old side's output distribution in
// that case.
func mulPairPerSide[T any](
	sess *spgemm.Session,
	planOld, planNew spgemm.Plan, nnzOld, nnzNew int64,
	frontier *distmat.Mat[T], b *distmat.Mat[algebra.WeightPair],
	f func(T, algebra.WeightPair) T,
	mon algebra.Monoid[T], wp algebra.Monoid[algebra.WeightPair],
	oldOnly, newOnly func(T) (T, bool),
) *distmat.Mat[T] {
	switch {
	case nnzOld == 0:
		return spgemm.Multiply(sess, planNew, frontier, b, f, mon, mon, wp, true)
	case nnzNew == 0 || planOld == planNew:
		return spgemm.Multiply(sess, planOld, frontier, b, f, mon, mon, wp, true)
	}
	fusedDualProducts.Add(1)
	world := sess.Proc.World()
	extOld := spgemm.Multiply(sess, planOld, sideProject(frontier, oldOnly), b, f, mon, mon, wp, true)
	extNew := spgemm.Multiply(sess, planNew, sideProject(frontier, newOnly), b, f, mon, mon, wp, true)
	return distmat.EWise(extOld, distmat.Redistribute(world, extNew, extOld.Dist, mon), mon)
}

// distMFBFPair is Algorithm 1 over the pair semiring: one sweep advances
// the old-side frontier (over the pre-batch adjacency component) and the
// new-side frontier (over the post-batch component) in lock-step. Row i of
// the frontier is union source batch[i]; a side's component is seeded only
// when the source belongs to that side.
func distMFBFPair(
	sess *spgemm.Session, plOld, plNew planner,
	aPair *distmat.Mat[algebra.WeightPair],
	oldCSR, newCSR *sparse.CSR[float64],
	batch []int32, inOld, inNew []bool, shard distmat.Dist,
) (*distmat.Mat[algebra.MultPathPair], int) {
	mpp := algebra.MultPathPairMonoid()
	wp := algebra.WeightPairMonoid()
	world := sess.Proc.World()
	n := aPair.Cols
	nb := len(batch)

	init := sparse.NewCOO[algebra.MultPathPair](nb, n)
	for si, src := range batch {
		var oc, nc []int32
		var ov, nv []float64
		if inOld[src] {
			oc, ov = oldCSR.Row(int(src))
		}
		if inNew[src] {
			nc, nv = newCSR.Row(int(src))
		}
		x, y := 0, 0
		for x < len(oc) || y < len(nc) {
			var col int32
			v := algebra.MultPathPairZero()
			switch {
			case y >= len(nc) || (x < len(oc) && oc[x] < nc[y]):
				col = oc[x]
				v.Old = algebra.MultPath{W: ov[x], M: 1}
				x++
			case x >= len(oc) || nc[y] < oc[x]:
				col = nc[y]
				v.New = algebra.MultPath{W: nv[y], M: 1}
				y++
			default:
				col = oc[x]
				v.Old = algebra.MultPath{W: ov[x], M: 1}
				v.New = algebra.MultPath{W: nv[y], M: 1}
				x++
				y++
			}
			if col == src {
				continue
			}
			init.Append(int32(si), col, v)
		}
	}
	t := distmat.FromGlobal(world.Rank(), init, shard, mpp)
	frontier := t
	iters := 0
	var planOld, planNew spgemm.Plan
	for {
		nnzOld, nnzNew := sideNNZ(world, frontier,
			func(v algebra.MultPathPair) bool { return !algebra.MultPathIsZero(v.Old) },
			func(v algebra.MultPathPair) bool { return !algebra.MultPathIsZero(v.New) })
		if nnzOld == 0 && nnzNew == 0 {
			break
		}
		iters++
		if iters > n+1 {
			panic("core: fused MFBF failed to converge")
		}
		if nnzOld > 0 {
			planOld = plOld.planFor(nb, nnzOld, multpathBytes)
		}
		if nnzNew > 0 {
			planNew = plNew.planFor(nb, nnzNew, multpathBytes)
		}
		ext := mulPairPerSide(sess, planOld, planNew, nnzOld, nnzNew, frontier, aPair,
			algebra.BFActionPair, mpp, wp, oldOnlyMult, newOnlyMult)
		ext = ext.Filter(func(i, j int32, _ algebra.MultPathPair) bool { return j != batch[i] })
		t = distmat.Redistribute(world, t, ext.Dist, mpp)
		tNew := distmat.EWise(t, ext, mpp)
		frontier = &distmat.Mat[algebra.MultPathPair]{
			Rows: nb, Cols: n, Dist: ext.Dist,
			Local: screenFrontierPair(ext.Local, tNew.Local),
		}
		t = tNew
	}
	return t, iters
}

// screenFrontierPair keeps, per component, extension entries whose weight
// matches the accumulated T — the pair analogue of screenFrontierEntries,
// decided side by side so one side's survival never resurrects the other.
func screenFrontierPair(ext, t []sparse.Entry[algebra.MultPathPair]) []sparse.Entry[algebra.MultPathPair] {
	var out []sparse.Entry[algebra.MultPathPair]
	y := 0
	for _, e := range ext {
		for y < len(t) && entryLess(t[y], e) {
			y++
		}
		if y >= len(t) || t[y].I != e.I || t[y].J != e.J {
			continue
		}
		v := algebra.MultPathPairZero()
		//lint:allow floateq screening requires an exact match of bit-identically replicated weights
		if !algebra.MultPathIsZero(e.V.Old) && t[y].V.Old.W == e.V.Old.W && e.V.Old.M > 0 {
			v.Old = e.V.Old
		}
		//lint:allow floateq screening requires an exact match of bit-identically replicated weights
		if !algebra.MultPathIsZero(e.V.New) && t[y].V.New.W == e.V.New.W && e.V.New.M > 0 {
			v.New = e.V.New
		}
		if !algebra.MultPathPairIsZero(v) {
			out = append(out, sparse.Entry[algebra.MultPathPair]{I: e.I, J: e.J, V: v})
		}
	}
	return out
}

// distMFBrPair is Algorithm 2 over the pair semiring. Alongside Z, the
// realigned T, and the iteration count, it returns each side's final output
// distribution — the distribution that side's scalar sweep would have left
// Z in, which the caller adopts per side when accumulating centrality so
// the summation grouping matches the two-region path bitwise.
func distMFBrPair(
	sess *spgemm.Session, plOld, plNew planner,
	atPair *distmat.Mat[algebra.WeightPair], t *distmat.Mat[algebra.MultPathPair],
	batch []int32,
) (*distmat.Mat[algebra.CentPathPair], *distmat.Mat[algebra.MultPathPair], int, distmat.Dist, distmat.Dist) {
	cpp := algebra.CentPathPairMonoid()
	mpp := algebra.MultPathPairMonoid()
	wp := algebra.WeightPairMonoid()
	world := sess.Proc.World()
	n := t.Cols
	nb := len(batch)
	dcFor := func(plan spgemm.Plan) distmat.Dist {
		_, _, dc := spgemm.Dists(plan, nb, n, n)
		return dc
	}
	oldLiveMult := func(v algebra.MultPathPair) bool { return !algebra.MultPathIsZero(v.Old) }
	newLiveMult := func(v algebra.MultPathPair) bool { return !algebra.MultPathIsZero(v.New) }

	z0 := distmat.Map(t, cpp, func(_, _ int32, v algebra.MultPathPair) algebra.CentPathPair {
		out := algebra.CentPathPairZero()
		if !algebra.MultPathIsZero(v.Old) {
			out.Old = algebra.CentPath{W: v.Old.W, P: 0, C: 1}
		}
		if !algebra.MultPathIsZero(v.New) {
			out.New = algebra.CentPath{W: v.New.W, P: 0, C: 1}
		}
		return out
	})
	nnzTOld, nnzTNew := sideNNZ(world, t, oldLiveMult, newLiveMult)
	planOld := plOld.planFor(nb, nnzTOld, centpathBytes)
	planNew := plNew.planFor(nb, nnzTNew, centpathBytes)
	distOld, distNew := dcFor(planOld), dcFor(planNew)
	p1 := mulPairPerSide(sess, planOld, planNew, nnzTOld, nnzTNew, z0, atPair,
		algebra.BrandesActionPair, cpp, wp, oldOnlyCent, newOnlyCent)
	t = distmat.Redistribute(world, t, p1.Dist, mpp)
	counts := screenCentPair(p1.Local, t.Local)

	z := &distmat.Mat[algebra.CentPathPair]{Rows: nb, Cols: n, Dist: t.Dist, Local: buildZPair(t.Local, counts)}
	frontier := &distmat.Mat[algebra.CentPathPair]{Rows: nb, Cols: n, Dist: t.Dist, Local: collectFrontierPair(z.Local, t.Local)}

	iters := 0
	for {
		nnzOld, nnzNew := sideNNZ(world, frontier,
			func(v algebra.CentPathPair) bool { return !algebra.CentPathIsZero(v.Old) },
			func(v algebra.CentPathPair) bool { return !algebra.CentPathIsZero(v.New) })
		if nnzOld == 0 && nnzNew == 0 {
			break
		}
		iters++
		if iters > n+1 {
			panic("core: fused MFBr failed to converge")
		}
		// A side whose scalar loop has already terminated keeps its last
		// plan and distribution; its components ride along as exact zeros.
		if nnzOld > 0 {
			planOld = plOld.planFor(nb, nnzOld, centpathBytes)
			distOld = dcFor(planOld)
		}
		if nnzNew > 0 {
			planNew = plNew.planFor(nb, nnzNew, centpathBytes)
			distNew = dcFor(planNew)
		}
		p := mulPairPerSide(sess, planOld, planNew, nnzOld, nnzNew, frontier, atPair,
			algebra.BrandesActionPair, cpp, wp, oldOnlyCent, newOnlyCent)
		if p.Dist.Key != z.Dist.Key {
			t = distmat.Redistribute(world, t, p.Dist, mpp)
			z = distmat.Redistribute(world, z, p.Dist, cpp)
		}
		pScreened := &distmat.Mat[algebra.CentPathPair]{Rows: nb, Cols: n, Dist: p.Dist, Local: screenCentPair(p.Local, t.Local)}
		z = distmat.EWise(z, pScreened, cpp)
		frontier = &distmat.Mat[algebra.CentPathPair]{Rows: nb, Cols: n, Dist: z.Dist, Local: collectFrontierPair(z.Local, t.Local)}
	}
	return z, t, iters, distOld, distNew
}

// screenCentPair keeps, per component, centpath entries matching T's weight
// at the same coordinate. A dead T component carries weight +∞ and a dead
// centpath component −∞, so the equality test alone screens liveness.
func screenCentPair(p []sparse.Entry[algebra.CentPathPair], t []sparse.Entry[algebra.MultPathPair]) []sparse.Entry[algebra.CentPathPair] {
	var out []sparse.Entry[algebra.CentPathPair]
	y := 0
	for _, e := range p {
		for y < len(t) && entryLess(t[y], e) {
			y++
		}
		if y >= len(t) || t[y].I != e.I || t[y].J != e.J {
			continue
		}
		v := algebra.CentPathPairZero()
		//lint:allow floateq screening requires an exact match of bit-identically replicated weights
		if t[y].V.Old.W == e.V.Old.W {
			v.Old = e.V.Old
		}
		//lint:allow floateq screening requires an exact match of bit-identically replicated weights
		if t[y].V.New.W == e.V.New.W {
			v.New = e.V.New
		}
		if !algebra.CentPathPairIsZero(v) {
			out = append(out, sparse.Entry[algebra.CentPathPair]{I: e.I, J: e.J, V: v})
		}
	}
	return out
}

// buildZPair merges the T pattern with screened child counts, per
// component: every live T component appears with counter = its number of
// shortest-path-DAG children; dead components stay the exact zero.
func buildZPair(t []sparse.Entry[algebra.MultPathPair], counts []sparse.Entry[algebra.CentPathPair]) []sparse.Entry[algebra.CentPathPair] {
	out := make([]sparse.Entry[algebra.CentPathPair], 0, len(t))
	y := 0
	for _, e := range t {
		for y < len(counts) && entryLess(counts[y], e) {
			y++
		}
		var cOld, cNew int64
		if y < len(counts) && counts[y].I == e.I && counts[y].J == e.J {
			cOld = counts[y].V.Old.C // a dead counts component has C = 0
			cNew = counts[y].V.New.C
		}
		v := algebra.CentPathPairZero()
		if !algebra.MultPathIsZero(e.V.Old) {
			v.Old = algebra.CentPath{W: e.V.Old.W, P: 0, C: cOld}
		}
		if !algebra.MultPathIsZero(e.V.New) {
			v.New = algebra.CentPath{W: e.V.New.W, P: 0, C: cNew}
		}
		out = append(out, sparse.Entry[algebra.CentPathPair]{I: e.I, J: e.J, V: v})
	}
	return out
}

// collectFrontierPair extracts, per component, Z entries whose counter just
// reached zero, emitting (T.w, ζ + 1/σ̄, −1) and marking them done in place.
func collectFrontierPair(z []sparse.Entry[algebra.CentPathPair], t []sparse.Entry[algebra.MultPathPair]) []sparse.Entry[algebra.CentPathPair] {
	var out []sparse.Entry[algebra.CentPathPair]
	for k := range z {
		v := algebra.CentPathPairZero()
		emit := false
		if !algebra.CentPathIsZero(z[k].V.Old) && z[k].V.Old.C == 0 {
			v.Old = algebra.CentPath{W: z[k].V.Old.W, P: z[k].V.Old.P + 1/t[k].V.Old.M, C: -1}
			z[k].V.Old.C = -1
			emit = true
		}
		if !algebra.CentPathIsZero(z[k].V.New) && z[k].V.New.C == 0 {
			v.New = algebra.CentPath{W: z[k].V.New.W, P: z[k].V.New.P + 1/t[k].V.New.M, C: -1}
			z[k].V.New.C = -1
			emit = true
		}
		if emit {
			out = append(out, sparse.Entry[algebra.CentPathPair]{I: z[k].I, J: z[k].J, V: v})
		}
	}
	return out
}
