package core

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// TestMFBCWorkersInvariant: betweenness scores are bit-identical for every
// worker count, on weighted and unweighted graphs (the parallel kernels
// must not perturb float summation order).
func TestMFBCWorkersInvariant(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := graph.RMAT(graph.DefaultRMAT(8, 8, 5))
		if weighted {
			g.AddUniformWeights(1, 10, 6)
		}
		base, err := MFBC(g, Options{Batch: 32, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 3, 8} {
			res, err := MFBC(g, Options{Batch: 32, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != base.Ops || res.Iterations != base.Iterations {
				t.Fatalf("weighted=%v workers=%d: ops/iters differ (%d/%d vs %d/%d)",
					weighted, w, res.Ops, res.Iterations, base.Ops, base.Iterations)
			}
			for v := range base.BC {
				if res.BC[v] != base.BC[v] {
					t.Fatalf("weighted=%v workers=%d: BC[%d] = %v, want %v",
						weighted, w, v, res.BC[v], base.BC[v])
				}
			}
		}
	}
}

// TestMFBFParallelMatchesSequential checks the T matrix itself, not just
// the folded scores.
func TestMFBFParallelMatchesSequential(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(8, 8, 9))
	a := g.Adjacency()
	sources := make([]int32, 48)
	for i := range sources {
		sources[i] = int32(i * (g.N / 48))
	}
	want, wantOps, wantIt := MFBF(a, sources)
	for _, w := range []int{2, 4} {
		got, ops, it := MFBFParallel(a, sources, w)
		if ops != wantOps || it != wantIt {
			t.Fatalf("workers=%d: ops/iters %d/%d, want %d/%d", w, ops, it, wantOps, wantIt)
		}
		if !sparse.Equal(got, want, func(x, y algebra.MultPath) bool { return x == y }) {
			t.Fatalf("workers=%d: T matrix differs from sequential MFBF", w)
		}
	}
}

// TestMFBCDistributedWorkersInvariant: the distributed engine must also be
// worker-count invariant (parallel local kernels inside simulated ranks).
func TestMFBCDistributedWorkersInvariant(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(7, 8, 11))
	base, err := MFBCDistributed(g, DistOptions{Procs: 4, Batch: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 3} {
		res, err := MFBCDistributed(g, DistOptions{Procs: 4, Batch: 32, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for v := range base.BC {
			if res.BC[v] != base.BC[v] {
				t.Fatalf("workers=%d: BC[%d] = %v, want %v", w, v, res.BC[v], base.BC[v])
			}
		}
	}
}
