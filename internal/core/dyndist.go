// Persistent distributed sessions: the streaming counterpart of
// MFBCDistributed. A DistSession keeps each simulated rank's share of the
// stationary adjacency operands (A and Aᵀ, in the neutral shard
// distribution) and its spgemm operand cache resident across machine runs,
// so the placement cost of the stationary matrices — the once-per-run term
// amortized in the proof of Theorem 5.1 — is also amortized across the
// applies of an evolving-graph workload: a working set staged (replicated,
// for 3D plans) in one run is a warm cache hit in every later run. Small
// edge diffs are delta-patched into the resident blocks (Patch) instead of
// redistributing the whole matrix per apply; only a vertex-set change
// forces a rebuild.
//
// A DistSession is owned by one driver (internal/dynamic's Engine holds it
// under its apply lock); Run and Patch must not be called concurrently.
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/distmat"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sparse"
	"repro/internal/spgemm"
)

// EdgeDiff is one edge of the effective difference between the session's
// current topology and its successor: the post-patch state of edge (U, V).
type EdgeDiff struct {
	U, V    int32
	W       float64 // weight after the patch (meaningful when Present)
	Present bool    // edge exists after the patch
}

// DistSession holds the per-rank resident state of a distributed MFBC
// computation across runs.
type DistSession struct {
	opt       DistOptions
	p         int
	g         *graph.Graph
	adjCSR    *sparse.CSR[float64]
	ranks     []*distRank
	evictBase int64 // operand-cache evictions of caches dropped by install
}

// distRank is one simulated rank's persistent state: its shard of the
// stationary operands and its staged-working-set cache.
type distRank struct {
	aMat, atMat *distmat.Mat[float64]
	cache       *spgemm.OperandCache
	// pendingFlops is the local splice work of host-side Patch calls not
	// yet charged to the model; the next region charges it as γ-flops in
	// its "patch" phase, so delta-patching is never free compute.
	pendingFlops int64
}

// NewDistSession validates g and builds the resident operands for
// opt.Procs simulated ranks. opt.Sources is ignored; pass sources to Run.
func NewDistSession(g *graph.Graph, opt DistOptions) (*DistSession, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := opt.Procs
	if p < 1 {
		p = 1
	}
	if opt.Plan != nil && opt.Plan.Procs() != p {
		return nil, fmt.Errorf("core: plan %s does not tile %d processors", opt.Plan, p)
	}
	if opt.Transport != nil && opt.Transport.Size() != p {
		return nil, fmt.Errorf("core: transport spans %d ranks but session wants %d", opt.Transport.Size(), p)
	}
	s := &DistSession{opt: opt, p: p}
	s.install(g, g.Adjacency())
	return s, nil
}

// install (re)builds every rank's operand shards from the global topology
// with fresh operand caches (bounded per matrix by opt.CacheSets).
func (s *DistSession) install(g *graph.Graph, adjCSR *sparse.CSR[float64]) {
	trop := algebra.TropicalMonoid()
	adjCOO := adjCSR.ToCOO()
	atCOO := sparse.Transpose(adjCSR).ToCOO()
	shard := distmat.DistShard(s.p)
	s.g, s.adjCSR = g, adjCSR
	for _, rk := range s.ranks {
		s.evictBase += rk.cache.Evictions()
	}
	s.ranks = make([]*distRank, s.p)
	for r := 0; r < s.p; r++ {
		rk := &distRank{
			aMat:  distmat.FromGlobal(r, adjCOO, shard, trop),
			atMat: distmat.FromGlobal(r, atCOO, shard, trop),
			cache: spgemm.NewOperandCacheSized(s.opt.CacheSets),
		}
		// Pin the matrix identities host-side, before any rank goroutine
		// could race to lazily assign them.
		rk.aMat.ID()
		rk.atMat.ID()
		s.ranks[r] = rk
	}
}

// Graph returns the topology the resident operands currently encode.
func (s *DistSession) Graph() *graph.Graph { return s.g }

// Procs returns the simulated processor count.
func (s *DistSession) Procs() int { return s.p }

// CacheEvictions returns the cumulative stationary-working-set evictions of
// every rank's bounded operand cache over the session's lifetime (0 unless
// DistOptions.CacheSets bounds the caches). Callers must not race it with
// Run/Patch/ApplyIncremental.
func (s *DistSession) CacheEvictions() int64 {
	total := s.evictBase
	for _, rk := range s.ranks {
		total += rk.cache.Evictions()
	}
	return total
}

// Reset rebuilds the resident operands from newG and drops every cached
// working set, so the next runs pay full redistribution again. It is the
// fallback for vertex-set changes (the operand dimensions move) and the
// full-redistribution ablation the differential tests pin delta-patching
// against. adjCSR may be nil.
func (s *DistSession) Reset(newG *graph.Graph, adjCSR *sparse.CSR[float64]) {
	if adjCSR == nil {
		adjCSR = newG.Adjacency()
	}
	s.install(newG, adjCSR)
}

// Patch transitions the resident operands from the current topology to
// newG, whose edge set must differ from the current graph by exactly
// diffs. Each rank splices only the diff entries it owns into its resident
// blocks — the shard-distributed operands and every plan-specific cached
// working set — leaving each block entry-identical to a full re-staging of
// the new matrix while moving nothing on the simulated machine. The diff
// is globally known, mirroring the generator-replication input convention
// of FromGlobal. Vertex growth changes the operand dimensions and falls
// back to Reset. adjCSR is newG's adjacency (rebuilt when nil).
func (s *DistSession) Patch(newG *graph.Graph, adjCSR *sparse.CSR[float64], diffs []EdgeDiff) {
	if newG.N != s.g.N {
		s.Reset(newG, adjCSR)
		return
	}
	if adjCSR == nil {
		adjCSR = newG.Adjacency()
	}
	directed := newG.Directed
	s.g, s.adjCSR = newG, adjCSR
	if len(diffs) == 0 {
		return
	}
	editsA := adjacencyEdits(directed, diffs, false)
	editsAt := adjacencyEdits(directed, diffs, true)
	for r, rk := range s.ranks {
		rk.pendingFlops += s.patchRank(rk, r, editsA, editsAt)
	}
}

// patchRank splices the adjacency edits into one rank's resident blocks —
// the shard operands and every cached working set — and returns the splice
// work in entry writes. Host callers (Patch) defer that work to the next
// region via pendingFlops; the fused region calls it per rank goroutine and
// charges it directly.
func (s *DistSession) patchRank(rk *distRank, rank int, editsA, editsAt []spgemm.StationaryEdit[float64]) int64 {
	shard := distmat.DistShard(s.p)
	owned := func(i, j int32) bool { return shard.Owner(i, j) == rank }
	rk.aMat.Local = applyEdits(rk.aMat.Local, editsA, owned)
	rk.atMat.Local = applyEdits(rk.atMat.Local, editsAt, owned)
	ops := int64(len(rk.aMat.Local) + len(rk.atMat.Local))
	ops += spgemm.PatchStationary(rk.cache, rank, rk.aMat.ID(), editsA)
	ops += spgemm.PatchStationary(rk.cache, rank, rk.atMat.ID(), editsAt)
	return ops
}

// adjacencyEdits expands an edge diff into sorted coordinate edits of the
// adjacency matrix (or, with transpose, of Aᵀ): undirected edges edit both
// orientations, directed edges one.
func adjacencyEdits(directed bool, diffs []EdgeDiff, transpose bool) []spgemm.StationaryEdit[float64] {
	out := make([]spgemm.StationaryEdit[float64], 0, 2*len(diffs))
	for _, d := range diffs {
		u, v := d.U, d.V
		if transpose {
			u, v = v, u
		}
		out = append(out, spgemm.StationaryEdit[float64]{I: u, J: v, V: d.W, Del: !d.Present})
		if !directed {
			out = append(out, spgemm.StationaryEdit[float64]{I: v, J: u, V: d.W, Del: !d.Present})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// applyEdits splices the owned subset of sorted edits into a sorted,
// duplicate-free entry slice: upserts insert or replace, deletes drop.
func applyEdits(cur []sparse.Entry[float64], edits []spgemm.StationaryEdit[float64], owned func(i, j int32) bool) []sparse.Entry[float64] {
	out := make([]sparse.Entry[float64], 0, len(cur)+len(edits))
	x := 0
	for _, ed := range edits {
		if !owned(ed.I, ed.J) {
			continue
		}
		for x < len(cur) && (cur[x].I < ed.I || (cur[x].I == ed.I && cur[x].J < ed.J)) {
			out = append(out, cur[x])
			x++
		}
		if x < len(cur) && cur[x].I == ed.I && cur[x].J == ed.J {
			x++
		}
		if !ed.Del {
			out = append(out, sparse.Entry[float64]{I: ed.I, J: ed.J, V: ed.V})
		}
	}
	out = append(out, cur[x:]...)
	return out
}

// Run computes the partial centrality Σ_{s∈sources} δ(s,·) of the resident
// topology on the simulated machine — every source of the graph when
// sources is nil — chunking explicit source sets into Batch-sized sweeps.
// Stationary working sets staged by earlier runs of this session are warm
// cache hits: only the frontier matrices move.
func (s *DistSession) Run(sources []int32) (*DistResult, error) {
	return s.RunCtx(context.Background(), sources)
}

// RunCtx is Run with trace propagation: when ctx carries an obs span, the
// region's modeled-vs-measured stats are attached as a machine.region
// child span with one grandchild per attributed phase.
func (s *DistSession) RunCtx(ctx context.Context, sources []int32) (*DistResult, error) {
	nb := Options{Batch: s.opt.Batch}.batchFor(s.g.N)
	if sources != nil && len(sources) < nb {
		nb = len(sources)
	}
	res, err := s.run(sources, nb)
	if err == nil {
		recordRegionSpan(ctx, "run", s.p, res.Stats)
	}
	return res, err
}

// run executes one simulated-machine region over the resident operands.
func (s *DistSession) run(sources []int32, nb int) (*DistResult, error) {
	g := s.g
	mach := transportFor(s.p, s.opt)
	pl := planner{
		p: s.p, n: g.N, adjNNZ: int64(g.AdjacencyNNZ()),
		model: mach.Model(), cons: s.opt.Constraint, forced: s.opt.Plan,
	}
	// The representative plan reported back: the one a typical frontier
	// product gets (individual operations may choose differently).
	plan := pl.planFor(nb, int64(float64(nb)*g.AvgDegree()), multpathBytes)

	res := &DistResult{Plan: plan, BC: make([]float64, g.N)}
	itersPer := make([]int, s.p)
	bcPer := make([][]float64, s.p)
	shard := distmat.DistShard(s.p)

	stats, err := mach.Run(func(proc *machine.Proc) {
		world := proc.World()
		rk := s.ranks[proc.Rank()]
		sess := spgemm.NewSessionWithCache(proc, rk.cache)
		sess.Workers = s.opt.Workers
		// Deferred host-side Patch splice work is charged here, as local
		// flops of the region that first benefits from the patched blocks.
		if rk.pendingFlops > 0 {
			proc.Phase(machine.PhasePatch)
			proc.AddFlops(rk.pendingFlops)
			rk.pendingFlops = 0
		}
		proc.Phase(machine.PhaseSweep)
		bc := make([]float64, g.N)
		iters := 0
		batches := 0
		for _, batch := range batchList(g.N, nb, sources) {
			batches++
			t, itF := distMFBF(sess, pl, rk.aMat, s.adjCSR, batch, shard)
			z, t, itB := distMFBr(sess, pl, rk.atMat, t, batch)
			iters += itF + itB
			distmat.ZipJoin(z, t, func(_, j int32, zc algebra.CentPath, tm algebra.MultPath) {
				bc[j] += zc.P * tm.M
			})
		}
		// One deferred dense reduction accumulates λ across processors.
		proc.Phase(machine.PhaseReduce)
		total := machine.Allreduce(world, bc, func(a, b float64) float64 { return a + b })
		itersPer[proc.Rank()] = iters
		bcPer[proc.Rank()] = total
		if proc.Rank() == 0 {
			res.Batches = batches
		}
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	res.Iterations = itersPer[0]
	copy(res.BC, bcPer[0])
	return res, nil
}
