// Package core implements the paper's primary contribution: Maximal
// Frontier Betweenness Centrality (MFBC), composed of the Maximal Frontier
// Bellman-Ford (MFBF, Algorithm 1) and Maximal Frontier Brandes (MFBr,
// Algorithm 2) phases combined with batching (Algorithm 3).
//
// This file holds the sequential implementation, which is both the p=1 fast
// path and the reference the distributed implementation is tested against.
// See dist.go for the distributed version built on communication-efficient
// sparse matrix multiplication.
package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// Options configures an MFBC run.
type Options struct {
	// Batch is n_b, the number of source vertices processed per MFBF+MFBr
	// sweep: the time/memory trade-off of Algorithm 3. Batch ≤ 0 selects
	// min(n, 128).
	Batch int
	// Workers is the shared-memory parallelism of the local SpGEMM
	// kernels: 0 selects GOMAXPROCS, 1 forces the sequential kernels.
	// Results are identical for every worker count.
	Workers int
}

func (o Options) batchFor(n int) int {
	b := o.Batch
	if b <= 0 {
		b = 128
	}
	if b > n {
		b = n
	}
	return b
}

// MFBF (Algorithm 1) computes, for each source s in sources and every
// vertex v, the multpath T(s,v) = (τ(s,v), σ̄(s,v)): shortest-path distance
// and multiplicity. Rows of T are indexed by source position; columns by
// vertex. Unreachable pairs and the source diagonal are absent (the sparse
// zero (∞,0)); see DESIGN.md §3 for the diagonal-suppression argument.
//
// It returns T together with the number of monoid operations performed and
// the number of Bellman-Ford iterations (frontier relaxation rounds).
func MFBF(a *sparse.CSR[float64], sources []int32) (*sparse.CSR[algebra.MultPath], int64, int) {
	return MFBFParallel(a, sources, 1)
}

// MFBFParallel is MFBF with the frontier products row-blocked across
// workers (sparse.MulParallel); its output is identical to MFBF for every
// worker count. workers <= 0 selects GOMAXPROCS.
func MFBFParallel(a *sparse.CSR[float64], sources []int32, workers int) (*sparse.CSR[algebra.MultPath], int64, int) {
	mp := algebra.MultPathMonoid()
	n := a.Cols
	nb := len(sources)

	init := sparse.NewCOO[algebra.MultPath](nb, n)
	for s, src := range sources {
		cols, vals := a.Row(int(src))
		for k, v := range cols {
			if v == src {
				continue
			}
			init.Append(int32(s), v, algebra.MultPath{W: vals[k], M: 1})
		}
	}
	t := sparse.FromCOO(init, mp)
	frontier := t
	var ops int64
	iters := 0
	for frontier.NNZ() > 0 {
		iters++
		if iters > a.Rows+1 {
			panic("core: MFBF failed to converge; the graph has a nonpositive-weight cycle")
		}
		ext, o := sparse.MulParallel(frontier, a, algebra.BFAction, mp, workers)
		ops += o
		ext = dropDiagonal(ext, sources)
		t = sparse.EWise(t, ext, mp)
		frontier = screenFrontier(ext, t)
	}
	return t, ops, iters
}

// dropDiagonal removes (s, sources[s]) entries: walks that return to their
// source are never shortest paths under strictly positive weights.
func dropDiagonal[T any](m *sparse.CSR[T], sources []int32) *sparse.CSR[T] {
	return sparse.Filter(m, func(i, j int32, _ T) bool { return j != sources[i] })
}

// screenFrontier implements Algorithm 1 line 6: the next frontier keeps the
// entries of the extension whose weight still matches the accumulated T
// (strictly worse paths are discarded; ties carry the newly discovered
// multiplicities forward).
func screenFrontier(ext, t *sparse.CSR[algebra.MultPath]) *sparse.CSR[algebra.MultPath] {
	out := &sparse.CSR[algebra.MultPath]{Rows: ext.Rows, Cols: ext.Cols, RowPtr: make([]int64, ext.Rows+1)}
	for i := 0; i < ext.Rows; i++ {
		ec, ev := ext.Row(i)
		tc, tv := t.Row(i)
		y := 0
		for x, j := range ec {
			for y < len(tc) && tc[y] < j {
				y++
			}
			//lint:allow floateq screening requires an exact match of bit-identically replicated weights
			if y < len(tc) && tc[y] == j && ev[x].W == tv[y].W && ev[x].M > 0 {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, ev[x])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// screenCent keeps the centpath entries whose weight matches T at the same
// coordinate; everything else is a spurious back-propagation artifact
// (including contributions at pairs absent from T).
func screenCent(p *sparse.CSR[algebra.CentPath], t *sparse.CSR[algebra.MultPath]) *sparse.CSR[algebra.CentPath] {
	out := &sparse.CSR[algebra.CentPath]{Rows: p.Rows, Cols: p.Cols, RowPtr: make([]int64, p.Rows+1)}
	for i := 0; i < p.Rows; i++ {
		pc, pv := p.Row(i)
		tc, tv := t.Row(i)
		y := 0
		for x, j := range pc {
			for y < len(tc) && tc[y] < j {
				y++
			}
			//lint:allow floateq screening requires an exact match of bit-identically replicated weights
			if y < len(tc) && tc[y] == j && pv[x].W == tv[y].W {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, pv[x])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// MFBr (Algorithm 2) back-propagates partial centrality factors
// ζ(s,v) = δ(s,v)/σ̄(s,v) over the shortest-path DAG encoded by T. The
// returned centpath matrix Z has exactly T's sparsity pattern with
// Z(s,v).P = ζ(s,v).
//
// As discussed in DESIGN.md §3, counters are initialized to the number of
// shortest-path-DAG children of each (s,v) pair (the semantics Lemma 4.2
// requires); leaves seed the first frontier.
func MFBr(at *sparse.CSR[float64], t *sparse.CSR[algebra.MultPath], sources []int32) (*sparse.CSR[algebra.CentPath], int64, int) {
	return MFBrParallel(at, t, sources, 1)
}

// MFBrParallel is MFBr with the back-propagation products row-blocked
// across workers; output identical to MFBr for every worker count.
func MFBrParallel(at *sparse.CSR[float64], t *sparse.CSR[algebra.MultPath], sources []int32, workers int) (*sparse.CSR[algebra.CentPath], int64, int) {
	cp := algebra.CentPathMonoid()

	// Child counting: one generalized product of the T pattern with Aᵀ.
	z0 := sparse.Map(t, cp, func(_, _ int32, v algebra.MultPath) algebra.CentPath {
		return algebra.CentPath{W: v.W, P: 0, C: 1}
	})
	counts, ops := sparse.MulParallel(z0, at, algebra.BrandesAction, cp, workers)
	counts = screenCent(counts, t)

	// Z holds every T coordinate with its child counter; leaves (counter 0)
	// seed the frontier with (T.w, 1/σ̄, −1).
	z := buildZ(t, counts)
	frontier := collectFrontier(z, t)

	iters := 0
	for frontier.NNZ() > 0 {
		iters++
		if iters > at.Rows+1 {
			panic("core: MFBr failed to converge; inconsistent shortest-path DAG")
		}
		p, o := sparse.MulParallel(frontier, at, algebra.BrandesAction, cp, workers)
		ops += o
		p = screenCent(p, t)
		z = sparse.EWise(z, p, cp)
		frontier = collectFrontier(z, t)
	}
	return z, ops, iters
}

// buildZ merges the T pattern with the screened child counts.
func buildZ(t *sparse.CSR[algebra.MultPath], counts *sparse.CSR[algebra.CentPath]) *sparse.CSR[algebra.CentPath] {
	out := &sparse.CSR[algebra.CentPath]{Rows: t.Rows, Cols: t.Cols, RowPtr: make([]int64, t.Rows+1)}
	out.ColIdx = make([]int32, 0, t.NNZ())
	out.Val = make([]algebra.CentPath, 0, t.NNZ())
	for i := 0; i < t.Rows; i++ {
		tc, tv := t.Row(i)
		cc, cv := counts.Row(i)
		y := 0
		for x, j := range tc {
			for y < len(cc) && cc[y] < j {
				y++
			}
			var c int64
			if y < len(cc) && cc[y] == j {
				c = cv[y].C
			}
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, algebra.CentPath{W: tv[x].W, P: 0, C: c})
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// collectFrontier extracts the entries of Z whose counter just reached zero
// (all children reported), emitting frontier centpaths (T.w, ζ + 1/σ̄, −1)
// and marking them done in Z. Z and T share their sparsity pattern.
func collectFrontier(z *sparse.CSR[algebra.CentPath], t *sparse.CSR[algebra.MultPath]) *sparse.CSR[algebra.CentPath] {
	out := &sparse.CSR[algebra.CentPath]{Rows: z.Rows, Cols: z.Cols, RowPtr: make([]int64, z.Rows+1)}
	for i := 0; i < z.Rows; i++ {
		lo, hi := z.RowPtr[i], z.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			if z.Val[k].C == 0 {
				m := t.Val[k].M
				out.ColIdx = append(out.ColIdx, z.ColIdx[k])
				out.Val = append(out.Val, algebra.CentPath{W: z.Val[k].W, P: z.Val[k].P + 1/m, C: -1})
				z.Val[k].C = -1
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Result carries the output of an MFBC run along with work statistics.
type Result struct {
	BC         []float64
	Ops        int64 // generalized multiply operations (ops(A,B) measure)
	Iterations int   // total frontier relaxation rounds across both phases and all batches
	Batches    int
}

// MFBC (Algorithm 3) computes betweenness centrality for every vertex of g.
func MFBC(g *graph.Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a := g.Adjacency()
	at := sparse.Transpose(a)
	res := &Result{BC: make([]float64, g.N)}
	nb := opt.batchFor(g.N)
	for lo := 0; lo < g.N; lo += nb {
		hi := lo + nb
		if hi > g.N {
			hi = g.N
		}
		sources := make([]int32, 0, hi-lo)
		for s := lo; s < hi; s++ {
			sources = append(sources, int32(s))
		}
		res.Batches++
		t, opsF, itF := MFBFParallel(a, sources, opt.Workers)
		z, opsB, itB := MFBrParallel(at, t, sources, opt.Workers)
		res.Ops += opsF + opsB
		res.Iterations += itF + itB
		accumulate(res.BC, z, t)
	}
	return res, nil
}

// MFBCBatch runs a single batch for the given sources, accumulating
// δ(s,v) = ζ(s,v)·σ̄(s,v) into bc. Used by the benchmark harness.
func MFBCBatch(a, at *sparse.CSR[float64], sources []int32, bc []float64) (ops int64, iters int) {
	return MFBCBatchParallel(a, at, sources, bc, 1)
}

// MFBCBatchParallel is MFBCBatch with worker-parallel local kernels.
func MFBCBatchParallel(a, at *sparse.CSR[float64], sources []int32, bc []float64, workers int) (ops int64, iters int) {
	t, opsF, itF := MFBFParallel(a, sources, workers)
	z, opsB, itB := MFBrParallel(at, t, sources, workers)
	accumulate(bc, z, t)
	return opsF + opsB, itF + itB
}

// accumulate folds one batch into the centrality vector:
// λ(v) += Σ_s Z(s,v).p · T(s,v).m (Algorithm 3 line 5).
func accumulate(bc []float64, z *sparse.CSR[algebra.CentPath], t *sparse.CSR[algebra.MultPath]) {
	sparse.ZipJoin(z, t, func(_, j int32, zc algebra.CentPath, tm algebra.MultPath) {
		bc[j] += zc.P * tm.M
	})
}
