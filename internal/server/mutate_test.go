package server

import (
	"bytes"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

func scoresAlmostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if diff > 1e-9*scale {
			return false
		}
	}
	return true
}

// TestMutateBumpsVersionAndSeedsWarmScores: a mutation batch must replace
// the registry entry with a new version, purge the stale cache, and seed
// the dynamic engine's maintained scores so the next default exact query
// is a cache hit with no recompute.
func TestMutateBumpsVersionAndSeedsWarmScores(t *testing.T) {
	s := New(Config{Workers: 1})
	g := repro.GridGraph(5, 5, 1, 1)
	info, err := s.AddGraph("g", g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(QueryRequest{Graph: "g"}); err != nil {
		t.Fatal(err)
	}

	muts := []repro.Mutation{
		{Op: repro.MutAddEdge, U: 0, V: 24, W: 1},
		{Op: repro.MutRemoveEdge, U: 0, V: 1},
	}
	res, err := s.Mutate("g", muts)
	if err != nil {
		t.Fatal(err)
	}
	if res.OldVersion != info.Version || res.Version == info.Version {
		t.Fatalf("version bookkeeping: %+v (registered %016x)", res, info.Version)
	}
	if res.Applied != 2 || res.M != g.M() {
		t.Fatalf("mutate result: %+v (want applied=2, m=%d)", res, g.M())
	}
	ni, err := s.GraphInfoFor("g")
	if err != nil {
		t.Fatal(err)
	}
	if ni.Version != res.Version || ni.M != g.M() {
		t.Fatalf("registry not updated: %+v vs %+v", ni, res)
	}

	st := s.Stats()
	if st.Mutations != 1 || st.WarmSeeds != 2 ||
		st.WarmSeedsExact != 1 || st.WarmSeedsNormalized != 1 || st.WarmSeedsTopK != 2 {
		t.Fatalf("stats = %+v", st)
	}
	computesBefore := st.Computes

	qr, err := s.Query(QueryRequest{Graph: "g", IncludeScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Stats.CacheHit {
		t.Fatal("post-mutation default exact query missed the warm-seeded cache")
	}
	if qr.Version != res.Version {
		t.Fatalf("query version %016x, want %016x", qr.Version, res.Version)
	}
	// The normalized variant is a warm hit too (seeded as a cheap
	// transform of the same maintained vector), as is a top-k request on
	// either entry.
	qn, err := s.Query(QueryRequest{Graph: "g", Normalize: true, K: 3, IncludeScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if !qn.Stats.CacheHit {
		t.Fatal("post-mutation normalized query missed the warm-seeded cache")
	}
	if len(qn.TopK) != 3 {
		t.Fatalf("normalized top-k = %+v", qn.TopK)
	}
	if got := s.Stats().Computes; got != computesBefore {
		t.Fatalf("warm hit still computed: %d → %d", computesBefore, got)
	}

	// The warm scores are the real thing: compare against from-scratch,
	// raw and normalized.
	shadow := g.Clone()
	if _, err := shadow.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	want, err := repro.Compute(shadow, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !scoresAlmostEqual(qr.Scores, want.BC) {
		t.Fatal("warm-seeded scores differ from a from-scratch compute")
	}
	wantNorm, err := repro.Compute(shadow, repro.Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !scoresAlmostEqual(qn.Scores, wantNorm.BC) {
		t.Fatal("warm-seeded normalized scores differ from a from-scratch normalized compute")
	}
}

// TestMutateDistributedMode: with DynProcs configured, PATCHes run their
// re-computation on the simulated machine — the result reports modeled
// communication and a plan, the maintained scores still match from-scratch
// computes, and the procs-variant cache keys are warm-seeded alongside the
// sequential ones.
func TestMutateDistributedMode(t *testing.T) {
	s := New(Config{Workers: 1, DynProcs: 2})
	g := repro.GridGraph(5, 5, 3, 7)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	muts := []repro.Mutation{
		{Op: repro.MutSetWeight, U: g.Edges[10].U, V: g.Edges[10].V, W: 9},
		{Op: repro.MutAddEdge, U: 0, V: 24, W: 2},
	}
	res, err := s.Mutate("g", muts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs != 2 || res.Plan == "" {
		t.Fatalf("distributed mutate reported procs=%d plan=%q", res.Procs, res.Plan)
	}
	if res.Comm.Bytes == 0 || res.Comm.ModelSec == 0 {
		t.Fatalf("distributed mutate reported no modeled communication: %+v", res.Comm)
	}

	st := s.Stats()
	if st.WarmSeeds != 4 || st.WarmSeedsDistributed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Both the sequential default key and the procs-variant are warm.
	q1, err := s.Query(QueryRequest{Graph: "g", IncludeScores: true})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Query(QueryRequest{Graph: "g", Procs: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !q1.Stats.CacheHit || !q2.Stats.CacheHit {
		t.Fatalf("post-mutation hits: default=%v procs=%v", q1.Stats.CacheHit, q2.Stats.CacheHit)
	}
	if q2.Procs != 2 || q2.Plan == "" {
		t.Fatalf("procs-variant entry lost its distributed metadata: %+v", q2)
	}

	shadow := g.Clone()
	if _, err := shadow.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	want, err := repro.Compute(shadow, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !scoresAlmostEqual(q1.Scores, want.BC) {
		t.Fatal("distributed-mode maintained scores differ from from-scratch compute")
	}
	// The precomputed ranking must agree with a fresh selection.
	wantTop := repro.TopK(want.BC, 4)
	for i, vs := range q2.TopK {
		if vs.Vertex != wantTop[i] {
			t.Fatalf("seeded ranking diverged at %d: %+v vs %v", i, q2.TopK, wantTop)
		}
	}
}

// TestWarmSeedTinyCacheKeepsExactKey: with a cache bound smaller than the
// variant count, the default exact entry must be the one that survives
// (variants are seeded in ascending priority).
func TestWarmSeedTinyCacheKeepsExactKey(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: 1, DynProcs: 2})
	g := repro.GridGraph(4, 4, 1, 1)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mutate("g", []repro.Mutation{{Op: repro.MutAddEdge, U: 0, V: 15, W: 1}}); err != nil {
		t.Fatal(err)
	}
	computes := s.Stats().Computes
	q, err := s.Query(QueryRequest{Graph: "g", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Stats.CacheHit || s.Stats().Computes != computes {
		t.Fatalf("default exact query after mutation on cache=1 recomputed: hit=%v", q.Stats.CacheHit)
	}
}

// TestMutateInvalidatesOnlyThatGraph: entries of other graphs must survive
// a mutation's purge.
func TestMutateInvalidatesOnlyThatGraph(t *testing.T) {
	s := New(Config{Workers: 1})
	for _, name := range []string{"a", "b"} {
		if _, err := s.AddGraph(name, repro.GridGraph(4, 4, 1, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Query(QueryRequest{Graph: name}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Mutate("a", []repro.Mutation{{Op: repro.MutAddEdge, U: 0, V: 15, W: 1}}); err != nil {
		t.Fatal(err)
	}
	qb, err := s.Query(QueryRequest{Graph: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !qb.Stats.CacheHit {
		t.Fatal("mutating graph a dropped graph b's cache entry")
	}
	qa, err := s.Query(QueryRequest{Graph: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if !qa.Stats.CacheHit { // warm seed, not the stale pre-mutation entry
		t.Fatal("graph a's warm seed missing")
	}
	if evicted := s.Stats().Evictions; evicted != 1 {
		t.Fatalf("evictions = %d, want exactly graph a's stale entry", evicted)
	}
}

// TestMutateErrors: unknown graphs, empty batches, and invalid mutations
// must fail without touching state.
func TestMutateErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Mutate("nope", []repro.Mutation{{Op: repro.MutAddVertex}}); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("unknown graph: %v", err)
	}
	info, err := s.AddGraph("g", repro.GridGraph(3, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mutate("g", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := s.Mutate("g", []repro.Mutation{
		{Op: repro.MutAddEdge, U: 0, V: 8, W: 1},
		{Op: repro.MutAddEdge, U: 0, V: 99, W: 1},
	}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	ni, err := s.GraphInfoFor("g")
	if err != nil {
		t.Fatal(err)
	}
	if ni.Version != info.Version {
		t.Fatal("failed batch changed the registered version")
	}
	if st := s.Stats(); st.Mutations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The engine built for the failed batch (with its initial exact
	// compute) must stay attached so the next PATCH doesn't pay for it
	// again.
	s.mu.Lock()
	kept := s.graphs["g"].dyn != nil
	s.mu.Unlock()
	if !kept {
		t.Fatal("failed batch discarded the graph's dynamic engine")
	}
	if _, err := s.Mutate("g", []repro.Mutation{{Op: repro.MutAddVertex}}); err != nil {
		t.Fatalf("valid batch after failed one: %v", err)
	}
}

// TestMutationsSurviveAcrossBatches: the dynamic engine persists across
// Mutate calls, so successive batches apply incrementally to the evolving
// topology (not to the originally registered graph).
func TestMutationsSurviveAcrossBatches(t *testing.T) {
	s := New(Config{Workers: 1})
	g := repro.GridGraph(4, 4, 1, 1)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	shadow := g.Clone()
	batches := [][]repro.Mutation{
		{{Op: repro.MutAddEdge, U: 0, V: 15, W: 1}},
		{{Op: repro.MutRemoveEdge, U: 0, V: 15}},
		{{Op: repro.MutAddVertex}, {Op: repro.MutAddEdge, U: 5, V: 16, W: 1}},
	}
	var last *MutateResult
	for _, b := range batches {
		var err error
		last, err = s.Mutate("g", b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := shadow.ApplyAll(b); err != nil {
			t.Fatal(err)
		}
	}
	if last.Version != repro.Fingerprint(shadow) {
		t.Fatal("server graph diverged from sequential replay")
	}
	if last.N != 17 {
		t.Fatalf("n = %d after add_vertex, want 17", last.N)
	}
	q, err := s.Query(QueryRequest{Graph: "g", IncludeScores: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.Compute(shadow, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !scoresAlmostEqual(q.Scores, want.BC) {
		t.Fatal("served scores differ from from-scratch compute on the evolved graph")
	}
}

// TestConcurrentQueriesDuringMutations is the torn-state acceptance test:
// readers hammering Query while mutation batches apply must only ever see
// (version, scores) pairs matching one committed version — old or new,
// never a mix. Run under -race in CI.
func TestConcurrentQueriesDuringMutations(t *testing.T) {
	s := New(Config{Workers: 1})
	g := repro.GridGraph(5, 5, 1, 1)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}

	batches := [][]repro.Mutation{
		{{Op: repro.MutAddEdge, U: 0, V: 24, W: 1}},
		{{Op: repro.MutRemoveEdge, U: 0, V: 1}, {Op: repro.MutAddEdge, U: 3, V: 17, W: 1}},
		{{Op: repro.MutAddEdge, U: 7, V: 21, W: 1}},
		{{Op: repro.MutRemoveEdge, U: 3, V: 17}},
	}
	expect := make(map[uint64][]float64)
	shadow := g.Clone()
	record := func() {
		want, err := repro.Compute(shadow, repro.Options{})
		if err != nil {
			t.Fatal(err)
		}
		expect[repro.Fingerprint(shadow)] = want.BC
	}
	record()
	for _, b := range batches {
		if _, err := shadow.ApplyAll(b); err != nil {
			t.Fatal(err)
		}
		record()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query(QueryRequest{Graph: "g", IncludeScores: true})
				if err != nil {
					fail <- "query error: " + err.Error()
					return
				}
				want, ok := expect[res.Version]
				if !ok {
					fail <- "reader saw a version that was never committed"
					return
				}
				if !scoresAlmostEqual(res.Scores, want) {
					fail <- "reader saw scores inconsistent with their version (torn state)"
					return
				}
			}
		}()
	}
	for _, b := range batches {
		if _, err := s.Mutate("g", b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if st := s.Stats(); st.Mutations != int64(len(batches)) {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHTTPMutateRoute drives PATCH /graphs/{name} end to end, including
// the error statuses (404 unknown graph, 400 invalid op, 413 oversized
// body — the decodeJSON fix).
func TestHTTPMutateRoute(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	doJSON(t, ts, "POST", "/graphs/demo",
		GraphSpec{Kind: "grid", Rows: 4, Cols: 4}, http.StatusCreated, nil)
	var before GraphInfo
	doJSON(t, ts, "GET", "/graphs/demo", nil, http.StatusOK, &before)

	var res MutateResult
	doJSON(t, ts, "PATCH", "/graphs/demo", MutateRequest{Mutations: []repro.Mutation{
		{Op: repro.MutAddEdge, U: 0, V: 15, W: 1},
	}}, http.StatusOK, &res)
	if res.Version == before.Version || res.M != before.M+1 {
		t.Fatalf("mutate result %+v vs before %+v", res, before)
	}
	var after GraphInfo
	doJSON(t, ts, "GET", "/graphs/demo", nil, http.StatusOK, &after)
	if after.Version != res.Version || after.M != res.M {
		t.Fatalf("GET after PATCH: %+v vs %+v", after, res)
	}

	doJSON(t, ts, "PATCH", "/graphs/ghost", MutateRequest{Mutations: []repro.Mutation{
		{Op: repro.MutAddVertex},
	}}, http.StatusNotFound, nil)
	doJSON(t, ts, "PATCH", "/graphs/demo", MutateRequest{Mutations: []repro.Mutation{
		{Op: "bogus"},
	}}, http.StatusBadRequest, nil)

	// Oversized body: decodeJSON must surface MaxBytesError as 413.
	huge := `{"mutations":[` + strings.Repeat(`{"op":"add_vertex"},`, 1<<17)
	req, err := http.NewRequest("PATCH", ts.URL+"/graphs/demo", bytes.NewReader([]byte(huge)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

// TestMutateFusedPhasesAndStats: an incremental distributed PATCH runs as
// one fused machine region — the response carries the fused flag and the
// diff/patch/sweep/reduce phase attribution, and /stats aggregates fused
// applies and operand-cache evictions across engines.
func TestMutateFusedPhasesAndStats(t *testing.T) {
	s := New(Config{Workers: 1, DynProcs: 2, DirtyThreshold: -1, DynCacheSets: 4})
	g := repro.GridGraph(5, 5, 3, 7)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	res, err := s.Mutate("g", []repro.Mutation{
		{Op: repro.MutSetWeight, U: g.Edges[3].U, V: g.Edges[3].V, W: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "incremental" || !res.Fused {
		t.Fatalf("expected a fused incremental apply, got %+v", res)
	}
	names := map[string]bool{}
	for _, ph := range res.Phases {
		names[ph.Name] = true
	}
	for _, want := range []string{"diff", "patch", "sweep", "reduce"} {
		if !names[want] {
			t.Fatalf("PATCH response missing phase %q: %+v", want, res.Phases)
		}
	}
	if st := s.Stats(); st.FusedApplies != 1 {
		t.Fatalf("stats must count the fused apply: %+v", st)
	}
}

// TestMutateSampledErrBound: a server configured for sampled mode
// (DynSampleBudget) attaches the Hoeffding half-width to the PATCH
// response, and sampled snapshots are never warm-seeded into the exact
// result cache.
func TestMutateSampledErrBound(t *testing.T) {
	s := New(Config{Workers: 1, DynSampleBudget: 6, DynRefreshEvery: 99})
	g := repro.GridGraph(6, 6, 1, 9)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	res, err := s.Mutate("g", []repro.Mutation{
		{Op: repro.MutSetWeight, U: g.Edges[0].U, V: g.Edges[0].V, W: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "sampled" || !res.Sampled {
		t.Fatalf("expected a sampled PATCH, got %+v", res)
	}
	if res.ErrBound <= 0 {
		t.Fatalf("sampled PATCH must carry a positive err_bound: %+v", res)
	}
	if st := s.Stats(); st.WarmSeeds != 0 {
		t.Fatalf("sampled snapshots must not warm-seed the exact cache: %+v", st)
	}
}
