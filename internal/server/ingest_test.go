package server

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// TestIngestGroupCommitCoalesces pins the tentpole win: K writers queued
// behind a held serializer commit as ONE group — one engine apply, every
// waiter acknowledged with the same committed version and the group's
// effective (post-coalescing) op count.
func TestIngestGroupCommitCoalesces(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true})
	g := repro.GridGraph(6, 6, 1, 1)
	n := int32(g.N)
	if _, err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}

	// Hold the per-graph serializer so the elected drainer blocks and the
	// whole round accumulates into one group.
	lk := s.mutLockFor("g")
	lk.Lock()

	const K = 8
	results := make(chan *MutateResult, K)
	errs := make(chan error, K)
	for i := 0; i < K; i++ {
		// K distinct diagonal chords, none a grid edge: individually valid.
		u := int32(i)
		go func() {
			res, err := s.MutateDurable(context.Background(), "g",
				[]repro.Mutation{{Op: repro.MutAddEdge, U: u, V: n - 1 - u, W: 1}},
				DurabilityApplied)
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}()
	}
	waitFor(t, "all batches queued", func() bool { return s.Stats().IngestQueueDepth == K })
	lk.Unlock()

	var version uint64
	for i := 0; i < K; i++ {
		select {
		case err := <-errs:
			t.Fatalf("batch failed: %v", err)
		case res := <-results:
			if i == 0 {
				version = res.Version
			}
			if res.Version != version {
				t.Fatalf("group members report different versions: %d vs %d", res.Version, version)
			}
			if res.CoalescedBatches != K {
				t.Fatalf("CoalescedBatches = %d, want %d", res.CoalescedBatches, K)
			}
			if res.Applied != K {
				t.Fatalf("Applied = %d, want %d (the group's merged op count)", res.Applied, K)
			}
			if res.QueueWaitMS <= 0 {
				t.Fatalf("QueueWaitMS = %v, want > 0 for a batch that waited on the serializer", res.QueueWaitMS)
			}
			if res.Queued {
				t.Fatal("applied-durability result marked Queued")
			}
		}
	}

	st := s.Stats()
	if st.IngestEnqueued != K || st.IngestCoalesced != K {
		t.Fatalf("enqueued/coalesced = %d/%d, want %d/%d", st.IngestEnqueued, st.IngestCoalesced, K, K)
	}
	if st.IngestCommits != 1 {
		t.Fatalf("IngestCommits = %d, want 1 (one group commit for the whole round)", st.IngestCommits)
	}
	if st.Mutations != 1 {
		t.Fatalf("Mutations = %d, want 1 engine apply for %d writers", st.Mutations, K)
	}
	if st.IngestQueueDepth != 0 {
		t.Fatalf("IngestQueueDepth = %d after drain, want 0", st.IngestQueueDepth)
	}
	info, err := s.GraphInfoFor("g")
	if err != nil {
		t.Fatal(err)
	}
	if wantM := 60 + K; info.M != wantM {
		t.Fatalf("final m = %d, want %d (every chord landed)", info.M, wantM)
	}
}

// TestIngestEnqueuedDurability: an enqueued-durability PATCH acks before
// the apply with the pre-commit version, and the commit still lands
// asynchronously.
func TestIngestEnqueuedDurability(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true, IngestDurability: DurabilityEnqueued})
	if _, err := s.AddGraph("g", repro.GridGraph(5, 5, 1, 1)); err != nil {
		t.Fatal(err)
	}
	info, _ := s.GraphInfoFor("g")

	res, err := s.MutateDurable(context.Background(), "g",
		[]repro.Mutation{{Op: repro.MutAddEdge, U: 0, V: 24, W: 1}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Queued || res.QueueDepth != 1 {
		t.Fatalf("ack = %+v, want Queued at depth 1", res)
	}
	if res.Version != info.Version {
		t.Fatalf("enqueued ack version = %d, want the pre-commit %d", res.Version, info.Version)
	}
	waitFor(t, "async commit", func() bool { return s.Stats().Mutations == 1 })
	after, err := s.GraphInfoFor("g")
	if err != nil {
		t.Fatal(err)
	}
	if after.Version == info.Version || after.M != info.M+1 {
		t.Fatalf("commit did not land: version %d→%d, m %d→%d", info.Version, after.Version, info.M, after.M)
	}

	// A per-request override flips one batch back to applied durability.
	res, err = s.MutateDurable(context.Background(), "g",
		[]repro.Mutation{{Op: repro.MutAddEdge, U: 1, V: 23, W: 1}}, DurabilityApplied)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queued || res.Version == after.Version {
		t.Fatalf("applied override still acked pre-commit: %+v", res)
	}

	if _, err := s.MutateDurable(context.Background(), "g", nil, ""); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := s.MutateDurable(context.Background(), "g",
		[]repro.Mutation{{Op: repro.MutAddVertex}}, "eventually"); err == nil {
		t.Fatal("unknown durability accepted")
	}
}

// TestIngestBackpressure: beyond IngestMaxDepth the server sheds load
// with ErrIngestBackpressure, and the HTTP layer maps it to 429 +
// Retry-After.
func TestIngestBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true, IngestMaxDepth: 2, IngestDurability: DurabilityEnqueued})
	if _, err := s.AddGraph("g", repro.GridGraph(5, 5, 1, 1)); err != nil {
		t.Fatal(err)
	}
	lk := s.mutLockFor("g")
	lk.Lock()

	add := func(u, v int32) (*MutateResult, error) {
		return s.MutateDurable(context.Background(), "g",
			[]repro.Mutation{{Op: repro.MutAddEdge, U: u, V: v, W: 1}}, "")
	}
	if _, err := add(0, 24); err != nil {
		t.Fatal(err)
	}
	if _, err := add(1, 23); err != nil {
		t.Fatal(err)
	}
	if _, err := add(2, 22); !errors.Is(err, ErrIngestBackpressure) {
		t.Fatalf("over-depth mutate: %v, want ErrIngestBackpressure", err)
	}

	// The HTTP mapping: 429 with a Retry-After hint.
	mux := NewMux(s)
	req := httptest.NewRequest("PATCH", "/graphs/g",
		bytes.NewBufferString(`{"mutations":[{"op":"add_edge","u":3,"v":21,"w":1}]}`))
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP status = %d, want 429; body %s", rw.Code, rw.Body.String())
	}
	if rw.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", rw.Header().Get("Retry-After"))
	}
	if s.Stats().IngestRejected != 2 {
		t.Fatalf("IngestRejected = %d, want 2", s.Stats().IngestRejected)
	}

	lk.Unlock()
	waitFor(t, "backlog drained", func() bool { return s.Stats().Mutations >= 1 && s.Stats().IngestQueueDepth == 0 })
	// Capacity freed: the next batch is admitted.
	if _, err := add(4, 20); err != nil {
		t.Fatal(err)
	}
}

// TestIngestEnqueuedHTTPStatus: an enqueued-durability PATCH answers 202
// with queued=true, not 200.
func TestIngestEnqueuedHTTPStatus(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true})
	if _, err := s.AddGraph("g", repro.GridGraph(5, 5, 1, 1)); err != nil {
		t.Fatal(err)
	}
	mux := NewMux(s)
	req := httptest.NewRequest("PATCH", "/graphs/g",
		bytes.NewBufferString(`{"mutations":[{"op":"add_edge","u":0,"v":24,"w":1}],"durability":"enqueued"}`))
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	if rw.Code != http.StatusAccepted {
		t.Fatalf("HTTP status = %d, want 202; body %s", rw.Code, rw.Body.String())
	}
	if !bytes.Contains(rw.Body.Bytes(), []byte(`"queued":true`)) {
		t.Fatalf("202 body missing queued flag: %s", rw.Body.String())
	}
}

// TestIngestInvalidBatchRejectedIndividually: group commit preserves
// sequential-apply error semantics — an invalid batch inside a group gets
// its own error while its neighbors commit.
func TestIngestInvalidBatchRejectedIndividually(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true})
	g := repro.GridGraph(6, 6, 1, 1)
	n := int32(g.N)
	if _, err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	lk := s.mutLockFor("g")
	lk.Lock()

	type out struct {
		res *MutateResult
		err error
	}
	outs := make([]chan out, 3)
	batches := [][]repro.Mutation{
		{{Op: repro.MutAddEdge, U: 0, V: n - 1, W: 1}},
		{{Op: repro.MutAddEdge, U: 0, V: n - 1, W: 1}}, // duplicate of batch 0: invalid vs the group's shadow
		{{Op: repro.MutAddEdge, U: 1, V: n - 2, W: 1}},
	}
	for i, muts := range batches {
		outs[i] = make(chan out, 1)
		ch, b := outs[i], muts
		go func() {
			res, err := s.MutateDurable(context.Background(), "g", b, DurabilityApplied)
			ch <- out{res, err}
		}()
		// Arrival order matters to the assertion; queue them one by one.
		want := i + 1
		waitFor(t, "batch queued", func() bool { return s.Stats().IngestQueueDepth == want })
	}
	lk.Unlock()

	if o := <-outs[0]; o.err != nil {
		t.Fatalf("batch 0: %v, want success", o.err)
	}
	if o := <-outs[1]; o.err == nil {
		t.Fatal("duplicate batch 1 committed, want its own validation error")
	}
	o2 := <-outs[2]
	if o2.err != nil {
		t.Fatalf("batch 2: %v, want success", o2.err)
	}
	if o2.res.CoalescedBatches != 2 {
		t.Fatalf("batch 2 CoalescedBatches = %d, want 2 (the invalid batch dropped out)", o2.res.CoalescedBatches)
	}
	st := s.Stats()
	if st.IngestBatchErrors != 1 {
		t.Fatalf("IngestBatchErrors = %d, want 1", st.IngestBatchErrors)
	}
	info, _ := s.GraphInfoFor("g")
	if info.M != 62 {
		t.Fatalf("final m = %d, want 62 (both valid chords, duplicate skipped)", info.M)
	}
}

// TestIngestReportsEffectiveBatch: the PATCH response reports the
// post-coalescing op count, not the caller's raw batch size — two
// redundant reweights of one edge commit as a single effective op.
func TestIngestReportsEffectiveBatch(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true})
	g := repro.GridGraph(5, 5, 1, 1)
	e := g.Edges[0]
	if _, err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	res, err := s.MutateDurable(context.Background(), "g", []repro.Mutation{
		{Op: repro.MutSetWeight, U: e.U, V: e.V, W: 3},
		{Op: repro.MutSetWeight, U: e.U, V: e.V, W: 5},
	}, DurabilityApplied)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("Applied = %d, want 1 (chained sets coalesce to the last)", res.Applied)
	}
	if res.CoalescedBatches != 1 {
		t.Fatalf("CoalescedBatches = %d, want 1", res.CoalescedBatches)
	}
	if w, ok := mustGraph(t, s, "g").FindEdge(e.U, e.V); !ok || w != 5 { //lint:allow floateq exact literal survives the apply
		t.Fatalf("edge weight = (%v,%v), want 5", w, ok)
	}
}

func mustGraph(t *testing.T, s *Server, name string) *repro.Graph {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	ge, ok := s.graphs[name]
	if !ok {
		t.Fatalf("graph %q not registered", name)
	}
	return ge.g
}

// TestGroupCommitDifferential is the acceptance differential: a seeded
// schedule of mutation rounds applied through the ingest pipeline (each
// round forced into one group commit) must match a sync server applying
// the same batches one at a time — scores equal at 1e-9 on every round
// boundary, and equal to a from-scratch Compute at the end.
func TestGroupCommitDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		base := repro.GridGraph(6, 6, 3, seed)
		async := New(Config{Workers: 1, IngestQueue: true})
		sync_ := New(Config{Workers: 1})
		if _, err := async.AddGraph("g", base.Clone()); err != nil {
			t.Fatal(err)
		}
		if _, err := sync_.AddGraph("g", base.Clone()); err != nil {
			t.Fatal(err)
		}

		// shadow tracks the graph state batches are generated against, so
		// every batch is valid when applied in arrival order.
		shadow := base.Clone()
		for round := 0; round < 4; round++ {
			nb := 2 + rng.Intn(3)
			batches := make([][]repro.Mutation, nb)
			for b := range batches {
				for op := 0; op < 1+rng.Intn(2); op++ {
					var m repro.Mutation
					switch rng.Intn(3) {
					case 0: // reweight an existing edge
						e := shadow.Edges[rng.Intn(len(shadow.Edges))]
						m = repro.Mutation{Op: repro.MutSetWeight, U: e.U, V: e.V, W: float64(1 + rng.Intn(9))}
					case 1: // add a random non-edge
						u, v := int32(rng.Intn(shadow.N)), int32(rng.Intn(shadow.N))
						m = repro.Mutation{Op: repro.MutAddEdge, U: u, V: v, W: float64(1 + rng.Intn(4))}
					default: // remove an existing edge
						e := shadow.Edges[rng.Intn(len(shadow.Edges))]
						m = repro.Mutation{Op: repro.MutRemoveEdge, U: e.U, V: e.V}
					}
					if err := shadow.Apply(m); err != nil {
						continue // invalid proposal (self-loop, duplicate); skip
					}
					batches[b] = append(batches[b], m)
				}
				if len(batches[b]) == 0 {
					e := shadow.Edges[rng.Intn(len(shadow.Edges))]
					m := repro.Mutation{Op: repro.MutSetWeight, U: e.U, V: e.V, W: float64(2 + rng.Intn(5))}
					if err := shadow.Apply(m); err != nil {
						t.Fatal(err)
					}
					batches[b] = []repro.Mutation{m}
				}
			}

			// Sync side: one engine apply per batch, in order.
			for _, b := range batches {
				if _, err := sync_.Mutate("g", b); err != nil {
					t.Fatalf("seed %d round %d: sync apply: %v", seed, round, err)
				}
			}
			// Async side: hold the serializer so the round lands as ONE
			// group commit, in the same arrival order.
			lk := async.mutLockFor("g")
			lk.Lock()
			errCh := make(chan error, nb)
			for i, b := range batches {
				muts := b
				go func() {
					_, err := async.MutateDurable(context.Background(), "g", muts, DurabilityApplied)
					errCh <- err
				}()
				want := i + 1
				waitFor(t, "round queued in order", func() bool { return async.Stats().IngestQueueDepth == want })
			}
			lk.Unlock()
			for range batches {
				if err := <-errCh; err != nil {
					t.Fatalf("seed %d round %d: group commit: %v", seed, round, err)
				}
			}

			qa, err := async.Query(QueryRequest{Graph: "g", IncludeScores: true})
			if err != nil {
				t.Fatal(err)
			}
			qs, err := sync_.Query(QueryRequest{Graph: "g", IncludeScores: true})
			if err != nil {
				t.Fatal(err)
			}
			if !scoresAlmostEqual(qa.Scores, qs.Scores) {
				t.Fatalf("seed %d round %d: coalesced vs batch-by-batch scores diverge", seed, round)
			}
		}

		// Final cross-check against a from-scratch compute on the shadow.
		want, err := repro.Compute(shadow, repro.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		qa, err := async.Query(QueryRequest{Graph: "g", IncludeScores: true})
		if err != nil {
			t.Fatal(err)
		}
		if !scoresAlmostEqual(qa.Scores, want.BC) {
			t.Fatalf("seed %d: final coalesced scores diverge from from-scratch Compute", seed)
		}
	}
}

// TestIngestStatsReadback: /stats surfaces the ingest counters scraped by
// the load harness.
func TestIngestStatsReadback(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true})
	if _, err := s.AddGraph("g", repro.GridGraph(4, 4, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MutateDurable(context.Background(), "g",
		[]repro.Mutation{{Op: repro.MutAddEdge, U: 0, V: 15, W: 1}}, DurabilityApplied); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.IngestEnqueued != 1 || st.IngestCommits != 1 || st.IngestCoalesced != 1 {
		t.Fatalf("ingest counters = %+v, want 1/1/1", st)
	}
	// The metric families exist on the registry exposition too.
	text := s.Registry().Text()
	for _, name := range []string{
		"mfbc_ingest_queue_depth", "mfbc_ingest_coalesced_total",
		"mfbc_ingest_group_commit_size", "mfbc_ingest_queue_wait_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("metrics exposition missing %s", name)
		}
	}
}
