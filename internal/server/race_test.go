package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
)

// gridWithNonEdges builds a weighted grid graph and returns it with two
// vertex pairs that are guaranteed not to be grid edges, so concurrent
// add_edge batches are always individually valid.
func gridWithNonEdges(seed int64) (*repro.Graph, [2]int32, [2]int32) {
	g := repro.GridGraph(12, 12, 5, seed)
	n := int32(g.N)
	return g, [2]int32{0, n - 1}, [2]int32{1, n - 2}
}

// TestEvictMutateRaceSerialization pins the Evict/Mutate serialization
// contract: a Mutate queued on the per-graph serializer while the graph is
// evicted and re-registered must still serialize with every other Mutate
// for that name. Pre-fix, Evict deleted mutLocks[name], so the second
// Mutate minted a fresh mutex and the two batches ran concurrently — the
// loser of the install race got a spurious ErrGraphConflict (and both paid
// a duplicate engine construction). Post-fix both batches succeed, in
// order, and both edges land in the final graph.
func TestEvictMutateRaceSerialization(t *testing.T) {
	for round := 0; round < 3; round++ {
		s := New(Config{Workers: 1})
		g, pairA, pairB := gridWithNonEdges(int64(round) + 1)
		base := g.M()
		if _, err := s.AddGraph("g", g); err != nil {
			t.Fatal(err)
		}

		// Hold the live per-graph serializer, exactly as an in-flight
		// mutation batch would while its engine computes.
		lk := s.mutLockFor("g")
		lk.Lock()

		errA := make(chan error, 1)
		go func() {
			_, err := s.Mutate("g", []repro.Mutation{
				{Op: repro.MutAddEdge, U: pairA[0], V: pairA[1], W: 1},
			})
			errA <- err
		}()
		time.Sleep(5 * time.Millisecond) // let A queue on the serializer

		// Evict and immediately re-register the name: the window the race
		// needs. The re-registered graph is rebuilt from the same seed.
		if err := s.Evict("g"); err != nil {
			t.Fatal(err)
		}
		g2, _, _ := gridWithNonEdges(int64(round) + 1)
		if _, err := s.AddGraph("g", g2); err != nil {
			t.Fatal(err)
		}

		errB := make(chan error, 1)
		go func() {
			_, err := s.Mutate("g", []repro.Mutation{
				{Op: repro.MutAddEdge, U: pairB[0], V: pairB[1], W: 1},
			})
			errB <- err
		}()
		// Give B time to reach its serializer: pre-fix it mints a fresh
		// mutex and sails into engine construction while A is still queued
		// on the old one; post-fix it queues behind A.
		time.Sleep(time.Millisecond)
		lk.Unlock()

		if err := <-errA; err != nil {
			t.Fatalf("round %d: batch A failed: %v", round, err)
		}
		if err := <-errB; err != nil {
			t.Fatalf("round %d: batch B failed: %v", round, err)
		}
		info, err := s.GraphInfoFor("g")
		if err != nil {
			t.Fatal(err)
		}
		if info.M != base+2 {
			t.Fatalf("round %d: final graph has m=%d, want %d (both serialized batches applied)", round, info.M, base+2)
		}
	}
}

// TestEvictMutateRegisterStorm hammers one graph name with concurrent
// PATCH / DELETE / POST-re-register traffic. It asserts only that every
// outcome is a sane one (success, not-found, conflict, or a validation
// error from a duplicate edge) — the value of the test is the -race
// detector and the serialization invariant under chaos.
func TestEvictMutateRegisterStorm(t *testing.T) {
	s := New(Config{Workers: 1})
	mk := func(seed int64) *repro.Graph { return repro.GridGraph(6, 6, 3, seed) }
	if _, err := s.AddGraph("g", mk(1)); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0: // mutate: reweight a known grid edge
					u := int32((w*iters + i) % 35)
					_, err := s.Mutate("g", []repro.Mutation{
						{Op: repro.MutSetWeight, U: u, V: u + 1, W: float64(1 + i%5)},
					})
					if err != nil && !errors.Is(err, ErrGraphNotFound) && !errors.Is(err, ErrGraphConflict) {
						// Reweighting (u, u+1) can legitimately fail when u+1
						// starts a new grid row (no such edge) — but nothing else.
						if u%6 != 5 {
							panic(fmt.Sprintf("mutate: %v", err))
						}
					}
				case 1: // evict
					if err := s.Evict("g"); err != nil && !errors.Is(err, ErrGraphNotFound) {
						panic(fmt.Sprintf("evict: %v", err))
					}
				case 2: // re-register
					if _, err := s.AddGraph("g", mk(int64(i))); err != nil {
						panic(fmt.Sprintf("add: %v", err))
					}
				case 3: // read traffic
					_, err := s.Query(QueryRequest{Graph: "g", K: 3})
					if err != nil && !errors.Is(err, ErrGraphNotFound) {
						panic(fmt.Sprintf("query: %v", err))
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
