package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/obs"
)

// NewMux returns the HTTP/JSON API over s, the front end served by
// cmd/mfbc-serve:
//
//	GET    /healthz          liveness probe
//	GET    /stats            cumulative server counters (compat view of /metrics)
//	GET    /metrics          Prometheus text exposition of the metric registry
//	GET    /debug/traces     recent request traces as JSONL (404 if tracing off)
//	GET    /graphs           list registered graphs
//	POST   /graphs/{name}    register a graph from a GraphSpec body
//	GET    /graphs/{name}    describe one graph
//	PATCH  /graphs/{name}    apply a MutateRequest mutation batch
//	DELETE /graphs/{name}    evict a graph (and its cached results)
//	POST   /query            answer a QueryRequest body with a QueryResult
//
// Every response body is JSON; errors are {"error": "..."} with a 4xx/5xx
// status (404 for unknown graphs, 409 when a mutation raced a replacement,
// 413 for oversized request bodies, 400 for malformed requests).
//
// Every API handler runs behind s.instrument, which counts the request,
// observes its latency and response size, and — when the server has a
// tracer — opens the root "http.<route>" span that the query/mutate paths
// hang their child spans off. /metrics and /debug/traces themselves stay
// uninstrumented so scraping does not perturb what it observes.
func NewMux(s *Server) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))

	mux.HandleFunc("GET /stats", s.instrument("stats", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Stats())
	}))

	mux.Handle("GET /metrics", s.registry.Handler())

	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if s.tracer == nil {
			http.NotFound(w, r)
			return
		}
		s.tracer.Handler().ServeHTTP(w, r)
	})

	mux.HandleFunc("GET /graphs", s.instrument("graphs", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]any{"graphs": s.Graphs()})
	}))

	mux.HandleFunc("POST /graphs/{name}", s.instrument("register", func(w http.ResponseWriter, r *http.Request) {
		var spec GraphSpec
		if err := decodeJSON(w, r, &spec); err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		info, err := s.GenerateGraph(r.PathValue("name"), spec)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusCreated, info)
	}))

	mux.HandleFunc("GET /graphs/{name}", s.instrument("graph", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.GraphInfoFor(r.PathValue("name"))
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, info)
	}))

	mux.HandleFunc("PATCH /graphs/{name}", s.instrument("mutate", func(w http.ResponseWriter, r *http.Request) {
		var req MutateRequest
		if err := decodeJSON(w, r, &req); err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		res, err := s.MutateDurable(r.Context(), r.PathValue("name"), req.Mutations, req.Durability)
		if err != nil {
			code := statusFor(err)
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			s.writeError(w, code, err)
			return
		}
		// Enqueued-durability acks report 202: the batch is queued, not
		// yet applied.
		code := http.StatusOK
		if res.Queued {
			code = http.StatusAccepted
		}
		s.writeJSON(w, code, res)
	}))

	mux.HandleFunc("DELETE /graphs/{name}", s.instrument("evict", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Evict(r.PathValue("name")); err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))

	mux.HandleFunc("POST /query", s.instrument("query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := decodeJSON(w, r, &req); err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		res, err := s.QueryCtx(r.Context(), req)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, res)
	}))

	return mux
}

// respWriter captures the status code and body size flowing through a
// handler so instrument can label the request counter and feed the size
// histogram without buffering the response.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (rw *respWriter) WriteHeader(status int) {
	if rw.status == 0 {
		rw.status = status
	}
	rw.ResponseWriter.WriteHeader(status)
}

func (rw *respWriter) Write(b []byte) (int, error) {
	if rw.status == 0 {
		rw.status = http.StatusOK
	}
	n, err := rw.ResponseWriter.Write(b)
	rw.bytes += int64(n)
	return n, err
}

// instrument wraps an API handler with the request counter, latency and
// response-size histograms, the tracer's root span, and the slow-request
// log. route must be a member of httpRoutes (pre-registered label values).
//
// Trace retention: error responses (status ≥ 400) and slow requests
// (elapsed ≥ SlowQuery, when set) force-keep their trace past the tracer's
// head sampler, so the interesting traces survive any -trace-sample rate.
// The duration histogram gets the root span's IDs as a bucket exemplar
// whenever the trace is retained.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		var span *obs.Span
		if s.tracer != nil {
			ctx, span = s.tracer.Start(ctx, "http."+route)
			span.SetAttr("method", r.Method).SetAttr("path", r.URL.Path)
		}
		rw := &respWriter{ResponseWriter: w}
		start := time.Now()
		h(rw, r.WithContext(ctx))
		elapsed := time.Since(start)

		if rw.status == 0 {
			rw.status = http.StatusOK
		}
		if rw.status >= 400 || (s.slowQuery > 0 && elapsed >= s.slowQuery) {
			span.ForceKeep()
		}
		s.m.httpReqs.With(route, statusText(rw.status)).Inc()
		observeSpanExemplar(s.m.httpDur.With(route), elapsed.Seconds(), span)
		s.m.httpBytes.With(route).Observe(float64(rw.bytes))
		if span != nil {
			span.SetAttr("status", rw.status).End()
		}
		if s.slowQuery > 0 && elapsed >= s.slowQuery {
			s.logger.Warn("slow request",
				"route", route, "method", r.Method, "path", r.URL.Path,
				"status", rw.status, "bytes", rw.bytes,
				"elapsed_ms", float64(elapsed.Microseconds())/1e3)
		}
	}
}

// observeSpanExemplar records v on h, attaching the span's trace/span IDs
// as the owning bucket's exemplar when the span's trace will be retained.
// Sampled-out traces contribute no exemplar: a /metrics reader must be
// able to follow every exemplar into /debug/traces.
func observeSpanExemplar(h *obs.Histogram, v float64, span *obs.Span) {
	if span != nil && span.Kept() {
		tid, sid := span.IDs()
		h.ObserveExemplar(v, tid, sid)
		return
	}
	h.Observe(v)
}

// statusText buckets a status code into the fixed label vocabulary
// ("2xx"/"4xx"/"5xx"/...) so the code label stays low-cardinality.
func statusText(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 300 && status < 400:
		return "3xx"
	case status >= 400 && status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

func statusFor(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.Is(err, ErrGraphNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrGraphConflict):
		return http.StatusConflict
	case errors.Is(err, ErrIngestBackpressure):
		return http.StatusTooManyRequests
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeJSON parses a bounded request body. The ResponseWriter is threaded
// through to MaxBytesReader so it can close the connection on overflow,
// and the resulting *http.MaxBytesError reaches statusFor as a 413 rather
// than a generic 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// writeJSON writes v as the JSON response body. Encode errors (a closed
// connection mid-write, or an unencodable value — both invisible to the
// client) are counted on mfbc_encode_errors_total and logged rather than
// silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.m.encodeErrors.Inc()
		s.logger.Error("response encode failed", "status", status, "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}
