package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// NewMux returns the HTTP/JSON API over s, the front end served by
// cmd/mfbc-serve:
//
//	GET    /healthz          liveness probe
//	GET    /stats            cumulative server counters
//	GET    /graphs           list registered graphs
//	POST   /graphs/{name}    register a graph from a GraphSpec body
//	GET    /graphs/{name}    describe one graph
//	PATCH  /graphs/{name}    apply a MutateRequest mutation batch
//	DELETE /graphs/{name}    evict a graph (and its cached results)
//	POST   /query            answer a QueryRequest body with a QueryResult
//
// Every response body is JSON; errors are {"error": "..."} with a 4xx/5xx
// status (404 for unknown graphs, 409 when a mutation raced a replacement,
// 413 for oversized request bodies, 400 for malformed requests).
func NewMux(s *Server) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"graphs": s.Graphs()})
	})

	mux.HandleFunc("POST /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		var spec GraphSpec
		if err := decodeJSON(w, r, &spec); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		info, err := s.GenerateGraph(r.PathValue("name"), spec)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.GraphInfoFor(r.PathValue("name"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("PATCH /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		var req MutateRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		res, err := s.Mutate(r.PathValue("name"), req.Mutations)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("DELETE /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Evict(r.PathValue("name")); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		res, err := s.Query(req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	return mux
}

func statusFor(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.Is(err, ErrGraphNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrGraphConflict):
		return http.StatusConflict
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeJSON parses a bounded request body. The ResponseWriter is threaded
// through to MaxBytesReader so it can close the connection on overflow,
// and the resulting *http.MaxBytesError reaches statusFor as a 413 rather
// than a generic 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
