package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var msg map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		t.Fatalf("%s %s: status %d want %d (%v)", method, path, resp.StatusCode, wantStatus, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPRoutes(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	var health map[string]string
	doJSON(t, ts, "GET", "/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	var created GraphInfo
	doJSON(t, ts, "POST", "/graphs/demo",
		GraphSpec{Kind: "uniform", N: 40, M: 160, Seed: 1}, http.StatusCreated, &created)
	if created.Name != "demo" || created.N != 40 || created.Version == 0 {
		t.Fatalf("created = %+v", created)
	}

	var got GraphInfo
	doJSON(t, ts, "GET", "/graphs/demo", nil, http.StatusOK, &got)
	if got != created {
		t.Fatalf("GET %+v != POST %+v", got, created)
	}

	var listing struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	doJSON(t, ts, "GET", "/graphs", nil, http.StatusOK, &listing)
	if len(listing.Graphs) != 1 || listing.Graphs[0].Name != "demo" {
		t.Fatalf("listing = %+v", listing)
	}

	var res QueryResult
	doJSON(t, ts, "POST", "/query",
		QueryRequest{Graph: "demo", K: 5}, http.StatusOK, &res)
	if len(res.TopK) != 5 || res.Version != created.Version {
		t.Fatalf("query = %+v", res)
	}

	var stats Stats
	doJSON(t, ts, "GET", "/stats", nil, http.StatusOK, &stats)
	if stats.Graphs != 1 || stats.Computes != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	doJSON(t, ts, "DELETE", "/graphs/demo", nil, http.StatusNoContent, nil)

	// Error surface: unknown graph is 404, malformed/unknown input is 400.
	var errBody map[string]string
	doJSON(t, ts, "GET", "/graphs/demo", nil, http.StatusNotFound, &errBody)
	if errBody["error"] == "" {
		t.Fatal("errors must carry an error message")
	}
	doJSON(t, ts, "DELETE", "/graphs/demo", nil, http.StatusNotFound, nil)
	doJSON(t, ts, "POST", "/query", QueryRequest{Graph: "demo"}, http.StatusNotFound, nil)
	doJSON(t, ts, "POST", "/graphs/x", GraphSpec{Kind: "nope"}, http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", "/graphs/x", map[string]any{"kind": "rmat", "bogus": 1}, http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", "/query", map[string]any{"graph": "demo", "k": "five"}, http.StatusBadRequest, nil)
}

func TestHTTPWeightedAndStandinSpecs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	var grid GraphInfo
	doJSON(t, ts, "POST", "/graphs/road",
		GraphSpec{Kind: "grid", Rows: 5, Cols: 6, MaxWeight: 9, Seed: 2}, http.StatusCreated, &grid)
	if !grid.Weighted || grid.N != 30 {
		t.Fatalf("grid = %+v", grid)
	}

	var rmat GraphInfo
	doJSON(t, ts, "POST", "/graphs/social",
		GraphSpec{Kind: "rmat", Scale: 6, EdgeFactor: 6, Seed: 3, Weights: 10}, http.StatusCreated, &rmat)
	if !rmat.Weighted {
		t.Fatalf("rmat with weights overlay = %+v", rmat)
	}

	// Weighted graphs route to MFBC fine but must fail loudly on combblas.
	var res QueryResult
	doJSON(t, ts, "POST", "/query", QueryRequest{Graph: "road", K: 3}, http.StatusOK, &res)
	if len(res.TopK) != 3 {
		t.Fatalf("weighted query = %+v", res)
	}
	doJSON(t, ts, "POST", "/query",
		QueryRequest{Graph: "road", Engine: "combblas"}, http.StatusBadRequest, nil)

	for _, kind := range []string{"rmat", "uniform", "grid", "file"} {
		doJSON(t, ts, "POST", "/graphs/bad", GraphSpec{Kind: kind}, http.StatusBadRequest, nil)
	}
}
