package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var msg map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		t.Fatalf("%s %s: status %d want %d (%v)", method, path, resp.StatusCode, wantStatus, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPRoutes(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	var health map[string]string
	doJSON(t, ts, "GET", "/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	var created GraphInfo
	doJSON(t, ts, "POST", "/graphs/demo",
		GraphSpec{Kind: "uniform", N: 40, M: 160, Seed: 1}, http.StatusCreated, &created)
	if created.Name != "demo" || created.N != 40 || created.Version == 0 {
		t.Fatalf("created = %+v", created)
	}

	var got GraphInfo
	doJSON(t, ts, "GET", "/graphs/demo", nil, http.StatusOK, &got)
	if got != created {
		t.Fatalf("GET %+v != POST %+v", got, created)
	}

	var listing struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	doJSON(t, ts, "GET", "/graphs", nil, http.StatusOK, &listing)
	if len(listing.Graphs) != 1 || listing.Graphs[0].Name != "demo" {
		t.Fatalf("listing = %+v", listing)
	}

	var res QueryResult
	doJSON(t, ts, "POST", "/query",
		QueryRequest{Graph: "demo", K: 5}, http.StatusOK, &res)
	if len(res.TopK) != 5 || res.Version != created.Version {
		t.Fatalf("query = %+v", res)
	}

	var stats Stats
	doJSON(t, ts, "GET", "/stats", nil, http.StatusOK, &stats)
	if stats.Graphs != 1 || stats.Computes != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	doJSON(t, ts, "DELETE", "/graphs/demo", nil, http.StatusNoContent, nil)

	// Error surface: unknown graph is 404, malformed/unknown input is 400.
	var errBody map[string]string
	doJSON(t, ts, "GET", "/graphs/demo", nil, http.StatusNotFound, &errBody)
	if errBody["error"] == "" {
		t.Fatal("errors must carry an error message")
	}
	doJSON(t, ts, "DELETE", "/graphs/demo", nil, http.StatusNotFound, nil)
	doJSON(t, ts, "POST", "/query", QueryRequest{Graph: "demo"}, http.StatusNotFound, nil)
	doJSON(t, ts, "POST", "/graphs/x", GraphSpec{Kind: "nope"}, http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", "/graphs/x", map[string]any{"kind": "rmat", "bogus": 1}, http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", "/query", map[string]any{"graph": "demo", "k": "five"}, http.StatusBadRequest, nil)
}

func TestHTTPWeightedAndStandinSpecs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	var grid GraphInfo
	doJSON(t, ts, "POST", "/graphs/road",
		GraphSpec{Kind: "grid", Rows: 5, Cols: 6, MaxWeight: 9, Seed: 2}, http.StatusCreated, &grid)
	if !grid.Weighted || grid.N != 30 {
		t.Fatalf("grid = %+v", grid)
	}

	var rmat GraphInfo
	doJSON(t, ts, "POST", "/graphs/social",
		GraphSpec{Kind: "rmat", Scale: 6, EdgeFactor: 6, Seed: 3, Weights: 10}, http.StatusCreated, &rmat)
	if !rmat.Weighted {
		t.Fatalf("rmat with weights overlay = %+v", rmat)
	}

	// Weighted graphs route to MFBC fine but must fail loudly on combblas.
	var res QueryResult
	doJSON(t, ts, "POST", "/query", QueryRequest{Graph: "road", K: 3}, http.StatusOK, &res)
	if len(res.TopK) != 3 {
		t.Fatalf("weighted query = %+v", res)
	}
	doJSON(t, ts, "POST", "/query",
		QueryRequest{Graph: "road", Engine: "combblas"}, http.StatusBadRequest, nil)

	for _, kind := range []string{"rmat", "uniform", "grid", "file"} {
		doJSON(t, ts, "POST", "/graphs/bad", GraphSpec{Kind: kind}, http.StatusBadRequest, nil)
	}
}

// rawStatus sends body verbatim and returns only the response status.
func rawStatus(t *testing.T, ts *httptest.Server, method, path, body string) int {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestStatusForErrorClasses(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{ErrGraphNotFound, http.StatusNotFound},
		{fmt.Errorf("wrap: %w", ErrGraphNotFound), http.StatusNotFound},
		{ErrGraphConflict, http.StatusConflict},
		{fmt.Errorf("wrap: %w", ErrGraphConflict), http.StatusConflict},
		{&http.MaxBytesError{Limit: 1 << 20}, http.StatusRequestEntityTooLarge},
		{fmt.Errorf("wrap: %w", &http.MaxBytesError{Limit: 1}), http.StatusRequestEntityTooLarge},
		{errors.New("anything else"), http.StatusBadRequest},
	} {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestHTTPRouteStatusMatrix pins the error-status contract of every route:
// unknown graphs are 404, oversized bodies are 413, malformed input is 400
// — on each route that can produce them, not just the ones that happened
// to be tested before. POST /graphs previously collapsed every
// registration error to 400 instead of routing through statusFor.
func TestHTTPRouteStatusMatrix(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	doJSON(t, ts, "POST", "/graphs/g",
		GraphSpec{Kind: "uniform", N: 16, M: 40, Seed: 1}, http.StatusCreated, nil)

	validPatch := `{"mutations":[{"op":"set_weight","u":0,"v":1,"w":2}]}`
	oversized := `{"pad":"` + strings.Repeat("x", 1<<20+512) + `"}`

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		// 404: unknown graph on every graph-addressed route.
		{"get-missing", "GET", "/graphs/nope", "", http.StatusNotFound},
		{"patch-missing", "PATCH", "/graphs/nope", validPatch, http.StatusNotFound},
		{"delete-missing", "DELETE", "/graphs/nope", "", http.StatusNotFound},
		{"query-missing", "POST", "/query", `{"graph":"nope"}`, http.StatusNotFound},

		// 413: oversized body on every body-accepting route.
		{"post-oversized", "POST", "/graphs/big", oversized, http.StatusRequestEntityTooLarge},
		{"patch-oversized", "PATCH", "/graphs/g", oversized, http.StatusRequestEntityTooLarge},
		{"query-oversized", "POST", "/query", oversized, http.StatusRequestEntityTooLarge},

		// 400: malformed JSON, unknown fields, invalid parameters.
		{"post-malformed", "POST", "/graphs/x", `{"kind":`, http.StatusBadRequest},
		{"patch-malformed", "PATCH", "/graphs/g", `{"mutations":`, http.StatusBadRequest},
		{"query-malformed", "POST", "/query", `{"graph":`, http.StatusBadRequest},
		{"post-unknown-field", "POST", "/graphs/x", `{"kind":"rmat","bogus":1}`, http.StatusBadRequest},
		{"post-bad-spec", "POST", "/graphs/x", `{"kind":"nope"}`, http.StatusBadRequest},
		{"patch-empty-batch", "PATCH", "/graphs/g", `{"mutations":[]}`, http.StatusBadRequest},
		{"patch-bad-op", "PATCH", "/graphs/g", `{"mutations":[{"op":"explode","u":0,"v":1}]}`, http.StatusBadRequest},
		{"query-negative-k", "POST", "/query", `{"graph":"g","k":-1}`, http.StatusBadRequest},

		// 405: wrong method on a registered pattern.
		{"put-graph", "PUT", "/graphs/g", "", http.StatusMethodNotAllowed},
		{"delete-query", "DELETE", "/query", "", http.StatusMethodNotAllowed},
	} {
		if got := rawStatus(t, ts, tc.method, tc.path, tc.body); got != tc.want {
			t.Errorf("%s: %s %s = %d, want %d", tc.name, tc.method, tc.path, got, tc.want)
		}
	}
}

// TestHTTPPatchConflict409 drives a real ErrGraphConflict through the HTTP
// surface: a PATCH whose graph is replaced mid-apply must answer 409, not
// 400. The replacement loop races the in-flight mutation's engine
// construction, which on this graph takes long enough that the first
// attempt practically always lands.
func TestHTTPPatchConflict409(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	for attempt := 0; attempt < 3; attempt++ {
		if _, err := s.AddGraph("c", repro.GridGraph(14, 14, 5, int64(attempt))); err != nil {
			t.Fatal(err)
		}
		status := make(chan int, 1)
		go func() {
			status <- rawStatus(t, ts, "PATCH", "/graphs/c",
				`{"mutations":[{"op":"set_weight","u":0,"v":1,"w":3}]}`)
		}()
		got := 0
		deadline := time.After(5 * time.Second)
	replaceLoop:
		for {
			select {
			case got = <-status:
				break replaceLoop
			case <-deadline:
				t.Fatal("PATCH never returned")
			default:
				if _, err := s.AddGraph("c", repro.GridGraph(14, 14, 5, 99)); err != nil {
					t.Fatal(err)
				}
				time.Sleep(time.Millisecond)
			}
		}
		if got == http.StatusConflict {
			return // surfaced as 409: contract pinned
		}
		t.Logf("attempt %d: PATCH finished with %d before a replacement landed; retrying", attempt, got)
	}
	t.Fatal("never observed a 409 from a PATCH racing a replacement")
}
