// Package server is an embeddable, concurrency-safe betweenness-centrality
// query service on top of the repro engines.
//
// It keeps a registry of named graphs (loaded from edge-list files,
// generated on demand, or handed in by the embedding program), a bounded
// LRU cache of computed results keyed by the graph's structural version and
// every score-relevant query parameter, and single-flight deduplication so
// N concurrent identical queries trigger exactly one underlying compute —
// the expensive SpGEMM sweeps are amortized across all callers.
//
// Queries support exact BC on any engine, sampling-based approximate BC
// (the Bader et al. estimator via repro.ApproximateBC) as the cheap path
// for interactive use, top-k extraction, and per-query stats: cache hit,
// request coalescing, compute wall time, and the modeled communication
// report of distributed runs.
//
// cmd/mfbc-serve wraps this package in an HTTP/JSON front end (see http.go
// for the routes).
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/obs"
)

// ErrGraphNotFound is returned by Query and Evict when the named graph is
// not registered.
var ErrGraphNotFound = errors.New("server: graph not found")

// ErrGraphConflict is returned by Mutate when the named graph was replaced
// or evicted while the mutation batch was being computed; the mutation did
// not take effect.
var ErrGraphConflict = errors.New("server: graph replaced during mutation")

// ErrIngestBackpressure is returned by Mutate when the graph's ingestion
// queue is at its depth bound (the applier has fallen behind); the HTTP
// layer maps it to 429 + Retry-After. The batch was not enqueued.
var ErrIngestBackpressure = errors.New("server: ingest queue full")

// Config parameterizes a Server.
type Config struct {
	// Workers is the shared-memory parallelism handed to every compute
	// (repro.Options.Workers): 0 = all host cores, 1 = sequential kernels.
	// One knob for the whole server keeps many concurrent queries from
	// oversubscribing the host.
	Workers int
	// CacheSize bounds the result cache (LRU eviction). 0 selects the
	// default of 256 entries; negative disables caching (every query
	// computes, though concurrent identical queries still coalesce).
	CacheSize int
	// DirtyThreshold is handed to each graph's dynamic engine: the
	// affected-source fraction above which a mutation batch falls back to
	// full recomputation (0 = library default 0.25, negative = always
	// incremental).
	DirtyThreshold float64
	// DynProcs > 1 runs each graph's dynamic engine in distributed mode:
	// mutation batches re-run their affected pivots on the simulated
	// machine with this many processors, keeping the stationary adjacency
	// operands resident and delta-patched across PATCHes, and the PATCH
	// response carries the modeled communication and plan.
	DynProcs int
	// DynCacheSets bounds each simulated rank's stationary-operand cache
	// (distributed dynamic mode) to this many working sets per matrix,
	// LRU-evicted across (plan, dims) keys; ≤ 0 keeps caches unbounded.
	// Cumulative evictions appear in Stats.OperandEvictions (/stats).
	DynCacheSets int
	// DynSampleBudget > 0 runs each graph's dynamic engine in sampled
	// mode: PATCHes estimate from this many source samples (with exact
	// refreshes every DynRefreshEvery batches; 0 = library default) and
	// the response carries the Hoeffding half-width as err_bound. Sampled
	// snapshots are never warm-seeded into the exact result cache.
	DynSampleBudget int
	DynRefreshEvery int
	// LogCompactAt bounds each engine's mutation log (0 = library default
	// 4096, negative = unmanaged); LogTruncate switches over-bound
	// handling from compaction to snapshot+truncate, so long-lived servers
	// keep bounded logs that still replay from the recorded base.
	LogCompactAt int
	LogTruncate  bool
	// Metrics is the observability registry the server's counters, gauges,
	// and histograms register on (exposed at GET /metrics). nil creates a
	// private registry. Each Server needs its own registry — metric names
	// are registered once and duplicate registration panics.
	Metrics *obs.Registry
	// Tracer enables request tracing: every instrumented HTTP request
	// becomes a root span, with child spans down through the dynamic engine
	// into the machine regions (modeled cost + measured wall-clock per
	// phase). nil disables tracing at near-zero cost.
	Tracer *obs.Tracer
	// Logger receives structured logs (encode failures, slow requests).
	// nil uses slog.Default().
	Logger *slog.Logger
	// SlowQuery, when positive, logs any instrumented HTTP request that
	// takes at least this long as a warning with route and latency.
	SlowQuery time.Duration
	// IngestQueue enables async mutation ingestion: PATCH batches land in
	// a per-graph write-ahead queue and a background applier coalesces the
	// backlog into one group-commit apply, so N queued writers pay ~one
	// probe + one machine region instead of N (see ingest.go).
	IngestQueue bool
	// IngestDurability is the default acknowledgment level for queued
	// mutations: DurabilityApplied (block until the group commit lands —
	// the default, and the sync path's semantics) or DurabilityEnqueued
	// (acknowledge on enqueue; the response carries queued=true and the
	// pre-commit version). Per-request override via MutateRequest.
	IngestDurability string
	// IngestMaxDepth bounds each graph's queue to this many pending
	// batches; enqueues beyond it fail with ErrIngestBackpressure
	// (HTTP 429). 0 selects the default of 256; negative = unbounded.
	IngestMaxDepth int
	// NewDynamic overrides streaming-engine construction. cmd/mfbc-serve
	// uses it in -transport tcp mode to build engines whose applies are
	// replicated across the worker ranks (internal/rankrun); nil
	// constructs the default in-process repro.DynamicBC. The name is the
	// graph's registry name; implementations that hold per-name state
	// must tolerate re-construction under the same name (the previous
	// engine was orphaned by eviction or replacement).
	NewDynamic func(name string, g *repro.Graph, opt repro.DynamicOptions) (DynEngine, error)
}

// DynEngine is the streaming-engine surface the server drives for PATCH
// mutations: apply a batch, snapshot the scores, report counters.
// *repro.DynamicBC is the canonical implementation.
type DynEngine interface {
	ApplyCtx(ctx context.Context, batch []repro.Mutation) (repro.ApplyReport, error)
	Scores() repro.DynamicSnapshot
	Stats() repro.DynamicStats
}

const defaultCacheSize = 256

// seedTopKLen is how many ranked vertices each warm-seeded cache entry
// precomputes, so post-mutation top-k queries skip even the partial
// selection.
const seedTopKLen = 64

// Server is the query service. All methods are safe for concurrent use.
type Server struct {
	workers         int
	cacheSize       int
	dirty           float64
	dynProcs        int
	dynCacheSets    int
	dynSampleBudget int
	dynRefreshEvery int
	logCompactAt    int
	logTruncate     bool
	ingest          bool   // async ingestion enabled (Config.IngestQueue)
	ingestDurable   string // default ack level: DurabilityApplied | DurabilityEnqueued
	ingestMaxDepth  int    // per-graph queue bound; ≤ 0 = unbounded
	newDynamic      func(name string, g *repro.Graph, opt repro.DynamicOptions) (DynEngine, error)

	// computeExact/computeApprox are repro.Compute/repro.ApproximateBC,
	// replaceable by tests to observe or stall computations.
	computeExact  func(*repro.Graph, repro.Options) (*repro.Result, error)
	computeApprox func(*repro.Graph, int, int64, repro.Options) (*repro.Result, error)

	registry  *obs.Registry // metric registry backing m (exposed at /metrics)
	m         serverMetrics
	tracer    *obs.Tracer // nil = tracing disabled
	logger    *slog.Logger
	slowQuery time.Duration

	mu       sync.Mutex
	graphs   map[string]*graphEntry   // guarded by mu
	cache    map[string]*list.Element // guarded by mu; cache key → element of lru
	lru      *list.List               // guarded by mu; front = most recently used *cacheEntry
	flight   map[string]*flightCall   // guarded by mu; cache key → in-flight computation
	mutLocks map[string]*sync.Mutex   // guarded by mu; graph name → mutation serializer (never deleted; see Evict)
	queues   map[string]*ingestQueue  // guarded by mu; graph name → write-ahead mutation queue (deleted + closed on Evict)
}

type graphEntry struct {
	g        *repro.Graph
	version  uint64 // repro.Fingerprint at registration
	loadedAt time.Time
	// dyn is the graph's streaming engine, created on the first mutation
	// and carried across versions so incremental applies keep warm scores.
	dyn DynEngine
}

type cacheEntry struct {
	key   string
	graph string        // registry name, for purge on eviction/replacement
	res   *repro.Result // immutable once stored; BC is never written again
	wall  time.Duration // wall time of the compute that produced it
	// topk is an optional precomputed descending ranking (warm-seeded
	// entries): requests with K ≤ len(topk) serve a prefix instead of
	// re-selecting. Written once before the entry is published, never
	// after.
	topk []int
}

// flightCall is one in-flight computation; waiters block on done. entry and
// err are written exactly once before done is closed.
type flightCall struct {
	done  chan struct{}
	entry *cacheEntry
	err   error
}

// Stats is a snapshot of cumulative server counters.
type Stats struct {
	Graphs       int   `json:"graphs"`        // registered graphs
	CacheEntries int   `json:"cache_entries"` // resident cached results
	InFlight     int   `json:"in_flight"`     // computations running now
	Queries      int64 `json:"queries"`       // total Query calls
	CacheHits    int64 `json:"cache_hits"`    // served from cache
	Coalesced    int64 `json:"coalesced"`     // piggybacked on an in-flight compute
	Computes     int64 `json:"computes"`      // underlying engine runs started
	Evictions    int64 `json:"evictions"`     // cache entries dropped (LRU or purge)
	Mutations    int64 `json:"mutations"`     // mutation batches applied
	// MutateConflicts counts Mutate calls that lost to a concurrent
	// replacement (ErrGraphConflict); ComputeErrors counts underlying
	// engine runs that returned an error. Both are scraped by the load
	// harness to separate server-side failures from client-side ones.
	MutateConflicts int64 `json:"mutate_conflicts"`
	ComputeErrors   int64 `json:"compute_errors"`
	// EncodeErrors counts HTTP responses whose JSON encoding failed after
	// the status line was committed (client gone, marshal failure).
	EncodeErrors int64 `json:"encode_errors"`
	WarmSeeds    int64 `json:"warm_seeds"` // cache entries seeded from dynamic-engine scores (all variants)
	// Per-variant warm-seed counters: the default exact key, the
	// normalized transform, the distributed-procs keys (DynProcs > 1), and
	// the number of precomputed top-k rankings attached to seeded entries.
	WarmSeedsExact       int64 `json:"warm_seeds_exact"`
	WarmSeedsNormalized  int64 `json:"warm_seeds_normalized"`
	WarmSeedsDistributed int64 `json:"warm_seeds_distributed"`
	WarmSeedsTopK        int64 `json:"warm_seeds_topk"`
	// Dynamic-engine aggregates across all registered graphs: incremental
	// applies that ran as one fused machine region vs. the legacy
	// two-region path, and stationary-operand cache evictions under the
	// DynCacheSets bound.
	FusedApplies     int64 `json:"fused_applies"`
	TwoRegionApplies int64 `json:"two_region_applies"`
	OperandEvictions int64 `json:"operand_evictions"`
	// Async-ingestion counters (Config.IngestQueue): batches accepted into
	// write-ahead queues, group commits executed, batches merged into
	// them, backpressure rejections, and per-batch failures.
	IngestEnqueued    int64 `json:"ingest_enqueued"`
	IngestCommits     int64 `json:"ingest_commits"`
	IngestCoalesced   int64 `json:"ingest_coalesced"`
	IngestRejected    int64 `json:"ingest_rejected"`
	IngestBatchErrors int64 `json:"ingest_batch_errors"`
	IngestQueueDepth  int   `json:"ingest_queue_depth"` // queued, not yet drained
}

// New creates a Server.
func New(cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = defaultCacheSize
	}
	if size < 0 {
		size = 0
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	durable := cfg.IngestDurability
	if durable != DurabilityEnqueued {
		durable = DurabilityApplied
	}
	maxDepth := cfg.IngestMaxDepth
	if maxDepth == 0 {
		maxDepth = defaultIngestMaxDepth
	}
	s := &Server{
		workers:         cfg.Workers,
		cacheSize:       size,
		dirty:           cfg.DirtyThreshold,
		dynProcs:        cfg.DynProcs,
		dynCacheSets:    cfg.DynCacheSets,
		dynSampleBudget: cfg.DynSampleBudget,
		dynRefreshEvery: cfg.DynRefreshEvery,
		logCompactAt:    cfg.LogCompactAt,
		logTruncate:     cfg.LogTruncate,
		ingest:          cfg.IngestQueue,
		ingestDurable:   durable,
		ingestMaxDepth:  maxDepth,
		newDynamic:      cfg.NewDynamic,
		computeExact:    repro.Compute,
		computeApprox:   repro.ApproximateBC,
		registry:        reg,
		m:               newServerMetrics(reg),
		tracer:          cfg.Tracer,
		logger:          logger,
		slowQuery:       cfg.SlowQuery,
		graphs:          make(map[string]*graphEntry),
		cache:           make(map[string]*list.Element),
		lru:             list.New(),
		flight:          make(map[string]*flightCall),
		mutLocks:        make(map[string]*sync.Mutex),
		queues:          make(map[string]*ingestQueue),
	}
	if s.newDynamic == nil {
		s.newDynamic = func(_ string, g *repro.Graph, opt repro.DynamicOptions) (DynEngine, error) {
			return repro.NewDynamicBC(g, opt)
		}
	}
	// Registry-size gauges are computed at scrape time under s.mu; the
	// exposition renderer never holds s.mu, so there is no lock cycle.
	reg.GaugeFunc("mfbc_graphs", "Registered graphs.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.graphs))
	})
	reg.GaugeFunc("mfbc_cache_entries", "Resident cached results.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.lru.Len())
	})
	reg.GaugeFunc("mfbc_in_flight", "Computations running now.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.flight))
	})
	return s
}

// Registry returns the server's metric registry (the /metrics exposition).
func (s *Server) Registry() *obs.Registry { return s.registry }

// Tracer returns the server's tracer, nil when tracing is disabled.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// serverMetrics is the observability surface of the server: every former
// Stats counter as a registry metric, plus the latency/size histograms and
// the modeled-vs-measured phase telemetry. Counters are atomic — they need
// no lock, though some are incremented while s.mu happens to be held.
type serverMetrics struct {
	queries         *obs.Counter
	cacheHits       *obs.Counter
	coalesced       *obs.Counter
	computes        *obs.Counter
	evictions       *obs.Counter
	mutations       *obs.Counter
	mutateConflicts *obs.Counter
	computeErrors   *obs.Counter
	encodeErrors    *obs.Counter
	warmSeeds       *obs.CounterVec // variant: exact|normalized|distributed|topk

	queryDur  *obs.HistogramVec // source: cache|coalesced|compute
	mutateDur *obs.HistogramVec // strategy: incremental|full|sampled

	// Async-ingestion telemetry (ingest.go): queue depth, batches
	// enqueued/rejected/failed, group commits and their coalescing win,
	// and how long batches waited queued before their commit started.
	ingestEnqueued    *obs.Counter
	ingestRejected    *obs.Counter
	ingestBatchErrors *obs.Counter
	ingestCoalesced   *obs.Counter
	ingestCommits     *obs.Counter
	ingestDepth       *obs.Gauge
	ingestGroupSize   *obs.Histogram
	ingestQueueWait   *obs.Histogram

	httpReqs  *obs.CounterVec   // route, code
	httpDur   *obs.HistogramVec // route
	httpBytes *obs.HistogramVec // route; response body bytes

	// Modeled-vs-measured cost telemetry, accumulated per applied mutation
	// batch: the α-β-γ model's seconds next to host wall-clock, per machine
	// phase and per whole apply — the roofline comparison ROADMAP item 3
	// asks for, as counters.
	applyModelSec *obs.Counter
	applyWallSec  *obs.Counter
	phaseModelSec *obs.CounterVec // phase
	phaseWallSec  *obs.CounterVec // phase
	phaseBytes    *obs.CounterVec // phase
	phaseMsgs     *obs.CounterVec // phase
	phaseFlops    *obs.CounterVec // phase
}

// httpRoutes is the fixed route-label vocabulary of the HTTP middleware,
// pre-registered so the first scrape already shows every route at zero.
var httpRoutes = []string{"healthz", "stats", "graphs", "graph", "register", "mutate", "evict", "query"}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	m := serverMetrics{
		queries:         reg.Counter("mfbc_queries_total", "Total Query calls against registered graphs."),
		cacheHits:       reg.Counter("mfbc_query_cache_hits_total", "Queries served from the result cache."),
		coalesced:       reg.Counter("mfbc_query_coalesced_total", "Queries that piggybacked on an in-flight compute."),
		computes:        reg.Counter("mfbc_computes_total", "Underlying engine runs started."),
		evictions:       reg.Counter("mfbc_cache_evictions_total", "Cache entries dropped (LRU or purge)."),
		mutations:       reg.Counter("mfbc_mutations_total", "Mutation batches applied."),
		mutateConflicts: reg.Counter("mfbc_mutate_conflicts_total", "Mutations lost to a concurrent graph replacement."),
		computeErrors:   reg.Counter("mfbc_compute_errors_total", "Engine runs that returned an error."),
		encodeErrors:    reg.Counter("mfbc_encode_errors_total", "HTTP responses whose JSON encoding failed."),
		warmSeeds:       reg.CounterVec("mfbc_warm_seeds_total", "Cache entries seeded from dynamic-engine scores.", "variant"),
		queryDur:        reg.HistogramVec("mfbc_query_duration_seconds", "Query latency by answer source.", nil, "source"),
		mutateDur:       reg.HistogramVec("mfbc_mutate_duration_seconds", "Mutation batch latency by engine strategy.", nil, "strategy"),
		ingestEnqueued:  reg.Counter("mfbc_ingest_enqueued_total", "Mutation batches accepted into a write-ahead queue."),
		ingestRejected:  reg.Counter("mfbc_ingest_rejected_total", "Mutation batches rejected by queue backpressure."),
		ingestBatchErrors: reg.Counter("mfbc_ingest_batch_errors_total",
			"Queued mutation batches that failed (validation, eviction, conflict)."),
		ingestCoalesced: reg.Counter("mfbc_ingest_coalesced_total", "Queued mutation batches merged into group commits."),
		ingestCommits:   reg.Counter("mfbc_ingest_group_commits_total", "Group-commit applies executed by queue drainers."),
		ingestDepth:     reg.Gauge("mfbc_ingest_queue_depth", "Mutation batches queued and not yet drained, across graphs."),
		ingestGroupSize: reg.Histogram("mfbc_ingest_group_commit_size", "Batches coalesced per group commit.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		ingestQueueWait: reg.Histogram("mfbc_ingest_queue_wait_seconds",
			"Time batches spent queued before their group commit started.", nil),
		httpReqs:      reg.CounterVec("mfbc_http_requests_total", "HTTP requests by route and status code.", "route", "code"),
		httpDur:       reg.HistogramVec("mfbc_http_request_duration_seconds", "HTTP request latency by route.", nil, "route"),
		httpBytes:     reg.HistogramVec("mfbc_http_response_bytes", "HTTP response body size by route.", obs.SizeBuckets(), "route"),
		applyModelSec: reg.Counter("mfbc_apply_model_seconds_total", "Modeled α-β-γ seconds of applied mutation batches."),
		applyWallSec:  reg.Counter("mfbc_apply_wall_seconds_total", "Measured wall-clock seconds of applied mutation batches."),
		phaseModelSec: reg.CounterVec("mfbc_phase_model_seconds_total", "Modeled seconds per machine phase.", "phase"),
		phaseWallSec:  reg.CounterVec("mfbc_phase_wall_seconds_total", "Measured wall-clock seconds per machine phase.", "phase"),
		phaseBytes:    reg.CounterVec("mfbc_phase_bytes_total", "Modeled critical-path bytes per machine phase.", "phase"),
		phaseMsgs:     reg.CounterVec("mfbc_phase_msgs_total", "Modeled critical-path messages per machine phase.", "phase"),
		phaseFlops:    reg.CounterVec("mfbc_phase_flops_total", "Modeled critical-path flops per machine phase.", "phase"),
	}
	// Pre-register the fixed label vocabularies so scrapes are complete
	// (and byte-stable) from the start, not only after first use.
	for _, v := range []string{"exact", "normalized", "distributed", "topk"} {
		m.warmSeeds.With(v)
	}
	for _, src := range []string{"cache", "coalesced", "compute"} {
		m.queryDur.With(src)
	}
	for _, st := range []string{"incremental", "full", "sampled"} {
		m.mutateDur.With(st)
	}
	for _, r := range httpRoutes {
		m.httpReqs.With(r, "2xx")
		m.httpDur.With(r)
		m.httpBytes.With(r)
	}
	for _, ph := range obs.PhaseLabels() {
		m.phaseModelSec.With(ph)
		m.phaseWallSec.With(ph)
		m.phaseBytes.With(ph)
		m.phaseMsgs.With(ph)
		m.phaseFlops.With(ph)
	}
	return m
}

// recordApplyTelemetry folds one apply report into the modeled-vs-measured
// counters.
func (s *Server) recordApplyTelemetry(rep repro.ApplyReport) {
	s.m.applyModelSec.Add(rep.Comm.ModelSec)
	s.m.applyWallSec.Add(rep.WallMS / 1e3)
	for _, ph := range rep.Phases {
		label, _ := obs.PhaseLabel(ph.Name)
		s.m.phaseModelSec.With(label).Add(ph.ModelSec)
		s.m.phaseWallSec.With(label).Add(ph.WallMS / 1e3)
		s.m.phaseBytes.With(label).Add(float64(ph.Bytes))
		s.m.phaseMsgs.With(label).Add(float64(ph.Msgs))
		s.m.phaseFlops.With(label).Add(float64(ph.Flops))
	}
}

// GraphInfo describes one registered graph.
type GraphInfo struct {
	Name     string    `json:"name"`
	N        int       `json:"n"`
	M        int       `json:"m"`
	Directed bool      `json:"directed"`
	Weighted bool      `json:"weighted"`
	Version  uint64    `json:"version"` // structural fingerprint
	LoadedAt time.Time `json:"loaded_at"`
}

func (ge *graphEntry) info(name string) GraphInfo {
	return GraphInfo{
		Name: name, N: ge.g.N, M: ge.g.M(),
		Directed: ge.g.Directed, Weighted: ge.g.Weighted,
		Version: ge.version, LoadedAt: ge.loadedAt,
	}
}

// AddGraph registers g under name, replacing any previous graph with that
// name (stale cache entries for the name are purged; the version in cache
// keys makes them unreachable anyway). The server takes ownership of g: the
// caller must not mutate it afterwards.
func (s *Server) AddGraph(name string, g *repro.Graph) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, errors.New("server: empty graph name")
	}
	if g == nil {
		return GraphInfo{}, errors.New("server: nil graph")
	}
	if err := g.Validate(); err != nil {
		return GraphInfo{}, err
	}
	ge := &graphEntry{g: g, version: repro.Fingerprint(g), loadedAt: time.Now()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, replacing := s.graphs[name]; replacing {
		s.purgeLocked(name)
	}
	s.graphs[name] = ge
	return ge.info(name), nil
}

// LoadGraph reads an edge-list file and registers it under name.
func (s *Server) LoadGraph(name, path string) (GraphInfo, error) {
	g, err := repro.LoadGraph(path)
	if err != nil {
		return GraphInfo{}, err
	}
	return s.AddGraph(name, g)
}

// GenerateGraph builds a graph from spec and registers it under name.
func (s *Server) GenerateGraph(name string, spec GraphSpec) (GraphInfo, error) {
	g, err := BuildGraph(spec)
	if err != nil {
		return GraphInfo{}, err
	}
	return s.AddGraph(name, g)
}

// Evict removes the named graph and purges its cached results. In-flight
// computations against the old graph finish normally for their waiters.
//
// The per-name mutation serializer (mutLocks) deliberately survives the
// eviction: an in-flight Mutate may hold or be queued on it, and if the
// name is re-registered, a freshly minted mutex would let two mutation
// batches for one graph run concurrently — the queued batch would then
// lose the install race and fail with a spurious ErrGraphConflict. Keeping
// the serializer keyed by name for the server's lifetime preserves
// per-graph ordering across evict/re-register cycles; the map grows only
// with the set of distinct names ever mutated.
//
// The graph's write-ahead ingestion queue, by contrast, dies with the
// graph: it is removed from the registry here and closed, every batch
// still queued fails with ErrGraphNotFound, and a re-registered graph
// under the same name gets a fresh empty queue — an evicted graph's
// pending mutations are never resurrected. A group commit already past
// Drain fails at install time with ErrGraphConflict (the entry it read
// is no longer registered), exactly like the sync path.
func (s *Server) Evict(name string) error {
	s.mu.Lock()
	if _, ok := s.graphs[name]; !ok {
		s.mu.Unlock()
		return ErrGraphNotFound
	}
	delete(s.graphs, name)
	s.purgeLocked(name)
	q := s.queues[name]
	delete(s.queues, name)
	s.mu.Unlock()
	if q != nil {
		s.failOrphans(name, q.Close())
	}
	return nil
}

// putCacheLocked inserts ce at the front of the LRU, evicting past the
// bound. Callers hold s.mu and have checked s.cacheSize > 0.
func (s *Server) putCacheLocked(ce *cacheEntry) {
	s.cache[ce.key] = s.lru.PushFront(ce)
	for s.lru.Len() > s.cacheSize {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.cache, oldest.Value.(*cacheEntry).key)
		s.m.evictions.Inc()
	}
}

// purgeLocked drops every cache entry belonging to the named graph.
// Caller holds s.mu.
func (s *Server) purgeLocked(name string) {
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		if ce := el.Value.(*cacheEntry); ce.graph == name {
			s.lru.Remove(el)
			delete(s.cache, ce.key)
			s.m.evictions.Inc()
		}
		el = next
	}
}

// MutateRequest is one mutation batch for a registered graph, the body of
// PATCH /graphs/{name}.
type MutateRequest struct {
	Mutations []repro.Mutation `json:"mutations"`
	// Durability overrides the server's default acknowledgment level for
	// async ingestion: "applied" blocks until the group commit lands,
	// "enqueued" acknowledges as soon as the batch is queued (202, with
	// queued=true and the pre-commit version). Ignored unless the server
	// runs with an ingest queue; empty uses the server default.
	Durability string `json:"durability,omitempty"`
}

// MutateResult reports one applied batch: version bump, strategy the
// dynamic engine chose, the resulting topology size, and — when the
// engine runs in distributed mode — the modeled communication and
// decomposition plan of the apply's simulated-machine runs.
type MutateResult struct {
	Graph           string  `json:"graph"`
	OldVersion      uint64  `json:"old_version"`
	Version         uint64  `json:"version"`
	Seq             uint64  `json:"seq"`
	Applied         int     `json:"applied"`
	AffectedSources int     `json:"affected_sources"`
	Strategy        string  `json:"strategy"`
	Sampled         bool    `json:"sampled"`
	ErrBound        float64 `json:"err_bound,omitempty"` // Hoeffding 95% half-width of sampled estimates
	N               int     `json:"n"`
	M               int     `json:"m"`
	Procs           int     `json:"procs,omitempty"`
	Plan            string  `json:"plan,omitempty"`
	// Fused marks incremental distributed applies that executed as one
	// machine region; Phases is that region's per-phase cost attribution
	// (diff / patch / sweep / reduce).
	Fused     bool              `json:"fused,omitempty"`
	Comm      repro.CommReport  `json:"comm"`
	Phases    []repro.PhaseComm `json:"phases,omitempty"`
	ComputeMS float64           `json:"compute_ms"`
	// Async-ingestion fields. Queued marks an enqueued-durability ack:
	// the batch is in the write-ahead queue (at QueueDepth) but not yet
	// applied, and Version still reports the pre-commit fingerprint. For
	// applied-durability batches, CoalescedBatches is how many queued
	// batches the group commit that carried this one merged (Applied is
	// then the post-coalescing op count of the whole group, and Version
	// spans from OldVersion over every batch in it), and QueueWaitMS is
	// the time this batch waited queued before that commit started.
	Queued           bool    `json:"queued,omitempty"`
	QueueDepth       int     `json:"queue_depth,omitempty"`
	CoalescedBatches int     `json:"coalesced_batches,omitempty"`
	QueueWaitMS      float64 `json:"queue_wait_ms,omitempty"`
}

// mutLockFor returns the per-graph mutation serializer, creating it on
// first use. Mutations to different graphs proceed concurrently; batches
// for one graph apply in order.
func (s *Server) mutLockFor(name string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	lk, ok := s.mutLocks[name]
	if !ok {
		lk = &sync.Mutex{}
		s.mutLocks[name] = lk
	}
	return lk
}

// Mutate atomically applies a mutation batch to the named graph through
// its dynamic engine (created, with an initial exact compute, on the first
// mutation). On success the registry entry is replaced with the new
// version, only that graph's cache entries are purged, and — when the
// engine holds exact scores — the maintained vector is seeded into the
// cache under the default exact query key, so the next query after a
// mutation is a warm hit instead of a recompute. Queries concurrent with
// Mutate see either the old or the new version, never a torn state.
//
// With Config.IngestQueue set, the batch goes through the write-ahead
// queue and group-commit pipeline instead of applying synchronously —
// see MutateDurable.
func (s *Server) Mutate(name string, muts []repro.Mutation) (*MutateResult, error) {
	return s.MutateCtx(context.Background(), name, muts)
}

// MutateCtx is Mutate with trace propagation: when ctx carries an obs span
// (the HTTP middleware's root span), the apply reports itself and its
// machine regions as child spans pairing modeled cost with wall-clock.
func (s *Server) MutateCtx(ctx context.Context, name string, muts []repro.Mutation) (*MutateResult, error) {
	return s.MutateDurable(ctx, name, muts, "")
}

// mutateSync is the synchronous mutation path (no ingest queue): take the
// per-graph serializer and run the batch through applyCommitted.
func (s *Server) mutateSync(ctx context.Context, name string, muts []repro.Mutation) (*MutateResult, error) {
	start := time.Now()
	lk := s.mutLockFor(name)
	lk.Lock()
	defer lk.Unlock()

	s.mu.Lock()
	ge, ok := s.graphs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	return s.applyCommitted(ctx, name, ge, muts, start)
}

// applyCommitted runs one mutation batch through the graph's dynamic
// engine and installs the new (graph, scores) version. Callers hold the
// per-graph mutation serializer and pass the registry entry they decided
// to mutate; if the registry moved past it meanwhile, the install fails
// with ErrGraphConflict and the engine's work is orphaned. start is when
// the caller began the batch (queue time included for group commits).
func (s *Server) applyCommitted(ctx context.Context, name string, ge *graphEntry, muts []repro.Mutation, start time.Time) (*MutateResult, error) {
	ctx, span := obs.StartSpan(ctx, "server.mutate")
	defer span.End()
	span.SetAttr("graph", name).SetAttr("mutations", len(muts))

	s.mu.Lock()
	oldVersion := ge.version
	dyn := ge.dyn
	s.mu.Unlock()

	if dyn == nil {
		var err error
		dyn, err = s.newDynamic(name, ge.g, repro.DynamicOptions{
			Workers: s.workers, DirtyThreshold: s.dirty,
			Procs: s.dynProcs, CacheSets: s.dynCacheSets,
			SampleBudget: s.dynSampleBudget, RefreshEvery: s.dynRefreshEvery,
			LogCompactAt: s.logCompactAt, LogTruncate: s.logTruncate,
		})
		if err != nil {
			return nil, err
		}
		// Attach the engine (and its expensive initial exact compute) to the
		// live entry right away, so a failing batch below doesn't force the
		// next PATCH to redo the base computation.
		s.mu.Lock()
		if s.graphs[name] == ge {
			ge.dyn = dyn
		}
		s.mu.Unlock()
	}
	rep, err := dyn.ApplyCtx(ctx, muts)
	if err != nil {
		return nil, err
	}
	snap := dyn.Scores()
	ne := &graphEntry{g: snap.Graph, version: snap.Version, loadedAt: ge.loadedAt, dyn: dyn}
	// The O(n) warm-seed transforms (partial top-k selection, normalized
	// copy) run before taking s.mu so concurrent queries never stall on
	// them; cacheSize is immutable after New.
	var seed *warmSeed
	if !snap.Sampled && s.cacheSize > 0 {
		seed = prepareWarmSeed(snap.BC)
	}

	s.mu.Lock()
	if s.graphs[name] != ge {
		// Evicted or replaced while the batch computed; the engine's state
		// is orphaned with it and the caller must retry against whatever is
		// registered now.
		s.m.mutateConflicts.Inc()
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrGraphConflict, name)
	}
	s.purgeLocked(name) // delta-aware: only this graph's entries drop
	s.graphs[name] = ne
	s.m.mutations.Inc()
	if seed != nil {
		s.seedWarmLocked(name, snap, rep, seed)
	}
	s.mu.Unlock()

	observeSpanExemplar(s.m.mutateDur.With(rep.Strategy), time.Since(start).Seconds(), span)
	s.recordApplyTelemetry(rep)
	span.SetAttr("strategy", rep.Strategy).SetAttr("affected", rep.Affected).
		SetAttr("fused", rep.Fused).SetAttr("version", rep.Version)

	return &MutateResult{
		Graph: name, OldVersion: oldVersion, Version: rep.Version, Seq: rep.Seq,
		Applied: rep.Applied, AffectedSources: rep.Affected, Strategy: rep.Strategy,
		Sampled: rep.Sampled, ErrBound: rep.ErrBound, N: rep.N, M: rep.M,
		Procs: rep.Procs, Plan: rep.Plan, Fused: rep.Fused,
		Comm: rep.Comm, Phases: rep.Phases,
		ComputeMS: rep.WallMS,
	}, nil
}

// warmSeed carries the precomputed cheap transforms of the maintained
// vector, built outside the server lock.
type warmSeed struct {
	topk []int     // descending ranking prefix; scale-invariant, shared by all variants
	norm []float64 // scores scaled by 1/((n−1)(n−2))
}

func prepareWarmSeed(bc []float64) *warmSeed {
	ws := &warmSeed{topk: repro.TopK(bc, seedTopKLen)}
	if n := len(bc); n > 2 {
		scale := 1 / (float64(n-1) * float64(n-2))
		ws.norm = make([]float64, n)
		for v, x := range bc {
			ws.norm[v] = x * scale
		}
	} else {
		ws.norm = bc // Compute skips normalization below n=3
	}
	return ws
}

// seedWarmLocked seeds the engine's maintained exact vector into the cache
// under every cheap-transform variant of the default query, so the queries
// that typically follow a mutation are warm hits instead of recomputes:
//
//   - the default exact key (the raw maintained vector);
//   - the normalized key (the same vector scaled by 1/((n−1)(n−2)));
//   - with DynProcs > 1, the procs-variant of both — the engine's scores
//     were produced at that processor count, so a query asking for the
//     same distributed configuration is answered by them directly;
//   - a precomputed top-seedTopKLen ranking attached to each entry (top-k
//     is presentation-only in the cache key, so k-requests already land on
//     these entries; the attached ranking removes the remaining selection
//     work).
//
// Variants are inserted in ascending priority so that on a cache bound
// smaller than the variant count the LRU evicts the optional siblings,
// never the default exact entry (inserted last, most recently used).
// Callers hold s.mu.
func (s *Server) seedWarmLocked(name string, snap repro.DynamicSnapshot, rep repro.ApplyReport, ws *warmSeed) {
	wall := time.Duration(rep.WallMS * float64(time.Millisecond))
	put := func(req QueryRequest, res *repro.Result, variant string) {
		req.Graph = name
		req.normalize()
		key := cacheKey(name, snap.Version, req)
		if _, dup := s.cache[key]; dup {
			return
		}
		s.putCacheLocked(&cacheEntry{key: key, graph: name, res: res, wall: wall, topk: ws.topk})
		s.m.warmSeeds.With(variant).Inc()
		s.m.warmSeeds.With("topk").Inc()
	}
	if s.dynProcs > 1 {
		put(QueryRequest{Procs: s.dynProcs, Normalize: true},
			&repro.Result{BC: ws.norm, Engine: repro.EngineMFBC, Procs: s.dynProcs, Plan: snap.Plan, Comm: rep.Comm},
			"distributed")
		put(QueryRequest{Procs: s.dynProcs},
			&repro.Result{BC: snap.BC, Engine: repro.EngineMFBC, Procs: s.dynProcs, Plan: snap.Plan, Comm: rep.Comm},
			"distributed")
	}
	put(QueryRequest{Normalize: true}, &repro.Result{BC: ws.norm, Engine: repro.EngineMFBC, Procs: 1}, "normalized")
	put(QueryRequest{}, &repro.Result{BC: snap.BC, Engine: repro.EngineMFBC, Procs: 1}, "exact")
}

// GraphInfoFor returns the registered graph's description.
func (s *Server) GraphInfoFor(name string) (GraphInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ge, ok := s.graphs[name]
	if !ok {
		return GraphInfo{}, ErrGraphNotFound
	}
	return ge.info(name), nil
}

// Graphs lists the registered graphs sorted by name.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for name, ge := range s.graphs {
		out = append(out, ge.info(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns a snapshot of the server counters. It is a compatibility
// view: the counters live in the metric registry (GET /metrics) and are
// read back here, so /stats and /metrics can never drift apart.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Graphs:               len(s.graphs),
		CacheEntries:         s.lru.Len(),
		InFlight:             len(s.flight),
		Queries:              int64(s.m.queries.Value()),
		CacheHits:            int64(s.m.cacheHits.Value()),
		Coalesced:            int64(s.m.coalesced.Value()),
		Computes:             int64(s.m.computes.Value()),
		Evictions:            int64(s.m.evictions.Value()),
		Mutations:            int64(s.m.mutations.Value()),
		MutateConflicts:      int64(s.m.mutateConflicts.Value()),
		ComputeErrors:        int64(s.m.computeErrors.Value()),
		EncodeErrors:         int64(s.m.encodeErrors.Value()),
		WarmSeedsExact:       int64(s.m.warmSeeds.With("exact").Value()),
		WarmSeedsNormalized:  int64(s.m.warmSeeds.With("normalized").Value()),
		WarmSeedsDistributed: int64(s.m.warmSeeds.With("distributed").Value()),
		WarmSeedsTopK:        int64(s.m.warmSeeds.With("topk").Value()),
		IngestEnqueued:       int64(s.m.ingestEnqueued.Value()),
		IngestCommits:        int64(s.m.ingestCommits.Value()),
		IngestCoalesced:      int64(s.m.ingestCoalesced.Value()),
		IngestRejected:       int64(s.m.ingestRejected.Value()),
		IngestBatchErrors:    int64(s.m.ingestBatchErrors.Value()),
		IngestQueueDepth:     int(s.m.ingestDepth.Value()),
	}
	st.WarmSeeds = st.WarmSeedsExact + st.WarmSeedsNormalized + st.WarmSeedsDistributed
	for _, ge := range s.graphs {
		if ge.dyn == nil {
			continue
		}
		ds := ge.dyn.Stats()
		st.FusedApplies += ds.FusedApplies
		st.TwoRegionApplies += ds.TwoRegionApplies
		st.OperandEvictions += ds.OperandEvictions
	}
	return st
}

// QueryRequest selects a graph, an engine configuration, and the view of
// the result to return. Engine parameters mirror repro.Options; parameters
// that change scores form the cache key, while K and IncludeScores are
// presentation-only and served from the same cached result.
type QueryRequest struct {
	Graph  string       `json:"graph"`
	Engine repro.Engine `json:"engine,omitempty"` // default mfbc
	Procs  int          `json:"procs,omitempty"`  // simulated processors (default 1)
	Batch  int          `json:"batch,omitempty"`  // sources per sweep (0 = engine default)
	// Samples > 0 selects sampling-based approximate BC with this source
	// budget (the cheap path: cost ≈ Samples/n of exact). 0 = exact.
	Samples int `json:"samples,omitempty"`
	// Seed seeds the sample-source selection; only meaningful with Samples.
	Seed      int64 `json:"seed,omitempty"`
	Normalize bool  `json:"normalize,omitempty"`
	// K asks for the top-K central vertices (0 = none).
	K int `json:"k,omitempty"`
	// IncludeScores returns the full BC vector (potentially large).
	IncludeScores bool `json:"include_scores,omitempty"`
}

// VertexScore is one ranked vertex.
type VertexScore struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

// QueryStats is the per-query metadata of the tentpole: where the answer
// came from and what it cost.
type QueryStats struct {
	CacheHit  bool    `json:"cache_hit"` // served from the result cache
	Coalesced bool    `json:"coalesced"` // waited on another caller's compute
	ComputeMS float64 `json:"compute_ms"`
	// Comm is the modeled communication report of distributed runs
	// (zero-valued for sequential computes).
	Comm repro.CommReport `json:"comm"`
}

// QueryResult is the answer to one query.
type QueryResult struct {
	Graph      string        `json:"graph"`
	Version    uint64        `json:"version"`
	Engine     repro.Engine  `json:"engine"`
	Procs      int           `json:"procs"`
	Plan       string        `json:"plan,omitempty"`
	Iterations int           `json:"iterations"`
	Samples    int           `json:"samples,omitempty"`
	TopK       []VertexScore `json:"topk,omitempty"`
	Scores     []float64     `json:"scores,omitempty"`
	Stats      QueryStats    `json:"stats"`
}

// normalize canonicalizes score-equivalent requests onto one cache key:
// default engine, procs floor, and a zero seed when sampling is off.
func (r *QueryRequest) normalize() {
	if r.Engine == "" {
		r.Engine = repro.EngineMFBC
	}
	if r.Procs < 1 {
		r.Procs = 1
	}
	if r.Batch < 0 {
		r.Batch = 0
	}
	if r.Samples <= 0 {
		r.Samples = 0
		r.Seed = 0
	}
}

func cacheKey(graph string, version uint64, r QueryRequest) string {
	return fmt.Sprintf("%s@%016x|%s|p%d|b%d|n%t|s%d|seed%d",
		graph, version, r.Engine, r.Procs, r.Batch, r.Normalize, r.Samples, r.Seed)
}

// Query answers one centrality query, consulting the cache first and
// coalescing with identical in-flight computations.
func (s *Server) Query(req QueryRequest) (*QueryResult, error) {
	return s.QueryCtx(context.Background(), req)
}

// QueryCtx is Query with trace propagation: when ctx carries an obs span,
// the query reports itself (graph, answer source) and any underlying
// compute as child spans.
func (s *Server) QueryCtx(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	ctx, span := obs.StartSpan(ctx, "server.query")
	defer span.End()
	start := time.Now()
	req.normalize()
	if req.K < 0 {
		return nil, fmt.Errorf("server: negative k %d", req.K)
	}
	span.SetAttr("graph", req.Graph)

	s.mu.Lock()
	ge, ok := s.graphs[req.Graph]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, req.Graph)
	}
	if req.Samples >= ge.g.N {
		// A full-or-larger sample budget degenerates to the exact
		// computation (repro.ApproximateBC short-circuits it), so collapse
		// every such request onto the exact cache entry.
		req.Samples, req.Seed = 0, 0
	}
	key := cacheKey(req.Graph, ge.version, req)
	s.m.queries.Inc()

	if el, hit := s.cache[key]; hit {
		s.lru.MoveToFront(el)
		ce := el.Value.(*cacheEntry)
		s.m.cacheHits.Inc()
		s.mu.Unlock()
		observeSpanExemplar(s.m.queryDur.With("cache"), time.Since(start).Seconds(), span)
		span.SetAttr("source", "cache")
		return render(req, ge.version, ce, true, false), nil
	}
	if fc, inflight := s.flight[key]; inflight {
		s.m.coalesced.Inc()
		s.mu.Unlock()
		<-fc.done
		if fc.err != nil {
			return nil, fc.err
		}
		observeSpanExemplar(s.m.queryDur.With("coalesced"), time.Since(start).Seconds(), span)
		span.SetAttr("source", "coalesced")
		return render(req, ge.version, fc.entry, false, true), nil
	}
	fc := &flightCall{done: make(chan struct{})}
	s.flight[key] = fc
	s.m.computes.Inc()
	s.mu.Unlock()

	_, cspan := obs.StartSpan(ctx, "server.compute")
	cspan.SetAttr("engine", string(req.Engine)).SetAttr("procs", req.Procs).
		SetAttr("samples", req.Samples)
	cstart := time.Now()
	res, err := s.compute(ge.g, req)
	wall := time.Since(cstart)
	cspan.End()

	s.mu.Lock()
	delete(s.flight, key)
	if err != nil {
		s.m.computeErrors.Inc()
		s.mu.Unlock()
		fc.err = err
		close(fc.done)
		return nil, err
	}
	ce := &cacheEntry{key: key, graph: req.Graph, res: res, wall: wall}
	fc.entry = ce
	// Don't insert if the graph was evicted or replaced while we computed:
	// purgeLocked already ran and a new insert would leave unreachable
	// residue occupying an LRU slot. Waiters still get this result.
	if s.graphs[req.Graph] != ge {
		s.mu.Unlock()
		close(fc.done)
		observeSpanExemplar(s.m.queryDur.With("compute"), time.Since(start).Seconds(), span)
		span.SetAttr("source", "compute")
		return render(req, ge.version, ce, false, false), nil
	}
	if s.cacheSize > 0 {
		s.putCacheLocked(ce)
	}
	s.mu.Unlock()
	close(fc.done)
	observeSpanExemplar(s.m.queryDur.With("compute"), time.Since(start).Seconds(), span)
	span.SetAttr("source", "compute")
	return render(req, ge.version, ce, false, false), nil
}

func (s *Server) compute(g *repro.Graph, req QueryRequest) (*repro.Result, error) {
	opt := repro.Options{
		Engine:    req.Engine,
		Procs:     req.Procs,
		Batch:     req.Batch,
		Workers:   s.workers,
		Normalize: req.Normalize,
	}
	if req.Samples > 0 {
		return s.computeApprox(g, req.Samples, req.Seed, opt)
	}
	return s.computeExact(g, opt)
}

// render builds the caller-facing view of a (possibly shared) cache entry.
// ce.res.BC is shared across callers and never mutated; the Scores slice
// handed out is a copy.
func render(req QueryRequest, version uint64, ce *cacheEntry, hit, coalesced bool) *QueryResult {
	out := &QueryResult{
		Graph:      req.Graph,
		Version:    version,
		Engine:     ce.res.Engine,
		Procs:      ce.res.Procs,
		Plan:       ce.res.Plan,
		Iterations: ce.res.Iterations,
		Samples:    req.Samples,
		Stats: QueryStats{
			CacheHit:  hit,
			Coalesced: coalesced,
			ComputeMS: float64(ce.wall.Microseconds()) / 1e3,
			Comm:      ce.res.Comm,
		},
	}
	if req.K > 0 {
		// Warm-seeded entries carry a precomputed descending ranking whose
		// prefixes agree with TopK for every k (the selection order is
		// total: score desc, index asc).
		var idx []int
		if len(ce.topk) >= req.K {
			idx = ce.topk[:req.K]
		} else {
			idx = repro.TopK(ce.res.BC, req.K)
		}
		out.TopK = make([]VertexScore, len(idx))
		for i, v := range idx {
			out.TopK[i] = VertexScore{Vertex: v, Score: ce.res.BC[v]}
		}
	}
	if req.IncludeScores {
		out.Scores = append([]float64(nil), ce.res.BC...)
	}
	return out
}
